#include "util/string_util.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace aptrace {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) b++;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) e--;
  return s.substr(b, e - b);
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

namespace {

bool IsLeapYear(int y) {
  return (y % 4 == 0 && y % 100 != 0) || y % 400 == 0;
}

int DaysInMonth(int y, int m) {
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  if (m == 2 && IsLeapYear(y)) return 29;
  return kDays[m - 1];
}

// Days since 1970-01-01 for the given civil date (UTC).
int64_t DaysFromCivil(int y, int m, int d) {
  int64_t days = 0;
  if (y >= 1970) {
    for (int yy = 1970; yy < y; ++yy) days += IsLeapYear(yy) ? 366 : 365;
  } else {
    for (int yy = y; yy < 1970; ++yy) days -= IsLeapYear(yy) ? 366 : 365;
  }
  for (int mm = 1; mm < m; ++mm) days += DaysInMonth(y, mm);
  return days + (d - 1);
}

// Inverse of DaysFromCivil.
void CivilFromDays(int64_t days, int* y, int* m, int* d) {
  int year = 1970;
  for (;;) {
    const int len = IsLeapYear(year) ? 366 : 365;
    if (days >= len) {
      days -= len;
      year++;
    } else if (days < 0) {
      year--;
      days += IsLeapYear(year) ? 366 : 365;
    } else {
      break;
    }
  }
  int month = 1;
  while (days >= DaysInMonth(year, month)) {
    days -= DaysInMonth(year, month);
    month++;
  }
  *y = year;
  *m = month;
  *d = static_cast<int>(days) + 1;
}

bool ParseIntField(std::string_view s, int* out) {
  if (s.empty()) return false;
  int v = 0;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
    v = v * 10 + (c - '0');
  }
  *out = v;
  return true;
}

}  // namespace

Result<TimeMicros> ParseBdlTime(std::string_view s) {
  // Formats: MM/DD/YYYY or MM/DD/YYYY:HH:MM:SS.
  const auto bad = [&] {
    return Status::InvalidArgument("bad time literal: '" + std::string(s) +
                                   "' (want MM/DD/YYYY[:HH:MM:SS])");
  };
  std::string_view date = s;
  std::string_view tod;
  // The first ':' (if any) separates date from time-of-day.
  size_t colon = s.find(':');
  if (colon != std::string_view::npos) {
    date = s.substr(0, colon);
    tod = s.substr(colon + 1);
  }
  auto dparts = Split(date, '/');
  if (dparts.size() != 3) return bad();
  int month, day, year;
  if (!ParseIntField(dparts[0], &month) || !ParseIntField(dparts[1], &day) ||
      !ParseIntField(dparts[2], &year)) {
    return bad();
  }
  if (month < 1 || month > 12 || year < 1900 || year > 9999) return bad();
  if (day < 1 || day > DaysInMonth(year, month)) return bad();
  int hh = 0, mm = 0, ss = 0;
  if (!tod.empty()) {
    auto tparts = Split(tod, ':');
    if (tparts.size() != 3) return bad();
    if (!ParseIntField(tparts[0], &hh) || !ParseIntField(tparts[1], &mm) ||
        !ParseIntField(tparts[2], &ss)) {
      return bad();
    }
    if (hh > 23 || mm > 59 || ss > 59) return bad();
  }
  const int64_t days = DaysFromCivil(year, month, day);
  return days * kMicrosPerDay + hh * kMicrosPerHour + mm * kMicrosPerMinute +
         ss * kMicrosPerSecond;
}

std::string FormatBdlTime(TimeMicros t) {
  int64_t days = t / kMicrosPerDay;
  int64_t rem = t % kMicrosPerDay;
  if (rem < 0) {
    rem += kMicrosPerDay;
    days -= 1;
  }
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  const int hh = static_cast<int>(rem / kMicrosPerHour);
  const int mm = static_cast<int>((rem % kMicrosPerHour) / kMicrosPerMinute);
  const int ss = static_cast<int>((rem % kMicrosPerMinute) / kMicrosPerSecond);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%02d/%02d/%04d:%02d:%02d:%02d", m, d, y, hh,
                mm, ss);
  return buf;
}

Result<DurationMicros> ParseBdlDuration(std::string_view s) {
  const auto bad = [&] {
    return Status::InvalidArgument("bad duration literal: '" + std::string(s) +
                                   "' (want e.g. 10mins, 30s, 2h)");
  };
  size_t i = 0;
  while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) i++;
  if (i == 0 || i == s.size()) return bad();
  int64_t n = 0;
  for (size_t j = 0; j < i; ++j) n = n * 10 + (s[j] - '0');
  const std::string unit = ToLower(s.substr(i));
  if (unit == "ms") return n * kMicrosPerMilli;
  if (unit == "s" || unit == "sec" || unit == "secs") return n * kMicrosPerSecond;
  if (unit == "m" || unit == "min" || unit == "mins")
    return n * kMicrosPerMinute;
  if (unit == "h" || unit == "hour" || unit == "hours") return n * kMicrosPerHour;
  if (unit == "d" || unit == "day" || unit == "days") return n * kMicrosPerDay;
  return bad();
}

std::string FormatDuration(DurationMicros d) {
  std::ostringstream os;
  if (d < 0) {
    os << "-";
    d = -d;
  }
  if (d < kMicrosPerSecond) {
    os << (d / kMicrosPerMilli) << "ms";
    return os.str();
  }
  const int64_t hours = d / kMicrosPerHour;
  const int64_t mins = (d % kMicrosPerHour) / kMicrosPerMinute;
  const int64_t secs = (d % kMicrosPerMinute) / kMicrosPerSecond;
  if (hours) os << hours << "h";
  if (mins) os << mins << "m";
  if (secs || (!hours && !mins)) os << secs << "s";
  return os.str();
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace aptrace
