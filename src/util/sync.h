#ifndef APTRACE_UTIL_SYNC_H_
#define APTRACE_UTIL_SYNC_H_

// The one place in the tree allowed to touch the standard synchronization
// primitives (tools/check_sync_discipline.py enforces this in CI). Every
// other subsystem locks through the wrappers below, which buy two things
// the raw primitives cannot:
//
//   1. Clang Thread Safety Analysis attributes. A clang build with
//      `-Wthread-safety -Werror` proves GUARDED_BY / REQUIRES contracts
//      on every path — including paths no test executes. On GCC the
//      attribute macros expand to nothing and the wrappers cost exactly
//      what a std::mutex / std::lock_guard pair costs.
//   2. A Debug-build lock-order checker. Each Mutex registers in a
//      process-wide acquisition graph; acquiring M while holding H adds
//      the held-before edge H -> M, and the first edge that closes a
//      cycle reports both lock names with their acquisition sites and
//      aborts. The documented hierarchy (docs/concurrency.md) is thereby
//      executable, not aspirational. Release builds compile the checker
//      out entirely.
//
// Convention: prefer scoped MutexLock over manual Lock/Unlock; condition
// waits are explicit `while (!predicate) cv.Wait(lock);` loops because
// the analysis does not propagate held capabilities into predicate
// lambdas. See docs/concurrency.md for the full conventions and the
// escape-hatch policy around APTRACE_NO_THREAD_SAFETY_ANALYSIS.

#include <chrono>
#include <condition_variable>  // the wrapped primitive (sync.* only)
#include <cstdint>
#include <mutex>               // the wrapped primitive (sync.* only)
#include <source_location>

// ---------------------------------------------------------------------
// Clang Thread Safety Analysis attribute macros. Clang checks them under
// -Wthread-safety; every other compiler sees empty token soup.

#if defined(__clang__)
#define APTRACE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define APTRACE_THREAD_ANNOTATION(x)
#endif

/// Marks a class as a lockable capability ("mutex" names the kind in
/// diagnostics).
#define APTRACE_CAPABILITY(x) APTRACE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define APTRACE_SCOPED_CAPABILITY APTRACE_THREAD_ANNOTATION(scoped_lockable)

/// Field may only be touched while `x` is held.
#define APTRACE_GUARDED_BY(x) APTRACE_THREAD_ANNOTATION(guarded_by(x))

/// Pointee may only be touched while `x` is held (the pointer itself is
/// unguarded).
#define APTRACE_PT_GUARDED_BY(x) APTRACE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Function acquires the capability (held on return, not on entry).
#define APTRACE_ACQUIRE(...) \
  APTRACE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Function releases the capability (held on entry, not on return).
#define APTRACE_RELEASE(...) \
  APTRACE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Function acquires the capability iff it returns the given value.
#define APTRACE_TRY_ACQUIRE(...) \
  APTRACE_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/// Caller must hold the capability across the call (private *Locked
/// helpers).
#define APTRACE_REQUIRES(...) \
  APTRACE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Caller must NOT hold the capability (the function acquires it itself;
/// re-entry would self-deadlock on a non-recursive mutex).
#define APTRACE_EXCLUDES(...) \
  APTRACE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Static hierarchy hints checked by the analysis where it can see both
/// locks.
#define APTRACE_ACQUIRED_BEFORE(...) \
  APTRACE_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define APTRACE_ACQUIRED_AFTER(...) \
  APTRACE_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

/// Tells the analysis the capability is held without acquiring it
/// (runtime-verified entry points).
#define APTRACE_ASSERT_CAPABILITY(x) \
  APTRACE_THREAD_ANNOTATION(assert_capability(x))

/// Escape hatch: function body is exempt from the analysis. Every use
/// must carry a justification comment (policy in docs/concurrency.md).
#define APTRACE_NO_THREAD_SAFETY_ANALYSIS \
  APTRACE_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------
// Lock-order checker build gate: on in Debug and sanitizer builds, off in
// Release/RelWithDebInfo (NDEBUG). Define APTRACE_LOCK_ORDER_CHECK=0/1 to
// override either way.

#ifndef APTRACE_LOCK_ORDER_CHECK
#ifdef NDEBUG
#define APTRACE_LOCK_ORDER_CHECK 0
#else
#define APTRACE_LOCK_ORDER_CHECK 1
#endif
#endif

namespace aptrace {

class CondVar;

namespace sync_internal {

/// One mutex's node in the process-wide acquisition-order graph
/// (Debug builds only; see sync.cc). Opaque here.
struct OrderNode;

OrderNode* RegisterMutex(const char* name);
void UnregisterMutex(OrderNode* node);
/// Records `node` acquired at `loc` on this thread: adds held-before
/// edges from every lock currently held, reports a violation if an edge
/// closes a cycle, then pushes `node` onto the thread's held stack.
/// `check_order` is false for try-acquires (they cannot block, hence
/// cannot deadlock) — the node is still pushed so later acquires see it.
void OnAcquire(OrderNode* node, const std::source_location& loc,
               bool check_order);
void OnRelease(OrderNode* node);

}  // namespace sync_internal

/// Cumulative counters of the lock-order checker, for tests and the
/// curious. All zero when the checker is compiled out.
struct LockOrderStats {
  uint64_t mutexes_live = 0;       ///< registered and not yet destroyed
  uint64_t edges = 0;              ///< distinct held-before edges recorded
  uint64_t acquisitions = 0;       ///< order-checked acquisitions
  uint64_t violations = 0;         ///< cycles detected
};

LockOrderStats GetLockOrderStats();

/// True when this build runs the acquisition-graph checker.
constexpr bool LockOrderCheckingEnabled() {
  return APTRACE_LOCK_ORDER_CHECK != 0;
}

/// Replaces the violation handler. The default writes the report to
/// stderr and aborts; tests install a capturing handler (which returns,
/// letting the acquisition proceed — a reported inversion is a potential
/// deadlock, not an actual one). Returns the previous handler.
using LockOrderViolationHandler = void (*)(const char* report);
LockOrderViolationHandler SetLockOrderViolationHandlerForTest(
    LockOrderViolationHandler handler);

/// A non-recursive mutual-exclusion lock: std::mutex plus a stable
/// diagnostic name, the Clang TSA capability attributes, and (Debug) the
/// lock-order checker registration. `name` must have static storage
/// duration — pass a literal like "WorkerPool::mu_".
class APTRACE_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name = "<anonymous mutex>")
      : name_(name)
#if APTRACE_LOCK_ORDER_CHECK
        ,
        order_node_(sync_internal::RegisterMutex(name))
#endif
  {
  }

  ~Mutex() {
#if APTRACE_LOCK_ORDER_CHECK
    sync_internal::UnregisterMutex(order_node_);
#endif
  }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock(const std::source_location& loc =
                std::source_location::current()) APTRACE_ACQUIRE() {
#if APTRACE_LOCK_ORDER_CHECK
    // Order edges are recorded and checked *before* blocking: a would-be
    // deadlock is reported even when the schedule happens not to hit it.
    sync_internal::OnAcquire(order_node_, loc, /*check_order=*/true);
#else
    (void)loc;
#endif
    mu_.lock();
  }

  void Unlock() APTRACE_RELEASE() {
    mu_.unlock();
#if APTRACE_LOCK_ORDER_CHECK
    sync_internal::OnRelease(order_node_);
#endif
  }

  bool TryLock(const std::source_location& loc =
                   std::source_location::current()) APTRACE_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if APTRACE_LOCK_ORDER_CHECK
    sync_internal::OnAcquire(order_node_, loc, /*check_order=*/false);
#else
    (void)loc;
#endif
    return true;
  }

  const char* name() const { return name_; }

 private:
  friend class CondVar;
  std::mutex& native() { return mu_; }

  std::mutex mu_;
  const char* const name_;
#if APTRACE_LOCK_ORDER_CHECK
  sync_internal::OrderNode* const order_node_;
#endif
};

/// Scoped lock: acquires in the constructor, releases in the destructor.
/// The default (and preferred) way to hold a Mutex.
class APTRACE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu, const std::source_location& loc =
                                    std::source_location::current())
      APTRACE_ACQUIRE(mu)
      : mu_(mu) {
    mu_->Lock(loc);
  }

  ~MutexLock() APTRACE_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  friend class CondVar;
  Mutex* const mu_;
};

/// Condition variable bound to a MutexLock at each wait. The analysis
/// models the mutex as held across Wait (true on entry and exit; the
/// internal release/re-acquire is invisible, matching how the lock-order
/// checker treats it). No predicate overloads on purpose: guarded-field
/// predicates belong in an explicit `while (!pred) cv.Wait(lock);` loop
/// in the annotated caller, where the analysis can check them.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases the lock, blocks until notified (or spuriously
  /// woken), and re-acquires before returning.
  void Wait(MutexLock& lock) {
    std::unique_lock<std::mutex> native(lock.mu_->native(), std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with `lock`
  }

  /// Wait bounded by a duration; false when it timed out.
  bool WaitFor(MutexLock& lock, std::chrono::microseconds timeout) {
    std::unique_lock<std::mutex> native(lock.mu_->native(), std::adopt_lock);
    const std::cv_status st = cv_.wait_for(native, timeout);
    native.release();
    return st == std::cv_status::no_timeout;
  }

  /// Wait bounded by a deadline; false when the deadline passed.
  bool WaitUntil(MutexLock& lock,
                 std::chrono::steady_clock::time_point deadline) {
    std::unique_lock<std::mutex> native(lock.mu_->native(), std::adopt_lock);
    const std::cv_status st = cv_.wait_until(native, deadline);
    native.release();
    return st == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace aptrace

#endif  // APTRACE_UTIL_SYNC_H_
