#include "util/worker_pool.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace aptrace {

WorkerPool::WorkerPool(int num_threads, std::function<void()> thread_init)
    : thread_init_(std::move(thread_init)) {
  const int n = std::clamp(num_threads, 1, kMaxThreads);
  threads_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] {
      if (thread_init_) thread_init_();
      WorkerLoop();
    });
  }
}

WorkerPool::~WorkerPool() { Shutdown(/*run_pending=*/false); }

bool WorkerPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

bool WorkerPool::TrySubmit(std::function<void()> task, size_t max_pending) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) return false;
    if (queue_.size() >= max_pending) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void WorkerPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void WorkerPool::Shutdown(bool run_pending) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    accepting_ = false;
    run_pending_ = run_pending;
    if (!run_pending) queue_.clear();
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  idle_cv_.notify_all();
}

size_t WorkerPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t WorkerPool::tasks_completed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return completed_;
}

uint64_t WorkerPool::exceptions_caught() const {
  std::lock_guard<std::mutex> lock(mu_);
  return exceptions_;
}

void WorkerPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stop_) return;
      continue;
    }
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    active_++;
    lock.unlock();
    try {
      task();
    } catch (const std::exception& e) {
      lock.lock();
      exceptions_++;
      lock.unlock();
      APTRACE_LOG(Error) << "WorkerPool task threw: " << e.what();
    } catch (...) {
      lock.lock();
      exceptions_++;
      lock.unlock();
      APTRACE_LOG(Error) << "WorkerPool task threw a non-std exception";
    }
    lock.lock();
    active_--;
    completed_++;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

}  // namespace aptrace
