#include "util/worker_pool.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "util/logging.h"

namespace aptrace {

WorkerPool::WorkerPool(int num_threads, std::function<void()> thread_init)
    : thread_init_(std::move(thread_init)) {
  const int n = std::clamp(num_threads, 1, kMaxThreads);
  threads_.reserve(static_cast<size_t>(n));
  thread_ids_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this] {
      if (thread_init_) thread_init_();
      WorkerLoop();
    });
    thread_ids_.push_back(threads_.back().get_id());
  }
}

WorkerPool::~WorkerPool() { Shutdown(/*run_pending=*/false); }

bool WorkerPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    if (!accepting_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
  return true;
}

bool WorkerPool::TrySubmit(std::function<void()> task, size_t max_pending) {
  {
    MutexLock lock(&mu_);
    if (!accepting_) return false;
    if (queue_.size() >= max_pending) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.NotifyOne();
  return true;
}

void WorkerPool::WaitIdle() {
  // A pool thread waiting for the pool to drain waits for itself: its
  // own task counts in active_, so the predicate can never become true.
  // Fail fast instead of self-deadlocking.
  const std::thread::id self = std::this_thread::get_id();
  for (const std::thread::id tid : thread_ids_) {
    if (tid == self) {
      throw std::logic_error(
          "WorkerPool::WaitIdle() called from inside a pool task; the "
          "calling task would wait for itself to finish");
    }
  }
  MutexLock lock(&mu_);
  while (!queue_.empty() || active_ != 0) idle_cv_.Wait(lock);
}

void WorkerPool::Shutdown(bool run_pending) {
  {
    MutexLock lock(&mu_);
    accepting_ = false;
    run_pending_ = run_pending;
    if (!run_pending) queue_.clear();
    stop_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  idle_cv_.NotifyAll();
}

size_t WorkerPool::pending() const {
  MutexLock lock(&mu_);
  return queue_.size();
}

uint64_t WorkerPool::tasks_completed() const {
  MutexLock lock(&mu_);
  return completed_;
}

uint64_t WorkerPool::exceptions_caught() const {
  MutexLock lock(&mu_);
  return exceptions_;
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && queue_.empty()) work_cv_.Wait(lock);
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      task = std::move(queue_.front());
      queue_.pop_front();
      active_++;
    }
    bool threw = false;
    try {
      task();
    } catch (const std::exception& e) {
      threw = true;
      APTRACE_LOG(Error) << "WorkerPool task threw: " << e.what();
    } catch (...) {
      threw = true;
      APTRACE_LOG(Error) << "WorkerPool task threw a non-std exception";
    }
    {
      MutexLock lock(&mu_);
      if (threw) exceptions_++;
      active_--;
      completed_++;
      if (queue_.empty() && active_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace aptrace
