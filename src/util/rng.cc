#include "util/rng.h"

#include <cmath>

namespace aptrace {

namespace {

// SplitMix64, used only to expand the seed into xoshiro state.
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(&x);
  // Avoid the all-zero state (possible only for adversarial seeds).
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::Uniform(uint64_t n) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(
                  Uniform(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::Exponential(double mean) {
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

uint64_t Rng::Zipf(uint64_t n, double s) {
  if (n <= 1) return 0;
  const double u = NextDouble();
  double x;
  if (std::abs(1.0 - s) < 1e-9) {
    // s = 1: H(k) ~= ln(k), so the inverse CDF is k = n^u.
    x = std::pow(static_cast<double>(n), u);
  } else {
    // Inverse-CDF via the approximation in Gray et al. ("Quickly
    // generating billion-record synthetic databases"): good enough for
    // workload shaping.
    const double t = std::pow(static_cast<double>(n), 1.0 - s);
    const double g = (t - 1.0) / (1.0 - s) + 1.0;  // normalizer-ish
    const double w = u * g;
    if (w <= 1.0) {
      x = 1.0;
    } else {
      x = std::pow(w * (1.0 - s) + s, 1.0 / (1.0 - s));
    }
  }
  uint64_t rank = static_cast<uint64_t>(x) - 1;
  if (rank >= n) rank = n - 1;
  return rank;
}

double Rng::Gaussian(double mean, double stddev) {
  // Box-Muller; draws two uniforms per call (no caching for determinism
  // simplicity).
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double r = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * r * std::cos(2.0 * M_PI * u2);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  double x = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x <= 0) return i;
  }
  return weights.empty() ? 0 : weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa5a5a5a5deadbeefULL); }

}  // namespace aptrace
