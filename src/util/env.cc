#include "util/env.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

namespace aptrace {

namespace {

struct WarnOnceState {
  std::mutex mu;
  std::set<std::string> warned;  // variable names already diagnosed
  uint64_t count = 0;
};

WarnOnceState& Warnings() {
  static WarnOnceState* state = new WarnOnceState;
  return *state;
}

}  // namespace

std::optional<std::string> GetEnv(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

std::optional<std::string> GetValidatedEnv(
    const char* name, const std::function<bool(const std::string&)>& valid,
    const char* expected) {
  auto value = GetEnv(name);
  if (!value.has_value()) return std::nullopt;
  if (valid(*value)) return value;
  WarnOnceState& state = Warnings();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.warned.insert(name).second) {
    state.count++;
    std::fprintf(stderr,
                 "warning: %s: invalid value '%s' (expected %s); using the "
                 "built-in default\n",
                 name, value->c_str(), expected);
  }
  return std::nullopt;
}

std::optional<uint64_t> GetValidatedEnvCount(const char* name) {
  const auto value = GetValidatedEnv(
      name,
      [](const std::string& v) {
        if (v.empty() || v.size() > 19) return false;
        for (const char c : v) {
          if (c < '0' || c > '9') return false;
        }
        return true;
      },
      "an unsigned integer");
  if (!value.has_value()) return std::nullopt;
  return std::strtoull(value->c_str(), nullptr, 10);
}

uint64_t EnvWarningCountForTest() {
  WarnOnceState& state = Warnings();
  std::lock_guard<std::mutex> lock(state.mu);
  return state.count;
}

void ResetEnvWarningsForTest() {
  WarnOnceState& state = Warnings();
  std::lock_guard<std::mutex> lock(state.mu);
  state.warned.clear();
}

}  // namespace aptrace
