#include "util/env.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "util/sync.h"

namespace aptrace {

namespace {

struct WarnOnceState {
  Mutex mu{"env::WarnOnceState::mu"};
  std::set<std::string> warned APTRACE_GUARDED_BY(mu);  // already diagnosed
  uint64_t count APTRACE_GUARDED_BY(mu) = 0;
};

WarnOnceState& Warnings() {
  static WarnOnceState* state = new WarnOnceState;
  return *state;
}

// strerror_r comes in two flavors: XSI returns int and fills the buffer,
// GNU returns a char* that may point at the buffer or at a static string.
// Overload resolution on the actual return type picks the right handling
// without feature-test-macro guesswork.
[[maybe_unused]] const char* StrerrorResult(int rc, const char* buf) {
  return rc == 0 ? buf : "Unknown error";
}
[[maybe_unused]] const char* StrerrorResult(const char* msg,
                                            const char* /*buf*/) {
  return msg != nullptr ? msg : "Unknown error";
}

}  // namespace

std::optional<std::string> GetEnv(const char* name) {
  // Read-only getenv: the process never calls setenv/putenv after
  // startup, so the mt-unsafety (races with environment mutation) cannot
  // bite here.
  const char* value = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

std::optional<std::string> GetValidatedEnv(
    const char* name, const std::function<bool(const std::string&)>& valid,
    const char* expected) {
  auto value = GetEnv(name);
  if (!value.has_value()) return std::nullopt;
  if (valid(*value)) return value;
  WarnOnceState& state = Warnings();
  MutexLock lock(&state.mu);
  if (state.warned.insert(name).second) {
    state.count++;
    std::fprintf(stderr,
                 "warning: %s: invalid value '%s' (expected %s); using the "
                 "built-in default\n",
                 name, value->c_str(), expected);
  }
  return std::nullopt;
}

std::optional<uint64_t> GetValidatedEnvCount(const char* name) {
  const auto value = GetValidatedEnv(
      name,
      [](const std::string& v) {
        if (v.empty() || v.size() > 19) return false;
        for (const char c : v) {
          if (c < '0' || c > '9') return false;
        }
        return true;
      },
      "an unsigned integer");
  if (!value.has_value()) return std::nullopt;
  return std::strtoull(value->c_str(), nullptr, 10);
}

uint64_t EnvWarningCountForTest() {
  WarnOnceState& state = Warnings();
  MutexLock lock(&state.mu);
  return state.count;
}

void ResetEnvWarningsForTest() {
  WarnOnceState& state = Warnings();
  MutexLock lock(&state.mu);
  state.warned.clear();
}

std::string ErrnoMessage(int errno_value) {
  char buf[256];
  buf[0] = '\0';
  return StrerrorResult(strerror_r(errno_value, buf, sizeof(buf)), buf);
}

}  // namespace aptrace
