#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace aptrace {

void SampleStats::Add(double x) {
  samples_.push_back(x);
  sum_ += x;
  sorted_valid_ = false;
}

void SampleStats::AddAll(const std::vector<double>& xs) {
  for (double x : xs) Add(x);
}

double SampleStats::Mean() const {
  if (samples_.empty()) return 0;
  return sum_ / static_cast<double>(samples_.size());
}

double SampleStats::Stddev() const {
  const size_t n = samples_.size();
  if (n < 2) return 0;
  const double mean = Mean();
  double acc = 0;
  for (double x : samples_) acc += (x - mean) * (x - mean);
  return std::sqrt(acc / static_cast<double>(n - 1));
}

void SampleStats::EnsureSorted() const {
  if (sorted_valid_) return;
  sorted_ = samples_;
  std::sort(sorted_.begin(), sorted_.end());
  sorted_valid_ = true;
}

double SampleStats::Min() const {
  EnsureSorted();
  return sorted_.empty() ? 0 : sorted_.front();
}

double SampleStats::Max() const {
  EnsureSorted();
  return sorted_.empty() ? 0 : sorted_.back();
}

double SampleStats::Percentile(double p) const {
  EnsureSorted();
  if (sorted_.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (p <= 0) return sorted_.front();
  if (p >= 100) return sorted_.back();
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

double SampleStats::Median() const { return Percentile(50); }

SampleStats::BoxPlot SampleStats::Box() const {
  BoxPlot box;
  if (samples_.empty()) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    box.min = box.whisker_lo = box.q1 = box.median = nan;
    box.q3 = box.whisker_hi = box.max = nan;
    return box;
  }
  EnsureSorted();
  box.min = sorted_.front();
  box.max = sorted_.back();
  box.q1 = Percentile(25);
  box.median = Percentile(50);
  box.q3 = Percentile(75);
  const double iqr = box.q3 - box.q1;
  const double lo_fence = box.q1 - 1.5 * iqr;
  const double hi_fence = box.q3 + 1.5 * iqr;
  box.whisker_lo = box.max;
  box.whisker_hi = box.min;
  for (double x : sorted_) {
    if (x < lo_fence || x > hi_fence) {
      box.outliers.push_back(x);
    } else {
      box.whisker_lo = std::min(box.whisker_lo, x);
      box.whisker_hi = std::max(box.whisker_hi, x);
    }
  }
  return box;
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets == 0 ? 1 : buckets, 0) {}

void Histogram::Add(double x) {
  raw_.push_back(x);
  double pos = (x - lo_) / (hi_ - lo_) * static_cast<double>(counts_.size());
  long idx = static_cast<long>(pos);
  if (idx < 0) idx = 0;
  if (idx >= static_cast<long>(counts_.size()))
    idx = static_cast<long>(counts_.size()) - 1;
  counts_[static_cast<size_t>(idx)]++;
  total_++;
}

double Histogram::FractionAtLeast(double threshold) const {
  if (raw_.empty()) return 0;
  size_t n = 0;
  for (double x : raw_) {
    if (x >= threshold) n++;
  }
  return static_cast<double>(n) / static_cast<double>(raw_.size());
}

std::string Histogram::ToString() const {
  std::ostringstream os;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double b = lo_ + width * static_cast<double>(i);
    os << "[" << b << ", " << (b + width) << ") " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace aptrace
