#ifndef APTRACE_UTIL_STATUS_H_
#define APTRACE_UTIL_STATUS_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace aptrace {

/// Error categories used across the library. Kept deliberately small; the
/// human-readable message carries the detail.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument,  // malformed input (bad BDL, bad config)
  kNotFound,         // lookup miss (unknown object, no start event)
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
};

/// Returns a stable name for a status code ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight status type: either OK or an error code plus message.
///
/// The library does not use exceptions (Google style); fallible operations
/// return `Status` or `Result<T>`. `Status` is cheap to copy in the OK case
/// (empty message string).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Either a value of type T or an error Status. Analogous to absl::StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit from value and from Status, so `return value;` and
  /// `return Status::...;` both work inside functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}           // NOLINT
  Result(Status status) : status_(std::move(status)) {}   // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Accessors do not check in release builds beyond
  /// std::optional's own behaviour; callers must test ok() first.
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace aptrace

#endif  // APTRACE_UTIL_STATUS_H_
