#include "util/clock.h"

#include <chrono>

namespace aptrace {

TimeMicros MonotonicNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

RealClock::RealClock() : origin_(MonotonicNowMicros()) {}

TimeMicros RealClock::NowMicros() const {
  return MonotonicNowMicros() - origin_;
}

}  // namespace aptrace
