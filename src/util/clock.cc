#include "util/clock.h"

#include <chrono>

namespace aptrace {

namespace {
TimeMicros MonotonicNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

RealClock::RealClock() : origin_(MonotonicNow()) {}

TimeMicros RealClock::NowMicros() const { return MonotonicNow() - origin_; }

}  // namespace aptrace
