#ifndef APTRACE_UTIL_LOGGING_H_
#define APTRACE_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace aptrace {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Global minimum level; messages below it are discarded. Defaults to
/// kWarning so library users are not spammed; tests/benches raise or lower
/// it as needed.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal_logging {

/// Stream-style log sink; emits to stderr on destruction if enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace aptrace

#define APTRACE_LOG(level)                                        \
  ::aptrace::internal_logging::LogMessage(::aptrace::LogLevel::k##level, \
                                          __FILE__, __LINE__)

#endif  // APTRACE_UTIL_LOGGING_H_
