#ifndef APTRACE_UTIL_LOGGING_H_
#define APTRACE_UTIL_LOGGING_H_

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace aptrace {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

/// Global minimum level; messages below it are discarded. Defaults to
/// kWarning so library users are not spammed. The `APTRACE_LOG_LEVEL`
/// environment variable (read once at startup; see ParseLogLevel for the
/// accepted spellings) overrides the default, and SetLogLevel overrides
/// both at runtime.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Parses a level name ("debug", "info", "warning"/"warn", "error",
/// "off"/"none", case-insensitive) or its numeric value ("0".."4").
/// Returns nullopt for anything else.
std::optional<LogLevel> ParseLogLevel(std::string_view s);

namespace internal_logging {

/// Stream-style log sink; emits one structured record to stderr on
/// destruction if enabled:
///   [2026-08-05T12:34:56.789Z I t3 executor.cc:142] message
/// (ISO-8601 UTC timestamp, level tag, small per-thread id, file:line).
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace aptrace

#define APTRACE_LOG(level)                                        \
  ::aptrace::internal_logging::LogMessage(::aptrace::LogLevel::k##level, \
                                          __FILE__, __LINE__)

#endif  // APTRACE_UTIL_LOGGING_H_
