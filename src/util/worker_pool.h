#ifndef APTRACE_UTIL_WORKER_POOL_H_
#define APTRACE_UTIL_WORKER_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/sync.h"

namespace aptrace {

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// Built for the Executor's parallel scan pipeline (read-only EventStore
/// range scans fan out to workers; the coordinator thread applies their
/// results in deterministic order), but generic: tasks are arbitrary
/// `std::function<void()>`.
///
/// Semantics:
///   - Submit() enqueues a task; returns false once Shutdown() started
///     (the task is not queued, nothing is dropped on the floor mid-run,
///     and the call never crashes — callers own the rejected work).
///   - TrySubmit() is Submit() with a backlog cap: it additionally
///     returns false, without queueing, when `max_pending` tasks are
///     already waiting. Schedulers use it as a backpressure valve so one
///     producer cannot grow the shared queue without bound.
///   - WaitIdle() blocks until the queue is empty and no task is running —
///     the coordinator's barrier before it mutates state workers read.
///   - Shutdown(run_pending) stops accepting work; run_pending=true drains
///     the queue first, false discards queued-but-unstarted tasks. Joins
///     all threads. Idempotent; the destructor calls Shutdown(false).
///   - A task that throws is swallowed and counted (exceptions_caught());
///     the worker thread survives. Tasks have no result channel, so an
///     escaped exception would otherwise terminate the process.
///
/// Thread-safety: every method may be called from any thread, including
/// Submit() from inside a task. WaitIdle() called from inside a task would
/// wait for itself; the pool detects that and throws std::logic_error
/// instead of self-deadlocking.
class WorkerPool {
 public:
  /// Spawns `num_threads` workers, clamped to [1, kMaxThreads].
  /// `thread_init`, when set, runs once at the start of each worker
  /// thread — e.g. to name the thread for tracing — instead of paying
  /// per-task initialization.
  explicit WorkerPool(int num_threads,
                      std::function<void()> thread_init = nullptr);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool();

  /// Hard cap on pool width; requests beyond it are clamped.
  static constexpr int kMaxThreads = 64;

  bool Submit(std::function<void()> task) APTRACE_EXCLUDES(mu_);
  bool TrySubmit(std::function<void()> task, size_t max_pending)
      APTRACE_EXCLUDES(mu_);

  /// Blocks until no task is queued or running. Throws std::logic_error
  /// when called from one of this pool's own worker threads.
  void WaitIdle() APTRACE_EXCLUDES(mu_);

  void Shutdown(bool run_pending = false) APTRACE_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Tasks queued but not yet started.
  size_t pending() const APTRACE_EXCLUDES(mu_);
  uint64_t tasks_completed() const APTRACE_EXCLUDES(mu_);
  uint64_t exceptions_caught() const APTRACE_EXCLUDES(mu_);

 private:
  void WorkerLoop() APTRACE_EXCLUDES(mu_);

  const std::function<void()> thread_init_;
  mutable Mutex mu_{"WorkerPool::mu_"};
  CondVar work_cv_;  // workers wait for tasks/shutdown
  CondVar idle_cv_;  // WaitIdle/Shutdown wait for drain
  std::deque<std::function<void()>> queue_ APTRACE_GUARDED_BY(mu_);
  // Immutable after the constructor returns: the vectors are filled
  // before any caller can observe the pool, and Shutdown only joins.
  std::vector<std::thread> threads_;
  std::vector<std::thread::id> thread_ids_;
  int active_ APTRACE_GUARDED_BY(mu_) = 0;  // tasks currently executing
  bool accepting_ APTRACE_GUARDED_BY(mu_) = true;  // flips at Shutdown
  bool run_pending_ APTRACE_GUARDED_BY(mu_) = false;  // Shutdown drains
  bool stop_ APTRACE_GUARDED_BY(mu_) = false;
  uint64_t completed_ APTRACE_GUARDED_BY(mu_) = 0;
  uint64_t exceptions_ APTRACE_GUARDED_BY(mu_) = 0;
};

}  // namespace aptrace

#endif  // APTRACE_UTIL_WORKER_POOL_H_
