#ifndef APTRACE_UTIL_WORKER_POOL_H_
#define APTRACE_UTIL_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aptrace {

/// A fixed-size pool of worker threads draining a FIFO task queue.
///
/// Built for the Executor's parallel scan pipeline (read-only EventStore
/// range scans fan out to workers; the coordinator thread applies their
/// results in deterministic order), but generic: tasks are arbitrary
/// `std::function<void()>`.
///
/// Semantics:
///   - Submit() enqueues a task; returns false once Shutdown() started
///     (the task is not queued, nothing is dropped on the floor mid-run,
///     and the call never crashes — callers own the rejected work).
///   - TrySubmit() is Submit() with a backlog cap: it additionally
///     returns false, without queueing, when `max_pending` tasks are
///     already waiting. Schedulers use it as a backpressure valve so one
///     producer cannot grow the shared queue without bound.
///   - WaitIdle() blocks until the queue is empty and no task is running —
///     the coordinator's barrier before it mutates state workers read.
///   - Shutdown(run_pending) stops accepting work; run_pending=true drains
///     the queue first, false discards queued-but-unstarted tasks. Joins
///     all threads. Idempotent; the destructor calls Shutdown(false).
///   - A task that throws is swallowed and counted (exceptions_caught());
///     the worker thread survives. Tasks have no result channel, so an
///     escaped exception would otherwise terminate the process.
///
/// Thread-safety: every method may be called from any thread, including
/// Submit() from inside a task. WaitIdle() must not be called from inside
/// a task (it would wait for itself).
class WorkerPool {
 public:
  /// Spawns `num_threads` workers, clamped to [1, kMaxThreads].
  /// `thread_init`, when set, runs once at the start of each worker
  /// thread — e.g. to name the thread for tracing — instead of paying
  /// per-task initialization.
  explicit WorkerPool(int num_threads,
                      std::function<void()> thread_init = nullptr);

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  ~WorkerPool();

  /// Hard cap on pool width; requests beyond it are clamped.
  static constexpr int kMaxThreads = 64;

  bool Submit(std::function<void()> task);
  bool TrySubmit(std::function<void()> task, size_t max_pending);
  void WaitIdle();
  void Shutdown(bool run_pending = false);

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Tasks queued but not yet started.
  size_t pending() const;
  uint64_t tasks_completed() const;
  uint64_t exceptions_caught() const;

 private:
  void WorkerLoop();

  const std::function<void()> thread_init_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for tasks/shutdown
  std::condition_variable idle_cv_;   // WaitIdle/Shutdown wait for drain
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;            // tasks currently executing
  bool accepting_ = true;     // flips false at Shutdown
  bool run_pending_ = false;  // Shutdown drains instead of discarding
  bool stop_ = false;
  uint64_t completed_ = 0;
  uint64_t exceptions_ = 0;
};

}  // namespace aptrace

#endif  // APTRACE_UTIL_WORKER_POOL_H_
