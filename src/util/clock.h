#ifndef APTRACE_UTIL_CLOCK_H_
#define APTRACE_UTIL_CLOCK_H_

#include <cstdint>

namespace aptrace {

/// Timestamps and durations throughout the library are int64 microseconds.
using TimeMicros = int64_t;
using DurationMicros = int64_t;

constexpr DurationMicros kMicrosPerMilli = 1000;
constexpr DurationMicros kMicrosPerSecond = 1000 * kMicrosPerMilli;
constexpr DurationMicros kMicrosPerMinute = 60 * kMicrosPerSecond;
constexpr DurationMicros kMicrosPerHour = 60 * kMicrosPerMinute;
constexpr DurationMicros kMicrosPerDay = 24 * kMicrosPerHour;

/// Microseconds -> seconds as a double. The one conversion everyone needs
/// when reporting durations; use this instead of hand-rolled divisions.
constexpr double MicrosToSeconds(DurationMicros d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosPerSecond);
}

/// Monotonic wall time in microseconds (CLOCK_MONOTONIC), independent of
/// any Clock instance. The observability layer measures real elapsed time
/// with this even when the engine itself runs on a simulated clock.
TimeMicros MonotonicNowMicros();

/// Abstract clock. The analysis engine never reads wall time directly; it
/// asks a Clock so that experiments can run against a simulated clock that
/// the storage cost model advances deterministically.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Current time in microseconds.
  virtual TimeMicros NowMicros() const = 0;

  /// Advances the clock by `delta` microseconds. On clocks that track real
  /// time this is a no-op (real time advances on its own); on simulated
  /// clocks this is how work is "charged".
  virtual void AdvanceMicros(DurationMicros delta) = 0;
};

/// Deterministic simulated clock. Starts at `start` and only moves when
/// AdvanceMicros is called (by the storage cost model and the engine).
class SimClock : public Clock {
 public:
  explicit SimClock(TimeMicros start = 0) : now_(start) {}

  TimeMicros NowMicros() const override { return now_; }
  void AdvanceMicros(DurationMicros delta) override {
    if (delta > 0) now_ += delta;
  }

  /// Jumps directly to `t` if `t` is in the future; otherwise no-op.
  void AdvanceTo(TimeMicros t) {
    if (t > now_) now_ = t;
  }

 private:
  TimeMicros now_;
};

/// Wall-clock backed clock (CLOCK_MONOTONIC); AdvanceMicros is a no-op.
/// Used by the micro-benchmarks and by interactive example sessions.
class RealClock : public Clock {
 public:
  RealClock();

  TimeMicros NowMicros() const override;
  void AdvanceMicros(DurationMicros) override {}

 private:
  TimeMicros origin_;
};

}  // namespace aptrace

#endif  // APTRACE_UTIL_CLOCK_H_
