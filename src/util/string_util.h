#ifndef APTRACE_UTIL_STRING_UTIL_H_
#define APTRACE_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/clock.h"
#include "util/status.h"

namespace aptrace {

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Parses the BDL timestamp formats used throughout the paper:
///   "MM/DD/YYYY"                 (midnight)
///   "MM/DD/YYYY:HH:MM:SS"
/// into microseconds since the Unix epoch (UTC, proleptic Gregorian).
Result<TimeMicros> ParseBdlTime(std::string_view s);

/// Formats microseconds-since-epoch back to "MM/DD/YYYY:HH:MM:SS".
std::string FormatBdlTime(TimeMicros t);

/// Parses a BDL duration literal such as "10mins", "30s", "2h", "500ms".
/// Accepted unit suffixes: ms, s/sec/secs, m/min/mins, h/hour/hours,
/// d/day/days.
Result<DurationMicros> ParseBdlDuration(std::string_view s);

/// Human-readable duration, e.g. "2m30s", "450ms".
std::string FormatDuration(DurationMicros d);

/// Escapes `s` for embedding inside a JSON string literal (quotes not
/// added). Shared by the graph JSON writer and the observability exports.
std::string JsonEscape(std::string_view s);

}  // namespace aptrace

#endif  // APTRACE_UTIL_STRING_UTIL_H_
