#include "util/wildcard.h"

#include "util/string_util.h"

namespace aptrace {

WildcardMatcher::WildcardMatcher(std::string_view pattern)
    : pattern_(pattern) {
  is_literal_ = pattern.find('*') == std::string_view::npos &&
                pattern.find('?') == std::string_view::npos;
  if (is_literal_) {
    literal_lower_ = ToLower(pattern);
    return;
  }
  // Translate the glob into an anchored, case-insensitive regex.
  std::string re;
  re.reserve(pattern.size() * 2);
  for (char c : pattern) {
    switch (c) {
      case '*':
        re += ".*";
        break;
      case '?':
        re += '.';
        break;
      // Escape regex metacharacters.
      case '.':
      case '(':
      case ')':
      case '[':
      case ']':
      case '{':
      case '}':
      case '+':
      case '^':
      case '$':
      case '|':
      case '\\':
        re += '\\';
        re += c;
        break;
      default:
        re += c;
    }
  }
  regex_ = std::make_unique<std::regex>(
      re, std::regex::ECMAScript | std::regex::icase | std::regex::optimize);
}

bool WildcardMatcher::Matches(std::string_view text) const {
  if (is_literal_) {
    if (text.size() != literal_lower_.size()) return false;
    for (size_t i = 0; i < text.size(); ++i) {
      char c = text[i];
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
      if (c != literal_lower_[i]) return false;
    }
    return true;
  }
  return std::regex_match(text.begin(), text.end(), *regex_);
}

bool WildcardMatch(std::string_view pattern, std::string_view text) {
  return WildcardMatcher(pattern).Matches(text);
}

}  // namespace aptrace
