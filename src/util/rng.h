#ifndef APTRACE_UTIL_RNG_H_
#define APTRACE_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace aptrace {

/// Deterministic pseudo-random number generator (xoshiro256**) with the
/// distribution helpers the workload generator needs. All experiments are
/// seeded so results are reproducible run to run.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform over all 64-bit values.
  uint64_t Next();

  /// Uniform integer in [0, n). Precondition: n > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform integer in [lo, hi]. Precondition: lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exponentially distributed double with the given mean (> 0). Used for
  /// bursty inter-arrival times (temporal locality of system events).
  double Exponential(double mean);

  /// Zipf-like integer in [0, n) with exponent `s` (s > 0). Rank 0 is the
  /// most probable. Used for heavy-tailed fan-in (dependency explosion).
  uint64_t Zipf(uint64_t n, double s);

  /// Gaussian via Box-Muller.
  double Gaussian(double mean, double stddev);

  /// Picks one element index weighted by `weights` (all >= 0, sum > 0).
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Derives an independent child generator (for per-host streams).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace aptrace

#endif  // APTRACE_UTIL_RNG_H_
