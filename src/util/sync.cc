#include "util/sync.h"

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace aptrace {

namespace sync_internal {

#if APTRACE_LOCK_ORDER_CHECK

namespace {

/// Where one lock was acquired while another was already held — enough to
/// replay both sides of an inversion in the report.
struct EdgeSite {
  const char* file = "?";
  uint32_t line = 0;
};

}  // namespace

/// One live Mutex in the acquisition-order graph. `out[n]` means "this
/// lock was held while `n` was acquired" (held-before edge), tagged with
/// the site of the first acquisition that created the edge.
struct OrderNode {
  const char* name;
  std::unordered_map<OrderNode*, EdgeSite> out;
  std::unordered_set<OrderNode*> in;  // reverse edges, for O(deg) removal
};

namespace {

/// Graph-wide state. Guarded by a raw std::mutex (the checker cannot
/// recurse into itself) and leaked at exit like the repo's other
/// singletons, so locks held during static destruction stay safe.
struct Graph {
  std::mutex mu;
  std::unordered_set<OrderNode*> nodes;
  uint64_t edges = 0;
  uint64_t acquisitions = 0;
  uint64_t violations = 0;
};

Graph& TheGraph() {
  static Graph* const g = new Graph;
  return *g;
}

void DefaultViolationHandler(const char* report) {
  std::fputs(report, stderr);
  std::fflush(stderr);
  std::abort();
}

std::atomic<LockOrderViolationHandler> g_handler{DefaultViolationHandler};

/// One entry of a thread's held-lock stack.
struct Held {
  OrderNode* node;
  EdgeSite site;
};

std::vector<Held>& HeldStack() {
  thread_local std::vector<Held> stack;
  return stack;
}

/// True when `to` is reachable from `from` along held-before edges.
/// Caller holds Graph::mu. Fills `path` with from -> ... -> to when found.
bool FindPath(OrderNode* from, OrderNode* to, std::vector<OrderNode*>* path) {
  std::unordered_map<OrderNode*, OrderNode*> parent;
  std::vector<OrderNode*> frontier{from};
  parent.emplace(from, nullptr);
  while (!frontier.empty()) {
    OrderNode* n = frontier.back();
    frontier.pop_back();
    if (n == to) {
      path->clear();
      for (OrderNode* p = to; p != nullptr; p = parent[p]) path->push_back(p);
      std::reverse(path->begin(), path->end());
      return true;
    }
    for (const auto& edge : n->out) {
      if (parent.emplace(edge.first, n).second) frontier.push_back(edge.first);
    }
  }
  return false;
}

std::string FormatSite(const EdgeSite& site) {
  return std::string(site.file) + ":" + std::to_string(site.line);
}

/// Builds the abort report: the inverted pair with both acquisition
/// sites, plus the previously recorded chain that establishes the
/// opposite order. Caller holds Graph::mu.
std::string FormatViolation(const OrderNode* acquiring,
                            const EdgeSite& acquire_site, const Held& holding,
                            const std::vector<OrderNode*>& path) {
  std::string r = "aptrace: lock-order inversion detected\n";
  r += "  acquiring: " + std::string(acquiring->name) + " (at " +
       FormatSite(acquire_site) + ")\n";
  r += "  while holding: " + std::string(holding.node->name) +
       " (acquired at " + FormatSite(holding.site) + ")\n";
  r += "  but the opposite order was already established:\n";
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    const auto it = path[i]->out.find(path[i + 1]);
    r += "    " + std::string(path[i]->name) + " held before " +
         std::string(path[i + 1]->name);
    if (it != path[i]->out.end()) r += " (at " + FormatSite(it->second) + ")";
    r += "\n";
  }
  r += "  fix: acquire these locks in one global order"
       " (hierarchy: docs/concurrency.md)\n";
  return r;
}

}  // namespace

OrderNode* RegisterMutex(const char* name) {
  auto* node = new OrderNode{name, {}, {}};
  Graph& g = TheGraph();
  std::lock_guard<std::mutex> lock(g.mu);
  g.nodes.insert(node);
  return node;
}

void UnregisterMutex(OrderNode* node) {
  Graph& g = TheGraph();
  std::lock_guard<std::mutex> lock(g.mu);
  for (const auto& edge : node->out) edge.first->in.erase(node);
  for (OrderNode* prev : node->in) {
    prev->out.erase(node);
    g.edges--;
  }
  g.edges -= node->out.size();
  g.nodes.erase(node);
  delete node;
}

void OnAcquire(OrderNode* node, const std::source_location& loc,
               bool check_order) {
  std::vector<Held>& held = HeldStack();
  const EdgeSite site{loc.file_name(), loc.line()};
  if (check_order) {
    Graph& g = TheGraph();
    std::string report;
    {
      std::lock_guard<std::mutex> lock(g.mu);
      g.acquisitions++;
      for (const Held& h : held) {
        if (h.node == node) {
          // Relocking a non-recursive mutex on the same thread is a
          // guaranteed self-deadlock; report it before std::mutex UB.
          g.violations++;
          report = "aptrace: recursive acquisition of " +
                   std::string(node->name) + "\n  first at " +
                   FormatSite(h.site) + "\n  again at " + FormatSite(site) +
                   "\n";
          break;
        }
        const auto [it, inserted] = h.node->out.try_emplace(node, site);
        if (!inserted) continue;  // edge already known — already checked
        node->in.insert(h.node);
        g.edges++;
        std::vector<OrderNode*> path;
        if (FindPath(node, h.node, &path)) {
          g.violations++;
          report = FormatViolation(node, site, h, path);
          break;
        }
      }
    }
    // Handler runs outside Graph::mu: the default aborts, and a test
    // handler may itself create/destroy mutexes while reporting.
    if (!report.empty()) g_handler.load()(report.c_str());
  }
  held.push_back(Held{node, site});
}

void OnRelease(OrderNode* node) {
  std::vector<Held>& held = HeldStack();
  // Locks are almost always released in LIFO order; scan from the back
  // for the (rare) out-of-order release.
  for (size_t i = held.size(); i-- > 0;) {
    if (held[i].node == node) {
      held.erase(held.begin() + static_cast<ptrdiff_t>(i));
      return;
    }
  }
}

#endif  // APTRACE_LOCK_ORDER_CHECK

}  // namespace sync_internal

LockOrderStats GetLockOrderStats() {
  LockOrderStats stats;
#if APTRACE_LOCK_ORDER_CHECK
  auto& g = sync_internal::TheGraph();
  std::lock_guard<std::mutex> lock(g.mu);
  stats.mutexes_live = g.nodes.size();
  stats.edges = g.edges;
  stats.acquisitions = g.acquisitions;
  stats.violations = g.violations;
#endif
  return stats;
}

LockOrderViolationHandler SetLockOrderViolationHandlerForTest(
    LockOrderViolationHandler handler) {
#if APTRACE_LOCK_ORDER_CHECK
  return sync_internal::g_handler.exchange(
      handler != nullptr ? handler : sync_internal::DefaultViolationHandler);
#else
  (void)handler;
  return nullptr;
#endif
}

}  // namespace aptrace
