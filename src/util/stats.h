#ifndef APTRACE_UTIL_STATS_H_
#define APTRACE_UTIL_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace aptrace {

/// Accumulates samples and answers the summary questions the paper's
/// evaluation asks: mean, standard deviation, percentiles (Table II),
/// and box-plot five-number summaries with outliers (Figure 4).
class SampleStats {
 public:
  SampleStats() = default;

  void Add(double x);
  void AddAll(const std::vector<double>& xs);

  size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }

  double Mean() const;
  /// Sample standard deviation (n - 1 denominator); 0 for n < 2.
  double Stddev() const;
  double Min() const;
  double Max() const;

  /// Percentile in [0, 100] by linear interpolation between closest ranks.
  /// Returns quiet NaN when there are no samples (callers that compare the
  /// result — e.g. `> 0` guards — behave as if the value were absent).
  double Percentile(double p) const;

  /// Median (= Percentile(50)); NaN when empty.
  double Median() const;

  /// Box-plot summary: quartiles plus whiskers at 1.5 IQR (Tukey), and the
  /// values outside the whiskers as outliers. Matches Figure 4's rendering.
  /// All numeric fields are quiet NaN (and `outliers` empty) when there
  /// are no samples.
  struct BoxPlot {
    double min = 0;       // smallest sample
    double whisker_lo = 0;
    double q1 = 0;
    double median = 0;
    double q3 = 0;
    double whisker_hi = 0;
    double max = 0;       // largest sample
    std::vector<double> outliers;
  };
  BoxPlot Box() const;

  /// Underlying samples (unsorted insertion order).
  const std::vector<double>& samples() const { return samples_; }

 private:
  // Sorts lazily; mutable cache invalidated by Add.
  void EnsureSorted() const;

  std::vector<double> samples_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  double sum_ = 0;
};

/// Fixed-width histogram over [lo, hi) with `buckets` bins; values outside
/// the range are clamped into the first/last bin. Used for reporting
/// graph-size distributions (Section IV-B1).
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  size_t TotalCount() const { return total_; }

  /// Fraction of samples >= threshold.
  double FractionAtLeast(double threshold) const;

  /// One line per bucket: "[lo, hi) count".
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  std::vector<size_t> counts_;
  std::vector<double> raw_;  // kept for exact threshold queries
  size_t total_ = 0;
};

}  // namespace aptrace

#endif  // APTRACE_UTIL_STATS_H_
