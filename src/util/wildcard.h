#ifndef APTRACE_UTIL_WILDCARD_H_
#define APTRACE_UTIL_WILDCARD_H_

#include <memory>
#include <regex>
#include <string>
#include <string_view>

namespace aptrace {

/// BDL string comparisons with `=` / `!=` are pattern matches (paper
/// Section III-A). Analysts write glob-style patterns such as "*.dll" or
/// "C://Sensitive/important.doc"; a pattern with no metacharacters is an
/// exact (case-insensitive) match.
///
/// Supported metacharacters: `*` (any run, including empty) and `?` (any
/// single char). Everything else is literal. Matching is case-insensitive,
/// mirroring Windows path semantics used by the paper's examples.
class WildcardMatcher {
 public:
  /// Compiles the pattern once; Matches() is then cheap to call per event.
  explicit WildcardMatcher(std::string_view pattern);

  bool Matches(std::string_view text) const;

  const std::string& pattern() const { return pattern_; }

  /// True if the pattern contains no metacharacters (plain comparison).
  bool is_literal() const { return is_literal_; }

 private:
  std::string pattern_;
  std::string literal_lower_;  // set when is_literal_
  bool is_literal_;
  std::unique_ptr<std::regex> regex_;  // set when !is_literal_
};

/// One-shot convenience (compiles the pattern each call; prefer the class
/// in hot paths).
bool WildcardMatch(std::string_view pattern, std::string_view text);

}  // namespace aptrace

#endif  // APTRACE_UTIL_WILDCARD_H_
