#include "util/status.h"

namespace aptrace {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace aptrace
