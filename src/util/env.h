#ifndef APTRACE_UTIL_ENV_H_
#define APTRACE_UTIL_ENV_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

namespace aptrace {

/// The environment knobs the library and tools honor, in one place so the
/// docs, the tools' --help text, and the call sites agree on spelling:
///   APTRACE_BACKEND        default storage backend ("row" | "columnar")
///   APTRACE_LOG_LEVEL      log threshold ("debug" ... "off", or 0-4)
///   APTRACE_SERVER_SOCKET  default unix-socket path for aptrace_serverd
///                          and aptrace_client
///   APTRACE_SLOW_QUERY_MICROS
///                          daemon slow-query threshold in wall micros
///                          (positive integer; 0/unset disables)
///   APTRACE_FLIGHT_BUFFER  per-thread flight-recorder ring capacity in
///                          spans (positive integer)
///   APTRACE_SHARDS         default store shard count (integer in [1, 64];
///                          1 = monolithic store, see docs/sharding.md)
///   APTRACE_SHARD_ENDPOINTS
///                          comma-separated remote shard daemon endpoints
///                          ("host:port" or "unix:<path>"/"/abs/path"),
///                          one per shard, for the distributed fabric
///                          (docs/distribution.md); empty/unset keeps
///                          shards in-process
///   APTRACE_DIST_DEADLINE_MICROS
///                          per-RPC deadline for remote shard calls in
///                          wall micros (positive integer; unset uses the
///                          built-in default)
inline constexpr char kEnvBackend[] = "APTRACE_BACKEND";
inline constexpr char kEnvShards[] = "APTRACE_SHARDS";
inline constexpr char kEnvShardEndpoints[] = "APTRACE_SHARD_ENDPOINTS";
inline constexpr char kEnvDistDeadlineMicros[] = "APTRACE_DIST_DEADLINE_MICROS";
inline constexpr char kEnvLogLevel[] = "APTRACE_LOG_LEVEL";
inline constexpr char kEnvServerSocket[] = "APTRACE_SERVER_SOCKET";
inline constexpr char kEnvSlowQueryMicros[] = "APTRACE_SLOW_QUERY_MICROS";
inline constexpr char kEnvFlightBuffer[] = "APTRACE_FLIGHT_BUFFER";

/// Raw environment read; nullopt when unset. Empty values count as set.
std::optional<std::string> GetEnv(const char* name);

/// Validated environment read: returns the value when `valid(value)`
/// holds. When the variable is set but invalid, emits one warning per
/// process per variable on stderr — naming the variable, the rejected
/// value, and `expected` — and returns nullopt so the caller falls back
/// to its default *visibly* instead of silently. Unset returns nullopt
/// with no warning.
///
/// Deliberately writes with std::fprintf rather than APTRACE_LOG: the
/// logging layer itself initializes from APTRACE_LOG_LEVEL through this
/// helper, and a warning must not depend on the (possibly misconfigured)
/// log threshold it is diagnosing.
std::optional<std::string> GetValidatedEnv(
    const char* name, const std::function<bool(const std::string&)>& valid,
    const char* expected);

/// Validated read of a decimal unsigned-integer knob (digits only, no
/// sign, fits in uint64). Invalid values warn once (as above) and return
/// nullopt; so does unset.
std::optional<uint64_t> GetValidatedEnvCount(const char* name);

/// Number of invalid-value warnings emitted so far, and a reset of the
/// warn-once memory — for tests asserting the warn-once contract.
uint64_t EnvWarningCountForTest();
void ResetEnvWarningsForTest();

/// Thread-safe strerror: formats `errno_value` via strerror_r into an
/// owned string. The libc strerror writes into shared static storage and
/// is flagged by concurrency-mt-unsafe; call this instead.
std::string ErrnoMessage(int errno_value);

}  // namespace aptrace

#endif  // APTRACE_UTIL_ENV_H_
