#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstring>

namespace aptrace {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (!enabled_) return;
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":"
          << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  (void)level_;
}

}  // namespace internal_logging
}  // namespace aptrace
