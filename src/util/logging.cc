#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>

#include "util/env.h"
#include "util/string_util.h"

namespace aptrace {

namespace {

int InitialLevel() {
  const auto value = GetValidatedEnv(
      kEnvLogLevel,
      [](const std::string& v) { return ParseLogLevel(v).has_value(); },
      "debug|info|warning|error|off or 0-4");
  if (!value.has_value()) return static_cast<int>(LogLevel::kWarning);
  return static_cast<int>(*ParseLogLevel(*value));
}

std::atomic<int> g_level{InitialLevel()};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

/// Small dense per-thread id; more readable than the opaque pthread value.
uint32_t ThisThreadId() {
  static std::atomic<uint32_t> next{1};
  thread_local const uint32_t id = next.fetch_add(1);
  return id;
}

void AppendUtcTimestamp(std::ostream& os) {
  using std::chrono::duration_cast;
  using std::chrono::milliseconds;
  using std::chrono::system_clock;
  const auto now = system_clock::now();
  const std::time_t secs = system_clock::to_time_t(now);
  const int millis = static_cast<int>(
      duration_cast<milliseconds>(now.time_since_epoch()).count() % 1000);
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, millis);
  os << buf;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

std::optional<LogLevel> ParseLogLevel(std::string_view s) {
  const std::string v = ToLower(Trim(s));
  if (v == "debug" || v == "0") return LogLevel::kDebug;
  if (v == "info" || v == "1") return LogLevel::kInfo;
  if (v == "warning" || v == "warn" || v == "2") return LogLevel::kWarning;
  if (v == "error" || v == "3") return LogLevel::kError;
  if (v == "off" || v == "none" || v == "4") return LogLevel::kOff;
  return std::nullopt;
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= g_level.load()), level_(level) {
  if (!enabled_) return;
  const char* base = std::strrchr(file, '/');
  stream_ << "[";
  AppendUtcTimestamp(stream_);
  stream_ << " " << LevelTag(level) << " t" << ThisThreadId() << " "
          << (base ? base + 1 : file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
  (void)level_;
}

}  // namespace internal_logging
}  // namespace aptrace
