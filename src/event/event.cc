#include "event/event.h"

namespace aptrace {

const char* ActionTypeName(ActionType a) {
  switch (a) {
    case ActionType::kRead:
      return "read";
    case ActionType::kWrite:
      return "write";
    case ActionType::kStart:
      return "start";
    case ActionType::kConnect:
      return "connect";
    case ActionType::kAccept:
      return "accept";
    case ActionType::kInject:
      return "inject";
    case ActionType::kRename:
      return "rename";
    case ActionType::kDelete:
      return "delete";
  }
  return "?";
}

FlowDirection ActionDefaultDirection(ActionType a) {
  switch (a) {
    case ActionType::kRead:
    case ActionType::kAccept:
      return FlowDirection::kObjectToSubject;
    case ActionType::kWrite:
    case ActionType::kStart:
    case ActionType::kConnect:
    case ActionType::kInject:
    case ActionType::kRename:
    case ActionType::kDelete:
      return FlowDirection::kSubjectToObject;
  }
  return FlowDirection::kSubjectToObject;
}

}  // namespace aptrace
