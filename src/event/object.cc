#include "event/object.h"

#include <sstream>

namespace aptrace {

const char* ObjectTypeName(ObjectType t) {
  switch (t) {
    case ObjectType::kProcess:
      return "proc";
    case ObjectType::kFile:
      return "file";
    case ObjectType::kIp:
      return "ip";
  }
  return "?";
}

std::string FileAttrs::Filename() const {
  // Paths in the corpus mix '/' and '\\' (Windows and Linux hosts).
  size_t pos = path.find_last_of("/\\");
  if (pos == std::string::npos) return path;
  return path.substr(pos + 1);
}

std::string SystemObject::Label() const {
  std::ostringstream os;
  switch (type_) {
    case ObjectType::kProcess:
      os << "proc:" << process().exename << "(" << process().pid << ")";
      break;
    case ObjectType::kFile:
      os << "file:" << file().path;
      break;
    case ObjectType::kIp:
      os << "ip:" << ip().src_ip << "->" << ip().dst_ip;
      if (ip().dst_port) os << ":" << ip().dst_port;
      break;
  }
  return os.str();
}

}  // namespace aptrace
