#ifndef APTRACE_EVENT_SCHEMA_H_
#define APTRACE_EVENT_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "event/catalog.h"
#include "event/event.h"
#include "event/object.h"
#include "util/status.h"

namespace aptrace {

/// Every attribute name BDL can mention (paper Section III-A1).
///
/// Shared options usable on any node type: subject_name, subject_pid,
/// action_type, event_id, event_time. Object-specific options: file
/// (filename, host, path, last_modification_time, last_access_time,
/// creation_time), proc (host, exename, pid, starttime), ip (src_ip,
/// dst_ip, start_time). Derived attributes (paper Program 3): isreadonly,
/// iswritethrough. `amount` supports quantity-based heuristics (Program 2).
enum class FieldId : uint8_t {
  // Shared event-level options.
  kSubjectName,
  kSubjectPid,
  kActionType,
  kEventId,
  kEventTime,
  kAmount,
  // Common object option.
  kHost,
  // File options.
  kFilename,
  kPath,
  kLastModificationTime,
  kLastAccessTime,
  kCreationTime,
  // Process options.
  kExename,
  kPid,
  kStarttime,
  // Ip options.
  kSrcIp,
  kDstIp,
  kIpStartTime,
  // Derived attributes (require a DerivedAttrs provider).
  kIsReadOnly,
  kIsWriteThrough,
};

const char* FieldIdName(FieldId f);

/// Value produced by reading a field: a string, an integer (also used for
/// timestamps in micros), or a boolean.
using FieldValue = std::variant<std::string, int64_t, bool>;

/// Resolves `name` (case-insensitive) for a node of type `type`. Pass
/// std::nullopt for `type` when any type is acceptable (the analyzer then
/// checks applicability later). Errors name both the field and the type.
Result<FieldId> ResolveField(std::optional<ObjectType> type,
                             std::string_view name);

/// Every attribute name the schema accepts (lowercase, aliases included),
/// in a stable order. Drives the linter's did-you-mean suggestions.
const std::vector<std::string>& KnownFieldNames();

/// The closest known attribute name within a small edit distance of
/// `name` (case-insensitive), or "" when nothing is plausibly close.
/// When `type` is set, only fields applicable to that node type are
/// suggested.
std::string SuggestFieldName(std::optional<ObjectType> type,
                             std::string_view name);

/// True if `field` can be evaluated on an object of `type` (event-level
/// shared fields are applicable to every type).
bool FieldApplicableTo(FieldId field, ObjectType type);

/// True if the field is event-level (needs an Event to evaluate).
bool FieldNeedsEvent(FieldId field);

/// Provider for derived attributes that need whole-trace knowledge.
/// The core engine implements this against the event store, scoped to the
/// analysis time range; see core/derived_attrs.h.
class DerivedAttrs {
 public:
  virtual ~DerivedAttrs() = default;

  /// "Read-only file": not written during the analyzed period.
  virtual bool IsReadOnly(ObjectId file) const = 0;

  /// "Write-through process": a helper process connected only to another
  /// process (takes input from its parent and returns results to it).
  virtual bool IsWriteThrough(ObjectId proc) const = 0;
};

/// Reads `field` for an object, optionally in the context of the event
/// that reached it. Returns std::nullopt when the field does not apply to
/// this object (e.g. `exename` on a file) or when required context is
/// missing (event-level field with no event; derived field with no
/// provider). Callers treat "not applicable" as a neutral truth value.
std::optional<FieldValue> ReadField(FieldId field, const SystemObject& object,
                                    const Event* event,
                                    const ObjectCatalog& catalog,
                                    const DerivedAttrs* derived);

}  // namespace aptrace

#endif  // APTRACE_EVENT_SCHEMA_H_
