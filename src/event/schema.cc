#include "event/schema.h"

#include <algorithm>
#include <unordered_map>

#include "util/string_util.h"

namespace aptrace {

const char* FieldIdName(FieldId f) {
  switch (f) {
    case FieldId::kSubjectName: return "subject_name";
    case FieldId::kSubjectPid: return "subject_pid";
    case FieldId::kActionType: return "action_type";
    case FieldId::kEventId: return "event_id";
    case FieldId::kEventTime: return "event_time";
    case FieldId::kAmount: return "amount";
    case FieldId::kHost: return "host";
    case FieldId::kFilename: return "filename";
    case FieldId::kPath: return "path";
    case FieldId::kLastModificationTime: return "last_modification_time";
    case FieldId::kLastAccessTime: return "last_access_time";
    case FieldId::kCreationTime: return "creation_time";
    case FieldId::kExename: return "exename";
    case FieldId::kPid: return "pid";
    case FieldId::kStarttime: return "starttime";
    case FieldId::kSrcIp: return "src_ip";
    case FieldId::kDstIp: return "dst_ip";
    case FieldId::kIpStartTime: return "start_time";
    case FieldId::kIsReadOnly: return "isreadonly";
    case FieldId::kIsWriteThrough: return "iswritethrough";
  }
  return "?";
}

namespace {

// Name -> field, all lowercase. "type" is resolved by the BDL analyzer
// (it is a node-pattern property, not an attribute read from events).
const std::unordered_map<std::string, FieldId>& FieldTable() {
  static const auto* kTable = new std::unordered_map<std::string, FieldId>{
      {"subject_name", FieldId::kSubjectName},
      {"subject_pid", FieldId::kSubjectPid},
      {"action_type", FieldId::kActionType},
      // Program 7/10 in the paper write `type = "start"` for the action of
      // a proc node; accept "type" as an alias of action_type.
      {"type", FieldId::kActionType},
      {"event_id", FieldId::kEventId},
      {"event_time", FieldId::kEventTime},
      {"amount", FieldId::kAmount},
      {"host", FieldId::kHost},
      {"filename", FieldId::kFilename},
      {"path", FieldId::kPath},
      {"last_modification_time", FieldId::kLastModificationTime},
      {"last_access_time", FieldId::kLastAccessTime},
      {"creation_time", FieldId::kCreationTime},
      {"exename", FieldId::kExename},
      {"pid", FieldId::kPid},
      {"starttime", FieldId::kStarttime},
      {"src_ip", FieldId::kSrcIp},
      {"srcip", FieldId::kSrcIp},
      {"dst_ip", FieldId::kDstIp},
      {"dstip", FieldId::kDstIp},
      {"start_time", FieldId::kIpStartTime},
      {"isreadonly", FieldId::kIsReadOnly},
      {"iswritethrough", FieldId::kIsWriteThrough},
  };
  return *kTable;
}

}  // namespace

const std::vector<std::string>& KnownFieldNames() {
  static const auto* kNames = [] {
    auto* names = new std::vector<std::string>();
    for (const auto& [name, field] : FieldTable()) names->push_back(name);
    std::sort(names->begin(), names->end());
    return names;
  }();
  return *kNames;
}

namespace {

/// Classic dynamic-programming Levenshtein distance, early-exited via the
/// caller's cutoff (candidate lists are tiny, so O(n*m) is fine).
size_t EditDistance(std::string_view a, std::string_view b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      const size_t up = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         diag + (a[i - 1] == b[j - 1] ? 0 : 1)});
      diag = up;
    }
  }
  return row[b.size()];
}

}  // namespace

std::string SuggestFieldName(std::optional<ObjectType> type,
                             std::string_view name) {
  const std::string lower = ToLower(name);
  // Allow more slack for longer names: 1 edit for short names, up to 3 for
  // long ones like "last_modifcation_time".
  const size_t cutoff = lower.size() <= 4 ? 1 : lower.size() <= 8 ? 2 : 3;
  std::string best;
  size_t best_distance = cutoff + 1;
  for (const std::string& candidate : KnownFieldNames()) {
    if (type.has_value() &&
        !FieldApplicableTo(FieldTable().at(candidate), *type)) {
      continue;
    }
    const size_t d = EditDistance(lower, candidate);
    if (d < best_distance) {
      best_distance = d;
      best = candidate;
    }
  }
  return best;
}

Result<FieldId> ResolveField(std::optional<ObjectType> type,
                             std::string_view name) {
  const std::string lower = ToLower(name);
  auto it = FieldTable().find(lower);
  if (it == FieldTable().end()) {
    return Status::InvalidArgument("unknown field '" + std::string(name) +
                                   "'");
  }
  const FieldId f = it->second;
  if (type.has_value() && !FieldApplicableTo(f, *type)) {
    return Status::InvalidArgument("field '" + std::string(name) +
                                   "' is not applicable to node type '" +
                                   ObjectTypeName(*type) + "'");
  }
  return f;
}

bool FieldApplicableTo(FieldId field, ObjectType type) {
  switch (field) {
    case FieldId::kSubjectName:
    case FieldId::kSubjectPid:
    case FieldId::kActionType:
    case FieldId::kEventId:
    case FieldId::kEventTime:
    case FieldId::kAmount:
    case FieldId::kHost:
      return true;
    case FieldId::kFilename:
    case FieldId::kPath:
    case FieldId::kLastModificationTime:
    case FieldId::kLastAccessTime:
    case FieldId::kCreationTime:
    case FieldId::kIsReadOnly:
      return type == ObjectType::kFile;
    case FieldId::kExename:
    case FieldId::kPid:
    case FieldId::kStarttime:
    case FieldId::kIsWriteThrough:
      return type == ObjectType::kProcess;
    case FieldId::kSrcIp:
    case FieldId::kDstIp:
    case FieldId::kIpStartTime:
      return type == ObjectType::kIp;
  }
  return false;
}

bool FieldNeedsEvent(FieldId field) {
  switch (field) {
    case FieldId::kSubjectName:
    case FieldId::kSubjectPid:
    case FieldId::kActionType:
    case FieldId::kEventId:
    case FieldId::kEventTime:
    case FieldId::kAmount:
      return true;
    default:
      return false;
  }
}

std::optional<FieldValue> ReadField(FieldId field, const SystemObject& object,
                                    const Event* event,
                                    const ObjectCatalog& catalog,
                                    const DerivedAttrs* derived) {
  // Event-level fields.
  if (FieldNeedsEvent(field)) {
    if (event == nullptr) return std::nullopt;
    switch (field) {
      case FieldId::kSubjectName: {
        const SystemObject& subj = catalog.Get(event->subject);
        if (!subj.is_process()) return std::nullopt;
        return FieldValue(subj.process().exename);
      }
      case FieldId::kSubjectPid: {
        const SystemObject& subj = catalog.Get(event->subject);
        if (!subj.is_process()) return std::nullopt;
        return FieldValue(subj.process().pid);
      }
      case FieldId::kActionType:
        return FieldValue(std::string(ActionTypeName(event->action)));
      case FieldId::kEventId:
        return FieldValue(static_cast<int64_t>(event->id));
      case FieldId::kEventTime:
        return FieldValue(static_cast<int64_t>(event->timestamp));
      case FieldId::kAmount:
        return FieldValue(static_cast<int64_t>(event->amount));
      default:
        return std::nullopt;
    }
  }

  if (!FieldApplicableTo(field, object.type())) return std::nullopt;

  switch (field) {
    case FieldId::kHost:
      return FieldValue(catalog.HostName(object.host()));
    case FieldId::kFilename:
      return FieldValue(object.file().Filename());
    case FieldId::kPath:
      return FieldValue(object.file().path);
    case FieldId::kLastModificationTime:
      return FieldValue(
          static_cast<int64_t>(object.file().last_modification_time));
    case FieldId::kLastAccessTime:
      return FieldValue(static_cast<int64_t>(object.file().last_access_time));
    case FieldId::kCreationTime:
      return FieldValue(static_cast<int64_t>(object.file().creation_time));
    case FieldId::kExename:
      return FieldValue(object.process().exename);
    case FieldId::kPid:
      return FieldValue(object.process().pid);
    case FieldId::kStarttime:
      return FieldValue(static_cast<int64_t>(object.process().start_time));
    case FieldId::kSrcIp:
      return FieldValue(object.ip().src_ip);
    case FieldId::kDstIp:
      return FieldValue(object.ip().dst_ip);
    case FieldId::kIpStartTime:
      return FieldValue(static_cast<int64_t>(object.ip().start_time));
    case FieldId::kIsReadOnly:
      if (derived == nullptr) return std::nullopt;
      return FieldValue(derived->IsReadOnly(object.id()));
    case FieldId::kIsWriteThrough:
      if (derived == nullptr) return std::nullopt;
      return FieldValue(derived->IsWriteThrough(object.id()));
    default:
      return std::nullopt;
  }
}

}  // namespace aptrace
