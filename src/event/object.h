#ifndef APTRACE_EVENT_OBJECT_H_
#define APTRACE_EVENT_OBJECT_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/clock.h"

namespace aptrace {

/// Dense identifier for a system object, assigned by ObjectCatalog.
using ObjectId = uint64_t;
constexpr ObjectId kInvalidObjectId = ~static_cast<ObjectId>(0);

/// Hosts are interned to small ids by the catalog.
using HostId = uint16_t;
constexpr HostId kInvalidHostId = ~static_cast<HostId>(0);

/// The three kinds of system objects in the paper's model (Section II):
/// a file, a process instance, and a network socket.
enum class ObjectType : uint8_t {
  kProcess = 0,
  kFile = 1,
  kIp = 2,  // network connection ("ip" in BDL)
};

const char* ObjectTypeName(ObjectType t);

/// Attributes of a process instance. BDL fields: host, exename, pid,
/// starttime.
struct ProcessAttrs {
  std::string exename;
  int64_t pid = 0;
  TimeMicros start_time = 0;
};

/// Attributes of a file. BDL fields: filename, host, path,
/// last_modification_time, last_access_time, creation_time.
struct FileAttrs {
  std::string path;
  TimeMicros creation_time = 0;
  TimeMicros last_modification_time = 0;
  TimeMicros last_access_time = 0;

  /// Final path component ("filename" in BDL).
  std::string Filename() const;
};

/// Attributes of a network connection. BDL fields: src_ip, dst_ip,
/// start_time.
struct IpAttrs {
  std::string src_ip;
  std::string dst_ip;
  int32_t dst_port = 0;
  TimeMicros start_time = 0;
};

/// A system object: a node in the tracking graph. Immutable once created
/// (the catalog owns them); events reference objects by ObjectId.
class SystemObject {
 public:
  SystemObject(ObjectId id, HostId host, ProcessAttrs attrs)
      : id_(id), host_(host), type_(ObjectType::kProcess),
        attrs_(std::move(attrs)) {}
  SystemObject(ObjectId id, HostId host, FileAttrs attrs)
      : id_(id), host_(host), type_(ObjectType::kFile),
        attrs_(std::move(attrs)) {}
  SystemObject(ObjectId id, HostId host, IpAttrs attrs)
      : id_(id), host_(host), type_(ObjectType::kIp),
        attrs_(std::move(attrs)) {}

  ObjectId id() const { return id_; }
  HostId host() const { return host_; }
  ObjectType type() const { return type_; }

  bool is_process() const { return type_ == ObjectType::kProcess; }
  bool is_file() const { return type_ == ObjectType::kFile; }
  bool is_ip() const { return type_ == ObjectType::kIp; }

  /// Preconditions: the object is of the corresponding type.
  const ProcessAttrs& process() const { return std::get<ProcessAttrs>(attrs_); }
  const FileAttrs& file() const { return std::get<FileAttrs>(attrs_); }
  const IpAttrs& ip() const { return std::get<IpAttrs>(attrs_); }

  /// Short human-readable label used in DOT output and logs, e.g.
  /// "proc:java.exe(4121)", "file:C://Users/a.doc", "ip:10.0.0.1->1.2.3.4".
  std::string Label() const;

 private:
  ObjectId id_;
  HostId host_;
  ObjectType type_;
  std::variant<ProcessAttrs, FileAttrs, IpAttrs> attrs_;
};

}  // namespace aptrace

#endif  // APTRACE_EVENT_OBJECT_H_
