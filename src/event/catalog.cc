#include "event/catalog.h"

namespace aptrace {

HostId ObjectCatalog::InternHost(std::string_view name) {
  auto it = host_ids_.find(std::string(name));
  if (it != host_ids_.end()) return it->second;
  const HostId id = static_cast<HostId>(hosts_.size());
  hosts_.emplace_back(name);
  host_ids_.emplace(hosts_.back(), id);
  return id;
}

const std::string& ObjectCatalog::HostName(HostId id) const {
  // Per-class constant rather than a per-instance member: the sentinel is
  // immutable and identical for every catalog, so all instances (and all
  // threads) can share one string.
  static const std::string kUnknownHost = "?";
  if (id >= hosts_.size()) return kUnknownHost;
  return hosts_[id];
}

ObjectId ObjectCatalog::AddProcess(HostId host, ProcessAttrs attrs) {
  const ObjectId id = objects_.size();
  objects_.emplace_back(id, host, std::move(attrs));
  return id;
}

ObjectId ObjectCatalog::AddFile(HostId host, FileAttrs attrs) {
  const ObjectId id = objects_.size();
  objects_.emplace_back(id, host, std::move(attrs));
  return id;
}

ObjectId ObjectCatalog::AddIp(HostId host, IpAttrs attrs) {
  const ObjectId id = objects_.size();
  objects_.emplace_back(id, host, std::move(attrs));
  return id;
}

std::vector<ObjectId> ObjectCatalog::FindProcessesByName(
    std::string_view exename) const {
  std::vector<ObjectId> out;
  for (const auto& o : objects_) {
    if (o.is_process() && o.process().exename == exename) out.push_back(o.id());
  }
  return out;
}

std::vector<ObjectId> ObjectCatalog::FindFilesByPath(
    std::string_view path) const {
  std::vector<ObjectId> out;
  for (const auto& o : objects_) {
    if (o.is_file() && o.file().path == path) out.push_back(o.id());
  }
  return out;
}

std::vector<ObjectId> ObjectCatalog::FindIpsByDst(
    std::string_view dst_ip) const {
  std::vector<ObjectId> out;
  for (const auto& o : objects_) {
    if (o.is_ip() && o.ip().dst_ip == dst_ip) out.push_back(o.id());
  }
  return out;
}

}  // namespace aptrace
