#ifndef APTRACE_EVENT_CATALOG_H_
#define APTRACE_EVENT_CATALOG_H_

#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "event/object.h"

namespace aptrace {

/// Owns all SystemObjects of a trace and interns host names. Objects get
/// dense, monotonically increasing ids; pointers remain stable for the
/// catalog's lifetime (std::deque storage).
///
/// Not thread-safe during construction; read-only use after the trace is
/// built is safe from any number of threads.
class ObjectCatalog {
 public:
  ObjectCatalog() = default;

  ObjectCatalog(const ObjectCatalog&) = delete;
  ObjectCatalog& operator=(const ObjectCatalog&) = delete;

  /// Interns a host name, returning its dense id.
  HostId InternHost(std::string_view name);

  /// Host name for an id; a shared per-class "?" constant if out of range
  /// (never a dangling reference, even across catalog instances).
  const std::string& HostName(HostId id) const;
  size_t NumHosts() const { return hosts_.size(); }

  /// Creates objects. Each call creates a distinct object (two processes
  /// with the same exename/pid are distinct instances).
  ObjectId AddProcess(HostId host, ProcessAttrs attrs);
  ObjectId AddFile(HostId host, FileAttrs attrs);
  ObjectId AddIp(HostId host, IpAttrs attrs);

  /// Precondition: id < size().
  const SystemObject& Get(ObjectId id) const { return objects_[id]; }
  size_t size() const { return objects_.size(); }

  /// Linear-scan finders, intended for tests, examples, and scenario setup
  /// (not on the analysis hot path).
  std::vector<ObjectId> FindProcessesByName(std::string_view exename) const;
  std::vector<ObjectId> FindFilesByPath(std::string_view path) const;
  std::vector<ObjectId> FindIpsByDst(std::string_view dst_ip) const;

 private:
  std::deque<SystemObject> objects_;
  std::vector<std::string> hosts_;
  std::unordered_map<std::string, HostId> host_ids_;
};

}  // namespace aptrace

#endif  // APTRACE_EVENT_CATALOG_H_
