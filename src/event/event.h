#ifndef APTRACE_EVENT_EVENT_H_
#define APTRACE_EVENT_EVENT_H_

#include <cstdint>
#include <string>

#include "event/object.h"
#include "util/clock.h"

namespace aptrace {

using EventId = uint64_t;
constexpr EventId kInvalidEventId = ~static_cast<EventId>(0);

/// Direction of the data flow of an event (paper Section II): either from
/// the subject (the initiating process) to the object, or vice versa.
enum class FlowDirection : uint8_t {
  kSubjectToObject = 0,  // e.g. process writes file, process sends to socket
  kObjectToSubject = 1,  // e.g. process reads file, process receives
};

/// Syscall-level action kind recorded by the audit framework. BDL's
/// "action_type" field matches against the names from ActionTypeName().
enum class ActionType : uint8_t {
  kRead = 0,     // subject reads object (file/socket) : object -> subject
  kWrite = 1,    // subject writes object               : subject -> object
  kStart = 2,    // subject starts/forks a process      : subject -> object
  kConnect = 3,  // subject opens an outbound socket    : subject -> object
  kAccept = 4,   // subject accepts an inbound socket   : object -> subject
  kInject = 5,   // subject injects into process memory : subject -> object
  kRename = 6,   // subject renames/moves a file        : subject -> object
  kDelete = 7,   // subject unlinks a file              : subject -> object
};

const char* ActionTypeName(ActionType a);

/// The canonical flow direction implied by an action type.
FlowDirection ActionDefaultDirection(ActionType a);

/// A system event: an interaction between the subject (always a process
/// instance) and an object, with a direction of data flow and a timestamp
/// (paper Section II). `amount` carries the number of bytes moved, used by
/// quantity-based heuristics (paper Program 2).
struct Event {
  EventId id = kInvalidEventId;
  ObjectId subject = kInvalidObjectId;  // always a process
  ObjectId object = kInvalidObjectId;
  TimeMicros timestamp = 0;
  uint64_t amount = 0;  // bytes transferred (0 when not applicable)
  ActionType action = ActionType::kRead;
  FlowDirection direction = FlowDirection::kObjectToSubject;
  HostId host = kInvalidHostId;

  /// Data-flow source: the node the data came from.
  ObjectId FlowSource() const {
    return direction == FlowDirection::kSubjectToObject ? subject : object;
  }
  /// Data-flow destination: the node the data went to.
  ObjectId FlowDest() const {
    return direction == FlowDirection::kSubjectToObject ? object : subject;
  }
};

/// An event `b` backward-depends on `a` iff `a` happened strictly before
/// `b` and the destination of `a`'s flow is the source of `b`'s flow
/// (paper Section II).
inline bool BackwardDependsOn(const Event& b, const Event& a) {
  return a.timestamp < b.timestamp && a.FlowDest() == b.FlowSource();
}

}  // namespace aptrace

#endif  // APTRACE_EVENT_EVENT_H_
