#include "bdl/analyzer.h"

#include <functional>

#include "bdl/parser.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/string_util.h"

namespace aptrace::bdl {

namespace {

/// Node/field-path type names. `network` appears in the paper's Program 2.
std::optional<ObjectType> ParseTypeName(std::string_view name) {
  const std::string n = ToLower(name);
  if (n == "proc" || n == "process") return ObjectType::kProcess;
  if (n == "file") return ObjectType::kFile;
  if (n == "ip" || n == "network" || n == "socket") return ObjectType::kIp;
  return std::nullopt;
}

std::optional<EndpointSel> ParseEndpointName(std::string_view name) {
  const std::string n = ToLower(name);
  if (n == "src") return EndpointSel::kFlowSrc;
  if (n == "dst") return EndpointSel::kFlowDst;
  return std::nullopt;
}

enum class FieldValueClass { kString, kInt, kTime, kBool };

FieldValueClass ClassOf(FieldId f) {
  switch (f) {
    case FieldId::kSubjectName:
    case FieldId::kActionType:
    case FieldId::kHost:
    case FieldId::kFilename:
    case FieldId::kPath:
    case FieldId::kExename:
    case FieldId::kSrcIp:
    case FieldId::kDstIp:
      return FieldValueClass::kString;
    case FieldId::kSubjectPid:
    case FieldId::kEventId:
    case FieldId::kAmount:
    case FieldId::kPid:
      return FieldValueClass::kInt;
    case FieldId::kEventTime:
    case FieldId::kLastModificationTime:
    case FieldId::kLastAccessTime:
    case FieldId::kCreationTime:
    case FieldId::kStarttime:
    case FieldId::kIpStartTime:
      return FieldValueClass::kTime;
    case FieldId::kIsReadOnly:
    case FieldId::kIsWriteThrough:
      return FieldValueClass::kBool;
  }
  return FieldValueClass::kString;
}

/// Compiles one leaf: resolves the (possibly dotted) field path and types
/// the literal value against the field. Problems are reported into `diags`;
/// returns null when the leaf cannot be compiled.
std::unique_ptr<Condition> CompileLeaf(const AstExpr& ast,
                                       std::optional<ObjectType> default_scope,
                                       DiagnosticEngine* diags) {
  Condition::LeafSpec leaf;
  leaf.op = ast.op;
  leaf.type_scope = default_scope;

  // Field path: [type.][src|dst.]field
  std::vector<std::string> path = ast.field_path;
  size_t i = 0;
  if (path.size() > 1) {
    if (auto t = ParseTypeName(path[i]); t.has_value()) {
      leaf.type_scope = t;
      i++;
    }
  }
  if (path.size() - i > 1) {
    if (auto e = ParseEndpointName(path[i]); e.has_value()) {
      leaf.endpoint = *e;
      i++;
    }
  }
  if (path.size() - i != 1) {
    diags->Report(DiagCode::kUnknownAttribute, ast.span,
                  "cannot resolve field path '" + Join(path, ".") + "'");
    return nullptr;
  }
  // `src.path` / `dst.ip` style paths look at the flow endpoint whatever
  // its declared type scope; resolve the final component. In endpoint
  // paths "ip" means the destination address of the endpoint socket.
  std::string field_name = path[i];
  if (leaf.endpoint != EndpointSel::kSelf && ToLower(field_name) == "ip") {
    field_name = "dst_ip";
  }
  auto field = ResolveField(std::nullopt, field_name);
  if (!field.ok()) {
    const std::optional<ObjectType> suggest_scope =
        leaf.endpoint == EndpointSel::kSelf ? leaf.type_scope : std::nullopt;
    Diagnostic& d = diags->Report(DiagCode::kUnknownAttribute, ast.span,
                                  "unknown attribute '" + field_name + "'");
    if (const std::string s = SuggestFieldName(suggest_scope, field_name);
        !s.empty()) {
      d.notes.push_back({ast.span, "did you mean '" + s + "'?"});
      d.fixit = s;
    }
    return nullptr;
  }
  leaf.field = field.value();
  if (leaf.endpoint == EndpointSel::kSelf && leaf.type_scope.has_value() &&
      !FieldApplicableTo(leaf.field, *leaf.type_scope)) {
    diags->Report(DiagCode::kAttributeNotApplicable, ast.span,
                  "attribute '" + field_name +
                      "' is not applicable to node type '" +
                      ObjectTypeName(*leaf.type_scope) + "'");
    return nullptr;
  }

  // When the field pins the applicable type (e.g. `exename` exists only on
  // processes), narrow the scope so evaluation NAs out cleanly elsewhere.
  if (leaf.endpoint == EndpointSel::kSelf && !leaf.type_scope.has_value()) {
    for (ObjectType t : {ObjectType::kProcess, ObjectType::kFile,
                         ObjectType::kIp}) {
      if (FieldApplicableTo(leaf.field, t)) {
        // Shared fields apply to all three; only narrow when unique.
        if (leaf.type_scope.has_value()) {
          leaf.type_scope = std::nullopt;  // applies to 2+ types: leave open
          break;
        }
        leaf.type_scope = t;
      }
    }
  }

  // Type the literal.
  const SourceSpan value_span =
      ast.value.span.valid() ? ast.value.span : ast.span;
  switch (ClassOf(leaf.field)) {
    case FieldValueClass::kString:
      if (ast.value.kind != AstValue::Kind::kString &&
          ast.value.kind != AstValue::Kind::kIdent) {
        diags->Report(DiagCode::kValueTypeMismatch, value_span,
                      "field '" + std::string(FieldIdName(leaf.field)) +
                          "' expects a string value");
        return nullptr;
      }
      leaf.str_value = std::make_shared<WildcardMatcher>(ast.value.text);
      break;
    case FieldValueClass::kInt:
      if (ast.value.kind != AstValue::Kind::kNumber) {
        diags->Report(DiagCode::kValueTypeMismatch, value_span,
                      "field '" + std::string(FieldIdName(leaf.field)) +
                          "' expects a numeric value");
        return nullptr;
      }
      leaf.int_value = ast.value.number;
      break;
    case FieldValueClass::kTime: {
      if (ast.value.kind != AstValue::Kind::kString) {
        diags->Report(DiagCode::kValueTypeMismatch, value_span,
                      "field '" + std::string(FieldIdName(leaf.field)) +
                          "' expects a time string "
                          "\"MM/DD/YYYY[:HH:MM:SS]\"");
        return nullptr;
      }
      auto t = ParseBdlTime(ast.value.text);
      if (!t.ok()) {
        diags->Report(DiagCode::kBadTimeLiteral, value_span,
                      t.status().message());
        return nullptr;
      }
      leaf.int_value = t.value();
      break;
    }
    case FieldValueClass::kBool: {
      const std::string v = ToLower(ast.value.text);
      if (ast.value.kind != AstValue::Kind::kIdent ||
          (v != "true" && v != "false")) {
        diags->Report(DiagCode::kValueTypeMismatch, value_span,
                      "field '" + std::string(FieldIdName(leaf.field)) +
                          "' expects true or false");
        return nullptr;
      }
      if (ast.op != CompareOp::kEq && ast.op != CompareOp::kNe) {
        diags->Report(DiagCode::kValueTypeMismatch, ast.span,
                      "boolean fields support only = and !=");
        return nullptr;
      }
      leaf.bool_value = (v == "true");
      break;
    }
  }
  return Condition::Leaf(std::move(leaf));
}

std::unique_ptr<Condition> CompileExpr(const AstExpr& ast,
                                       std::optional<ObjectType> default_scope,
                                       DiagnosticEngine* diags) {
  switch (ast.kind) {
    case AstExpr::Kind::kLeaf:
      return CompileLeaf(ast, default_scope, diags);
    case AstExpr::Kind::kAnd:
    case AstExpr::Kind::kOr: {
      // Compile both children even when one fails so every problem in the
      // expression is reported in a single pass.
      auto l = CompileExpr(*ast.lhs, default_scope, diags);
      auto r = CompileExpr(*ast.rhs, default_scope, diags);
      if (l == nullptr) return r;
      if (r == nullptr) return l;
      return ast.kind == AstExpr::Kind::kAnd
                 ? Condition::And(std::move(l), std::move(r))
                 : Condition::Or(std::move(l), std::move(r));
    }
  }
  return nullptr;
}

bool IsSpecialLeaf(const AstExpr& e, std::string_view name) {
  return e.kind == AstExpr::Kind::kLeaf && e.field_path.size() == 1 &&
         ToLower(e.field_path[0]) == name;
}

/// Removes `time` / `hop` budget leaves from the where tree, recording
/// them in the spec. They may only occur in conjunctive positions (the
/// paper restricts them to `<=`; we also accept `<` as Program 1 does).
/// Problems are reported into `diags`; bad budget leaves are still removed
/// so analysis continues. Returns the pruned tree (possibly null).
std::unique_ptr<AstExpr> ExtractBudgets(std::unique_ptr<AstExpr> e,
                                        TrackingSpec* spec, bool under_or,
                                        DiagnosticEngine* diags) {
  if (e == nullptr) return nullptr;
  if (IsSpecialLeaf(*e, "time") || IsSpecialLeaf(*e, "hop")) {
    if (under_or) {
      diags->Report(DiagCode::kBadBudget, e->span,
                    "'time'/'hop' budgets cannot appear under 'or'");
      return nullptr;
    }
    if (e->op != CompareOp::kLt && e->op != CompareOp::kLe) {
      diags->Report(DiagCode::kBadBudget, e->span,
                    "'time'/'hop' budgets support only < and <=");
      return nullptr;
    }
    if (IsSpecialLeaf(*e, "time")) {
      DurationMicros d = 0;
      if (e->value.kind == AstValue::Kind::kDuration) {
        auto parsed = ParseBdlDuration(e->value.text);
        if (!parsed.ok()) {
          diags->Report(DiagCode::kBadTimeLiteral, e->value.span,
                        parsed.status().message());
          return nullptr;
        }
        d = parsed.value();
      } else if (e->value.kind == AstValue::Kind::kNumber) {
        // A bare number is interpreted as minutes.
        d = e->value.number * kMicrosPerMinute;
      } else {
        diags->Report(DiagCode::kBadBudget, e->span,
                      "'time' budget expects a duration (10mins)");
        return nullptr;
      }
      spec->time_budget = d;
      spec->time_budget_span = e->span;
    } else {
      if (e->value.kind != AstValue::Kind::kNumber) {
        diags->Report(DiagCode::kBadBudget, e->span,
                      "'hop' budget expects a number");
        return nullptr;
      }
      spec->hop_limit = static_cast<int>(e->value.number);
      spec->hop_limit_span = e->span;
    }
    return nullptr;  // remove the leaf
  }
  if (e->kind == AstExpr::Kind::kLeaf) return e;

  const bool next_under_or = under_or || e->kind == AstExpr::Kind::kOr;
  e->lhs = ExtractBudgets(std::move(e->lhs), spec, next_under_or, diags);
  e->rhs = ExtractBudgets(std::move(e->rhs), spec, next_under_or, diags);
  if (e->lhs == nullptr) return std::move(e->rhs);
  if (e->rhs == nullptr) return std::move(e->lhs);
  return e;
}

/// Compiles one prioritize pattern bracket into an EventPattern. Only
/// conjunctions are allowed inside a pattern. Returns false when the
/// pattern had errors (all reported).
bool CompilePrioritizePattern(const AstExpr& ast,
                              QuantityRule::EventPattern* out,
                              DiagnosticEngine* diags) {
  // Flatten the conjunction.
  bool ok = true;
  std::vector<const AstExpr*> leaves;
  std::function<void(const AstExpr&)> flatten = [&](const AstExpr& e) {
    if (e.kind == AstExpr::Kind::kOr) {
      diags->Report(DiagCode::kOrInPrioritize, e.span,
                    "'or' is not supported in prioritize patterns");
      ok = false;
      return;
    }
    if (e.kind == AstExpr::Kind::kAnd) {
      flatten(*e.lhs);
      flatten(*e.rhs);
      return;
    }
    leaves.push_back(&e);
  };
  flatten(ast);
  if (!ok) return false;

  std::unique_ptr<Condition> cond;
  for (const AstExpr* leaf : leaves) {
    // `type = file|proc|network` names the event's object type.
    if (IsSpecialLeaf(*leaf, "type") &&
        (leaf->value.kind == AstValue::Kind::kIdent ||
         leaf->value.kind == AstValue::Kind::kString)) {
      if (auto t = ParseTypeName(leaf->value.text); t.has_value()) {
        out->object_type = t;
        continue;
      }
      // Not a type name: falls through to action_type matching below.
    }
    // `amount >= size`: quantity comparison against the upstream event.
    if (IsSpecialLeaf(*leaf, "amount") &&
        leaf->value.kind == AstValue::Kind::kIdent &&
        ToLower(leaf->value.text) == "size") {
      out->amount_vs_upstream = true;
      out->amount_op = leaf->op;
      continue;
    }
    auto compiled = CompileLeaf(*leaf, std::nullopt, diags);
    if (compiled == nullptr) {
      ok = false;
      continue;
    }
    cond = cond == nullptr
               ? std::move(compiled)
               : Condition::And(std::move(cond), std::move(compiled));
  }
  out->cond = std::move(cond);
  return ok;
}

}  // namespace

const char* TrackDirectionName(TrackDirection d) {
  return d == TrackDirection::kBackward ? "backward" : "forward";
}

std::optional<TrackingSpec> AnalyzeRecover(const AstScript& script,
                                           DiagnosticEngine* diags) {
  const size_t errors_before = diags->num_errors();
  TrackingSpec spec;
  spec.direction =
      script.forward ? TrackDirection::kForward : TrackDirection::kBackward;

  spec.window_from_span = script.from_span;
  spec.window_to_span = script.to_span;
  if (script.from_time.has_value()) {
    auto t = ParseBdlTime(*script.from_time);
    if (!t.ok()) {
      diags->Report(DiagCode::kBadTimeLiteral, script.from_span,
                    t.status().message());
    } else {
      spec.time_from = t.value();
    }
  }
  if (script.to_time.has_value()) {
    auto t = ParseBdlTime(*script.to_time);
    if (!t.ok()) {
      diags->Report(DiagCode::kBadTimeLiteral, script.to_span,
                    t.status().message());
    } else {
      spec.time_to = t.value();
    }
  }
  if (spec.time_from.has_value() && spec.time_to.has_value() &&
      *spec.time_from >= *spec.time_to) {
    Diagnostic& d = diags->Report(
        DiagCode::kInvertedTimeRange, script.from_span,
        "'from' time must precede 'to' time; this window matches no event");
    d.notes.push_back({script.to_span, "'to' time is here"});
  }
  for (const std::string& h : script.hosts) {
    spec.hosts.push_back(ToLower(h));
  }

  for (const AstNode& node : script.chain) {
    NodePattern pattern;
    pattern.wildcard = node.wildcard;
    pattern.var = node.var;
    if (!node.wildcard) {
      auto type = ParseTypeName(node.type_name);
      if (!type.has_value()) {
        diags->Report(DiagCode::kUnknownNodeType, node.span,
                      "unknown node type '" + node.type_name +
                          "' (want proc|file|ip)");
        spec.chain.push_back(std::move(pattern));
        continue;
      }
      pattern.type = type;
      if (node.cond != nullptr) {
        auto cond = CompileExpr(*node.cond, pattern.type, diags);
        if (cond != nullptr) {
          pattern.cond =
              std::shared_ptr<const Condition>(std::move(cond));
        }
      }
    }
    spec.chain.push_back(std::move(pattern));
  }

  if (script.where != nullptr) {
    // Deep-copy the where AST so budget extraction can restructure it
    // without mutating the caller's AST.
    auto pruned =
        ExtractBudgets(CloneExpr(*script.where), &spec, false, diags);
    if (pruned != nullptr) {
      auto cond = CompileExpr(*pruned, std::nullopt, diags);
      if (cond != nullptr) {
        spec.where = std::shared_ptr<const Condition>(std::move(cond));
      }
    }
  }

  for (const AstPrioritize& pri : script.prioritize) {
    QuantityRule rule;
    bool ok = true;
    for (const auto& pattern : pri.patterns) {
      QuantityRule::EventPattern ep;
      ok &= CompilePrioritizePattern(*pattern, &ep, diags);
      rule.chain.push_back(std::move(ep));
    }
    if (ok) spec.prioritize.push_back(std::move(rule));
  }

  if (script.output_path.has_value()) spec.output_path = *script.output_path;
  if (diags->num_errors() != errors_before) return std::nullopt;
  return spec;
}

Result<TrackingSpec> Analyze(const AstScript& script) {
  DiagnosticEngine diags;
  auto spec = AnalyzeRecover(script, &diags);
  if (!spec.has_value()) {
    diags.SortBySource();
    return diags.FirstErrorStatus("BDL semantic error");
  }
  return std::move(*spec);
}

Result<TrackingSpec> CompileBdl(std::string_view text) {
  APTRACE_SPAN("bdl/compile");
  static obs::Counter* const compiles =
      obs::Metrics().FindOrCreateCounter(obs::names::kBdlCompiles);
  static obs::Counter* const errors =
      obs::Metrics().FindOrCreateCounter(obs::names::kBdlCompileErrors);
  static obs::LatencyHistogram* const latency =
      obs::Metrics().FindOrCreateHistogram(obs::names::kBdlCompileLatency);
  const TimeMicros start = MonotonicNowMicros();
  compiles->Add();
  DiagnosticEngine diags;
  const AstScript ast = Parser::ParseRecover(text, &diags);
  std::optional<TrackingSpec> spec;
  if (!diags.HasErrors()) spec = AnalyzeRecover(ast, &diags);
  if (diags.HasErrors() || !spec.has_value()) {
    errors->Add();
    diags.SortBySource();
    // Keep the historical prefixes per failing phase.
    const DiagCode first = diags.diagnostics().empty()
                               ? DiagCode::kSyntaxError
                               : diags.diagnostics().front().code;
    const char* prefix = first == DiagCode::kLexError ? "BDL lex error"
                         : (first == DiagCode::kSyntaxError ||
                            first == DiagCode::kBadChain)
                             ? "BDL parse error"
                             : "BDL semantic error";
    return diags.FirstErrorStatus(prefix);
  }
  spec->source_text = std::string(text);
  latency->Observe(MicrosToSeconds(MonotonicNowMicros() - start));
  return std::move(*spec);
}

bool NodePattern::Matches(const EvalContext& ctx) const {
  if (wildcard) return true;
  if (ctx.object == nullptr) return false;
  if (type.has_value() && ctx.object->type() != *type) return false;
  return ConditionMatches(cond.get(), ctx);
}

}  // namespace aptrace::bdl
