#include "bdl/analyzer.h"

#include <functional>

#include "bdl/parser.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/string_util.h"

namespace aptrace::bdl {

namespace {

Status ErrorAt(int line, const std::string& msg) {
  return Status::InvalidArgument("BDL semantic error at line " +
                                 std::to_string(line) + ": " + msg);
}

/// Node/field-path type names. `network` appears in the paper's Program 2.
std::optional<ObjectType> ParseTypeName(std::string_view name) {
  const std::string n = ToLower(name);
  if (n == "proc" || n == "process") return ObjectType::kProcess;
  if (n == "file") return ObjectType::kFile;
  if (n == "ip" || n == "network" || n == "socket") return ObjectType::kIp;
  return std::nullopt;
}

std::optional<EndpointSel> ParseEndpointName(std::string_view name) {
  const std::string n = ToLower(name);
  if (n == "src") return EndpointSel::kFlowSrc;
  if (n == "dst") return EndpointSel::kFlowDst;
  return std::nullopt;
}

enum class FieldValueClass { kString, kInt, kTime, kBool };

FieldValueClass ClassOf(FieldId f) {
  switch (f) {
    case FieldId::kSubjectName:
    case FieldId::kActionType:
    case FieldId::kHost:
    case FieldId::kFilename:
    case FieldId::kPath:
    case FieldId::kExename:
    case FieldId::kSrcIp:
    case FieldId::kDstIp:
      return FieldValueClass::kString;
    case FieldId::kSubjectPid:
    case FieldId::kEventId:
    case FieldId::kAmount:
    case FieldId::kPid:
      return FieldValueClass::kInt;
    case FieldId::kEventTime:
    case FieldId::kLastModificationTime:
    case FieldId::kLastAccessTime:
    case FieldId::kCreationTime:
    case FieldId::kStarttime:
    case FieldId::kIpStartTime:
      return FieldValueClass::kTime;
    case FieldId::kIsReadOnly:
    case FieldId::kIsWriteThrough:
      return FieldValueClass::kBool;
  }
  return FieldValueClass::kString;
}

/// Compiles one leaf: resolves the (possibly dotted) field path and types
/// the literal value against the field.
Result<std::unique_ptr<Condition>> CompileLeaf(
    const AstExpr& ast, std::optional<ObjectType> default_scope) {
  Condition::LeafSpec leaf;
  leaf.op = ast.op;
  leaf.type_scope = default_scope;

  // Field path: [type.][src|dst.]field
  std::vector<std::string> path = ast.field_path;
  size_t i = 0;
  if (path.size() > 1) {
    if (auto t = ParseTypeName(path[i]); t.has_value()) {
      leaf.type_scope = t;
      i++;
    }
  }
  if (path.size() - i > 1) {
    if (auto e = ParseEndpointName(path[i]); e.has_value()) {
      leaf.endpoint = *e;
      i++;
    }
  }
  if (path.size() - i != 1) {
    return ErrorAt(ast.line,
                   "cannot resolve field path '" + Join(path, ".") + "'");
  }
  // `src.path` / `dst.ip` style paths look at the flow endpoint whatever
  // its declared type scope; resolve the final component. In endpoint
  // paths "ip" means the destination address of the endpoint socket.
  std::string field_name = path[i];
  if (leaf.endpoint != EndpointSel::kSelf && ToLower(field_name) == "ip") {
    field_name = "dst_ip";
  }
  auto field = ResolveField(
      leaf.endpoint == EndpointSel::kSelf ? leaf.type_scope : std::nullopt,
      field_name);
  if (!field.ok()) return ErrorAt(ast.line, field.status().message());
  leaf.field = field.value();

  // When the field pins the applicable type (e.g. `exename` exists only on
  // processes), narrow the scope so evaluation NAs out cleanly elsewhere.
  if (leaf.endpoint == EndpointSel::kSelf && !leaf.type_scope.has_value()) {
    for (ObjectType t : {ObjectType::kProcess, ObjectType::kFile,
                         ObjectType::kIp}) {
      if (FieldApplicableTo(leaf.field, t)) {
        // Shared fields apply to all three; only narrow when unique.
        if (leaf.type_scope.has_value()) {
          leaf.type_scope = std::nullopt;  // applies to 2+ types: leave open
          break;
        }
        leaf.type_scope = t;
      }
    }
  }

  // Type the literal.
  switch (ClassOf(leaf.field)) {
    case FieldValueClass::kString:
      if (ast.value.kind != AstValue::Kind::kString &&
          ast.value.kind != AstValue::Kind::kIdent) {
        return ErrorAt(ast.line, "field '" + std::string(FieldIdName(leaf.field)) +
                                     "' expects a string value");
      }
      leaf.str_value = std::make_shared<WildcardMatcher>(ast.value.text);
      break;
    case FieldValueClass::kInt:
      if (ast.value.kind != AstValue::Kind::kNumber) {
        return ErrorAt(ast.line, "field '" + std::string(FieldIdName(leaf.field)) +
                                     "' expects a numeric value");
      }
      leaf.int_value = ast.value.number;
      break;
    case FieldValueClass::kTime: {
      if (ast.value.kind != AstValue::Kind::kString) {
        return ErrorAt(ast.line,
                       "field '" + std::string(FieldIdName(leaf.field)) +
                           "' expects a time string \"MM/DD/YYYY[:HH:MM:SS]\"");
      }
      auto t = ParseBdlTime(ast.value.text);
      if (!t.ok()) return ErrorAt(ast.line, t.status().message());
      leaf.int_value = t.value();
      break;
    }
    case FieldValueClass::kBool: {
      const std::string v = ToLower(ast.value.text);
      if (ast.value.kind != AstValue::Kind::kIdent || (v != "true" && v != "false")) {
        return ErrorAt(ast.line, "field '" + std::string(FieldIdName(leaf.field)) +
                                     "' expects true or false");
      }
      if (ast.op != CompareOp::kEq && ast.op != CompareOp::kNe) {
        return ErrorAt(ast.line, "boolean fields support only = and !=");
      }
      leaf.bool_value = (v == "true");
      break;
    }
  }
  return Condition::Leaf(std::move(leaf));
}

Result<std::unique_ptr<Condition>> CompileExpr(
    const AstExpr& ast, std::optional<ObjectType> default_scope) {
  switch (ast.kind) {
    case AstExpr::Kind::kLeaf:
      return CompileLeaf(ast, default_scope);
    case AstExpr::Kind::kAnd: {
      auto l = CompileExpr(*ast.lhs, default_scope);
      if (!l.ok()) return l.status();
      auto r = CompileExpr(*ast.rhs, default_scope);
      if (!r.ok()) return r.status();
      return Condition::And(std::move(l.value()), std::move(r.value()));
    }
    case AstExpr::Kind::kOr: {
      auto l = CompileExpr(*ast.lhs, default_scope);
      if (!l.ok()) return l.status();
      auto r = CompileExpr(*ast.rhs, default_scope);
      if (!r.ok()) return r.status();
      return Condition::Or(std::move(l.value()), std::move(r.value()));
    }
  }
  return Status::Internal("unreachable");
}

bool IsSpecialLeaf(const AstExpr& e, std::string_view name) {
  return e.kind == AstExpr::Kind::kLeaf && e.field_path.size() == 1 &&
         ToLower(e.field_path[0]) == name;
}

/// Removes `time` / `hop` budget leaves from the where tree, recording
/// them in the spec. They may only occur in conjunctive positions (the
/// paper restricts them to `<=`; we also accept `<` as Program 1 does).
/// Returns the pruned tree (possibly null).
Result<std::unique_ptr<AstExpr>> ExtractBudgets(std::unique_ptr<AstExpr> e,
                                                TrackingSpec* spec,
                                                bool under_or) {
  if (e == nullptr) return std::unique_ptr<AstExpr>(nullptr);
  if (IsSpecialLeaf(*e, "time") || IsSpecialLeaf(*e, "hop")) {
    if (under_or) {
      return ErrorAt(e->line,
                     "'time'/'hop' budgets cannot appear under 'or'");
    }
    if (e->op != CompareOp::kLt && e->op != CompareOp::kLe) {
      return ErrorAt(e->line, "'time'/'hop' budgets support only < and <=");
    }
    if (IsSpecialLeaf(*e, "time")) {
      DurationMicros d = 0;
      if (e->value.kind == AstValue::Kind::kDuration) {
        auto parsed = ParseBdlDuration(e->value.text);
        if (!parsed.ok()) return ErrorAt(e->line, parsed.status().message());
        d = parsed.value();
      } else if (e->value.kind == AstValue::Kind::kNumber) {
        // A bare number is interpreted as minutes.
        d = e->value.number * kMicrosPerMinute;
      } else {
        return ErrorAt(e->line, "'time' budget expects a duration (10mins)");
      }
      spec->time_budget = d;
    } else {
      if (e->value.kind != AstValue::Kind::kNumber) {
        return ErrorAt(e->line, "'hop' budget expects a number");
      }
      spec->hop_limit = static_cast<int>(e->value.number);
    }
    return std::unique_ptr<AstExpr>(nullptr);  // remove the leaf
  }
  if (e->kind == AstExpr::Kind::kLeaf) return e;

  const bool next_under_or = under_or || e->kind == AstExpr::Kind::kOr;
  auto l = ExtractBudgets(std::move(e->lhs), spec, next_under_or);
  if (!l.ok()) return l.status();
  auto r = ExtractBudgets(std::move(e->rhs), spec, next_under_or);
  if (!r.ok()) return r.status();
  e->lhs = std::move(l.value());
  e->rhs = std::move(r.value());
  if (e->lhs == nullptr) return std::move(e->rhs);
  if (e->rhs == nullptr) return std::move(e->lhs);
  return e;
}

/// Compiles one prioritize pattern bracket into an EventPattern. Only
/// conjunctions are allowed inside a pattern.
Status CompilePrioritizePattern(const AstExpr& ast,
                                QuantityRule::EventPattern* out) {
  // Flatten the conjunction.
  std::vector<const AstExpr*> leaves;
  std::function<Status(const AstExpr&)> flatten =
      [&](const AstExpr& e) -> Status {
    if (e.kind == AstExpr::Kind::kOr) {
      return ErrorAt(e.line, "'or' is not supported in prioritize patterns");
    }
    if (e.kind == AstExpr::Kind::kAnd) {
      if (auto s = flatten(*e.lhs); !s.ok()) return s;
      return flatten(*e.rhs);
    }
    leaves.push_back(&e);
    return Status::Ok();
  };
  if (auto s = flatten(ast); !s.ok()) return s;

  std::unique_ptr<Condition> cond;
  for (const AstExpr* leaf : leaves) {
    // `type = file|proc|network` names the event's object type.
    if (IsSpecialLeaf(*leaf, "type") &&
        (leaf->value.kind == AstValue::Kind::kIdent ||
         leaf->value.kind == AstValue::Kind::kString)) {
      if (auto t = ParseTypeName(leaf->value.text); t.has_value()) {
        out->object_type = t;
        continue;
      }
      // Not a type name: falls through to action_type matching below.
    }
    // `amount >= size`: quantity comparison against the upstream event.
    if (IsSpecialLeaf(*leaf, "amount") &&
        leaf->value.kind == AstValue::Kind::kIdent &&
        ToLower(leaf->value.text) == "size") {
      out->amount_vs_upstream = true;
      out->amount_op = leaf->op;
      continue;
    }
    auto compiled = CompileLeaf(*leaf, std::nullopt);
    if (!compiled.ok()) return compiled.status();
    cond = cond == nullptr
               ? std::move(compiled.value())
               : Condition::And(std::move(cond), std::move(compiled.value()));
  }
  out->cond = std::move(cond);
  return Status::Ok();
}

}  // namespace

const char* TrackDirectionName(TrackDirection d) {
  return d == TrackDirection::kBackward ? "backward" : "forward";
}

Result<TrackingSpec> Analyze(const AstScript& script) {
  TrackingSpec spec;
  spec.direction =
      script.forward ? TrackDirection::kForward : TrackDirection::kBackward;

  if (script.from_time.has_value()) {
    auto t = ParseBdlTime(*script.from_time);
    if (!t.ok()) return t.status();
    spec.time_from = t.value();
  }
  if (script.to_time.has_value()) {
    auto t = ParseBdlTime(*script.to_time);
    if (!t.ok()) return t.status();
    spec.time_to = t.value();
  }
  if (spec.time_from.has_value() && spec.time_to.has_value() &&
      *spec.time_from >= *spec.time_to) {
    return Status::InvalidArgument(
        "BDL semantic error: 'from' time must precede 'to' time");
  }
  for (const std::string& h : script.hosts) {
    spec.hosts.push_back(ToLower(h));
  }

  for (const AstNode& node : script.chain) {
    NodePattern pattern;
    pattern.wildcard = node.wildcard;
    pattern.var = node.var;
    if (!node.wildcard) {
      auto type = ParseTypeName(node.type_name);
      if (!type.has_value()) {
        return ErrorAt(node.line, "unknown node type '" + node.type_name +
                                      "' (want proc|file|ip)");
      }
      pattern.type = type;
      if (node.cond != nullptr) {
        auto cond = CompileExpr(*node.cond, pattern.type);
        if (!cond.ok()) return cond.status();
        pattern.cond = std::shared_ptr<const Condition>(
            std::move(cond.value()));
      }
    }
    spec.chain.push_back(std::move(pattern));
  }

  if (script.where != nullptr) {
    // Deep-copy the where AST so budget extraction can restructure it
    // without mutating the caller's AST.
    std::function<std::unique_ptr<AstExpr>(const AstExpr&)> clone =
        [&](const AstExpr& e) -> std::unique_ptr<AstExpr> {
      auto c = std::make_unique<AstExpr>();
      c->kind = e.kind;
      c->field_path = e.field_path;
      c->op = e.op;
      c->value = e.value;
      c->line = e.line;
      if (e.lhs) c->lhs = clone(*e.lhs);
      if (e.rhs) c->rhs = clone(*e.rhs);
      return c;
    };
    auto pruned = ExtractBudgets(clone(*script.where), &spec, false);
    if (!pruned.ok()) return pruned.status();
    if (pruned.value() != nullptr) {
      auto cond = CompileExpr(*pruned.value(), std::nullopt);
      if (!cond.ok()) return cond.status();
      spec.where = std::shared_ptr<const Condition>(std::move(cond.value()));
    }
  }

  for (const AstPrioritize& pri : script.prioritize) {
    QuantityRule rule;
    for (const auto& pattern : pri.patterns) {
      QuantityRule::EventPattern ep;
      if (auto s = CompilePrioritizePattern(*pattern, &ep); !s.ok()) return s;
      rule.chain.push_back(std::move(ep));
    }
    spec.prioritize.push_back(std::move(rule));
  }

  if (script.output_path.has_value()) spec.output_path = *script.output_path;
  return spec;
}

Result<TrackingSpec> CompileBdl(std::string_view text) {
  APTRACE_SPAN("bdl/compile");
  static obs::Counter* const compiles =
      obs::Metrics().FindOrCreateCounter(obs::names::kBdlCompiles);
  static obs::Counter* const errors =
      obs::Metrics().FindOrCreateCounter(obs::names::kBdlCompileErrors);
  static obs::LatencyHistogram* const latency =
      obs::Metrics().FindOrCreateHistogram(obs::names::kBdlCompileLatency);
  const TimeMicros start = MonotonicNowMicros();
  compiles->Add();
  auto ast = Parser::Parse(text);
  if (!ast.ok()) {
    errors->Add();
    return ast.status();
  }
  auto spec = Analyze(ast.value());
  if (!spec.ok()) {
    errors->Add();
    return spec.status();
  }
  spec.value().source_text = std::string(text);
  latency->Observe(MicrosToSeconds(MonotonicNowMicros() - start));
  return spec;
}

bool NodePattern::Matches(const EvalContext& ctx) const {
  if (wildcard) return true;
  if (ctx.object == nullptr) return false;
  if (type.has_value() && ctx.object->type() != *type) return false;
  return ConditionMatches(cond.get(), ctx);
}

}  // namespace aptrace::bdl
