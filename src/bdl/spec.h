#ifndef APTRACE_BDL_SPEC_H_
#define APTRACE_BDL_SPEC_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bdl/ast.h"
#include "bdl/condition.h"
#include "event/object.h"
#include "util/clock.h"

namespace aptrace::bdl {

/// Tracking direction. The paper's contribution is backward (provenance)
/// tracking; forward tracking — "what did the compromise taint?" — is the
/// standard companion analysis (King & Chen 2003 §5) and shares the whole
/// machinery with the data-flow arrows reversed.
enum class TrackDirection : uint8_t { kBackward, kForward };

const char* TrackDirectionName(TrackDirection d);

/// A compiled node of the tracking statement chain n1 -> n2 -> ... -> nk.
struct NodePattern {
  bool wildcard = false;
  std::optional<ObjectType> type;  // engaged unless wildcard
  std::string var;
  std::shared_ptr<const Condition> cond;  // may be null (no conditions)

  /// True if the object (in the context of `ctx.event`, when present)
  /// satisfies this pattern.
  bool Matches(const EvalContext& ctx) const;
};

/// Compiled `prioritize` rule (paper Program 2): a chain of event patterns
/// p0 <- p1 <- ..., meaning an event matching p_{i+1} feeds the source of
/// an event matching p_i. `amount_vs_upstream` encodes the quantity clause
/// `amount >= size`: the downstream event must move at least as many bytes
/// as the upstream one.
struct QuantityRule {
  struct EventPattern {
    std::optional<ObjectType> object_type;  // from a `type = ...` clause
    std::shared_ptr<const Condition> cond;  // may be null
    bool amount_vs_upstream = false;
    CompareOp amount_op = CompareOp::kGe;
  };
  std::vector<EventPattern> chain;
};

/// The Refiner's compiled "metadata": everything the Executor needs to run
/// one backtracking analysis (paper Figure 3).
struct TrackingSpec {
  TrackDirection direction = TrackDirection::kBackward;

  /// General constraints; unset means "default range" (the engine
  /// substitutes the store's full time span). The spans locate the time
  /// literals in the source for lint anchoring.
  std::optional<TimeMicros> time_from;
  std::optional<TimeMicros> time_to;
  SourceSpan window_from_span;
  SourceSpan window_to_span;
  /// Host name patterns (lowercased); empty = all hosts.
  std::vector<std::string> hosts;

  /// chain[0] is the starting point (never wildcard), chain.back() the end
  /// point (may be wildcard), the rest intermediate points.
  std::vector<NodePattern> chain;

  /// Object filter from the where statement (kNA-neutral semantics);
  /// null = keep everything.
  std::shared_ptr<const Condition> where;

  /// Termination budgets from `where time <= ...` / `where hop <= ...`;
  /// negative = unlimited. The spans point at the budget leaves in the
  /// source so the linter can anchor sanity warnings there.
  DurationMicros time_budget = -1;
  int hop_limit = -1;
  SourceSpan time_budget_span;
  SourceSpan hop_limit_span;

  std::vector<QuantityRule> prioritize;

  /// From `output = "path"`; empty = no DOT dump.
  std::string output_path;

  /// Original script text (for diffs and error reporting).
  std::string source_text;

  size_t NumIntermediatePoints() const {
    return chain.size() >= 2 ? chain.size() - 2 : 0;
  }
  bool HasEndConstraint() const {
    return chain.size() >= 2 && !chain.back().wildcard;
  }
};

}  // namespace aptrace::bdl

#endif  // APTRACE_BDL_SPEC_H_
