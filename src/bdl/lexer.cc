#include "bdl/lexer.h"

#include <cctype>

namespace aptrace::bdl {

const char* TokenKindName(TokenKind k) {
  switch (k) {
    case TokenKind::kIdent: return "identifier";
    case TokenKind::kString: return "string";
    case TokenKind::kNumber: return "number";
    case TokenKind::kDuration: return "duration";
    case TokenKind::kLt: return "'<'";
    case TokenKind::kLe: return "'<='";
    case TokenKind::kGt: return "'>'";
    case TokenKind::kGe: return "'>='";
    case TokenKind::kEq: return "'='";
    case TokenKind::kNe: return "'!='";
    case TokenKind::kArrow: return "'->'";
    case TokenKind::kBackArrow: return "'<-'";
    case TokenKind::kComma: return "','";
    case TokenKind::kDot: return "'.'";
    case TokenKind::kStar: return "'*'";
    case TokenKind::kLBracket: return "'['";
    case TokenKind::kRBracket: return "']'";
    case TokenKind::kLParen: return "'('";
    case TokenKind::kRParen: return "')'";
    case TokenKind::kEnd: return "end of input";
  }
  return "?";
}

Lexer::Lexer(std::string_view input) : input_(input) {}

char Lexer::Peek(size_t ahead) const {
  return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
}

char Lexer::Advance() {
  const char c = input_[pos_++];
  if (c == '\n') {
    line_++;
    column_ = 1;
  } else {
    column_++;
  }
  return c;
}

Result<std::vector<Token>> Lexer::Tokenize() {
  DiagnosticEngine diags;
  std::vector<Token> tokens = Tokenize(&diags);
  if (diags.HasErrors()) return diags.FirstErrorStatus("BDL lex error");
  return tokens;
}

std::vector<Token> Lexer::Tokenize(DiagnosticEngine* diags) {
  std::vector<Token> out;
  while (!AtEnd()) {
    const char c = Peek();
    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      Advance();
      continue;
    }
    // Line comments.
    if (c == '/' && Peek(1) == '/') {
      while (!AtEnd() && Peek() != '\n') Advance();
      continue;
    }

    Token tok;
    tok.line = line_;
    tok.column = column_;
    const size_t start_pos = pos_;

    // String literal.
    if (c == '"') {
      Advance();
      std::string text;
      bool closed = false;
      while (!AtEnd()) {
        const char d = Advance();
        if (d == '"') {
          closed = true;
          break;
        }
        if (d == '\\' && !AtEnd() && (Peek() == '"' || Peek() == '\\')) {
          text += Advance();
        } else {
          text += d;
        }
      }
      if (!closed) {
        diags->Report(DiagCode::kLexError,
                      SourceSpan::At(tok.line, tok.column, 1),
                      "unterminated string literal");
      }
      tok.kind = TokenKind::kString;
      tok.text = std::move(text);
      tok.length = static_cast<int>(pos_ - start_pos);
      out.push_back(std::move(tok));
      continue;
    }

    // Number or duration.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string text;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        text += Advance();
      }
      if (!AtEnd() && std::isalpha(static_cast<unsigned char>(Peek()))) {
        // Duration literal: keep the unit characters.
        while (!AtEnd() &&
               std::isalpha(static_cast<unsigned char>(Peek()))) {
          text += Advance();
        }
        tok.kind = TokenKind::kDuration;
        tok.text = std::move(text);
      } else {
        tok.kind = TokenKind::kNumber;
        tok.number = 0;
        for (char d : text) tok.number = tok.number * 10 + (d - '0');
        tok.text = std::move(text);
      }
      tok.length = static_cast<int>(pos_ - start_pos);
      out.push_back(std::move(tok));
      continue;
    }

    // Identifier.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string text;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_')) {
        text += Advance();
      }
      tok.kind = TokenKind::kIdent;
      tok.text = std::move(text);
      tok.length = static_cast<int>(pos_ - start_pos);
      out.push_back(std::move(tok));
      continue;
    }

    // Operators and punctuation.
    bool bad = false;
    switch (c) {
      case '<':
        Advance();
        if (Peek() == '=') {
          Advance();
          tok.kind = TokenKind::kLe;
        } else if (Peek() == '-') {
          Advance();
          tok.kind = TokenKind::kBackArrow;
        } else {
          tok.kind = TokenKind::kLt;
        }
        break;
      case '>':
        Advance();
        if (Peek() == '=') {
          Advance();
          tok.kind = TokenKind::kGe;
        } else {
          tok.kind = TokenKind::kGt;
        }
        break;
      case '=':
        Advance();
        // Accept both `=` and `==` for equality.
        if (Peek() == '=') Advance();
        tok.kind = TokenKind::kEq;
        break;
      case '!':
        Advance();
        if (Peek() != '=') {
          diags->Report(DiagCode::kLexError,
                        SourceSpan::At(tok.line, tok.column, 1),
                        "expected '=' after '!'");
          bad = true;
          break;
        }
        Advance();
        tok.kind = TokenKind::kNe;
        break;
      case '-':
        Advance();
        if (Peek() != '>') {
          diags->Report(DiagCode::kLexError,
                        SourceSpan::At(tok.line, tok.column, 1),
                        "expected '>' after '-'");
          bad = true;
          break;
        }
        Advance();
        tok.kind = TokenKind::kArrow;
        break;
      case ',':
        Advance();
        tok.kind = TokenKind::kComma;
        break;
      case '.':
        Advance();
        tok.kind = TokenKind::kDot;
        break;
      case '*':
        Advance();
        tok.kind = TokenKind::kStar;
        break;
      case '[':
        Advance();
        tok.kind = TokenKind::kLBracket;
        break;
      case ']':
        Advance();
        tok.kind = TokenKind::kRBracket;
        break;
      case '(':
        Advance();
        tok.kind = TokenKind::kLParen;
        break;
      case ')':
        Advance();
        tok.kind = TokenKind::kRParen;
        break;
      default: {
        Advance();
        std::string msg = "unexpected character ";
        if (std::isprint(static_cast<unsigned char>(c))) {
          msg += std::string("'") + c + "'";
        } else {
          msg += "(byte " + std::to_string(static_cast<unsigned char>(c)) +
                 ")";
        }
        diags->Report(DiagCode::kLexError,
                      SourceSpan::At(tok.line, tok.column, 1),
                      std::move(msg));
        bad = true;
        break;
      }
    }
    if (bad) continue;  // skip the offending character and carry on
    tok.length = static_cast<int>(pos_ - start_pos);
    out.push_back(std::move(tok));
  }

  Token end;
  end.kind = TokenKind::kEnd;
  end.line = line_;
  end.column = column_;
  end.length = 0;
  out.push_back(std::move(end));
  return out;
}

}  // namespace aptrace::bdl
