#include "bdl/parser.h"

#include "bdl/lexer.h"
#include "util/string_util.h"

namespace aptrace::bdl {

namespace {

SourceSpan SpanOf(const Token& t) {
  return SourceSpan::At(t.line, t.column, t.length);
}

}  // namespace

Result<AstScript> Parser::Parse(std::string_view text) {
  DiagnosticEngine diags;
  AstScript script = ParseRecover(text, &diags);
  if (diags.HasErrors()) {
    diags.SortBySource();
    // Preserve the historical prefixes: lexical problems say "lex error".
    const bool lexical =
        !diags.diagnostics().empty() &&
        diags.diagnostics().front().code == DiagCode::kLexError;
    return diags.FirstErrorStatus(lexical ? "BDL lex error"
                                          : "BDL parse error");
  }
  return script;
}

AstScript Parser::ParseRecover(std::string_view text,
                               DiagnosticEngine* diags) {
  Lexer lexer(text);
  Parser parser(lexer.Tokenize(diags), diags);
  return parser.ParseScript();
}

const Token& Parser::Peek(size_t ahead) const {
  const size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::Advance() {
  const Token& t = Peek();
  if (pos_ + 1 < tokens_.size()) pos_++;
  return t;
}

bool Parser::CheckKeyword(std::string_view keyword) const {
  return Peek().kind == TokenKind::kIdent &&
         ToLower(Peek().text) == ToLower(keyword);
}

bool Parser::MatchKeyword(std::string_view keyword) {
  if (!CheckKeyword(keyword)) return false;
  Advance();
  return true;
}

bool Parser::AtClauseKeyword() const {
  if (Peek().kind != TokenKind::kIdent) return false;
  const std::string kw = ToLower(Peek().text);
  return kw == "where" || kw == "prioritize" || kw == "output" ||
         kw == "from" || kw == "in" || kw == "backward" || kw == "forward";
}

bool Parser::Expect(TokenKind kind, const char* what) {
  if (Check(kind)) {
    Advance();
    return true;
  }
  ErrorHere(std::string("expected ") + TokenKindName(kind) + " (" + what +
            "), found " + TokenKindName(Peek().kind) +
            (Peek().text.empty() ? "" : " '" + Peek().text + "'"));
  return false;
}

void Parser::ErrorHere(const std::string& msg) {
  diags_->Report(DiagCode::kSyntaxError, SpanHere(), msg);
}

SourceSpan Parser::SpanHere() const { return SpanOf(Peek()); }

void Parser::SyncToClause() {
  while (!Check(TokenKind::kEnd) && !AtClauseKeyword()) Advance();
}

void Parser::SyncPast(TokenKind kind) {
  while (!Check(TokenKind::kEnd)) {
    if (Check(kind)) {
      Advance();
      return;
    }
    if (AtClauseKeyword() || Check(TokenKind::kArrow)) return;
    // Never skip past the enclosing condition list while hunting for a
    // smaller delimiter.
    if (kind != TokenKind::kRBracket && Check(TokenKind::kRBracket)) return;
    Advance();
  }
}

AstScript Parser::ParseScript() {
  AstScript script;

  // General constraints: `from .. to ..` and/or `in ..`, in any order.
  while (CheckKeyword("from") || CheckKeyword("in")) ParseGeneral(&script);

  // Tracking statement (required).
  if (CheckKeyword("backward") || CheckKeyword("forward")) {
    ParseTracking(&script);
  } else {
    ErrorHere("expected a 'backward' or 'forward' tracking statement");
    while (!Check(TokenKind::kEnd) && !AtClauseKeyword()) Advance();
    if (CheckKeyword("backward") || CheckKeyword("forward")) {
      ParseTracking(&script);
    }
  }

  // Optional clauses, in any order. Junk between clauses is reported once
  // per run and skipped so the rest of the script still gets checked.
  for (;;) {
    if (CheckKeyword("where")) {
      ParseWhere(&script);
      continue;
    }
    if (CheckKeyword("prioritize")) {
      ParsePrioritize(&script);
      continue;
    }
    if (CheckKeyword("output")) {
      ParseOutput(&script);
      continue;
    }
    if (CheckKeyword("from") || CheckKeyword("in")) {
      ErrorHere("general constraints ('from'/'in') must precede the "
                "tracking statement");
      ParseGeneral(&script);
      continue;
    }
    if (Check(TokenKind::kEnd)) break;
    ErrorHere("unexpected trailing input: found " +
              std::string(TokenKindName(Peek().kind)) +
              (Peek().text.empty() ? "" : " '" + Peek().text + "'"));
    Advance();  // guarantee progress even when the junk is a keyword
    SyncToClause();
  }
  return script;
}

void Parser::ParseGeneral(AstScript* script) {
  if (MatchKeyword("from")) {
    if (!Check(TokenKind::kString)) {
      ErrorHere("expected time string after 'from'");
      SyncToClause();
      return;
    }
    script->from_span = SpanHere();
    script->from_time = Advance().text;
    if (!MatchKeyword("to")) {
      ErrorHere("expected 'to' after 'from'");
      SyncToClause();
      return;
    }
    if (!Check(TokenKind::kString)) {
      ErrorHere("expected time string after 'to'");
      SyncToClause();
      return;
    }
    script->to_span = SpanHere();
    script->to_time = Advance().text;
    return;
  }
  if (MatchKeyword("in")) {
    for (;;) {
      if (!Check(TokenKind::kString)) {
        ErrorHere("expected host string after 'in'");
        SyncToClause();
        return;
      }
      script->hosts.push_back(Advance().text);
      if (!Check(TokenKind::kComma)) break;
      Advance();
    }
  }
}

void Parser::ParseTracking(AstScript* script) {
  if (MatchKeyword("forward")) {
    script->forward = true;
  } else {
    MatchKeyword("backward");  // caller verified one of the two is present
  }
  for (;;) {
    auto node = ParseNode();
    if (node.has_value()) {
      script->chain.push_back(std::move(*node));
    } else {
      // Resynchronize inside the chain: the next `->` continues it.
      while (!Check(TokenKind::kEnd) && !Check(TokenKind::kArrow) &&
             !AtClauseKeyword()) {
        Advance();
      }
    }
    if (!Check(TokenKind::kArrow)) break;
    Advance();
  }
  if (script->chain.empty()) {
    diags_->Report(DiagCode::kBadChain, SpanHere(),
                   "tracking statement needs at least a starting point");
    return;
  }
  if (script->chain.front().wildcard) {
    diags_->Report(DiagCode::kBadChain, script->chain.front().span,
                   "the starting point cannot be '*'");
  }
  for (size_t i = 0; i + 1 < script->chain.size(); ++i) {
    if (i > 0 && script->chain[i].wildcard) {
      diags_->Report(DiagCode::kBadChain, script->chain[i].span,
                     "'*' may only appear as the end point");
    }
  }
}

std::optional<AstNode> Parser::ParseNode() {
  AstNode node;
  node.span = SpanHere();
  if (Check(TokenKind::kStar)) {
    Advance();
    node.wildcard = true;
    return node;
  }
  if (!Check(TokenKind::kIdent)) {
    ErrorHere("expected node type (proc|file|ip) or '*'");
    return std::nullopt;
  }
  node.type_name = ToLower(Advance().text);
  // Optional variable name before '['.
  if (Check(TokenKind::kIdent)) {
    node.var = Advance().text;
  }
  if (!Expect(TokenKind::kLBracket, "node condition list")) {
    return std::nullopt;
  }
  if (!Check(TokenKind::kRBracket)) {
    node.cond = ParseOrExpr();
    if (node.cond == nullptr) {
      SyncPast(TokenKind::kRBracket);
      return node;  // keep the typed node; the bad condition was reported
    }
  }
  if (!Expect(TokenKind::kRBracket, "node condition list")) {
    SyncPast(TokenKind::kRBracket);
  }
  return node;
}

void Parser::ParseWhere(AstScript* script) {
  Advance();  // 'where'
  auto expr = ParseOrExpr();
  if (expr == nullptr) {
    SyncToClause();
    return;
  }
  if (script->where != nullptr) {
    // Multiple where clauses and-compose.
    auto combined = std::make_unique<AstExpr>();
    combined->kind = AstExpr::Kind::kAnd;
    combined->span = SourceSpan::Cover(script->where->span, expr->span);
    combined->lhs = std::move(script->where);
    combined->rhs = std::move(expr);
    script->where = std::move(combined);
  } else {
    script->where = std::move(expr);
  }
}

void Parser::ParsePrioritize(AstScript* script) {
  AstPrioritize pri;
  pri.span = SpanHere();
  Advance();  // 'prioritize'
  for (;;) {
    if (!Expect(TokenKind::kLBracket, "prioritize pattern")) {
      SyncToClause();
      break;
    }
    auto expr = ParseOrExpr();
    if (expr == nullptr) {
      SyncPast(TokenKind::kRBracket);
    } else {
      if (!Expect(TokenKind::kRBracket, "prioritize pattern")) {
        SyncPast(TokenKind::kRBracket);
      }
      pri.patterns.push_back(std::move(expr));
    }
    if (!Check(TokenKind::kBackArrow)) break;
    Advance();
  }
  if (!pri.patterns.empty()) script->prioritize.push_back(std::move(pri));
}

void Parser::ParseOutput(AstScript* script) {
  Advance();  // 'output'
  if (!Expect(TokenKind::kEq, "output assignment")) {
    SyncToClause();
    return;
  }
  if (!Check(TokenKind::kString)) {
    ErrorHere("expected path string after 'output ='");
    SyncToClause();
    return;
  }
  script->output_path = Advance().text;
}

std::unique_ptr<AstExpr> Parser::ParseOrExpr() {
  auto node = ParseAndExpr();
  while (CheckKeyword("or")) {
    const SourceSpan op_span = SpanHere();
    Advance();
    auto rhs = ParseAndExpr();
    if (node == nullptr || rhs == nullptr) {
      // One side failed (already reported); keep the good side so later
      // passes still see as much of the condition as parsed.
      if (node == nullptr) node = std::move(rhs);
      continue;
    }
    auto parent = std::make_unique<AstExpr>();
    parent->kind = AstExpr::Kind::kOr;
    parent->span = op_span;
    parent->lhs = std::move(node);
    parent->rhs = std::move(rhs);
    node = std::move(parent);
  }
  return node;
}

std::unique_ptr<AstExpr> Parser::ParseAndExpr() {
  auto node = ParsePrimary();
  // `,` inside condition lists acts as a conjunction: Program 4 writes
  // `[dst_ip = "..", subject_name = ".." and ..]`.
  if (node == nullptr && !CheckKeyword("and") &&
      !Check(TokenKind::kComma)) {
    return nullptr;
  }
  while (CheckKeyword("and") || Check(TokenKind::kComma)) {
    const SourceSpan op_span = SpanHere();
    Advance();
    auto rhs = ParsePrimary();
    if (rhs == nullptr) {
      // Keep scanning the conjunct list so every bad conjunct is reported
      // in one pass.
      if (CheckKeyword("and") || Check(TokenKind::kComma)) continue;
      break;
    }
    if (node == nullptr) {
      node = std::move(rhs);
      continue;
    }
    auto parent = std::make_unique<AstExpr>();
    parent->kind = AstExpr::Kind::kAnd;
    parent->span = op_span;
    parent->lhs = std::move(node);
    parent->rhs = std::move(rhs);
    node = std::move(parent);
  }
  return node;
}

std::unique_ptr<AstExpr> Parser::ParsePrimary() {
  if (Check(TokenKind::kLParen)) {
    Advance();
    auto inner = ParseOrExpr();
    if (inner == nullptr) {
      SyncPast(TokenKind::kRParen);
      return nullptr;
    }
    if (!Expect(TokenKind::kRParen, "parenthesized condition")) {
      SyncPast(TokenKind::kRParen);
    }
    return inner;
  }
  if (!Check(TokenKind::kIdent)) {
    ErrorHere("expected a field name");
    return nullptr;
  }
  auto leaf = std::make_unique<AstExpr>();
  leaf->kind = AstExpr::Kind::kLeaf;
  leaf->span = SpanHere();
  leaf->field_path.push_back(Advance().text);
  while (Check(TokenKind::kDot)) {
    Advance();
    if (!Check(TokenKind::kIdent)) {
      ErrorHere("expected a field name after '.'");
      return nullptr;
    }
    leaf->span = SourceSpan::Cover(leaf->span, SpanHere());
    leaf->field_path.push_back(Advance().text);
  }

  switch (Peek().kind) {
    case TokenKind::kLt: leaf->op = CompareOp::kLt; break;
    case TokenKind::kLe: leaf->op = CompareOp::kLe; break;
    case TokenKind::kGt: leaf->op = CompareOp::kGt; break;
    case TokenKind::kGe: leaf->op = CompareOp::kGe; break;
    case TokenKind::kEq: leaf->op = CompareOp::kEq; break;
    case TokenKind::kNe: leaf->op = CompareOp::kNe; break;
    default:
      ErrorHere("expected a comparison operator");
      return nullptr;
  }
  Advance();

  auto value = ParseValue();
  if (!value.has_value()) return nullptr;
  leaf->value = std::move(*value);
  leaf->span = SourceSpan::Cover(leaf->span, leaf->value.span);
  return leaf;
}

std::optional<AstValue> Parser::ParseValue() {
  AstValue v;
  v.span = SpanHere();
  switch (Peek().kind) {
    case TokenKind::kString:
      v.kind = AstValue::Kind::kString;
      v.text = Advance().text;
      return v;
    case TokenKind::kNumber:
      v.kind = AstValue::Kind::kNumber;
      v.number = Peek().number;
      v.text = Advance().text;
      return v;
    case TokenKind::kDuration:
      v.kind = AstValue::Kind::kDuration;
      v.text = Advance().text;
      return v;
    case TokenKind::kIdent:
      v.kind = AstValue::Kind::kIdent;
      v.text = Advance().text;
      return v;
    case TokenKind::kStar:
      // Bare `*` as a value means "match anything".
      v.kind = AstValue::Kind::kString;
      v.text = "*";
      Advance();
      return v;
    default:
      ErrorHere("expected a value (string, number, duration)");
      return std::nullopt;
  }
}

}  // namespace aptrace::bdl
