#include "bdl/parser.h"

#include "bdl/lexer.h"
#include "util/string_util.h"

namespace aptrace::bdl {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
  }
  return "?";
}

Result<AstScript> Parser::Parse(std::string_view text) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(std::move(tokens.value()));
  return parser.ParseScript();
}

const Token& Parser::Peek(size_t ahead) const {
  const size_t i = pos_ + ahead;
  return i < tokens_.size() ? tokens_[i] : tokens_.back();
}

const Token& Parser::Advance() {
  const Token& t = Peek();
  if (pos_ + 1 < tokens_.size()) pos_++;
  return t;
}

bool Parser::CheckKeyword(std::string_view keyword) const {
  return Peek().kind == TokenKind::kIdent &&
         ToLower(Peek().text) == ToLower(keyword);
}

bool Parser::MatchKeyword(std::string_view keyword) {
  if (!CheckKeyword(keyword)) return false;
  Advance();
  return true;
}

Status Parser::Expect(TokenKind kind, const char* what) {
  if (Check(kind)) {
    Advance();
    return Status::Ok();
  }
  return ErrorHere(std::string("expected ") + TokenKindName(kind) + " (" +
                   what + "), found " + TokenKindName(Peek().kind) +
                   (Peek().text.empty() ? "" : " '" + Peek().text + "'"));
}

Status Parser::ErrorHere(const std::string& msg) const {
  return Status::InvalidArgument("BDL parse error at line " +
                                 std::to_string(Peek().line) + ", column " +
                                 std::to_string(Peek().column) + ": " + msg);
}

Result<AstScript> Parser::ParseScript() {
  AstScript script;

  // General constraints: `from .. to ..` and/or `in ..`, in any order.
  for (;;) {
    if (CheckKeyword("from")) {
      Advance();
      if (!Check(TokenKind::kString))
        return ErrorHere("expected time string after 'from'");
      script.from_time = Advance().text;
      if (!MatchKeyword("to")) return ErrorHere("expected 'to' after 'from'");
      if (!Check(TokenKind::kString))
        return ErrorHere("expected time string after 'to'");
      script.to_time = Advance().text;
      continue;
    }
    if (CheckKeyword("in")) {
      Advance();
      for (;;) {
        if (!Check(TokenKind::kString))
          return ErrorHere("expected host string after 'in'");
        script.hosts.push_back(Advance().text);
        if (!Check(TokenKind::kComma)) break;
        Advance();
      }
      continue;
    }
    break;
  }

  // Tracking statement (required).
  if (auto s = ParseTracking(&script); !s.ok()) return s;

  // Optional clauses, in any order.
  for (;;) {
    if (CheckKeyword("where")) {
      Advance();
      auto expr = ParseOrExpr();
      if (!expr.ok()) return expr.status();
      if (script.where != nullptr) {
        // Multiple where clauses and-compose.
        auto combined = std::make_unique<AstExpr>();
        combined->kind = AstExpr::Kind::kAnd;
        combined->lhs = std::move(script.where);
        combined->rhs = std::move(expr.value());
        script.where = std::move(combined);
      } else {
        script.where = std::move(expr.value());
      }
      continue;
    }
    if (CheckKeyword("prioritize")) {
      const int line = Peek().line;
      Advance();
      AstPrioritize pri;
      pri.line = line;
      for (;;) {
        if (auto s = Expect(TokenKind::kLBracket, "prioritize pattern");
            !s.ok())
          return s;
        auto expr = ParseOrExpr();
        if (!expr.ok()) return expr.status();
        if (auto s = Expect(TokenKind::kRBracket, "prioritize pattern");
            !s.ok())
          return s;
        pri.patterns.push_back(std::move(expr.value()));
        if (!Check(TokenKind::kBackArrow)) break;
        Advance();
      }
      script.prioritize.push_back(std::move(pri));
      continue;
    }
    if (CheckKeyword("output")) {
      Advance();
      if (auto s = Expect(TokenKind::kEq, "output assignment"); !s.ok())
        return s;
      if (!Check(TokenKind::kString))
        return ErrorHere("expected path string after 'output ='");
      script.output_path = Advance().text;
      continue;
    }
    break;
  }

  if (!Check(TokenKind::kEnd)) {
    return ErrorHere("unexpected trailing input");
  }
  return script;
}

Status Parser::ParseTracking(AstScript* script) {
  if (MatchKeyword("forward")) {
    script->forward = true;
  } else if (!MatchKeyword("backward")) {
    return ErrorHere("expected a 'backward' or 'forward' tracking statement");
  }
  for (;;) {
    auto node = ParseNode();
    if (!node.ok()) return node.status();
    script->chain.push_back(std::move(node.value()));
    if (!Check(TokenKind::kArrow)) break;
    Advance();
  }
  if (script->chain.empty()) {
    return ErrorHere("tracking statement needs at least a starting point");
  }
  if (script->chain.front().wildcard) {
    return ErrorHere("the starting point cannot be '*'");
  }
  for (size_t i = 0; i + 1 < script->chain.size(); ++i) {
    if (script->chain[i].wildcard) {
      return ErrorHere("'*' may only appear as the end point");
    }
  }
  return Status::Ok();
}

Result<AstNode> Parser::ParseNode() {
  AstNode node;
  node.line = Peek().line;
  if (Check(TokenKind::kStar)) {
    Advance();
    node.wildcard = true;
    return node;
  }
  if (!Check(TokenKind::kIdent)) {
    return ErrorHere("expected node type (proc|file|ip) or '*'");
  }
  node.type_name = ToLower(Advance().text);
  // Optional variable name before '['.
  if (Check(TokenKind::kIdent)) {
    node.var = Advance().text;
  }
  if (auto s = Expect(TokenKind::kLBracket, "node condition list"); !s.ok())
    return s;
  if (!Check(TokenKind::kRBracket)) {
    auto expr = ParseOrExpr();
    if (!expr.ok()) return expr.status();
    node.cond = std::move(expr.value());
  }
  if (auto s = Expect(TokenKind::kRBracket, "node condition list"); !s.ok())
    return s;
  return node;
}

Result<std::unique_ptr<AstExpr>> Parser::ParseOrExpr() {
  auto lhs = ParseAndExpr();
  if (!lhs.ok()) return lhs.status();
  auto node = std::move(lhs.value());
  while (CheckKeyword("or")) {
    const int line = Peek().line;
    Advance();
    auto rhs = ParseAndExpr();
    if (!rhs.ok()) return rhs.status();
    auto parent = std::make_unique<AstExpr>();
    parent->kind = AstExpr::Kind::kOr;
    parent->line = line;
    parent->lhs = std::move(node);
    parent->rhs = std::move(rhs.value());
    node = std::move(parent);
  }
  return node;
}

Result<std::unique_ptr<AstExpr>> Parser::ParseAndExpr() {
  auto lhs = ParsePrimary();
  if (!lhs.ok()) return lhs.status();
  auto node = std::move(lhs.value());
  // `,` inside condition lists acts as a conjunction: Program 4 writes
  // `[dst_ip = "..", subject_name = ".." and ..]`.
  while (CheckKeyword("and") || Check(TokenKind::kComma)) {
    const int line = Peek().line;
    Advance();
    auto rhs = ParsePrimary();
    if (!rhs.ok()) return rhs.status();
    auto parent = std::make_unique<AstExpr>();
    parent->kind = AstExpr::Kind::kAnd;
    parent->line = line;
    parent->lhs = std::move(node);
    parent->rhs = std::move(rhs.value());
    node = std::move(parent);
  }
  return node;
}

Result<std::unique_ptr<AstExpr>> Parser::ParsePrimary() {
  if (Check(TokenKind::kLParen)) {
    Advance();
    auto inner = ParseOrExpr();
    if (!inner.ok()) return inner.status();
    if (auto s = Expect(TokenKind::kRParen, "parenthesized condition");
        !s.ok())
      return s;
    return inner;
  }
  if (!Check(TokenKind::kIdent)) {
    return ErrorHere("expected a field name");
  }
  auto leaf = std::make_unique<AstExpr>();
  leaf->kind = AstExpr::Kind::kLeaf;
  leaf->line = Peek().line;
  leaf->field_path.push_back(Advance().text);
  while (Check(TokenKind::kDot)) {
    Advance();
    if (!Check(TokenKind::kIdent)) {
      return ErrorHere("expected a field name after '.'");
    }
    leaf->field_path.push_back(Advance().text);
  }

  switch (Peek().kind) {
    case TokenKind::kLt: leaf->op = CompareOp::kLt; break;
    case TokenKind::kLe: leaf->op = CompareOp::kLe; break;
    case TokenKind::kGt: leaf->op = CompareOp::kGt; break;
    case TokenKind::kGe: leaf->op = CompareOp::kGe; break;
    case TokenKind::kEq: leaf->op = CompareOp::kEq; break;
    case TokenKind::kNe: leaf->op = CompareOp::kNe; break;
    default:
      return ErrorHere("expected a comparison operator");
  }
  Advance();

  auto value = ParseValue();
  if (!value.ok()) return value.status();
  leaf->value = std::move(value.value());
  return leaf;
}

Result<AstValue> Parser::ParseValue() {
  AstValue v;
  switch (Peek().kind) {
    case TokenKind::kString:
      v.kind = AstValue::Kind::kString;
      v.text = Advance().text;
      return v;
    case TokenKind::kNumber:
      v.kind = AstValue::Kind::kNumber;
      v.number = Peek().number;
      v.text = Advance().text;
      return v;
    case TokenKind::kDuration:
      v.kind = AstValue::Kind::kDuration;
      v.text = Advance().text;
      return v;
    case TokenKind::kIdent:
      v.kind = AstValue::Kind::kIdent;
      v.text = Advance().text;
      return v;
    case TokenKind::kStar:
      // Bare `*` as a value means "match anything".
      v.kind = AstValue::Kind::kString;
      v.text = "*";
      Advance();
      return v;
    default:
      return ErrorHere("expected a value (string, number, duration)");
  }
}

}  // namespace aptrace::bdl
