#include "bdl/lint.h"

#include <algorithm>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "bdl/analyzer.h"
#include "bdl/parser.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "util/string_util.h"
#include "util/wildcard.h"

namespace aptrace::bdl {

namespace {

constexpr int64_t kInt64Min = std::numeric_limits<int64_t>::min();
constexpr int64_t kInt64Max = std::numeric_limits<int64_t>::max();

std::optional<ObjectType> LintTypeName(std::string_view name) {
  const std::string n = ToLower(name);
  if (n == "proc" || n == "process") return ObjectType::kProcess;
  if (n == "file") return ObjectType::kFile;
  if (n == "ip" || n == "network" || n == "socket") return ObjectType::kIp;
  return std::nullopt;
}

bool IsLeafNamed(const AstExpr& e, std::string_view name) {
  return e.kind == AstExpr::Kind::kLeaf && e.field_path.size() == 1 &&
         ToLower(e.field_path[0]) == name;
}

bool HasWildcardChars(std::string_view s) {
  return s.find_first_of("*?") != std::string_view::npos;
}

std::string FieldKey(const AstExpr& leaf) {
  return ToLower(Join(leaf.field_path, "."));
}

/// The leaf's value as a comparable integer: numbers directly, time
/// strings as micros-since-epoch. Nullopt for anything else.
std::optional<int64_t> NumericValue(const AstValue& v) {
  if (v.kind == AstValue::Kind::kNumber) return v.number;
  if (v.kind == AstValue::Kind::kString) {
    if (auto t = ParseBdlTime(v.text); t.ok()) return t.value();
  }
  return std::nullopt;
}

std::string ValueToString(const AstValue& v) {
  switch (v.kind) {
    case AstValue::Kind::kNumber:
      return std::to_string(v.number);
    case AstValue::Kind::kString:
      return "\"" + v.text + "\"";
    default:
      return v.text;
  }
}

/// Splits an expression tree into maximal and-groups: each leaf lands in
/// exactly one group, and leaves in the same group must all hold at once.
/// The two branches of an `or` start fresh groups of their own.
void FlattenAnd(const AstExpr& e, std::vector<const AstExpr*>* leaves,
                std::vector<const AstExpr*>* or_nodes) {
  switch (e.kind) {
    case AstExpr::Kind::kAnd:
      if (e.lhs != nullptr) FlattenAnd(*e.lhs, leaves, or_nodes);
      if (e.rhs != nullptr) FlattenAnd(*e.rhs, leaves, or_nodes);
      break;
    case AstExpr::Kind::kOr:
      or_nodes->push_back(&e);
      break;
    case AstExpr::Kind::kLeaf:
      leaves->push_back(&e);
      break;
  }
}

void CollectAndGroups(const AstExpr& e,
                      std::vector<std::vector<const AstExpr*>>* groups) {
  std::vector<const AstExpr*> leaves;
  std::vector<const AstExpr*> ors;
  FlattenAnd(e, &leaves, &ors);
  if (!leaves.empty()) groups->push_back(std::move(leaves));
  for (const AstExpr* o : ors) {
    if (o->lhs != nullptr) CollectAndGroups(*o->lhs, groups);
    if (o->rhs != nullptr) CollectAndGroups(*o->rhs, groups);
  }
}

/// Where a group of conjuncts came from, for skipping special leaves.
enum class GroupContext { kNodePattern, kWhere, kPrioritize };

bool SkipLeaf(const AstExpr& leaf, GroupContext ctx) {
  if (ctx == GroupContext::kWhere) {
    // Budget leaves are extracted before compilation; their sanity is
    // checked against the compiled spec (BDL-W007), not here.
    return IsLeafNamed(leaf, "time") || IsLeafNamed(leaf, "hop");
  }
  if (ctx == GroupContext::kPrioritize) {
    // `type = file` names the event's object type and `amount >= size`
    // is the quantity clause; neither reads an event attribute.
    if (IsLeafNamed(leaf, "type")) return true;
    if (IsLeafNamed(leaf, "amount") &&
        leaf.value.kind == AstValue::Kind::kIdent &&
        ToLower(leaf.value.text) == "size") {
      return true;
    }
  }
  return false;
}

bool IsOrderedOp(CompareOp op) {
  return op == CompareOp::kLt || op == CompareOp::kLe ||
         op == CompareOp::kGt || op == CompareOp::kGe;
}

/// Accumulated constraints on one field within one and-group.
struct FieldFacts {
  // Closed integer interval from ordered comparisons and numeric `=`.
  int64_t lo = kInt64Min;
  int64_t hi = kInt64Max;
  const AstExpr* lo_leaf = nullptr;
  const AstExpr* hi_leaf = nullptr;
  // Numeric equalities / inequalities.
  std::optional<int64_t> eq_num;
  const AstExpr* eq_num_leaf = nullptr;
  std::vector<const AstExpr*> ne_num;
  // String pattern (in)equalities.
  std::vector<const AstExpr*> str_eq;
  std::vector<const AstExpr*> str_ne;
  // Boolean equality, normalized (`!= true` records false).
  std::optional<bool> bool_eq;
  const AstExpr* bool_leaf = nullptr;
};

void NoteOther(Diagnostic& d, const AstExpr& other) {
  d.notes.push_back({other.span, "conflicting constraint is here"});
}

/// Contradiction and subsumption checks over one and-group. Every leaf in
/// the group must hold simultaneously, so conflicting constraints on the
/// same field make the whole conjunction unsatisfiable (BDL-W001).
void LintGroup(const std::vector<const AstExpr*>& group, GroupContext ctx,
               DiagnosticEngine* diags) {
  std::map<std::string, FieldFacts> facts;
  for (const AstExpr* leaf : group) {
    if (SkipLeaf(*leaf, ctx)) continue;
    const std::string key = FieldKey(*leaf);
    FieldFacts& f = facts[key];

    const bool is_string = leaf->value.kind == AstValue::Kind::kString ||
                           leaf->value.kind == AstValue::Kind::kIdent;
    const std::string lower_text = ToLower(leaf->value.text);

    // Per-leaf checks first: tautologies and misuse of wildcards.
    if (is_string && IsOrderedOp(leaf->op) &&
        HasWildcardChars(leaf->value.text)) {
      diags->Report(DiagCode::kOrderedWildcard, leaf->span,
                    "ordered comparison " +
                        std::string(CompareOpName(leaf->op)) +
                        " treats \"" + leaf->value.text +
                        "\" literally; wildcards only match with = and !=");
    }
    if (is_string && leaf->value.text == "*") {
      if (leaf->op == CompareOp::kEq) {
        diags->Report(DiagCode::kAlwaysTrue, leaf->span,
                      "'" + key + " = \"*\"' matches every value; the "
                      "condition has no effect");
      } else if (leaf->op == CompareOp::kNe) {
        diags->Report(DiagCode::kExclusionSwallowsAll, leaf->span,
                      "'" + key + " != \"*\"' excludes every value; "
                      "nothing can match");
      }
    }

    // Boolean constraints.
    if (leaf->value.kind == AstValue::Kind::kIdent &&
        (lower_text == "true" || lower_text == "false") &&
        (leaf->op == CompareOp::kEq || leaf->op == CompareOp::kNe)) {
      const bool effective =
          (lower_text == "true") == (leaf->op == CompareOp::kEq);
      if (f.bool_eq.has_value() && *f.bool_eq != effective) {
        Diagnostic& d = diags->Report(
            DiagCode::kAlwaysFalse, leaf->span,
            "'" + key + "' is required to be both true and false; this "
            "condition can never hold");
        NoteOther(d, *f.bool_leaf);
      } else {
        f.bool_eq = effective;
        f.bool_leaf = leaf;
      }
      continue;
    }

    // Numeric / time constraints feed the interval.
    if (auto num = NumericValue(leaf->value); num.has_value()) {
      int64_t lo = kInt64Min;
      int64_t hi = kInt64Max;
      switch (leaf->op) {
        case CompareOp::kLt:
          hi = *num == kInt64Min ? kInt64Min : *num - 1;
          break;
        case CompareOp::kLe:
          hi = *num;
          break;
        case CompareOp::kGt:
          lo = *num == kInt64Max ? kInt64Max : *num + 1;
          break;
        case CompareOp::kGe:
          lo = *num;
          break;
        case CompareOp::kEq:
          if (f.eq_num.has_value() && *f.eq_num != *num) {
            Diagnostic& d = diags->Report(
                DiagCode::kAlwaysFalse, leaf->span,
                "'" + key + "' cannot equal both " +
                    std::to_string(*f.eq_num) + " and " +
                    std::to_string(*num));
            NoteOther(d, *f.eq_num_leaf);
          } else {
            f.eq_num = *num;
            f.eq_num_leaf = leaf;
          }
          continue;
        case CompareOp::kNe:
          f.ne_num.push_back(leaf);
          continue;
      }
      if (lo > f.lo) {
        f.lo = lo;
        f.lo_leaf = leaf;
      }
      if (hi < f.hi) {
        f.hi = hi;
        f.hi_leaf = leaf;
      }
      continue;
    }

    // String patterns.
    if (is_string && leaf->op == CompareOp::kEq) f.str_eq.push_back(leaf);
    if (is_string && leaf->op == CompareOp::kNe) f.str_ne.push_back(leaf);
  }

  for (const auto& [key, f] : facts) {
    // Empty interval: e.g. `amount > 100 and amount < 50`.
    if (f.lo > f.hi && f.lo_leaf != nullptr && f.hi_leaf != nullptr) {
      const AstExpr* later =
          f.lo_leaf->span.column + f.lo_leaf->span.line * 100000 >
                  f.hi_leaf->span.column + f.hi_leaf->span.line * 100000
              ? f.lo_leaf
              : f.hi_leaf;
      const AstExpr* earlier = later == f.lo_leaf ? f.hi_leaf : f.lo_leaf;
      Diagnostic& d = diags->Report(
          DiagCode::kAlwaysFalse, later->span,
          "'" + key + "' has an empty range: the bounds exclude every "
          "value, so this condition can never hold");
      NoteOther(d, *earlier);
    }
    // Equality outside the interval, or excluded by a != on the same value.
    if (f.eq_num.has_value()) {
      if (*f.eq_num < f.lo || *f.eq_num > f.hi) {
        const AstExpr* bound = *f.eq_num < f.lo ? f.lo_leaf : f.hi_leaf;
        Diagnostic& d = diags->Report(
            DiagCode::kAlwaysFalse, f.eq_num_leaf->span,
            "'" + key + " = " + std::to_string(*f.eq_num) +
                "' lies outside the range required by the other bounds");
        if (bound != nullptr) NoteOther(d, *bound);
      }
      for (const AstExpr* ne : f.ne_num) {
        if (NumericValue(ne->value) == f.eq_num) {
          Diagnostic& d = diags->Report(
              DiagCode::kAlwaysFalse, ne->span,
              "'" + key + "' is required to equal and not equal " +
                  std::to_string(*f.eq_num));
          NoteOther(d, *f.eq_num_leaf);
        }
      }
    }
    // Two different literal equalities on one string field.
    for (size_t i = 0; i < f.str_eq.size(); ++i) {
      for (size_t j = i + 1; j < f.str_eq.size(); ++j) {
        const AstExpr& a = *f.str_eq[i];
        const AstExpr& b = *f.str_eq[j];
        if (ToLower(a.value.text) == ToLower(b.value.text)) {
          Diagnostic& d = diags->Report(
              DiagCode::kSubsumedPredicate, b.span,
              "duplicate condition on '" + key + "'; " +
                  ValueToString(b.value) + " is already required");
          d.notes.push_back({a.span, "first occurrence is here"});
        } else if (!HasWildcardChars(a.value.text) &&
                   !HasWildcardChars(b.value.text)) {
          Diagnostic& d = diags->Report(
              DiagCode::kAlwaysFalse, b.span,
              "'" + key + "' cannot equal both " + ValueToString(a.value) +
                  " and " + ValueToString(b.value));
          NoteOther(d, a);
        }
      }
    }
    // An equality killed by an exclusion: the same pattern on both sides,
    // or an exclusion pattern that matches the required literal.
    for (const AstExpr* eq : f.str_eq) {
      for (const AstExpr* ne : f.str_ne) {
        const bool same_pattern =
            ToLower(eq->value.text) == ToLower(ne->value.text);
        if (!same_pattern && HasWildcardChars(eq->value.text)) continue;
        if (same_pattern ||
            WildcardMatch(ne->value.text, eq->value.text)) {
          Diagnostic& d = diags->Report(
              DiagCode::kAlwaysFalse, eq->span,
              "'" + key + " = " + ValueToString(eq->value) +
                  "' is excluded by '" + key + " != " +
                  ValueToString(ne->value) + "'");
          NoteOther(d, *ne);
        }
      }
    }
    // Exclusions subsumed by a broader exclusion, and duplicates.
    for (size_t i = 0; i < f.str_ne.size(); ++i) {
      for (size_t j = 0; j < f.str_ne.size(); ++j) {
        if (i == j) continue;
        const AstExpr& broad = *f.str_ne[i];
        const AstExpr& narrow = *f.str_ne[j];
        if (broad.value.text == "*") continue;  // reported as BDL-W003
        const bool duplicate =
            ToLower(broad.value.text) == ToLower(narrow.value.text);
        if (duplicate && i > j) continue;  // report duplicates once
        if (!duplicate && (HasWildcardChars(narrow.value.text) ||
                           !WildcardMatch(broad.value.text,
                                          narrow.value.text))) {
          continue;
        }
        Diagnostic& d = diags->Report(
            DiagCode::kSubsumedPredicate, narrow.span,
            "exclusion '" + key + " != " + ValueToString(narrow.value) +
                "' is already covered by '" + key + " != " +
                ValueToString(broad.value) + "'");
        d.notes.push_back({broad.span, "broader exclusion is here"});
      }
    }
  }
}

void LintExprTree(const AstExpr& e, GroupContext ctx,
                  DiagnosticEngine* diags) {
  std::vector<std::vector<const AstExpr*>> groups;
  CollectAndGroups(e, &groups);
  for (const auto& group : groups) LintGroup(group, ctx, diags);
}

/// Canonical text for a prioritize pattern, used to detect rules that can
/// never fire because an identical earlier rule always matches first.
std::string CanonExpr(const AstExpr& e) {
  if (e.kind == AstExpr::Kind::kLeaf) {
    return FieldKey(e) + " " + CompareOpName(e.op) + " " +
           ToLower(ValueToString(e.value));
  }
  std::vector<const AstExpr*> leaves;
  std::vector<const AstExpr*> ors;
  FlattenAnd(e, &leaves, &ors);
  std::vector<std::string> parts;
  for (const AstExpr* l : leaves) parts.push_back(CanonExpr(*l));
  for (const AstExpr* o : ors) {
    parts.push_back("(" + CanonExpr(*o->lhs) + " or " + CanonExpr(*o->rhs) +
                    ")");
  }
  std::sort(parts.begin(), parts.end());
  return Join(parts, " and ");
}

void LintPrioritizeRules(const AstScript& script, DiagnosticEngine* diags) {
  std::vector<std::string> canon;
  std::vector<const AstPrioritize*> rules;
  for (const AstPrioritize& pri : script.prioritize) {
    std::vector<std::string> patterns;
    for (const auto& p : pri.patterns) {
      patterns.push_back(p == nullptr ? "" : CanonExpr(*p));
      if (p != nullptr) {
        LintExprTree(*p, GroupContext::kPrioritize, diags);
      }
    }
    const std::string c = Join(patterns, " <- ");
    for (size_t i = 0; i < canon.size(); ++i) {
      if (canon[i] == c) {
        Diagnostic& d = diags->Report(
            DiagCode::kDeadPrioritizeRule, pri.span,
            "this prioritize rule duplicates an earlier rule and can "
            "never change the ranking");
        d.notes.push_back({rules[i]->span, "earlier rule is here"});
        break;
      }
    }
    canon.push_back(c);
    rules.push_back(&pri);
  }
}

/// The value of a type-intrinsic attribute, for catalog reachability
/// checks. Returns nullopt for attributes that are event-level or not
/// stored on the object.
std::optional<std::string> IntrinsicValue(const SystemObject& o,
                                          const ObjectCatalog& catalog,
                                          const std::string& field) {
  if (field == "host") return catalog.HostName(o.host());
  if (o.is_process()) {
    if (field == "exename") return o.process().exename;
  } else if (o.is_file()) {
    if (field == "path") return o.file().path;
    if (field == "filename") return o.file().Filename();
  } else if (o.is_ip()) {
    if (field == "src_ip" || field == "srcip") return o.ip().src_ip;
    if (field == "dst_ip" || field == "dstip") return o.ip().dst_ip;
  }
  return std::nullopt;
}

/// BDL-W005: a node pattern whose `=` constraint on an intrinsic
/// attribute matches nothing in the trace's object catalog can never
/// produce a start/intermediate/end point. Only pure conjunctions are
/// checked (a disjunction may be satisfied through its other branch).
void LintUnmatchablePatterns(const AstScript& script,
                             const EventStore& store,
                             DiagnosticEngine* diags) {
  const ObjectCatalog& catalog = store.catalog();
  for (const AstNode& node : script.chain) {
    if (node.wildcard || node.cond == nullptr) continue;
    auto type = LintTypeName(node.type_name);
    if (!type.has_value()) continue;

    std::vector<const AstExpr*> leaves;
    std::vector<const AstExpr*> ors;
    FlattenAnd(*node.cond, &leaves, &ors);
    if (!ors.empty()) continue;

    for (const AstExpr* leaf : leaves) {
      if (leaf->op != CompareOp::kEq || leaf->field_path.size() != 1) {
        continue;
      }
      if (leaf->value.kind != AstValue::Kind::kString &&
          leaf->value.kind != AstValue::Kind::kIdent) {
        continue;
      }
      const std::string field = ToLower(leaf->field_path[0]);
      if (field == "host") continue;  // host filters rarely narrow to zero
      const WildcardMatcher matcher(leaf->value.text);
      bool field_exists = false;
      bool matched = false;
      for (size_t i = 0; i < catalog.size() && !matched; ++i) {
        const SystemObject& o = catalog.Get(i);
        if (o.type() != *type) continue;
        auto v = IntrinsicValue(o, catalog, field);
        if (!v.has_value()) continue;
        field_exists = true;
        matched = matcher.Matches(*v);
      }
      if (field_exists && !matched) {
        diags->Report(DiagCode::kPatternMatchesNothing, leaf->span,
                      "no " + std::string(ObjectTypeName(*type)) +
                          " in the loaded trace has " + field + " matching " +
                          ValueToString(leaf->value));
      }
    }
  }
}

void LintSpecChecks(const TrackingSpec& spec, const EventStore* store,
                    DiagnosticEngine* diags) {
  if (spec.hop_limit == 0) {
    diags->Report(DiagCode::kBudgetSanity, spec.hop_limit_span,
                  "a hop budget of 0 stops the analysis at the start "
                  "point; no dependency is ever explored");
  }
  if (spec.time_budget == 0) {
    diags->Report(DiagCode::kBudgetSanity, spec.time_budget_span,
                  "a time budget of 0 expires immediately; no dependency "
                  "is ever explored");
  }
  if (store == nullptr || store->NumEvents() == 0) return;

  const TimeMicros trace_min = store->MinTime();
  const TimeMicros trace_max = store->MaxTime();
  if (spec.time_budget > 0 && spec.time_budget > trace_max - trace_min) {
    diags->Report(DiagCode::kBudgetSanity, spec.time_budget_span,
                  "time budget " + FormatDuration(spec.time_budget) +
                      " exceeds the loaded trace's whole span (" +
                      FormatDuration(trace_max - trace_min) +
                      "); it never limits anything");
  }
  const bool before = spec.time_to.has_value() && *spec.time_to < trace_min;
  const bool after = spec.time_from.has_value() && *spec.time_from > trace_max;
  if (before || after) {
    diags->Report(DiagCode::kWindowOutsideTrace,
                  before ? spec.window_to_span : spec.window_from_span,
                  "the analysis window [" +
                      (spec.time_from.has_value()
                           ? FormatBdlTime(*spec.time_from)
                           : std::string("start")) +
                      ", " +
                      (spec.time_to.has_value() ? FormatBdlTime(*spec.time_to)
                                                : std::string("end")) +
                      ") does not overlap the loaded trace [" +
                      FormatBdlTime(trace_min) + ", " +
                      FormatBdlTime(trace_max) + "]");
  }
}

}  // namespace

LintReport LintBdl(std::string_view text, const LintOptions& opts) {
  static obs::Counter* const runs =
      obs::Metrics().FindOrCreateCounter(obs::names::kBdlLintRuns);
  static obs::Counter* const errors =
      obs::Metrics().FindOrCreateCounter(obs::names::kBdlLintErrors);
  static obs::Counter* const warnings =
      obs::Metrics().FindOrCreateCounter(obs::names::kBdlLintWarnings);
  runs->Add();

  DiagnosticEngine diags;
  const AstScript ast = Parser::ParseRecover(text, &diags);
  const bool parsed = !diags.HasErrors();

  std::optional<TrackingSpec> spec;
  if (parsed) spec = AnalyzeRecover(ast, &diags);

  if (parsed) {
    for (const AstNode& node : ast.chain) {
      if (node.cond != nullptr) {
        LintExprTree(*node.cond, GroupContext::kNodePattern, &diags);
      }
    }
    if (ast.where != nullptr) {
      LintExprTree(*ast.where, GroupContext::kWhere, &diags);
    }
    LintPrioritizeRules(ast, &diags);
    if (opts.store != nullptr) {
      LintUnmatchablePatterns(ast, *opts.store, &diags);
    }
    if (spec.has_value()) {
      LintSpecChecks(*spec, opts.store, &diags);
    }
  }

  diags.SortBySource();
  LintReport report;
  report.num_errors = diags.num_errors();
  report.num_warnings = diags.num_warnings();
  report.diagnostics = diags.Take();
  report.spec = std::move(spec);
  errors->Add(report.num_errors);
  warnings->Add(report.num_warnings);
  return report;
}

}  // namespace aptrace::bdl
