#ifndef APTRACE_BDL_FORMATTER_H_
#define APTRACE_BDL_FORMATTER_H_

#include <string>

#include "bdl/spec.h"

namespace aptrace::bdl {

/// Renders a compiled TrackingSpec back to canonical BDL text. The output
/// re-compiles to an equivalent spec (round-trip property, tested in
/// tests/bdl_formatter_test.cc); tooling uses it to display, diff, and
/// persist scripts.
std::string FormatSpec(const TrackingSpec& spec);

/// Renders one compiled condition tree as parseable BDL (null -> "").
std::string FormatCondition(const Condition* cond);

}  // namespace aptrace::bdl

#endif  // APTRACE_BDL_FORMATTER_H_
