#include "bdl/condition.h"

#include <sstream>

#include "util/string_util.h"

namespace aptrace::bdl {

Tribool TriAnd(Tribool a, Tribool b) {
  if (a == Tribool::kFalse || b == Tribool::kFalse) return Tribool::kFalse;
  if (a == Tribool::kNA) return b;
  if (b == Tribool::kNA) return a;
  return Tribool::kTrue;
}

Tribool TriOr(Tribool a, Tribool b) {
  if (a == Tribool::kTrue || b == Tribool::kTrue) return Tribool::kTrue;
  if (a == Tribool::kNA) return b;
  if (b == Tribool::kNA) return a;
  return Tribool::kFalse;
}

std::unique_ptr<Condition> Condition::And(std::unique_ptr<Condition> l,
                                          std::unique_ptr<Condition> r) {
  auto c = std::unique_ptr<Condition>(new Condition());
  c->kind_ = Kind::kAnd;
  c->lhs_ = std::move(l);
  c->rhs_ = std::move(r);
  return c;
}

std::unique_ptr<Condition> Condition::Or(std::unique_ptr<Condition> l,
                                         std::unique_ptr<Condition> r) {
  auto c = std::unique_ptr<Condition>(new Condition());
  c->kind_ = Kind::kOr;
  c->lhs_ = std::move(l);
  c->rhs_ = std::move(r);
  return c;
}

std::unique_ptr<Condition> Condition::Leaf(LeafSpec leaf) {
  auto c = std::unique_ptr<Condition>(new Condition());
  c->kind_ = Kind::kLeaf;
  c->leaf_ = std::move(leaf);
  return c;
}

namespace {

// Case-insensitive three-way compare for ordered string comparisons.
int CompareStringsCi(const std::string& a, const std::string& b) {
  const std::string la = ToLower(a);
  const std::string lb = ToLower(b);
  if (la < lb) return -1;
  if (la > lb) return 1;
  return 0;
}

Tribool ApplyOp(CompareOp op, int cmp) {
  switch (op) {
    case CompareOp::kLt: return cmp < 0 ? Tribool::kTrue : Tribool::kFalse;
    case CompareOp::kLe: return cmp <= 0 ? Tribool::kTrue : Tribool::kFalse;
    case CompareOp::kGt: return cmp > 0 ? Tribool::kTrue : Tribool::kFalse;
    case CompareOp::kGe: return cmp >= 0 ? Tribool::kTrue : Tribool::kFalse;
    case CompareOp::kEq: return cmp == 0 ? Tribool::kTrue : Tribool::kFalse;
    case CompareOp::kNe: return cmp != 0 ? Tribool::kTrue : Tribool::kFalse;
  }
  return Tribool::kNA;
}

}  // namespace

Tribool Condition::Eval(const EvalContext& ctx) const {
  switch (kind_) {
    case Kind::kAnd:
      return TriAnd(lhs_->Eval(ctx), rhs_->Eval(ctx));
    case Kind::kOr:
      return TriOr(lhs_->Eval(ctx), rhs_->Eval(ctx));
    case Kind::kLeaf:
      break;
  }

  if (ctx.object == nullptr || ctx.catalog == nullptr) return Tribool::kNA;

  // Resolve the endpoint object the field is read from.
  const SystemObject* target = ctx.object;
  if (leaf_.endpoint != EndpointSel::kSelf) {
    if (ctx.event == nullptr) return Tribool::kNA;
    const ObjectId id = leaf_.endpoint == EndpointSel::kFlowSrc
                            ? ctx.event->FlowSource()
                            : ctx.event->FlowDest();
    target = &ctx.catalog->Get(id);
  }

  // Type scope: when the leaf names a type (e.g. `proc.exename`), objects
  // of other types are out of scope -> NA.
  if (leaf_.type_scope.has_value() &&
      target->type() != *leaf_.type_scope) {
    return Tribool::kNA;
  }

  std::optional<FieldValue> fv =
      ReadField(leaf_.field, *target, ctx.event, *ctx.catalog, ctx.derived);
  if (!fv.has_value()) return Tribool::kNA;

  // String comparisons.
  if (std::holds_alternative<std::string>(*fv)) {
    const std::string& s = std::get<std::string>(*fv);
    if (leaf_.str_value != nullptr) {
      // `=` / `!=` on strings are pattern matches (paper Section III-A1);
      // ordered operators fall back to case-insensitive lexicographic.
      if (leaf_.op == CompareOp::kEq) {
        return leaf_.str_value->Matches(s) ? Tribool::kTrue : Tribool::kFalse;
      }
      if (leaf_.op == CompareOp::kNe) {
        return leaf_.str_value->Matches(s) ? Tribool::kFalse : Tribool::kTrue;
      }
      return ApplyOp(leaf_.op, CompareStringsCi(s, leaf_.str_value->pattern()));
    }
    return Tribool::kNA;  // comparing a string field to a non-string value
  }

  // Integer (and timestamp) comparisons.
  if (std::holds_alternative<int64_t>(*fv)) {
    if (!leaf_.int_value.has_value()) return Tribool::kNA;
    const int64_t v = std::get<int64_t>(*fv);
    const int cmp = v < *leaf_.int_value ? -1 : (v > *leaf_.int_value ? 1 : 0);
    return ApplyOp(leaf_.op, cmp);
  }

  // Boolean comparisons (derived attributes).
  if (std::holds_alternative<bool>(*fv)) {
    if (!leaf_.bool_value.has_value()) return Tribool::kNA;
    const bool v = std::get<bool>(*fv);
    const int cmp = static_cast<int>(v) - static_cast<int>(*leaf_.bool_value);
    return ApplyOp(leaf_.op, cmp);
  }

  return Tribool::kNA;
}

std::string Condition::ToString() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kAnd:
      os << "(" << lhs_->ToString() << " and " << rhs_->ToString() << ")";
      break;
    case Kind::kOr:
      os << "(" << lhs_->ToString() << " or " << rhs_->ToString() << ")";
      break;
    case Kind::kLeaf: {
      if (leaf_.type_scope.has_value()) {
        os << ObjectTypeName(*leaf_.type_scope) << ".";
      }
      if (leaf_.endpoint == EndpointSel::kFlowSrc) os << "src.";
      if (leaf_.endpoint == EndpointSel::kFlowDst) os << "dst.";
      os << FieldIdName(leaf_.field) << " " << CompareOpName(leaf_.op) << " ";
      if (leaf_.str_value != nullptr) {
        os << "\"" << leaf_.str_value->pattern() << "\"";
      } else if (leaf_.int_value.has_value()) {
        os << *leaf_.int_value;
      } else if (leaf_.bool_value.has_value()) {
        os << (*leaf_.bool_value ? "true" : "false");
      }
      break;
    }
  }
  return os.str();
}

bool ConditionKeeps(const Condition* cond, const EvalContext& ctx) {
  if (cond == nullptr) return true;
  return cond->Eval(ctx) != Tribool::kFalse;
}

bool ConditionMatches(const Condition* cond, const EvalContext& ctx) {
  if (cond == nullptr) return true;
  return cond->Eval(ctx) == Tribool::kTrue;
}

}  // namespace aptrace::bdl
