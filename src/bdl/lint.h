#ifndef APTRACE_BDL_LINT_H_
#define APTRACE_BDL_LINT_H_

#include <optional>
#include <string_view>
#include <vector>

#include "bdl/diagnostics.h"
#include "bdl/spec.h"
#include "storage/event_store.h"

namespace aptrace::bdl {

/// Lint configuration.
struct LintOptions {
  /// When set, trace-aware checks also run: node patterns that match no
  /// catalog object (BDL-W005), budgets beyond the trace horizon
  /// (BDL-W007), and time windows outside the trace (BDL-W009).
  const EventStore* store = nullptr;
};

/// Result of one lint run over one script.
struct LintReport {
  /// Every problem found, sorted by source position. Errors come from the
  /// recovering lexer/parser/analyzer; warnings from the lint checks.
  std::vector<Diagnostic> diagnostics;

  /// The compiled spec, engaged when the script had no errors (warnings
  /// do not block compilation).
  std::optional<TrackingSpec> spec;

  size_t num_errors = 0;
  size_t num_warnings = 0;

  bool ok() const { return num_errors == 0; }
};

/// Parses, analyzes, and lints `text` in one pass, reporting every
/// problem found rather than stopping at the first. Semantic lint checks
/// (always-true/false conditions, contradictory or subsumed exclusions,
/// dead prioritize rules, budget sanity) run whenever the script parses;
/// trace-aware checks additionally need `opts.store`.
LintReport LintBdl(std::string_view text, const LintOptions& opts = {});

}  // namespace aptrace::bdl

#endif  // APTRACE_BDL_LINT_H_
