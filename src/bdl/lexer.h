#ifndef APTRACE_BDL_LEXER_H_
#define APTRACE_BDL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "bdl/diagnostics.h"
#include "bdl/token.h"
#include "util/status.h"

namespace aptrace::bdl {

/// Tokenizes a BDL script.
///
/// Lexical rules:
///  * `//` starts a line comment (the paper's Program 1 uses them);
///  * string literals use double quotes with `\"` and `\\` escapes;
///  * a run of digits immediately followed by letters is a duration
///    literal (`10mins`); a bare run of digits is a number;
///  * identifiers are `[A-Za-z_][A-Za-z0-9_]*`; dots are separate tokens
///    so the parser can read dotted field paths (`proc.exename`).
class Lexer {
 public:
  explicit Lexer(std::string_view input);

  /// Tokenizes the whole input, failing on the first lexical error. On
  /// success the final token is kEnd.
  Result<std::vector<Token>> Tokenize();

  /// Error-recovering tokenization: lexical problems are reported into
  /// `diags` (code BDL-E001) and skipped, so one pass surfaces every bad
  /// character. The returned stream always ends with kEnd.
  std::vector<Token> Tokenize(DiagnosticEngine* diags);

 private:
  char Peek(size_t ahead = 0) const;
  char Advance();
  bool AtEnd() const { return pos_ >= input_.size(); }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace aptrace::bdl

#endif  // APTRACE_BDL_LEXER_H_
