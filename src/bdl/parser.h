#ifndef APTRACE_BDL_PARSER_H_
#define APTRACE_BDL_PARSER_H_

#include <string_view>
#include <vector>

#include "bdl/ast.h"
#include "bdl/token.h"
#include "util/status.h"

namespace aptrace::bdl {

/// Recursive-descent parser for BDL. Grammar (paper Section III-A):
///
///   script      := general* tracking clause*
///   general     := "from" STRING "to" STRING
///                | "in" STRING ("," STRING)*
///   tracking    := "backward" node ("->" node)*
///   node        := TYPE [IDENT] "[" or_expr "]" | "*"
///   clause      := "where" or_expr
///                | "prioritize" "[" or_expr "]" ("<-" "[" or_expr "]")*
///                | "output" "=" STRING
///   or_expr     := and_expr ("or" and_expr)*
///   and_expr    := primary ("and" primary)*
///   primary     := "(" or_expr ")" | path OP value
///   path        := IDENT ("." IDENT)*
///   value       := STRING | NUMBER | DURATION | IDENT
///
/// Keywords are case-insensitive. TYPE is proc|file|ip (plus `network` as
/// an alias of ip inside prioritize patterns, matching Program 2).
class Parser {
 public:
  /// Parses `text` into an AST.
  static Result<AstScript> Parse(std::string_view text);

 private:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<AstScript> ParseScript();
  Status ParseGeneral(AstScript* script);
  Status ParseTracking(AstScript* script);
  Result<AstNode> ParseNode();
  Result<std::unique_ptr<AstExpr>> ParseOrExpr();
  Result<std::unique_ptr<AstExpr>> ParseAndExpr();
  Result<std::unique_ptr<AstExpr>> ParsePrimary();
  Result<AstValue> ParseValue();

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  /// True (and consumes) if the current token is an identifier equal to
  /// `keyword` case-insensitively.
  bool MatchKeyword(std::string_view keyword);
  bool CheckKeyword(std::string_view keyword) const;
  Status Expect(TokenKind kind, const char* what);
  Status ErrorHere(const std::string& msg) const;

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace aptrace::bdl

#endif  // APTRACE_BDL_PARSER_H_
