#ifndef APTRACE_BDL_PARSER_H_
#define APTRACE_BDL_PARSER_H_

#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "bdl/ast.h"
#include "bdl/diagnostics.h"
#include "bdl/token.h"
#include "util/status.h"

namespace aptrace::bdl {

/// Recursive-descent parser for BDL. Grammar (paper Section III-A):
///
///   script      := general* tracking clause*
///   general     := "from" STRING "to" STRING
///                | "in" STRING ("," STRING)*
///   tracking    := "backward" node ("->" node)*
///   node        := TYPE [IDENT] "[" or_expr "]" | "*"
///   clause      := "where" or_expr
///                | "prioritize" "[" or_expr "]" ("<-" "[" or_expr "]")*
///                | "output" "=" STRING
///   or_expr     := and_expr ("or" and_expr)*
///   and_expr    := primary ("and" primary)*
///   primary     := "(" or_expr ")" | path OP value
///   path        := IDENT ("." IDENT)*
///   value       := STRING | NUMBER | DURATION | IDENT
///
/// Keywords are case-insensitive. TYPE is proc|file|ip (plus `network` as
/// an alias of ip inside prioritize patterns, matching Program 2).
class Parser {
 public:
  /// Parses `text` into an AST, failing on the first problem (the classic
  /// compile entry point).
  static Result<AstScript> Parse(std::string_view text);

  /// Error-recovering parse: every lexical and syntactic problem is
  /// reported into `diags` (codes BDL-E001/E002/E009) and the parser
  /// resynchronizes at statement boundaries, so one pass surfaces all
  /// problems. Always returns an AST; it is partial when errors were
  /// reported (clauses that failed to parse are dropped).
  static AstScript ParseRecover(std::string_view text,
                                DiagnosticEngine* diags);

 private:
  Parser(std::vector<Token> tokens, DiagnosticEngine* diags)
      : tokens_(std::move(tokens)), diags_(diags) {}

  AstScript ParseScript();
  void ParseGeneral(AstScript* script);
  void ParseTracking(AstScript* script);
  std::optional<AstNode> ParseNode();
  void ParseWhere(AstScript* script);
  void ParsePrioritize(AstScript* script);
  void ParseOutput(AstScript* script);
  std::unique_ptr<AstExpr> ParseOrExpr();
  std::unique_ptr<AstExpr> ParseAndExpr();
  std::unique_ptr<AstExpr> ParsePrimary();
  std::optional<AstValue> ParseValue();

  const Token& Peek(size_t ahead = 0) const;
  const Token& Advance();
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  /// True (and consumes) if the current token is an identifier equal to
  /// `keyword` case-insensitively.
  bool MatchKeyword(std::string_view keyword);
  bool CheckKeyword(std::string_view keyword) const;
  /// True if the current token starts a top-level clause (where /
  /// prioritize / output / from / in / backward / forward).
  bool AtClauseKeyword() const;
  /// Consumes the expected token, or reports BDL-E002 and returns false.
  bool Expect(TokenKind kind, const char* what);
  /// Reports BDL-E002 at the current token.
  void ErrorHere(const std::string& msg);
  /// Span of the current token.
  SourceSpan SpanHere() const;
  /// Skips tokens until a clause keyword or end of input.
  void SyncToClause();
  /// Skips tokens until one of `kind`, a clause keyword, `->`, or end of
  /// input; consumes `kind` if that is what stopped the scan.
  void SyncPast(TokenKind kind);

  std::vector<Token> tokens_;
  DiagnosticEngine* diags_ = nullptr;
  size_t pos_ = 0;
};

}  // namespace aptrace::bdl

#endif  // APTRACE_BDL_PARSER_H_
