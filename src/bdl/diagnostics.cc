#include "bdl/diagnostics.h"

#include <algorithm>
#include <sstream>

#include "util/string_util.h"

namespace aptrace::bdl {

SourceSpan SourceSpan::At(int line, int column, int length) {
  SourceSpan s;
  s.line = line;
  s.column = column;
  s.end_line = line;
  s.end_column = column + (length > 0 ? length : 1);
  return s;
}

SourceSpan SourceSpan::Cover(const SourceSpan& a, const SourceSpan& b) {
  if (!a.valid()) return b;
  if (!b.valid()) return a;
  SourceSpan s = a;
  if (b.line < s.line || (b.line == s.line && b.column < s.column)) {
    s.line = b.line;
    s.column = b.column;
  }
  if (b.end_line > s.end_line ||
      (b.end_line == s.end_line && b.end_column > s.end_column)) {
    s.end_line = b.end_line;
    s.end_column = b.end_column;
  }
  return s;
}

bool operator==(const SourceSpan& a, const SourceSpan& b) {
  return a.line == b.line && a.column == b.column &&
         a.end_line == b.end_line && a.end_column == b.end_column;
}

const char* SeverityName(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const char* DiagCodeName(DiagCode code) {
  switch (code) {
    case DiagCode::kLexError: return "BDL-E001";
    case DiagCode::kSyntaxError: return "BDL-E002";
    case DiagCode::kUnknownNodeType: return "BDL-E003";
    case DiagCode::kUnknownAttribute: return "BDL-E004";
    case DiagCode::kAttributeNotApplicable: return "BDL-E005";
    case DiagCode::kValueTypeMismatch: return "BDL-E006";
    case DiagCode::kBadTimeLiteral: return "BDL-E007";
    case DiagCode::kBadBudget: return "BDL-E008";
    case DiagCode::kBadChain: return "BDL-E009";
    case DiagCode::kInvertedTimeRange: return "BDL-E010";
    case DiagCode::kOrInPrioritize: return "BDL-E011";
    case DiagCode::kAlwaysFalse: return "BDL-W001";
    case DiagCode::kAlwaysTrue: return "BDL-W002";
    case DiagCode::kExclusionSwallowsAll: return "BDL-W003";
    case DiagCode::kSubsumedPredicate: return "BDL-W004";
    case DiagCode::kPatternMatchesNothing: return "BDL-W005";
    case DiagCode::kDeadPrioritizeRule: return "BDL-W006";
    case DiagCode::kBudgetSanity: return "BDL-W007";
    case DiagCode::kOrderedWildcard: return "BDL-W008";
    case DiagCode::kWindowOutsideTrace: return "BDL-W009";
  }
  return "BDL-????";
}

Severity DiagCodeSeverity(DiagCode code) {
  switch (code) {
    case DiagCode::kLexError:
    case DiagCode::kSyntaxError:
    case DiagCode::kUnknownNodeType:
    case DiagCode::kUnknownAttribute:
    case DiagCode::kAttributeNotApplicable:
    case DiagCode::kValueTypeMismatch:
    case DiagCode::kBadTimeLiteral:
    case DiagCode::kBadBudget:
    case DiagCode::kBadChain:
    case DiagCode::kInvertedTimeRange:
    case DiagCode::kOrInPrioritize:
      return Severity::kError;
    case DiagCode::kAlwaysFalse:
    case DiagCode::kAlwaysTrue:
    case DiagCode::kExclusionSwallowsAll:
    case DiagCode::kSubsumedPredicate:
    case DiagCode::kPatternMatchesNothing:
    case DiagCode::kDeadPrioritizeRule:
    case DiagCode::kBudgetSanity:
    case DiagCode::kOrderedWildcard:
    case DiagCode::kWindowOutsideTrace:
      return Severity::kWarning;
  }
  return Severity::kError;
}

// ------------------------------------------------------------------ engine

Diagnostic& DiagnosticEngine::Report(DiagCode code, SourceSpan span,
                                     std::string message) {
  return Report(code, DiagCodeSeverity(code), span, std::move(message));
}

Diagnostic& DiagnosticEngine::Report(DiagCode code, Severity severity,
                                     SourceSpan span, std::string message) {
  Diagnostic d;
  d.code = code;
  d.severity = severity;
  d.span = span;
  d.message = std::move(message);
  if (severity == Severity::kError) num_errors_++;
  if (severity == Severity::kWarning) num_warnings_++;
  diagnostics_.push_back(std::move(d));
  return diagnostics_.back();
}

void DiagnosticEngine::SortBySource() {
  std::stable_sort(diagnostics_.begin(), diagnostics_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     // Unknown positions (line 0) sort last.
                     const int al = a.span.valid() ? a.span.line : 1 << 30;
                     const int bl = b.span.valid() ? b.span.line : 1 << 30;
                     if (al != bl) return al < bl;
                     return a.span.column < b.span.column;
                   });
}

size_t DiagnosticEngine::PromoteWarnings() {
  size_t promoted = 0;
  for (Diagnostic& d : diagnostics_) {
    if (d.severity == Severity::kWarning) {
      d.severity = Severity::kError;
      promoted++;
    }
  }
  num_errors_ += promoted;
  num_warnings_ -= promoted;
  return promoted;
}

Status DiagnosticEngine::FirstErrorStatus(std::string_view prefix) const {
  for (const Diagnostic& d : diagnostics_) {
    if (d.severity != Severity::kError) continue;
    std::string msg(prefix);
    if (d.span.valid()) {
      msg += " at line " + std::to_string(d.span.line) + ", column " +
             std::to_string(d.span.column);
    }
    msg += ": " + d.message + " [" + d.code_name() + "]";
    return Status::InvalidArgument(std::move(msg));
  }
  return Status::Ok();
}

// ---------------------------------------------------------- human render

namespace {

/// The source split into lines, 1-based access.
class SourceLines {
 public:
  explicit SourceLines(std::string_view source)
      : lines_(Split(source, '\n')) {}

  std::string_view Line(int n) const {
    if (n < 1 || static_cast<size_t>(n) > lines_.size()) return {};
    std::string_view l = lines_[n - 1];
    if (!l.empty() && l.back() == '\r') l.remove_suffix(1);
    return l;
  }

 private:
  std::vector<std::string> lines_;
};

void AppendCaretSnippet(const SourceLines& lines, const SourceSpan& span,
                        std::string* out) {
  const std::string_view text = lines.Line(span.line);
  if (text.empty() && span.column > 1) return;  // span beyond known source
  out->append("    ");
  out->append(text);
  out->append("\n    ");
  const int start = span.column;
  // Clamp the underline to the primary line; multi-line spans underline to
  // the end of their first line.
  int end = span.end_line == span.line ? span.end_column
                                       : static_cast<int>(text.size()) + 1;
  if (end <= start) end = start + 1;
  for (int i = 1; i < start; ++i) {
    out->push_back(i - 1 < static_cast<int>(text.size()) && text[i - 1] == '\t'
                       ? '\t'
                       : ' ');
  }
  out->push_back('^');
  for (int i = start + 1; i < end; ++i) out->push_back('~');
  out->push_back('\n');
}

}  // namespace

std::string RenderHuman(std::string_view source, std::string_view filename,
                        const std::vector<Diagnostic>& diagnostics) {
  const SourceLines lines(source);
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out.append(filename);
    if (d.span.valid()) {
      out += ":" + std::to_string(d.span.line) + ":" +
             std::to_string(d.span.column);
    }
    out += ": ";
    out += SeverityName(d.severity);
    out += ": " + d.message + " [" + d.code_name() + "]\n";
    if (d.span.valid()) AppendCaretSnippet(lines, d.span, &out);
    for (const DiagNote& note : d.notes) {
      out += "    note: " + note.message;
      if (note.span.valid()) {
        out += " (line " + std::to_string(note.span.line) + ", column " +
               std::to_string(note.span.column) + ")";
      }
      out += "\n";
      if (note.span.valid()) AppendCaretSnippet(lines, note.span, &out);
    }
    if (!d.fixit.empty()) out += "    fix-it: " + d.fixit + "\n";
  }
  return out;
}

// ----------------------------------------------------------- SARIF render

namespace {

const char* SarifLevel(Severity s) {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "none";
}

void AppendSarifRegion(const SourceSpan& span, std::string* out) {
  *out += "\"region\":{\"startLine\":" + std::to_string(span.line) +
          ",\"startColumn\":" + std::to_string(span.column) +
          ",\"endLine\":" + std::to_string(span.end_line) +
          ",\"endColumn\":" + std::to_string(span.end_column) + "}";
}

void AppendSarifLocation(const std::string& uri, const SourceSpan& span,
                         std::string* out) {
  *out += "{\"physicalLocation\":{\"artifactLocation\":{\"uri\":\"" +
          JsonEscape(uri) + "\"}";
  if (span.valid()) {
    *out += ",";
    AppendSarifRegion(span, out);
  }
  *out += "}}";
}

}  // namespace

std::string RenderSarif(const std::vector<FileDiagnostics>& files) {
  // Collect the distinct rules actually fired, for the driver metadata.
  std::vector<DiagCode> rules;
  for (const FileDiagnostics& f : files) {
    for (const Diagnostic& d : f.diagnostics) {
      if (std::find(rules.begin(), rules.end(), d.code) == rules.end()) {
        rules.push_back(d.code);
      }
    }
  }
  std::sort(rules.begin(), rules.end(), [](DiagCode a, DiagCode b) {
    return std::string_view(DiagCodeName(a)) < DiagCodeName(b);
  });

  std::string out;
  out +=
      "{\"$schema\":"
      "\"https://json.schemastore.org/sarif-2.1.0.json\","
      "\"version\":\"2.1.0\",\"runs\":[{";
  out +=
      "\"tool\":{\"driver\":{\"name\":\"aptrace_lint\","
      "\"informationUri\":\"docs/bdl_lint.md\",\"rules\":[";
  for (size_t i = 0; i < rules.size(); ++i) {
    if (i > 0) out += ",";
    out += "{\"id\":\"";
    out += DiagCodeName(rules[i]);
    out += "\",\"defaultConfiguration\":{\"level\":\"";
    out += SarifLevel(DiagCodeSeverity(rules[i]));
    out += "\"}}";
  }
  out += "]}},\"results\":[";
  bool first = true;
  for (const FileDiagnostics& f : files) {
    for (const Diagnostic& d : f.diagnostics) {
      if (!first) out += ",";
      first = false;
      out += "{\"ruleId\":\"";
      out += d.code_name();
      out += "\",\"level\":\"";
      out += SarifLevel(d.severity);
      out += "\",\"message\":{\"text\":\"" + JsonEscape(d.message) + "\"}";
      out += ",\"locations\":[";
      AppendSarifLocation(f.path, d.span, &out);
      out += "]";
      if (!d.notes.empty()) {
        out += ",\"relatedLocations\":[";
        for (size_t i = 0; i < d.notes.size(); ++i) {
          if (i > 0) out += ",";
          std::string loc;
          AppendSarifLocation(f.path, d.notes[i].span, &loc);
          // Splice the message object into the physicalLocation wrapper.
          loc.insert(loc.size() - 1, ",\"message\":{\"text\":\"" +
                                         JsonEscape(d.notes[i].message) +
                                         "\"}");
          out += loc;
        }
        out += "]";
      }
      out += "}";
    }
  }
  out += "]}]}\n";
  return out;
}

}  // namespace aptrace::bdl
