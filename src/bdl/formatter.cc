#include "bdl/formatter.h"

#include <sstream>

#include "util/string_util.h"

namespace aptrace::bdl {

namespace {

bool IsTimeField(FieldId f) {
  switch (f) {
    case FieldId::kEventTime:
    case FieldId::kLastModificationTime:
    case FieldId::kLastAccessTime:
    case FieldId::kCreationTime:
    case FieldId::kStarttime:
    case FieldId::kIpStartTime:
      return true;
    default:
      return false;
  }
}

std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

void FormatLeaf(const Condition::LeafSpec& leaf, std::ostringstream& os) {
  if (leaf.type_scope.has_value()) {
    os << ObjectTypeName(*leaf.type_scope) << ".";
  }
  if (leaf.endpoint == EndpointSel::kFlowSrc) os << "src.";
  if (leaf.endpoint == EndpointSel::kFlowDst) os << "dst.";
  os << FieldIdName(leaf.field) << " " << CompareOpName(leaf.op) << " ";
  if (leaf.str_value != nullptr) {
    os << "\"" << EscapeString(leaf.str_value->pattern()) << "\"";
  } else if (leaf.bool_value.has_value()) {
    os << (*leaf.bool_value ? "true" : "false");
  } else if (leaf.int_value.has_value()) {
    if (IsTimeField(leaf.field)) {
      os << "\"" << FormatBdlTime(*leaf.int_value) << "\"";
    } else {
      os << *leaf.int_value;
    }
  }
}

void FormatConditionInto(const Condition* cond, std::ostringstream& os) {
  switch (cond->kind()) {
    case Condition::Kind::kLeaf:
      FormatLeaf(cond->leaf(), os);
      break;
    case Condition::Kind::kAnd:
      os << "(";
      FormatConditionInto(cond->lhs(), os);
      os << " and ";
      FormatConditionInto(cond->rhs(), os);
      os << ")";
      break;
    case Condition::Kind::kOr:
      os << "(";
      FormatConditionInto(cond->lhs(), os);
      os << " or ";
      FormatConditionInto(cond->rhs(), os);
      os << ")";
      break;
  }
}

}  // namespace

std::string FormatCondition(const Condition* cond) {
  if (cond == nullptr) return "";
  std::ostringstream os;
  FormatConditionInto(cond, os);
  return os.str();
}

std::string FormatSpec(const TrackingSpec& spec) {
  std::ostringstream os;
  if (spec.time_from.has_value() && spec.time_to.has_value()) {
    os << "from \"" << FormatBdlTime(*spec.time_from) << "\" to \""
       << FormatBdlTime(*spec.time_to) << "\"\n";
  }
  if (!spec.hosts.empty()) {
    os << "in ";
    for (size_t i = 0; i < spec.hosts.size(); ++i) {
      if (i) os << ", ";
      os << "\"" << EscapeString(spec.hosts[i]) << "\"";
    }
    os << "\n";
  }

  os << TrackDirectionName(spec.direction);
  for (size_t i = 0; i < spec.chain.size(); ++i) {
    if (i) os << " ->";
    const NodePattern& p = spec.chain[i];
    if (p.wildcard) {
      os << " *";
      continue;
    }
    os << " " << ObjectTypeName(*p.type);
    if (!p.var.empty()) os << " " << p.var;
    os << "[" << FormatCondition(p.cond.get()) << "]";
  }
  os << "\n";

  // The where statement: the object filter plus the extracted budgets.
  std::vector<std::string> where_parts;
  if (spec.where != nullptr) {
    where_parts.push_back(FormatCondition(spec.where.get()));
  }
  if (spec.time_budget >= 0) {
    // Milliseconds are the finest duration literal, so this is exact.
    where_parts.push_back(
        "time <= " + std::to_string(spec.time_budget / kMicrosPerMilli) +
        "ms");
  }
  if (spec.hop_limit >= 0) {
    where_parts.push_back("hop <= " + std::to_string(spec.hop_limit));
  }
  if (!where_parts.empty()) {
    os << "where " << Join(where_parts, " and ") << "\n";
  }

  for (const QuantityRule& rule : spec.prioritize) {
    os << "prioritize";
    for (size_t i = 0; i < rule.chain.size(); ++i) {
      if (i) os << " <-";
      const auto& p = rule.chain[i];
      os << " [";
      std::vector<std::string> parts;
      if (p.object_type.has_value()) {
        parts.push_back(std::string("type = ") +
                        ObjectTypeName(*p.object_type));
      }
      if (p.cond != nullptr) parts.push_back(FormatCondition(p.cond.get()));
      if (p.amount_vs_upstream) {
        parts.push_back(std::string("amount ") +
                        CompareOpName(p.amount_op) + " size");
      }
      os << Join(parts, " and ") << "]";
    }
    os << "\n";
  }

  if (!spec.output_path.empty()) {
    os << "output = \"" << EscapeString(spec.output_path) << "\"\n";
  }
  return os.str();
}

}  // namespace aptrace::bdl
