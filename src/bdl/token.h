#ifndef APTRACE_BDL_TOKEN_H_
#define APTRACE_BDL_TOKEN_H_

#include <cstdint>
#include <string>

namespace aptrace::bdl {

/// Lexical token kinds of the Backtracking Descriptive Language.
enum class TokenKind : uint8_t {
  kIdent,     // keywords and field names; keyword-ness decided by parser
  kString,    // "..." literal (also used for time literals)
  kNumber,    // integer literal
  kDuration,  // e.g. 10mins, 30s (digits immediately followed by letters)
  kLt,        // <
  kLe,        // <=
  kGt,        // >
  kGe,        // >=
  kEq,        // =
  kNe,        // !=
  kArrow,     // ->
  kBackArrow, // <-
  kComma,     // ,
  kDot,       // .
  kStar,      // *
  kLBracket,  // [
  kRBracket,  // ]
  kLParen,    // (
  kRParen,    // )
  kEnd,       // end of input
};

const char* TokenKindName(TokenKind k);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;    // raw text (string literals are unquoted)
  int64_t number = 0;  // for kNumber
  int line = 1;        // 1-based source position, for error messages
  int column = 1;
  int length = 1;      // source characters consumed, for diagnostic spans
};

}  // namespace aptrace::bdl

#endif  // APTRACE_BDL_TOKEN_H_
