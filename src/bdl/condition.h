#ifndef APTRACE_BDL_CONDITION_H_
#define APTRACE_BDL_CONDITION_H_

#include <memory>
#include <optional>
#include <string>

#include "bdl/ast.h"
#include "event/catalog.h"
#include "event/event.h"
#include "event/schema.h"
#include "util/wildcard.h"

namespace aptrace::bdl {

/// Three-valued logic for condition evaluation. A leaf that does not apply
/// to the object under test (e.g. `proc.exename` on a file) evaluates to
/// kNA; kNA is neutral in `and`/`or`. This is what makes a mixed filter
/// like `file.path != "*.dll" and proc.exename != "findstr.exe"` behave as
/// analysts expect: each conjunct constrains only its own object type.
enum class Tribool : uint8_t { kFalse = 0, kTrue = 1, kNA = 2 };

Tribool TriAnd(Tribool a, Tribool b);
Tribool TriOr(Tribool a, Tribool b);

/// Which object a leaf reads its field from, relative to the event being
/// considered. kSelf is the object under test; kFlowSrc / kFlowDst are the
/// event's data-flow endpoints (used by `src.path`, `dst.ip`,
/// `proc.dst.isReadonly` style paths).
enum class EndpointSel : uint8_t { kSelf, kFlowSrc, kFlowDst };

/// Evaluation context: the object under test and, when available, the
/// event through which it was reached.
struct EvalContext {
  const SystemObject* object = nullptr;  // required
  const Event* event = nullptr;          // optional
  const ObjectCatalog* catalog = nullptr;  // required
  const DerivedAttrs* derived = nullptr;   // optional
};

/// A compiled, immutable condition tree. Compilation resolves field names,
/// parses time literals, and pre-compiles wildcard patterns, so evaluation
/// per event is cheap. Built by the analyzer; shared by spec copies.
class Condition {
 public:
  enum class Kind : uint8_t { kLeaf, kAnd, kOr };

  /// Inner node.
  static std::unique_ptr<Condition> And(std::unique_ptr<Condition> l,
                                        std::unique_ptr<Condition> r);
  static std::unique_ptr<Condition> Or(std::unique_ptr<Condition> l,
                                       std::unique_ptr<Condition> r);

  /// Leaf comparing `field` (read from `endpoint`, restricted to objects
  /// of `type_scope` when set) against a pre-compiled value.
  struct LeafSpec {
    std::optional<ObjectType> type_scope;
    EndpointSel endpoint = EndpointSel::kSelf;
    FieldId field = FieldId::kHost;
    CompareOp op = CompareOp::kEq;
    // Exactly one of the following is engaged, fixed at compile time.
    std::optional<int64_t> int_value;
    std::optional<bool> bool_value;
    std::shared_ptr<WildcardMatcher> str_value;
  };
  static std::unique_ptr<Condition> Leaf(LeafSpec leaf);

  /// Evaluates against the context. Never fails; missing context
  /// information yields kNA.
  Tribool Eval(const EvalContext& ctx) const;

  Kind kind() const { return kind_; }
  const LeafSpec& leaf() const { return leaf_; }
  const Condition* lhs() const { return lhs_.get(); }
  const Condition* rhs() const { return rhs_.get(); }

  /// Debug rendering, e.g. "(exename != \"explorer\" and hop <= 25)".
  std::string ToString() const;

 private:
  Condition() = default;

  Kind kind_ = Kind::kLeaf;
  LeafSpec leaf_;
  std::unique_ptr<Condition> lhs_;
  std::unique_ptr<Condition> rhs_;
};

/// Filter interpretation (where-statement): keep the object unless the
/// condition positively fails. Null condition keeps everything.
bool ConditionKeeps(const Condition* cond, const EvalContext& ctx);

/// Pattern interpretation (node patterns): the object matches only if the
/// condition positively holds. Null condition matches everything.
bool ConditionMatches(const Condition* cond, const EvalContext& ctx);

}  // namespace aptrace::bdl

#endif  // APTRACE_BDL_CONDITION_H_
