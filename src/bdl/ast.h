#ifndef APTRACE_BDL_AST_H_
#define APTRACE_BDL_AST_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bdl/diagnostics.h"

namespace aptrace::bdl {

/// Comparison operators allowed in BDL conditions (paper Section III-A1).
enum class CompareOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

const char* CompareOpName(CompareOp op);

/// A literal appearing on the right-hand side of a condition. Time strings
/// stay as kString until the analyzer knows the field's type. kIdent covers
/// bare-word values such as `true`, `false`, and the quantity keyword
/// `size` in Program 2 (`amount >= size`).
struct AstValue {
  enum class Kind : uint8_t { kString, kNumber, kDuration, kIdent };
  Kind kind = Kind::kString;
  std::string text;
  int64_t number = 0;
  SourceSpan span;  // the literal's own source region
};

/// Condition expression tree. Leaves compare a (possibly dotted) field
/// path against a value; inner nodes are and/or.
struct AstExpr {
  enum class Kind : uint8_t { kLeaf, kAnd, kOr };
  Kind kind = Kind::kLeaf;

  // Leaf payload.
  std::vector<std::string> field_path;  // e.g. {"exename"}, {"proc","exename"},
                                        // {"proc","dst","isReadonly"}
  CompareOp op = CompareOp::kEq;
  AstValue value;

  // Inner-node payload.
  std::unique_ptr<AstExpr> lhs;
  std::unique_ptr<AstExpr> rhs;

  /// Leaves cover `path op value`; inner nodes cover the operator keyword.
  SourceSpan span;
  int line() const { return span.line; }
};

/// One node of the tracking statement: `type var[condition_list]` or the
/// `*` wildcard end point.
struct AstNode {
  bool wildcard = false;
  std::string type_name;  // "proc" | "file" | "ip" (empty for wildcard)
  std::string var;        // user variable name (may be empty)
  std::unique_ptr<AstExpr> cond;  // may be null (no conditions)
  SourceSpan span;                // the node's type token (or `*`)
};

/// A `prioritize` statement (paper Program 2): a chain of event patterns
/// connected by `<-`, read "the right event feeds the left one".
struct AstPrioritize {
  std::vector<std::unique_ptr<AstExpr>> patterns;
  SourceSpan span;  // the `prioritize` keyword
};

/// A whole BDL script.
struct AstScript {
  bool forward = false;  // `forward` instead of `backward`

  std::optional<std::string> from_time;  // general constraint
  std::optional<std::string> to_time;
  SourceSpan from_span;  // the `from` time literal, when present
  SourceSpan to_span;    // the `to` time literal, when present
  std::vector<std::string> hosts;        // `in "h1", "h2"`

  std::vector<AstNode> chain;            // `backward n1 -> n2 -> ...`

  std::unique_ptr<AstExpr> where;        // may be null

  std::vector<AstPrioritize> prioritize;

  std::optional<std::string> output_path;  // `output = "path"`
};

/// Deep copy of a condition tree (used by the analyzer's budget extraction
/// and by lint passes that restructure expressions).
std::unique_ptr<AstExpr> CloneExpr(const AstExpr& e);

}  // namespace aptrace::bdl

#endif  // APTRACE_BDL_AST_H_
