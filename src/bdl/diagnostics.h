#ifndef APTRACE_BDL_DIAGNOSTICS_H_
#define APTRACE_BDL_DIAGNOSTICS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace aptrace::bdl {

/// A half-open region of BDL source text: [line:column, end_line:end_column).
/// Lines and columns are 1-based; line == 0 means "no location" (whole-script
/// diagnostics such as a missing tracking statement at end of input still
/// carry the end-of-input position, so this is rare).
struct SourceSpan {
  int line = 0;
  int column = 0;
  int end_line = 0;    // inclusive line of the last character
  int end_column = 0;  // exclusive column just past the last character

  bool valid() const { return line > 0; }

  /// Point span of `length` characters starting at line:column.
  static SourceSpan At(int line, int column, int length = 1);

  /// Smallest span covering both `a` and `b`. Invalid inputs are ignored.
  static SourceSpan Cover(const SourceSpan& a, const SourceSpan& b);
};

bool operator==(const SourceSpan& a, const SourceSpan& b);

/// Diagnostic severities, ordered by increasing weight. Notes only appear
/// attached to a primary diagnostic; the engine itself records warnings and
/// errors.
enum class Severity : uint8_t { kNote, kWarning, kError };

const char* SeverityName(Severity s);

/// Stable diagnostic codes. Every diagnostic the BDL front end can emit has
/// one; docs/bdl_lint.md documents each with a triggering example and fix.
/// The string forms ("BDL-E001") are the public contract used by tests, CI
/// gates, and SARIF consumers — never renumber, only append.
enum class DiagCode : uint8_t {
  // Errors (lexical, syntactic, semantic).
  kLexError,            // BDL-E001
  kSyntaxError,         // BDL-E002
  kUnknownNodeType,     // BDL-E003
  kUnknownAttribute,    // BDL-E004
  kAttributeNotApplicable,  // BDL-E005
  kValueTypeMismatch,   // BDL-E006
  kBadTimeLiteral,      // BDL-E007
  kBadBudget,           // BDL-E008
  kBadChain,            // BDL-E009
  kInvertedTimeRange,   // BDL-E010
  kOrInPrioritize,      // BDL-E011
  // Warnings (lint).
  kAlwaysFalse,         // BDL-W001
  kAlwaysTrue,          // BDL-W002
  kExclusionSwallowsAll,  // BDL-W003
  kSubsumedPredicate,   // BDL-W004
  kPatternMatchesNothing,  // BDL-W005
  kDeadPrioritizeRule,  // BDL-W006
  kBudgetSanity,        // BDL-W007
  kOrderedWildcard,     // BDL-W008
  kWindowOutsideTrace,  // BDL-W009
};

/// "BDL-E001" etc.
const char* DiagCodeName(DiagCode code);

/// The severity a code carries by default (errors vs. warnings).
Severity DiagCodeSeverity(DiagCode code);

/// A secondary location attached to a diagnostic ("previous rule is here").
struct DiagNote {
  SourceSpan span;
  std::string message;
};

/// One reported problem: code, severity, primary span, message, optional
/// secondary notes and an optional fix-it replacement suggestion.
struct Diagnostic {
  DiagCode code = DiagCode::kSyntaxError;
  Severity severity = Severity::kError;
  SourceSpan span;
  std::string message;
  std::vector<DiagNote> notes;
  std::string fixit;  // suggested replacement text; empty = none

  const char* code_name() const { return DiagCodeName(code); }
};

/// Accumulates diagnostics across the lexer, parser, analyzer, and lint
/// passes so a single compile surfaces every problem. Not thread-safe; one
/// engine per compile.
class DiagnosticEngine {
 public:
  /// Reports with the code's default severity.
  Diagnostic& Report(DiagCode code, SourceSpan span, std::string message);
  /// Reports with an explicit severity (e.g. warnings promoted by -Werror).
  Diagnostic& Report(DiagCode code, Severity severity, SourceSpan span,
                     std::string message);

  bool HasErrors() const { return num_errors_ > 0; }
  size_t num_errors() const { return num_errors_; }
  size_t num_warnings() const { return num_warnings_; }
  bool empty() const { return diagnostics_.empty(); }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  std::vector<Diagnostic> Take() { return std::move(diagnostics_); }

  /// Stable-sorts diagnostics by source position (unknown positions last)
  /// so one render reads top to bottom regardless of pass order.
  void SortBySource();

  /// Promotes every warning to an error (the --werror contract). Returns
  /// the number of promoted diagnostics.
  size_t PromoteWarnings();

  /// Status for fail-fast callers: the first error rendered as
  /// "<prefix> at line L, column C: message", or OK when error-free.
  Status FirstErrorStatus(std::string_view prefix) const;

 private:
  std::vector<Diagnostic> diagnostics_;
  size_t num_errors_ = 0;
  size_t num_warnings_ = 0;
};

/// Renders diagnostics as human-readable caret output:
///
///   script.bdl:4:12: warning: hop budget of 0 stops at the start point [BDL-W007]
///       where hop <= 0
///             ^~~~~~~~
///       note: ...
///       fix-it: hop <= 25
///
/// `source` is the script text the spans refer to; `filename` is used only
/// for the location prefix.
std::string RenderHuman(std::string_view source, std::string_view filename,
                        const std::vector<Diagnostic>& diagnostics);

/// One lint run's worth of diagnostics for a file, for SARIF aggregation.
struct FileDiagnostics {
  std::string path;
  std::vector<Diagnostic> diagnostics;
};

/// Renders diagnostics for one or more files as a SARIF 2.1.0 log (the
/// machine-readable format GitHub code scanning and most CI systems ingest).
std::string RenderSarif(const std::vector<FileDiagnostics>& files);

}  // namespace aptrace::bdl

#endif  // APTRACE_BDL_DIAGNOSTICS_H_
