#include "bdl/ast.h"

namespace aptrace::bdl {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "!=";
  }
  return "?";
}

std::unique_ptr<AstExpr> CloneExpr(const AstExpr& e) {
  auto c = std::make_unique<AstExpr>();
  c->kind = e.kind;
  c->field_path = e.field_path;
  c->op = e.op;
  c->value = e.value;
  c->span = e.span;
  if (e.lhs) c->lhs = CloneExpr(*e.lhs);
  if (e.rhs) c->rhs = CloneExpr(*e.rhs);
  return c;
}

}  // namespace aptrace::bdl
