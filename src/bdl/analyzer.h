#ifndef APTRACE_BDL_ANALYZER_H_
#define APTRACE_BDL_ANALYZER_H_

#include <string_view>

#include "bdl/ast.h"
#include "bdl/spec.h"
#include "util/status.h"

namespace aptrace::bdl {

/// Semantic analysis: resolves field names against the event schema, types
/// the literals (time strings, durations, booleans), compiles wildcard
/// patterns, extracts `time` / `hop` termination budgets from the where
/// statement, and compiles `prioritize` rules. This is the compile step
/// the paper's Refiner performs to produce executable metadata.
Result<TrackingSpec> Analyze(const AstScript& script);

/// Parse + Analyze in one step.
Result<TrackingSpec> CompileBdl(std::string_view text);

}  // namespace aptrace::bdl

#endif  // APTRACE_BDL_ANALYZER_H_
