#ifndef APTRACE_BDL_ANALYZER_H_
#define APTRACE_BDL_ANALYZER_H_

#include <optional>
#include <string_view>

#include "bdl/ast.h"
#include "bdl/diagnostics.h"
#include "bdl/spec.h"
#include "util/status.h"

namespace aptrace::bdl {

/// Semantic analysis: resolves field names against the event schema, types
/// the literals (time strings, durations, booleans), compiles wildcard
/// patterns, extracts `time` / `hop` termination budgets from the where
/// statement, and compiles `prioritize` rules. This is the compile step
/// the paper's Refiner performs to produce executable metadata.
///
/// Fail-fast variant: stops at the first problem, reported with its
/// source line and column.
Result<TrackingSpec> Analyze(const AstScript& script);

/// Diagnostic-collecting variant: every semantic problem is reported into
/// `diags` with a source span, and analysis continues past errors so one
/// pass surfaces all of them. Returns the compiled spec only when this
/// call added no errors (the AST may come from a recovered parse).
std::optional<TrackingSpec> AnalyzeRecover(const AstScript& script,
                                           DiagnosticEngine* diags);

/// Parse + Analyze in one step, fail-fast.
Result<TrackingSpec> CompileBdl(std::string_view text);

}  // namespace aptrace::bdl

#endif  // APTRACE_BDL_ANALYZER_H_
