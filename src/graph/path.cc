#include "graph/path.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace aptrace {

CausalPath FindCausalPath(const DepGraph& graph, ObjectId target,
                          bool forward) {
  CausalPath path;
  const ObjectId start = graph.start();
  if (!graph.HasNode(start) || !graph.HasNode(target)) return path;

  // BFS from the start along the exploration direction, remembering the
  // edge that first reached each node.
  struct Via {
    EventId event;
    ObjectId from;
  };
  std::unordered_map<ObjectId, Via> via;
  std::deque<ObjectId> queue{start};
  via.emplace(start, Via{kInvalidEventId, kInvalidObjectId});

  while (!queue.empty() && via.count(target) == 0) {
    const ObjectId node = queue.front();
    queue.pop_front();
    const DepGraph::Node& n = graph.GetNode(node);
    const auto& edges = forward ? n.out_edges : n.in_edges;
    for (EventId eid : edges) {
      const DepGraph::Edge& edge = graph.GetEdge(eid);
      const ObjectId next = forward ? edge.dst : edge.src;
      if (via.emplace(next, Via{eid, node}).second) {
        queue.push_back(next);
      }
    }
  }
  if (via.count(target) == 0) return path;

  // Walk back from the target to the start, then reverse.
  std::vector<PathStep> reversed;
  ObjectId cursor = target;
  while (cursor != start) {
    const Via& v = via.at(cursor);
    reversed.push_back({v.event, cursor});
    cursor = v.from;
  }
  std::reverse(reversed.begin(), reversed.end());
  path.origin = start;
  path.steps = std::move(reversed);
  return path;
}

}  // namespace aptrace
