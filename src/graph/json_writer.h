#ifndef APTRACE_GRAPH_JSON_WRITER_H_
#define APTRACE_GRAPH_JSON_WRITER_H_

#include <ostream>
#include <string>

#include "event/catalog.h"
#include "graph/dep_graph.h"
#include "util/status.h"

namespace aptrace {

/// Serializes a dependency graph as JSON, for web UIs and downstream
/// tooling:
///
///   {
///     "start": <object id>,
///     "nodes": [{"id", "type", "label", "host", "hop", "state"}, ...],
///     "edges": [{"event", "src", "dst", "time", "action", "amount"}, ...]
///   }
///
/// Nodes and edges are sorted by id so the output is deterministic.
void WriteGraphJson(const DepGraph& graph, const ObjectCatalog& catalog,
                    std::ostream& os);

Status WriteGraphJsonFile(const DepGraph& graph, const ObjectCatalog& catalog,
                          const std::string& path);

}  // namespace aptrace

#endif  // APTRACE_GRAPH_JSON_WRITER_H_
