#include "graph/summarize.h"

#include <algorithm>
#include <map>
#include <unordered_set>
#include <vector>

#include "util/string_util.h"

namespace aptrace {

namespace {

std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

const char* ShapeFor(ObjectType t) {
  switch (t) {
    case ObjectType::kProcess:
      return "ellipse";
    case ObjectType::kFile:
      return "box";
    case ObjectType::kIp:
      return "diamond";
  }
  return "ellipse";
}

/// Group pattern for a collapsible leaf: files by directory + extension,
/// sockets by destination /16.
std::string GroupPattern(const SystemObject& obj) {
  if (obj.is_file()) {
    const std::string& path = obj.file().path;
    const size_t slash = path.find_last_of("/\\");
    const std::string dir =
        slash == std::string::npos ? "" : path.substr(0, slash + 1);
    const std::string name = obj.file().Filename();
    const size_t dot = name.find_last_of('.');
    const std::string ext =
        dot == std::string::npos ? "" : name.substr(dot);
    return dir + "*" + ext;
  }
  const auto octets = Split(obj.ip().dst_ip, '.');
  if (octets.size() == 4) {
    return "sockets to " + octets[0] + "." + octets[1] + ".*";
  }
  return "sockets to " + obj.ip().dst_ip;
}

/// A collapsible node's connection signature: its distinct neighbours
/// with edge orientation (true = this node is the flow source). Nodes
/// sharing a signature and a path pattern collapse together — e.g. every
/// /usr/include header written by apt and read by gcc.
using Signature = std::vector<std::pair<ObjectId, bool>>;

struct GroupKey {
  Signature signature;
  std::string pattern;

  bool operator<(const GroupKey& other) const {
    return std::tie(signature, pattern) <
           std::tie(other.signature, other.pattern);
  }
};

}  // namespace

SummaryStats WriteDotSummarized(const DepGraph& graph,
                                const ObjectCatalog& catalog,
                                std::ostream& os,
                                const SummarizeOptions& options) {
  SummaryStats stats;
  stats.original_nodes = graph.NumNodes();

  // Endpoints of the alert edge are never collapsed.
  std::unordered_set<ObjectId> pinned{graph.start()};
  if (options.alert_event != kInvalidEventId &&
      graph.HasEdge(options.alert_event)) {
    const DepGraph::Edge& alert = graph.GetEdge(options.alert_event);
    pinned.insert(alert.src);
    pinned.insert(alert.dst);
  }

  // Pass 1: bucket collapsible nodes by connection signature. Only file
  // and socket nodes with few distinct neighbours collapse; processes and
  // busy hubs stay individual.
  constexpr size_t kMaxSignature = 3;
  std::map<GroupKey, std::vector<ObjectId>> groups;
  graph.ForEachNode([&](const DepGraph::Node& n) {
    if (pinned.count(n.object)) return;
    const SystemObject& obj = catalog.Get(n.object);
    if (obj.is_process()) return;
    Signature signature;
    for (EventId eid : n.out_edges) {
      signature.emplace_back(graph.GetEdge(eid).dst, true);
    }
    for (EventId eid : n.in_edges) {
      signature.emplace_back(graph.GetEdge(eid).src, false);
    }
    std::sort(signature.begin(), signature.end());
    signature.erase(std::unique(signature.begin(), signature.end()),
                    signature.end());
    if (signature.empty() || signature.size() > kMaxSignature) return;
    groups[{std::move(signature), GroupPattern(obj)}].push_back(n.object);
  });

  std::unordered_set<ObjectId> collapsed;
  for (auto& [key, members] : groups) {
    (void)key;
    if (members.size() >= options.min_group_size) {
      for (ObjectId id : members) collapsed.insert(id);
    }
  }

  os << "digraph \"" << DotEscape(options.graph_name) << "\" {\n";
  os << "  rankdir=LR;\n  node [fontsize=10];\n";

  // Individual nodes.
  std::vector<ObjectId> nodes = graph.NodeIds();
  std::sort(nodes.begin(), nodes.end());
  for (ObjectId id : nodes) {
    if (collapsed.count(id)) continue;
    const SystemObject& obj = catalog.Get(id);
    os << "  n" << id << " [label=\"" << DotEscape(obj.Label())
       << "\" shape=" << ShapeFor(obj.type());
    if (id == graph.start()) os << " style=filled fillcolor=lightyellow";
    os << "];\n";
    stats.summary_nodes++;
  }

  // Group nodes + their single aggregated edge.
  size_t group_index = 0;
  for (const auto& [key, members] : groups) {
    if (members.size() < options.min_group_size) continue;
    const std::string gid = "g" + std::to_string(group_index++);
    const SystemObject& sample = catalog.Get(members.front());
    os << "  " << gid << " [label=\"" << members.size() << " x "
       << DotEscape(key.pattern) << "\" shape=" << ShapeFor(sample.type())
       << " style=\"filled,dashed\" fillcolor=gray90];\n";
    for (const auto& [neighbor, member_is_source] : key.signature) {
      if (member_is_source) {
        os << "  " << gid << " -> n" << neighbor;
      } else {
        os << "  n" << neighbor << " -> " << gid;
      }
      os << " [label=\"" << members.size()
         << " events\" color=gray60 style=dashed];\n";
    }
    stats.groups++;
    stats.collapsed_nodes += members.size();
    stats.summary_nodes++;  // the group node itself
  }

  // Remaining edges between individual nodes.
  std::vector<DepGraph::Edge> edges;
  graph.ForEachEdge([&](const DepGraph::Edge& e) {
    if (collapsed.count(e.src) || collapsed.count(e.dst)) return;
    edges.push_back(e);
  });
  std::sort(edges.begin(), edges.end(),
            [](const DepGraph::Edge& a, const DepGraph::Edge& b) {
              return a.event < b.event;
            });
  for (const auto& e : edges) {
    os << "  n" << e.src << " -> n" << e.dst << " [label=\""
       << ActionTypeName(e.action) << "\" ";
    if (e.event == options.alert_event) {
      os << "color=red penwidth=2.5";
    } else {
      os << "color=gray40";
    }
    os << "];\n";
  }
  os << "}\n";
  return stats;
}

}  // namespace aptrace
