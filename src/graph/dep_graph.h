#ifndef APTRACE_GRAPH_DEP_GRAPH_H_
#define APTRACE_GRAPH_DEP_GRAPH_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "event/event.h"
#include "event/object.h"

namespace aptrace {

/// The tracking graph (paper Section II): nodes are system objects, edges
/// are system events, and edge direction is the direction of data flow.
/// Backtracking grows this graph from the starting point "backwards"
/// against the flow.
///
/// Node bookkeeping carried for the engine:
///  * `hop`   — minimum number of edges from the start object, used by the
///              `where hop <= N` termination heuristic;
///  * `state` — the state-propagation index maintained by the Dependency
///              Graph Maintainer for intermediate-point prioritization
///              (paper Section III-B2). 0 = matches no prefix; i means the
///              node was reached along a path matching chain patterns
///              n1..ni.
class DepGraph {
 public:
  struct Node {
    ObjectId object = kInvalidObjectId;
    int hop = 0;
    int state = 0;
    // Edges incident to this node, by event id.
    std::vector<EventId> in_edges;   // edges whose flow dest is this node
    std::vector<EventId> out_edges;  // edges whose flow source is this node
  };

  struct Edge {
    EventId event = kInvalidEventId;
    ObjectId src = kInvalidObjectId;  // flow source
    ObjectId dst = kInvalidObjectId;  // flow destination
    TimeMicros timestamp = 0;
    ActionType action = ActionType::kRead;
    uint64_t amount = 0;
  };

  enum class AddResult : uint8_t {
    kDuplicate,       // edge already present
    kNewEdge,         // edge added, both endpoints already known
    kNewEdgeAndNode,  // edge added and at least one endpoint is new
  };

  DepGraph() = default;

  /// Declares the starting object (hop 0, state 1 = matched n1).
  void SetStart(ObjectId start);
  ObjectId start() const { return start_; }

  /// Inserts the event as an edge (flow source -> flow dest), creating any
  /// missing endpoint nodes. New nodes get hop = hop(existing endpoint)+1
  /// when discovered from a known node, else 0.
  AddResult AddEventEdge(const Event& event);

  bool HasNode(ObjectId id) const { return nodes_.count(id) != 0; }
  bool HasEdge(EventId id) const { return edges_.count(id) != 0; }

  /// Precondition: node/edge exists.
  const Node& GetNode(ObjectId id) const { return nodes_.at(id); }
  const Edge& GetEdge(EventId id) const { return edges_.at(id); }

  size_t NumNodes() const { return nodes_.size(); }
  size_t NumEdges() const { return edges_.size(); }

  int HopOf(ObjectId id) const;
  int StateOf(ObjectId id) const;
  void SetState(ObjectId id, int state);
  /// Overrides a node's hop (checkpoint restore only: hops are
  /// insertion-order dependent, so they are persisted, not recomputed).
  void SetHop(ObjectId id, int hop);
  /// Resets every node's state to 0 (start back to 1). Used when the
  /// Refiner re-propagates states after the chain changed.
  void ClearStates();

  /// Largest hop value over all nodes — the graph "diameter" from the
  /// start, which `where hop <= N` bounds.
  int MaxHop() const;

  /// Removes every node for which `pred` returns true, along with all
  /// incident edges. Returns the number of nodes removed. The start node
  /// is never removed.
  size_t RemoveNodesIf(const std::function<bool(ObjectId)>& pred);

  /// Removes every edge for which `pred` returns true (endpoints stay,
  /// possibly orphaned — follow with reachability pruning). Returns the
  /// number of edges removed.
  size_t RemoveEdgesIf(const std::function<bool(const Edge&)>& pred);

  /// Iteration helpers.
  void ForEachNode(const std::function<void(const Node&)>& fn) const;
  void ForEachEdge(const std::function<void(const Edge&)>& fn) const;

  /// Returns all node ids (unordered).
  std::vector<ObjectId> NodeIds() const;

 private:
  Node& EnsureNode(ObjectId id);

  ObjectId start_ = kInvalidObjectId;
  std::unordered_map<ObjectId, Node> nodes_;
  std::unordered_map<EventId, Edge> edges_;
};

}  // namespace aptrace

#endif  // APTRACE_GRAPH_DEP_GRAPH_H_
