#ifndef APTRACE_GRAPH_SUMMARIZE_H_
#define APTRACE_GRAPH_SUMMARIZE_H_

#include <cstddef>
#include <ostream>
#include <string>

#include "event/catalog.h"
#include "graph/dep_graph.h"

namespace aptrace {

/// Display-level summarization, matching how the paper draws dependency
/// graphs (Figures 2 and 5 show grouped grey nodes such as "*.dll,
/// sockets"): *leaf* nodes of the same kind hanging off the same process
/// collapse into one summary node labelled with their count and pattern.
///
/// A node is collapsible when it has exactly one neighbour (degree 1) and
/// is a file or a socket; files group by "directory/*.extension", sockets
/// by destination /16. Processes, multi-neighbour nodes, and the start
/// node always stay individual.
struct SummarizeOptions {
  /// Only collapse groups with at least this many members.
  size_t min_group_size = 3;

  /// Highlight edge (the anomaly alert), as in DotOptions.
  EventId alert_event = kInvalidEventId;

  std::string graph_name = "aptrace-summary";
};

/// Statistics of one summarization (also useful for tests).
struct SummaryStats {
  size_t original_nodes = 0;
  size_t summary_nodes = 0;   // nodes drawn after grouping
  size_t groups = 0;          // collapsed groups drawn
  size_t collapsed_nodes = 0; // original nodes hidden inside groups
};

/// Writes the summarized graph as Graphviz DOT and returns the grouping
/// statistics.
SummaryStats WriteDotSummarized(const DepGraph& graph,
                                const ObjectCatalog& catalog,
                                std::ostream& os,
                                const SummarizeOptions& options = {});

}  // namespace aptrace

#endif  // APTRACE_GRAPH_SUMMARIZE_H_
