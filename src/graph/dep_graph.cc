#include "graph/dep_graph.h"

#include <algorithm>

namespace aptrace {

void DepGraph::SetStart(ObjectId start) {
  start_ = start;
  Node& n = EnsureNode(start);
  n.hop = 0;
  n.state = 1;
}

DepGraph::Node& DepGraph::EnsureNode(ObjectId id) {
  auto [it, inserted] = nodes_.try_emplace(id);
  if (inserted) {
    it->second.object = id;
    it->second.hop = 0;
    it->second.state = 0;
  }
  return it->second;
}

DepGraph::AddResult DepGraph::AddEventEdge(const Event& event) {
  if (edges_.count(event.id)) return AddResult::kDuplicate;

  const ObjectId src = event.FlowSource();
  const ObjectId dst = event.FlowDest();

  const bool src_new = !HasNode(src);
  const bool dst_new = !HasNode(dst);

  Edge e;
  e.event = event.id;
  e.src = src;
  e.dst = dst;
  e.timestamp = event.timestamp;
  e.action = event.action;
  e.amount = event.amount;
  edges_.emplace(event.id, e);

  Node& sn = EnsureNode(src);
  Node& dn = EnsureNode(dst);
  sn.out_edges.push_back(event.id);
  dn.in_edges.push_back(event.id);

  // Hop assignment: in backtracking we discover `src` from `dst`, so a new
  // source node is one hop farther from the start than its destination.
  if (src_new && !dst_new) {
    sn.hop = dn.hop + 1;
  } else if (dst_new && !src_new) {
    dn.hop = sn.hop + 1;
  } else if (!src_new && !dst_new) {
    // A shortcut edge may shorten the source's distance.
    sn.hop = std::min(sn.hop, dn.hop + 1);
  }
  // Both new (disconnected seed): hops stay 0; the engine only seeds the
  // start node, so this occurs for the first edge touching the start.

  return (src_new || dst_new) ? AddResult::kNewEdgeAndNode
                              : AddResult::kNewEdge;
}

int DepGraph::HopOf(ObjectId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.hop;
}

int DepGraph::StateOf(ObjectId id) const {
  auto it = nodes_.find(id);
  return it == nodes_.end() ? 0 : it->second.state;
}

void DepGraph::SetState(ObjectId id, int state) {
  auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.state = state;
}

void DepGraph::SetHop(ObjectId id, int hop) {
  auto it = nodes_.find(id);
  if (it != nodes_.end()) it->second.hop = hop;
}

void DepGraph::ClearStates() {
  for (auto& [id, node] : nodes_) {
    node.state = (id == start_) ? 1 : 0;
  }
}

int DepGraph::MaxHop() const {
  int m = 0;
  for (const auto& [id, node] : nodes_) {
    (void)id;
    m = std::max(m, node.hop);
  }
  return m;
}

size_t DepGraph::RemoveNodesIf(const std::function<bool(ObjectId)>& pred) {
  std::vector<ObjectId> doomed;
  for (const auto& [id, node] : nodes_) {
    (void)node;
    if (id != start_ && pred(id)) doomed.push_back(id);
  }
  for (ObjectId id : doomed) {
    Node& victim = nodes_.at(id);
    // Collect incident edge ids, then remove them from both endpoints.
    std::vector<EventId> incident = victim.in_edges;
    incident.insert(incident.end(), victim.out_edges.begin(),
                    victim.out_edges.end());
    std::sort(incident.begin(), incident.end());
    incident.erase(std::unique(incident.begin(), incident.end()),
                   incident.end());
    for (EventId eid : incident) {
      auto eit = edges_.find(eid);
      if (eit == edges_.end()) continue;
      const Edge edge = eit->second;
      edges_.erase(eit);
      for (ObjectId endpoint : {edge.src, edge.dst}) {
        if (endpoint == id) continue;
        auto nit = nodes_.find(endpoint);
        if (nit == nodes_.end()) continue;
        auto strip = [eid](std::vector<EventId>& v) {
          v.erase(std::remove(v.begin(), v.end(), eid), v.end());
        };
        strip(nit->second.in_edges);
        strip(nit->second.out_edges);
      }
    }
    nodes_.erase(id);
  }
  return doomed.size();
}

size_t DepGraph::RemoveEdgesIf(
    const std::function<bool(const Edge&)>& pred) {
  std::vector<EventId> doomed;
  for (const auto& [id, edge] : edges_) {
    (void)id;
    if (pred(edge)) doomed.push_back(edge.event);
  }
  for (EventId eid : doomed) {
    auto eit = edges_.find(eid);
    if (eit == edges_.end()) continue;
    const Edge edge = eit->second;
    edges_.erase(eit);
    for (ObjectId endpoint : {edge.src, edge.dst}) {
      auto nit = nodes_.find(endpoint);
      if (nit == nodes_.end()) continue;
      auto strip = [eid](std::vector<EventId>& v) {
        v.erase(std::remove(v.begin(), v.end(), eid), v.end());
      };
      strip(nit->second.in_edges);
      strip(nit->second.out_edges);
    }
  }
  return doomed.size();
}

void DepGraph::ForEachNode(const std::function<void(const Node&)>& fn) const {
  for (const auto& [id, node] : nodes_) {
    (void)id;
    fn(node);
  }
}

void DepGraph::ForEachEdge(const std::function<void(const Edge&)>& fn) const {
  for (const auto& [id, edge] : edges_) {
    (void)id;
    fn(edge);
  }
}

std::vector<ObjectId> DepGraph::NodeIds() const {
  std::vector<ObjectId> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) {
    (void)node;
    out.push_back(id);
  }
  return out;
}

}  // namespace aptrace
