#ifndef APTRACE_GRAPH_PATH_H_
#define APTRACE_GRAPH_PATH_H_

#include <vector>

#include "graph/dep_graph.h"

namespace aptrace {

/// One step of a causal path: the edge (event) taken and the node it
/// leads to.
struct PathStep {
  EventId event = kInvalidEventId;
  ObjectId node = kInvalidObjectId;
};

/// A path through the tracking graph, starting at `origin` and following
/// `steps`. Empty steps with a valid origin = the trivial path.
struct CausalPath {
  ObjectId origin = kInvalidObjectId;
  std::vector<PathStep> steps;

  bool empty() const { return origin == kInvalidObjectId; }
  size_t Hops() const { return steps.size(); }
};

/// Shortest causal chain from the graph's start node to `target`,
/// following the *exploration* direction: for a backward-tracking graph
/// each step moves from a node to one of its in-edge sources ("this is
/// where the data came from"); for a forward-tracking graph to one of its
/// out-edge destinations ("this is where the data went"). Returns an
/// empty path when `target` is unreachable.
CausalPath FindCausalPath(const DepGraph& graph, ObjectId target,
                          bool forward = false);

}  // namespace aptrace

#endif  // APTRACE_GRAPH_PATH_H_
