#ifndef APTRACE_GRAPH_DOT_WRITER_H_
#define APTRACE_GRAPH_DOT_WRITER_H_

#include <ostream>
#include <string>

#include "event/catalog.h"
#include "graph/dep_graph.h"
#include "util/status.h"

namespace aptrace {

/// Rendering options for DOT export (the BDL `output = "path.dot"` clause
/// produces this format, matching the paper's `./result.dot`).
struct DotOptions {
  /// Event id of the anomaly alert; its edge is drawn red and bold, like
  /// the red bold arrow in the paper's Figure 2.
  EventId alert_event = kInvalidEventId;

  /// Include edge labels (action type + timestamp).
  bool edge_labels = true;

  /// Graph name in the DOT header.
  std::string graph_name = "aptrace";
};

/// Writes `graph` as Graphviz DOT. Node shapes follow provenance-graph
/// convention: processes are ellipses, files are boxes, sockets are
/// diamonds.
void WriteDot(const DepGraph& graph, const ObjectCatalog& catalog,
              std::ostream& os, const DotOptions& options = {});

/// Writes DOT to a file; fails if the file cannot be opened.
Status WriteDotFile(const DepGraph& graph, const ObjectCatalog& catalog,
                    const std::string& path, const DotOptions& options = {});

}  // namespace aptrace

#endif  // APTRACE_GRAPH_DOT_WRITER_H_
