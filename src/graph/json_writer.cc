#include "graph/json_writer.h"

#include <algorithm>
#include <fstream>
#include <vector>

#include "util/string_util.h"

namespace aptrace {

void WriteGraphJson(const DepGraph& graph, const ObjectCatalog& catalog,
                    std::ostream& os) {
  os << "{\n  \"start\": " << graph.start() << ",\n  \"nodes\": [\n";
  std::vector<ObjectId> nodes = graph.NodeIds();
  std::sort(nodes.begin(), nodes.end());
  for (size_t i = 0; i < nodes.size(); ++i) {
    const DepGraph::Node& n = graph.GetNode(nodes[i]);
    const SystemObject& obj = catalog.Get(nodes[i]);
    os << "    {\"id\": " << nodes[i] << ", \"type\": \""
       << ObjectTypeName(obj.type()) << "\", \"label\": \""
       << JsonEscape(obj.Label()) << "\", \"host\": \""
       << JsonEscape(catalog.HostName(obj.host())) << "\", \"hop\": "
       << n.hop << ", \"state\": " << n.state << "}"
       << (i + 1 < nodes.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"edges\": [\n";
  std::vector<DepGraph::Edge> edges;
  graph.ForEachEdge([&](const DepGraph::Edge& e) { edges.push_back(e); });
  std::sort(edges.begin(), edges.end(),
            [](const DepGraph::Edge& a, const DepGraph::Edge& b) {
              return a.event < b.event;
            });
  for (size_t i = 0; i < edges.size(); ++i) {
    const DepGraph::Edge& e = edges[i];
    os << "    {\"event\": " << e.event << ", \"src\": " << e.src
       << ", \"dst\": " << e.dst << ", \"time\": " << e.timestamp
       << ", \"action\": \"" << ActionTypeName(e.action)
       << "\", \"amount\": " << e.amount << "}"
       << (i + 1 < edges.size() ? "," : "") << "\n";
  }
  os << "  ]\n}\n";
}

Status WriteGraphJsonFile(const DepGraph& graph, const ObjectCatalog& catalog,
                          const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  WriteGraphJson(graph, catalog, f);
  if (!f.good()) return Status::Internal("write failed: " + path);
  return Status::Ok();
}

}  // namespace aptrace
