#include "graph/dot_writer.h"

#include <algorithm>
#include <fstream>
#include <vector>

#include "util/string_util.h"

namespace aptrace {

namespace {

std::string DotEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

const char* ShapeFor(ObjectType t) {
  switch (t) {
    case ObjectType::kProcess:
      return "ellipse";
    case ObjectType::kFile:
      return "box";
    case ObjectType::kIp:
      return "diamond";
  }
  return "ellipse";
}

}  // namespace

void WriteDot(const DepGraph& graph, const ObjectCatalog& catalog,
              std::ostream& os, const DotOptions& options) {
  os << "digraph \"" << DotEscape(options.graph_name) << "\" {\n";
  os << "  rankdir=LR;\n";
  os << "  node [fontsize=10];\n";

  // Deterministic output: sort nodes and edges by id.
  std::vector<ObjectId> nodes = graph.NodeIds();
  std::sort(nodes.begin(), nodes.end());
  for (ObjectId id : nodes) {
    const SystemObject& obj = catalog.Get(id);
    os << "  n" << id << " [label=\"" << DotEscape(obj.Label()) << "\\n@"
       << DotEscape(catalog.HostName(obj.host())) << "\" shape="
       << ShapeFor(obj.type());
    if (id == graph.start()) os << " style=filled fillcolor=lightyellow";
    os << "];\n";
  }

  std::vector<DepGraph::Edge> edges;
  graph.ForEachEdge([&](const DepGraph::Edge& e) { edges.push_back(e); });
  std::sort(edges.begin(), edges.end(),
            [](const DepGraph::Edge& a, const DepGraph::Edge& b) {
              return a.event < b.event;
            });
  for (const auto& e : edges) {
    os << "  n" << e.src << " -> n" << e.dst;
    os << " [";
    if (options.edge_labels) {
      os << "label=\"" << ActionTypeName(e.action) << "\\n"
         << FormatBdlTime(e.timestamp) << "\" ";
    }
    if (e.event == options.alert_event) {
      os << "color=red penwidth=2.5";
    } else {
      os << "color=gray40";
    }
    os << "];\n";
  }
  os << "}\n";
}

Status WriteDotFile(const DepGraph& graph, const ObjectCatalog& catalog,
                    const std::string& path, const DotOptions& options) {
  std::ofstream f(path);
  if (!f) {
    return Status::InvalidArgument("cannot open DOT output file: " + path);
  }
  WriteDot(graph, catalog, f, options);
  if (!f.good()) {
    return Status::Internal("write failed for DOT output file: " + path);
  }
  return Status::Ok();
}

}  // namespace aptrace
