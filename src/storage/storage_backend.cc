#include "storage/storage_backend.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/names.h"
#include "util/env.h"

namespace aptrace {

const char* StorageBackendName(StorageBackendKind kind) {
  switch (kind) {
    case StorageBackendKind::kRow:
      return "row";
    case StorageBackendKind::kColumnar:
      return "columnar";
  }
  return "unknown";
}

std::optional<StorageBackendKind> ParseStorageBackendKind(
    std::string_view name) {
  if (name == "row") return StorageBackendKind::kRow;
  if (name == "columnar") return StorageBackendKind::kColumnar;
  return std::nullopt;
}

StorageBackendKind DefaultStorageBackendKind() {
  const auto value = GetValidatedEnv(
      kEnvBackend,
      [](const std::string& v) {
        return ParseStorageBackendKind(v).has_value();
      },
      "'row' or 'columnar'");
  if (value.has_value()) return *ParseStorageBackendKind(*value);
  return StorageBackendKind::kRow;
}

size_t DefaultShardCount() {
  const auto value = GetValidatedEnv(
      kEnvShards,
      [](const std::string& v) {
        if (v.empty() || v.size() > 2) return false;
        for (const char c : v) {
          if (c < '0' || c > '9') return false;
        }
        const unsigned long n = std::strtoul(v.c_str(), nullptr, 10);
        return n >= 1 && n <= kMaxStoreShards;
      },
      "an integer shard count in [1, 64]");
  if (value.has_value()) return std::strtoul(value->c_str(), nullptr, 10);
  return 1;
}

/// Aggregate counters (all backends) plus the per-backend query counter:
/// the Prometheus exporter emits one `# TYPE` line per metric name, so the
/// backend dimension is encoded as a name suffix rather than a label.
struct StorageBackend::BackendMetrics {
  obs::Counter* queries;
  obs::Counter* events_scanned;
  obs::Counter* rows_filtered;
  obs::Counter* segments_pruned;
  obs::Counter* backend_queries;
};

const StorageBackend::BackendMetrics& StorageBackend::Bm() const {
  static const BackendMetrics kRowMetrics = {
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreQueries),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreEventsScanned),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreRowsFiltered),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreSegmentsPruned),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreRowQueries),
  };
  static const BackendMetrics kColumnarMetrics = {
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreQueries),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreEventsScanned),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreRowsFiltered),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreSegmentsPruned),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreColumnarQueries),
  };
  return kind_ == StorageBackendKind::kColumnar ? kColumnarMetrics
                                                : kRowMetrics;
}

StorageBackend::StorageBackend(StorageBackendKind kind, CostModel cost_model)
    : kind_(kind), cost_model_(cost_model) {}

void StorageBackend::NoteAppend(const Event& event) {
  min_time_ = std::min(min_time_, event.timestamp);
  max_time_ = std::max(max_time_, event.timestamp);
}

void StorageBackend::MarkSealed(bool empty) {
  if (empty) {
    min_time_ = 0;
    max_time_ = 0;
  }
  sealed_ = true;
}

StoreStats StorageBackend::stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

void StorageBackend::ResetStats() {
  MutexLock lock(&stats_mu_);
  stats_ = StoreStats{};
}

size_t StorageBackend::ReplayScan(const RangeScanBatch& batch, Clock* clock,
                                  const std::function<void(const Event&)>& fn,
                                  const RowFilter& filter,
                                  DurationMicros* cost_out,
                                  ScanProbeStats* probe_out) const {
  assert(sealed_);
  size_t rows = 0;
  size_t filtered = 0;
  for (const EventId id : batch.rows) {
    const Event e = Get(id);
    if (filter && !filter(e)) {
      filtered++;
      continue;
    }
    rows++;
    if (fn) fn(e);
  }
  const DurationMicros cost = cost_model_.QueryCost(
      rows, filtered, batch.partitions_probed, batch.partitions_seeked);
  if (clock != nullptr) clock->AdvanceMicros(cost);
  if (cost_out != nullptr) *cost_out = cost;
  if (probe_out != nullptr) {
    probe_out->rows_delivered = rows;
    probe_out->rows_filtered = filtered;
    probe_out->partitions_probed = batch.partitions_probed;
    probe_out->partitions_seeked = batch.partitions_seeked;
    probe_out->segments_pruned = batch.segments_pruned;
  }
  {
    MutexLock lock(&stats_mu_);
    stats_.queries++;
    stats_.rows_matched += rows;
    stats_.rows_filtered += filtered;
    stats_.partitions_probed += batch.partitions_probed;
    stats_.partitions_seeked += batch.partitions_seeked;
    stats_.segments_pruned += batch.segments_pruned;
    stats_.simulated_cost += cost;
  }
  ChargeQueryMetrics(rows + filtered, filtered, batch.segments_pruned);
  return rows;
}

void StorageBackend::ChargeQueryMetrics(uint64_t rows_scanned,
                                        uint64_t rows_filtered,
                                        uint64_t segments_pruned) const {
  const BackendMetrics& m = Bm();
  m.queries->Add();
  m.backend_queries->Add();
  m.events_scanned->Add(rows_scanned);
  m.rows_filtered->Add(rows_filtered);
  m.segments_pruned->Add(segments_pruned);
}

size_t StorageBackend::CountDest(ObjectId dest, TimeMicros begin,
                                 TimeMicros end, Clock* clock) const {
  assert(sealed_);
  uint64_t probed = 0;
  uint64_t seeked = 0;
  uint64_t pruned = 0;
  size_t rows = 0;
  if (begin < end) {
    rows = CountDestRows(dest, begin, end, &probed, &seeked, &pruned);
  }
  // COUNT over the index: no per-row fetch cost.
  const DurationMicros cost = cost_model_.QueryCost(0, 0, probed, seeked);
  if (clock != nullptr) clock->AdvanceMicros(cost);
  {
    MutexLock lock(&stats_mu_);
    stats_.queries++;
    stats_.partitions_probed += probed;
    stats_.partitions_seeked += seeked;
    stats_.segments_pruned += pruned;
    stats_.simulated_cost += cost;
  }
  // Index-only COUNT: no event rows touched.
  ChargeQueryMetrics(0, 0, pruned);
  return rows;
}

}  // namespace aptrace
