#ifndef APTRACE_STORAGE_COLUMNAR_BACKEND_H_
#define APTRACE_STORAGE_COLUMNAR_BACKEND_H_

#include <array>
#include <cstdint>
#include <vector>

#include "storage/storage_backend.h"

namespace aptrace {

/// Columnar segment layout with zone-map pruning.
///
/// Seal() globally sorts all staged events by (timestamp, id) and cuts
/// them into fixed-row-count *segments*; within a segment each Event field
/// lives in its own contiguous array (timestamps, subject/object ids,
/// action/direction bytes, hosts, amounts). Because segments are cut from
/// the globally time-sorted order, concatenating matching rows segment by
/// segment already yields the ascending (timestamp, id) order the
/// StorageBackend contract requires — no merge is needed for sealed data.
///
/// Every segment carries a ZoneMap: min/max timestamp, min/max flow
/// source / flow destination object id, a 64-bit host bitset, an 8-bit
/// action-type bitset, and fixed-width occupancy fingerprints (1024-bit
/// Bloom-style bitsets over flow-source and flow-destination ids). A
/// CollectSrc/CollectDest consults the zone map first and skips the
/// segment entirely — counted in RangeScanBatch::segments_pruned, *not*
/// probed — when the key or time range cannot match. Only surviving
/// segments are probed (binary search on the timestamp column + column
/// scan), so the cost model charges strictly less than the row store's
/// probe-every-partition walk whenever pruning fires.
///
/// Post-seal streaming appends go to a row-oriented *tail* (the classic
/// delta store): an append-ordered vector plus a (timestamp, id)-sorted
/// view. Scans merge tail matches into the segment output by
/// (timestamp, id); the tail counts as one probed unit when it overlaps
/// the query range. The thread-safety contract is inherited unchanged
/// from StorageBackend (reads fully concurrent after Seal; appends need
/// external synchronization).
///
/// Tiered lifecycle (docs/durability.md): SealTail() folds the hot tail
/// into column segments by *splice-and-recut* — only segments whose time
/// range overlaps the tail are re-cut, everything earlier is untouched —
/// which preserves the global (timestamp, id) sort every scan path and
/// FirstSegmentFor's binary search depend on. Repeated seals leave
/// partial trailing segments; Compact() re-cuts the live region back to
/// the optimal segment count. EvictBefore() is logical retention: it
/// advances the `first_live_` watermark so scans skip archived segments
/// entirely, while point lookups by id (Get) still resolve.
class ColumnarSegmentBackend final : public StorageBackend {
 public:
  /// Fingerprint width in 64-bit words (1024 bits total).
  static constexpr size_t kFingerprintWords = 16;

  ColumnarSegmentBackend(CostModel cost_model, size_t segment_rows);

  const BackendCapabilities& capabilities() const override;

  EventId Append(Event event) override;
  void Seal() override;
  size_t NumEvents() const override;
  Event Get(EventId id) const override;

  RangeScanBatch CollectDest(ObjectId dest, TimeMicros begin,
                             TimeMicros end) const override;
  RangeScanBatch CollectSrc(ObjectId src, TimeMicros begin,
                            TimeMicros end) const override;
  RangeScanBatch CollectRange(TimeMicros begin, TimeMicros end) const override;

  bool HasIncomingWrite(ObjectId object, TimeMicros begin,
                        TimeMicros end) const override;
  std::vector<ObjectId> FlowDestsOf(ObjectId src, TimeMicros begin,
                                    TimeMicros end) const override;

  size_t SealTail(WorkerPool* pool) override;
  size_t Compact(WorkerPool* pool) override;
  size_t EvictBefore(TimeMicros horizon) override;
  size_t TailRows() const override { return tail_.size(); }

  size_t NumSegments() const { return segments_.size(); }
  size_t segment_rows() const { return segment_rows_; }
  /// Segments before this index are archived (excluded from scans).
  size_t FirstLiveSegment() const { return first_live_; }
  size_t NumLiveSegments() const { return segments_.size() - first_live_; }

 protected:
  size_t CountDestRows(ObjectId dest, TimeMicros begin, TimeMicros end,
                       uint64_t* probed, uint64_t* seeked,
                       uint64_t* pruned) const override;

 private:
  using Fingerprint = std::array<uint64_t, kFingerprintWords>;

  struct ZoneMap {
    TimeMicros ts_min = 0;
    TimeMicros ts_max = 0;
    ObjectId src_min = 0;
    ObjectId src_max = 0;
    ObjectId dest_min = 0;
    ObjectId dest_max = 0;
    uint64_t host_bits = 0;  // bit (host % 64)
    uint8_t action_bits = 0;  // bit per ActionType
    Fingerprint src_bits{};   // bit (flow-source id % 1024)
    Fingerprint dest_bits{};  // bit (flow-dest id % 1024)
  };

  /// One column segment: `rows()` events, field-per-array.
  struct Segment {
    std::vector<EventId> ids;
    std::vector<TimeMicros> ts;
    std::vector<ObjectId> subject;
    std::vector<ObjectId> object;
    std::vector<uint64_t> amount;
    std::vector<uint8_t> action;
    std::vector<uint8_t> direction;
    std::vector<HostId> host;
    ZoneMap zone;

    size_t rows() const { return ids.size(); }
  };

  /// Locator for a sealed row: which segment, which offset.
  struct RowRef {
    uint32_t segment = 0;
    uint32_t offset = 0;
  };

  static bool FingerprintMayContain(const Fingerprint& bits, ObjectId id);
  static void FingerprintAdd(Fingerprint& bits, ObjectId id);

  ObjectId FlowKeyAt(const Segment& s, size_t row, bool by_src) const;
  Event MaterializeRow(const Segment& s, size_t row) const;

  /// Zone-map admission test for a keyed scan. True when the segment may
  /// contain rows whose flow source (by_src) / destination matches `key`.
  bool ZoneMayMatch(const ZoneMap& z, ObjectId key, bool by_src) const;

  /// Index of the first *live* segment whose ts_max >= begin (segments
  /// are in global time order, so both ts_min and ts_max are
  /// non-decreasing). Never returns an archived segment: the search
  /// starts at first_live_, which is how eviction drops rows from every
  /// scan path at once.
  size_t FirstSegmentFor(TimeMicros begin) const;

  /// Columnarizes rows[base, base+n) — already (timestamp, id)-sorted —
  /// into *out and points row_refs_ at the new locations. Writes only
  /// *out and distinct row_refs_ elements, so calls over disjoint ranges
  /// are safe to run concurrently (SealTail/Compact fan builds out to a
  /// WorkerPool).
  void BuildSegment(const std::vector<Event>& rows, size_t base, size_t n,
                    uint32_t seg_index, Segment* out);

  /// Replaces segments_[keep_segments, end) with a fresh fixed-size cut
  /// of `rows` (sorted), parallelizing segment builds on `pool` when
  /// non-null.
  void RecutInto(std::vector<Event> rows, size_t keep_segments,
                 WorkerPool* pool);

  /// [first, last) index range of tail_sorted_ with timestamps in
  /// [begin, end).
  std::pair<size_t, size_t> TailBounds(TimeMicros begin, TimeMicros end) const;

  /// Shared keyed-collection walk behind CollectDest/CollectSrc.
  RangeScanBatch CollectImpl(bool by_src, ObjectId key, TimeMicros begin,
                             TimeMicros end) const;

  size_t segment_rows_;

  /// Build phase: whole rows staged until Seal() columnarizes them.
  std::vector<Event> staging_;

  /// Sealed data.
  std::vector<Segment> segments_;
  std::vector<RowRef> row_refs_;  // indexed by EventId, sealed rows only
  size_t sealed_rows_ = 0;
  /// Retention watermark: segments_[0, first_live_) are archived —
  /// excluded from scans, still resolvable by Get().
  size_t first_live_ = 0;

  /// Post-seal streaming tail (delta store): append order = id order.
  std::vector<Event> tail_;
  /// Indexes into tail_, kept sorted by (timestamp, id).
  std::vector<uint32_t> tail_sorted_;
};

}  // namespace aptrace

#endif  // APTRACE_STORAGE_COLUMNAR_BACKEND_H_
