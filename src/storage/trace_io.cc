#include "storage/trace_io.h"

#include <fstream>
#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace aptrace {

namespace {

constexpr char kMagic[] = "aptrace-trace v1";

Status ParseError(size_t line_no, const std::string& why) {
  return Status::InvalidArgument("trace parse error at line " +
                                 std::to_string(line_no) + ": " + why);
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  size_t i = 0;
  bool negative = false;
  if (s[0] == '-') {
    negative = true;
    i = 1;
    if (s.size() == 1) return false;
  }
  int64_t v = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    v = v * 10 + (s[i] - '0');
  }
  *out = negative ? -v : v;
  return true;
}

bool ParseUint(const std::string& s, uint64_t* out) {
  int64_t v = 0;
  if (!ParseInt(s, &v) || v < 0) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

}  // namespace

Status SaveTrace(const EventStore& store, std::ostream& os) {
  if (!store.sealed()) {
    return Status::FailedPrecondition("store must be sealed before saving");
  }
  const ObjectCatalog& catalog = store.catalog();
  os << kMagic << "\n";
  for (size_t h = 0; h < catalog.NumHosts(); ++h) {
    os << "H\t" << h << "\t" << catalog.HostName(static_cast<HostId>(h))
       << "\n";
  }
  for (ObjectId id = 0; id < catalog.size(); ++id) {
    const SystemObject& obj = catalog.Get(id);
    switch (obj.type()) {
      case ObjectType::kProcess:
        os << "P\t" << id << "\t" << obj.host() << "\t" << obj.process().pid
           << "\t" << obj.process().start_time << "\t"
           << obj.process().exename << "\n";
        break;
      case ObjectType::kFile:
        os << "F\t" << id << "\t" << obj.host() << "\t"
           << obj.file().creation_time << "\t"
           << obj.file().last_modification_time << "\t"
           << obj.file().last_access_time << "\t" << obj.file().path << "\n";
        break;
      case ObjectType::kIp:
        os << "I\t" << id << "\t" << obj.host() << "\t" << obj.ip().dst_port
           << "\t" << obj.ip().start_time << "\t" << obj.ip().src_ip << "\t"
           << obj.ip().dst_ip << "\n";
        break;
    }
  }
  for (EventId id = 0; id < store.NumEvents(); ++id) {
    const Event& e = store.Get(id);
    os << "E\t" << e.subject << "\t" << e.object << "\t" << e.timestamp
       << "\t" << e.amount << "\t" << static_cast<int>(e.action) << "\t"
       << static_cast<int>(e.direction) << "\t" << e.host << "\n";
  }
  if (!os.good()) return Status::Internal("trace write failed");
  return Status::Ok();
}

Status SaveTraceFile(const EventStore& store, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  return SaveTrace(store, f);
}

Result<std::unique_ptr<EventStore>> LoadTrace(std::istream& is,
                                              EventStoreOptions options) {
  auto store = std::make_unique<EventStore>(std::move(options));
  ObjectCatalog& catalog = store->catalog();

  std::string line;
  size_t line_no = 0;
  if (!std::getline(is, line) || Trim(line) != kMagic) {
    return ParseError(1, "missing or wrong header (want '" +
                             std::string(kMagic) + "')");
  }
  line_no = 1;

  while (std::getline(is, line)) {
    line_no++;
    if (line.empty()) continue;
    const std::vector<std::string> f = Split(line, '\t');
    const std::string& kind = f[0];

    if (kind == "H") {
      if (f.size() != 3) return ParseError(line_no, "host needs 3 fields");
      uint64_t id = 0;
      if (!ParseUint(f[1], &id)) return ParseError(line_no, "bad host id");
      const HostId got = catalog.InternHost(f[2]);
      if (got != id) {
        return ParseError(line_no, "host ids must be dense and in order");
      }
    } else if (kind == "P") {
      if (f.size() != 6) return ParseError(line_no, "proc needs 6 fields");
      uint64_t id = 0, host = 0;
      int64_t pid = 0, start = 0;
      if (!ParseUint(f[1], &id) || !ParseUint(f[2], &host) ||
          !ParseInt(f[3], &pid) || !ParseInt(f[4], &start)) {
        return ParseError(line_no, "bad proc fields");
      }
      const ObjectId got = catalog.AddProcess(
          static_cast<HostId>(host),
          {.exename = f[5], .pid = pid, .start_time = start});
      if (got != id) {
        return ParseError(line_no, "object ids must be dense and in order");
      }
    } else if (kind == "F") {
      if (f.size() != 7) return ParseError(line_no, "file needs 7 fields");
      uint64_t id = 0, host = 0;
      int64_t created = 0, modified = 0, accessed = 0;
      if (!ParseUint(f[1], &id) || !ParseUint(f[2], &host) ||
          !ParseInt(f[3], &created) || !ParseInt(f[4], &modified) ||
          !ParseInt(f[5], &accessed)) {
        return ParseError(line_no, "bad file fields");
      }
      const ObjectId got = catalog.AddFile(
          static_cast<HostId>(host), {.path = f[6],
                                      .creation_time = created,
                                      .last_modification_time = modified,
                                      .last_access_time = accessed});
      if (got != id) {
        return ParseError(line_no, "object ids must be dense and in order");
      }
    } else if (kind == "I") {
      if (f.size() != 7) return ParseError(line_no, "ip needs 7 fields");
      uint64_t id = 0, host = 0;
      int64_t port = 0, start = 0;
      if (!ParseUint(f[1], &id) || !ParseUint(f[2], &host) ||
          !ParseInt(f[3], &port) || !ParseInt(f[4], &start)) {
        return ParseError(line_no, "bad ip fields");
      }
      const ObjectId got = catalog.AddIp(
          static_cast<HostId>(host),
          {.src_ip = f[5],
           .dst_ip = f[6],
           .dst_port = static_cast<int32_t>(port),
           .start_time = start});
      if (got != id) {
        return ParseError(line_no, "object ids must be dense and in order");
      }
    } else if (kind == "E") {
      if (f.size() != 8) return ParseError(line_no, "event needs 8 fields");
      uint64_t subject = 0, object = 0, amount = 0, host = 0;
      int64_t ts = 0, action = 0, direction = 0;
      if (!ParseUint(f[1], &subject) || !ParseUint(f[2], &object) ||
          !ParseInt(f[3], &ts) || !ParseUint(f[4], &amount) ||
          !ParseInt(f[5], &action) || !ParseInt(f[6], &direction) ||
          !ParseUint(f[7], &host)) {
        return ParseError(line_no, "bad event fields");
      }
      if (subject >= catalog.size() || object >= catalog.size()) {
        return ParseError(line_no, "event references unknown object");
      }
      if (action < 0 || action > static_cast<int>(ActionType::kDelete)) {
        return ParseError(line_no, "bad action code");
      }
      if (direction < 0 || direction > 1) {
        return ParseError(line_no, "bad direction code");
      }
      Event e;
      e.subject = subject;
      e.object = object;
      e.timestamp = ts;
      e.amount = amount;
      e.action = static_cast<ActionType>(action);
      e.direction = static_cast<FlowDirection>(direction);
      e.host = static_cast<HostId>(host);
      store->Append(e);
    } else {
      return ParseError(line_no, "unknown record kind '" + kind + "'");
    }
  }
  store->Seal();
  return store;
}

Result<std::unique_ptr<EventStore>> LoadTraceFile(const std::string& path,
                                                  EventStoreOptions options) {
  std::ifstream f(path);
  if (!f) return Status::InvalidArgument("cannot open for read: " + path);
  return LoadTrace(f, std::move(options));
}

}  // namespace aptrace
