#include "storage/trace_io.h"

#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace aptrace {

namespace {

constexpr char kMagicV1[] = "aptrace-trace v1";
constexpr char kMagicV2[] = "aptrace-trace v2";

/// Guard against absurd length prefixes in corrupt v2 files (a name or
/// path longer than this is certainly garbage, not data).
constexpr uint64_t kMaxStringLen = 1 << 20;

Status ParseError(size_t line_no, std::string_view tag,
                  const std::string& why) {
  return Status::InvalidArgument("trace parse error at line " +
                                 std::to_string(line_no) + " [" +
                                 std::string(tag) + "]: " + why);
}

bool ParseInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  size_t i = 0;
  bool negative = false;
  if (s[0] == '-') {
    negative = true;
    i = 1;
    if (s.size() == 1) return false;
  }
  int64_t v = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    v = v * 10 + (s[i] - '0');
  }
  *out = negative ? -v : v;
  return true;
}

bool ParseUint(const std::string& s, uint64_t* out) {
  int64_t v = 0;
  if (!ParseInt(s, &v) || v < 0) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

// --- v2 binary primitives (little-endian, fixed width) ---

void PutU8(std::ostream& os, uint8_t v) {
  os.put(static_cast<char>(v));
}

void PutU16(std::ostream& os, uint16_t v) {
  char b[2] = {static_cast<char>(v & 0xff), static_cast<char>(v >> 8)};
  os.write(b, 2);
}

void PutU32(std::ostream& os, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(b, 4);
}

void PutU64(std::ostream& os, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  os.write(b, 8);
}

void PutI64(std::ostream& os, int64_t v) {
  PutU64(os, static_cast<uint64_t>(v));
}

void PutString(std::ostream& os, const std::string& s) {
  PutU32(os, static_cast<uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

/// Tracks the byte offset so truncation/corruption errors can say where.
class BinaryReader {
 public:
  explicit BinaryReader(std::istream& is, uint64_t start_offset)
      : is_(is), offset_(start_offset) {}

  uint64_t offset() const { return offset_; }

  bool ReadBytes(void* out, size_t n) {
    is_.read(static_cast<char*>(out), static_cast<std::streamsize>(n));
    if (is_.gcount() != static_cast<std::streamsize>(n)) return false;
    offset_ += n;
    return true;
  }

  bool ReadU8(uint8_t* out) { return ReadBytes(out, 1); }

  bool ReadU16(uint16_t* out) {
    uint8_t b[2];
    if (!ReadBytes(b, 2)) return false;
    *out = static_cast<uint16_t>(b[0] | (b[1] << 8));
    return true;
  }

  bool ReadU32(uint32_t* out) {
    uint8_t b[4];
    if (!ReadBytes(b, 4)) return false;
    *out = 0;
    for (int i = 3; i >= 0; --i) *out = (*out << 8) | b[i];
    return true;
  }

  bool ReadU64(uint64_t* out) {
    uint8_t b[8];
    if (!ReadBytes(b, 8)) return false;
    *out = 0;
    for (int i = 7; i >= 0; --i) *out = (*out << 8) | b[i];
    return true;
  }

  bool ReadI64(int64_t* out) {
    uint64_t v = 0;
    if (!ReadU64(&v)) return false;
    *out = static_cast<int64_t>(v);
    return true;
  }

  bool ReadString(std::string* out) {
    uint32_t len = 0;
    if (!ReadU32(&len)) return false;
    if (len > kMaxStringLen) return false;
    out->resize(len);
    return len == 0 || ReadBytes(out->data(), len);
  }

  /// True when the stream has no bytes left (EOF cleanly reached).
  bool AtEnd() {
    return is_.peek() == std::char_traits<char>::eof();
  }

 private:
  std::istream& is_;
  uint64_t offset_;
};

Status BinaryError(const BinaryReader& r, std::string_view section,
                   const std::string& why) {
  return Status::InvalidArgument(
      "trace parse error at byte " + std::to_string(r.offset()) + " [" +
      std::string(section) + "]: " + why);
}

Status SaveTraceV1(const EventStore& store, std::ostream& os) {
  const ObjectCatalog& catalog = store.catalog();
  os << kMagicV1 << "\n";
  for (size_t h = 0; h < catalog.NumHosts(); ++h) {
    os << "H\t" << h << "\t" << catalog.HostName(static_cast<HostId>(h))
       << "\n";
  }
  for (ObjectId id = 0; id < catalog.size(); ++id) {
    const SystemObject& obj = catalog.Get(id);
    switch (obj.type()) {
      case ObjectType::kProcess:
        os << "P\t" << id << "\t" << obj.host() << "\t" << obj.process().pid
           << "\t" << obj.process().start_time << "\t"
           << obj.process().exename << "\n";
        break;
      case ObjectType::kFile:
        os << "F\t" << id << "\t" << obj.host() << "\t"
           << obj.file().creation_time << "\t"
           << obj.file().last_modification_time << "\t"
           << obj.file().last_access_time << "\t" << obj.file().path << "\n";
        break;
      case ObjectType::kIp:
        os << "I\t" << id << "\t" << obj.host() << "\t" << obj.ip().dst_port
           << "\t" << obj.ip().start_time << "\t" << obj.ip().src_ip << "\t"
           << obj.ip().dst_ip << "\n";
        break;
    }
  }
  for (EventId id = 0; id < store.NumEvents(); ++id) {
    const Event e = store.Get(id);
    os << "E\t" << e.subject << "\t" << e.object << "\t" << e.timestamp
       << "\t" << e.amount << "\t" << static_cast<int>(e.action) << "\t"
       << static_cast<int>(e.direction) << "\t" << e.host << "\n";
  }
  if (!os.good()) return Status::Internal("trace write failed");
  return Status::Ok();
}

Status SaveTraceV2(const EventStore& store, std::ostream& os) {
  const ObjectCatalog& catalog = store.catalog();
  os << kMagicV2 << "\n";

  PutU32(os, static_cast<uint32_t>(catalog.NumHosts()));
  for (size_t h = 0; h < catalog.NumHosts(); ++h) {
    PutString(os, catalog.HostName(static_cast<HostId>(h)));
  }

  PutU64(os, catalog.size());
  for (ObjectId id = 0; id < catalog.size(); ++id) {
    const SystemObject& obj = catalog.Get(id);
    PutU8(os, static_cast<uint8_t>(obj.type()));
    PutU16(os, obj.host());
    switch (obj.type()) {
      case ObjectType::kProcess:
        PutI64(os, obj.process().pid);
        PutI64(os, obj.process().start_time);
        PutString(os, obj.process().exename);
        break;
      case ObjectType::kFile:
        PutI64(os, obj.file().creation_time);
        PutI64(os, obj.file().last_modification_time);
        PutI64(os, obj.file().last_access_time);
        PutString(os, obj.file().path);
        break;
      case ObjectType::kIp:
        PutI64(os, obj.ip().dst_port);
        PutI64(os, obj.ip().start_time);
        PutString(os, obj.ip().src_ip);
        PutString(os, obj.ip().dst_ip);
        break;
    }
  }

  // Event block: columnar, one contiguous array per field (the order
  // matches the columnar backend's segment columns).
  const size_t n = store.NumEvents();
  PutU64(os, n);
  for (EventId id = 0; id < n; ++id) PutI64(os, store.Get(id).timestamp);
  for (EventId id = 0; id < n; ++id) PutU64(os, store.Get(id).subject);
  for (EventId id = 0; id < n; ++id) PutU64(os, store.Get(id).object);
  for (EventId id = 0; id < n; ++id) PutU64(os, store.Get(id).amount);
  for (EventId id = 0; id < n; ++id) {
    PutU8(os, static_cast<uint8_t>(store.Get(id).action));
  }
  for (EventId id = 0; id < n; ++id) {
    PutU8(os, static_cast<uint8_t>(store.Get(id).direction));
  }
  for (EventId id = 0; id < n; ++id) PutU16(os, store.Get(id).host);

  if (!os.good()) return Status::Internal("trace write failed");
  return Status::Ok();
}

Result<std::unique_ptr<EventStore>> LoadTraceV1(std::istream& is,
                                                EventStoreOptions options) {
  auto store = std::make_unique<EventStore>(std::move(options));
  ObjectCatalog& catalog = store->catalog();

  std::string line;
  size_t line_no = 1;
  while (std::getline(is, line)) {
    line_no++;
    if (line.empty()) continue;
    const std::vector<std::string> f = Split(line, '\t');
    const std::string& kind = f[0];

    if (kind == "H") {
      if (f.size() != 3) {
        return ParseError(line_no, "H", "host needs 3 fields");
      }
      uint64_t id = 0;
      if (!ParseUint(f[1], &id)) {
        return ParseError(line_no, "H", "bad host id");
      }
      const HostId got = catalog.InternHost(f[2]);
      if (got != id) {
        return ParseError(line_no, "H", "host ids must be dense and in order");
      }
    } else if (kind == "P") {
      if (f.size() != 6) {
        return ParseError(line_no, "P", "proc needs 6 fields");
      }
      uint64_t id = 0, host = 0;
      int64_t pid = 0, start = 0;
      if (!ParseUint(f[1], &id) || !ParseUint(f[2], &host) ||
          !ParseInt(f[3], &pid) || !ParseInt(f[4], &start)) {
        return ParseError(line_no, "P", "bad proc fields");
      }
      const ObjectId got = catalog.AddProcess(
          static_cast<HostId>(host),
          {.exename = f[5], .pid = pid, .start_time = start});
      if (got != id) {
        return ParseError(line_no, "P",
                          "object ids must be dense and in order");
      }
    } else if (kind == "F") {
      if (f.size() != 7) {
        return ParseError(line_no, "F", "file needs 7 fields");
      }
      uint64_t id = 0, host = 0;
      int64_t created = 0, modified = 0, accessed = 0;
      if (!ParseUint(f[1], &id) || !ParseUint(f[2], &host) ||
          !ParseInt(f[3], &created) || !ParseInt(f[4], &modified) ||
          !ParseInt(f[5], &accessed)) {
        return ParseError(line_no, "F", "bad file fields");
      }
      const ObjectId got = catalog.AddFile(
          static_cast<HostId>(host), {.path = f[6],
                                      .creation_time = created,
                                      .last_modification_time = modified,
                                      .last_access_time = accessed});
      if (got != id) {
        return ParseError(line_no, "F",
                          "object ids must be dense and in order");
      }
    } else if (kind == "I") {
      if (f.size() != 7) {
        return ParseError(line_no, "I", "ip needs 7 fields");
      }
      uint64_t id = 0, host = 0;
      int64_t port = 0, start = 0;
      if (!ParseUint(f[1], &id) || !ParseUint(f[2], &host) ||
          !ParseInt(f[3], &port) || !ParseInt(f[4], &start)) {
        return ParseError(line_no, "I", "bad ip fields");
      }
      const ObjectId got = catalog.AddIp(
          static_cast<HostId>(host),
          {.src_ip = f[5],
           .dst_ip = f[6],
           .dst_port = static_cast<int32_t>(port),
           .start_time = start});
      if (got != id) {
        return ParseError(line_no, "I",
                          "object ids must be dense and in order");
      }
    } else if (kind == "E") {
      if (f.size() != 8) {
        return ParseError(line_no, "E", "event needs 8 fields");
      }
      uint64_t subject = 0, object = 0, amount = 0, host = 0;
      int64_t ts = 0, action = 0, direction = 0;
      if (!ParseUint(f[1], &subject) || !ParseUint(f[2], &object) ||
          !ParseInt(f[3], &ts) || !ParseUint(f[4], &amount) ||
          !ParseInt(f[5], &action) || !ParseInt(f[6], &direction) ||
          !ParseUint(f[7], &host)) {
        return ParseError(line_no, "E", "bad event fields");
      }
      if (subject >= catalog.size() || object >= catalog.size()) {
        return ParseError(line_no, "E", "event references unknown object");
      }
      if (action < 0 || action > static_cast<int>(ActionType::kDelete)) {
        return ParseError(line_no, "E", "bad action code");
      }
      if (direction < 0 || direction > 1) {
        return ParseError(line_no, "E", "bad direction code");
      }
      Event e;
      e.subject = subject;
      e.object = object;
      e.timestamp = ts;
      e.amount = amount;
      e.action = static_cast<ActionType>(action);
      e.direction = static_cast<FlowDirection>(direction);
      e.host = static_cast<HostId>(host);
      store->Append(e);
    } else {
      return ParseError(line_no, kind, "unknown record kind '" + kind + "'");
    }
  }
  store->Seal();
  return store;
}

Result<std::unique_ptr<EventStore>> LoadTraceV2(std::istream& is,
                                                EventStoreOptions options,
                                                uint64_t header_bytes) {
  auto store = std::make_unique<EventStore>(std::move(options));
  ObjectCatalog& catalog = store->catalog();
  BinaryReader r(is, header_bytes);

  uint32_t host_count = 0;
  if (!r.ReadU32(&host_count)) {
    return BinaryError(r, "hosts", "truncated host count");
  }
  for (uint32_t h = 0; h < host_count; ++h) {
    std::string name;
    if (!r.ReadString(&name)) {
      return BinaryError(r, "hosts", "truncated or oversized host name");
    }
    const HostId got = catalog.InternHost(name);
    if (got != h) {
      return BinaryError(r, "hosts", "duplicate host name '" + name + "'");
    }
  }

  uint64_t object_count = 0;
  if (!r.ReadU64(&object_count)) {
    return BinaryError(r, "objects", "truncated object count");
  }
  for (uint64_t i = 0; i < object_count; ++i) {
    uint8_t type = 0;
    uint16_t host = 0;
    if (!r.ReadU8(&type) || !r.ReadU16(&host)) {
      return BinaryError(r, "objects", "truncated object header");
    }
    if (type > static_cast<uint8_t>(ObjectType::kIp)) {
      return BinaryError(r, "objects",
                         "bad object type " + std::to_string(type));
    }
    switch (static_cast<ObjectType>(type)) {
      case ObjectType::kProcess: {
        int64_t pid = 0, start = 0;
        std::string exename;
        if (!r.ReadI64(&pid) || !r.ReadI64(&start) ||
            !r.ReadString(&exename)) {
          return BinaryError(r, "objects", "truncated process record");
        }
        catalog.AddProcess(host,
                           {.exename = exename, .pid = pid,
                            .start_time = start});
        break;
      }
      case ObjectType::kFile: {
        int64_t created = 0, modified = 0, accessed = 0;
        std::string path;
        if (!r.ReadI64(&created) || !r.ReadI64(&modified) ||
            !r.ReadI64(&accessed) || !r.ReadString(&path)) {
          return BinaryError(r, "objects", "truncated file record");
        }
        catalog.AddFile(host, {.path = path,
                               .creation_time = created,
                               .last_modification_time = modified,
                               .last_access_time = accessed});
        break;
      }
      case ObjectType::kIp: {
        int64_t port = 0, start = 0;
        std::string src_ip, dst_ip;
        if (!r.ReadI64(&port) || !r.ReadI64(&start) ||
            !r.ReadString(&src_ip) || !r.ReadString(&dst_ip)) {
          return BinaryError(r, "objects", "truncated ip record");
        }
        catalog.AddIp(host, {.src_ip = src_ip,
                             .dst_ip = dst_ip,
                             .dst_port = static_cast<int32_t>(port),
                             .start_time = start});
        break;
      }
    }
  }

  uint64_t event_count = 0;
  if (!r.ReadU64(&event_count)) {
    return BinaryError(r, "events", "truncated event count");
  }
  std::vector<Event> events(event_count);
  for (uint64_t i = 0; i < event_count; ++i) {
    if (!r.ReadI64(&events[i].timestamp)) {
      return BinaryError(r, "events", "truncated timestamp column");
    }
  }
  for (uint64_t i = 0; i < event_count; ++i) {
    if (!r.ReadU64(&events[i].subject)) {
      return BinaryError(r, "events", "truncated subject column");
    }
  }
  for (uint64_t i = 0; i < event_count; ++i) {
    if (!r.ReadU64(&events[i].object)) {
      return BinaryError(r, "events", "truncated object column");
    }
  }
  for (uint64_t i = 0; i < event_count; ++i) {
    if (!r.ReadU64(&events[i].amount)) {
      return BinaryError(r, "events", "truncated amount column");
    }
  }
  for (uint64_t i = 0; i < event_count; ++i) {
    uint8_t action = 0;
    if (!r.ReadU8(&action)) {
      return BinaryError(r, "events", "truncated action column");
    }
    if (action > static_cast<uint8_t>(ActionType::kDelete)) {
      return BinaryError(r, "events",
                         "bad action code " + std::to_string(action));
    }
    events[i].action = static_cast<ActionType>(action);
  }
  for (uint64_t i = 0; i < event_count; ++i) {
    uint8_t direction = 0;
    if (!r.ReadU8(&direction)) {
      return BinaryError(r, "events", "truncated direction column");
    }
    if (direction > 1) {
      return BinaryError(r, "events",
                         "bad direction code " + std::to_string(direction));
    }
    events[i].direction = static_cast<FlowDirection>(direction);
  }
  for (uint64_t i = 0; i < event_count; ++i) {
    uint16_t host = 0;
    if (!r.ReadU16(&host)) {
      return BinaryError(r, "events", "truncated host column");
    }
    events[i].host = host;
  }
  if (!r.AtEnd()) {
    return BinaryError(r, "events", "trailing bytes after event columns");
  }

  for (Event& e : events) {
    if (e.subject >= catalog.size() || e.object >= catalog.size()) {
      return BinaryError(r, "events", "event references unknown object");
    }
    store->Append(e);
  }
  store->Seal();
  return store;
}

}  // namespace

Status SaveTrace(const EventStore& store, std::ostream& os,
                 TraceFormat format) {
  if (!store.sealed()) {
    return Status::FailedPrecondition("store must be sealed before saving");
  }
  return format == TraceFormat::kBinaryV2 ? SaveTraceV2(store, os)
                                          : SaveTraceV1(store, os);
}

Status SaveTraceFile(const EventStore& store, const std::string& path,
                     TraceFormat format) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  return SaveTrace(store, f, format);
}

Result<std::unique_ptr<EventStore>> LoadTrace(std::istream& is,
                                              EventStoreOptions options) {
  std::string line;
  if (!std::getline(is, line)) {
    return ParseError(1, "header", "empty stream");
  }
  if (Trim(line) == kMagicV1) return LoadTraceV1(is, std::move(options));
  if (line == kMagicV2) {
    return LoadTraceV2(is, std::move(options), line.size() + 1);
  }
  return ParseError(1, "header",
                    "missing or wrong header (want '" + std::string(kMagicV1) +
                        "' or '" + std::string(kMagicV2) + "')");
}

Result<std::unique_ptr<EventStore>> LoadTraceFile(const std::string& path,
                                                  EventStoreOptions options) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::InvalidArgument("cannot open for read: " + path);
  return LoadTrace(f, std::move(options));
}

}  // namespace aptrace
