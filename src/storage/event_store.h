#ifndef APTRACE_STORAGE_EVENT_STORE_H_
#define APTRACE_STORAGE_EVENT_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <unordered_map>
#include <vector>

#include "event/catalog.h"
#include "event/event.h"
#include "storage/cost_model.h"
#include "util/clock.h"
#include "util/status.h"

namespace aptrace {

/// Store construction options.
struct EventStoreOptions {
  /// Width of a time partition. The paper's backend partitions audit logs
  /// by day; we default to one simulated hour so partition pruning is
  /// meaningful at laptop scale.
  DurationMicros partition_micros = kMicrosPerHour;

  CostModel cost_model;
};

/// Cumulative I/O counters, used by the resource model and the benches.
/// Snapshot of the store's atomic counters (see EventStore::stats()).
struct StoreStats {
  uint64_t queries = 0;
  uint64_t rows_matched = 0;   // fetched and delivered to the caller
  uint64_t rows_filtered = 0;  // rejected server-side by a pushed filter
  uint64_t partitions_probed = 0;
  uint64_t partitions_seeked = 0;
  DurationMicros simulated_cost = 0;
};

/// Server-side row predicate pushed into a scan (the Refiner compiles BDL
/// heuristics into the query). Return false to discard the row cheaply.
using RowFilter = std::function<bool(const Event&)>;

/// Raw output of a pure index scan: the rows a Scan* call would visit (in
/// the same ascending (timestamp, id) order) plus the partition counters
/// the cost model charges. Produced by CollectDest/CollectSrc — which are
/// side-effect-free and safe to run from any thread — and consumed by
/// ReplayScan, which applies the filter and charges exactly what the
/// fused scan would have. ScanDest/ScanSrc are implemented as
/// Collect + Replay, so the split is equivalent by construction.
struct RangeScanBatch {
  std::vector<EventId> rows;
  uint64_t partitions_probed = 0;
  uint64_t partitions_seeked = 0;
};

/// Time-partitioned event store simulating the audit-log database.
///
/// Lifecycle: create, obtain the mutable catalog, Append() events in any
/// order, Seal(), then query. Queries charge simulated time to the Clock
/// passed per call (so several analysis sessions with independent clocks
/// can share one store).
///
/// Thread-safety: after Seal(), any number of threads may query
/// concurrently (the counters are atomic). Appends — including streaming
/// post-seal appends — require external synchronization with queries.
/// CollectDest/CollectSrc touch no counters at all, so the Executor's
/// scan workers can prefetch row batches with zero cross-thread traffic.
///
/// The core query is ScanDest: all events whose data-flow *destination* is
/// a given object within [begin, end). This is exactly the query backward
/// tracking issues per explored node (paper Section II: an event B depends
/// on A when A's flow destination equals B's flow source).
class EventStore {
 public:
  explicit EventStore(EventStoreOptions options = {});

  EventStore(const EventStore&) = delete;
  EventStore& operator=(const EventStore&) = delete;

  /// Mutable during the build phase only.
  ObjectCatalog& catalog() { return catalog_; }
  const ObjectCatalog& catalog() const { return catalog_; }

  /// Appends an event; the store assigns and returns its EventId.
  /// Before Seal() this is the bulk-load path; after Seal() the event is
  /// indexed incrementally (streaming ingestion), so live collectors can
  /// keep feeding a store that analyses are already running against.
  /// Precondition: subject/object ids exist in the catalog.
  EventId Append(Event event);

  /// Freezes the bulk-load phase and builds the per-partition indexes.
  void Seal();
  bool sealed() const { return sealed_; }

  size_t NumEvents() const { return events_.size(); }
  const Event& Get(EventId id) const { return events_[id]; }

  /// Earliest/latest event timestamps; [0, 0) when empty.
  TimeMicros MinTime() const { return min_time_; }
  TimeMicros MaxTime() const { return max_time_; }

  /// Scans events with FlowDest() == dest and begin <= timestamp < end,
  /// in ascending time order, invoking `fn` for each row that passes
  /// `filter` (null = no filter). Filtered rows are charged the cheap
  /// server-side-rejection cost; delivered rows the full fetch cost.
  /// Charges the cost model to `clock` (pass nullptr to skip charging);
  /// `cost_out`, when non-null, also receives the simulated cost.
  /// Returns the number of rows delivered.
  ///
  /// Precondition: sealed.
  size_t ScanDest(ObjectId dest, TimeMicros begin, TimeMicros end,
                  Clock* clock, const std::function<void(const Event&)>& fn,
                  const RowFilter& filter = nullptr,
                  DurationMicros* cost_out = nullptr) const;

  /// Pure row collection for ScanDest: the rows and partition counters the
  /// scan would visit, with no clock charge, no stats, no metrics. Safe to
  /// call concurrently from any number of threads on a sealed store.
  RangeScanBatch CollectDest(ObjectId dest, TimeMicros begin,
                             TimeMicros end) const;

  /// Pure row collection for ScanSrc (same contract as CollectDest).
  RangeScanBatch CollectSrc(ObjectId src, TimeMicros begin,
                            TimeMicros end) const;

  /// Second half of a split scan: iterates a collected batch through
  /// `filter`/`fn` and charges clock/stats/metrics exactly as the fused
  /// ScanDest/ScanSrc would. Calling Collect* then ReplayScan is
  /// observably identical to one fused scan (same callback order, same
  /// simulated cost, same counters). Returns the rows delivered.
  size_t ReplayScan(const RangeScanBatch& batch, Clock* clock,
                    const std::function<void(const Event&)>& fn,
                    const RowFilter& filter = nullptr,
                    DurationMicros* cost_out = nullptr) const;

  /// Number of rows ScanDest would match, without fetching them (charges
  /// only probe/overhead cost — models a COUNT(*) over the index).
  size_t CountDest(ObjectId dest, TimeMicros begin, TimeMicros end,
                   Clock* clock) const;

  /// Mirror of ScanDest for forward tracking: events whose data-flow
  /// *source* is `src` within [begin, end), ascending by time.
  size_t ScanSrc(ObjectId src, TimeMicros begin, TimeMicros end, Clock* clock,
                 const std::function<void(const Event&)>& fn,
                 const RowFilter& filter = nullptr,
                 DurationMicros* cost_out = nullptr) const;

  /// Full-range scan of all events in [begin, end), ascending; used for
  /// start-point resolution and derived-attribute computation. Charges
  /// per-row cost for every row in range.
  size_t ScanRange(TimeMicros begin, TimeMicros end, Clock* clock,
                   const std::function<void(const Event&)>& fn) const;

  /// True if the object was ever written (flow into it from a process via
  /// a write-like action) within [begin, end). Used by derived attribute
  /// isReadOnly. Does not charge cost (metadata lookup).
  bool HasIncomingWrite(ObjectId object, TimeMicros begin,
                        TimeMicros end) const;

  /// Distinct flow destinations of events whose source is `src` within
  /// [begin, end). Used by derived attribute isWriteThrough. No cost.
  std::vector<ObjectId> FlowDestsOf(ObjectId src, TimeMicros begin,
                                    TimeMicros end) const;

  /// Snapshot of the cumulative I/O counters.
  StoreStats stats() const;
  void ResetStats();

  const EventStoreOptions& options() const { return options_; }

 private:
  struct Partition {
    // Event ids with FlowDest == key, sorted by timestamp (ties by id).
    std::unordered_map<ObjectId, std::vector<EventId>> by_dest;
    // Event ids with FlowSource == key, sorted by timestamp. Powers the
    // derived-attribute queries.
    std::unordered_map<ObjectId, std::vector<EventId>> by_src;
    // All event ids in the partition, sorted by timestamp.
    std::vector<EventId> all;
  };

  int64_t PartitionIndex(TimeMicros t) const;

  /// Shared pure-collection walk behind CollectDest/CollectSrc.
  RangeScanBatch CollectImpl(bool by_src, ObjectId key, TimeMicros begin,
                             TimeMicros end) const;

  /// Inserts one event into the partition indexes at its sorted position
  /// (incremental path for post-seal appends).
  void IndexEvent(const Event& e);

  EventStoreOptions options_;
  ObjectCatalog catalog_;
  std::vector<Event> events_;  // indexed by EventId
  std::map<int64_t, Partition> partitions_;
  TimeMicros min_time_ = std::numeric_limits<TimeMicros>::max();
  TimeMicros max_time_ = std::numeric_limits<TimeMicros>::min();
  bool sealed_ = false;

  // Atomic so concurrent read-only sessions can share the store.
  mutable std::atomic<uint64_t> stat_queries_{0};
  mutable std::atomic<uint64_t> stat_rows_matched_{0};
  mutable std::atomic<uint64_t> stat_rows_filtered_{0};
  mutable std::atomic<uint64_t> stat_partitions_probed_{0};
  mutable std::atomic<uint64_t> stat_partitions_seeked_{0};
  mutable std::atomic<int64_t> stat_simulated_cost_{0};
};

}  // namespace aptrace

#endif  // APTRACE_STORAGE_EVENT_STORE_H_
