#ifndef APTRACE_STORAGE_EVENT_STORE_H_
#define APTRACE_STORAGE_EVENT_STORE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "event/catalog.h"
#include "event/event.h"
#include "storage/cost_model.h"
#include "storage/sharded_store.h"
#include "storage/storage_backend.h"
#include "util/clock.h"
#include "util/status.h"

namespace aptrace {

/// Store construction options.
struct EventStoreOptions {
  /// Width of a time partition (row backend). The paper's backend
  /// partitions audit logs by day; we default to one simulated hour so
  /// partition pruning is meaningful at laptop scale.
  DurationMicros partition_micros = kMicrosPerHour;

  CostModel cost_model;

  /// Physical layout. Defaults to the APTRACE_BACKEND environment
  /// variable ("row" or "columnar") when set, else the row store — so the
  /// whole test suite and every tool can be switched per run without code
  /// changes.
  StorageBackendKind backend = DefaultStorageBackendKind();

  /// Rows per column segment (columnar backend). 0 = backend default.
  size_t segment_rows = 0;

  /// Shard count for the sharded store engine (docs/sharding.md): > 1
  /// partitions the store into (host, time-partition) shards, each with
  /// its own backend of the kind above, and turns scans into
  /// scatter-gather. 1 (the default) keeps the monolithic store exactly
  /// as before. Defaults to the APTRACE_SHARDS environment variable when
  /// set and valid (clamped to [1, 64]).
  size_t shards = DefaultShardCount();

  /// Builds shard `shard`'s backend for the sharded engine. Unset (the
  /// default) constructs an in-process backend of `backend`'s kind; the
  /// distributed fabric injects RemoteShardBackend factories here so the
  /// same coordinator engine — routing, gid directory, merge, stats —
  /// drives remote shard daemons (docs/distribution.md).
  std::function<std::unique_ptr<StorageBackend>(
      size_t shard, const EventStoreOptions& options)>
      shard_backend_factory;

  /// Concurrency of the sharded store's per-shard Collect fan-out:
  /// 0 (default) probes shards sequentially on the calling thread — right
  /// for in-process shards, where a probe is a memory-bound index walk.
  /// N > 0 gives the store N dedicated fan-out threads so remote probes
  /// overlap their network round-trips and one slow daemon does not
  /// serialize the rest. Orthogonal to the Executor's scan pool: fan-out
  /// threads run inside a single Collect call.
  size_t dist_fanout_threads = 0;
};

/// Simulated audit-log database: a thin façade that owns the ObjectCatalog
/// and delegates every row operation to a pluggable StorageBackend
/// (row-oriented time partitions or columnar segments with zone maps; see
/// storage/storage_backend.h for the interface contract and
/// docs/storage_backends.md for the layouts).
///
/// Lifecycle: create, obtain the mutable catalog, Append() events in any
/// order, Seal(), then query. Queries charge simulated time to the Clock
/// passed per call (so several analysis sessions with independent clocks
/// can share one store).
///
/// Thread-safety: after Seal(), any number of threads may query
/// concurrently; see the read-after-build contract on StorageBackend.
/// CollectDest/CollectSrc touch no counters at all, so the Executor's
/// scan workers can prefetch row batches with zero cross-thread traffic.
///
/// The core query is ScanDest: all events whose data-flow *destination* is
/// a given object within [begin, end). This is exactly the query backward
/// tracking issues per explored node (paper Section II: an event B depends
/// on A when A's flow destination equals B's flow source). Both backends
/// return the same rows in the same ascending (timestamp, id) order, so
/// analysis output is bit-identical across backends; only the simulated
/// probe cost differs.
class EventStore {
 public:
  explicit EventStore(EventStoreOptions options = {});
  ~EventStore();

  EventStore(const EventStore&) = delete;
  EventStore& operator=(const EventStore&) = delete;

  /// Mutable during the build phase only.
  ObjectCatalog& catalog() { return catalog_; }
  const ObjectCatalog& catalog() const { return catalog_; }

  /// The physical layout behind this store.
  const StorageBackend& backend() const { return *backend_; }
  StorageBackendKind backend_kind() const { return backend_->kind(); }

  /// Shards behind this store; 1 for the monolithic layout.
  size_t shard_count() const {
    return sharded_ != nullptr ? sharded_->shard_count() : 1;
  }

  /// The sharded engine, or nullptr when the store is monolithic.
  const ShardedStore* sharded() const { return sharded_; }

  /// One consistent (total, per-shard) stats snapshot. For a monolithic
  /// store this is the plain stats() total with a single synthetic shard
  /// row, so /sessions and the benches render uniformly.
  ShardedStore::Snapshot ShardSnapshot() const;

  /// Appends an event; the store assigns and returns its EventId.
  /// Before Seal() this is the bulk-load path; after Seal() the event is
  /// indexed incrementally (streaming ingestion), so live collectors can
  /// keep feeding a store that analyses are already running against.
  /// Precondition: subject/object ids exist in the catalog.
  EventId Append(Event event) { return backend_->Append(std::move(event)); }

  /// Freezes the bulk-load phase and builds the physical layout.
  void Seal();
  bool sealed() const { return backend_->sealed(); }

  size_t NumEvents() const { return backend_->NumEvents(); }

  /// Materializes one event row. By value: the columnar backend
  /// reassembles rows from column arrays, so no stable reference exists.
  Event Get(EventId id) const { return backend_->Get(id); }

  /// Earliest/latest event timestamps; [0, 0) when empty.
  TimeMicros MinTime() const { return backend_->MinTime(); }
  TimeMicros MaxTime() const { return backend_->MaxTime(); }

  /// Scans events with FlowDest() == dest and begin <= timestamp < end,
  /// in ascending time order, invoking `fn` for each row that passes
  /// `filter` (null = no filter). Filtered rows are charged the cheap
  /// server-side-rejection cost; delivered rows the full fetch cost.
  /// Charges the cost model to `clock` (pass nullptr to skip charging);
  /// `cost_out`, when non-null, also receives the simulated cost, and
  /// `probe_out` this scan's own attribution record (see ScanProbeStats).
  /// Returns the number of rows delivered.
  ///
  /// Precondition: sealed.
  size_t ScanDest(ObjectId dest, TimeMicros begin, TimeMicros end,
                  Clock* clock, const std::function<void(const Event&)>& fn,
                  const RowFilter& filter = nullptr,
                  DurationMicros* cost_out = nullptr,
                  ScanProbeStats* probe_out = nullptr) const;

  /// Pure row collection for ScanDest: the rows and probe counters the
  /// scan would visit, with no clock charge, no stats, no metrics. Safe to
  /// call concurrently from any number of threads on a sealed store.
  RangeScanBatch CollectDest(ObjectId dest, TimeMicros begin,
                             TimeMicros end) const {
    return backend_->CollectDest(dest, begin, end);
  }

  /// Pure row collection for ScanSrc (same contract as CollectDest).
  RangeScanBatch CollectSrc(ObjectId src, TimeMicros begin,
                            TimeMicros end) const {
    return backend_->CollectSrc(src, begin, end);
  }

  /// Pure row collection for ScanRange (same contract as CollectDest).
  RangeScanBatch CollectRange(TimeMicros begin, TimeMicros end) const {
    return backend_->CollectRange(begin, end);
  }

  /// Second half of a split scan: iterates a collected batch through
  /// `filter`/`fn` and charges clock/stats/metrics exactly as the fused
  /// ScanDest/ScanSrc would. Calling Collect* then ReplayScan is
  /// observably identical to one fused scan (same callback order, same
  /// simulated cost, same counters). Returns the rows delivered.
  size_t ReplayScan(const RangeScanBatch& batch, Clock* clock,
                    const std::function<void(const Event&)>& fn,
                    const RowFilter& filter = nullptr,
                    DurationMicros* cost_out = nullptr,
                    ScanProbeStats* probe_out = nullptr) const {
    return backend_->ReplayScan(batch, clock, fn, filter, cost_out,
                                probe_out);
  }

  /// Number of rows ScanDest would match, without fetching them (charges
  /// only probe/overhead cost — models a COUNT(*) over the index).
  size_t CountDest(ObjectId dest, TimeMicros begin, TimeMicros end,
                   Clock* clock) const {
    return backend_->CountDest(dest, begin, end, clock);
  }

  /// Mirror of ScanDest for forward tracking: events whose data-flow
  /// *source* is `src` within [begin, end), ascending by time.
  size_t ScanSrc(ObjectId src, TimeMicros begin, TimeMicros end, Clock* clock,
                 const std::function<void(const Event&)>& fn,
                 const RowFilter& filter = nullptr,
                 DurationMicros* cost_out = nullptr,
                 ScanProbeStats* probe_out = nullptr) const;

  /// Full-range scan of all events in [begin, end), ascending; used for
  /// start-point resolution and derived-attribute computation. Charges
  /// per-row cost for every row in range.
  size_t ScanRange(TimeMicros begin, TimeMicros end, Clock* clock,
                   const std::function<void(const Event&)>& fn) const;

  /// True if the object was ever written (flow into it from a process via
  /// a write-like action) within [begin, end). Used by derived attribute
  /// isReadOnly. Does not charge cost (metadata lookup).
  bool HasIncomingWrite(ObjectId object, TimeMicros begin,
                        TimeMicros end) const {
    return backend_->HasIncomingWrite(object, begin, end);
  }

  /// Distinct flow destinations of events whose source is `src` within
  /// [begin, end). Used by derived attribute isWriteThrough. No cost.
  std::vector<ObjectId> FlowDestsOf(ObjectId src, TimeMicros begin,
                                    TimeMicros end) const {
    return backend_->FlowDestsOf(src, begin, end);
  }

  /// Tiered-storage lifecycle passthroughs (see StorageBackend): no-ops
  /// on backends without a hot tail. All three mutators need the same
  /// external synchronization with queries as post-seal Append.
  size_t SealTail(WorkerPool* pool) { return backend_->SealTail(pool); }
  size_t CompactSegments(WorkerPool* pool) { return backend_->Compact(pool); }
  size_t EvictBefore(TimeMicros horizon) {
    return backend_->EvictBefore(horizon);
  }
  size_t TailRows() const { return backend_->TailRows(); }

  /// One consistent snapshot of the cumulative I/O counters.
  StoreStats stats() const { return backend_->stats(); }
  void ResetStats() { backend_->ResetStats(); }

  const EventStoreOptions& options() const { return options_; }

 private:
  EventStoreOptions options_;
  ObjectCatalog catalog_;
  std::unique_ptr<StorageBackend> backend_;
  /// Set when backend_ is the sharded engine (avoids RTTI on hot paths).
  ShardedStore* sharded_ = nullptr;
};

}  // namespace aptrace

#endif  // APTRACE_STORAGE_EVENT_STORE_H_
