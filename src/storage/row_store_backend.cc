#include "storage/row_store_backend.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"

namespace aptrace {

namespace {

// Returns [first, last) subrange of `ids` with timestamps in [begin, end).
std::pair<size_t, size_t> TimeBounds(const std::vector<EventId>& ids,
                                     const std::vector<Event>& events,
                                     TimeMicros begin, TimeMicros end) {
  const auto lo = std::lower_bound(
      ids.begin(), ids.end(), begin,
      [&](EventId id, TimeMicros t) { return events[id].timestamp < t; });
  const auto hi = std::lower_bound(
      lo, ids.end(), end,
      [&](EventId id, TimeMicros t) { return events[id].timestamp < t; });
  return {static_cast<size_t>(lo - ids.begin()),
          static_cast<size_t>(hi - ids.begin())};
}

}  // namespace

RowStoreBackend::RowStoreBackend(CostModel cost_model,
                                 DurationMicros partition_micros)
    : StorageBackend(StorageBackendKind::kRow, cost_model),
      partition_micros_(partition_micros) {
  if (partition_micros_ <= 0) partition_micros_ = kMicrosPerHour;
}

const BackendCapabilities& RowStoreBackend::capabilities() const {
  static const BackendCapabilities kCaps = {
      .streaming_append = true,
      .zone_map_pruning = false,
      .probe_unit = "time partition",
  };
  return kCaps;
}

EventId RowStoreBackend::Append(Event event) {
  const EventId id = events_.size();
  event.id = id;
  NoteAppend(event);
  events_.push_back(event);
  if (sealed()) IndexEvent(events_.back());
  return id;
}

void RowStoreBackend::IndexEvent(const Event& e) {
  Partition& p = partitions_[PartitionIndex(e.timestamp)];
  const auto by_time = [this](EventId a, EventId b) {
    const Event& ea = events_[a];
    const Event& eb = events_[b];
    if (ea.timestamp != eb.timestamp) return ea.timestamp < eb.timestamp;
    return a < b;
  };
  const auto insert_sorted = [&](std::vector<EventId>& ids) {
    ids.insert(std::upper_bound(ids.begin(), ids.end(), e.id, by_time),
               e.id);
  };
  insert_sorted(p.by_dest[e.FlowDest()]);
  insert_sorted(p.by_src[e.FlowSource()]);
  insert_sorted(p.all);
}

int64_t RowStoreBackend::PartitionIndex(TimeMicros t) const {
  // Floor division (timestamps may in principle be negative).
  int64_t q = t / partition_micros_;
  if (t % partition_micros_ < 0) q -= 1;
  return q;
}

void RowStoreBackend::Seal() {
  if (sealed()) return;
  APTRACE_SPAN("store/seal");
  for (const Event& e : events_) {
    Partition& p = partitions_[PartitionIndex(e.timestamp)];
    p.by_dest[e.FlowDest()].push_back(e.id);
    p.by_src[e.FlowSource()].push_back(e.id);
    p.all.push_back(e.id);
  }
  const auto by_time = [this](EventId a, EventId b) {
    const Event& ea = events_[a];
    const Event& eb = events_[b];
    if (ea.timestamp != eb.timestamp) return ea.timestamp < eb.timestamp;
    return a < b;
  };
  for (auto& [idx, p] : partitions_) {
    (void)idx;
    for (auto& [obj, ids] : p.by_dest) {
      (void)obj;
      std::sort(ids.begin(), ids.end(), by_time);
    }
    for (auto& [obj, ids] : p.by_src) {
      (void)obj;
      std::sort(ids.begin(), ids.end(), by_time);
    }
    std::sort(p.all.begin(), p.all.end(), by_time);
  }
  MarkSealed(events_.empty());
}

RangeScanBatch RowStoreBackend::CollectImpl(bool by_src, ObjectId key,
                                            TimeMicros begin,
                                            TimeMicros end) const {
  assert(sealed());
  RangeScanBatch batch;
  if (begin >= end) return batch;
  const int64_t p_lo = PartitionIndex(begin);
  const int64_t p_hi = PartitionIndex(end - 1);
  for (auto it = partitions_.lower_bound(p_lo);
       it != partitions_.end() && it->first <= p_hi; ++it) {
    batch.partitions_probed++;
    const auto& index = by_src ? it->second.by_src : it->second.by_dest;
    const auto found = index.find(key);
    if (found == index.end()) continue;
    const auto [lo, hi] = TimeBounds(found->second, events_, begin, end);
    if (lo == hi) continue;
    batch.partitions_seeked++;
    batch.rows.insert(batch.rows.end(), found->second.begin() + lo,
                      found->second.begin() + hi);
  }
  return batch;
}

RangeScanBatch RowStoreBackend::CollectDest(ObjectId dest, TimeMicros begin,
                                            TimeMicros end) const {
  return CollectImpl(/*by_src=*/false, dest, begin, end);
}

RangeScanBatch RowStoreBackend::CollectSrc(ObjectId src, TimeMicros begin,
                                           TimeMicros end) const {
  return CollectImpl(/*by_src=*/true, src, begin, end);
}

RangeScanBatch RowStoreBackend::CollectRange(TimeMicros begin,
                                             TimeMicros end) const {
  assert(sealed());
  RangeScanBatch batch;
  if (begin >= end) return batch;
  const int64_t p_lo = PartitionIndex(begin);
  const int64_t p_hi = PartitionIndex(end - 1);
  for (auto it = partitions_.lower_bound(p_lo);
       it != partitions_.end() && it->first <= p_hi; ++it) {
    // Full scans read every overlapping partition: probed and seeked.
    batch.partitions_probed++;
    batch.partitions_seeked++;
    const auto [lo, hi] = TimeBounds(it->second.all, events_, begin, end);
    batch.rows.insert(batch.rows.end(), it->second.all.begin() + lo,
                      it->second.all.begin() + hi);
  }
  return batch;
}

size_t RowStoreBackend::CountDestRows(ObjectId dest, TimeMicros begin,
                                      TimeMicros end, uint64_t* probed,
                                      uint64_t* seeked,
                                      uint64_t* pruned) const {
  assert(sealed());
  (void)pruned;  // the row store has no zone maps to prune with
  size_t rows = 0;
  const int64_t p_lo = PartitionIndex(begin);
  const int64_t p_hi = PartitionIndex(end - 1);
  for (auto it = partitions_.lower_bound(p_lo);
       it != partitions_.end() && it->first <= p_hi; ++it) {
    (*probed)++;
    const auto found = it->second.by_dest.find(dest);
    if (found == it->second.by_dest.end()) continue;
    const auto [lo, hi] = TimeBounds(found->second, events_, begin, end);
    if (lo == hi) continue;
    (*seeked)++;
    rows += hi - lo;
  }
  return rows;
}

bool RowStoreBackend::HasIncomingWrite(ObjectId object, TimeMicros begin,
                                       TimeMicros end) const {
  assert(sealed());
  if (begin >= end) return false;
  const int64_t p_lo = PartitionIndex(begin);
  const int64_t p_hi = PartitionIndex(end - 1);
  for (auto it = partitions_.lower_bound(p_lo);
       it != partitions_.end() && it->first <= p_hi; ++it) {
    const auto found = it->second.by_dest.find(object);
    if (found == it->second.by_dest.end()) continue;
    const auto [lo, hi] = TimeBounds(found->second, events_, begin, end);
    if (lo != hi) return true;
  }
  return false;
}

std::vector<ObjectId> RowStoreBackend::FlowDestsOf(ObjectId src,
                                                   TimeMicros begin,
                                                   TimeMicros end) const {
  assert(sealed());
  std::vector<ObjectId> out;
  if (begin >= end) return out;
  const int64_t p_lo = PartitionIndex(begin);
  const int64_t p_hi = PartitionIndex(end - 1);
  for (auto it = partitions_.lower_bound(p_lo);
       it != partitions_.end() && it->first <= p_hi; ++it) {
    const auto found = it->second.by_src.find(src);
    if (found == it->second.by_src.end()) continue;
    const auto [lo, hi] = TimeBounds(found->second, events_, begin, end);
    for (size_t i = lo; i < hi; ++i) {
      out.push_back(events_[found->second[i]].FlowDest());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace aptrace
