#include "storage/event_store.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace aptrace {

namespace {

struct StoreMetrics {
  obs::Counter* queries;
  obs::Counter* events_scanned;
  obs::Counter* rows_filtered;
};

const StoreMetrics& Sm() {
  static const StoreMetrics m = {
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreQueries),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreEventsScanned),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreRowsFiltered),
  };
  return m;
}

}  // namespace

EventStore::EventStore(EventStoreOptions options)
    : options_(std::move(options)) {
  if (options_.partition_micros <= 0) options_.partition_micros = kMicrosPerHour;
}

StoreStats EventStore::stats() const {
  StoreStats s;
  s.queries = stat_queries_.load(std::memory_order_relaxed);
  s.rows_matched = stat_rows_matched_.load(std::memory_order_relaxed);
  s.rows_filtered = stat_rows_filtered_.load(std::memory_order_relaxed);
  s.partitions_probed =
      stat_partitions_probed_.load(std::memory_order_relaxed);
  s.partitions_seeked =
      stat_partitions_seeked_.load(std::memory_order_relaxed);
  s.simulated_cost = stat_simulated_cost_.load(std::memory_order_relaxed);
  return s;
}

void EventStore::ResetStats() {
  stat_queries_.store(0, std::memory_order_relaxed);
  stat_rows_matched_.store(0, std::memory_order_relaxed);
  stat_rows_filtered_.store(0, std::memory_order_relaxed);
  stat_partitions_probed_.store(0, std::memory_order_relaxed);
  stat_partitions_seeked_.store(0, std::memory_order_relaxed);
  stat_simulated_cost_.store(0, std::memory_order_relaxed);
}

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

EventId EventStore::Append(Event event) {
  const EventId id = events_.size();
  event.id = id;
  min_time_ = std::min(min_time_, event.timestamp);
  max_time_ = std::max(max_time_, event.timestamp);
  events_.push_back(event);
  if (sealed_) IndexEvent(events_.back());
  return id;
}

void EventStore::IndexEvent(const Event& e) {
  Partition& p = partitions_[PartitionIndex(e.timestamp)];
  const auto by_time = [this](EventId a, EventId b) {
    const Event& ea = events_[a];
    const Event& eb = events_[b];
    if (ea.timestamp != eb.timestamp) return ea.timestamp < eb.timestamp;
    return a < b;
  };
  const auto insert_sorted = [&](std::vector<EventId>& ids) {
    ids.insert(std::upper_bound(ids.begin(), ids.end(), e.id, by_time),
               e.id);
  };
  insert_sorted(p.by_dest[e.FlowDest()]);
  insert_sorted(p.by_src[e.FlowSource()]);
  insert_sorted(p.all);
}

int64_t EventStore::PartitionIndex(TimeMicros t) const {
  // Floor division (timestamps may in principle be negative).
  int64_t q = t / options_.partition_micros;
  if (t % options_.partition_micros < 0) q -= 1;
  return q;
}

void EventStore::Seal() {
  if (sealed_) return;
  APTRACE_SPAN("store/seal");
  for (const Event& e : events_) {
    Partition& p = partitions_[PartitionIndex(e.timestamp)];
    p.by_dest[e.FlowDest()].push_back(e.id);
    p.by_src[e.FlowSource()].push_back(e.id);
    p.all.push_back(e.id);
  }
  const auto by_time = [this](EventId a, EventId b) {
    const Event& ea = events_[a];
    const Event& eb = events_[b];
    if (ea.timestamp != eb.timestamp) return ea.timestamp < eb.timestamp;
    return a < b;
  };
  for (auto& [idx, p] : partitions_) {
    (void)idx;
    for (auto& [obj, ids] : p.by_dest) {
      (void)obj;
      std::sort(ids.begin(), ids.end(), by_time);
    }
    for (auto& [obj, ids] : p.by_src) {
      (void)obj;
      std::sort(ids.begin(), ids.end(), by_time);
    }
    std::sort(p.all.begin(), p.all.end(), by_time);
  }
  if (events_.empty()) {
    min_time_ = 0;
    max_time_ = 0;
  }
  sealed_ = true;
  APTRACE_LOG(Info) << "EventStore sealed: " << events_.size() << " events, "
                    << partitions_.size() << " partitions, "
                    << catalog_.size() << " objects";
}

namespace {

// Returns [first, last) subrange of `ids` with timestamps in [begin, end).
std::pair<size_t, size_t> TimeBounds(const std::vector<EventId>& ids,
                                     const std::vector<Event>& events,
                                     TimeMicros begin, TimeMicros end) {
  const auto lo = std::lower_bound(
      ids.begin(), ids.end(), begin,
      [&](EventId id, TimeMicros t) { return events[id].timestamp < t; });
  const auto hi = std::lower_bound(
      lo, ids.end(), end,
      [&](EventId id, TimeMicros t) { return events[id].timestamp < t; });
  return {static_cast<size_t>(lo - ids.begin()),
          static_cast<size_t>(hi - ids.begin())};
}

}  // namespace

RangeScanBatch EventStore::CollectImpl(bool by_src, ObjectId key,
                                       TimeMicros begin,
                                       TimeMicros end) const {
  assert(sealed_);
  RangeScanBatch batch;
  if (begin >= end) return batch;
  const int64_t p_lo = PartitionIndex(begin);
  const int64_t p_hi = PartitionIndex(end - 1);
  for (auto it = partitions_.lower_bound(p_lo);
       it != partitions_.end() && it->first <= p_hi; ++it) {
    batch.partitions_probed++;
    const auto& index = by_src ? it->second.by_src : it->second.by_dest;
    const auto found = index.find(key);
    if (found == index.end()) continue;
    const auto [lo, hi] = TimeBounds(found->second, events_, begin, end);
    if (lo == hi) continue;
    batch.partitions_seeked++;
    batch.rows.insert(batch.rows.end(), found->second.begin() + lo,
                      found->second.begin() + hi);
  }
  return batch;
}

RangeScanBatch EventStore::CollectDest(ObjectId dest, TimeMicros begin,
                                       TimeMicros end) const {
  return CollectImpl(/*by_src=*/false, dest, begin, end);
}

RangeScanBatch EventStore::CollectSrc(ObjectId src, TimeMicros begin,
                                      TimeMicros end) const {
  return CollectImpl(/*by_src=*/true, src, begin, end);
}

size_t EventStore::ReplayScan(const RangeScanBatch& batch, Clock* clock,
                              const std::function<void(const Event&)>& fn,
                              const RowFilter& filter,
                              DurationMicros* cost_out) const {
  assert(sealed_);
  size_t rows = 0;
  size_t filtered = 0;
  for (const EventId id : batch.rows) {
    const Event& e = events_[id];
    if (filter && !filter(e)) {
      filtered++;
      continue;
    }
    rows++;
    if (fn) fn(e);
  }
  const DurationMicros cost = options_.cost_model.QueryCost(
      rows, filtered, batch.partitions_probed, batch.partitions_seeked);
  if (clock != nullptr) clock->AdvanceMicros(cost);
  if (cost_out != nullptr) *cost_out = cost;
  stat_queries_.fetch_add(1, kRelaxed);
  stat_rows_matched_.fetch_add(rows, kRelaxed);
  stat_rows_filtered_.fetch_add(filtered, kRelaxed);
  stat_partitions_probed_.fetch_add(batch.partitions_probed, kRelaxed);
  stat_partitions_seeked_.fetch_add(batch.partitions_seeked, kRelaxed);
  stat_simulated_cost_.fetch_add(cost, kRelaxed);
  Sm().queries->Add();
  Sm().events_scanned->Add(rows + filtered);
  Sm().rows_filtered->Add(filtered);
  return rows;
}

size_t EventStore::ScanDest(ObjectId dest, TimeMicros begin, TimeMicros end,
                            Clock* clock,
                            const std::function<void(const Event&)>& fn,
                            const RowFilter& filter,
                            DurationMicros* cost_out) const {
  APTRACE_SPAN("store/scan_dest");
  return ReplayScan(CollectDest(dest, begin, end), clock, fn, filter,
                    cost_out);
}

size_t EventStore::ScanSrc(ObjectId src, TimeMicros begin, TimeMicros end,
                           Clock* clock,
                           const std::function<void(const Event&)>& fn,
                           const RowFilter& filter,
                           DurationMicros* cost_out) const {
  APTRACE_SPAN("store/scan_src");
  return ReplayScan(CollectSrc(src, begin, end), clock, fn, filter, cost_out);
}

size_t EventStore::CountDest(ObjectId dest, TimeMicros begin, TimeMicros end,
                             Clock* clock) const {
  assert(sealed_);
  size_t rows = 0;
  uint64_t probed = 0;
  uint64_t seeked = 0;
  if (begin < end) {
    const int64_t p_lo = PartitionIndex(begin);
    const int64_t p_hi = PartitionIndex(end - 1);
    for (auto it = partitions_.lower_bound(p_lo);
         it != partitions_.end() && it->first <= p_hi; ++it) {
      probed++;
      const auto found = it->second.by_dest.find(dest);
      if (found == it->second.by_dest.end()) continue;
      const auto [lo, hi] = TimeBounds(found->second, events_, begin, end);
      if (lo == hi) continue;
      seeked++;
      rows += hi - lo;
    }
  }
  // COUNT over the index: no per-row fetch cost.
  const DurationMicros cost = options_.cost_model.QueryCost(0, 0, probed, seeked);
  if (clock != nullptr) clock->AdvanceMicros(cost);
  stat_queries_.fetch_add(1, kRelaxed);
  stat_partitions_probed_.fetch_add(probed, kRelaxed);
  stat_partitions_seeked_.fetch_add(seeked, kRelaxed);
  stat_simulated_cost_.fetch_add(cost, kRelaxed);
  Sm().queries->Add();  // index-only COUNT: no event rows touched
  return rows;
}

size_t EventStore::ScanRange(TimeMicros begin, TimeMicros end, Clock* clock,
                             const std::function<void(const Event&)>& fn) const {
  APTRACE_SPAN("store/scan_range");
  assert(sealed_);
  size_t rows = 0;
  uint64_t probed = 0;
  if (begin < end) {
    const int64_t p_lo = PartitionIndex(begin);
    const int64_t p_hi = PartitionIndex(end - 1);
    for (auto it = partitions_.lower_bound(p_lo);
         it != partitions_.end() && it->first <= p_hi; ++it) {
      probed++;
      const auto [lo, hi] = TimeBounds(it->second.all, events_, begin, end);
      for (size_t i = lo; i < hi; ++i) {
        rows++;
        if (fn) fn(events_[it->second.all[i]]);
      }
    }
  }
  const DurationMicros cost =
      options_.cost_model.QueryCost(rows, 0, probed, probed);
  if (clock != nullptr) clock->AdvanceMicros(cost);
  stat_queries_.fetch_add(1, kRelaxed);
  stat_rows_matched_.fetch_add(rows, kRelaxed);
  stat_partitions_probed_.fetch_add(probed, kRelaxed);
  stat_simulated_cost_.fetch_add(cost, kRelaxed);
  Sm().queries->Add();
  Sm().events_scanned->Add(rows);
  return rows;
}

bool EventStore::HasIncomingWrite(ObjectId object, TimeMicros begin,
                                  TimeMicros end) const {
  assert(sealed_);
  if (begin >= end) return false;
  const int64_t p_lo = PartitionIndex(begin);
  const int64_t p_hi = PartitionIndex(end - 1);
  for (auto it = partitions_.lower_bound(p_lo);
       it != partitions_.end() && it->first <= p_hi; ++it) {
    const auto found = it->second.by_dest.find(object);
    if (found == it->second.by_dest.end()) continue;
    const auto [lo, hi] = TimeBounds(found->second, events_, begin, end);
    if (lo != hi) return true;
  }
  return false;
}

std::vector<ObjectId> EventStore::FlowDestsOf(ObjectId src, TimeMicros begin,
                                              TimeMicros end) const {
  assert(sealed_);
  std::vector<ObjectId> out;
  if (begin >= end) return out;
  const int64_t p_lo = PartitionIndex(begin);
  const int64_t p_hi = PartitionIndex(end - 1);
  for (auto it = partitions_.lower_bound(p_lo);
       it != partitions_.end() && it->first <= p_hi; ++it) {
    const auto found = it->second.by_src.find(src);
    if (found == it->second.by_src.end()) continue;
    const auto [lo, hi] = TimeBounds(found->second, events_, begin, end);
    for (size_t i = lo; i < hi; ++i) {
      out.push_back(events_[found->second[i]].FlowDest());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace aptrace
