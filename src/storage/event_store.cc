#include "storage/event_store.h"

#include <utility>

#include "obs/trace.h"
#include "storage/columnar_backend.h"
#include "storage/row_store_backend.h"
#include "util/logging.h"

namespace aptrace {

namespace {

std::unique_ptr<StorageBackend> MakeBackend(const EventStoreOptions& options) {
  switch (options.backend) {
    case StorageBackendKind::kColumnar:
      return std::make_unique<ColumnarSegmentBackend>(options.cost_model,
                                                      options.segment_rows);
    case StorageBackendKind::kRow:
      break;
  }
  return std::make_unique<RowStoreBackend>(options.cost_model,
                                           options.partition_micros);
}

}  // namespace

EventStore::EventStore(EventStoreOptions options)
    : options_(std::move(options)) {
  if (options_.partition_micros <= 0) {
    options_.partition_micros = kMicrosPerHour;
  }
  if (options_.shards < 1) options_.shards = 1;
  if (options_.shards > kMaxStoreShards) options_.shards = kMaxStoreShards;
  if (options_.shards > 1) {
    auto sharded = std::make_unique<ShardedStore>(options_, &catalog_);
    sharded_ = sharded.get();
    backend_ = std::move(sharded);
  } else {
    backend_ = MakeBackend(options_);
  }
}

EventStore::~EventStore() = default;

void EventStore::Seal() {
  if (backend_->sealed()) return;
  backend_->Seal();
  APTRACE_LOG(Info) << "EventStore sealed (" << backend_->name()
                    << " backend, " << shard_count()
                    << " shard(s)): " << backend_->NumEvents() << " events, "
                    << catalog_.size() << " objects";
}

ShardedStore::Snapshot EventStore::ShardSnapshot() const {
  if (sharded_ != nullptr) return sharded_->TakeSnapshot();
  ShardedStore::Snapshot snap;
  snap.total = backend_->stats();
  ShardedStore::ShardStatsRow row;
  row.shard = 0;
  row.resident_rows = backend_->NumEvents();
  row.tail_rows = backend_->TailRows();
  row.stats = snap.total;
  snap.shards.push_back(row);
  return snap;
}

size_t EventStore::ScanDest(ObjectId dest, TimeMicros begin, TimeMicros end,
                            Clock* clock,
                            const std::function<void(const Event&)>& fn,
                            const RowFilter& filter,
                            DurationMicros* cost_out,
                            ScanProbeStats* probe_out) const {
  APTRACE_SPAN("store/scan_dest");
  return backend_->ReplayScan(backend_->CollectDest(dest, begin, end), clock,
                              fn, filter, cost_out, probe_out);
}

size_t EventStore::ScanSrc(ObjectId src, TimeMicros begin, TimeMicros end,
                           Clock* clock,
                           const std::function<void(const Event&)>& fn,
                           const RowFilter& filter,
                           DurationMicros* cost_out,
                           ScanProbeStats* probe_out) const {
  APTRACE_SPAN("store/scan_src");
  return backend_->ReplayScan(backend_->CollectSrc(src, begin, end), clock, fn,
                              filter, cost_out, probe_out);
}

size_t EventStore::ScanRange(TimeMicros begin, TimeMicros end, Clock* clock,
                             const std::function<void(const Event&)>& fn)
    const {
  APTRACE_SPAN("store/scan_range");
  return backend_->ReplayScan(backend_->CollectRange(begin, end), clock, fn);
}

}  // namespace aptrace
