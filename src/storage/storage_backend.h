#ifndef APTRACE_STORAGE_STORAGE_BACKEND_H_
#define APTRACE_STORAGE_STORAGE_BACKEND_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <string_view>
#include <vector>

#include "event/event.h"
#include "util/sync.h"
#include "storage/cost_model.h"
#include "util/clock.h"

namespace aptrace {

class WorkerPool;

/// Physical layouts the store can run on. The row store is the seed
/// implementation (time partitions + per-partition hash indexes); the
/// columnar backend stores sealed events as fixed-size column segments
/// with zone maps that let scans skip whole segments.
enum class StorageBackendKind : uint8_t {
  kRow = 0,
  kColumnar = 1,
};

/// Stable lowercase name ("row", "columnar") used by --backend flags,
/// metric names, and log lines.
const char* StorageBackendName(StorageBackendKind kind);

/// Parses a --backend flag value; nullopt if unrecognized.
std::optional<StorageBackendKind> ParseStorageBackendKind(
    std::string_view name);

/// Backend selected when EventStoreOptions does not pin one: the
/// APTRACE_BACKEND environment variable ("row" or "columnar") when set and
/// valid, else the row store. Read per call so test fixtures can flip the
/// variable in-process.
StorageBackendKind DefaultStorageBackendKind();

/// Hard ceiling on EventStoreOptions::shards: the sharded store keeps one
/// bit per shard in a uint64_t routing mask per object.
inline constexpr size_t kMaxStoreShards = 64;

/// Shard count selected when EventStoreOptions does not pin one: the
/// APTRACE_SHARDS environment variable (integer in [1, 64]) when set and
/// valid, else 1 (the monolithic store). Read per call, like
/// DefaultStorageBackendKind, so test fixtures and the sharded CI leg can
/// flip the variable per run.
size_t DefaultShardCount();

/// What a backend can do / how it charges the cost model. Callers that
/// care (benches, docs, the shell's status output) read these instead of
/// switching on the kind.
struct BackendCapabilities {
  /// Post-seal Append() keeps the store queryable (streaming ingestion).
  bool streaming_append = false;
  /// CollectSrc/CollectDest can reject whole storage units from zone
  /// metadata without touching a row; rejected units are reported in
  /// RangeScanBatch::segments_pruned and never counted as probed.
  bool zone_map_pruning = false;
  /// The storage unit the `partitions_probed`/`partitions_seeked`
  /// counters count ("time partition" or "column segment").
  const char* probe_unit = "time partition";
};

/// Cumulative I/O counters, used by the resource model and the benches.
/// One consistent snapshot is taken under the stats mutex (see
/// StorageBackend::stats()), so cross-field invariants hold in every
/// snapshot: partitions_seeked <= partitions_probed, and rows_matched
/// never decreases between snapshots.
struct StoreStats {
  uint64_t queries = 0;
  uint64_t rows_matched = 0;   // fetched and delivered to the caller
  uint64_t rows_filtered = 0;  // rejected server-side by a pushed filter
  /// Partitions (row store) or segments (columnar) whose index was
  /// consulted. Zone-map-rejected segments are *not* probed.
  uint64_t partitions_probed = 0;
  uint64_t partitions_seeked = 0;
  /// Segments skipped via zone maps alone (columnar only; 0 on row).
  uint64_t segments_pruned = 0;
  DurationMicros simulated_cost = 0;
};

/// Server-side row predicate pushed into a scan (the Refiner compiles BDL
/// heuristics into the query). Return false to discard the row cheaply.
using RowFilter = std::function<bool(const Event&)>;

/// Per-scan attribution record: what one ReplayScan touched, for callers
/// (the query profiler) that need per-query rather than cumulative
/// accounting. Deterministic — every field derives from the batch and the
/// filter outcome, never from wall time.
struct ScanProbeStats {
  uint64_t rows_delivered = 0;  // passed the filter, handed to `fn`
  uint64_t rows_filtered = 0;   // rejected server-side
  uint64_t partitions_probed = 0;
  uint64_t partitions_seeked = 0;
  uint64_t segments_pruned = 0;
  /// Shards this scan fanned out to (always 1 on a monolithic store; on
  /// the sharded store, the per-object routing mask's fan-out).
  uint64_t shard_probes = 1;
};

/// Raw output of a pure index scan: the rows a Scan* call would visit (in
/// the same ascending (timestamp, id) order) plus the probe counters the
/// cost model charges. Produced by CollectDest/CollectSrc — which are
/// side-effect-free and safe to run from any thread — and consumed by
/// ReplayScan, which applies the filter and charges exactly what the
/// fused scan would have. ScanDest/ScanSrc are implemented as
/// Collect + Replay, so the split is equivalent by construction.
/// One shard's contribution to a scatter-gathered batch (sharded store
/// only): the slice of the probe counters that this shard's backend
/// produced before the coordinator merged the per-shard row lists.
/// Summing the slices reproduces the batch-level counters exactly — the
/// reconciliation the differential tests assert.
struct ShardScanSlice {
  uint32_t shard = 0;
  uint64_t rows = 0;  // rows this shard contributed to `rows` below
  uint64_t partitions_probed = 0;
  uint64_t partitions_seeked = 0;
  uint64_t segments_pruned = 0;
  /// Rows whose event host differs from the probed object's catalog
  /// host — cross-host flows gathered from a shard the object does not
  /// call home (the boundary-edge exchange of docs/sharding.md).
  uint64_t boundary_rows = 0;
};

struct RangeScanBatch {
  std::vector<EventId> rows;
  /// Storage units consulted (partitions or segments; see
  /// BackendCapabilities::probe_unit).
  uint64_t partitions_probed = 0;
  uint64_t partitions_seeked = 0;
  /// Storage units rejected purely from zone metadata (columnar only).
  uint64_t segments_pruned = 0;
  /// Scatter-gather provenance: one slice per shard probed, in shard
  /// order. Empty on unsharded backends. Slice counters sum to the
  /// batch-level counters above.
  std::vector<ShardScanSlice> shard_slices;
};

/// Physical storage layout behind an EventStore.
///
/// A backend owns the event rows and their indexes; the EventStore façade
/// owns the ObjectCatalog and delegates every row operation here. The
/// query surface is split in two layers:
///
///   - virtual Collect* calls: pure row collection. No clock charge, no
///     stats, no metrics — each returns the matching EventIds in
///     ascending (timestamp, id) order plus the probe counters the cost
///     model will charge. Both backends MUST deliver identical row sets
///     in identical order for the same stored events, which is what makes
///     analysis output bit-identical across backends (only the simulated
///     cost may differ, via the probe counters).
///   - non-virtual replay/charge calls implemented once in this base
///     class: ReplayScan/CountDest apply filters, advance the clock by
///     CostModel::QueryCost, and record stats/metrics.
///
/// Thread-safety (the read-after-build contract): construction —
/// Append()s followed by Seal() — must happen on one thread (or be
/// externally synchronized). After Seal(), any number of threads may call
/// every const member concurrently: Collect*/Get/HasIncomingWrite/
/// FlowDestsOf touch no mutable state at all (the Executor's scan workers
/// rely on this for zero cross-thread traffic), and ReplayScan/CountDest
/// serialize only their counter updates behind a single stats mutex so
/// stats() snapshots are consistent across fields. Post-seal streaming
/// Append()s require external synchronization with all queries, exactly
/// as before the refactor.
class StorageBackend {
 public:
  virtual ~StorageBackend() = default;

  StorageBackend(const StorageBackend&) = delete;
  StorageBackend& operator=(const StorageBackend&) = delete;

  StorageBackendKind kind() const { return kind_; }
  const char* name() const { return StorageBackendName(kind_); }
  virtual const BackendCapabilities& capabilities() const = 0;

  /// Appends an event; the backend assigns and returns its EventId (dense,
  /// in append order). Before Seal() this is the bulk-load path; after
  /// Seal() the event is indexed incrementally (streaming ingestion).
  virtual EventId Append(Event event) = 0;

  /// Freezes the bulk-load phase and builds the physical layout.
  virtual void Seal() = 0;
  bool sealed() const { return sealed_; }

  virtual size_t NumEvents() const = 0;

  /// Materializes one event row by id. By value: a columnar backend
  /// reassembles the row from its column arrays, so there is no stable
  /// Event in memory to reference.
  virtual Event Get(EventId id) const = 0;

  /// Earliest/latest event timestamps; [0, 0) when empty (after Seal).
  TimeMicros MinTime() const { return min_time_; }
  TimeMicros MaxTime() const { return max_time_; }

  /// Pure row collection for ScanDest: events with FlowDest() == dest and
  /// begin <= timestamp < end, ascending (timestamp, id). No clock charge,
  /// no stats, no metrics. Safe to call concurrently on a sealed store.
  virtual RangeScanBatch CollectDest(ObjectId dest, TimeMicros begin,
                                     TimeMicros end) const = 0;

  /// Pure row collection for ScanSrc (same contract as CollectDest).
  virtual RangeScanBatch CollectSrc(ObjectId src, TimeMicros begin,
                                    TimeMicros end) const = 0;

  /// Pure row collection for ScanRange: every event in [begin, end),
  /// ascending (timestamp, id). Full scans cannot be zone-pruned, so every
  /// overlapping storage unit is counted both probed and seeked.
  virtual RangeScanBatch CollectRange(TimeMicros begin,
                                      TimeMicros end) const = 0;

  /// True if any event's flow destination is `object` within [begin, end).
  /// Used by derived attribute isReadOnly. Does not charge cost.
  virtual bool HasIncomingWrite(ObjectId object, TimeMicros begin,
                                TimeMicros end) const = 0;

  /// Distinct flow destinations of events whose source is `src` within
  /// [begin, end), sorted. Used by derived attribute isWriteThrough.
  /// No cost.
  virtual std::vector<ObjectId> FlowDestsOf(ObjectId src, TimeMicros begin,
                                            TimeMicros end) const = 0;

  /// Second half of a split scan: iterates a collected batch through
  /// `filter`/`fn` and charges clock/stats/metrics exactly as the fused
  /// ScanDest/ScanSrc would. Calling Collect* then ReplayScan is
  /// observably identical to one fused scan (same callback order, same
  /// simulated cost, same counters). Returns the rows delivered.
  /// `probe_out`, when non-null, receives this scan's own attribution
  /// record (the per-query slice of the cumulative StoreStats).
  /// Virtual so the sharded store can additionally attribute the outcome
  /// to its per-shard stats; overrides must preserve the observable
  /// contract exactly (same callback order, cost, counters).
  virtual size_t ReplayScan(const RangeScanBatch& batch, Clock* clock,
                            const std::function<void(const Event&)>& fn,
                            const RowFilter& filter = nullptr,
                            DurationMicros* cost_out = nullptr,
                            ScanProbeStats* probe_out = nullptr) const;

  /// Number of rows CollectDest would match, without fetching them
  /// (charges only probe/overhead cost — models a COUNT(*) on the index).
  virtual size_t CountDest(ObjectId dest, TimeMicros begin, TimeMicros end,
                           Clock* clock) const;

  /// --- Tiered-storage lifecycle (docs/durability.md) ---
  ///
  /// The columnar backend implements the hot-tail -> sealed -> compacted
  /// -> evicted segment lifecycle; backends whose streaming appends are
  /// indexed in place (the row store) keep these no-op defaults. All
  /// three mutators require the same external synchronization with
  /// queries as post-seal Append (the daemon runs them between quanta).
  /// None of them ever changes what a query returns — except
  /// EvictBefore, which by design removes old rows from scan results.

  /// Seals the post-seal streaming tail into the backend's durable
  /// layout, optionally parallelizing segment builds on `pool` (nullptr
  /// = sequential). Returns rows sealed.
  virtual size_t SealTail(WorkerPool* pool) {
    (void)pool;
    return 0;
  }

  /// Merges fragmented storage units back to the optimal cut (repeated
  /// tail seals leave partial segments behind). Scan results are
  /// unchanged; probe counts shrink. Returns storage units reclaimed.
  virtual size_t Compact(WorkerPool* pool) {
    (void)pool;
    return 0;
  }

  /// Retention: excludes all sealed rows with timestamps wholly before
  /// `horizon` from future scans (point lookups by id still resolve, as
  /// in an archive tier). Returns rows evicted.
  virtual size_t EvictBefore(TimeMicros horizon) {
    (void)horizon;
    return 0;
  }

  /// Rows currently in the hot streaming tail (0 for backends without
  /// one).
  virtual size_t TailRows() const { return 0; }

  /// One consistent snapshot of the cumulative I/O counters (single mutex;
  /// no torn reads across fields). Virtual: the sharded store keeps its
  /// totals and per-shard stats behind one mutex of its own so a snapshot
  /// of (total, per-shard) can never tear between the two.
  virtual StoreStats stats() const;
  virtual void ResetStats();

 protected:
  StorageBackend(StorageBackendKind kind, CostModel cost_model);

  const CostModel& cost_model() const { return cost_model_; }

  /// Records one replayed query in the process metrics (the aggregate
  /// store counters plus this backend's per-kind query counter). Factored
  /// out of ReplayScan so overrides that do their own stats attribution
  /// still charge the exact same metrics.
  void ChargeQueryMetrics(uint64_t rows_scanned, uint64_t rows_filtered,
                          uint64_t segments_pruned) const;

  /// Count-only variant of CollectDest, with the same probe accounting.
  virtual size_t CountDestRows(ObjectId dest, TimeMicros begin,
                               TimeMicros end, uint64_t* probed,
                               uint64_t* seeked,
                               uint64_t* pruned) const = 0;

  /// Derived Append() implementations call this to maintain MinTime /
  /// MaxTime; derived Seal() calls MarkSealed once the layout is built.
  void NoteAppend(const Event& event);
  void MarkSealed(bool empty);

 private:
  struct BackendMetrics;
  const BackendMetrics& Bm() const;

  StorageBackendKind kind_;
  CostModel cost_model_;
  TimeMicros min_time_ = std::numeric_limits<TimeMicros>::max();
  TimeMicros max_time_ = std::numeric_limits<TimeMicros>::min();
  bool sealed_ = false;

  /// Single lock around the whole StoreStats so stats() returns one
  /// consistent snapshot (the seed kept six independent atomics, which
  /// could tear across fields mid-query).
  mutable Mutex stats_mu_{"StorageBackend::stats_mu_"};
  mutable StoreStats stats_ APTRACE_GUARDED_BY(stats_mu_);
};

}  // namespace aptrace

#endif  // APTRACE_STORAGE_STORAGE_BACKEND_H_
