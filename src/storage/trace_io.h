#ifndef APTRACE_STORAGE_TRACE_IO_H_
#define APTRACE_STORAGE_TRACE_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "storage/event_store.h"
#include "util/status.h"

namespace aptrace {

/// Plain-text serialization of an event store (catalog + events), so
/// traces — including the staged attack cases — can be exported once and
/// re-analyzed from the CLI or other tools.
///
/// Format: line-oriented, tab-separated, one record per line.
///
///   aptrace-trace v1
///   H <host_id> <name>
///   P <object_id> <host_id> <pid> <start_time> <exename>
///   F <object_id> <host_id> <created> <modified> <accessed> <path>
///   I <object_id> <host_id> <port> <start_time> <src_ip> <dst_ip>
///   E <subject> <object> <timestamp> <amount> <action> <direction> <host>
///
/// Ids are dense and appear in creation order, so loading reproduces the
/// exact same ObjectIds/EventIds. Names/paths are the last field on the
/// line and may contain any character except '\n' and '\t'.
///
/// Write with SaveTrace on a sealed store; LoadTrace returns a sealed
/// store.
Status SaveTrace(const EventStore& store, std::ostream& os);
Status SaveTraceFile(const EventStore& store, const std::string& path);

Result<std::unique_ptr<EventStore>> LoadTrace(
    std::istream& is, EventStoreOptions options = {});
Result<std::unique_ptr<EventStore>> LoadTraceFile(
    const std::string& path, EventStoreOptions options = {});

}  // namespace aptrace

#endif  // APTRACE_STORAGE_TRACE_IO_H_
