#ifndef APTRACE_STORAGE_TRACE_IO_H_
#define APTRACE_STORAGE_TRACE_IO_H_

#include <iosfwd>
#include <memory>
#include <string>

#include "storage/event_store.h"
#include "util/status.h"

namespace aptrace {

/// On-disk trace containers. Two formats share one loader (LoadTrace
/// auto-detects by magic line):
///
/// v1 — plain text, line-oriented, tab-separated, one record per line:
///
///   aptrace-trace v1
///   H <host_id> <name>
///   P <object_id> <host_id> <pid> <start_time> <exename>
///   F <object_id> <host_id> <created> <modified> <accessed> <path>
///   I <object_id> <host_id> <port> <start_time> <src_ip> <dst_ip>
///   E <subject> <object> <timestamp> <amount> <action> <direction> <host>
///
///   Ids are dense and appear in creation order, so loading reproduces
///   the exact same ObjectIds/EventIds. Names/paths are the last field on
///   the line and may contain any character except '\n' and '\t'.
///   Malformed lines are rejected with the 1-based line number and the
///   record tag, e.g. "trace parse error at line 7 [E]: bad event fields".
///
/// v2 — binary, little-endian, fixed-width; the event block is columnar
/// (one contiguous array per field), mirroring the columnar backend's
/// segment layout so either backend round-trips through it:
///
///   "aptrace-trace v2\n"
///   u32 host_count,   host_count × (u32 len + bytes)      [hosts]
///   u64 object_count, object_count × (u8 type, u16 host,  [objects]
///       type-specific fixed fields, length-prefixed strings)
///   u64 event_count,                                      [events]
///       i64 timestamp[n]  u64 subject[n]  u64 object[n]  u64 amount[n]
///       u8 action[n]      u8 direction[n] u16 host[n]
///
///   Object and event ids are implicit (dense, in file order). Writing is
///   deterministic, so save → load → save is byte-stable. Parse errors
///   report the byte offset and section, e.g.
///   "trace parse error at byte 133 [events]: truncated timestamp column".
///
/// Write with SaveTrace on a sealed store; LoadTrace returns a sealed
/// store (on the backend selected by `options`, regardless of which
/// backend wrote the file).
enum class TraceFormat {
  kTextV1 = 1,
  kBinaryV2 = 2,
};

Status SaveTrace(const EventStore& store, std::ostream& os,
                 TraceFormat format = TraceFormat::kTextV1);
Status SaveTraceFile(const EventStore& store, const std::string& path,
                     TraceFormat format = TraceFormat::kTextV1);

Result<std::unique_ptr<EventStore>> LoadTrace(
    std::istream& is, EventStoreOptions options = {});
Result<std::unique_ptr<EventStore>> LoadTraceFile(
    const std::string& path, EventStoreOptions options = {});

}  // namespace aptrace

#endif  // APTRACE_STORAGE_TRACE_IO_H_
