#ifndef APTRACE_STORAGE_WAL_H_
#define APTRACE_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "event/event.h"
#include "storage/file_env.h"
#include "util/status.h"

namespace aptrace {

/// Write-ahead log for live ingest (docs/durability.md).
///
/// File layout: a 15-byte magic line `aptrace-wal v1\n` followed by
/// length-prefixed, CRC-checksummed records, one per accepted ingest
/// batch:
///
///   u32  payload_len          (little-endian)
///   u32  crc32(payload)       (IEEE CRC-32 of the payload bytes)
///   payload:
///     u64  batch_seq          (1-based, strictly increasing)
///     u32  event_count
///     event_count × 36-byte event:
///       i64 timestamp  u64 subject  u64 object  u64 amount
///       u16 host       u8 action    u8 direction
///
/// EventIds are not logged: the store assigns them densely at apply
/// time, and because batches are replayed in sequence order the ids come
/// out identical to the pre-crash assignment — which is what makes
/// recovered graphs bit-identical, not merely equivalent.
///
/// Durability contract: WalWriter::AppendBatch returns only after the
/// record is written AND fsync'd; the daemon acknowledges an `ingest`
/// request only after AppendBatch succeeds. Everything acknowledged is
/// therefore recoverable after SIGKILL at any instruction
/// (tests/crash_recovery_test.cc proves this at >= 100 kill points).
///
/// Failure taxonomy surfaced by the scanner and the recovery path, all
/// prefixed `STO-E0xx:` (docs/durability.md lists them):
///   E001 I/O failure reading the log      E002 bad or missing magic
///   E003 torn tail (truncated record)     E004 CRC mismatch
///   E005 implausible record structure     E006 sequence break
///   E007 append/sync failure (write path)

/// First bytes of every WAL file.
inline constexpr char kWalMagic[] = "aptrace-wal v1\n";
inline constexpr size_t kWalMagicLen = sizeof(kWalMagic) - 1;

/// Bytes of one encoded event inside a record payload.
inline constexpr size_t kWalEventBytes = 36;

/// Sanity cap on events per record; a decoded count above this marks the
/// record — and everything after it — as garbage (STO-E005).
inline constexpr uint32_t kWalMaxBatchEvents = 1u << 20;

/// IEEE CRC-32 (the zlib polynomial) over `data`.
uint32_t WalCrc32(std::string_view data);

/// Encodes one batch into the on-disk record format (header + payload).
std::string EncodeWalRecord(uint64_t seq, const std::vector<Event>& events);

/// One decoded record.
struct WalBatch {
  uint64_t seq = 0;
  std::vector<Event> events;
};

/// Longest-valid-prefix scan of raw WAL bytes.
struct WalScan {
  /// Structurally valid batches in log order. Duplicated sequence
  /// numbers (a batch replayed into the log twice) are dropped here —
  /// `duplicates_skipped` counts them — so every surviving batch has a
  /// strictly increasing seq.
  std::vector<WalBatch> batches;
  /// Bytes of the valid prefix (magic included). The file should be
  /// truncated to this length to repair a torn tail.
  uint64_t valid_bytes = 0;
  /// Bytes past the valid prefix (0 when the log is clean).
  uint64_t truncated_bytes = 0;
  uint64_t duplicates_skipped = 0;
  /// Typed `STO-E0xx:` note explaining why the scan stopped early or
  /// skipped records; empty when the log is pristine.
  std::string diagnostic;
};

/// Decodes the longest valid prefix of `bytes`. Never fails on in-log
/// corruption — a torn tail, CRC mismatch, implausible length, or
/// sequence break ends the prefix and is reported in `diagnostic`. The
/// only hard errors are an empty-file-with-content or wrong magic
/// (STO-E002): such a file is not a WAL at all, and truncating it to
/// "repair" it would destroy someone's data.
Result<WalScan> ScanWalBytes(std::string_view bytes);

/// Appender side of the WAL. One writer per data dir; the daemon holds
/// it for the process lifetime and serializes AppendBatch calls (the
/// ingest path already owns a WAL mutex — see SessionManager).
///
/// A failed append or sync rolls the file back to the last record
/// boundary (truncate + reopen), so the log never accumulates a torn
/// record from a *reported* failure — torn tails only arise from crashes
/// mid-append, exactly the case recovery repairs. After a failure the
/// writer stays usable: once the fault clears (disk space freed), later
/// appends succeed.
class WalWriter {
 public:
  /// Opens `path` for appending after recovery validated `valid_bytes`
  /// of prefix (0 or a missing file starts a fresh log, magic included).
  /// `next_seq` is the sequence number the next batch will carry.
  static Result<std::unique_ptr<WalWriter>> Open(FileEnv* env,
                                                 std::string path,
                                                 uint64_t valid_bytes,
                                                 uint64_t next_seq);

  /// Appends one batch and fsyncs. Returns the sequence number assigned,
  /// or an STO-E007 error (record rolled back, nothing acknowledged).
  Result<uint64_t> AppendBatch(const std::vector<Event>& events);

  /// Durably forgets everything up to and including `seq` by truncating
  /// the log back to its magic header. Callers must first persist the
  /// store snapshot + manifest covering those batches (SnapshotDataDir
  /// does; see recovery.h).
  Status Reset();

  uint64_t next_seq() const { return next_seq_; }
  uint64_t offset() const { return offset_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(FileEnv* env, std::string path);

  /// Truncates back to offset_ and reopens after a failed append/sync.
  void Rollback();

  FileEnv* env_;
  std::string path_;
  std::unique_ptr<WritableFile> file_;
  uint64_t offset_ = 0;
  uint64_t next_seq_ = 1;
};

}  // namespace aptrace

#endif  // APTRACE_STORAGE_WAL_H_
