#ifndef APTRACE_STORAGE_RECOVERY_H_
#define APTRACE_STORAGE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "storage/event_store.h"
#include "storage/file_env.h"
#include "storage/trace_io.h"
#include "storage/wal.h"

namespace aptrace {

/// Crash recovery for the durable ingest pipeline (docs/durability.md).
///
/// A data dir owns three artifacts:
///   wal.log          — the write-ahead log (storage/wal.h)
///   base-<seq>.trace — a v2 binary snapshot of the store covering every
///                      batch up to sequence <seq>
///   MANIFEST         — names the live snapshot; committed by atomic
///                      rename, so it either names a complete snapshot
///                      or the previous one
///
/// Recovery (OpenDataDir) loads the manifest's snapshot (or the fallback
/// trace on first boot), replays the WAL's longest valid prefix skipping
/// batches the snapshot already covers — which is why a kill between
/// snapshot and WAL reset never double-ingests — and truncates any torn
/// tail. The recovered store is bit-identical to the pre-crash store for
/// every acknowledged batch.

/// Outcome of one WAL replay.
struct WalReplayResult {
  uint64_t batches_applied = 0;
  uint64_t events_applied = 0;
  /// Batches skipped idempotently: duplicated in the log, or already
  /// covered by the snapshot (`applied_through`).
  uint64_t duplicates_skipped = 0;
  /// Highest sequence number observed (applied or skipped); 0 when the
  /// log held no batches.
  uint64_t last_seq = 0;
  /// Valid prefix length; the file was truncated to this when a torn or
  /// corrupt tail followed it.
  uint64_t valid_bytes = 0;
  uint64_t truncated_bytes = 0;
  /// Typed `STO-E0xx:` note when anything was cut or skipped; empty for
  /// a pristine log.
  std::string diagnostic;
};

/// Replays `path` onto `apply` in sequence order, skipping batches with
/// seq <= applied_through. In-log corruption ends the replay at the
/// longest valid prefix and truncates the file there — never an error.
/// Hard errors only for: unreadable file (STO-E001), wrong magic
/// (STO-E002), or an `apply` failure (propagated). A missing file is a
/// clean empty log.
Result<WalReplayResult> ReplayWal(
    FileEnv* env, const std::string& path, uint64_t applied_through,
    const std::function<Status(uint64_t seq, std::vector<Event>&& events)>&
        apply);

/// The MANIFEST contents.
struct Manifest {
  std::string base_file;        // snapshot filename within the data dir
  uint64_t base_events = 0;     // events the snapshot must contain
  uint64_t applied_through = 0; // batches covered by the snapshot
};

/// nullopt when no MANIFEST exists; STO-E008 when one exists but does
/// not parse.
Result<std::optional<Manifest>> ReadManifest(FileEnv* env,
                                             const std::string& dir);

/// Commits a manifest atomically (tmp write + rename).
Status WriteManifest(FileEnv* env, const std::string& dir,
                     const Manifest& manifest);

/// What OpenDataDir hands the daemon.
struct RecoveredStore {
  std::unique_ptr<EventStore> store;
  /// Sequence number the WalWriter should assign next.
  uint64_t next_seq = 1;
  /// Valid prefix to hand WalWriter::Open (0 = fresh log).
  uint64_t wal_valid_bytes = 0;
  /// Batches the snapshot already covered (manifest applied_through).
  uint64_t applied_through = 0;
  bool from_snapshot = false;
  WalReplayResult wal;
};

/// Opens/recovers a data dir: creates it if missing, loads the
/// manifest's snapshot (else `fallback_trace`; error when neither
/// exists), replays the WAL onto the sealed store, and repairs torn
/// tails. Events replayed from the WAL are validated against the
/// catalog — a reference to an unknown object/host means the WAL does
/// not belong to this trace and fails with STO-E010 rather than
/// diverging silently.
Result<RecoveredStore> OpenDataDir(FileEnv* env, const std::string& dir,
                                   const std::string& fallback_trace,
                                   EventStoreOptions options);

/// Persists the store as the data dir's new snapshot and resets the WAL:
/// writes base-<applied_through>.trace (v2), commits the MANIFEST by
/// atomic rename, then truncates the log through `wal` (when non-null).
/// Crash-safe at every step: until the manifest rename lands the old
/// snapshot stays authoritative, and after it lands replay skips the
/// covered batches even if the WAL reset never ran.
Status SnapshotDataDir(FileEnv* env, const std::string& dir,
                       const EventStore& store, uint64_t applied_through,
                       WalWriter* wal);

}  // namespace aptrace

#endif  // APTRACE_STORAGE_RECOVERY_H_
