#include "storage/recovery.h"

#include <sstream>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/string_util.h"

namespace aptrace {

namespace {

constexpr char kManifestMagic[] = "aptrace-manifest v1";
constexpr char kManifestName[] = "MANIFEST";
constexpr char kWalName[] = "wal.log";

struct RecoveryMetrics {
  obs::Counter* recovered_batches;
  obs::Counter* recovered_events;
  obs::Counter* duplicates_skipped;
  obs::Counter* truncated_bytes;
  obs::Counter* snapshots;
};

const RecoveryMetrics& Rm() {
  static const RecoveryMetrics m = {
      obs::Metrics().FindOrCreateCounter(obs::names::kWalRecoveredBatches),
      obs::Metrics().FindOrCreateCounter(obs::names::kWalRecoveredEvents),
      obs::Metrics().FindOrCreateCounter(obs::names::kWalDuplicatesSkipped),
      obs::Metrics().FindOrCreateCounter(obs::names::kWalTruncatedBytes),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreSnapshots),
  };
  return m;
}

bool ParseU64(const std::string& s, uint64_t* out) {
  if (s.empty()) return false;
  uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

/// STO-E010 check: a CRC-valid WAL can still belong to a different
/// trace; replaying it would corrupt the store silently.
Status ValidateWalEvent(const ObjectCatalog& catalog, const Event& e,
                        uint64_t seq) {
  const auto fail = [seq](const std::string& why) {
    return Status::InvalidArgument(
        "STO-E010: WAL batch " + std::to_string(seq) + " " + why +
        " — this WAL does not belong to the loaded trace");
  };
  if (e.subject >= catalog.size() || e.object >= catalog.size()) {
    return fail("references an unknown object");
  }
  if (e.host != kInvalidHostId && e.host >= catalog.NumHosts()) {
    return fail("references an unknown host");
  }
  if (static_cast<uint8_t>(e.action) >
          static_cast<uint8_t>(ActionType::kDelete) ||
      static_cast<uint8_t>(e.direction) > 1) {
    return fail("carries an invalid action or direction");
  }
  return Status::Ok();
}

}  // namespace

Result<WalReplayResult> ReplayWal(
    FileEnv* env, const std::string& path, uint64_t applied_through,
    const std::function<Status(uint64_t seq, std::vector<Event>&& events)>&
        apply) {
  APTRACE_SPAN("wal/recover");
  WalReplayResult out;
  if (!env->FileExists(path)) return out;  // fresh log
  auto bytes = env->ReadFileToString(path);
  if (!bytes.ok()) {
    return Status::Internal("STO-E001: " + bytes.status().message());
  }
  auto scan = ScanWalBytes(*bytes);
  if (!scan.ok()) return scan.status();

  out.valid_bytes = scan->valid_bytes;
  out.truncated_bytes = scan->truncated_bytes;
  out.duplicates_skipped = scan->duplicates_skipped;
  out.diagnostic = scan->diagnostic;
  for (WalBatch& b : scan->batches) {
    out.last_seq = std::max(out.last_seq, b.seq);
    if (b.seq <= applied_through) {
      // Covered by the snapshot: the kill landed between the manifest
      // commit and the WAL reset. Skipping here is what makes restart
      // never double-ingest.
      out.duplicates_skipped++;
      continue;
    }
    const size_t n = b.events.size();
    if (auto st = apply(b.seq, std::move(b.events)); !st.ok()) return st;
    out.batches_applied++;
    out.events_applied += n;
  }
  if (out.truncated_bytes > 0) {
    if (auto st = env->Truncate(path, out.valid_bytes); !st.ok()) {
      return Status::Internal("STO-E001: " + st.message());
    }
  }
  Rm().recovered_batches->Add(out.batches_applied);
  Rm().recovered_events->Add(out.events_applied);
  Rm().duplicates_skipped->Add(out.duplicates_skipped);
  Rm().truncated_bytes->Add(out.truncated_bytes);
  return out;
}

Result<std::optional<Manifest>> ReadManifest(FileEnv* env,
                                             const std::string& dir) {
  const std::string path = dir + "/" + kManifestName;
  if (!env->FileExists(path)) return std::optional<Manifest>();
  auto bytes = env->ReadFileToString(path);
  if (!bytes.ok()) {
    return Status::Internal("STO-E001: " + bytes.status().message());
  }
  const auto fail = [&path](const std::string& why) {
    return Status::InvalidArgument("STO-E008: corrupt manifest " + path +
                                   ": " + why);
  };
  std::istringstream is(*bytes);
  std::string line;
  if (!std::getline(is, line) || Trim(line) != kManifestMagic) {
    return fail("bad magic");
  }
  Manifest m;
  bool have_base = false, have_events = false, have_applied = false;
  while (std::getline(is, line)) {
    line = Trim(line);
    if (line.empty()) continue;
    const std::vector<std::string> f = Split(line, ' ');
    if (f.size() != 2) return fail("malformed line '" + line + "'");
    if (f[0] == "base") {
      m.base_file = f[1];
      have_base = true;
    } else if (f[0] == "base_events") {
      if (!ParseU64(f[1], &m.base_events)) {
        return fail("bad base_events '" + f[1] + "'");
      }
      have_events = true;
    } else if (f[0] == "applied_through") {
      if (!ParseU64(f[1], &m.applied_through)) {
        return fail("bad applied_through '" + f[1] + "'");
      }
      have_applied = true;
    } else {
      return fail("unknown key '" + f[0] + "'");
    }
  }
  if (!have_base || !have_events || !have_applied) {
    return fail("missing keys");
  }
  return std::optional<Manifest>(std::move(m));
}

Status WriteManifest(FileEnv* env, const std::string& dir,
                     const Manifest& manifest) {
  const std::string tmp = dir + "/" + kManifestName + ".tmp";
  const std::string path = dir + "/" + kManifestName;
  {
    // A stale tmp from a crashed snapshot may exist; start clean (the
    // handle is O_APPEND, so writes land at the new end either way).
    auto file = env->OpenForAppend(tmp);
    if (!file.ok()) return file.status();
    if (auto st = env->Truncate(tmp, 0); !st.ok()) return st;
    std::ostringstream os;
    os << kManifestMagic << "\n"
       << "base " << manifest.base_file << "\n"
       << "base_events " << manifest.base_events << "\n"
       << "applied_through " << manifest.applied_through << "\n";
    if (auto st = (*file)->Append(os.str()); !st.ok()) return st;
    if (auto st = (*file)->Sync(); !st.ok()) return st;
    if (auto st = (*file)->Close(); !st.ok()) return st;
  }
  return env->RenameFile(tmp, path);
}

Result<RecoveredStore> OpenDataDir(FileEnv* env, const std::string& dir,
                                   const std::string& fallback_trace,
                                   EventStoreOptions options) {
  if (auto st = env->CreateDir(dir); !st.ok()) return st;

  auto manifest = ReadManifest(env, dir);
  if (!manifest.ok()) return manifest.status();

  RecoveredStore out;
  if (manifest->has_value()) {
    const Manifest& m = **manifest;
    auto store = LoadTraceFile(dir + "/" + m.base_file, std::move(options));
    if (!store.ok()) {
      return Status::Internal("STO-E008: manifest names snapshot " +
                              m.base_file + " but it cannot be loaded: " +
                              store.status().message());
    }
    if ((*store)->NumEvents() != m.base_events) {
      return Status::Internal(
          "STO-E008: snapshot " + m.base_file + " holds " +
          std::to_string((*store)->NumEvents()) + " events, manifest says " +
          std::to_string(m.base_events));
    }
    out.store = std::move(store).value();
    out.applied_through = m.applied_through;
    out.from_snapshot = true;
  } else {
    if (fallback_trace.empty()) {
      return Status::InvalidArgument(
          "data dir " + dir +
          " has no snapshot and no fallback trace was given");
    }
    auto store = LoadTraceFile(fallback_trace, std::move(options));
    if (!store.ok()) return store.status();
    out.store = std::move(store).value();
  }

  EventStore* store = out.store.get();
  auto replay = ReplayWal(
      env, dir + "/" + kWalName, out.applied_through,
      [store](uint64_t seq, std::vector<Event>&& events) {
        for (Event& e : events) {
          if (auto st = ValidateWalEvent(store->catalog(), e, seq); !st.ok()) {
            return st;
          }
          store->Append(std::move(e));
        }
        return Status::Ok();
      });
  if (!replay.ok()) return replay.status();
  out.wal = std::move(replay).value();
  out.wal_valid_bytes = out.wal.valid_bytes;
  out.next_seq = std::max(out.applied_through, out.wal.last_seq) + 1;
  return out;
}

Status SnapshotDataDir(FileEnv* env, const std::string& dir,
                       const EventStore& store, uint64_t applied_through,
                       WalWriter* wal) {
  APTRACE_SPAN("store/snapshot");
  const std::string base = "base-" + std::to_string(applied_through) +
                           ".trace";
  const std::string tmp = dir + "/" + base + ".tmp";
  if (auto st = SaveTraceFile(store, tmp, TraceFormat::kBinaryV2); !st.ok()) {
    return st;
  }
  if (auto st = env->RenameFile(tmp, dir + "/" + base); !st.ok()) return st;
  Manifest m;
  m.base_file = base;
  m.base_events = store.NumEvents();
  m.applied_through = applied_through;
  // The rename inside WriteManifest is the commit point: before it the
  // old snapshot is authoritative, after it the new one is.
  if (auto st = WriteManifest(env, dir, m); !st.ok()) return st;
  if (wal != nullptr) {
    if (auto st = wal->Reset(); !st.ok()) return st;
  }
  Rm().snapshots->Add();
  return Status::Ok();
}

}  // namespace aptrace
