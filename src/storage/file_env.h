#ifndef APTRACE_STORAGE_FILE_ENV_H_
#define APTRACE_STORAGE_FILE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "util/status.h"

namespace aptrace {

/// Append-only file handle handed out by a FileEnv. The write path of the
/// WAL is expressed entirely against this interface so a fault-injecting
/// environment can interpose short writes, ENOSPC, and fsync failures
/// deterministically (tests/wal_test.cc) without tmpfs tricks.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file. Either the whole buffer lands
  /// or an error is returned; on error the file may hold a *prefix* of
  /// `data` (a short write) — callers that need atomicity truncate back
  /// to their last known-good offset (see WalWriter::AppendRecord).
  virtual Status Append(std::string_view data) = 0;

  /// Durability barrier (fsync). On return every previously appended byte
  /// is on stable storage. A failed sync leaves the durable state of the
  /// trailing bytes unknown.
  virtual Status Sync() = 0;

  virtual Status Close() = 0;
};

/// Pluggable filesystem used by the durable-ingest pipeline (WAL,
/// manifest, recovery — src/storage/wal.h, src/storage/recovery.h).
/// Production code uses Posix(); tests wrap it in FaultInjectingFileEnv
/// (storage/fault_env.h) to exercise every failure mode.
///
/// Thread-safety: the env itself is stateless and safe from any thread;
/// individual WritableFile handles require external synchronization,
/// exactly like the FILE* they wrap.
class FileEnv {
 public:
  virtual ~FileEnv() = default;

  /// Opens (creating if absent) `path` for appending.
  virtual Result<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) = 0;

  /// Reads the entire file into a string (binary-exact).
  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  /// Truncates `path` to exactly `size` bytes (used to cut torn WAL
  /// tails and to roll back failed appends).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (rename(2) semantics); the
  /// manifest commit point relies on this atomicity.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual Status RemoveFile(const std::string& path) = 0;

  /// Creates one directory level; ok if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// The process-wide POSIX environment (never deleted).
  static FileEnv* Posix();
};

}  // namespace aptrace

#endif  // APTRACE_STORAGE_FILE_ENV_H_
