#ifndef APTRACE_STORAGE_COST_MODEL_H_
#define APTRACE_STORAGE_COST_MODEL_H_

#include <cstdint>

#include "util/clock.h"

namespace aptrace {

/// Simulated I/O cost of a backward-dependency query against the audit-log
/// database.
///
/// The paper's deployment stores 13 TB of events in PostgreSQL; the waiting
/// time between dependency-graph updates is dominated by how many index
/// rows a query must fetch before it returns. We reproduce that with a
/// linear model charged to the engine's SimClock:
///
///   cost = query_overhead
///        + partitions_probed * per_partition_probe
///        + partitions_with_matches * per_partition_seek
///        + rows_matched * per_row_fetch
///
/// Defaults are calibrated against the paper's own numbers. Two
/// constraints pin the regime:
///  * Table I: the 30.75K-event A1 graph takes over four hours to
///    generate, i.e. the *per-node query* floor is ~0.5 s (plan + whole-
///    history index traversal across the partitioned 13 TB store) — the
///    explosion cost is breadth (tens of thousands of queries), not
///    result size;
///  * Table II: the worst baseline waits are ~20 minutes, which for the
///    biggest hub nodes (10^4..10^5 dependents) implies a per-row fetch
///    cost of single-digit milliseconds.
/// A monolithic scan therefore costs seconds before its first row and
/// minutes-to-hours on hub nodes, while a narrow execution window costs
/// a fraction of a second — the asymmetry Table II quantifies.
struct CostModel {
  /// Fixed per-query cost (planning, round trip).
  DurationMicros query_overhead = 300 * kMicrosPerMilli;

  /// Cost of probing a time partition that overlaps the scan range
  /// (partition-pruning metadata check + index descent). This term is
  /// what makes a monolithic whole-history scan expensive even when it
  /// matches few rows — a one-month range costs ~6 s before the first row
  /// — while a narrow execution window costs milliseconds. It reproduces
  /// the baseline's ~7 s average update time (Table II).
  DurationMicros per_partition_probe = 8 * kMicrosPerMilli;

  /// Cost of the first index descent in a partition that has matches.
  DurationMicros per_partition_seek = 20 * kMicrosPerMilli;

  /// Cost of fetching one matched row (index fetch + metadata join).
  DurationMicros per_row_fetch = 8 * kMicrosPerMilli;

  /// Cost of a row discarded *server-side* by pushed-down heuristics. The
  /// Refiner compiles BDL where-filters into the query itself (paper
  /// Figure 3: BDL becomes "executable instructions"), so excluded rows
  /// are rejected by a cheap predicate over the index row instead of
  /// being fetched and joined.
  DurationMicros per_row_filtered = 1 * kMicrosPerMilli;

  DurationMicros QueryCost(uint64_t rows_fetched, uint64_t rows_filtered,
                           uint64_t partitions_probed,
                           uint64_t partitions_with_matches) const {
    return query_overhead +
           static_cast<DurationMicros>(partitions_probed) *
               per_partition_probe +
           static_cast<DurationMicros>(partitions_with_matches) *
               per_partition_seek +
           static_cast<DurationMicros>(rows_fetched) * per_row_fetch +
           static_cast<DurationMicros>(rows_filtered) * per_row_filtered;
  }

  /// A zero-cost model (for unit tests that only care about results).
  static CostModel Free() {
    CostModel m;
    m.query_overhead = 0;
    m.per_partition_probe = 0;
    m.per_partition_seek = 0;
    m.per_row_fetch = 0;
    m.per_row_filtered = 0;
    return m;
  }
};

}  // namespace aptrace

#endif  // APTRACE_STORAGE_COST_MODEL_H_
