#include "storage/wal.h"

#include <array>
#include <utility>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace aptrace {

namespace {

struct WalMetrics {
  obs::Counter* appended_batches;
  obs::Counter* appended_events;
  obs::Counter* appended_bytes;
  obs::Counter* syncs;
  obs::Counter* append_failures;
};

const WalMetrics& Wm() {
  static const WalMetrics m = {
      obs::Metrics().FindOrCreateCounter(obs::names::kWalAppendedBatches),
      obs::Metrics().FindOrCreateCounter(obs::names::kWalAppendedEvents),
      obs::Metrics().FindOrCreateCounter(obs::names::kWalAppendedBytes),
      obs::Metrics().FindOrCreateCounter(obs::names::kWalSyncs),
      obs::Metrics().FindOrCreateCounter(obs::names::kWalAppendFailures),
  };
  return m;
}

constexpr size_t kRecordHeaderBytes = 8;  // u32 len + u32 crc
constexpr size_t kPayloadHeaderBytes = 12;  // u64 seq + u32 count

void PutU16(std::string& out, uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const unsigned char* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const unsigned char* p) {
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

std::string Diag(const char* code, const std::string& why) {
  return std::string(code) + ": " + why;
}

}  // namespace

uint32_t WalCrc32(std::string_view data) {
  static const std::array<uint32_t, 256> kTable = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::string EncodeWalRecord(uint64_t seq, const std::vector<Event>& events) {
  std::string payload;
  payload.reserve(kPayloadHeaderBytes + events.size() * kWalEventBytes);
  PutU64(payload, seq);
  PutU32(payload, static_cast<uint32_t>(events.size()));
  for (const Event& e : events) {
    PutU64(payload, static_cast<uint64_t>(e.timestamp));
    PutU64(payload, e.subject);
    PutU64(payload, e.object);
    PutU64(payload, e.amount);
    PutU16(payload, e.host);
    payload.push_back(static_cast<char>(e.action));
    payload.push_back(static_cast<char>(e.direction));
  }
  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size());
  PutU32(record, static_cast<uint32_t>(payload.size()));
  PutU32(record, WalCrc32(payload));
  record += payload;
  return record;
}

Result<WalScan> ScanWalBytes(std::string_view bytes) {
  WalScan scan;
  if (bytes.empty()) {
    // A missing or empty file is a fresh log, not corruption.
    return scan;
  }
  if (bytes.size() < kWalMagicLen ||
      bytes.substr(0, kWalMagicLen) != std::string_view(kWalMagic)) {
    return Status::InvalidArgument(
        Diag("STO-E002", "bad or missing WAL magic — not an aptrace WAL; "
                         "refusing to repair"));
  }

  size_t pos = kWalMagicLen;
  scan.valid_bytes = pos;
  uint64_t prev_seq = 0;
  bool have_prev = false;
  while (pos < bytes.size()) {
    const size_t remaining = bytes.size() - pos;
    if (remaining < kRecordHeaderBytes) {
      scan.diagnostic = Diag(
          "STO-E003", "torn WAL tail at byte " + std::to_string(pos) +
                          ": truncated record header (" +
                          std::to_string(remaining) + " bytes)");
      break;
    }
    const auto* p = reinterpret_cast<const unsigned char*>(bytes.data() + pos);
    const uint32_t payload_len = GetU32(p);
    const uint32_t crc = GetU32(p + 4);
    if (payload_len < kPayloadHeaderBytes ||
        (payload_len - kPayloadHeaderBytes) % kWalEventBytes != 0 ||
        (payload_len - kPayloadHeaderBytes) / kWalEventBytes >
            kWalMaxBatchEvents) {
      scan.diagnostic =
          Diag("STO-E005", "implausible record length " +
                               std::to_string(payload_len) + " at byte " +
                               std::to_string(pos));
      break;
    }
    if (remaining - kRecordHeaderBytes < payload_len) {
      scan.diagnostic = Diag(
          "STO-E003", "torn WAL tail at byte " + std::to_string(pos) +
                          ": record needs " + std::to_string(payload_len) +
                          " payload bytes, file has " +
                          std::to_string(remaining - kRecordHeaderBytes));
      break;
    }
    const std::string_view payload =
        bytes.substr(pos + kRecordHeaderBytes, payload_len);
    if (WalCrc32(payload) != crc) {
      scan.diagnostic =
          Diag("STO-E004", "CRC mismatch at byte " + std::to_string(pos));
      break;
    }
    const auto* pl = reinterpret_cast<const unsigned char*>(payload.data());
    const uint64_t seq = GetU64(pl);
    const uint32_t count = GetU32(pl + 8);
    if (static_cast<uint64_t>(count) * kWalEventBytes +
            kPayloadHeaderBytes !=
        payload_len) {
      scan.diagnostic =
          Diag("STO-E005", "event count " + std::to_string(count) +
                               " disagrees with record length at byte " +
                               std::to_string(pos));
      break;
    }
    if (have_prev && seq > prev_seq + 1) {
      // A forward jump cannot come from our writer; the bytes are
      // CRC-valid garbage (or a spliced foreign log). End of trust.
      scan.diagnostic =
          Diag("STO-E006", "sequence break at byte " + std::to_string(pos) +
                               ": batch " + std::to_string(seq) + " after " +
                               std::to_string(prev_seq));
      break;
    }
    if (have_prev && seq <= prev_seq) {
      // A duplicated batch (retried append that landed twice) is valid
      // bytes already applied once: skip idempotently, keep scanning.
      scan.duplicates_skipped++;
      if (scan.diagnostic.empty()) {
        scan.diagnostic =
            Diag("STO-E006", "duplicate batch seq " + std::to_string(seq) +
                                 " at byte " + std::to_string(pos) +
                                 " skipped (idempotent replay)");
      }
      pos += kRecordHeaderBytes + payload_len;
      scan.valid_bytes = pos;
      continue;
    }
    WalBatch batch;
    batch.seq = seq;
    batch.events.reserve(count);
    const unsigned char* ev = pl + kPayloadHeaderBytes;
    for (uint32_t i = 0; i < count; ++i, ev += kWalEventBytes) {
      Event e;
      e.timestamp = static_cast<TimeMicros>(GetU64(ev));
      e.subject = GetU64(ev + 8);
      e.object = GetU64(ev + 16);
      e.amount = GetU64(ev + 24);
      e.host = GetU16(ev + 32);
      e.action = static_cast<ActionType>(ev[34]);
      e.direction = static_cast<FlowDirection>(ev[35]);
      batch.events.push_back(e);
    }
    scan.batches.push_back(std::move(batch));
    prev_seq = seq;
    have_prev = true;
    pos += kRecordHeaderBytes + payload_len;
    scan.valid_bytes = pos;
  }
  scan.truncated_bytes = bytes.size() - scan.valid_bytes;
  return scan;
}

WalWriter::WalWriter(FileEnv* env, std::string path)
    : env_(env), path_(std::move(path)) {}

Result<std::unique_ptr<WalWriter>> WalWriter::Open(FileEnv* env,
                                                   std::string path,
                                                   uint64_t valid_bytes,
                                                   uint64_t next_seq) {
  std::unique_ptr<WalWriter> w(new WalWriter(env, std::move(path)));
  const bool fresh = valid_bytes < kWalMagicLen;
  if (env->FileExists(w->path_)) {
    // Recovery reports the valid prefix; enforce it on disk so appends
    // never build on top of a torn tail.
    const uint64_t cut = fresh ? 0 : valid_bytes;
    auto size = env->FileSize(w->path_);
    if (!size.ok()) {
      return Status::Internal("STO-E001: " + size.status().message());
    }
    if (*size != cut) {
      if (auto st = env->Truncate(w->path_, cut); !st.ok()) {
        return Status::Internal("STO-E001: " + st.message());
      }
    }
  }
  auto file = env->OpenForAppend(w->path_);
  if (!file.ok()) {
    return Status::Internal("STO-E001: " + file.status().message());
  }
  w->file_ = std::move(file).value();
  if (fresh) {
    if (auto st = w->file_->Append(std::string_view(kWalMagic, kWalMagicLen));
        !st.ok()) {
      return Status::Internal("STO-E007: " + st.message());
    }
    if (auto st = w->file_->Sync(); !st.ok()) {
      return Status::Internal("STO-E007: " + st.message());
    }
    w->offset_ = kWalMagicLen;
  } else {
    w->offset_ = valid_bytes;
  }
  w->next_seq_ = next_seq == 0 ? 1 : next_seq;
  return w;
}

void WalWriter::Rollback() {
  // Best effort: drop the handle, cut the file back to the last record
  // boundary, reopen. If any step fails the next append reports it.
  file_.reset();
  (void)env_->Truncate(path_, offset_);
  auto file = env_->OpenForAppend(path_);
  if (file.ok()) file_ = std::move(file).value();
}

Result<uint64_t> WalWriter::AppendBatch(const std::vector<Event>& events) {
  APTRACE_SPAN("wal/append");
  if (file_ == nullptr) {
    // A previous rollback failed to reopen; retry before giving up.
    auto file = env_->OpenForAppend(path_);
    if (!file.ok()) {
      Wm().append_failures->Add();
      return Status::Internal("STO-E007: WAL reopen failed: " +
                              file.status().message());
    }
    file_ = std::move(file).value();
  }
  const std::string record = EncodeWalRecord(next_seq_, events);
  if (auto st = file_->Append(record); !st.ok()) {
    Rollback();
    Wm().append_failures->Add();
    return Status::Internal("STO-E007: WAL append failed: " + st.message());
  }
  if (auto st = file_->Sync(); !st.ok()) {
    // The durable state of the record is unknown after a failed fsync;
    // roll it back so the acknowledged log stays exactly the synced
    // prefix (recovery tolerates the torn bytes either way).
    Rollback();
    Wm().append_failures->Add();
    return Status::Internal("STO-E007: WAL fsync failed: " + st.message());
  }
  offset_ += record.size();
  const uint64_t seq = next_seq_++;
  Wm().appended_batches->Add();
  Wm().appended_events->Add(events.size());
  Wm().appended_bytes->Add(record.size());
  Wm().syncs->Add();
  return seq;
}

Status WalWriter::Reset() {
  file_.reset();
  if (auto st = env_->Truncate(path_, kWalMagicLen); !st.ok()) {
    return Status::Internal("STO-E001: " + st.message());
  }
  auto file = env_->OpenForAppend(path_);
  if (!file.ok()) {
    return Status::Internal("STO-E001: " + file.status().message());
  }
  file_ = std::move(file).value();
  offset_ = kWalMagicLen;
  return Status::Ok();
}

}  // namespace aptrace
