#ifndef APTRACE_STORAGE_SHARDED_STORE_H_
#define APTRACE_STORAGE_SHARDED_STORE_H_

#include <memory>
#include <vector>

#include "event/catalog.h"
#include "storage/storage_backend.h"
#include "util/sync.h"

namespace aptrace {

struct EventStoreOptions;

/// Sharded store engine (docs/sharding.md): partitions the sealed store
/// into N shards keyed by (host, time-partition), each shard owning its
/// own StorageBackend instance — row or columnar, the PR 4 abstraction
/// unchanged — and turns every window scan into scatter-gather.
///
/// Routing. An appended event lands on shard
///
///   (event.host + floor(timestamp / partition_micros)) mod N
///
/// so one host's history spreads over time slices (no hot shard for a
/// chatty host) while any single (host, slice) cell stays whole on one
/// shard. The coordinator assigns the *global* EventId (dense append
/// order, exactly what the monolithic store would have assigned) and
/// keeps the gid <-> (shard, local id) mapping; rows handed back to
/// callers always carry the global id, which is what keeps analysis
/// output bit-identical to the single-shard run.
///
/// Scatter-gather. CollectDest/CollectSrc consult a per-object shard
/// mask (one bit per shard that ever stored a row with that flow
/// source/destination — maintained at append time) and fan the probe out
/// only to those shards. Each shard returns its rows in its own
/// ascending (timestamp, local id) order plus its probe counters; the
/// coordinator translates local ids to global ids, performs a
/// deterministic (timestamp, gid) k-way merge, and records one
/// ShardScanSlice per shard probed. Because local-id order equals
/// global-id order within a shard, the merged batch is exactly the
/// (timestamp, id)-ordered row set the monolithic backend would return.
/// Rows whose event host differs from the probed object's catalog host —
/// cross-host flows that live on a shard the object does not call home —
/// are the *boundary edges*; the mask-driven fan-out is the boundary-edge
/// exchange that folds them back into the result.
///
/// Replay stays single-threaded at the coordinator: ReplayScan applies
/// the filter and charges clock/metrics exactly like the base contract,
/// and additionally attributes the outcome (rows, probes, cost net of the
/// per-query overhead) to per-shard StoreStats. Totals and per-shard
/// stats live behind ONE mutex, so a snapshot of (total, per shard) can
/// never tear: in every snapshot the shard counters sum exactly to the
/// totals (simulated cost reconciles as
/// sum(shard costs) + queries * query_overhead == total cost).
///
/// Thread-safety: identical to StorageBackend's read-after-build
/// contract. Collect*/Get/HasIncomingWrite/FlowDestsOf touch no mutable
/// state; ReplayScan/CountDest serialize counter updates behind the
/// single aggregation mutex (a leaf lock; see docs/concurrency.md).
class ShardedStore final : public StorageBackend {
 public:
  /// One shard's row in a consistent stats snapshot (/sessions, the
  /// shard-scaling bench, and the reconciliation tests read these).
  struct ShardStatsRow {
    uint32_t shard = 0;
    uint64_t resident_rows = 0;  // appends routed to this shard
    uint64_t tail_rows = 0;      // rows in the shard's hot tail
    StoreStats stats;  // queries counts scans that touched this shard
    uint64_t boundary_rows = 0;  // delivered cross-host rows
  };

  /// A (total, per-shard) snapshot taken under one lock: the per-shard
  /// row/probe counters sum exactly to `total` in every snapshot.
  struct Snapshot {
    StoreStats total;
    std::vector<ShardStatsRow> shards;
  };

  /// `catalog` supplies object -> home-host lookups for boundary-row
  /// accounting; it must outlive the store (the owning EventStore passes
  /// its own catalog).
  ShardedStore(const EventStoreOptions& options, const ObjectCatalog* catalog);
  ~ShardedStore() override;

  size_t shard_count() const { return shards_.size(); }
  const StorageBackend& shard(size_t i) const { return *shards_[i].backend; }

  const BackendCapabilities& capabilities() const override;

  EventId Append(Event event) override;
  void Seal() override;
  size_t NumEvents() const override { return meta_.size(); }
  Event Get(EventId id) const override;

  RangeScanBatch CollectDest(ObjectId dest, TimeMicros begin,
                             TimeMicros end) const override;
  RangeScanBatch CollectSrc(ObjectId src, TimeMicros begin,
                            TimeMicros end) const override;
  RangeScanBatch CollectRange(TimeMicros begin, TimeMicros end) const override;

  bool HasIncomingWrite(ObjectId object, TimeMicros begin,
                        TimeMicros end) const override;
  std::vector<ObjectId> FlowDestsOf(ObjectId src, TimeMicros begin,
                                    TimeMicros end) const override;

  size_t ReplayScan(const RangeScanBatch& batch, Clock* clock,
                    const std::function<void(const Event&)>& fn,
                    const RowFilter& filter = nullptr,
                    DurationMicros* cost_out = nullptr,
                    ScanProbeStats* probe_out = nullptr) const override;

  size_t CountDest(ObjectId dest, TimeMicros begin, TimeMicros end,
                   Clock* clock) const override;

  /// Tiered-storage lifecycle: each call fans out to every shard (same
  /// external-synchronization contract as the base class).
  size_t SealTail(WorkerPool* pool) override;
  size_t Compact(WorkerPool* pool) override;
  size_t EvictBefore(TimeMicros horizon) override;
  size_t TailRows() const override;

  StoreStats stats() const override;
  void ResetStats() override;

  /// One consistent (total, per-shard) snapshot under a single lock.
  Snapshot TakeSnapshot() const;

 protected:
  size_t CountDestRows(ObjectId dest, TimeMicros begin, TimeMicros end,
                       uint64_t* probed, uint64_t* seeked,
                       uint64_t* pruned) const override;

 private:
  struct Shard {
    std::unique_ptr<StorageBackend> backend;
    std::vector<EventId> gid_of;  // local id -> global id (append order)
  };

  /// Coordinator-side row directory: everything the merge and boundary
  /// accounting need without materializing the row from its shard.
  struct RowMeta {
    EventId lid = 0;  // local id within `shard`
    TimeMicros timestamp = 0;
    uint32_t shard = 0;
    HostId host = kInvalidHostId;
  };

  uint32_t RouteShard(HostId host, TimeMicros timestamp) const;

  /// Shared scatter-gather walk behind CollectDest/CollectSrc/
  /// CollectRange: probes the masked shards (concurrently on the fan-out
  /// pool when configured, else sequentially), translates local to global
  /// ids, counts boundary rows against `home`, and k-way merges by
  /// (timestamp, gid). `mask` bit s selects shard s. A probe that throws
  /// (a remote shard down) is caught per shard; the call then raises one
  /// dist::DistError(DST-E005) naming every missing shard — degraded
  /// mode, never a hang.
  RangeScanBatch Gather(bool by_src, ObjectId key, uint64_t mask,
                        HostId home, TimeMicros begin, TimeMicros end) const;

  /// Shard mask for an object (0 when the object never appeared).
  uint64_t MaskFor(const std::vector<uint64_t>& masks, ObjectId id) const {
    return id < masks.size() ? masks[id] : 0;
  }

  /// Charges one replayed/counted query to the totals and the per-shard
  /// stats under the single aggregation mutex. `delivered`/`filtered`
  /// are per-shard row outcomes (indexed by shard), `cost` the full
  /// query cost including the per-query overhead.
  void ChargeSharded(const RangeScanBatch& batch,
                     const std::vector<uint64_t>& delivered,
                     const std::vector<uint64_t>& filtered, uint64_t rows,
                     uint64_t n_filtered, DurationMicros cost) const;

  const ObjectCatalog* catalog_;
  DurationMicros partition_micros_;
  /// Dedicated fan-out workers for Gather when
  /// EventStoreOptions::dist_fanout_threads > 0 (remote shards); null =
  /// sequential probes. Gathers running concurrently share the pool but
  /// join on their own per-call latch, never on pool idleness.
  std::unique_ptr<WorkerPool> fanout_pool_;
  std::vector<Shard> shards_;
  std::vector<RowMeta> meta_;  // indexed by global EventId

  /// Per-object routing masks, indexed by ObjectId and maintained at
  /// append time: bit s set when shard s holds at least one row whose
  /// flow destination (resp. source) is the object.
  std::vector<uint64_t> dest_shards_;
  std::vector<uint64_t> src_shards_;

  struct ShardMetrics;
  const ShardMetrics& Sm() const;

  /// Single lock for totals AND per-shard stats: snapshots are
  /// reconciliation-exact by construction (satellite: no torn
  /// total-vs-shard reads while N shards charge concurrently).
  mutable Mutex agg_mu_{"ShardedStore::agg_mu_"};
  mutable StoreStats total_ APTRACE_GUARDED_BY(agg_mu_);
  mutable std::vector<StoreStats> shard_stats_ APTRACE_GUARDED_BY(agg_mu_);
  mutable std::vector<uint64_t> shard_boundary_ APTRACE_GUARDED_BY(agg_mu_);
};

}  // namespace aptrace

#endif  // APTRACE_STORAGE_SHARDED_STORE_H_
