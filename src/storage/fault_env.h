#ifndef APTRACE_STORAGE_FAULT_ENV_H_
#define APTRACE_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>

#include "storage/file_env.h"
#include "util/sync.h"

namespace aptrace {

/// FileEnv decorator that injects write-path failures deterministically:
/// a byte budget models a disk filling up (ENOSPC), optional partial
/// writes model torn appends (power cut mid-write), and scheduled sync
/// failures model a storage stack refusing the durability barrier. The
/// WAL fault suites (tests/wal_test.cc) and the CI ENOSPC/short-write
/// smoke drive every failure mode through this class — no tmpfs or
/// device tricks needed.
///
/// Read-side and metadata calls always forward untouched: recovery code
/// must be able to inspect exactly the bytes the faulty writes left
/// behind.
///
/// Thread-safety: all knobs and counters are guarded by one internal
/// mutex; handles from OpenForAppend share that state, so concurrent
/// writers observe one global budget (like a real disk).
class FaultInjectingFileEnv final : public FileEnv {
 public:
  static constexpr uint64_t kUnlimited =
      std::numeric_limits<uint64_t>::max();

  /// `base` must outlive this env (typically FileEnv::Posix()).
  explicit FaultInjectingFileEnv(FileEnv* base) : base_(base) {}

  /// Bytes further Append() calls may land in total across all files;
  /// an append that would exceed it fails like ENOSPC. kUnlimited (the
  /// default) disables the budget.
  void SetWriteBudget(uint64_t bytes);

  /// When on, an append that busts the budget first lands the prefix
  /// that still fits (a short write); when off the append fails whole.
  void SetPartialWrites(bool on);

  /// The next `n` Sync() calls fail (after the data may already have
  /// been handed to the OS — durable state unknown, as with real fsync
  /// failure).
  void FailNextSyncs(uint64_t n);

  uint64_t bytes_written() const;
  uint64_t write_failures() const;
  uint64_t sync_failures() const;

  Result<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) override;
  Result<std::string> ReadFileToString(const std::string& path) override {
    return base_->ReadFileToString(path);
  }
  Status Truncate(const std::string& path, uint64_t size) override {
    return base_->Truncate(path, size);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override {
    return base_->RenameFile(from, to);
  }
  Status RemoveFile(const std::string& path) override {
    return base_->RemoveFile(path);
  }
  Status CreateDir(const std::string& path) override {
    return base_->CreateDir(path);
  }

 private:
  friend class FaultInjectedFile;

  FileEnv* base_;
  mutable Mutex mu_{"FaultInjectingFileEnv::mu_"};
  uint64_t write_budget_ APTRACE_GUARDED_BY(mu_) = kUnlimited;
  bool partial_writes_ APTRACE_GUARDED_BY(mu_) = false;
  uint64_t sync_failures_pending_ APTRACE_GUARDED_BY(mu_) = 0;
  uint64_t bytes_written_ APTRACE_GUARDED_BY(mu_) = 0;
  uint64_t write_failures_ APTRACE_GUARDED_BY(mu_) = 0;
  uint64_t sync_failures_ APTRACE_GUARDED_BY(mu_) = 0;
};

}  // namespace aptrace

#endif  // APTRACE_STORAGE_FAULT_ENV_H_
