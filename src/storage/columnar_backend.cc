#include "storage/columnar_backend.h"

#include <algorithm>
#include <cassert>
#include <limits>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/worker_pool.h"

namespace aptrace {

namespace {

constexpr size_t kDefaultSegmentRows = 4096;

struct LifecycleMetrics {
  obs::Counter* tail_seals;
  obs::Counter* tail_sealed_rows;
  obs::Counter* compactions;
  obs::Counter* segments_compacted;
  obs::Counter* rows_evicted;
  obs::Counter* segments_evicted;
};

const LifecycleMetrics& Lm() {
  static const LifecycleMetrics m = {
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreTailSeals),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreTailSealedRows),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreCompactions),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreSegmentsCompacted),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreRowsEvicted),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreSegmentsEvicted),
  };
  return m;
}

bool EventTsIdLess(const Event& a, const Event& b) {
  if (a.timestamp != b.timestamp) return a.timestamp < b.timestamp;
  return a.id < b.id;
}

/// (timestamp, id) pairs are the scan-order currency: segment output is
/// already globally sorted, tail output is sorted, and the two merge by
/// this ordering.
struct TsId {
  TimeMicros ts;
  EventId id;
};

bool TsIdLess(const TsId& a, const TsId& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  return a.id < b.id;
}

}  // namespace

ColumnarSegmentBackend::ColumnarSegmentBackend(CostModel cost_model,
                                               size_t segment_rows)
    : StorageBackend(StorageBackendKind::kColumnar, cost_model),
      segment_rows_(segment_rows == 0 ? kDefaultSegmentRows : segment_rows) {}

const BackendCapabilities& ColumnarSegmentBackend::capabilities() const {
  static const BackendCapabilities kCaps = {
      .streaming_append = true,
      .zone_map_pruning = true,
      .probe_unit = "column segment",
  };
  return kCaps;
}

bool ColumnarSegmentBackend::FingerprintMayContain(const Fingerprint& bits,
                                                   ObjectId id) {
  const size_t bit = id % (kFingerprintWords * 64);
  return (bits[bit / 64] >> (bit % 64)) & 1u;
}

void ColumnarSegmentBackend::FingerprintAdd(Fingerprint& bits, ObjectId id) {
  const size_t bit = id % (kFingerprintWords * 64);
  bits[bit / 64] |= uint64_t{1} << (bit % 64);
}

size_t ColumnarSegmentBackend::NumEvents() const {
  if (!sealed()) return staging_.size();
  return sealed_rows_ + tail_.size();
}

EventId ColumnarSegmentBackend::Append(Event event) {
  if (!sealed()) {
    const EventId id = staging_.size();
    event.id = id;
    NoteAppend(event);
    staging_.push_back(event);
    return id;
  }
  // Streaming path: the tail is append-ordered (id order); the sorted view
  // keeps (timestamp, id) scan order available without resealing.
  const EventId id = sealed_rows_ + tail_.size();
  event.id = id;
  NoteAppend(event);
  const uint32_t pos = static_cast<uint32_t>(tail_.size());
  tail_.push_back(event);
  const auto by_time = [this](uint32_t a, uint32_t b) {
    const Event& ea = tail_[a];
    const Event& eb = tail_[b];
    if (ea.timestamp != eb.timestamp) return ea.timestamp < eb.timestamp;
    return ea.id < eb.id;
  };
  tail_sorted_.insert(
      std::upper_bound(tail_sorted_.begin(), tail_sorted_.end(), pos, by_time),
      pos);
  return id;
}

void ColumnarSegmentBackend::Seal() {
  if (sealed()) return;
  APTRACE_SPAN("store/seal");
  // Build-phase ids are dense append indexes, so sorting the rows by
  // (timestamp, id) is the same global order the seed computed through an
  // index array.
  std::sort(staging_.begin(), staging_.end(), EventTsIdLess);
  sealed_rows_ = staging_.size();
  row_refs_.resize(sealed_rows_);
  RecutInto(std::move(staging_), 0, nullptr);
  staging_.clear();
  staging_.shrink_to_fit();
  MarkSealed(sealed_rows_ == 0);
}

void ColumnarSegmentBackend::BuildSegment(const std::vector<Event>& rows,
                                          size_t base, size_t n,
                                          uint32_t seg_index, Segment* out) {
  Segment s;
  s.ids.reserve(n);
  s.ts.reserve(n);
  s.subject.reserve(n);
  s.object.reserve(n);
  s.amount.reserve(n);
  s.action.reserve(n);
  s.direction.reserve(n);
  s.host.reserve(n);
  ZoneMap z;
  z.ts_min = std::numeric_limits<TimeMicros>::max();
  z.ts_max = std::numeric_limits<TimeMicros>::min();
  z.src_min = ~static_cast<ObjectId>(0);
  z.src_max = 0;
  z.dest_min = ~static_cast<ObjectId>(0);
  z.dest_max = 0;
  for (size_t i = 0; i < n; ++i) {
    const Event& e = rows[base + i];
    row_refs_[e.id] = {seg_index, static_cast<uint32_t>(i)};
    s.ids.push_back(e.id);
    s.ts.push_back(e.timestamp);
    s.subject.push_back(e.subject);
    s.object.push_back(e.object);
    s.amount.push_back(e.amount);
    s.action.push_back(static_cast<uint8_t>(e.action));
    s.direction.push_back(static_cast<uint8_t>(e.direction));
    s.host.push_back(e.host);
    const ObjectId src = e.FlowSource();
    const ObjectId dest = e.FlowDest();
    z.ts_min = std::min(z.ts_min, e.timestamp);
    z.ts_max = std::max(z.ts_max, e.timestamp);
    z.src_min = std::min(z.src_min, src);
    z.src_max = std::max(z.src_max, src);
    z.dest_min = std::min(z.dest_min, dest);
    z.dest_max = std::max(z.dest_max, dest);
    z.host_bits |= uint64_t{1} << (e.host % 64);
    z.action_bits |= static_cast<uint8_t>(1u << static_cast<int>(e.action));
    FingerprintAdd(z.src_bits, src);
    FingerprintAdd(z.dest_bits, dest);
  }
  s.zone = z;
  *out = std::move(s);
}

void ColumnarSegmentBackend::RecutInto(std::vector<Event> rows,
                                       size_t keep_segments,
                                       WorkerPool* pool) {
  const size_t total = rows.size();
  const size_t chunks = (total + segment_rows_ - 1) / segment_rows_;
  std::vector<Segment> fresh(chunks);
  const auto build = [&](size_t c) {
    const size_t base = c * segment_rows_;
    BuildSegment(rows, base, std::min(segment_rows_, total - base),
                 static_cast<uint32_t>(keep_segments + c), &fresh[c]);
  };
  if (pool != nullptr && chunks > 1) {
    // Each build writes only its own fresh[c] and distinct row_refs_
    // elements; WaitIdle is the barrier before anything reads them.
    for (size_t c = 0; c < chunks; ++c) {
      if (!pool->Submit([&build, c] { build(c); })) build(c);
    }
    pool->WaitIdle();
  } else {
    for (size_t c = 0; c < chunks; ++c) build(c);
  }
  segments_.resize(keep_segments);
  segments_.reserve(keep_segments + chunks);
  for (Segment& s : fresh) segments_.push_back(std::move(s));
}

size_t ColumnarSegmentBackend::SealTail(WorkerPool* pool) {
  if (!sealed() || tail_.empty()) return 0;
  APTRACE_SPAN("store/seal_tail");
  const size_t tail_n = tail_.size();
  const TimeMicros tail_min = tail_[tail_sorted_.front()].timestamp;

  // Splice point: first live segment whose rows can sort after a tail
  // row. Tail ids exceed every sealed id, so a segment with
  // ts_max == tail_min keeps its place — new rows with the same
  // timestamp sort strictly after it.
  size_t lo = first_live_;
  size_t hi = segments_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (segments_[mid].zone.ts_max > tail_min) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  const size_t splice = lo;

  // Materialize the spliced rows (already globally sorted) and merge the
  // tail's sorted view in.
  size_t spliced_rows = 0;
  for (size_t i = splice; i < segments_.size(); ++i) {
    spliced_rows += segments_[i].rows();
  }
  std::vector<Event> spliced;
  spliced.reserve(spliced_rows);
  for (size_t i = splice; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    for (size_t r = 0; r < s.rows(); ++r) {
      spliced.push_back(MaterializeRow(s, r));
    }
  }
  std::vector<Event> tail_rows;
  tail_rows.reserve(tail_n);
  for (const uint32_t pos : tail_sorted_) tail_rows.push_back(tail_[pos]);

  std::vector<Event> merged;
  merged.reserve(spliced.size() + tail_n);
  std::merge(spliced.begin(), spliced.end(), tail_rows.begin(),
             tail_rows.end(), std::back_inserter(merged), EventTsIdLess);

  row_refs_.resize(sealed_rows_ + tail_n);
  RecutInto(std::move(merged), splice, pool);
  sealed_rows_ += tail_n;
  tail_.clear();
  tail_sorted_.clear();
  Lm().tail_seals->Add();
  Lm().tail_sealed_rows->Add(tail_n);
  return tail_n;
}

size_t ColumnarSegmentBackend::Compact(WorkerPool* pool) {
  if (!sealed()) return 0;
  const size_t current = segments_.size() - first_live_;
  size_t live_rows = 0;
  for (size_t i = first_live_; i < segments_.size(); ++i) {
    live_rows += segments_[i].rows();
  }
  const size_t optimal = (live_rows + segment_rows_ - 1) / segment_rows_;
  if (current <= optimal) return 0;
  APTRACE_SPAN("store/compact");
  std::vector<Event> rows;
  rows.reserve(live_rows);
  for (size_t i = first_live_; i < segments_.size(); ++i) {
    const Segment& s = segments_[i];
    for (size_t r = 0; r < s.rows(); ++r) rows.push_back(MaterializeRow(s, r));
  }
  RecutInto(std::move(rows), first_live_, pool);
  const size_t saved = current - (segments_.size() - first_live_);
  Lm().compactions->Add();
  Lm().segments_compacted->Add(saved);
  return saved;
}

size_t ColumnarSegmentBackend::EvictBefore(TimeMicros horizon) {
  size_t rows = 0;
  size_t segs = 0;
  // ts_max is non-decreasing across segments, so the evictable set is a
  // prefix of the live region: advancing the watermark is all it takes.
  while (first_live_ < segments_.size() &&
         segments_[first_live_].zone.ts_max < horizon) {
    rows += segments_[first_live_].rows();
    segs++;
    first_live_++;
  }
  if (rows > 0) {
    Lm().rows_evicted->Add(rows);
    Lm().segments_evicted->Add(segs);
  }
  return rows;
}

ObjectId ColumnarSegmentBackend::FlowKeyAt(const Segment& s, size_t row,
                                           bool by_src) const {
  const bool subject_to_object =
      s.direction[row] ==
      static_cast<uint8_t>(FlowDirection::kSubjectToObject);
  // FlowSource is subject when the flow goes subject->object; FlowDest is
  // the other endpoint.
  if (by_src) return subject_to_object ? s.subject[row] : s.object[row];
  return subject_to_object ? s.object[row] : s.subject[row];
}

Event ColumnarSegmentBackend::MaterializeRow(const Segment& s,
                                             size_t row) const {
  Event e;
  e.id = s.ids[row];
  e.subject = s.subject[row];
  e.object = s.object[row];
  e.timestamp = s.ts[row];
  e.amount = s.amount[row];
  e.action = static_cast<ActionType>(s.action[row]);
  e.direction = static_cast<FlowDirection>(s.direction[row]);
  e.host = s.host[row];
  return e;
}

Event ColumnarSegmentBackend::Get(EventId id) const {
  if (!sealed()) return staging_[id];
  if (id < sealed_rows_) {
    const RowRef ref = row_refs_[id];
    return MaterializeRow(segments_[ref.segment], ref.offset);
  }
  return tail_[id - sealed_rows_];
}

bool ColumnarSegmentBackend::ZoneMayMatch(const ZoneMap& z, ObjectId key,
                                          bool by_src) const {
  if (by_src) {
    if (key < z.src_min || key > z.src_max) return false;
    return FingerprintMayContain(z.src_bits, key);
  }
  if (key < z.dest_min || key > z.dest_max) return false;
  return FingerprintMayContain(z.dest_bits, key);
}

size_t ColumnarSegmentBackend::FirstSegmentFor(TimeMicros begin) const {
  // Segments are cut from globally time-sorted rows, so ts_max is
  // non-decreasing across segments: binary search the first candidate.
  // Archived segments (before first_live_) are outside the search domain,
  // which is what makes EvictBefore take effect in every scan path.
  size_t lo = first_live_;
  size_t hi = segments_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (segments_[mid].zone.ts_max < begin) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::pair<size_t, size_t> ColumnarSegmentBackend::TailBounds(
    TimeMicros begin, TimeMicros end) const {
  const auto ts_of = [this](uint32_t pos) { return tail_[pos].timestamp; };
  const auto lo = std::lower_bound(
      tail_sorted_.begin(), tail_sorted_.end(), begin,
      [&](uint32_t pos, TimeMicros t) { return ts_of(pos) < t; });
  const auto hi = std::lower_bound(
      lo, tail_sorted_.end(), end,
      [&](uint32_t pos, TimeMicros t) { return ts_of(pos) < t; });
  return {static_cast<size_t>(lo - tail_sorted_.begin()),
          static_cast<size_t>(hi - tail_sorted_.begin())};
}

RangeScanBatch ColumnarSegmentBackend::CollectImpl(bool by_src, ObjectId key,
                                                   TimeMicros begin,
                                                   TimeMicros end) const {
  assert(sealed());
  RangeScanBatch batch;
  if (begin >= end) return batch;

  for (size_t i = FirstSegmentFor(begin);
       i < segments_.size() && segments_[i].zone.ts_min < end; ++i) {
    const Segment& s = segments_[i];
    if (!ZoneMayMatch(s.zone, key, by_src)) {
      batch.segments_pruned++;
      continue;
    }
    batch.partitions_probed++;
    const auto r0 =
        std::lower_bound(s.ts.begin(), s.ts.end(), begin) - s.ts.begin();
    const auto r1 = std::lower_bound(s.ts.begin() + r0, s.ts.end(), end) -
                    s.ts.begin();
    bool hit = false;
    for (auto r = static_cast<size_t>(r0); r < static_cast<size_t>(r1); ++r) {
      if (FlowKeyAt(s, r, by_src) != key) continue;
      batch.rows.push_back(s.ids[r]);
      hit = true;
    }
    if (hit) batch.partitions_seeked++;
  }

  if (!tail_.empty()) {
    const auto [t0, t1] = TailBounds(begin, end);
    if (t0 < t1) {
      batch.partitions_probed++;
      std::vector<TsId> tail_hits;
      for (size_t i = t0; i < t1; ++i) {
        const Event& e = tail_[tail_sorted_[i]];
        const ObjectId k = by_src ? e.FlowSource() : e.FlowDest();
        if (k != key) continue;
        tail_hits.push_back({e.timestamp, e.id});
      }
      if (!tail_hits.empty()) {
        batch.partitions_seeked++;
        // Merge the sorted tail hits into the sorted segment output.
        std::vector<TsId> merged;
        merged.reserve(batch.rows.size() + tail_hits.size());
        std::vector<TsId> seg_hits;
        seg_hits.reserve(batch.rows.size());
        for (const EventId id : batch.rows) {
          const RowRef ref = row_refs_[id];
          seg_hits.push_back({segments_[ref.segment].ts[ref.offset], id});
        }
        std::merge(seg_hits.begin(), seg_hits.end(), tail_hits.begin(),
                   tail_hits.end(), std::back_inserter(merged), TsIdLess);
        batch.rows.clear();
        batch.rows.reserve(merged.size());
        for (const TsId& m : merged) batch.rows.push_back(m.id);
      }
    }
  }
  return batch;
}

RangeScanBatch ColumnarSegmentBackend::CollectDest(ObjectId dest,
                                                   TimeMicros begin,
                                                   TimeMicros end) const {
  return CollectImpl(/*by_src=*/false, dest, begin, end);
}

RangeScanBatch ColumnarSegmentBackend::CollectSrc(ObjectId src,
                                                  TimeMicros begin,
                                                  TimeMicros end) const {
  return CollectImpl(/*by_src=*/true, src, begin, end);
}

RangeScanBatch ColumnarSegmentBackend::CollectRange(TimeMicros begin,
                                                    TimeMicros end) const {
  assert(sealed());
  RangeScanBatch batch;
  if (begin >= end) return batch;

  for (size_t i = FirstSegmentFor(begin);
       i < segments_.size() && segments_[i].zone.ts_min < end; ++i) {
    const Segment& s = segments_[i];
    // No key to prune on: every overlapping segment is read in full.
    batch.partitions_probed++;
    batch.partitions_seeked++;
    const auto r0 =
        std::lower_bound(s.ts.begin(), s.ts.end(), begin) - s.ts.begin();
    const auto r1 = std::lower_bound(s.ts.begin() + r0, s.ts.end(), end) -
                    s.ts.begin();
    batch.rows.insert(batch.rows.end(), s.ids.begin() + r0, s.ids.begin() + r1);
  }

  if (!tail_.empty()) {
    const auto [t0, t1] = TailBounds(begin, end);
    if (t0 < t1) {
      batch.partitions_probed++;
      batch.partitions_seeked++;
      std::vector<TsId> tail_hits;
      tail_hits.reserve(t1 - t0);
      for (size_t i = t0; i < t1; ++i) {
        const Event& e = tail_[tail_sorted_[i]];
        tail_hits.push_back({e.timestamp, e.id});
      }
      std::vector<TsId> seg_hits;
      seg_hits.reserve(batch.rows.size());
      for (const EventId id : batch.rows) {
        const RowRef ref = row_refs_[id];
        seg_hits.push_back({segments_[ref.segment].ts[ref.offset], id});
      }
      std::vector<TsId> merged;
      merged.reserve(seg_hits.size() + tail_hits.size());
      std::merge(seg_hits.begin(), seg_hits.end(), tail_hits.begin(),
                 tail_hits.end(), std::back_inserter(merged), TsIdLess);
      batch.rows.clear();
      batch.rows.reserve(merged.size());
      for (const TsId& m : merged) batch.rows.push_back(m.id);
    }
  }
  return batch;
}

size_t ColumnarSegmentBackend::CountDestRows(ObjectId dest, TimeMicros begin,
                                             TimeMicros end, uint64_t* probed,
                                             uint64_t* seeked,
                                             uint64_t* pruned) const {
  assert(sealed());
  size_t rows = 0;
  for (size_t i = FirstSegmentFor(begin);
       i < segments_.size() && segments_[i].zone.ts_min < end; ++i) {
    const Segment& s = segments_[i];
    if (!ZoneMayMatch(s.zone, dest, /*by_src=*/false)) {
      (*pruned)++;
      continue;
    }
    (*probed)++;
    const auto r0 =
        std::lower_bound(s.ts.begin(), s.ts.end(), begin) - s.ts.begin();
    const auto r1 = std::lower_bound(s.ts.begin() + r0, s.ts.end(), end) -
                    s.ts.begin();
    size_t here = 0;
    for (auto r = static_cast<size_t>(r0); r < static_cast<size_t>(r1); ++r) {
      if (FlowKeyAt(s, r, /*by_src=*/false) == dest) here++;
    }
    if (here > 0) (*seeked)++;
    rows += here;
  }
  if (!tail_.empty()) {
    const auto [t0, t1] = TailBounds(begin, end);
    if (t0 < t1) {
      (*probed)++;
      size_t here = 0;
      for (size_t i = t0; i < t1; ++i) {
        if (tail_[tail_sorted_[i]].FlowDest() == dest) here++;
      }
      if (here > 0) (*seeked)++;
      rows += here;
    }
  }
  return rows;
}

bool ColumnarSegmentBackend::HasIncomingWrite(ObjectId object,
                                              TimeMicros begin,
                                              TimeMicros end) const {
  assert(sealed());
  if (begin >= end) return false;
  for (size_t i = FirstSegmentFor(begin);
       i < segments_.size() && segments_[i].zone.ts_min < end; ++i) {
    const Segment& s = segments_[i];
    if (!ZoneMayMatch(s.zone, object, /*by_src=*/false)) continue;
    const auto r0 =
        std::lower_bound(s.ts.begin(), s.ts.end(), begin) - s.ts.begin();
    const auto r1 = std::lower_bound(s.ts.begin() + r0, s.ts.end(), end) -
                    s.ts.begin();
    for (auto r = static_cast<size_t>(r0); r < static_cast<size_t>(r1); ++r) {
      if (FlowKeyAt(s, r, /*by_src=*/false) == object) return true;
    }
  }
  if (!tail_.empty()) {
    const auto [t0, t1] = TailBounds(begin, end);
    for (size_t i = t0; i < t1; ++i) {
      if (tail_[tail_sorted_[i]].FlowDest() == object) return true;
    }
  }
  return false;
}

std::vector<ObjectId> ColumnarSegmentBackend::FlowDestsOf(
    ObjectId src, TimeMicros begin, TimeMicros end) const {
  assert(sealed());
  std::vector<ObjectId> out;
  if (begin >= end) return out;
  for (size_t i = FirstSegmentFor(begin);
       i < segments_.size() && segments_[i].zone.ts_min < end; ++i) {
    const Segment& s = segments_[i];
    if (!ZoneMayMatch(s.zone, src, /*by_src=*/true)) continue;
    const auto r0 =
        std::lower_bound(s.ts.begin(), s.ts.end(), begin) - s.ts.begin();
    const auto r1 = std::lower_bound(s.ts.begin() + r0, s.ts.end(), end) -
                    s.ts.begin();
    for (auto r = static_cast<size_t>(r0); r < static_cast<size_t>(r1); ++r) {
      if (FlowKeyAt(s, r, /*by_src=*/true) != src) continue;
      out.push_back(FlowKeyAt(s, r, /*by_src=*/false));
    }
  }
  if (!tail_.empty()) {
    const auto [t0, t1] = TailBounds(begin, end);
    for (size_t i = t0; i < t1; ++i) {
      const Event& e = tail_[tail_sorted_[i]];
      if (e.FlowSource() == src) out.push_back(e.FlowDest());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace aptrace
