#include "storage/columnar_backend.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "obs/trace.h"

namespace aptrace {

namespace {

constexpr size_t kDefaultSegmentRows = 4096;

/// (timestamp, id) pairs are the scan-order currency: segment output is
/// already globally sorted, tail output is sorted, and the two merge by
/// this ordering.
struct TsId {
  TimeMicros ts;
  EventId id;
};

bool TsIdLess(const TsId& a, const TsId& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  return a.id < b.id;
}

}  // namespace

ColumnarSegmentBackend::ColumnarSegmentBackend(CostModel cost_model,
                                               size_t segment_rows)
    : StorageBackend(StorageBackendKind::kColumnar, cost_model),
      segment_rows_(segment_rows == 0 ? kDefaultSegmentRows : segment_rows) {}

const BackendCapabilities& ColumnarSegmentBackend::capabilities() const {
  static const BackendCapabilities kCaps = {
      .streaming_append = true,
      .zone_map_pruning = true,
      .probe_unit = "column segment",
  };
  return kCaps;
}

bool ColumnarSegmentBackend::FingerprintMayContain(const Fingerprint& bits,
                                                   ObjectId id) {
  const size_t bit = id % (kFingerprintWords * 64);
  return (bits[bit / 64] >> (bit % 64)) & 1u;
}

void ColumnarSegmentBackend::FingerprintAdd(Fingerprint& bits, ObjectId id) {
  const size_t bit = id % (kFingerprintWords * 64);
  bits[bit / 64] |= uint64_t{1} << (bit % 64);
}

size_t ColumnarSegmentBackend::NumEvents() const {
  if (!sealed()) return staging_.size();
  return sealed_rows_ + tail_.size();
}

EventId ColumnarSegmentBackend::Append(Event event) {
  if (!sealed()) {
    const EventId id = staging_.size();
    event.id = id;
    NoteAppend(event);
    staging_.push_back(event);
    return id;
  }
  // Streaming path: the tail is append-ordered (id order); the sorted view
  // keeps (timestamp, id) scan order available without resealing.
  const EventId id = sealed_rows_ + tail_.size();
  event.id = id;
  NoteAppend(event);
  const uint32_t pos = static_cast<uint32_t>(tail_.size());
  tail_.push_back(event);
  const auto by_time = [this](uint32_t a, uint32_t b) {
    const Event& ea = tail_[a];
    const Event& eb = tail_[b];
    if (ea.timestamp != eb.timestamp) return ea.timestamp < eb.timestamp;
    return ea.id < eb.id;
  };
  tail_sorted_.insert(
      std::upper_bound(tail_sorted_.begin(), tail_sorted_.end(), pos, by_time),
      pos);
  return id;
}

void ColumnarSegmentBackend::Seal() {
  if (sealed()) return;
  APTRACE_SPAN("store/seal");
  std::vector<EventId> order(staging_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [this](EventId a, EventId b) {
    const Event& ea = staging_[a];
    const Event& eb = staging_[b];
    if (ea.timestamp != eb.timestamp) return ea.timestamp < eb.timestamp;
    return a < b;
  });

  sealed_rows_ = staging_.size();
  row_refs_.resize(sealed_rows_);
  segments_.reserve((sealed_rows_ + segment_rows_ - 1) / segment_rows_);
  for (size_t base = 0; base < sealed_rows_; base += segment_rows_) {
    const size_t n = std::min(segment_rows_, sealed_rows_ - base);
    Segment s;
    s.ids.reserve(n);
    s.ts.reserve(n);
    s.subject.reserve(n);
    s.object.reserve(n);
    s.amount.reserve(n);
    s.action.reserve(n);
    s.direction.reserve(n);
    s.host.reserve(n);
    ZoneMap z;
    z.ts_min = std::numeric_limits<TimeMicros>::max();
    z.ts_max = std::numeric_limits<TimeMicros>::min();
    z.src_min = ~static_cast<ObjectId>(0);
    z.src_max = 0;
    z.dest_min = ~static_cast<ObjectId>(0);
    z.dest_max = 0;
    for (size_t i = 0; i < n; ++i) {
      const Event& e = staging_[order[base + i]];
      row_refs_[e.id] = {static_cast<uint32_t>(segments_.size()),
                         static_cast<uint32_t>(i)};
      s.ids.push_back(e.id);
      s.ts.push_back(e.timestamp);
      s.subject.push_back(e.subject);
      s.object.push_back(e.object);
      s.amount.push_back(e.amount);
      s.action.push_back(static_cast<uint8_t>(e.action));
      s.direction.push_back(static_cast<uint8_t>(e.direction));
      s.host.push_back(e.host);
      const ObjectId src = e.FlowSource();
      const ObjectId dest = e.FlowDest();
      z.ts_min = std::min(z.ts_min, e.timestamp);
      z.ts_max = std::max(z.ts_max, e.timestamp);
      z.src_min = std::min(z.src_min, src);
      z.src_max = std::max(z.src_max, src);
      z.dest_min = std::min(z.dest_min, dest);
      z.dest_max = std::max(z.dest_max, dest);
      z.host_bits |= uint64_t{1} << (e.host % 64);
      z.action_bits |= static_cast<uint8_t>(1u << static_cast<int>(e.action));
      FingerprintAdd(z.src_bits, src);
      FingerprintAdd(z.dest_bits, dest);
    }
    s.zone = z;
    segments_.push_back(std::move(s));
  }
  staging_.clear();
  staging_.shrink_to_fit();
  MarkSealed(sealed_rows_ == 0);
}

ObjectId ColumnarSegmentBackend::FlowKeyAt(const Segment& s, size_t row,
                                           bool by_src) const {
  const bool subject_to_object =
      s.direction[row] ==
      static_cast<uint8_t>(FlowDirection::kSubjectToObject);
  // FlowSource is subject when the flow goes subject->object; FlowDest is
  // the other endpoint.
  if (by_src) return subject_to_object ? s.subject[row] : s.object[row];
  return subject_to_object ? s.object[row] : s.subject[row];
}

Event ColumnarSegmentBackend::MaterializeRow(const Segment& s,
                                             size_t row) const {
  Event e;
  e.id = s.ids[row];
  e.subject = s.subject[row];
  e.object = s.object[row];
  e.timestamp = s.ts[row];
  e.amount = s.amount[row];
  e.action = static_cast<ActionType>(s.action[row]);
  e.direction = static_cast<FlowDirection>(s.direction[row]);
  e.host = s.host[row];
  return e;
}

Event ColumnarSegmentBackend::Get(EventId id) const {
  if (!sealed()) return staging_[id];
  if (id < sealed_rows_) {
    const RowRef ref = row_refs_[id];
    return MaterializeRow(segments_[ref.segment], ref.offset);
  }
  return tail_[id - sealed_rows_];
}

bool ColumnarSegmentBackend::ZoneMayMatch(const ZoneMap& z, ObjectId key,
                                          bool by_src) const {
  if (by_src) {
    if (key < z.src_min || key > z.src_max) return false;
    return FingerprintMayContain(z.src_bits, key);
  }
  if (key < z.dest_min || key > z.dest_max) return false;
  return FingerprintMayContain(z.dest_bits, key);
}

size_t ColumnarSegmentBackend::FirstSegmentFor(TimeMicros begin) const {
  // Segments are cut from globally time-sorted rows, so ts_max is
  // non-decreasing across segments: binary search the first candidate.
  size_t lo = 0;
  size_t hi = segments_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (segments_[mid].zone.ts_max < begin) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::pair<size_t, size_t> ColumnarSegmentBackend::TailBounds(
    TimeMicros begin, TimeMicros end) const {
  const auto ts_of = [this](uint32_t pos) { return tail_[pos].timestamp; };
  const auto lo = std::lower_bound(
      tail_sorted_.begin(), tail_sorted_.end(), begin,
      [&](uint32_t pos, TimeMicros t) { return ts_of(pos) < t; });
  const auto hi = std::lower_bound(
      lo, tail_sorted_.end(), end,
      [&](uint32_t pos, TimeMicros t) { return ts_of(pos) < t; });
  return {static_cast<size_t>(lo - tail_sorted_.begin()),
          static_cast<size_t>(hi - tail_sorted_.begin())};
}

RangeScanBatch ColumnarSegmentBackend::CollectImpl(bool by_src, ObjectId key,
                                                   TimeMicros begin,
                                                   TimeMicros end) const {
  assert(sealed());
  RangeScanBatch batch;
  if (begin >= end) return batch;

  for (size_t i = FirstSegmentFor(begin);
       i < segments_.size() && segments_[i].zone.ts_min < end; ++i) {
    const Segment& s = segments_[i];
    if (!ZoneMayMatch(s.zone, key, by_src)) {
      batch.segments_pruned++;
      continue;
    }
    batch.partitions_probed++;
    const auto r0 =
        std::lower_bound(s.ts.begin(), s.ts.end(), begin) - s.ts.begin();
    const auto r1 = std::lower_bound(s.ts.begin() + r0, s.ts.end(), end) -
                    s.ts.begin();
    bool hit = false;
    for (auto r = static_cast<size_t>(r0); r < static_cast<size_t>(r1); ++r) {
      if (FlowKeyAt(s, r, by_src) != key) continue;
      batch.rows.push_back(s.ids[r]);
      hit = true;
    }
    if (hit) batch.partitions_seeked++;
  }

  if (!tail_.empty()) {
    const auto [t0, t1] = TailBounds(begin, end);
    if (t0 < t1) {
      batch.partitions_probed++;
      std::vector<TsId> tail_hits;
      for (size_t i = t0; i < t1; ++i) {
        const Event& e = tail_[tail_sorted_[i]];
        const ObjectId k = by_src ? e.FlowSource() : e.FlowDest();
        if (k != key) continue;
        tail_hits.push_back({e.timestamp, e.id});
      }
      if (!tail_hits.empty()) {
        batch.partitions_seeked++;
        // Merge the sorted tail hits into the sorted segment output.
        std::vector<TsId> merged;
        merged.reserve(batch.rows.size() + tail_hits.size());
        std::vector<TsId> seg_hits;
        seg_hits.reserve(batch.rows.size());
        for (const EventId id : batch.rows) {
          const RowRef ref = row_refs_[id];
          seg_hits.push_back({segments_[ref.segment].ts[ref.offset], id});
        }
        std::merge(seg_hits.begin(), seg_hits.end(), tail_hits.begin(),
                   tail_hits.end(), std::back_inserter(merged), TsIdLess);
        batch.rows.clear();
        batch.rows.reserve(merged.size());
        for (const TsId& m : merged) batch.rows.push_back(m.id);
      }
    }
  }
  return batch;
}

RangeScanBatch ColumnarSegmentBackend::CollectDest(ObjectId dest,
                                                   TimeMicros begin,
                                                   TimeMicros end) const {
  return CollectImpl(/*by_src=*/false, dest, begin, end);
}

RangeScanBatch ColumnarSegmentBackend::CollectSrc(ObjectId src,
                                                  TimeMicros begin,
                                                  TimeMicros end) const {
  return CollectImpl(/*by_src=*/true, src, begin, end);
}

RangeScanBatch ColumnarSegmentBackend::CollectRange(TimeMicros begin,
                                                    TimeMicros end) const {
  assert(sealed());
  RangeScanBatch batch;
  if (begin >= end) return batch;

  for (size_t i = FirstSegmentFor(begin);
       i < segments_.size() && segments_[i].zone.ts_min < end; ++i) {
    const Segment& s = segments_[i];
    // No key to prune on: every overlapping segment is read in full.
    batch.partitions_probed++;
    batch.partitions_seeked++;
    const auto r0 =
        std::lower_bound(s.ts.begin(), s.ts.end(), begin) - s.ts.begin();
    const auto r1 = std::lower_bound(s.ts.begin() + r0, s.ts.end(), end) -
                    s.ts.begin();
    batch.rows.insert(batch.rows.end(), s.ids.begin() + r0, s.ids.begin() + r1);
  }

  if (!tail_.empty()) {
    const auto [t0, t1] = TailBounds(begin, end);
    if (t0 < t1) {
      batch.partitions_probed++;
      batch.partitions_seeked++;
      std::vector<TsId> tail_hits;
      tail_hits.reserve(t1 - t0);
      for (size_t i = t0; i < t1; ++i) {
        const Event& e = tail_[tail_sorted_[i]];
        tail_hits.push_back({e.timestamp, e.id});
      }
      std::vector<TsId> seg_hits;
      seg_hits.reserve(batch.rows.size());
      for (const EventId id : batch.rows) {
        const RowRef ref = row_refs_[id];
        seg_hits.push_back({segments_[ref.segment].ts[ref.offset], id});
      }
      std::vector<TsId> merged;
      merged.reserve(seg_hits.size() + tail_hits.size());
      std::merge(seg_hits.begin(), seg_hits.end(), tail_hits.begin(),
                 tail_hits.end(), std::back_inserter(merged), TsIdLess);
      batch.rows.clear();
      batch.rows.reserve(merged.size());
      for (const TsId& m : merged) batch.rows.push_back(m.id);
    }
  }
  return batch;
}

size_t ColumnarSegmentBackend::CountDestRows(ObjectId dest, TimeMicros begin,
                                             TimeMicros end, uint64_t* probed,
                                             uint64_t* seeked,
                                             uint64_t* pruned) const {
  assert(sealed());
  size_t rows = 0;
  for (size_t i = FirstSegmentFor(begin);
       i < segments_.size() && segments_[i].zone.ts_min < end; ++i) {
    const Segment& s = segments_[i];
    if (!ZoneMayMatch(s.zone, dest, /*by_src=*/false)) {
      (*pruned)++;
      continue;
    }
    (*probed)++;
    const auto r0 =
        std::lower_bound(s.ts.begin(), s.ts.end(), begin) - s.ts.begin();
    const auto r1 = std::lower_bound(s.ts.begin() + r0, s.ts.end(), end) -
                    s.ts.begin();
    size_t here = 0;
    for (auto r = static_cast<size_t>(r0); r < static_cast<size_t>(r1); ++r) {
      if (FlowKeyAt(s, r, /*by_src=*/false) == dest) here++;
    }
    if (here > 0) (*seeked)++;
    rows += here;
  }
  if (!tail_.empty()) {
    const auto [t0, t1] = TailBounds(begin, end);
    if (t0 < t1) {
      (*probed)++;
      size_t here = 0;
      for (size_t i = t0; i < t1; ++i) {
        if (tail_[tail_sorted_[i]].FlowDest() == dest) here++;
      }
      if (here > 0) (*seeked)++;
      rows += here;
    }
  }
  return rows;
}

bool ColumnarSegmentBackend::HasIncomingWrite(ObjectId object,
                                              TimeMicros begin,
                                              TimeMicros end) const {
  assert(sealed());
  if (begin >= end) return false;
  for (size_t i = FirstSegmentFor(begin);
       i < segments_.size() && segments_[i].zone.ts_min < end; ++i) {
    const Segment& s = segments_[i];
    if (!ZoneMayMatch(s.zone, object, /*by_src=*/false)) continue;
    const auto r0 =
        std::lower_bound(s.ts.begin(), s.ts.end(), begin) - s.ts.begin();
    const auto r1 = std::lower_bound(s.ts.begin() + r0, s.ts.end(), end) -
                    s.ts.begin();
    for (auto r = static_cast<size_t>(r0); r < static_cast<size_t>(r1); ++r) {
      if (FlowKeyAt(s, r, /*by_src=*/false) == object) return true;
    }
  }
  if (!tail_.empty()) {
    const auto [t0, t1] = TailBounds(begin, end);
    for (size_t i = t0; i < t1; ++i) {
      if (tail_[tail_sorted_[i]].FlowDest() == object) return true;
    }
  }
  return false;
}

std::vector<ObjectId> ColumnarSegmentBackend::FlowDestsOf(
    ObjectId src, TimeMicros begin, TimeMicros end) const {
  assert(sealed());
  std::vector<ObjectId> out;
  if (begin >= end) return out;
  for (size_t i = FirstSegmentFor(begin);
       i < segments_.size() && segments_[i].zone.ts_min < end; ++i) {
    const Segment& s = segments_[i];
    if (!ZoneMayMatch(s.zone, src, /*by_src=*/true)) continue;
    const auto r0 =
        std::lower_bound(s.ts.begin(), s.ts.end(), begin) - s.ts.begin();
    const auto r1 = std::lower_bound(s.ts.begin() + r0, s.ts.end(), end) -
                    s.ts.begin();
    for (auto r = static_cast<size_t>(r0); r < static_cast<size_t>(r1); ++r) {
      if (FlowKeyAt(s, r, /*by_src=*/true) != src) continue;
      out.push_back(FlowKeyAt(s, r, /*by_src=*/false));
    }
  }
  if (!tail_.empty()) {
    const auto [t0, t1] = TailBounds(begin, end);
    for (size_t i = t0; i < t1; ++i) {
      const Event& e = tail_[tail_sorted_[i]];
      if (e.FlowSource() == src) out.push_back(e.FlowDest());
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace aptrace
