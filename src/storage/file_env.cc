#include "storage/file_env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <fstream>
#include <sstream>

#include "util/env.h"

namespace aptrace {

namespace {

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return Status::Internal("write " + path_ + ": " +
                                ErrnoMessage(errno));
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::Ok();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::Internal("fsync " + path_ + ": " +
                              ErrnoMessage(errno));
    }
    return Status::Ok();
  }

  Status Close() override {
    if (fd_ < 0) return Status::Ok();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) {
      return Status::Internal("close " + path_ + ": " +
                              ErrnoMessage(errno));
    }
    return Status::Ok();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileEnv final : public FileEnv {
 public:
  Result<std::unique_ptr<WritableFile>> OpenForAppend(
      const std::string& path) override {
    const int fd =
        ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::Internal("open " + path + ": " + ErrnoMessage(errno));
    }
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    std::ifstream f(path, std::ios::binary);
    if (!f) {
      return Status::NotFound("cannot open for read: " + path);
    }
    std::ostringstream os;
    os << f.rdbuf();
    if (f.bad()) return Status::Internal("read failed: " + path);
    return os.str();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Status::Internal("truncate " + path + ": " +
                              ErrnoMessage(errno));
    }
    return Status::Ok();
  }

  bool FileExists(const std::string& path) override {
    struct stat st = {};
    return ::stat(path.c_str(), &st) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat st = {};
    if (::stat(path.c_str(), &st) != 0) {
      return Status::NotFound("stat " + path + ": " + ErrnoMessage(errno));
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Internal("rename " + from + " -> " + to + ": " +
                              ErrnoMessage(errno));
    }
    return Status::Ok();
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return Status::Internal("unlink " + path + ": " +
                              ErrnoMessage(errno));
    }
    return Status::Ok();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status::Internal("mkdir " + path + ": " + ErrnoMessage(errno));
    }
    return Status::Ok();
  }
};

}  // namespace

FileEnv* FileEnv::Posix() {
  static PosixFileEnv* env = new PosixFileEnv();
  return env;
}

}  // namespace aptrace
