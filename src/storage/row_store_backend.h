#ifndef APTRACE_STORAGE_ROW_STORE_BACKEND_H_
#define APTRACE_STORAGE_ROW_STORE_BACKEND_H_

#include <map>
#include <unordered_map>
#include <vector>

#include "storage/storage_backend.h"

namespace aptrace {

/// The seed storage layout: whole Event rows in a dense vector, indexed by
/// hour-width time partitions with per-partition hash indexes on flow
/// source and flow destination. A scan probes *every* partition that
/// overlaps the query range — even when the key is absent there — which is
/// exactly the per-partition probe cost the paper's backend charges (and
/// what the columnar backend's zone maps avoid).
class RowStoreBackend final : public StorageBackend {
 public:
  RowStoreBackend(CostModel cost_model, DurationMicros partition_micros);

  const BackendCapabilities& capabilities() const override;

  EventId Append(Event event) override;
  void Seal() override;
  size_t NumEvents() const override { return events_.size(); }
  Event Get(EventId id) const override { return events_[id]; }

  RangeScanBatch CollectDest(ObjectId dest, TimeMicros begin,
                             TimeMicros end) const override;
  RangeScanBatch CollectSrc(ObjectId src, TimeMicros begin,
                            TimeMicros end) const override;
  RangeScanBatch CollectRange(TimeMicros begin, TimeMicros end) const override;

  bool HasIncomingWrite(ObjectId object, TimeMicros begin,
                        TimeMicros end) const override;
  std::vector<ObjectId> FlowDestsOf(ObjectId src, TimeMicros begin,
                                    TimeMicros end) const override;

  size_t NumPartitions() const { return partitions_.size(); }

 protected:
  size_t CountDestRows(ObjectId dest, TimeMicros begin, TimeMicros end,
                       uint64_t* probed, uint64_t* seeked,
                       uint64_t* pruned) const override;

 private:
  struct Partition {
    // Event ids with FlowDest == key, sorted by timestamp (ties by id).
    std::unordered_map<ObjectId, std::vector<EventId>> by_dest;
    // Event ids with FlowSource == key, sorted by timestamp. Powers the
    // derived-attribute queries.
    std::unordered_map<ObjectId, std::vector<EventId>> by_src;
    // All event ids in the partition, sorted by timestamp.
    std::vector<EventId> all;
  };

  int64_t PartitionIndex(TimeMicros t) const;

  /// Shared pure-collection walk behind CollectDest/CollectSrc.
  RangeScanBatch CollectImpl(bool by_src, ObjectId key, TimeMicros begin,
                             TimeMicros end) const;

  /// Inserts one event into the partition indexes at its sorted position
  /// (incremental path for post-seal appends).
  void IndexEvent(const Event& e);

  DurationMicros partition_micros_;
  std::vector<Event> events_;  // indexed by EventId
  std::map<int64_t, Partition> partitions_;
};

}  // namespace aptrace

#endif  // APTRACE_STORAGE_ROW_STORE_BACKEND_H_
