#include "storage/fault_env.h"

#include <utility>

namespace aptrace {

/// Handle wrapper: consults the env's shared fault state on every write
/// and sync, then forwards whatever is allowed to the real handle.
class FaultInjectedFile final : public WritableFile {
 public:
  FaultInjectedFile(FaultInjectingFileEnv* env,
                    std::unique_ptr<WritableFile> base, std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    size_t allowed = data.size();
    bool fail = false;
    {
      MutexLock lock(&env_->mu_);
      if (env_->write_budget_ != FaultInjectingFileEnv::kUnlimited) {
        if (data.size() > env_->write_budget_) {
          fail = true;
          allowed = env_->partial_writes_
                        ? static_cast<size_t>(env_->write_budget_)
                        : 0;
        }
        env_->write_budget_ -= allowed;
      }
      env_->bytes_written_ += allowed;
      if (fail) env_->write_failures_++;
    }
    if (allowed > 0) {
      if (auto st = base_->Append(data.substr(0, allowed)); !st.ok()) {
        return st;
      }
    }
    if (fail) {
      return Status::Internal("injected fault: no space left on device (" +
                              path_ + ")");
    }
    return Status::Ok();
  }

  Status Sync() override {
    {
      MutexLock lock(&env_->mu_);
      if (env_->sync_failures_pending_ > 0) {
        env_->sync_failures_pending_--;
        env_->sync_failures_++;
        return Status::Internal("injected fault: fsync failed (" + path_ +
                                ")");
      }
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  FaultInjectingFileEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
};

void FaultInjectingFileEnv::SetWriteBudget(uint64_t bytes) {
  MutexLock lock(&mu_);
  write_budget_ = bytes;
}

void FaultInjectingFileEnv::SetPartialWrites(bool on) {
  MutexLock lock(&mu_);
  partial_writes_ = on;
}

void FaultInjectingFileEnv::FailNextSyncs(uint64_t n) {
  MutexLock lock(&mu_);
  sync_failures_pending_ = n;
}

uint64_t FaultInjectingFileEnv::bytes_written() const {
  MutexLock lock(&mu_);
  return bytes_written_;
}

uint64_t FaultInjectingFileEnv::write_failures() const {
  MutexLock lock(&mu_);
  return write_failures_;
}

uint64_t FaultInjectingFileEnv::sync_failures() const {
  MutexLock lock(&mu_);
  return sync_failures_;
}

Result<std::unique_ptr<WritableFile>> FaultInjectingFileEnv::OpenForAppend(
    const std::string& path) {
  auto base = base_->OpenForAppend(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(std::make_unique<FaultInjectedFile>(
      this, std::move(base).value(), path));
}

}  // namespace aptrace
