#include "storage/sharded_store.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "dist/dist_error.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "storage/columnar_backend.h"
#include "storage/event_store.h"
#include "storage/row_store_backend.h"
#include "util/logging.h"
#include "util/worker_pool.h"

namespace aptrace {

namespace {

/// Floor division (partition slices must be stable across negative
/// timestamps, matching RowStoreBackend's partition indexing).
int64_t FloorDiv(int64_t a, int64_t b) {
  int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

std::unique_ptr<StorageBackend> MakeShardBackend(
    const EventStoreOptions& options) {
  if (options.backend == StorageBackendKind::kColumnar) {
    return std::make_unique<ColumnarSegmentBackend>(options.cost_model,
                                                    options.segment_rows);
  }
  return std::make_unique<RowStoreBackend>(options.cost_model,
                                           options.partition_micros);
}

void GrowMask(std::vector<uint64_t>* masks, ObjectId id, uint32_t shard) {
  if (id >= masks->size()) masks->resize(id + 1, 0);
  (*masks)[id] |= uint64_t{1} << shard;
}

}  // namespace

struct ShardedStore::ShardMetrics {
  obs::Counter* scans;
  obs::Counter* fanout;
  obs::Counter* boundary_rows;
};

const ShardedStore::ShardMetrics& ShardedStore::Sm() const {
  static const ShardMetrics kMetrics = {
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreShardScans),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreShardFanout),
      obs::Metrics().FindOrCreateCounter(obs::names::kStoreShardBoundaryRows),
  };
  return kMetrics;
}

ShardedStore::ShardedStore(const EventStoreOptions& options,
                           const ObjectCatalog* catalog)
    : StorageBackend(options.backend, options.cost_model),
      catalog_(catalog),
      partition_micros_(options.partition_micros) {
  size_t n = options.shards;
  if (n < 1) n = 1;
  if (n > kMaxStoreShards) {
    APTRACE_LOG(Warning) << "shard count " << n << " clamped to "
                      << kMaxStoreShards;
    n = kMaxStoreShards;
  }
  shards_.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    shards_[i].backend = options.shard_backend_factory != nullptr
                             ? options.shard_backend_factory(i, options)
                             : MakeShardBackend(options);
  }
  if (options.dist_fanout_threads > 0 && n > 1) {
    fanout_pool_ = std::make_unique<WorkerPool>(
        static_cast<int>(options.dist_fanout_threads));
  }
  shard_stats_.resize(n);
  shard_boundary_.resize(n, 0);
  obs::Metrics()
      .FindOrCreateGauge(obs::names::kStoreShards)
      ->Set(static_cast<int64_t>(n));
}

ShardedStore::~ShardedStore() = default;

const BackendCapabilities& ShardedStore::capabilities() const {
  return shards_[0].backend->capabilities();
}

uint32_t ShardedStore::RouteShard(HostId host, TimeMicros timestamp) const {
  const auto n = static_cast<int64_t>(shards_.size());
  const int64_t slice = FloorDiv(timestamp, partition_micros_);
  const int64_t mixed = (static_cast<int64_t>(host) % n + slice % n + 2 * n) % n;
  return static_cast<uint32_t>(mixed);
}

EventId ShardedStore::Append(Event event) {
  const uint32_t s = RouteShard(event.host, event.timestamp);
  const EventId gid = meta_.size();
  NoteAppend(event);
  GrowMask(&dest_shards_, event.FlowDest(), s);
  GrowMask(&src_shards_, event.FlowSource(), s);
  meta_.push_back(RowMeta{0, event.timestamp, s, event.host});
  const EventId lid = shards_[s].backend->Append(std::move(event));
  assert(lid == shards_[s].gid_of.size());
  meta_.back().lid = lid;
  shards_[s].gid_of.push_back(gid);
  return gid;
}

void ShardedStore::Seal() {
  for (Shard& s : shards_) s.backend->Seal();
  MarkSealed(meta_.empty());
}

Event ShardedStore::Get(EventId id) const {
  const RowMeta& m = meta_[id];
  Event e = shards_[m.shard].backend->Get(m.lid);
  // Shards assign their own dense local ids; callers only ever see the
  // coordinator's global id (the monolithic append-order id).
  e.id = id;
  return e;
}

RangeScanBatch ShardedStore::Gather(bool by_src, ObjectId key, uint64_t mask,
                                    HostId home, TimeMicros begin,
                                    TimeMicros end) const {
  APTRACE_SPAN("store/shard_scan");

  std::vector<uint32_t> probe_shards;
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if (mask & (uint64_t{1} << s)) probe_shards.push_back(s);
  }

  // Per-shard probes, optionally fanned out on the dedicated pool. Each
  // probe catches its own failure: a remote shard that is down must
  // surface as one typed degraded error naming the missing shards — and
  // never hang the query or tear down the coordinator thread.
  struct Probe {
    RangeScanBatch batch;
    bool failed = false;
    std::string error;
  };
  std::vector<Probe> probes(probe_shards.size());
  const auto run_probe = [&](size_t i) {
    Probe& p = probes[i];
    const uint32_t s = probe_shards[i];
    try {
      if (key == kInvalidObjectId) {
        p.batch = shards_[s].backend->CollectRange(begin, end);
      } else if (by_src) {
        p.batch = shards_[s].backend->CollectSrc(key, begin, end);
      } else {
        p.batch = shards_[s].backend->CollectDest(key, begin, end);
      }
    } catch (const std::exception& e) {
      p.failed = true;
      p.error = e.what();
    }
  };

  if (fanout_pool_ != nullptr && probe_shards.size() > 1) {
    // Join on a per-call latch, not pool idleness: concurrent Gathers
    // (the Executor's prefetch workers) share the pool and must not wait
    // for each other's probes.
    Mutex latch_mu("ShardedStore::gather_latch");
    CondVar latch_cv;
    size_t remaining = probe_shards.size();
    for (size_t i = 0; i < probe_shards.size(); ++i) {
      const bool queued = fanout_pool_->Submit([&, i] {
        run_probe(i);
        MutexLock lock(&latch_mu);
        if (--remaining == 0) latch_cv.NotifyOne();
      });
      if (!queued) {
        // Pool is shutting down; probe inline so the latch still opens.
        run_probe(i);
        MutexLock lock(&latch_mu);
        --remaining;
      }
    }
    MutexLock lock(&latch_mu);
    while (remaining > 0) latch_cv.Wait(lock);
  } else {
    for (size_t i = 0; i < probe_shards.size(); ++i) run_probe(i);
  }

  size_t n_down = 0;
  std::string down;
  for (size_t i = 0; i < probe_shards.size(); ++i) {
    if (!probes[i].failed) continue;
    if (n_down++ > 0) down += "; ";
    down += "shard " + std::to_string(probe_shards[i]) + ": " +
            probes[i].error;
  }
  if (n_down > 0) {
    throw dist::DistError(
        dist::kDistErrUnavailable,
        "degraded scan: " + std::to_string(n_down) + " of " +
            std::to_string(probe_shards.size()) +
            " probed shards unavailable (" + down + ")");
  }

  RangeScanBatch out;
  struct Source {
    uint32_t shard;
    std::vector<EventId> gids;
    size_t next = 0;
  };
  std::vector<Source> sources;
  size_t total_rows = 0;
  for (size_t i = 0; i < probe_shards.size(); ++i) {
    const uint32_t s = probe_shards[i];
    RangeScanBatch& b = probes[i].batch;
    ShardScanSlice slice;
    slice.shard = s;
    slice.rows = b.rows.size();
    slice.partitions_probed = b.partitions_probed;
    slice.partitions_seeked = b.partitions_seeked;
    slice.segments_pruned = b.segments_pruned;
    std::vector<EventId> gids;
    gids.reserve(b.rows.size());
    for (const EventId lid : b.rows) {
      const EventId gid = shards_[s].gid_of[lid];
      if (home != kInvalidHostId && meta_[gid].host != home) {
        slice.boundary_rows++;
      }
      gids.push_back(gid);
    }
    out.partitions_probed += b.partitions_probed;
    out.partitions_seeked += b.partitions_seeked;
    out.segments_pruned += b.segments_pruned;
    out.shard_slices.push_back(slice);
    total_rows += gids.size();
    sources.push_back(Source{s, std::move(gids), 0});
  }
  // Deterministic k-way merge by (timestamp, gid). Within a shard, local
  // ids are assigned in global append order, so each per-shard list is
  // already (timestamp, gid)-sorted and the merge reproduces exactly the
  // order the monolithic backend would have returned.
  out.rows.reserve(total_rows);
  while (out.rows.size() < total_rows) {
    Source* best = nullptr;
    TimeMicros best_ts = 0;
    EventId best_gid = 0;
    for (Source& src : sources) {
      if (src.next >= src.gids.size()) continue;
      const EventId gid = src.gids[src.next];
      const TimeMicros ts = meta_[gid].timestamp;
      if (best == nullptr || ts < best_ts ||
          (ts == best_ts && gid < best_gid)) {
        best = &src;
        best_ts = ts;
        best_gid = gid;
      }
    }
    out.rows.push_back(best->gids[best->next++]);
  }
  return out;
}

RangeScanBatch ShardedStore::CollectDest(ObjectId dest, TimeMicros begin,
                                         TimeMicros end) const {
  return Gather(/*by_src=*/false, dest, MaskFor(dest_shards_, dest),
                catalog_->Get(dest).host(), begin, end);
}

RangeScanBatch ShardedStore::CollectSrc(ObjectId src, TimeMicros begin,
                                        TimeMicros end) const {
  return Gather(/*by_src=*/true, src, MaskFor(src_shards_, src),
                catalog_->Get(src).host(), begin, end);
}

RangeScanBatch ShardedStore::CollectRange(TimeMicros begin,
                                          TimeMicros end) const {
  const uint64_t all = shards_.size() == kMaxStoreShards
                           ? ~uint64_t{0}
                           : (uint64_t{1} << shards_.size()) - 1;
  return Gather(/*by_src=*/false, kInvalidObjectId, all, kInvalidHostId,
                begin, end);
}

bool ShardedStore::HasIncomingWrite(ObjectId object, TimeMicros begin,
                                    TimeMicros end) const {
  const uint64_t mask = MaskFor(dest_shards_, object);
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if ((mask & (uint64_t{1} << s)) == 0) continue;
    if (shards_[s].backend->HasIncomingWrite(object, begin, end)) return true;
  }
  return false;
}

std::vector<ObjectId> ShardedStore::FlowDestsOf(ObjectId src, TimeMicros begin,
                                                TimeMicros end) const {
  std::vector<ObjectId> out;
  const uint64_t mask = MaskFor(src_shards_, src);
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    if ((mask & (uint64_t{1} << s)) == 0) continue;
    std::vector<ObjectId> part = shards_[s].backend->FlowDestsOf(src, begin,
                                                                 end);
    std::vector<ObjectId> merged;
    merged.reserve(out.size() + part.size());
    std::set_union(out.begin(), out.end(), part.begin(), part.end(),
                   std::back_inserter(merged));
    out = std::move(merged);
  }
  return out;
}

void ShardedStore::ChargeSharded(const RangeScanBatch& batch,
                                 const std::vector<uint64_t>& delivered,
                                 const std::vector<uint64_t>& filtered,
                                 uint64_t rows, uint64_t n_filtered,
                                 DurationMicros cost) const {
  uint64_t boundary = 0;
  {
    MutexLock lock(&agg_mu_);
    total_.queries++;
    total_.rows_matched += rows;
    total_.rows_filtered += n_filtered;
    total_.partitions_probed += batch.partitions_probed;
    total_.partitions_seeked += batch.partitions_seeked;
    total_.segments_pruned += batch.segments_pruned;
    total_.simulated_cost += cost;
    for (const ShardScanSlice& slice : batch.shard_slices) {
      StoreStats& st = shard_stats_[slice.shard];
      const uint64_t d =
          slice.shard < delivered.size() ? delivered[slice.shard] : 0;
      const uint64_t f =
          slice.shard < filtered.size() ? filtered[slice.shard] : 0;
      st.queries++;
      st.rows_matched += d;
      st.rows_filtered += f;
      st.partitions_probed += slice.partitions_probed;
      st.partitions_seeked += slice.partitions_seeked;
      st.segments_pruned += slice.segments_pruned;
      // The per-query overhead belongs to the coordinator, not any one
      // shard: sum(shard costs) + queries * overhead == total cost.
      st.simulated_cost +=
          cost_model().QueryCost(d, f, slice.partitions_probed,
                                 slice.partitions_seeked) -
          cost_model().QueryCost(0, 0, 0, 0);
      shard_boundary_[slice.shard] += slice.boundary_rows;
      boundary += slice.boundary_rows;
    }
  }
  const ShardMetrics& m = Sm();
  m.scans->Add();
  m.fanout->Add(batch.shard_slices.size());
  m.boundary_rows->Add(boundary);
}

size_t ShardedStore::ReplayScan(const RangeScanBatch& batch, Clock* clock,
                                const std::function<void(const Event&)>& fn,
                                const RowFilter& filter,
                                DurationMicros* cost_out,
                                ScanProbeStats* probe_out) const {
  assert(sealed());
  std::vector<uint64_t> delivered(shards_.size(), 0);
  std::vector<uint64_t> filtered_by(shards_.size(), 0);
  size_t rows = 0;
  size_t filtered = 0;
  for (const EventId id : batch.rows) {
    const Event e = Get(id);
    const uint32_t s = meta_[id].shard;
    if (filter && !filter(e)) {
      filtered++;
      filtered_by[s]++;
      continue;
    }
    rows++;
    delivered[s]++;
    if (fn) fn(e);
  }
  const DurationMicros cost = cost_model().QueryCost(
      rows, filtered, batch.partitions_probed, batch.partitions_seeked);
  if (clock != nullptr) clock->AdvanceMicros(cost);
  if (cost_out != nullptr) *cost_out = cost;
  if (probe_out != nullptr) {
    probe_out->rows_delivered = rows;
    probe_out->rows_filtered = filtered;
    probe_out->partitions_probed = batch.partitions_probed;
    probe_out->partitions_seeked = batch.partitions_seeked;
    probe_out->segments_pruned = batch.segments_pruned;
    probe_out->shard_probes = batch.shard_slices.size();
  }
  ChargeSharded(batch, delivered, filtered_by, rows, filtered, cost);
  ChargeQueryMetrics(rows + filtered, filtered, batch.segments_pruned);
  return rows;
}

size_t ShardedStore::CountDest(ObjectId dest, TimeMicros begin, TimeMicros end,
                               Clock* clock) const {
  assert(sealed());
  RangeScanBatch batch;
  if (begin < end) {
    batch = Gather(/*by_src=*/false, dest, MaskFor(dest_shards_, dest),
                   catalog_->Get(dest).host(), begin, end);
  }
  // COUNT over the index: no per-row fetch cost.
  const DurationMicros cost = cost_model().QueryCost(
      0, 0, batch.partitions_probed, batch.partitions_seeked);
  if (clock != nullptr) clock->AdvanceMicros(cost);
  ChargeSharded(batch, {}, {}, 0, 0, cost);
  ChargeQueryMetrics(0, 0, batch.segments_pruned);
  return batch.rows.size();
}

size_t ShardedStore::CountDestRows(ObjectId dest, TimeMicros begin,
                                   TimeMicros end, uint64_t* probed,
                                   uint64_t* seeked, uint64_t* pruned) const {
  const RangeScanBatch batch =
      Gather(/*by_src=*/false, dest, MaskFor(dest_shards_, dest),
             catalog_->Get(dest).host(), begin, end);
  *probed = batch.partitions_probed;
  *seeked = batch.partitions_seeked;
  *pruned = batch.segments_pruned;
  return batch.rows.size();
}

size_t ShardedStore::SealTail(WorkerPool* pool) {
  size_t sealed_rows = 0;
  for (Shard& s : shards_) sealed_rows += s.backend->SealTail(pool);
  return sealed_rows;
}

size_t ShardedStore::Compact(WorkerPool* pool) {
  size_t reclaimed = 0;
  for (Shard& s : shards_) reclaimed += s.backend->Compact(pool);
  return reclaimed;
}

size_t ShardedStore::EvictBefore(TimeMicros horizon) {
  size_t evicted = 0;
  for (Shard& s : shards_) evicted += s.backend->EvictBefore(horizon);
  return evicted;
}

size_t ShardedStore::TailRows() const {
  size_t rows = 0;
  for (const Shard& s : shards_) rows += s.backend->TailRows();
  return rows;
}

StoreStats ShardedStore::stats() const {
  MutexLock lock(&agg_mu_);
  return total_;
}

void ShardedStore::ResetStats() {
  MutexLock lock(&agg_mu_);
  total_ = StoreStats{};
  for (StoreStats& s : shard_stats_) s = StoreStats{};
  for (uint64_t& b : shard_boundary_) b = 0;
}

ShardedStore::Snapshot ShardedStore::TakeSnapshot() const {
  Snapshot snap;
  MutexLock lock(&agg_mu_);
  snap.total = total_;
  snap.shards.resize(shards_.size());
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    ShardStatsRow& row = snap.shards[s];
    row.shard = s;
    row.resident_rows = shards_[s].gid_of.size();
    row.tail_rows = shards_[s].backend->TailRows();
    row.stats = shard_stats_[s];
    row.boundary_rows = shard_boundary_[s];
  }
  return snap;
}

}  // namespace aptrace
