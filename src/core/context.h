#ifndef APTRACE_CORE_CONTEXT_H_
#define APTRACE_CORE_CONTEXT_H_

#include <memory>
#include <optional>
#include <unordered_set>
#include <vector>

#include "bdl/spec.h"
#include "core/derived_attrs.h"
#include "storage/event_store.h"
#include "util/status.h"

namespace aptrace {

/// A run-ready analysis context: the compiled TrackingSpec with every
/// store-dependent piece resolved — the concrete global time range, the
/// host filter as HostIds, the derived-attribute provider, and the
/// starting point. Produced by the Refiner before handing the Executor
/// its metadata (paper Figure 3).
struct TrackingContext {
  const EventStore* store = nullptr;
  bdl::TrackingSpec spec;

  /// Resolved global range [ts, te): spec range intersected with the
  /// store's span; ts is Algorithm 1's "pre-defined global starting time".
  TimeMicros ts = 0;
  TimeMicros te = 0;

  /// Engaged host filter; nullopt = all hosts.
  std::optional<std::unordered_set<HostId>> host_filter;

  std::shared_ptr<StoreDerivedAttrs> derived;

  /// The anomaly event backtracking starts from, and the graph node that
  /// matched the chain's first pattern (usually the event's flow
  /// destination).
  Event start_event;
  ObjectId start_node = kInvalidObjectId;

  /// Execution knob, not part of the compiled spec: scan worker threads
  /// for the responsive Executor. 1 = the sequential legacy path, 0 =
  /// hardware concurrency, N > 1 = the parallel prefetch pipeline (results
  /// are bit-identical either way; see docs/parallel_execution.md).
  /// Carried here so contexts rebuilt by the Refiner keep the setting.
  int scan_threads = 1;

  /// True when `host` passes the host filter.
  bool HostAllowed(HostId host) const {
    return !host_filter.has_value() || host_filter->count(host) != 0;
  }

  /// The starting event's endpoints are the analyst's anchor: the where
  /// statement never deletes them (mirroring the graph's guarantee that
  /// the start node survives pruning).
  bool IsAnchor(ObjectId id) const {
    return id == start_event.FlowSource() || id == start_event.FlowDest();
  }

  /// Filter interpretation of the where statement for a candidate object
  /// reached through `event`: keep unless the condition positively fails.
  bool WhereKeeps(const SystemObject& object, const Event* event) const;
};

/// A start-point candidate: the matching event plus the graph node that
/// satisfied the chain's first pattern.
struct StartMatch {
  Event event;
  ObjectId node = kInvalidObjectId;
};

/// Finds the events in the store matching the spec's starting-point
/// pattern (chain[0]) within the spec's time/host range. When the pattern
/// constrains `event_time` with equality, the scan is narrowed to that
/// instant; otherwise the whole range is scanned (and charged to `clock`).
/// Returns matches in ascending time order, capped at `limit`.
std::vector<StartMatch> FindStartEvents(const EventStore& store,
                                        const bdl::TrackingSpec& spec,
                                        Clock* clock, size_t limit = 16);

/// Builds a TrackingContext for `spec`. If `start_override` is set, it is
/// used as the starting event (the experiment harness injects random
/// alerts this way); otherwise the start point is searched with
/// FindStartEvents and the earliest match is taken.
Result<TrackingContext> ResolveContext(const EventStore& store,
                                       bdl::TrackingSpec spec, Clock* clock,
                                       std::optional<Event> start_override =
                                           std::nullopt);

}  // namespace aptrace

#endif  // APTRACE_CORE_CONTEXT_H_
