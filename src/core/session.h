#ifndef APTRACE_CORE_SESSION_H_
#define APTRACE_CORE_SESSION_H_

#include <memory>
#include <optional>
#include <string_view>

#include "core/backtrack_engine.h"
#include "core/baseline_executor.h"
#include "core/executor.h"
#include "core/refiner.h"
#include "storage/event_store.h"
#include "util/status.h"
#include "util/sync.h"

namespace aptrace {

struct SessionOptions {
  /// Window count k of the execution-window partitioning algorithm.
  int num_windows_k = 8;

  /// Use the execute-to-complete baseline engine instead of APTrace's
  /// responsive Executor (for comparison experiments).
  bool use_baseline = false;

  /// Nearest-first window ordering (Algorithm 1); false = FIFO ablation.
  bool temporal_priority = true;

  /// Scan worker threads for the responsive Executor: 1 = sequential
  /// legacy path, 0 = hardware concurrency, N > 1 = parallel prefetch
  /// pipeline. Results are bit-identical regardless of the value (see
  /// docs/parallel_execution.md). Ignored by the baseline engine.
  int scan_threads = 1;

  /// When non-null, the responsive Executor prefetches on this externally
  /// owned pool instead of spawning its own (Executor::
  /// UseSharedWorkerPool) — how the daemon multiplexes all live sessions
  /// onto one set of scan workers. Must outlive the session. Ignored by
  /// the baseline engine.
  WorkerPool* shared_scan_pool = nullptr;
  /// Backlog cap handed to WorkerPool::TrySubmit in shared-pool mode;
  /// 0 picks a default proportional to the pool width.
  size_t shared_scan_backlog = 0;
};

/// One coherent view of a session's progress, captured atomically with
/// respect to other Snapshot() readers — the session-level analog of the
/// single-mutex StoreStats pattern (storage/storage_backend.h). Engine
/// counters, graph totals, and the update count come from the same
/// refresh instant, so a reader never sees e.g. a batch count ahead of
/// the edge total it reported. Refreshed at Step entry/exit and at every
/// update-batch boundary inside a Step, so concurrent readers (the shell
/// `status` command, the daemon's `stats`/`poll` ops) observe steadily
/// advancing, never torn, figures.
struct SessionSnapshot {
  bool started = false;
  bool exhausted = false;
  size_t graph_nodes = 0;
  size_t graph_edges = 0;
  int max_hop = 0;
  size_t update_batches = 0;
  uint64_t work_units = 0;
  uint64_t events_added = 0;
  uint64_t events_filtered = 0;
  uint64_t objects_excluded = 0;
  TimeMicros run_start = 0;
  /// Session clock at the refresh instant (simulated micros).
  TimeMicros sim_now = 0;
  int scan_threads = 1;
  size_t queue_size = 0;
  bdl::TrackDirection direction = bdl::TrackDirection::kBackward;
  ObjectId start_node = kInvalidObjectId;
};

/// An interactive analysis session — the workflow of the paper's Figure 3:
///
///   Session s(&store, &clock);
///   s.Start(bdl_v1);
///   s.Step({.max_updates = 10});   // monitor the first updates...
///   s.UpdateScript(bdl_v2);        // ...pause, add a heuristic, resume
///   s.Step(...);
///   s.Finish();                    // prune to matched paths, write DOT
///
/// Pausing is implicit: the engine only runs inside Step(), and
/// UpdateScript() between Steps routes through the Refiner, which reuses
/// the cached graph whenever the starting point is unchanged.
class Session {
 public:
  Session(const EventStore* store, Clock* clock, SessionOptions options = {});

  /// Compiles the script, resolves the starting point, and prepares the
  /// engine. `start_override` injects an explicit alert event (used by the
  /// experiment harness to backtrack from random events).
  Status Start(std::string_view bdl_text,
               std::optional<Event> start_override = std::nullopt);

  /// Starts from an already compiled spec.
  Status StartWithSpec(bdl::TrackingSpec spec,
                       std::optional<Event> start_override = std::nullopt);

  /// Runs the engine until a limit triggers; resumable.
  Result<StopReason> Step(const RunLimits& limits = {});

  /// Replaces the script between Steps (paper: pause, edit BDL, resume).
  /// Routes through the Refiner: compatible changes reuse the cached
  /// graph, incompatible ones restart the analysis.
  Status UpdateScript(std::string_view bdl_text);

  /// What the Refiner did on the last UpdateScript call.
  RefineAction last_refine_action() const { return last_action_; }

  bool started() const { return engine_ != nullptr; }
  bool Exhausted() const { return engine_ != nullptr && engine_->Exhausted(); }

  /// Tear-free progress view; safe to call from a thread other than the
  /// one driving Step() (see SessionSnapshot). All other accessors below
  /// must only be used when no Step() is in flight.
  SessionSnapshot Snapshot() const;

  /// Per-hop / per-rule query profile of the responsive engine ("EXPLAIN
  /// ANALYZE"; see core/query_profile.h); nullptr on the baseline engine.
  /// Same thread rules as the other engine accessors: no Step() in flight.
  const QueryProfile* profile() const {
    return executor_ != nullptr ? &executor_->profile() : nullptr;
  }

  /// The responsive engine behind this session, for profile-adjacent
  /// accessors (scan_cost_total etc.); nullptr on the baseline engine.
  const Executor* executor() const { return executor_; }

  const DepGraph& graph() const { return engine_->graph(); }
  const UpdateLog& update_log() const { return engine_->update_log(); }
  const RunStats& stats() const { return engine_->stats(); }
  const TrackingContext& context() const { return engine_->context(); }
  BacktrackEngine* engine() { return engine_.get(); }

  /// Persists the whole paused session (script, starting point, engine
  /// state) to a file; resume later — in another process — with
  /// LoadCheckpoint on a Session over the same store. Responsive engine
  /// only. `mark`, when non-null, embeds the daemon's durable-ingest
  /// position (see CheckpointDurableMark) so resume refuses a data
  /// directory that lost acknowledged batches.
  Status SaveCheckpoint(const std::string& path,
                        const CheckpointDurableMark* mark = nullptr) const;
  Status LoadCheckpoint(const std::string& path);

  /// Finalizes the result (paper Section III-A): optionally removes the
  /// paths that do not satisfy the intermediate points, then writes the
  /// DOT output if the script requested one.
  Status Finish(bool prune_to_matched_paths = true);

 private:
  /// Constructs a responsive Executor wired per options_ (shared pool,
  /// priority mode); shared by Start, restart, and checkpoint load.
  std::unique_ptr<Executor> MakeExecutor(TrackingContext ctx,
                                         int num_windows_k);
  /// Recomputes the cached snapshot from the engine. Caller must be the
  /// thread driving the engine (no concurrent Step).
  void RefreshSnapshot();

  const EventStore* store_;
  Clock* clock_;
  SessionOptions options_;
  std::unique_ptr<BacktrackEngine> engine_;
  Executor* executor_ = nullptr;  // engine_ downcast when !use_baseline
  std::optional<Event> start_override_;
  RefineAction last_action_ = RefineAction::kNoChange;

  mutable Mutex snapshot_mu_{"Session::snapshot_mu_"};
  SessionSnapshot snapshot_ APTRACE_GUARDED_BY(snapshot_mu_);
};

}  // namespace aptrace

#endif  // APTRACE_CORE_SESSION_H_
