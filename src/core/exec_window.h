#ifndef APTRACE_CORE_EXEC_WINDOW_H_
#define APTRACE_CORE_EXEC_WINDOW_H_

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "event/event.h"
#include "util/clock.h"

namespace aptrace {

/// An execution window (paper Section III-B1): the unit in which the
/// Executor retrieves dependents from the database. A window is the
/// 3-tuple <begin, finish, e> of Algorithm 1 plus the bookkeeping the
/// priority queue needs. The scan it stands for is: events whose flow
/// destination is `frontier` with timestamps in [begin, finish).
struct ExecWindow {
  TimeMicros begin = 0;
  TimeMicros finish = 0;
  EventId dep_event = kInvalidEventId;  // the event being explored
  ObjectId frontier = kInvalidObjectId;  // FlowSource(dep_event)
  int hop = 0;      // hop of the frontier node
  int state = 0;    // maintainer state of the frontier at enqueue time
  bool boosted = false;  // set by a matched prioritize rule
  uint64_t seq = 0;      // FIFO tie-break

  /// Temporal priority key: higher = explored earlier. Backward windows
  /// use `finish` (later finish = closer to the starting point); forward
  /// windows use `-begin` (earlier begin = closer). Filled by the
  /// generators below.
  TimeMicros priority_key = 0;
};

/// Max-heap ordering for the window priority queue:
///  1. boosted windows first (prioritize rules),
///  2. higher maintainer state first (intermediate-point prioritization,
///     Section III-B2),
///  3. later `finish` first — i.e. the window temporally closest to the
///     starting point (Section III-B1),
///  4. FIFO on ties.
///
/// `temporal` disables rule 3 (pure FIFO beyond boost/state), which is
/// the ablation knob for the paper's temporal-locality design claim.
struct ExecWindowLess {
  bool temporal = true;

  bool operator()(const ExecWindow& a, const ExecWindow& b) const {
    if (a.boosted != b.boosted) return !a.boosted;  // a < b when not boosted
    if (a.state != b.state) return a.state < b.state;
    if (temporal && a.priority_key != b.priority_key) {
      return a.priority_key < b.priority_key;
    }
    return a.seq > b.seq;  // smaller seq = earlier = higher priority
  }
};

/// The Executor's window priority queue: a binary max-heap over
/// ExecWindowLess with the two extras std::priority_queue cannot offer —
/// in-place iteration (entries(), for checkpointing and for the parallel
/// pipeline's prefetch submission) and a sorted snapshot.
///
/// Pop order is identical to std::priority_queue with the same comparator:
/// ExecWindowLess is a strict *total* order (the seq tie-break), so every
/// valid heap yields the same pop sequence — the parallel executor's
/// determinism contract leans on this.
class WindowQueue {
 public:
  explicit WindowQueue(ExecWindowLess less = {}) : less_(less) {}

  void push(ExecWindow w) {
    heap_.push_back(std::move(w));
    std::push_heap(heap_.begin(), heap_.end(), less_);
  }
  const ExecWindow& top() const { return heap_.front(); }
  void pop() {
    std::pop_heap(heap_.begin(), heap_.end(), less_);
    heap_.pop_back();
  }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }
  void clear() { heap_.clear(); }

  /// The pending windows in heap order (NOT priority order).
  const std::vector<ExecWindow>& entries() const { return heap_; }

  /// A copy of the pending windows in pop (priority) order.
  std::vector<ExecWindow> SortedSnapshot() const {
    std::vector<ExecWindow> out = heap_;
    std::sort_heap(out.begin(), out.end(), less_);
    std::reverse(out.begin(), out.end());  // sort_heap leaves ascending
    return out;
  }

 private:
  ExecWindowLess less_;
  std::vector<ExecWindow> heap_;
};

/// Cuts the monolithic window [global_start, e.timestamp) into at most `k`
/// pieces whose lengths form a geometric sequence with common ratio 2,
/// starting from the event and growing backwards in time:
///
///   sigma = (te - ts) / (2^k - 1)
///   windows (nearest first): [te-sigma, te), [te-3*sigma, te-sigma), ...
///
/// The last window absorbs integer-rounding remainders so the union is
/// exactly [clip_begin, te). Windows are clipped to `clip_begin` (coverage
/// deduplication); empty windows are dropped. Windows are returned nearest
/// (latest) first.
///
/// Preconditions: k >= 1. Returns an empty vector when clip_begin >= te.
std::vector<ExecWindow> GenExeWindows(const Event& e, TimeMicros global_start,
                                      TimeMicros clip_begin, int k);

/// Forward-tracking mirror: cuts (e.timestamp, global_end) into at most
/// `k` geometrically growing windows starting just after the event,
/// nearest (earliest) first; the frontier is the event's flow
/// *destination* (the tainted object) and windows are clipped above at
/// `clip_end` (forward coverage deduplication).
std::vector<ExecWindow> GenExeWindowsForward(const Event& e,
                                             TimeMicros global_end,
                                             TimeMicros clip_end, int k);

}  // namespace aptrace

#endif  // APTRACE_CORE_EXEC_WINDOW_H_
