#include "core/executor.h"

#include <algorithm>
#include <cassert>
#include <exception>
#include <thread>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/worker_pool.h"

namespace aptrace {

namespace {

/// Metric handles resolved once; Add() on them is a relaxed fetch-add.
struct ExecutorMetrics {
  obs::Counter* windows_processed;
  obs::Counter* windows_enqueued;
  obs::Counter* stale_windows;
  obs::Counter* queue_rebuilds;
  obs::Counter* dedup_clips;
  obs::Gauge* queue_depth;
  obs::LatencyHistogram* update_batch_latency;
  obs::Gauge* scan_threads;
  obs::Counter* prefetch_hits;
  obs::Counter* prefetch_waits;
  obs::Counter* prefetch_misses;
  obs::Gauge* pool_queue_depth;
  obs::LatencyHistogram* worker_scan_latency;
  obs::Counter* scan_cost;
  obs::Gauge* modeled_makespan;
};

const ExecutorMetrics& Em() {
  static const ExecutorMetrics m = {
      obs::Metrics().FindOrCreateCounter(obs::names::kExecutorWindowsProcessed),
      obs::Metrics().FindOrCreateCounter(obs::names::kExecutorWindowsEnqueued),
      obs::Metrics().FindOrCreateCounter(obs::names::kExecutorStaleWindows),
      obs::Metrics().FindOrCreateCounter(obs::names::kExecutorQueueRebuilds),
      obs::Metrics().FindOrCreateCounter(obs::names::kDedupWindowClips),
      obs::Metrics().FindOrCreateGauge(obs::names::kExecutorQueueDepth),
      obs::Metrics().FindOrCreateHistogram(obs::names::kUpdateBatchLatency),
      obs::Metrics().FindOrCreateGauge(obs::names::kExecutorScanThreads),
      obs::Metrics().FindOrCreateCounter(obs::names::kExecutorPrefetchHits),
      obs::Metrics().FindOrCreateCounter(obs::names::kExecutorPrefetchWaits),
      obs::Metrics().FindOrCreateCounter(obs::names::kExecutorPrefetchMisses),
      obs::Metrics().FindOrCreateGauge(obs::names::kExecutorPoolQueueDepth),
      obs::Metrics().FindOrCreateHistogram(
          obs::names::kExecutorWorkerScanLatency),
      obs::Metrics().FindOrCreateCounter(obs::names::kExecutorScanCostMicros),
      obs::Metrics().FindOrCreateGauge(
          obs::names::kExecutorModeledScanMakespan),
  };
  return m;
}

/// Pure per-row verdict bits a worker precomputes so the coordinator's
/// replay filter never re-evaluates host or where predicates.
constexpr uint8_t kVerdictHostOk = 1;
constexpr uint8_t kVerdictWhereKeeps = 2;

}  // namespace

const char* StopReasonName(StopReason r) {
  switch (r) {
    case StopReason::kCompleted: return "completed";
    case StopReason::kTimeBudget: return "time-budget";
    case StopReason::kExternalLimit: return "external-limit";
    case StopReason::kUpdateCap: return "update-cap";
    case StopReason::kStopped: return "stopped";
  }
  return "?";
}

// ------------------------------------------------- ScanOverlapModel

void ScanOverlapModel::Reset(int servers) {
  server_free_.assign(static_cast<size_t>(std::max(1, servers)), 0);
  ready_.clear();
  makespan_ = 0;
  total_ = 0;
}

void ScanOverlapModel::OnWindowScanned(uint64_t seq, DurationMicros cost,
                                       uint64_t child_seq_lo,
                                       uint64_t child_seq_hi) {
  TimeMicros ready = 0;
  if (const auto it = ready_.find(seq); it != ready_.end()) {
    ready = it->second;
    ready_.erase(it);
  }
  const auto server =
      std::min_element(server_free_.begin(), server_free_.end());
  const TimeMicros start = std::max(*server, ready);
  const TimeMicros finish = start + cost;
  *server = finish;
  makespan_ = std::max(makespan_, finish);
  total_ += cost;
  for (uint64_t c = child_seq_lo; c < child_seq_hi; ++c) {
    ready_[c] = finish;
  }
}

// ---------------------------------------------------------- Executor

struct Executor::PrefetchResult {
  RangeScanBatch batch;
  std::vector<uint8_t> verdicts;  // kVerdict* bits, one per batch row
};

/// Filled once by the worker task that owns it, then read by the
/// coordinator. `ready` flips under `mu`; the coordinator waits on `cv`
/// when it pops a window whose prefetch is still in flight, then moves
/// the result out under the lock — nothing reads guarded fields after.
/// A task that throws (a remote shard down, surfacing as DistError from
/// the store) parks the exception in `error` and still flips `ready`, so
/// the coordinator wakes and rethrows instead of waiting forever on a
/// slot the pool silently abandoned.
struct Executor::Prefetch {
  Mutex mu{"Executor::Prefetch::mu"};
  CondVar cv;
  bool ready APTRACE_GUARDED_BY(mu) = false;
  PrefetchResult result APTRACE_GUARDED_BY(mu);
  std::exception_ptr error APTRACE_GUARDED_BY(mu);
};

Executor::Executor(TrackingContext ctx, Clock* clock, int num_windows_k,
                   bool temporal_priority, bool coverage_dedup)
    : ctx_(std::move(ctx)),
      clock_(clock),
      k_(std::max(1, num_windows_k)),
      coverage_dedup_(coverage_dedup),
      maintainer_(&ctx_, &graph_),
      queue_(ExecWindowLess{temporal_priority}) {
  const int requested = ctx_.scan_threads;
  scan_threads_ =
      requested == 0
          ? std::max(1, static_cast<int>(std::thread::hardware_concurrency()))
          : std::clamp(requested, 1, WorkerPool::kMaxThreads);
  model_.Reset(scan_threads_);
}

Executor::~Executor() {
  // Only the owned pool is shut down; a shared pool belongs to the
  // SessionManager and keeps serving other sessions. Run()'s trailing
  // WaitIdle barrier guarantees no in-flight task still references this
  // executor either way.
  if (pool_ != nullptr) pool_->Shutdown(/*run_pending=*/false);
}

WorkerPool* Executor::ScanPool() const {
  return shared_pool_ != nullptr ? shared_pool_ : pool_.get();
}

void Executor::UseSharedWorkerPool(WorkerPool* pool, size_t backlog_cap) {
  assert(pool_ == nullptr);  // must precede the first Run()
  shared_pool_ = pool;
  shared_backlog_cap_ = backlog_cap == 0 ? 1 : backlog_cap;
}

void Executor::StartPoolIfNeeded() {
  if (shared_pool_ != nullptr) return;
  if (scan_threads_ <= 1 || pool_ != nullptr) return;
  pool_ = std::make_unique<WorkerPool>(scan_threads_, [] {
    obs::Tracer::Global().SetThreadName("scan-worker");
  });
}

void Executor::SubmitPrefetch(const ExecWindow& w) {
  WorkerPool* pool = ScanPool();
  if (pool == nullptr || prefetch_.count(w.seq) != 0) return;
  auto entry = std::make_shared<Prefetch>();
  // The task reads only immutable state (sealed store, context spec,
  // mutex-guarded derived-attr caches); every exclusion or graph decision
  // stays on the coordinator. ctx_ is stable while workers run: the pool
  // is drained before ApplyRefinedContext swaps it.
  const TrackingContext* ctx = &ctx_;
  const bool forward = ctx_.spec.direction == bdl::TrackDirection::kForward;
  const ObjectId frontier = w.frontier;
  const TimeMicros begin = w.begin;
  const TimeMicros finish = w.finish;
  auto task = [entry, ctx, forward, frontier, begin, finish] {
    APTRACE_SPAN("executor/worker_scan");
    Prefetch* slot = entry.get();
    try {
      const TimeMicros t0 = MonotonicNowMicros();
      const EventStore& store = *ctx->store;
      RangeScanBatch batch = forward
                                 ? store.CollectSrc(frontier, begin, finish)
                                 : store.CollectDest(frontier, begin, finish);
      std::vector<uint8_t> verdicts;
      verdicts.reserve(batch.rows.size());
      const ObjectCatalog& catalog = store.catalog();
      for (const EventId id : batch.rows) {
        const Event& e = store.Get(id);
        uint8_t v = 0;
        if (ctx->HostAllowed(e.host)) v |= kVerdictHostOk;
        const ObjectId fresh = forward ? e.FlowDest() : e.FlowSource();
        if (ctx->IsAnchor(fresh) || ctx->WhereKeeps(catalog.Get(fresh), &e)) {
          v |= kVerdictWhereKeeps;
        }
        verdicts.push_back(v);
      }
      Em().worker_scan_latency->Observe(
          MicrosToSeconds(MonotonicNowMicros() - t0));
      MutexLock lock(&slot->mu);
      slot->result.batch = std::move(batch);
      slot->result.verdicts = std::move(verdicts);
      slot->ready = true;
    } catch (...) {
      // Park the failure for the coordinator; letting it escape into the
      // pool would strand the coordinator on a never-ready slot.
      MutexLock lock(&slot->mu);
      slot->error = std::current_exception();
      slot->ready = true;
    }
    slot->cv.NotifyAll();
  };
  // Shared pool: bounded offer — a full backlog or a draining pool
  // rejects the prefetch and this window takes the fused sequential scan.
  const bool submitted = shared_pool_ != nullptr
                             ? pool->TrySubmit(std::move(task),
                                               shared_backlog_cap_)
                             : pool->Submit(std::move(task));
  if (submitted) prefetch_.emplace(w.seq, std::move(entry));
}

void Executor::SubmitMissingPrefetches() {
  if (ScanPool() == nullptr) return;
  for (const ExecWindow& w : queue_.entries()) SubmitPrefetch(w);
}

void Executor::InvalidatePrefetches() { prefetch_.clear(); }

void Executor::Bootstrap() {
  stats_.run_start = clock_->NowMicros();
  log_.SetRunStart(stats_.run_start);
  graph_.SetStart(ctx_.start_node);
  // G <- e0 (Algorithm 1 line 1): the alert edge seeds the graph...
  graph_.AddEventEdge(ctx_.start_event);
  const int state = maintainer_.OnEdgeAdded(ctx_.start_event);
  // ...and its execution windows seed the queue.
  EnqueueWindowsFor(ctx_.start_event, state);
  bootstrapped_ = true;
}

void Executor::EnqueueWindowsFor(const Event& e, int state) {
  const bool forward = ctx_.spec.direction == bdl::TrackDirection::kForward;
  // The object whose history the windows will scan: backward tracking
  // explores the event's flow source; forward tracking its destination.
  const ObjectId frontier = forward ? e.FlowDest() : e.FlowSource();
  if (excluded_.count(frontier)) return;
  // Coverage watermark: backward = highest finish already scheduled
  // (grows toward the start event); forward = lowest begin already
  // scheduled (grows toward the trace end).
  auto [it, inserted] =
      covered_until_.try_emplace(frontier, forward ? ctx_.te : ctx_.ts);
  const TimeMicros covered =
      coverage_dedup_ ? it->second : (forward ? ctx_.te : ctx_.ts);
  if (coverage_dedup_ && !inserted &&
      (forward ? covered < ctx_.te : covered > ctx_.ts)) {
    // The watermark is tighter than the raw context range, so this
    // object's windows were clipped against history already scheduled.
    Em().dedup_clips->Add();
  }
  std::vector<ExecWindow> windows =
      forward ? GenExeWindowsForward(e, ctx_.te, covered, k_)
              : GenExeWindows(e, ctx_.ts, covered, k_);
  if (windows.empty()) return;
  if (forward) {
    it->second = std::min(it->second, e.timestamp + 1);
  } else {
    it->second = std::max(it->second, e.timestamp);
  }
  const int hop = graph_.HasNode(frontier) ? graph_.GetNode(frontier).hop : 0;
  const bool boosted = maintainer_.IsBoosted(frontier);
  for (ExecWindow& w : windows) {
    w.hop = hop;
    w.state = state;
    w.boosted = boosted;
    w.seq = seq_++;
    // Speculative prefetch: the worker pool starts collecting this
    // window's rows while earlier windows are still being applied.
    SubmitPrefetch(w);
    queue_.push(w);
  }
  Em().windows_enqueued->Add(windows.size());
}

void Executor::ProcessWindow(const ExecWindow& w, const PrefetchResult* pre,
                             size_t* batch_edges, size_t* batch_nodes,
                             DurationMicros* scan_cost,
                             ScanProbeStats* probe) {
  APTRACE_SPAN("executor/process_window");
  const ObjectCatalog& catalog = ctx_.store->catalog();
  const bool forward = ctx_.spec.direction == bdl::TrackDirection::kForward;
  // The newly discovered endpoint of a scanned event: its flow source
  // when tracking backward, its flow destination when tracking forward.
  const auto discovered = [forward](const Event& e) {
    return forward ? e.FlowDest() : e.FlowSource();
  };
  // The host range and where-filter are pushed into the query itself (the
  // Refiner compiles them into the executable metadata): rows they reject
  // are discarded server-side at a fraction of the fetch cost.
  //
  // With a prefetch, the pure host/where verdicts were precomputed on a
  // worker; only the order-sensitive exclusion bookkeeping runs here, in
  // exactly the sequential decision order (the verdict table is indexed
  // by replay position, which matches the fused scan's row order).
  size_t row = 0;
  const auto filter = [&](const Event& e) {
    uint8_t v = 0;
    if (pre != nullptr) v = pre->verdicts[row++];
    const bool host_ok =
        pre != nullptr ? (v & kVerdictHostOk) != 0 : ctx_.HostAllowed(e.host);
    if (!host_ok) {
      stats_.events_filtered++;
      return false;
    }
    const ObjectId fresh = discovered(e);
    if (excluded_.count(fresh)) {
      stats_.events_filtered++;
      return false;
    }
    const bool keeps =
        pre != nullptr
            ? (v & kVerdictWhereKeeps) != 0
            : (ctx_.IsAnchor(fresh) || ctx_.WhereKeeps(catalog.Get(fresh), &e));
    if (!keeps) {
      // "deleted from the tracking analysis without further exploration"
      // (paper Section III-A1).
      excluded_.insert(fresh);
      stats_.objects_excluded++;
      stats_.events_filtered++;
      return false;
    }
    return true;
  };
  const auto visit = [&](const Event& e) {
    // Hop budget: do not extend paths beyond the limit.
    const ObjectId fresh = discovered(e);
    const ObjectId known = forward ? e.FlowSource() : e.FlowDest();
    if (ctx_.spec.hop_limit >= 0 && !graph_.HasNode(fresh) &&
        graph_.HopOf(known) + 1 > ctx_.spec.hop_limit) {
      stats_.events_filtered++;
      return;
    }
    const DepGraph::AddResult res = graph_.AddEventEdge(e);
    if (res == DepGraph::AddResult::kDuplicate) return;
    (*batch_edges)++;
    if (res == DepGraph::AddResult::kNewEdgeAndNode) (*batch_nodes)++;
    stats_.events_added++;
    const int state = maintainer_.OnEdgeAdded(e);
    EnqueueWindowsFor(e, state);
  };
  if (pre != nullptr) {
    ctx_.store->ReplayScan(pre->batch, clock_, visit, filter, scan_cost,
                           probe);
  } else if (forward) {
    ctx_.store->ScanSrc(w.frontier, w.begin, w.finish, clock_, visit, filter,
                        scan_cost, probe);
  } else {
    ctx_.store->ScanDest(w.frontier, w.begin, w.finish, clock_, visit,
                         filter, scan_cost, probe);
  }
  stats_.work_units++;
  Em().windows_processed->Add();
}

StopReason Executor::Run(const RunLimits& limits) {
  obs::Tracer::Global().SetThreadName("coordinator");
  StartPoolIfNeeded();
  Em().scan_threads->Set(scan_threads_);
  if (!bootstrapped_) Bootstrap();
  // Top-up pass: windows restored from a checkpoint or kept across a
  // refine have no prefetch yet.
  SubmitMissingPrefetches();
  StopReason reason = StopReason::kStopped;
  std::exception_ptr run_error;
  try {
    reason = RunLoop(limits);
  } catch (...) {
    // The barrier below must run even when the loop throws (a degraded
    // distributed scan): in-flight tasks still reference this executor.
    run_error = std::current_exception();
  }
  if (WorkerPool* pool = ScanPool(); pool != nullptr) {
    // Barrier: callers may mutate ctx_ (refine), serialize state
    // (checkpoint), or destroy the executor after Run returns; none of
    // that may race an in-flight scan. Finished prefetches stay cached
    // for the next Run. (On a shared pool the single scheduler thread
    // runs one quantum at a time, so this never waits on another
    // session's work.)
    pool->WaitIdle();
    Em().pool_queue_depth->Set(0);
  }
  Em().modeled_makespan->Set(model_.makespan());
  if (run_error != nullptr) std::rethrow_exception(run_error);
  return reason;
}

StopReason Executor::RunLoop(const RunLimits& limits) {
  const TimeMicros step_start = clock_->NowMicros();
  size_t updates_this_step = 0;

  while (!queue_.empty()) {
    if (limits.should_stop && limits.should_stop()) return StopReason::kStopped;
    const TimeMicros now = clock_->NowMicros();
    if (ctx_.spec.time_budget >= 0 &&
        now - stats_.run_start >= ctx_.spec.time_budget) {
      return StopReason::kTimeBudget;
    }
    if (limits.sim_time >= 0 && now - step_start >= limits.sim_time) {
      return StopReason::kExternalLimit;
    }
    if (limits.max_updates != 0 && updates_this_step >= limits.max_updates) {
      return StopReason::kUpdateCap;
    }

    const ExecWindow w = queue_.top();
    queue_.pop();
    // Stale windows: the frontier may have been excluded or pruned since
    // this window was enqueued. Checked before touching the prefetch so a
    // stale window never blocks on its in-flight scan.
    const bool stale =
        excluded_.count(w.frontier) != 0 ||
        (ctx_.spec.hop_limit >= 0 && graph_.HasNode(w.frontier) &&
         graph_.GetNode(w.frontier).hop + 1 > ctx_.spec.hop_limit);
    if (stale) {
      // "stops exploring the path and switches to other shorter paths".
      Em().stale_windows->Add();
      prefetch_.erase(w.seq);
      model_.OnWindowDropped(w.seq);
      continue;
    }

    std::unique_ptr<PrefetchResult> pre;
    if (ScanPool() != nullptr) {
      if (const auto it = prefetch_.find(w.seq); it != prefetch_.end()) {
        const std::shared_ptr<Prefetch> slot = std::move(it->second);
        prefetch_.erase(it);
        Prefetch* raw = slot.get();
        MutexLock lock(&raw->mu);
        if (raw->ready) {
          Em().prefetch_hits->Add();
        } else {
          Em().prefetch_waits->Add();
          while (!raw->ready) raw->cv.Wait(lock);
        }
        if (raw->error != nullptr) std::rethrow_exception(raw->error);
        pre = std::make_unique<PrefetchResult>(std::move(raw->result));
      } else {
        // Submission failed or never happened; fall back to the fused
        // sequential scan (identical results, just no overlap).
        Em().prefetch_misses->Add();
      }
    }

    size_t batch_edges = 0;
    size_t batch_nodes = 0;
    DurationMicros scan_cost = 0;
    ScanProbeStats probe;
    const uint64_t child_seq_lo = seq_;
    const TimeMicros wall0 = MonotonicNowMicros();
    ProcessWindow(w, pre.get(), &batch_edges, &batch_nodes, &scan_cost,
                  &probe);
    // Attribution happens on the coordinator with exactly the cost the
    // window charged, so the profile's axes reconcile with the engine's
    // own totals (wall micros are the sole nondeterministic field).
    profile_.OnWindowScanned(
        w.hop, w.state, w.boosted, probe, scan_cost, batch_edges,
        static_cast<uint64_t>(MonotonicNowMicros() - wall0));
    model_.OnWindowScanned(w.seq, scan_cost, child_seq_lo, seq_);
    Em().scan_cost->Add(static_cast<uint64_t>(scan_cost));
    Em().queue_depth->Set(static_cast<int64_t>(queue_.size()));
    obs::Tracer::Global().RecordCounter(obs::names::kExecutorQueueDepth,
                                        static_cast<int64_t>(queue_.size()));
    if (WorkerPool* pool = ScanPool(); pool != nullptr) {
      Em().pool_queue_depth->Set(static_cast<int64_t>(pool->pending()));
    }
    if (batch_edges > 0) {
      UpdateBatch batch;
      batch.sim_time = clock_->NowMicros();
      batch.new_edges = batch_edges;
      batch.new_nodes = batch_nodes;
      batch.total_edges = graph_.NumEdges();
      batch.total_nodes = graph_.NumNodes();
      const TimeMicros prev_update =
          log_.empty() ? log_.run_start() : log_.batches().back().sim_time;
      Em().update_batch_latency->Observe(
          MicrosToSeconds(batch.sim_time - prev_update));
      log_.Add(batch);
      updates_this_step++;
      if (limits.on_update) limits.on_update(batch);
    }
  }
  return StopReason::kCompleted;
}

void Executor::RebuildQueue() {
  APTRACE_SPAN("executor/rebuild_queue");
  Em().queue_rebuilds->Add();
  std::vector<ExecWindow> keep;
  keep.reserve(queue_.size());
  while (!queue_.empty()) {
    ExecWindow w = queue_.top();
    queue_.pop();
    if (excluded_.count(w.frontier)) continue;
    if (!graph_.HasNode(w.frontier)) continue;  // pruned from the graph
    // Clamp into the (possibly narrowed) global range.
    w.begin = std::max(w.begin, ctx_.ts);
    w.finish = std::min(w.finish, ctx_.te);
    if (w.begin >= w.finish) continue;
    w.state = graph_.StateOf(w.frontier);
    w.boosted = maintainer_.IsBoosted(w.frontier);
    keep.push_back(std::move(w));
  }
  for (ExecWindow& w : keep) queue_.push(std::move(w));
}

void Executor::ApplyRefinedContext(TrackingContext new_ctx,
                                   const RefineDelta& delta) {
  if (WorkerPool* pool = ScanPool(); pool != nullptr) {
    pool->WaitIdle();  // workers read the old ctx_
  }
  // Cached prefetches carry the old context's verdicts and ranges; the
  // Run-start top-up pass resubmits under the new context.
  InvalidatePrefetches();
  ctx_ = std::move(new_ctx);
  maintainer_.UpdateContext(&ctx_);

  if (delta.range_narrowed) {
    // Drop cached edges outside the new range; coverage clamps so future
    // windows never rescan, and out-of-range pending windows are clamped
    // away in RebuildQueue below.
    graph_.RemoveEdgesIf([&](const DepGraph::Edge& e) {
      return e.timestamp < ctx_.ts || e.timestamp >= ctx_.te;
    });
    maintainer_.PruneUnreachable();
    const bool forward =
        ctx_.spec.direction == bdl::TrackDirection::kForward;
    for (auto& [obj, covered] : covered_until_) {
      (void)obj;
      if (forward) {
        covered = std::min(covered, ctx_.te);
      } else {
        covered = std::max(covered, ctx_.ts);
      }
    }
  }

  if (delta.where_changed) {
    // Re-evaluate every cached node against the new filter (object-level;
    // event-level conditions apply to future exploration only).
    excluded_.clear();
    stats_.objects_excluded = 0;
    std::vector<ObjectId> removed_nodes;
    graph_.RemoveNodesIf([&](ObjectId id) {
      if (ctx_.IsAnchor(id)) return false;  // same exemption as the scans
      const SystemObject& obj = ctx_.store->catalog().Get(id);
      if (ctx_.WhereKeeps(obj, nullptr)) return false;
      excluded_.insert(id);
      stats_.objects_excluded++;
      removed_nodes.push_back(id);
      return true;
    });
    maintainer_.PruneUnreachable();
    // Allow pruned-but-not-excluded objects to be rediscovered cleanly.
    for (ObjectId id : removed_nodes) covered_until_.erase(id);
    const auto ids = graph_.NodeIds();
    for (auto it = covered_until_.begin(); it != covered_until_.end();) {
      if (!graph_.HasNode(it->first) && excluded_.count(it->first) == 0) {
        it = covered_until_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Chain or filter changes both invalidate states (pruning may have
  // removed state-carrying paths), so re-propagate over the cached graph.
  maintainer_.RepropagateStates();
  if (delta.prioritize_changed || delta.where_changed) {
    maintainer_.RecomputeBoosts();
  }
  RebuildQueue();
  APTRACE_LOG(Info) << "Refined context applied: chain=" << delta.chain_changed
                    << " where=" << delta.where_changed
                    << " prioritize=" << delta.prioritize_changed
                    << " nodes=" << graph_.NumNodes()
                    << " queue=" << queue_.size();
}

}  // namespace aptrace
