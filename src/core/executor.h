#ifndef APTRACE_CORE_EXECUTOR_H_
#define APTRACE_CORE_EXECUTOR_H_

#include <iosfwd>
#include <memory>
#include <queue>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/backtrack_engine.h"
#include "core/exec_window.h"
#include "core/maintainer.h"

namespace aptrace {

/// What the Refiner decided changed between two compatible specs (same
/// starting point, same time/host range). See core/refiner.h.
struct RefineDelta {
  bool chain_changed = false;
  bool where_changed = false;
  bool prioritize_changed = false;
  bool budgets_changed = false;
  /// The new global time range is a subset of the old one: cached scans
  /// are supersets of what the narrowed analysis needs, so the graph and
  /// queue are pruned/clamped instead of restarting.
  bool range_narrowed = false;
};

/// The responsive Executor (paper Section III-B1, Algorithm 1).
///
/// A prioritized graph search over *execution windows* rather than whole
/// per-node history scans: exploring an event enqueues up to k
/// geometrically-sized windows over its past, nearest-first, so dependents
/// arrive in many small batches and the dependency graph updates steadily.
///
/// Per-object scan coverage is tracked so overlapping windows from
/// different dependent events never rescan the same history
/// ("no new nodes that could be explored" termination).
class Executor : public BacktrackEngine {
 public:
  /// `num_windows_k` is the user-configurable window count k (the paper's
  /// blue team used the empirical value 8). `temporal_priority` selects
  /// the nearest-first window ordering of Algorithm 1; false degrades to
  /// FIFO (the ablation in bench_ablation_priority). `coverage_dedup`
  /// clips re-enqueued windows against the per-object scan watermark;
  /// false re-scans overlapping history (the ablation in
  /// bench_ablation_dedup) — results are identical, work is not.
  Executor(TrackingContext ctx, Clock* clock, int num_windows_k = 8,
           bool temporal_priority = true, bool coverage_dedup = true);

  StopReason Run(const RunLimits& limits) override;
  bool Exhausted() const override { return bootstrapped_ && queue_.empty(); }

  const DepGraph& graph() const override { return graph_; }
  DepGraph* mutable_graph() override { return &graph_; }
  const UpdateLog& update_log() const override { return log_; }
  const RunStats& stats() const override { return stats_; }
  const TrackingContext& context() const override { return ctx_; }

  GraphMaintainer& maintainer() { return maintainer_; }
  int num_windows_k() const { return k_; }
  size_t queue_size() const { return queue_.size(); }

  /// Persists the paused engine state — graph (with hops/states),
  /// pending windows, scan coverage, exclusions, update log, counters —
  /// as line-oriented text, so an investigation can resume in another
  /// process. Restore with RestoreCheckpoint on a freshly constructed
  /// Executor over the same store and an equivalent context.
  Status SaveCheckpoint(std::ostream& os) const;
  Status RestoreCheckpoint(std::istream& is);

  /// Refiner entry point for compatible spec changes (paper Section
  /// III-B3): swaps in the new context and reuses the cached graph —
  /// re-propagating states when the chain changed, pruning nodes and
  /// pending windows when the where filter changed, and re-deriving
  /// prioritize boosts — all without touching the database.
  ///
  /// Note: where-filter reuse assumes the analyst *tightens* filters over
  /// iterations (the paper's workflow); relaxing a filter requires a
  /// restart, which the Session performs when the Refiner detects an
  /// incompatible change.
  void ApplyRefinedContext(TrackingContext new_ctx, const RefineDelta& delta);

 private:
  void Bootstrap();
  void ProcessWindow(const ExecWindow& w, size_t* batch_edges,
                     size_t* batch_nodes);
  /// Enqueues the uncovered execution windows of `e` (Algorithm 1's
  /// genExeWindow), priced with the current state/boost of its source.
  void EnqueueWindowsFor(const Event& e, int state);
  /// Drains and re-pushes the queue, dropping stale windows and refreshing
  /// state/boost priorities from the current graph.
  void RebuildQueue();

  TrackingContext ctx_;
  Clock* clock_;
  int k_;
  bool coverage_dedup_;
  DepGraph graph_;
  GraphMaintainer maintainer_;
  UpdateLog log_;
  RunStats stats_;
  std::priority_queue<ExecWindow, std::vector<ExecWindow>, ExecWindowLess>
      queue_;
  /// Per-object high-water mark of scheduled scan coverage [ctx.ts, t).
  std::unordered_map<ObjectId, TimeMicros> covered_until_;
  /// Objects deleted from the analysis by the where statement.
  std::unordered_set<ObjectId> excluded_;
  uint64_t seq_ = 0;
  bool bootstrapped_ = false;
};

}  // namespace aptrace

#endif  // APTRACE_CORE_EXECUTOR_H_
