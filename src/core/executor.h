#ifndef APTRACE_CORE_EXECUTOR_H_
#define APTRACE_CORE_EXECUTOR_H_

#include <iosfwd>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/backtrack_engine.h"
#include "core/exec_window.h"
#include "core/maintainer.h"
#include "core/query_profile.h"

namespace aptrace {

class WorkerPool;  // util/worker_pool.h

/// What the Refiner decided changed between two compatible specs (same
/// starting point, same time/host range). See core/refiner.h.
struct RefineDelta {
  bool chain_changed = false;
  bool where_changed = false;
  bool prioritize_changed = false;
  bool budgets_changed = false;
  /// The new global time range is a subset of the old one: cached scans
  /// are supersets of what the narrowed analysis needs, so the graph and
  /// queue are pruned/clamped instead of restarting.
  bool range_narrowed = false;
};

/// Deterministic discrete-event model of how a run's window scans would
/// schedule onto N parallel scan servers.
///
/// The cost model treats every scan as an I/O-bound database query with a
/// simulated duration (storage/cost_model.h); those queries genuinely
/// overlap on a real backend, which is the whole point of the parallel
/// pipeline. This model replays the coordinator's deterministic scan
/// sequence onto N virtual servers: a window's scan may start once (a) a
/// server is free and (b) the scan that *discovered* the window has
/// finished (its rows are what enqueued it). `makespan()` is then the
/// modeled parallel completion time, and `total_cost() / makespan()` the
/// modeled scan speedup — a timing-independent figure that is identical
/// on every machine, unlike wall clock on a loaded CI box.
class ScanOverlapModel {
 public:
  /// Starts a fresh schedule on `servers` virtual scan servers.
  void Reset(int servers);

  /// Records the scan of window `seq` costing `cost` simulated micros.
  /// Windows with seq in [child_seq_lo, child_seq_hi) were enqueued by
  /// this scan's rows and become ready when it finishes. Windows never
  /// announced as children (the bootstrap set) are ready at time 0.
  void OnWindowScanned(uint64_t seq, DurationMicros cost,
                       uint64_t child_seq_lo, uint64_t child_seq_hi);

  /// Forgets a window popped as stale (its scan never runs).
  void OnWindowDropped(uint64_t seq) { ready_.erase(seq); }

  DurationMicros total_cost() const { return total_; }
  DurationMicros makespan() const { return makespan_; }

 private:
  std::vector<TimeMicros> server_free_;
  std::unordered_map<uint64_t, TimeMicros> ready_;
  TimeMicros makespan_ = 0;
  DurationMicros total_ = 0;
};

/// Durable-ingest mark embedded in daemon checkpoints (record kind "D"):
/// what the store durably held when the checkpoint was taken. On restore
/// the store must hold at least `store_events` events, otherwise the data
/// directory lost acknowledged batches and resuming would serve a graph
/// over events that no longer exist (STO-E009). `wal_seq` records the
/// last acknowledged WAL batch so operators can line the checkpoint up
/// against `wal_applied_through` in the daemon's stats.
struct CheckpointDurableMark {
  uint64_t store_events = 0;
  uint64_t wal_seq = 0;
};

/// The responsive Executor (paper Section III-B1, Algorithm 1).
///
/// A prioritized graph search over *execution windows* rather than whole
/// per-node history scans: exploring an event enqueues up to k
/// geometrically-sized windows over its past, nearest-first, so dependents
/// arrive in many small batches and the dependency graph updates steadily.
///
/// Per-object scan coverage is tracked so overlapping windows from
/// different dependent events never rescan the same history
/// ("no new nodes that could be explored" termination).
///
/// Parallel scan pipeline (ctx.scan_threads > 1): the windows sitting in
/// the priority queue are *speculatively prefetched* by a WorkerPool —
/// each worker runs the pure, read-only row collection (EventStore::
/// CollectDest/CollectSrc) plus the pure per-row host/where verdicts for
/// one window. The coordinator thread then pops windows in the exact
/// sequential priority order and *replays* each prefetched batch through
/// the unmodified Algorithm 1 bookkeeping: graph and maintainer mutation,
/// exclusion decisions, coverage watermarks, update-log batches, and all
/// simulated-cost charging happen only on the coordinator, in the same
/// order as the sequential path. The produced graph, update log, stats,
/// and stop reason are therefore bit-identical to scan_threads == 1 for
/// any input (tests/executor_differential_test.cc enforces this).
class Executor : public BacktrackEngine {
 public:
  /// `num_windows_k` is the user-configurable window count k (the paper's
  /// blue team used the empirical value 8). `temporal_priority` selects
  /// the nearest-first window ordering of Algorithm 1; false degrades to
  /// FIFO (the ablation in bench_ablation_priority). `coverage_dedup`
  /// clips re-enqueued windows against the per-object scan watermark;
  /// false re-scans overlapping history (the ablation in
  /// bench_ablation_dedup) — results are identical, work is not.
  ///
  /// The scan thread count comes from ctx.scan_threads (0 = hardware
  /// concurrency, clamped to WorkerPool::kMaxThreads).
  Executor(TrackingContext ctx, Clock* clock, int num_windows_k = 8,
           bool temporal_priority = true, bool coverage_dedup = true);

  /// Joins the scan worker pool (in-flight prefetches finish, pending
  /// ones are discarded) before any member a worker reads is destroyed.
  ~Executor() override;

  StopReason Run(const RunLimits& limits) override;
  bool Exhausted() const override { return bootstrapped_ && queue_.empty(); }

  const DepGraph& graph() const override { return graph_; }
  DepGraph* mutable_graph() override { return &graph_; }
  const UpdateLog& update_log() const override { return log_; }
  const RunStats& stats() const override { return stats_; }
  const TrackingContext& context() const override { return ctx_; }

  GraphMaintainer& maintainer() { return maintainer_; }
  int num_windows_k() const { return k_; }
  size_t queue_size() const { return queue_.size(); }

  /// Effective scan worker thread count (1 = sequential path).
  int scan_threads() const { return scan_threads_; }
  /// Total simulated cost of the scans this executor charged, and the
  /// modeled makespan of those scans on scan_threads() parallel servers
  /// (see ScanOverlapModel). Both are deterministic per input.
  DurationMicros scan_cost_total() const { return model_.total_cost(); }
  DurationMicros modeled_scan_makespan() const { return model_.makespan(); }

  /// Per-hop / per-rule attribution of everything this executor scanned
  /// (the "EXPLAIN ANALYZE" view; see core/query_profile.h). Purely
  /// observational: reading it — or ignoring it — never changes the run.
  /// Profiles cover this process's work only (not serialized with
  /// checkpoints). Coordinator-thread data: read only when no Run() is in
  /// flight.
  const QueryProfile& profile() const { return profile_; }

  /// Persists the paused engine state — graph (with hops/states),
  /// pending windows, scan coverage, exclusions, update log, counters —
  /// as line-oriented text, so an investigation can resume in another
  /// process. Restore with RestoreCheckpoint on a freshly constructed
  /// Executor over the same store and an equivalent context.
  ///
  /// `mark`, when non-null, embeds a durable-ingest mark (record kind
  /// "D") recording the store size and last acknowledged WAL batch at
  /// checkpoint time. RestoreCheckpoint then refuses (STO-E009) to
  /// resume over a store that holds fewer events than the mark — i.e.
  /// a data directory that lost acknowledged batches — so a recovered
  /// daemon never serves a graph over events it no longer has, and
  /// replaying the WAL past `wal_seq` never double-ingests.
  Status SaveCheckpoint(std::ostream& os,
                        const CheckpointDurableMark* mark = nullptr) const;
  Status RestoreCheckpoint(std::istream& is);

  /// Runs the prefetch pipeline on an externally owned pool instead of
  /// spawning one. The daemon's SessionManager shares one pool across all
  /// live sessions; each prefetch is then offered with
  /// WorkerPool::TrySubmit bounded by `backlog_cap`, and a rejected
  /// submission simply falls back to the fused sequential scan for that
  /// window (identical results — backpressure costs overlap, never
  /// correctness). The pool must outlive this executor and is never shut
  /// down by it. Call before the first Run().
  void UseSharedWorkerPool(WorkerPool* pool, size_t backlog_cap);

  /// Refiner entry point for compatible spec changes (paper Section
  /// III-B3): swaps in the new context and reuses the cached graph —
  /// re-propagating states when the chain changed, pruning nodes and
  /// pending windows when the where filter changed, and re-deriving
  /// prioritize boosts — all without touching the database.
  ///
  /// Note: where-filter reuse assumes the analyst *tightens* filters over
  /// iterations (the paper's workflow); relaxing a filter requires a
  /// restart, which the Session performs when the Refiner detects an
  /// incompatible change.
  void ApplyRefinedContext(TrackingContext new_ctx, const RefineDelta& delta);

 private:
  /// One window's speculative scan slot, filled by a worker thread.
  /// Defined in executor.cc.
  struct Prefetch;
  /// The payload a completed prefetch hands the coordinator: the raw row
  /// batch plus pure per-row verdicts. Defined in executor.cc.
  struct PrefetchResult;

  void Bootstrap();
  /// Applies one window's scan to the graph. `pre` non-null replays a
  /// prefetched batch (verdict-driven filter); null runs the fused
  /// sequential scan. Both paths make identical decisions in identical
  /// order. `scan_cost` receives the simulated cost charged; `probe` the
  /// scan's attribution record for the query profile.
  void ProcessWindow(const ExecWindow& w, const PrefetchResult* pre,
                     size_t* batch_edges, size_t* batch_nodes,
                     DurationMicros* scan_cost, ScanProbeStats* probe);
  /// Enqueues the uncovered execution windows of `e` (Algorithm 1's
  /// genExeWindow), priced with the current state/boost of its source.
  void EnqueueWindowsFor(const Event& e, int state);
  /// Drains and re-pushes the queue, dropping stale windows and refreshing
  /// state/boost priorities from the current graph.
  void RebuildQueue();

  // Parallel pipeline plumbing (all no-ops when no pool is active).
  /// The pool prefetches run on: the shared one when installed, else the
  /// owned one (nullptr on the sequential path).
  WorkerPool* ScanPool() const;
  void StartPoolIfNeeded();
  void SubmitPrefetch(const ExecWindow& w);
  /// Submits prefetches for queued windows that lack one — the top-up
  /// pass at Run start that covers checkpoint restores and rebuilt queues.
  void SubmitMissingPrefetches();
  /// Drops every cached/in-flight prefetch (context or ranges changed).
  void InvalidatePrefetches();
  StopReason RunLoop(const RunLimits& limits);

  TrackingContext ctx_;
  Clock* clock_;
  int k_;
  bool coverage_dedup_;
  DepGraph graph_;
  GraphMaintainer maintainer_;
  UpdateLog log_;
  RunStats stats_;
  WindowQueue queue_;
  /// Per-object high-water mark of scheduled scan coverage [ctx.ts, t).
  std::unordered_map<ObjectId, TimeMicros> covered_until_;
  /// Objects deleted from the analysis by the where statement.
  std::unordered_set<ObjectId> excluded_;
  uint64_t seq_ = 0;
  bool bootstrapped_ = false;

  int scan_threads_ = 1;
  ScanOverlapModel model_;
  QueryProfile profile_;
  /// Window seq -> its speculative scan (coordinator-only map; workers
  /// only touch the entry their task captured).
  std::unordered_map<uint64_t, std::shared_ptr<Prefetch>> prefetch_;
  std::unique_ptr<WorkerPool> pool_;
  WorkerPool* shared_pool_ = nullptr;  // not owned; see UseSharedWorkerPool
  size_t shared_backlog_cap_ = 0;
};

}  // namespace aptrace

#endif  // APTRACE_CORE_EXECUTOR_H_
