#ifndef APTRACE_CORE_RESOURCE_MODEL_H_
#define APTRACE_CORE_RESOURCE_MODEL_H_

#include <cstddef>
#include <cstdint>

#include "util/clock.h"

namespace aptrace {

/// Engine state fed to the resource model when taking a sample.
struct ResourceInputs {
  DurationMicros elapsed = 0;   // since the analysis started
  size_t graph_nodes = 0;
  size_t graph_edges = 0;
  size_t queue_size = 0;        // pending execution windows
  uint64_t rows_matched = 0;    // cumulative store rows fetched
};

/// One sample of simulated server utilization, in percent.
struct ResourceSample {
  double cpu_pct = 0;
  double mem_pct = 0;
};

/// Analytic model of APTrace's server-side CPU and memory utilization,
/// substituting for the Solaris-mode measurements of the paper's Figure 6
/// (see DESIGN.md, substitution table).
///
/// Shape reproduced from the paper's observations:
///  * memory peaks early (database initialization, BDL compilation,
///    heuristics loading) at ~15% and decays to a ~3% plateau, plus a
///    small term that grows with the cached graph and queue;
///  * CPU ramps from ~3% toward ~11% as the search frontier widens.
class ResourceModel {
 public:
  struct Params {
    double base_mem_pct = 2.5;
    double startup_mem_pct = 12.5;          // peak extra memory at t = 0
    double startup_decay_micros = 90.0 * kMicrosPerSecond;
    double mem_pct_per_node = 1.0 / 40000;  // cached graph footprint
    double mem_pct_per_window = 1.0 / 80000;

    double base_cpu_pct = 3.0;
    double cpu_ramp_pct = 8.0;              // asymptotic extra CPU
    double cpu_ramp_micros = 8.0 * kMicrosPerMinute;
  };

  ResourceModel() : ResourceModel(Params{}) {}
  explicit ResourceModel(Params params) : params_(params) {}

  ResourceSample Sample(const ResourceInputs& in) const;

  const Params& params() const { return params_; }

 private:
  Params params_;
};

}  // namespace aptrace

#endif  // APTRACE_CORE_RESOURCE_MODEL_H_
