#include "core/session.h"

#include "bdl/analyzer.h"
#include "graph/dot_writer.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace aptrace {

namespace {

/// Observes wall time (not simulated time) spent in an interactive entry
/// point — what an analyst actually waits on.
class WallTimer {
 public:
  explicit WallTimer(const char* histogram_name)
      : histogram_(obs::Metrics().FindOrCreateHistogram(histogram_name)),
        start_(MonotonicNowMicros()) {}
  ~WallTimer() {
    histogram_->Observe(MicrosToSeconds(MonotonicNowMicros() - start_));
  }

 private:
  obs::LatencyHistogram* histogram_;
  TimeMicros start_;
};

}  // namespace

Session::Session(const EventStore* store, Clock* clock,
                 SessionOptions options)
    : store_(store), clock_(clock), options_(options) {}

Status Session::Start(std::string_view bdl_text,
                      std::optional<Event> start_override) {
  auto spec = bdl::CompileBdl(bdl_text);
  if (!spec.ok()) return spec.status();
  return StartWithSpec(std::move(spec.value()), start_override);
}

Status Session::StartWithSpec(bdl::TrackingSpec spec,
                              std::optional<Event> start_override) {
  APTRACE_SPAN("session/resolve_context");
  auto ctx = ResolveContext(*store_, std::move(spec), clock_, start_override);
  if (!ctx.ok()) return ctx.status();
  ctx.value().scan_threads = options_.scan_threads;
  start_override_ = start_override;
  if (options_.use_baseline) {
    engine_ = std::make_unique<BaselineExecutor>(std::move(ctx.value()),
                                                 clock_);
    executor_ = nullptr;
  } else {
    auto executor = std::make_unique<Executor>(std::move(ctx.value()), clock_,
                                               options_.num_windows_k,
                                               options_.temporal_priority);
    executor_ = executor.get();
    engine_ = std::move(executor);
  }
  last_action_ = RefineAction::kNoChange;
  return Status::Ok();
}

Result<StopReason> Session::Step(const RunLimits& limits) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("session not started");
  }
  APTRACE_SPAN("session/step");
  WallTimer timer(obs::names::kSessionStepLatency);
  return engine_->Run(limits);
}

Status Session::UpdateScript(std::string_view bdl_text) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("session not started");
  }
  APTRACE_SPAN("session/update_script");
  WallTimer timer(obs::names::kSessionUpdateScriptLatency);
  auto spec = bdl::CompileBdl(bdl_text);
  if (!spec.ok()) return spec.status();
  auto ctx = ResolveContext(*store_, std::move(spec.value()), clock_,
                            start_override_);
  if (!ctx.ok()) return ctx.status();
  ctx.value().scan_threads = options_.scan_threads;

  const RefineResult refine = Refiner::Classify(engine_->context(),
                                                ctx.value());
  last_action_ = refine.action;
  APTRACE_LOG(Info) << "Refiner: " << RefineActionName(refine.action);

  switch (refine.action) {
    case RefineAction::kNoChange:
      return Status::Ok();
    case RefineAction::kReuse:
      if (executor_ != nullptr) {
        executor_->ApplyRefinedContext(std::move(ctx.value()), refine.delta);
        return Status::Ok();
      }
      // The baseline engine cannot reuse partial work; fall through to a
      // restart (this is exactly the execute-to-complete limitation the
      // paper motivates APTrace with).
      [[fallthrough]];
    case RefineAction::kRestart: {
      const bool use_baseline = options_.use_baseline;
      if (use_baseline) {
        engine_ = std::make_unique<BaselineExecutor>(std::move(ctx.value()),
                                                     clock_);
        executor_ = nullptr;
      } else {
        auto executor = std::make_unique<Executor>(
            std::move(ctx.value()), clock_, options_.num_windows_k,
            options_.temporal_priority);
        executor_ = executor.get();
        engine_ = std::move(executor);
      }
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable");
}

Status Session::Finish(bool prune_to_matched_paths) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("session not started");
  }
  if (prune_to_matched_paths && executor_ != nullptr) {
    const size_t removed = executor_->maintainer().PruneToMatchedPaths();
    if (removed > 0) {
      APTRACE_LOG(Info) << "Finish: pruned " << removed
                        << " nodes not on matched paths";
    }
  }
  const auto& spec = engine_->context().spec;
  if (!spec.output_path.empty()) {
    DotOptions opts;
    opts.alert_event = engine_->context().start_event.id;
    return WriteDotFile(engine_->graph(), store_->catalog(),
                        spec.output_path, opts);
  }
  return Status::Ok();
}

}  // namespace aptrace
