#include "core/session.h"

#include "bdl/analyzer.h"
#include "dist/dist_error.h"
#include "graph/dot_writer.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/logging.h"
#include "util/worker_pool.h"

namespace aptrace {

namespace {

/// Observes wall time (not simulated time) spent in an interactive entry
/// point — what an analyst actually waits on.
class WallTimer {
 public:
  explicit WallTimer(const char* histogram_name)
      : histogram_(obs::Metrics().FindOrCreateHistogram(histogram_name)),
        start_(MonotonicNowMicros()) {}
  ~WallTimer() {
    histogram_->Observe(MicrosToSeconds(MonotonicNowMicros() - start_));
  }

 private:
  obs::LatencyHistogram* histogram_;
  TimeMicros start_;
};

}  // namespace

Session::Session(const EventStore* store, Clock* clock,
                 SessionOptions options)
    : store_(store), clock_(clock), options_(options) {}

std::unique_ptr<Executor> Session::MakeExecutor(TrackingContext ctx,
                                                int num_windows_k) {
  auto executor = std::make_unique<Executor>(std::move(ctx), clock_,
                                             num_windows_k,
                                             options_.temporal_priority);
  if (options_.shared_scan_pool != nullptr) {
    const size_t cap = options_.shared_scan_backlog != 0
                           ? options_.shared_scan_backlog
                           : static_cast<size_t>(
                                 options_.shared_scan_pool->num_threads()) *
                                 2;
    executor->UseSharedWorkerPool(options_.shared_scan_pool, cap);
  }
  return executor;
}

void Session::RefreshSnapshot() {
  SessionSnapshot snap;
  snap.started = engine_ != nullptr;
  if (snap.started) {
    const DepGraph& g = engine_->graph();
    const RunStats& rs = engine_->stats();
    snap.exhausted = engine_->Exhausted();
    snap.graph_nodes = g.NumNodes();
    snap.graph_edges = g.NumEdges();
    snap.max_hop = g.MaxHop();
    snap.update_batches = engine_->update_log().size();
    snap.work_units = rs.work_units;
    snap.events_added = rs.events_added;
    snap.events_filtered = rs.events_filtered;
    snap.objects_excluded = rs.objects_excluded;
    snap.run_start = rs.run_start;
    snap.sim_now = clock_->NowMicros();
    snap.direction = engine_->context().spec.direction;
    snap.start_node = engine_->context().start_node;
    if (executor_ != nullptr) {
      snap.scan_threads = executor_->scan_threads();
      snap.queue_size = executor_->queue_size();
    }
  }
  MutexLock lock(&snapshot_mu_);
  snapshot_ = snap;
}

SessionSnapshot Session::Snapshot() const {
  MutexLock lock(&snapshot_mu_);
  return snapshot_;
}

Status Session::Start(std::string_view bdl_text,
                      std::optional<Event> start_override) {
  auto spec = bdl::CompileBdl(bdl_text);
  if (!spec.ok()) return spec.status();
  return StartWithSpec(std::move(spec.value()), start_override);
}

Status Session::StartWithSpec(bdl::TrackingSpec spec,
                              std::optional<Event> start_override) {
  APTRACE_SPAN("session/resolve_context");
  // Start-point resolution scans the store, so over the distributed
  // fabric it can hit a downed shard daemon just like a Step can:
  // surface the typed DST-E00x error instead of unwinding through the
  // caller (in the daemon, an uncaught throw kills the process).
  Result<TrackingContext> ctx = Status::Ok();
  try {
    ctx = ResolveContext(*store_, std::move(spec), clock_, start_override);
  } catch (const dist::DistError& e) {
    return Status::Internal(e.what());
  }
  if (!ctx.ok()) return ctx.status();
  ctx.value().scan_threads = options_.scan_threads;
  start_override_ = start_override;
  if (options_.use_baseline) {
    engine_ = std::make_unique<BaselineExecutor>(std::move(ctx.value()),
                                                 clock_);
    executor_ = nullptr;
  } else {
    auto executor = MakeExecutor(std::move(ctx.value()),
                                 options_.num_windows_k);
    executor_ = executor.get();
    engine_ = std::move(executor);
  }
  last_action_ = RefineAction::kNoChange;
  RefreshSnapshot();
  return Status::Ok();
}

Result<StopReason> Session::Step(const RunLimits& limits) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("session not started");
  }
  APTRACE_SPAN("session/step");
  WallTimer timer(obs::names::kSessionStepLatency);
  // Keep the published snapshot moving while the engine runs: refresh at
  // every update-batch boundary, then once more after Run returns so the
  // terminal state (exhausted, final totals) is visible immediately.
  RunLimits wrapped = limits;
  wrapped.on_update = [this, &limits](const UpdateBatch& batch) {
    RefreshSnapshot();
    if (limits.on_update) limits.on_update(batch);
  };
  StopReason reason;
  try {
    reason = engine_->Run(wrapped);
  } catch (const dist::DistError& e) {
    // Degraded distributed scan (a shard daemon down, DST-E00x): surface
    // a typed error — the SessionManager marks the session failed with
    // this detail — instead of letting the exception terminate the
    // scheduler thread.
    RefreshSnapshot();
    return Status::Internal(e.what());
  }
  RefreshSnapshot();
  return reason;
}

Status Session::UpdateScript(std::string_view bdl_text) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("session not started");
  }
  APTRACE_SPAN("session/update_script");
  WallTimer timer(obs::names::kSessionUpdateScriptLatency);
  auto spec = bdl::CompileBdl(bdl_text);
  if (!spec.ok()) return spec.status();
  // Re-resolution scans the store; same degraded-fabric contract as
  // StartWithSpec.
  Result<TrackingContext> ctx = Status::Ok();
  try {
    ctx = ResolveContext(*store_, std::move(spec.value()), clock_,
                         start_override_);
  } catch (const dist::DistError& e) {
    return Status::Internal(e.what());
  }
  if (!ctx.ok()) return ctx.status();
  ctx.value().scan_threads = options_.scan_threads;

  const RefineResult refine = Refiner::Classify(engine_->context(),
                                                ctx.value());
  last_action_ = refine.action;
  APTRACE_LOG(Info) << "Refiner: " << RefineActionName(refine.action);

  switch (refine.action) {
    case RefineAction::kNoChange:
      return Status::Ok();
    case RefineAction::kReuse:
      if (executor_ != nullptr) {
        executor_->ApplyRefinedContext(std::move(ctx.value()), refine.delta);
        RefreshSnapshot();
        return Status::Ok();
      }
      // The baseline engine cannot reuse partial work; fall through to a
      // restart (this is exactly the execute-to-complete limitation the
      // paper motivates APTrace with).
      [[fallthrough]];
    case RefineAction::kRestart: {
      const bool use_baseline = options_.use_baseline;
      if (use_baseline) {
        engine_ = std::make_unique<BaselineExecutor>(std::move(ctx.value()),
                                                     clock_);
        executor_ = nullptr;
      } else {
        auto executor = MakeExecutor(std::move(ctx.value()),
                                     options_.num_windows_k);
        executor_ = executor.get();
        engine_ = std::move(executor);
      }
      RefreshSnapshot();
      return Status::Ok();
    }
  }
  return Status::Internal("unreachable");
}

Status Session::Finish(bool prune_to_matched_paths) {
  if (engine_ == nullptr) {
    return Status::FailedPrecondition("session not started");
  }
  if (prune_to_matched_paths && executor_ != nullptr) {
    const size_t removed = executor_->maintainer().PruneToMatchedPaths();
    if (removed > 0) {
      APTRACE_LOG(Info) << "Finish: pruned " << removed
                        << " nodes not on matched paths";
    }
    RefreshSnapshot();
  }
  const auto& spec = engine_->context().spec;
  if (!spec.output_path.empty()) {
    DotOptions opts;
    opts.alert_event = engine_->context().start_event.id;
    return WriteDotFile(engine_->graph(), store_->catalog(),
                        spec.output_path, opts);
  }
  return Status::Ok();
}

}  // namespace aptrace
