#ifndef APTRACE_CORE_MAINTAINER_H_
#define APTRACE_CORE_MAINTAINER_H_

#include <map>
#include <unordered_set>

#include "core/context.h"
#include "graph/dep_graph.h"

namespace aptrace {

/// The Dependency Graph Maintainer (paper Section III-B2): owns the state
/// propagation that realizes intermediate-point prioritization, tracks
/// quantity-based `prioritize` rules, and performs the graph maintenance
/// the Refiner needs (state re-propagation, pruning).
///
/// States: a node's state i means it was reached along an exploration path
/// whose nodes matched the chain prefix n1..ni; matching is carried (a
/// non-matching successor inherits its discoverer's state), so state is
/// "longest matched prefix so far on the best path". The starting point
/// has state 1. A node reaching state k = chain length means a full
/// start-to-end pattern match.
class GraphMaintainer {
 public:
  GraphMaintainer(const TrackingContext* ctx, DepGraph* graph);

  /// Reacts to a newly added edge: propagates states from the edge's flow
  /// destination to its source (with cascade through already-known edges)
  /// and updates prioritize-rule progress. Returns the resulting state of
  /// the flow-source node.
  int OnEdgeAdded(const Event& event);

  /// Recomputes every node state from scratch by breadth-first propagation
  /// from the start. Used by the Refiner when the chain changed: the
  /// cached graph is re-labelled in memory, with no database access
  /// (paper Section III-B3).
  void RepropagateStates();

  /// True once some node has matched the full chain (state == k). Always
  /// false for a chain consisting of only the starting point.
  bool end_point_reached() const { return end_point_reached_; }

  /// Prioritize-rule support: true if the node was boosted by a matched
  /// quantity rule (paper Program 2).
  bool IsBoosted(ObjectId node) const { return boosted_.count(node) != 0; }
  /// Re-derives rule progress and boosts from the current graph contents
  /// (after the Refiner pruned or replaced rules).
  void RecomputeBoosts();

  /// Removes nodes that are no longer connected to the start (undirected
  /// reachability); used after where-filter pruning. Returns #removed.
  size_t PruneUnreachable();

  /// Final-result filtering (paper Section III-A): keeps only nodes lying
  /// on exploration paths from the start to a full-chain match. No-op
  /// (returns 0) when the chain has no intermediate/end constraints or no
  /// full match exists yet. Returns #removed.
  size_t PruneToMatchedPaths();

  /// Points the maintainer at a new context (the Refiner swaps specs).
  void UpdateContext(const TrackingContext* ctx);

 private:
  /// State the freshly discovered node earns when reached from a node
  /// with `known_state` through `event`.
  int StateAfterEdge(int known_state, ObjectId fresh,
                     const Event& event) const;

  bool NodeMatchesPattern(size_t chain_index, ObjectId node,
                          const Event* event) const;

  /// Quantity-rule bookkeeping, keyed by (rule index, process id).
  struct RuleProgress {
    bool upstream_seen = false;
    bool downstream_seen = false;
    uint64_t upstream_amount = 0;    // max over matching upstream events
    uint64_t downstream_amount = 0;  // max over matching downstream events
  };
  void FeedRules(const Event& event);
  bool EventMatchesRulePattern(const Event& event,
                               const bdl::QuantityRule::EventPattern& p) const;

  const TrackingContext* ctx_;
  DepGraph* graph_;
  bool end_point_reached_ = false;
  std::map<std::pair<size_t, ObjectId>, RuleProgress> rule_progress_;
  std::unordered_set<ObjectId> boosted_;
};

}  // namespace aptrace

#endif  // APTRACE_CORE_MAINTAINER_H_
