#ifndef APTRACE_CORE_QUERY_PROFILE_H_
#define APTRACE_CORE_QUERY_PROFILE_H_

#include <cstdint>
#include <map>
#include <string>

#include "storage/storage_backend.h"
#include "util/clock.h"

namespace aptrace {

/// One attribution bucket of a query profile: everything the windows
/// charged to it consumed. All fields except `wall_micros` are
/// deterministic (derived from the simulated cost model and the scanned
/// rows); `wall_micros` is real coordinator time and is the only field
/// that varies between runs of the same query.
struct ProfileBucket {
  uint64_t windows = 0;        // execution windows scanned
  uint64_t rows = 0;           // rows delivered to the tracking logic
  uint64_t rows_filtered = 0;  // rows rejected server-side
  uint64_t partitions_probed = 0;
  uint64_t segments_pruned = 0;
  /// Shard fan-out of the windows' scans (1 per window on a monolithic
  /// store; the scatter width on the sharded store).
  uint64_t shard_probes = 0;
  uint64_t edges = 0;  // graph edges the windows contributed
  DurationMicros sim_cost = 0;  // simulated micros charged
  uint64_t wall_micros = 0;     // coordinator wall time (observational)

  void Charge(const ScanProbeStats& probe, DurationMicros cost,
              uint64_t new_edges, uint64_t wall) {
    windows++;
    rows += probe.rows_delivered;
    rows_filtered += probe.rows_filtered;
    partitions_probed += probe.partitions_probed;
    segments_pruned += probe.segments_pruned;
    shard_probes += probe.shard_probes;
    edges += new_edges;
    sim_cost += cost;
    wall_micros += wall;
  }
};

/// "EXPLAIN ANALYZE" for one tracking session: where the query spent its
/// simulated budget, attributed two ways over the same charges —
///   by_hop:   the window's hop distance from the starting point (how
///             deep in the backward closure the cost went), and
///   by_state: the maintainer state of the window's frontier, i.e. which
///             position of the BDL dependency-chain rule the window was
///             exploring for (state 0 = no rule progress).
/// Every window is charged to exactly one bucket on each axis, so each
/// axis sums to `total` exactly — the reconciliation tests rely on it.
///
/// The profile *observes* the run and never steers it: graphs are
/// bit-identical with or without anyone reading it.
struct QueryProfile {
  ProfileBucket total;
  std::map<int, ProfileBucket> by_hop;
  std::map<int, ProfileBucket> by_state;
  /// Windows that carried a prioritize-rule boost (a rollup flag, not a
  /// third axis — boosted windows are also in their hop/state buckets).
  uint64_t boosted_windows = 0;

  void OnWindowScanned(int hop, int state, bool boosted,
                       const ScanProbeStats& probe, DurationMicros cost,
                       uint64_t new_edges, uint64_t wall_micros) {
    total.Charge(probe, cost, new_edges, wall_micros);
    by_hop[hop].Charge(probe, cost, new_edges, wall_micros);
    by_state[state].Charge(probe, cost, new_edges, wall_micros);
    if (boosted) boosted_windows++;
  }
};

/// Compact JSON document (one line) for the `profile` protocol op and
/// `--profile ... --json`: {"windows":...,"by_hop":[...],"by_state":[...]}.
std::string QueryProfileToJson(const QueryProfile& profile);

/// Human-readable per-hop / per-rule breakdown table (what `--profile`
/// prints). `probe_unit` names the storage unit of partitions_probed
/// ("time partition" or "column segment").
std::string RenderQueryProfileTable(const QueryProfile& profile,
                                    const char* probe_unit);

}  // namespace aptrace

#endif  // APTRACE_CORE_QUERY_PROFILE_H_
