#include "core/exec_window.h"

#include <algorithm>

namespace aptrace {

std::vector<ExecWindow> GenExeWindows(const Event& e, TimeMicros global_start,
                                      TimeMicros clip_begin, int k) {
  std::vector<ExecWindow> out;
  const TimeMicros ts = global_start;
  const TimeMicros te = e.timestamp;
  const TimeMicros clip = std::max(clip_begin, ts);
  if (k < 1 || clip >= te) return out;

  // sigma = (te - ts) / (2^k - 1), at least one microsecond.
  const TimeMicros total = te - ts;
  const TimeMicros denom =
      (k >= 62) ? total : ((static_cast<TimeMicros>(1) << k) - 1);
  TimeMicros sigma = denom > 0 ? total / denom : 1;
  if (sigma < 1) sigma = 1;

  TimeMicros end = te;
  for (int i = 0; i < k && end > clip; ++i) {
    TimeMicros len = sigma << i;
    if (len <= 0) len = total;  // shift overflow guard for very large k
    TimeMicros begin = end - len;
    if (i == k - 1 || begin < ts) begin = ts;  // absorb rounding remainder
    const TimeMicros clipped_begin = std::max(begin, clip);
    if (clipped_begin < end) {
      ExecWindow w;
      w.begin = clipped_begin;
      w.finish = end;
      w.dep_event = e.id;
      w.frontier = e.FlowSource();
      w.priority_key = w.finish;
      out.push_back(w);
    }
    end = begin;
  }
  return out;
}

std::vector<ExecWindow> GenExeWindowsForward(const Event& e,
                                             TimeMicros global_end,
                                             TimeMicros clip_end, int k) {
  std::vector<ExecWindow> out;
  // Forward dependencies are strictly later than the event itself.
  const TimeMicros ts = e.timestamp + 1;
  const TimeMicros te = global_end;
  const TimeMicros clip = std::min(clip_end, te);
  if (k < 1 || ts >= clip) return out;

  const TimeMicros total = te - ts;
  const TimeMicros denom =
      (k >= 62) ? total : ((static_cast<TimeMicros>(1) << k) - 1);
  TimeMicros sigma = denom > 0 ? total / denom : 1;
  if (sigma < 1) sigma = 1;

  TimeMicros begin = ts;
  for (int i = 0; i < k && begin < clip; ++i) {
    TimeMicros len = sigma << i;
    if (len <= 0) len = total;  // shift overflow guard
    TimeMicros end = begin + len;
    if (i == k - 1 || end > te) end = te;  // absorb rounding remainder
    const TimeMicros clipped_end = std::min(end, clip);
    if (begin < clipped_end) {
      ExecWindow w;
      w.begin = begin;
      w.finish = clipped_end;
      w.dep_event = e.id;
      w.frontier = e.FlowDest();
      w.priority_key = -w.begin;
      out.push_back(w);
    }
    begin = end;
  }
  return out;
}

}  // namespace aptrace
