#ifndef APTRACE_CORE_ENGINE_H_
#define APTRACE_CORE_ENGINE_H_

/// \file
/// Public entry point of the APTrace library.
///
/// Most applications use the interactive Session (core/session.h) for the
/// paper's monitor / pause / refine / resume workflow. This header adds a
/// one-shot convenience for batch use and pulls in the full public API.

#include <optional>
#include <string_view>

#include "bdl/analyzer.h"
#include "core/baseline_executor.h"
#include "core/executor.h"
#include "core/refiner.h"
#include "core/resource_model.h"
#include "core/session.h"
#include "graph/dot_writer.h"
#include "storage/event_store.h"

namespace aptrace {

/// Result of a one-shot script run.
struct RunReport {
  StopReason reason = StopReason::kCompleted;
  size_t graph_nodes = 0;
  size_t graph_edges = 0;
  UpdateLog log;
  RunStats stats;
};

/// Compiles and runs a BDL script to completion (or until `limits`
/// trigger), finalizes the result (path pruning + DOT output), and
/// returns a report. `clock` drives and accumulates the simulated cost;
/// pass a fresh SimClock for an isolated measurement.
Result<RunReport> RunBdlScript(const EventStore& store, Clock* clock,
                               std::string_view bdl_text,
                               const SessionOptions& options = {},
                               const RunLimits& limits = {},
                               std::optional<Event> start_override =
                                   std::nullopt);

}  // namespace aptrace

#endif  // APTRACE_CORE_ENGINE_H_
