#include "core/engine.h"

namespace aptrace {

Result<RunReport> RunBdlScript(const EventStore& store, Clock* clock,
                               std::string_view bdl_text,
                               const SessionOptions& options,
                               const RunLimits& limits,
                               std::optional<Event> start_override) {
  Session session(&store, clock, options);
  if (auto s = session.Start(bdl_text, start_override); !s.ok()) return s;
  auto reason = session.Step(limits);
  if (!reason.ok()) return reason.status();
  if (auto s = session.Finish(); !s.ok()) return s;

  RunReport report;
  report.reason = reason.value();
  report.graph_nodes = session.graph().NumNodes();
  report.graph_edges = session.graph().NumEdges();
  report.log = session.update_log();
  report.stats = session.stats();
  return report;
}

}  // namespace aptrace
