#include "core/resource_model.h"

#include <algorithm>
#include <cmath>

namespace aptrace {

ResourceSample ResourceModel::Sample(const ResourceInputs& in) const {
  const double t = static_cast<double>(std::max<DurationMicros>(in.elapsed, 0));

  ResourceSample s;
  s.mem_pct = params_.base_mem_pct +
              params_.startup_mem_pct *
                  std::exp(-t / params_.startup_decay_micros) +
              params_.mem_pct_per_node * static_cast<double>(in.graph_nodes) +
              params_.mem_pct_per_window * static_cast<double>(in.queue_size);
  s.cpu_pct = params_.base_cpu_pct +
              params_.cpu_ramp_pct *
                  (1.0 - std::exp(-t / params_.cpu_ramp_micros));
  s.mem_pct = std::clamp(s.mem_pct, 0.0, 100.0);
  s.cpu_pct = std::clamp(s.cpu_pct, 0.0, 100.0);
  return s;
}

}  // namespace aptrace
