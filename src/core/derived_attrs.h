#ifndef APTRACE_CORE_DERIVED_ATTRS_H_
#define APTRACE_CORE_DERIVED_ATTRS_H_

#include <unordered_map>

#include "event/schema.h"
#include "storage/event_store.h"
#include "util/clock.h"
#include "util/sync.h"

namespace aptrace {

/// DerivedAttrs provider backed by the event store, scoped to the analysis
/// time range (paper Section IV-C1, "Excluding Read-Only Files and
/// Write-Through Processes").
///
/// Answers are memoized per object: during one analysis the underlying
/// data is immutable, and the same object is typically tested many times.
///
/// Thread-safe: the memo caches are mutex-guarded so the Executor's scan
/// workers can evaluate where-filters concurrently with the coordinator.
/// The answers themselves are pure functions of the immutable store, so
/// races on *who* fills a cache slot cannot change any result.
class StoreDerivedAttrs : public DerivedAttrs {
 public:
  StoreDerivedAttrs(const EventStore* store, TimeMicros range_begin,
                    TimeMicros range_end)
      : store_(store), begin_(range_begin), end_(range_end) {}

  /// A file is read-only iff nothing flowed *into* it during the analyzed
  /// period (no write/rename/delete touched it).
  bool IsReadOnly(ObjectId file) const override;

  /// A process is write-through iff all of its outgoing flows during the
  /// analyzed period target one single other process (a helper process
  /// that only returns results to its parent).
  bool IsWriteThrough(ObjectId proc) const override;

 private:
  const EventStore* store_;
  TimeMicros begin_;
  TimeMicros end_;
  mutable Mutex mu_{"StoreDerivedAttrs::mu_"};
  mutable std::unordered_map<ObjectId, bool> read_only_cache_
      APTRACE_GUARDED_BY(mu_);
  mutable std::unordered_map<ObjectId, bool> write_through_cache_
      APTRACE_GUARDED_BY(mu_);
};

}  // namespace aptrace

#endif  // APTRACE_CORE_DERIVED_ATTRS_H_
