#include "core/query_profile.h"

#include <cinttypes>
#include <cstdio>

#include "obs/json_dict.h"

namespace aptrace {

namespace {

/// One bucket as a JSON object, with the axis key (`"hop"`/`"state"`)
/// first when present.
std::string BucketJson(const char* key_name, int key,
                       const ProfileBucket& b) {
  obs::JsonDict d;
  if (key_name != nullptr) d.Add(key_name, static_cast<int64_t>(key));
  d.Add("windows", static_cast<uint64_t>(b.windows));
  d.Add("rows", static_cast<uint64_t>(b.rows));
  d.Add("rows_filtered", static_cast<uint64_t>(b.rows_filtered));
  d.Add("partitions_probed", static_cast<uint64_t>(b.partitions_probed));
  d.Add("segments_pruned", static_cast<uint64_t>(b.segments_pruned));
  d.Add("shard_probes", static_cast<uint64_t>(b.shard_probes));
  d.Add("edges", static_cast<uint64_t>(b.edges));
  d.Add("sim_cost_micros", static_cast<uint64_t>(b.sim_cost));
  d.Add("wall_micros", static_cast<uint64_t>(b.wall_micros));
  return d.Str();
}

std::string AxisJson(const char* key_name,
                     const std::map<int, ProfileBucket>& axis) {
  std::string out = "[";
  bool first = true;
  for (const auto& [key, bucket] : axis) {
    if (!first) out += ",";
    first = false;
    out += BucketJson(key_name, key, bucket);
  }
  out += "]";
  return out;
}

void AppendRow(std::string* out, const char* label,
               const ProfileBucket& b) {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%-7s %8" PRIu64 " %10" PRIu64 " %10" PRIu64 " %8" PRIu64
                " %8" PRIu64 " %8" PRIu64 " %12" PRIu64 " %12" PRIu64 "\n",
                label, b.windows, b.rows, b.rows_filtered,
                b.partitions_probed, b.segments_pruned, b.edges,
                static_cast<uint64_t>(b.sim_cost), b.wall_micros);
  *out += buf;
}

void AppendAxis(std::string* out, const char* title, const char* key_fmt,
                const std::map<int, ProfileBucket>& axis) {
  *out += title;
  *out += "\n";
  for (const auto& [key, bucket] : axis) {
    char label[32];
    std::snprintf(label, sizeof(label), key_fmt, key);
    AppendRow(out, label, bucket);
  }
}

}  // namespace

std::string QueryProfileToJson(const QueryProfile& profile) {
  obs::JsonDict d;
  d.AddRaw("total", BucketJson(nullptr, 0, profile.total));
  d.Add("boosted_windows", static_cast<uint64_t>(profile.boosted_windows));
  d.AddRaw("by_hop", AxisJson("hop", profile.by_hop));
  d.AddRaw("by_state", AxisJson("state", profile.by_state));
  return d.Str();
}

std::string RenderQueryProfileTable(const QueryProfile& profile,
                                    const char* probe_unit) {
  std::string out = "query profile (probe unit: ";
  out += probe_unit;
  out += ")\n";
  out +=
      "bucket   windows       rows   filtered   probed   pruned"
      "    edges   sim_micros  wall_micros\n";
  AppendAxis(&out, "-- by hop (distance from the starting point)",
             "hop %d", profile.by_hop);
  AppendAxis(&out, "-- by rule state (dependency-chain position; 0 = none)",
             "st  %d", profile.by_state);
  out += "-- total\n";
  AppendRow(&out, "all", profile.total);
  char tail[64];
  std::snprintf(tail, sizeof(tail), "boosted windows: %" PRIu64 "\n",
                profile.boosted_windows);
  out += tail;
  return out;
}

}  // namespace aptrace
