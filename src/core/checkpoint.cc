// Checkpoint persistence for paused investigations: Executor state and
// the Session-level wrapper. Line-oriented text, same spirit as
// storage/trace_io.cc.

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "bdl/analyzer.h"
#include "core/executor.h"
#include "core/session.h"

namespace aptrace {

namespace {
constexpr char kMagic[] = "aptrace-checkpoint v1";

Status ParseError(const std::string& why) {
  return Status::InvalidArgument("checkpoint parse error: " + why);
}
}  // namespace

Status Executor::SaveCheckpoint(std::ostream& os,
                                const CheckpointDurableMark* mark) const {
  if (!bootstrapped_) {
    return Status::FailedPrecondition(
        "nothing to checkpoint: the executor has not run yet");
  }
  // Durable mark first (daemon checkpoints only), so restore can reject a
  // lossy data directory before it bothers parsing engine state.
  if (mark != nullptr) {
    os << "D\t" << mark->store_events << "\t" << mark->wal_seq << "\n";
  }
  // Shard layout guard: event ids are global across shards, but probe
  // accounting and the per-shard stats are layout-dependent, so a restore
  // into a differently sharded store is refused rather than silently
  // reinterpreted.
  os << "H\t" << ctx_.store->shard_count() << "\n";
  // Store fingerprint guards against restoring over a different trace.
  os << "F\t" << ctx_.store->NumEvents() << "\t" << ctx_.store->MinTime()
     << "\t" << ctx_.store->MaxTime() << "\n";
  os << "R\t" << stats_.run_start << "\t" << stats_.work_units << "\t"
     << stats_.events_added << "\t" << stats_.events_filtered << "\t"
     << stats_.objects_excluded << "\t" << seq_ << "\t"
     << clock_->NowMicros() << "\n";

  graph_.ForEachNode([&](const DepGraph::Node& n) {
    os << "N\t" << n.object << "\t" << n.hop << "\t" << n.state << "\n";
  });
  graph_.ForEachEdge([&](const DepGraph::Edge& e) {
    os << "G\t" << e.event << "\n";
  });
  for (const ObjectId id : excluded_) os << "X\t" << id << "\n";
  for (const auto& [object, watermark] : covered_until_) {
    os << "C\t" << object << "\t" << watermark << "\n";
  }
  // Pending windows in pop (priority) order, so a restored queue heapifies
  // back to the identical schedule.
  for (const ExecWindow& w : queue_.SortedSnapshot()) {
    os << "W\t" << w.begin << "\t" << w.finish << "\t" << w.dep_event
       << "\t" << w.frontier << "\t" << w.hop << "\t" << w.state << "\t"
       << (w.boosted ? 1 : 0) << "\t" << w.seq << "\t" << w.priority_key
       << "\n";
  }
  os << "L\t" << log_.run_start() << "\n";
  for (const UpdateBatch& b : log_.batches()) {
    os << "U\t" << b.sim_time << "\t" << b.new_edges << "\t" << b.new_nodes
       << "\t" << b.total_edges << "\t" << b.total_nodes << "\n";
  }
  if (!os.good()) return Status::Internal("checkpoint write failed");
  return Status::Ok();
}

Status Executor::RestoreCheckpoint(std::istream& is) {
  if (bootstrapped_) {
    return Status::FailedPrecondition(
        "restore requires a freshly constructed executor");
  }
  std::string line;
  bool fingerprint_ok = false;
  bool counters_ok = false;
  std::vector<std::tuple<ObjectId, int, int>> nodes;
  TimeMicros saved_clock = 0;

  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream f(line);
    std::string kind;
    f >> kind;
    if (kind == "D") {
      uint64_t store_events = 0;
      uint64_t wal_seq = 0;
      f >> store_events >> wal_seq;
      if (!f) return ParseError("bad durable-mark record");
      if (store_events > ctx_.store->NumEvents()) {
        return Status::FailedPrecondition(
            "STO-E009: checkpoint durable mark covers " +
            std::to_string(store_events) +
            " events (through WAL batch " + std::to_string(wal_seq) +
            ") but the recovered store holds only " +
            std::to_string(ctx_.store->NumEvents()) +
            " — the data directory lost acknowledged batches");
      }
    } else if (kind == "H") {
      size_t shards = 0;
      f >> shards;
      if (!f) return ParseError("bad shard-count record");
      if (shards != ctx_.store->shard_count()) {
        return Status::FailedPrecondition(
            "STO-E011: checkpoint was taken over a store with " +
            std::to_string(shards) + " shard(s) but this store runs " +
            std::to_string(ctx_.store->shard_count()) +
            " — restore with --shards=" + std::to_string(shards) +
            " (or APTRACE_SHARDS) matching the checkpoint");
      }
    } else if (kind == "F") {
      size_t events = 0;
      TimeMicros lo = 0, hi = 0;
      f >> events >> lo >> hi;
      if (events > ctx_.store->NumEvents() || lo != ctx_.store->MinTime()) {
        return ParseError("checkpoint was taken over a different trace");
      }
      fingerprint_ok = true;
    } else if (kind == "R") {
      f >> stats_.run_start >> stats_.work_units >> stats_.events_added >>
          stats_.events_filtered >> stats_.objects_excluded >> seq_ >>
          saved_clock;
      if (!f) return ParseError("bad counters record");
      counters_ok = true;
    } else if (kind == "N") {
      ObjectId id = 0;
      int hop = 0, state = 0;
      f >> id >> hop >> state;
      if (!f) return ParseError("bad node record");
      nodes.emplace_back(id, hop, state);
    } else if (kind == "G") {
      EventId id = 0;
      f >> id;
      if (!f || id >= ctx_.store->NumEvents()) {
        return ParseError("bad edge record");
      }
      if (graph_.start() == kInvalidObjectId) {
        graph_.SetStart(ctx_.start_node);
      }
      graph_.AddEventEdge(ctx_.store->Get(id));
    } else if (kind == "X") {
      ObjectId id = 0;
      f >> id;
      if (!f) return ParseError("bad exclusion record");
      excluded_.insert(id);
    } else if (kind == "C") {
      ObjectId id = 0;
      TimeMicros watermark = 0;
      f >> id >> watermark;
      if (!f) return ParseError("bad coverage record");
      covered_until_[id] = watermark;
    } else if (kind == "W") {
      ExecWindow w;
      int boosted = 0;
      f >> w.begin >> w.finish >> w.dep_event >> w.frontier >> w.hop >>
          w.state >> boosted >> w.seq >> w.priority_key;
      if (!f) return ParseError("bad window record");
      w.boosted = boosted != 0;
      queue_.push(w);
    } else if (kind == "L") {
      TimeMicros start = 0;
      f >> start;
      log_.SetRunStart(start);
    } else if (kind == "U") {
      UpdateBatch b;
      f >> b.sim_time >> b.new_edges >> b.new_nodes >> b.total_edges >>
          b.total_nodes;
      if (!f) return ParseError("bad update record");
      log_.Add(b);
    } else {
      return ParseError("unknown record kind '" + kind + "'");
    }
  }
  if (!fingerprint_ok || !counters_ok) {
    return ParseError("missing fingerprint or counters record");
  }
  // Hops and states are insertion-order dependent: restore the saved
  // values over whatever edge replay produced.
  if (graph_.start() == kInvalidObjectId) graph_.SetStart(ctx_.start_node);
  for (const auto& [id, hop, state] : nodes) {
    graph_.SetHop(id, hop);
    graph_.SetState(id, state);
  }
  maintainer_.RecomputeBoosts();
  // Move the session clock to the checkpointed instant so elapsed time
  // (and the `time <= ...` budget) carries across the restore.
  if (saved_clock > clock_->NowMicros()) {
    clock_->AdvanceMicros(saved_clock - clock_->NowMicros());
  }
  bootstrapped_ = true;
  return Status::Ok();
}

Status Session::SaveCheckpoint(const std::string& path,
                               const CheckpointDurableMark* mark) const {
  if (executor_ == nullptr) {
    return Status::FailedPrecondition(
        "checkpointing requires a started session on the responsive "
        "engine");
  }
  std::ofstream os(path);
  if (!os) return Status::InvalidArgument("cannot open for write: " + path);
  os << kMagic << "\n";
  os << "K\t" << executor_->num_windows_k() << "\n";
  os << "A\t" << executor_->context().start_event.id << "\n";
  const std::string& script = executor_->context().spec.source_text;
  os << "S\t" << script.size() << "\n" << script << "\n";
  if (auto s = executor_->SaveCheckpoint(os, mark); !s.ok()) return s;
  if (!os.good()) return Status::Internal("checkpoint write failed");
  return Status::Ok();
}

Status Session::LoadCheckpoint(const std::string& path) {
  std::ifstream is(path);
  if (!is) return Status::InvalidArgument("cannot open for read: " + path);
  std::string line;
  if (!std::getline(is, line) || line != kMagic) {
    return ParseError("missing or wrong header");
  }
  int k = 8;
  EventId alert_id = kInvalidEventId;
  size_t script_size = 0;
  for (int header = 0; header < 3; ++header) {
    if (!std::getline(is, line)) return ParseError("truncated header");
    std::istringstream f(line);
    std::string kind;
    f >> kind;
    if (kind == "K") {
      f >> k;
    } else if (kind == "A") {
      f >> alert_id;
    } else if (kind == "S") {
      f >> script_size;
    } else {
      return ParseError("unexpected header record '" + kind + "'");
    }
  }
  if (alert_id == kInvalidEventId || alert_id >= store_->NumEvents()) {
    return ParseError("bad starting-event id");
  }
  std::string script(script_size, '\0');
  is.read(script.data(), static_cast<std::streamsize>(script_size));
  if (is.gcount() != static_cast<std::streamsize>(script_size)) {
    return ParseError("truncated script");
  }
  std::getline(is, line);  // consume the newline after the script blob

  auto spec = bdl::CompileBdl(script);
  if (!spec.ok()) return spec.status();
  const Event alert = store_->Get(alert_id);
  auto ctx = ResolveContext(*store_, std::move(spec.value()), clock_, alert);
  if (!ctx.ok()) return ctx.status();
  ctx.value().scan_threads = options_.scan_threads;

  auto executor = MakeExecutor(std::move(ctx.value()), k);
  if (auto s = executor->RestoreCheckpoint(is); !s.ok()) return s;
  executor_ = executor.get();
  engine_ = std::move(executor);
  start_override_ = alert;
  last_action_ = RefineAction::kNoChange;
  RefreshSnapshot();
  return Status::Ok();
}

}  // namespace aptrace
