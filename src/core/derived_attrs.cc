#include "core/derived_attrs.h"

namespace aptrace {

bool StoreDerivedAttrs::IsReadOnly(ObjectId file) const {
  {
    MutexLock lock(&mu_);
    auto it = read_only_cache_.find(file);
    if (it != read_only_cache_.end()) return it->second;
  }
  // Query outside the lock: HasIncomingWrite is thread-safe and pure, and
  // a duplicate computation racing in is cheaper than serializing scans.
  const bool result = !store_->HasIncomingWrite(file, begin_, end_);
  MutexLock lock(&mu_);
  read_only_cache_.emplace(file, result);
  return result;
}

bool StoreDerivedAttrs::IsWriteThrough(ObjectId proc) const {
  {
    MutexLock lock(&mu_);
    auto it = write_through_cache_.find(proc);
    if (it != write_through_cache_.end()) return it->second;
  }
  const std::vector<ObjectId> dests = store_->FlowDestsOf(proc, begin_, end_);
  bool result = !dests.empty();
  if (dests.size() != 1) {
    result = false;
  } else {
    result = store_->catalog().Get(dests[0]).is_process();
  }
  MutexLock lock(&mu_);
  write_through_cache_.emplace(proc, result);
  return result;
}

}  // namespace aptrace
