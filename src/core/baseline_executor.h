#ifndef APTRACE_CORE_BASELINE_EXECUTOR_H_
#define APTRACE_CORE_BASELINE_EXECUTOR_H_

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "core/backtrack_engine.h"

namespace aptrace {

/// The baseline backtracking engine (King & Chen, "Backtracking
/// Intrusions", SOSP'03) as the paper evaluates it: a breadth-first search
/// over objects where each explored object issues ONE query over its whole
/// relevant history. Results of a query become visible only when the query
/// completes ("execute-to-complete"), so a dependency-explosion node
/// blocks the analyst for the full scan duration — the behaviour Table II
/// and Figure 4 quantify.
///
/// Honors the same spec filters (host range, where statement, hop and time
/// budgets) so heuristic comparisons are apples-to-apples.
class BaselineExecutor : public BacktrackEngine {
 public:
  BaselineExecutor(TrackingContext ctx, Clock* clock);

  StopReason Run(const RunLimits& limits) override;
  bool Exhausted() const override {
    return bootstrapped_ && frontier_.empty();
  }

  const DepGraph& graph() const override { return graph_; }
  DepGraph* mutable_graph() override { return &graph_; }
  const UpdateLog& update_log() const override { return log_; }
  const RunStats& stats() const override { return stats_; }
  const TrackingContext& context() const override { return ctx_; }

 private:
  void Bootstrap();
  /// Marks the object as needing exploration up to (backward) or from
  /// just after (forward) time `t`; enqueues it if it is not already
  /// pending.
  void Want(ObjectId object, TimeMicros t);
  bool forward() const;

  TrackingContext ctx_;
  Clock* clock_;
  DepGraph graph_;
  UpdateLog log_;
  RunStats stats_;
  std::deque<ObjectId> frontier_;
  std::unordered_set<ObjectId> pending_;      // objects in frontier_
  // Direction-dependent watermarks: backward = explore/covered grow
  // upward from ctx.ts; forward = they shrink downward from ctx.te.
  std::unordered_map<ObjectId, TimeMicros> explore_until_;
  std::unordered_map<ObjectId, TimeMicros> covered_until_;
  std::unordered_set<ObjectId> excluded_;
  bool bootstrapped_ = false;
};

}  // namespace aptrace

#endif  // APTRACE_CORE_BASELINE_EXECUTOR_H_
