#include "core/baseline_executor.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace aptrace {

namespace {

struct BaselineMetrics {
  obs::Counter* node_queries;
  obs::LatencyHistogram* update_batch_latency;
};

const BaselineMetrics& Bm() {
  static const BaselineMetrics m = {
      obs::Metrics().FindOrCreateCounter(obs::names::kBaselineNodeQueries),
      obs::Metrics().FindOrCreateHistogram(obs::names::kUpdateBatchLatency),
  };
  return m;
}

}  // namespace

BaselineExecutor::BaselineExecutor(TrackingContext ctx, Clock* clock)
    : ctx_(std::move(ctx)), clock_(clock) {}

bool BaselineExecutor::forward() const {
  return ctx_.spec.direction == bdl::TrackDirection::kForward;
}

void BaselineExecutor::Bootstrap() {
  stats_.run_start = clock_->NowMicros();
  log_.SetRunStart(stats_.run_start);
  graph_.SetStart(ctx_.start_node);
  graph_.AddEventEdge(ctx_.start_event);
  Want(forward() ? ctx_.start_event.FlowDest()
                 : ctx_.start_event.FlowSource(),
       ctx_.start_event.timestamp);
  bootstrapped_ = true;
}

void BaselineExecutor::Want(ObjectId object, TimeMicros t) {
  if (excluded_.count(object)) return;
  if (forward()) {
    // Forward: explore the object's future from just after t; the bound
    // only ever moves earlier.
    const TimeMicros from = t + 1;
    auto [it, inserted] = explore_until_.try_emplace(object, from);
    if (!inserted) it->second = std::min(it->second, from);
    auto cov = covered_until_.find(object);
    const TimeMicros covered =
        cov == covered_until_.end() ? ctx_.te : cov->second;
    if (it->second >= covered) return;  // nothing new to scan
  } else {
    auto [it, inserted] = explore_until_.try_emplace(object, t);
    if (!inserted) it->second = std::max(it->second, t);
    auto cov = covered_until_.find(object);
    const TimeMicros covered =
        cov == covered_until_.end() ? ctx_.ts : cov->second;
    if (it->second <= covered) return;  // nothing new to scan
  }
  if (pending_.insert(object).second) frontier_.push_back(object);
}

StopReason BaselineExecutor::Run(const RunLimits& limits) {
  if (!bootstrapped_) Bootstrap();
  const TimeMicros step_start = clock_->NowMicros();
  size_t updates_this_step = 0;
  const ObjectCatalog& catalog = ctx_.store->catalog();

  while (!frontier_.empty()) {
    if (limits.should_stop && limits.should_stop()) return StopReason::kStopped;
    const TimeMicros now = clock_->NowMicros();
    if (ctx_.spec.time_budget >= 0 &&
        now - stats_.run_start >= ctx_.spec.time_budget) {
      return StopReason::kTimeBudget;
    }
    if (limits.sim_time >= 0 && now - step_start >= limits.sim_time) {
      return StopReason::kExternalLimit;
    }
    if (limits.max_updates != 0 && updates_this_step >= limits.max_updates) {
      return StopReason::kUpdateCap;
    }

    const ObjectId frontier = frontier_.front();
    frontier_.pop_front();
    pending_.erase(frontier);
    if (excluded_.count(frontier)) continue;
    if (ctx_.spec.hop_limit >= 0 && graph_.HasNode(frontier) &&
        graph_.GetNode(frontier).hop + 1 > ctx_.spec.hop_limit) {
      continue;
    }

    TimeMicros begin;
    TimeMicros end;
    if (forward()) {
      auto cov = covered_until_.try_emplace(frontier, ctx_.te).first;
      begin = explore_until_[frontier];
      end = cov->second;
      if (begin >= end) continue;
      cov->second = begin;
    } else {
      auto cov = covered_until_.try_emplace(frontier, ctx_.ts).first;
      begin = cov->second;
      end = explore_until_[frontier];
      if (begin >= end) continue;
      cov->second = end;
    }

    // ONE monolithic query over the object's whole relevant history: this
    // is what execution-window partitioning replaces.
    APTRACE_SPAN("baseline/process_node");
    Bm().node_queries->Add();
    size_t batch_edges = 0;
    size_t batch_nodes = 0;
    // Heuristic filters are pushed into the query, same as the responsive
    // engine, so the comparison isolates the partitioning strategy.
    const bool fwd = forward();
    const auto discovered = [fwd](const Event& e) {
      return fwd ? e.FlowDest() : e.FlowSource();
    };
    const auto filter = [&](const Event& e) {
      if (!ctx_.HostAllowed(e.host)) {
        stats_.events_filtered++;
        return false;
      }
      const ObjectId fresh = discovered(e);
      if (excluded_.count(fresh)) {
        stats_.events_filtered++;
        return false;
      }
      if (!ctx_.IsAnchor(fresh) && !ctx_.WhereKeeps(catalog.Get(fresh), &e)) {
        excluded_.insert(fresh);
        stats_.objects_excluded++;
        stats_.events_filtered++;
        return false;
      }
      return true;
    };
    const auto visit = [&](const Event& e) {
      const ObjectId fresh = discovered(e);
      const ObjectId known = fwd ? e.FlowSource() : e.FlowDest();
      if (ctx_.spec.hop_limit >= 0 && !graph_.HasNode(fresh) &&
          graph_.HopOf(known) + 1 > ctx_.spec.hop_limit) {
        stats_.events_filtered++;
        return;
      }
      const DepGraph::AddResult res = graph_.AddEventEdge(e);
      if (res == DepGraph::AddResult::kDuplicate) return;
      batch_edges++;
      if (res == DepGraph::AddResult::kNewEdgeAndNode) batch_nodes++;
      stats_.events_added++;
      Want(fresh, e.timestamp);
    };
    if (fwd) {
      ctx_.store->ScanSrc(frontier, begin, end, clock_, visit, filter);
    } else {
      ctx_.store->ScanDest(frontier, begin, end, clock_, visit, filter);
    }
    stats_.work_units++;

    // Execute-to-complete: the whole batch becomes visible only now.
    if (batch_edges > 0) {
      UpdateBatch batch;
      batch.sim_time = clock_->NowMicros();
      batch.new_edges = batch_edges;
      batch.new_nodes = batch_nodes;
      batch.total_edges = graph_.NumEdges();
      batch.total_nodes = graph_.NumNodes();
      const TimeMicros prev_update =
          log_.empty() ? log_.run_start() : log_.batches().back().sim_time;
      Bm().update_batch_latency->Observe(
          MicrosToSeconds(batch.sim_time - prev_update));
      log_.Add(batch);
      updates_this_step++;
      if (limits.on_update) limits.on_update(batch);
    }
  }
  return StopReason::kCompleted;
}

}  // namespace aptrace
