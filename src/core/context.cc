#include "core/context.h"

#include <algorithm>

#include "util/wildcard.h"

namespace aptrace {

namespace {

using bdl::Condition;
using bdl::EvalContext;

/// Walks a condition tree looking for an `event_time = <t>` equality leaf
/// in a conjunctive position; used to narrow the start-point scan.
std::optional<TimeMicros> FindEventTimeEquality(const Condition* cond) {
  if (cond == nullptr) return std::nullopt;
  switch (cond->kind()) {
    case Condition::Kind::kLeaf: {
      const auto& leaf = cond->leaf();
      if (leaf.field == FieldId::kEventTime &&
          leaf.op == bdl::CompareOp::kEq && leaf.int_value.has_value()) {
        return *leaf.int_value;
      }
      return std::nullopt;
    }
    case Condition::Kind::kAnd: {
      if (auto t = FindEventTimeEquality(cond->lhs()); t.has_value()) return t;
      return FindEventTimeEquality(cond->rhs());
    }
    case Condition::Kind::kOr:
      // Under `or` the equality would not be a guaranteed bound.
      return std::nullopt;
  }
  return std::nullopt;
}

/// Tests the event against the chain's first pattern, returning the
/// endpoint object that satisfied it (flow destination preferred, since
/// the starting node is normally what the alert wrote to).
std::optional<ObjectId> MatchStartNode(const Event& e,
                                       const bdl::NodePattern& pattern,
                                       const ObjectCatalog& catalog,
                                       const DerivedAttrs* derived) {
  ObjectId candidates[2] = {e.FlowDest(), e.FlowSource()};
  for (int i = 0; i < 2; ++i) {
    if (i == 1 && candidates[1] == candidates[0]) break;
    EvalContext ctx;
    const SystemObject& obj = catalog.Get(candidates[i]);
    ctx.object = &obj;
    ctx.event = &e;
    ctx.catalog = &catalog;
    ctx.derived = derived;
    if (pattern.Matches(ctx)) return candidates[i];
  }
  return std::nullopt;
}

/// Resolves the spec's host name patterns into a HostId set; nullopt when
/// the spec has no host constraint.
std::optional<std::unordered_set<HostId>> ResolveHostFilter(
    const EventStore& store, const bdl::TrackingSpec& spec) {
  if (spec.hosts.empty()) return std::nullopt;
  std::unordered_set<HostId> ids;
  std::vector<WildcardMatcher> matchers;
  matchers.reserve(spec.hosts.size());
  for (const std::string& h : spec.hosts) matchers.emplace_back(h);
  const size_t n = store.catalog().NumHosts();
  for (size_t i = 0; i < n; ++i) {
    const HostId id = static_cast<HostId>(i);
    const std::string& name = store.catalog().HostName(id);
    for (const auto& m : matchers) {
      if (m.Matches(name)) {
        ids.insert(id);
        break;
      }
    }
  }
  return ids;
}

struct ResolvedRange {
  TimeMicros ts;
  TimeMicros te;
};

ResolvedRange ResolveRange(const EventStore& store,
                           const bdl::TrackingSpec& spec) {
  // The store's span, half-open (+1 so the last event is included).
  TimeMicros ts = store.MinTime();
  TimeMicros te = store.MaxTime() + 1;
  if (spec.time_from.has_value()) ts = std::max(ts, *spec.time_from);
  if (spec.time_to.has_value()) te = std::min(te, *spec.time_to);
  return {ts, te};
}

}  // namespace

bool TrackingContext::WhereKeeps(const SystemObject& object,
                                 const Event* event) const {
  EvalContext ctx;
  ctx.object = &object;
  ctx.event = event;
  ctx.catalog = &store->catalog();
  ctx.derived = derived.get();
  return bdl::ConditionKeeps(spec.where.get(), ctx);
}

std::vector<StartMatch> FindStartEvents(const EventStore& store,
                                        const bdl::TrackingSpec& spec,
                                        Clock* clock, size_t limit) {
  std::vector<StartMatch> out;
  if (spec.chain.empty()) return out;
  const bdl::NodePattern& pattern = spec.chain.front();
  const auto [ts, te] = ResolveRange(store, spec);
  if (ts >= te) return out;

  // Narrow the scan when the pattern pins event_time exactly.
  TimeMicros scan_lo = ts;
  TimeMicros scan_hi = te;
  if (auto t = FindEventTimeEquality(pattern.cond.get()); t.has_value()) {
    scan_lo = std::max(ts, *t);
    scan_hi = std::min(te, *t + 1);
  }

  const auto host_filter = ResolveHostFilter(store, spec);
  StoreDerivedAttrs derived(&store, ts, te);

  store.ScanRange(scan_lo, scan_hi, clock, [&](const Event& e) {
    if (out.size() >= limit) return;
    if (host_filter.has_value() && host_filter->count(e.host) == 0) return;
    if (auto node = MatchStartNode(e, pattern, store.catalog(), &derived);
        node.has_value()) {
      out.push_back({e, *node});
    }
  });
  return out;
}

Result<TrackingContext> ResolveContext(const EventStore& store,
                                       bdl::TrackingSpec spec, Clock* clock,
                                       std::optional<Event> start_override) {
  if (!store.sealed()) {
    return Status::FailedPrecondition("event store is not sealed");
  }
  if (store.NumEvents() == 0) {
    return Status::FailedPrecondition("event store is empty");
  }
  if (spec.chain.empty()) {
    return Status::InvalidArgument("tracking spec has no starting point");
  }

  TrackingContext ctx;
  ctx.store = &store;
  const auto [ts, te] = ResolveRange(store, spec);
  if (ts >= te) {
    return Status::InvalidArgument(
        "the spec's time range does not intersect the store's span");
  }
  ctx.ts = ts;
  ctx.te = te;
  ctx.host_filter = ResolveHostFilter(store, spec);
  ctx.derived = std::make_shared<StoreDerivedAttrs>(&store, ts, te);

  if (start_override.has_value()) {
    if (start_override->timestamp < ts || start_override->timestamp >= te) {
      return Status::InvalidArgument(
          "the injected starting event lies outside the spec's time range");
    }
    ctx.start_event = *start_override;
    auto node = MatchStartNode(*start_override, spec.chain.front(),
                               store.catalog(), ctx.derived.get());
    // An injected start event need not match the pattern (the experiment
    // harness uses arbitrary alerts); default to the flow destination.
    ctx.start_node = node.value_or(start_override->FlowDest());
  } else {
    auto matches = FindStartEvents(store, spec, clock, /*limit=*/1);
    if (matches.empty()) {
      return Status::NotFound(
          "no event matches the starting-point pattern in the given range");
    }
    ctx.start_event = matches.front().event;
    ctx.start_node = matches.front().node;
  }
  ctx.spec = std::move(spec);
  return ctx;
}

}  // namespace aptrace
