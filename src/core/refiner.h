#ifndef APTRACE_CORE_REFINER_H_
#define APTRACE_CORE_REFINER_H_

#include "core/context.h"
#include "core/executor.h"

namespace aptrace {

/// How the Refiner decided to treat a script update (paper Section
/// III-B3).
enum class RefineAction : uint8_t {
  kNoChange,  // scripts are semantically identical
  kReuse,     // same starting point: reuse the cached graph & queue
  kRestart,   // different starting point / range: abandon the analysis
};

const char* RefineActionName(RefineAction a);

struct RefineResult {
  RefineAction action = RefineAction::kNoChange;
  RefineDelta delta;  // meaningful when action == kReuse
};

/// The Refiner compares the currently executing context with the context
/// compiled from an updated BDL script:
///  * a different starting point (or a different time/host range, which
///    changes what the cached scans covered) abandons the current
///    analysis and restarts;
///  * otherwise the cached dependency graph is reused — changed
///    intermediate points trigger in-memory state re-propagation, changed
///    where filters prune the cached graph and the pending queue, changed
///    prioritize rules re-derive boosts.
class Refiner {
 public:
  static RefineResult Classify(const TrackingContext& current,
                               const TrackingContext& updated);
};

}  // namespace aptrace

#endif  // APTRACE_CORE_REFINER_H_
