#ifndef APTRACE_CORE_BACKTRACK_ENGINE_H_
#define APTRACE_CORE_BACKTRACK_ENGINE_H_

#include <cstdint>
#include <functional>

#include "core/context.h"
#include "core/update_log.h"
#include "graph/dep_graph.h"
#include "util/clock.h"

namespace aptrace {

/// Why a Run() call returned.
enum class StopReason : uint8_t {
  kCompleted,      // nothing left to explore
  kTimeBudget,     // the spec's `where time <= ...` budget was exhausted
  kExternalLimit,  // the caller's per-step sim-time limit was hit
  kUpdateCap,      // the caller's per-step update cap was hit
  kStopped,        // the caller's should_stop() returned true
};

const char* StopReasonName(StopReason r);

/// Per-Run() stop criteria. A Run is resumable: calling Run again
/// continues from the exact point the previous call stopped at.
struct RunLimits {
  /// Stop after this much simulated time in this Run call; -1 = none.
  DurationMicros sim_time = -1;

  /// Stop after this many graph updates in this Run call; 0 = unlimited.
  size_t max_updates = 0;

  /// Checked between work units; return true to pause.
  std::function<bool()> should_stop;

  /// Invoked after each update batch becomes visible.
  std::function<void(const UpdateBatch&)> on_update;
};

/// Counters one engine run accumulates (across resumes).
struct RunStats {
  uint64_t work_units = 0;      // windows (APTrace) or node queries (baseline)
  uint64_t events_added = 0;
  uint64_t events_filtered = 0;  // dropped by host/where filters
  uint64_t objects_excluded = 0; // distinct objects deleted by the where filter
  TimeMicros run_start = 0;      // sim time at bootstrap
};

/// Common interface of the two backtracking engines: the responsive
/// Executor (execution-window partitioning, Algorithm 1) and the
/// execute-to-complete BaselineExecutor (King & Chen).
class BacktrackEngine {
 public:
  virtual ~BacktrackEngine() = default;

  /// Runs until a limit triggers or exploration completes. Resumable.
  virtual StopReason Run(const RunLimits& limits) = 0;

  /// True when there is nothing left to explore (Run would return
  /// kCompleted immediately).
  virtual bool Exhausted() const = 0;

  virtual const DepGraph& graph() const = 0;
  virtual DepGraph* mutable_graph() = 0;
  virtual const UpdateLog& update_log() const = 0;
  virtual const RunStats& stats() const = 0;
  virtual const TrackingContext& context() const = 0;
};

}  // namespace aptrace

#endif  // APTRACE_CORE_BACKTRACK_ENGINE_H_
