#include "core/refiner.h"

#include <sstream>

#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"

namespace aptrace {

namespace {

std::string CondStr(const bdl::Condition* c) {
  return c == nullptr ? std::string() : c->ToString();
}

std::string ChainStr(const bdl::TrackingSpec& spec, size_t from_index) {
  std::ostringstream os;
  for (size_t i = from_index; i < spec.chain.size(); ++i) {
    const auto& p = spec.chain[i];
    if (p.wildcard) {
      os << "*";
    } else {
      os << ObjectTypeName(*p.type) << "[" << CondStr(p.cond.get()) << "]";
    }
    os << " -> ";
  }
  return os.str();
}

std::string PrioritizeStr(const bdl::TrackingSpec& spec) {
  std::ostringstream os;
  for (const auto& rule : spec.prioritize) {
    for (const auto& p : rule.chain) {
      if (p.object_type.has_value()) os << ObjectTypeName(*p.object_type);
      os << "[" << CondStr(p.cond.get()) << "]";
      if (p.amount_vs_upstream) {
        os << "{amount " << bdl::CompareOpName(p.amount_op) << " size}";
      }
      os << " <- ";
    }
    os << " ; ";
  }
  return os.str();
}

bool SameHostFilter(const TrackingContext& a, const TrackingContext& b) {
  if (a.host_filter.has_value() != b.host_filter.has_value()) return false;
  if (!a.host_filter.has_value()) return true;
  return *a.host_filter == *b.host_filter;
}

}  // namespace

const char* RefineActionName(RefineAction a) {
  switch (a) {
    case RefineAction::kNoChange: return "no-change";
    case RefineAction::kReuse: return "reuse";
    case RefineAction::kRestart: return "restart";
  }
  return "?";
}

namespace {

RefineResult ClassifyImpl(const TrackingContext& current,
                          const TrackingContext& updated) {
  RefineResult result;

  // A different starting point — or flipping the tracking direction —
  // means a brand new analysis.
  if (current.start_event.id != updated.start_event.id ||
      current.start_node != updated.start_node ||
      current.spec.direction != updated.spec.direction) {
    result.action = RefineAction::kRestart;
    return result;
  }
  // A changed host range invalidates the scan coverage: restart.
  if (!SameHostFilter(current, updated)) {
    result.action = RefineAction::kRestart;
    return result;
  }

  RefineDelta& d = result.delta;
  if (current.ts != updated.ts || current.te != updated.te) {
    // Narrowing keeps cached work valid (old scans are supersets);
    // widening needs history that was never scheduled: restart.
    const bool narrowed =
        updated.ts >= current.ts && updated.te <= current.te;
    const bool start_in_range =
        updated.start_event.timestamp >= updated.ts &&
        updated.start_event.timestamp < updated.te;
    if (!narrowed || !start_in_range) {
      result.action = RefineAction::kRestart;
      return result;
    }
    d.range_narrowed = true;
  }
  d.chain_changed =
      ChainStr(current.spec, 1) != ChainStr(updated.spec, 1);
  d.where_changed = CondStr(current.spec.where.get()) !=
                    CondStr(updated.spec.where.get());
  d.prioritize_changed =
      PrioritizeStr(current.spec) != PrioritizeStr(updated.spec);
  d.budgets_changed = current.spec.time_budget != updated.spec.time_budget ||
                      current.spec.hop_limit != updated.spec.hop_limit;

  if (d.chain_changed || d.where_changed || d.prioritize_changed ||
      d.budgets_changed || d.range_narrowed) {
    result.action = RefineAction::kReuse;
  } else {
    result.action = RefineAction::kNoChange;
  }
  return result;
}

}  // namespace

RefineResult Refiner::Classify(const TrackingContext& current,
                               const TrackingContext& updated) {
  APTRACE_SPAN("refiner/classify");
  const RefineResult result = ClassifyImpl(current, updated);
  static obs::Counter* const kActionCounters[] = {
      obs::Metrics().FindOrCreateCounter(obs::names::kRefinerNoChange),
      obs::Metrics().FindOrCreateCounter(obs::names::kRefinerReuse),
      obs::Metrics().FindOrCreateCounter(obs::names::kRefinerRestart),
  };
  kActionCounters[static_cast<int>(result.action)]->Add();
  return result;
}

}  // namespace aptrace
