#include "core/maintainer.h"

#include <deque>
#include <vector>

namespace aptrace {

namespace {

bool CompareAmounts(bdl::CompareOp op, uint64_t down, uint64_t up) {
  switch (op) {
    case bdl::CompareOp::kLt: return down < up;
    case bdl::CompareOp::kLe: return down <= up;
    case bdl::CompareOp::kGt: return down > up;
    case bdl::CompareOp::kGe: return down >= up;
    case bdl::CompareOp::kEq: return down == up;
    case bdl::CompareOp::kNe: return down != up;
  }
  return false;
}

}  // namespace

GraphMaintainer::GraphMaintainer(const TrackingContext* ctx, DepGraph* graph)
    : ctx_(ctx), graph_(graph) {}

void GraphMaintainer::UpdateContext(const TrackingContext* ctx) {
  ctx_ = ctx;
  end_point_reached_ = false;
}

bool GraphMaintainer::NodeMatchesPattern(size_t chain_index, ObjectId node,
                                         const Event* event) const {
  const auto& chain = ctx_->spec.chain;
  if (chain_index >= chain.size()) return false;
  bdl::EvalContext ectx;
  const SystemObject& obj = ctx_->store->catalog().Get(node);
  ectx.object = &obj;
  ectx.event = event;
  ectx.catalog = &ctx_->store->catalog();
  ectx.derived = ctx_->derived.get();
  return chain[chain_index].Matches(ectx);
}

int GraphMaintainer::StateAfterEdge(int known_state, ObjectId fresh,
                                    const Event& event) const {
  const int k = static_cast<int>(ctx_->spec.chain.size());
  if (known_state <= 0) return 0;  // discoverer not on an explored path
  if (known_state >= k) return known_state;  // already a full match: carry
  // chain[known_state] is the next pattern n_{known_state+1} (0-based).
  if (NodeMatchesPattern(static_cast<size_t>(known_state), fresh, &event)) {
    return known_state + 1;
  }
  return known_state;  // carry the matched prefix along the path
}

int GraphMaintainer::OnEdgeAdded(const Event& event) {
  FeedRules(event);

  const bool fwd = ctx_->spec.direction == bdl::TrackDirection::kForward;
  const ObjectId known = fwd ? event.FlowSource() : event.FlowDest();
  const ObjectId fresh = fwd ? event.FlowDest() : event.FlowSource();
  if (!graph_->HasNode(known) || !graph_->HasNode(fresh)) return 0;

  const int k = static_cast<int>(ctx_->spec.chain.size());
  const int proposed = StateAfterEdge(graph_->StateOf(known), fresh, event);
  if (proposed <= graph_->StateOf(fresh)) return graph_->StateOf(fresh);

  // The discovered node's state improved: cascade through neighbours
  // already explored from it (exploration walks against the flow for
  // backward tracking, with it for forward tracking).
  graph_->SetState(fresh, proposed);
  if (k >= 2 && proposed >= k) end_point_reached_ = true;
  std::deque<ObjectId> queue{fresh};
  while (!queue.empty()) {
    const ObjectId node = queue.front();
    queue.pop_front();
    const int node_state = graph_->StateOf(node);
    const auto& node_edges = fwd ? graph_->GetNode(node).out_edges
                                 : graph_->GetNode(node).in_edges;
    for (EventId eid : node_edges) {
      const DepGraph::Edge& edge = graph_->GetEdge(eid);
      const ObjectId next_node = fwd ? edge.dst : edge.src;
      const Event& original = ctx_->store->Get(edge.event);
      const int next = StateAfterEdge(node_state, next_node, original);
      if (next > graph_->StateOf(next_node)) {
        graph_->SetState(next_node, next);
        if (k >= 2 && next >= k) end_point_reached_ = true;
        queue.push_back(next_node);
      }
    }
  }
  return graph_->StateOf(fresh);
}

void GraphMaintainer::RepropagateStates() {
  graph_->ClearStates();
  end_point_reached_ = false;
  const bool fwd = ctx_->spec.direction == bdl::TrackDirection::kForward;
  const int k = static_cast<int>(ctx_->spec.chain.size());
  if (!graph_->HasNode(graph_->start())) return;
  std::deque<ObjectId> queue{graph_->start()};
  while (!queue.empty()) {
    const ObjectId node = queue.front();
    queue.pop_front();
    const int node_state = graph_->StateOf(node);
    const auto& node_edges = fwd ? graph_->GetNode(node).out_edges
                                 : graph_->GetNode(node).in_edges;
    for (EventId eid : node_edges) {
      const DepGraph::Edge& edge = graph_->GetEdge(eid);
      const ObjectId next_node = fwd ? edge.dst : edge.src;
      const Event& original = ctx_->store->Get(edge.event);
      const int next = StateAfterEdge(node_state, next_node, original);
      if (next > graph_->StateOf(next_node)) {
        graph_->SetState(next_node, next);
        if (k >= 2 && next >= k) end_point_reached_ = true;
        queue.push_back(next_node);
      }
    }
  }
}

bool GraphMaintainer::EventMatchesRulePattern(
    const Event& event, const bdl::QuantityRule::EventPattern& p) const {
  const SystemObject& obj = ctx_->store->catalog().Get(event.object);
  if (p.object_type.has_value() && obj.type() != *p.object_type) return false;
  bdl::EvalContext ectx;
  ectx.object = &obj;
  ectx.event = &event;
  ectx.catalog = &ctx_->store->catalog();
  ectx.derived = ctx_->derived.get();
  return bdl::ConditionMatches(p.cond.get(), ectx);
}

void GraphMaintainer::FeedRules(const Event& event) {
  const auto& rules = ctx_->spec.prioritize;
  for (size_t r = 0; r < rules.size(); ++r) {
    if (rules[r].chain.size() < 2) continue;
    const auto& upstream = rules[r].chain[0];
    const auto& downstream = rules[r].chain[1];
    // The pivot is the process the data moves through: the flow
    // destination of the upstream event, the flow source of the
    // downstream one.
    if (EventMatchesRulePattern(event, upstream)) {
      const ObjectId pivot = event.FlowDest();
      if (ctx_->store->catalog().Get(pivot).is_process()) {
        RuleProgress& p = rule_progress_[{r, pivot}];
        p.upstream_seen = true;
        p.upstream_amount = std::max(p.upstream_amount, event.amount);
        if (p.downstream_seen &&
            (!downstream.amount_vs_upstream ||
             CompareAmounts(downstream.amount_op, p.downstream_amount,
                            p.upstream_amount))) {
          boosted_.insert(pivot);
        }
      }
    }
    if (EventMatchesRulePattern(event, downstream)) {
      const ObjectId pivot = event.FlowSource();
      if (ctx_->store->catalog().Get(pivot).is_process()) {
        RuleProgress& p = rule_progress_[{r, pivot}];
        p.downstream_seen = true;
        p.downstream_amount = std::max(p.downstream_amount, event.amount);
        if (p.upstream_seen &&
            (!downstream.amount_vs_upstream ||
             CompareAmounts(downstream.amount_op, p.downstream_amount,
                            p.upstream_amount))) {
          boosted_.insert(pivot);
        }
      }
    }
  }
}

void GraphMaintainer::RecomputeBoosts() {
  rule_progress_.clear();
  boosted_.clear();
  graph_->ForEachEdge([&](const DepGraph::Edge& edge) {
    FeedRules(ctx_->store->Get(edge.event));
  });
}

size_t GraphMaintainer::PruneUnreachable() {
  if (!graph_->HasNode(graph_->start())) return 0;
  std::unordered_set<ObjectId> reachable;
  std::deque<ObjectId> queue{graph_->start()};
  reachable.insert(graph_->start());
  while (!queue.empty()) {
    const ObjectId node = queue.front();
    queue.pop_front();
    const DepGraph::Node& n = graph_->GetNode(node);
    for (const auto* edges : {&n.in_edges, &n.out_edges}) {
      for (EventId eid : *edges) {
        const DepGraph::Edge& edge = graph_->GetEdge(eid);
        for (ObjectId other : {edge.src, edge.dst}) {
          if (reachable.insert(other).second) queue.push_back(other);
        }
      }
    }
  }
  return graph_->RemoveNodesIf(
      [&](ObjectId id) { return reachable.count(id) == 0; });
}

size_t GraphMaintainer::PruneToMatchedPaths() {
  const int k = static_cast<int>(ctx_->spec.chain.size());
  if (k < 2) return 0;
  RepropagateStates();
  if (!end_point_reached_) return 0;

  // Nodes with a full match are the path ends; walk back towards the
  // start along the reverse of the exploration direction.
  const bool fwd = ctx_->spec.direction == bdl::TrackDirection::kForward;
  std::unordered_set<ObjectId> keep;
  std::deque<ObjectId> queue;
  graph_->ForEachNode([&](const DepGraph::Node& n) {
    if (n.state >= k) {
      keep.insert(n.object);
      queue.push_back(n.object);
    }
  });
  while (!queue.empty()) {
    const ObjectId node = queue.front();
    queue.pop_front();
    const auto& node_edges = fwd ? graph_->GetNode(node).in_edges
                                 : graph_->GetNode(node).out_edges;
    for (EventId eid : node_edges) {
      const DepGraph::Edge& edge = graph_->GetEdge(eid);
      const ObjectId toward_start = fwd ? edge.src : edge.dst;
      if (keep.insert(toward_start).second) queue.push_back(toward_start);
    }
  }
  keep.insert(graph_->start());
  return graph_->RemoveNodesIf(
      [&](ObjectId id) { return keep.count(id) == 0; });
}

}  // namespace aptrace
