#ifndef APTRACE_CORE_UPDATE_LOG_H_
#define APTRACE_CORE_UPDATE_LOG_H_

#include <cstddef>
#include <vector>

#include "util/clock.h"

namespace aptrace {

/// One visible update to the dependency graph: a batch of edges that
/// became available to the analyst at `sim_time` (when the producing query
/// finished). The responsiveness metric of the paper (Table II) is the
/// delta between consecutive update timestamps.
struct UpdateBatch {
  TimeMicros sim_time = 0;
  size_t new_edges = 0;
  size_t new_nodes = 0;
  size_t total_edges = 0;  // graph size after this update
  size_t total_nodes = 0;
};

/// Timestamped record of all updates of one analysis run.
class UpdateLog {
 public:
  UpdateLog() = default;

  void SetRunStart(TimeMicros t) { run_start_ = t; }
  TimeMicros run_start() const { return run_start_; }

  void Add(UpdateBatch batch) { batches_.push_back(batch); }

  const std::vector<UpdateBatch>& batches() const { return batches_; }
  size_t size() const { return batches_.size(); }
  bool empty() const { return batches_.empty(); }

  /// Waiting times between consecutive updates, in seconds: first entry is
  /// run start -> first update, then update i -> update i+1.
  std::vector<double> WaitingTimesSeconds() const {
    std::vector<double> out;
    TimeMicros prev = run_start_;
    for (const UpdateBatch& b : batches_) {
      out.push_back(MicrosToSeconds(b.sim_time - prev));
      prev = b.sim_time;
    }
    return out;
  }

 private:
  TimeMicros run_start_ = 0;
  std::vector<UpdateBatch> batches_;
};

}  // namespace aptrace

#endif  // APTRACE_CORE_UPDATE_LOG_H_
