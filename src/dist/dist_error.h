#ifndef APTRACE_DIST_DIST_ERROR_H_
#define APTRACE_DIST_DIST_ERROR_H_

#include <stdexcept>
#include <string>
#include <utility>

namespace aptrace::dist {

/// Typed failure taxonomy of the distributed shard fabric
/// (docs/distribution.md). Every failure a remote shard can inflict on a
/// query carries one of these codes, so operators and tests can grep a
/// degraded session's detail the same way they grep CLI-E/SRV-E/STO-E
/// diagnostics:
///
///   DST-E001  endpoint unreachable (bad address, connect refused/failed)
///   DST-E002  deadline exceeded (connect/send/recv ran out of budget)
///   DST-E003  protocol violation (malformed frame, bad payload, or a
///             response that is not the line-JSON the fabric speaks)
///   DST-E004  shard identity mismatch (the daemon at the endpoint is not
///             the shard the coordinator expected: wrong shard id, wrong
///             backend kind, wrong event count / wal_seq at connect)
///   DST-E005  shard unavailable after the retry budget — the degraded
///             verdict; the message names the shards that went missing
///   DST-E006  remote operation failed (the shard answered ok:false)
///   DST-E007  append pipeline inconsistency (the shard assigned a
///             different local id than the coordinator predicted)
inline constexpr char kDistErrEndpoint[] = "DST-E001";
inline constexpr char kDistErrDeadline[] = "DST-E002";
inline constexpr char kDistErrProtocol[] = "DST-E003";
inline constexpr char kDistErrIdentity[] = "DST-E004";
inline constexpr char kDistErrUnavailable[] = "DST-E005";
inline constexpr char kDistErrRemoteOp[] = "DST-E006";
inline constexpr char kDistErrAppend[] = "DST-E007";

/// The exception the fabric throws when a remote shard fails a query.
///
/// Header-only on purpose: layers below src/dist/ participate in the
/// failure path without linking the transport — the sharded store's
/// scatter-gather aggregates per-shard failures into one DST-E005, the
/// executor's prefetch slots carry it across the worker pool, and
/// Session::Step catches it and turns it into the typed Status the
/// SessionManager reports as the session's failure detail (state
/// "failed", detail "DST-E00x: ..."). That is the degraded mode: a dead
/// shard fails the query with a grep-able code instead of hanging it.
///
/// what() always starts with "<code>: " so the code survives every
/// channel that only keeps the message string.
class DistError : public std::runtime_error {
 public:
  DistError(const char* code, const std::string& message)
      : std::runtime_error(std::string(code) + ": " + message),
        code_(code) {}

  /// The DST-E00x code, as a stable pointer into the constants above.
  const char* code() const { return code_; }

 private:
  const char* code_;
};

}  // namespace aptrace::dist

#endif  // APTRACE_DIST_DIST_ERROR_H_
