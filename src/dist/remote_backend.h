#ifndef APTRACE_DIST_REMOTE_BACKEND_H_
#define APTRACE_DIST_REMOTE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "dist/shard_client.h"
#include "storage/cost_model.h"
#include "storage/storage_backend.h"
#include "util/sync.h"

namespace aptrace::dist {

/// A StorageBackend whose rows live in a remote shard daemon. Plugged
/// into the ShardedStore through EventStoreOptions::shard_backend_factory,
/// it turns the in-process scatter-gather engine into the distributed
/// fabric of docs/distribution.md: the coordinator keeps the gid
/// directory, routing masks, merge, and stats exactly as before, and this
/// class translates each per-shard Collect/lifecycle call into one RPC.
///
/// What stays local (never an RPC):
///   - NumEvents/TailRows/sealed: mirrored counters, because the
///     ShardedStore reads them under its own aggregation mutex and a
///     network round-trip under a leaf lock would invert the lock order.
///   - Get(): served from a bounded row cache filled by every collect
///     response (a collect's rows are almost always fetched right after
///     by ReplayScan); misses fall back to a shard.fetch RPC.
///   - stats(): the base-class zeroes. Replay runs coordinator-side, so
///     the ShardedStore's per-shard attribution is the source of truth.
///
/// Appends are batched: pre-seal rows buffer locally and flush every
/// kAppendBatch rows (and at Seal), each batch carrying the predicted
/// first_lid so the daemon can reject any divergence from the dense
/// append order (DST-E007). Post-seal streaming appends flush
/// immediately — the daemon must see the row before the next quantum's
/// queries do.
///
/// Thread-safety: matches the read-after-build contract. Collect*/Get/
/// HasIncomingWrite/FlowDestsOf are safe concurrently post-seal (the
/// ShardClient pools connections per calling thread; the row cache is
/// mutex-guarded). Append/Seal/lifecycle calls require the same external
/// synchronization as every other backend.
///
/// All failures surface as DistError (DST-E00x) — the ShardedStore's
/// fan-out turns them into a degraded-mode report naming the shard.
class RemoteShardBackend final : public StorageBackend {
 public:
  /// Rows buffered per shard.append batch during bulk load.
  static constexpr size_t kAppendBatch = 512;
  /// Row-cache bound; reaching it evicts the whole cache (collect-driven
  /// refill makes per-entry LRU pointless).
  static constexpr size_t kMaxCachedRows = 1 << 18;

  RemoteShardBackend(std::shared_ptr<ShardClient> client,
                     StorageBackendKind kind, CostModel cost_model);
  ~RemoteShardBackend() override;

  const BackendCapabilities& capabilities() const override;

  EventId Append(Event event) override;
  void Seal() override;
  size_t NumEvents() const override { return num_events_; }
  Event Get(EventId id) const override;

  RangeScanBatch CollectDest(ObjectId dest, TimeMicros begin,
                             TimeMicros end) const override;
  RangeScanBatch CollectSrc(ObjectId src, TimeMicros begin,
                            TimeMicros end) const override;
  RangeScanBatch CollectRange(TimeMicros begin, TimeMicros end) const override;

  bool HasIncomingWrite(ObjectId object, TimeMicros begin,
                        TimeMicros end) const override;
  std::vector<ObjectId> FlowDestsOf(ObjectId src, TimeMicros begin,
                                    TimeMicros end) const override;

  size_t SealTail(WorkerPool* pool) override;
  size_t Compact(WorkerPool* pool) override;
  size_t EvictBefore(TimeMicros horizon) override;
  size_t TailRows() const override { return tail_rows_; }

  const ShardClient& client() const { return *client_; }

 protected:
  size_t CountDestRows(ObjectId dest, TimeMicros begin, TimeMicros end,
                       uint64_t* probed, uint64_t* seeked,
                       uint64_t* pruned) const override;

 private:
  /// Shared RPC + decode behind the three Collect* ops. Decoded rows are
  /// deposited into the cache so the ensuing ReplayScan's Gets are local.
  RangeScanBatch CollectRpc(const char* op, ObjectId key, TimeMicros begin,
                            TimeMicros end) const;

  /// Sends the buffered pre-seal rows as one shard.append.
  void FlushAppends();

  void CacheRows(const std::vector<Event>& rows) const;

  std::shared_ptr<ShardClient> client_;

  /// Local mirrors of the remote backend's counters (see class comment).
  size_t num_events_ = 0;
  size_t tail_rows_ = 0;

  std::vector<Event> pending_;  // pre-seal append buffer
  EventId pending_first_lid_ = 0;

  mutable Mutex cache_mu_{"RemoteShardBackend::cache_mu_"};
  mutable std::unordered_map<uint64_t, Event> cache_
      APTRACE_GUARDED_BY(cache_mu_);
};

}  // namespace aptrace::dist

#endif  // APTRACE_DIST_REMOTE_BACKEND_H_
