#include "dist/remote_backend.h"

#include <string>
#include <utility>

#include "dist/dist_error.h"
#include "dist/shard_codec.h"
#include "obs/json_dict.h"

namespace aptrace::dist {

RemoteShardBackend::RemoteShardBackend(std::shared_ptr<ShardClient> client,
                                       StorageBackendKind kind,
                                       CostModel cost_model)
    : StorageBackend(kind, cost_model), client_(std::move(client)) {}

RemoteShardBackend::~RemoteShardBackend() = default;

const BackendCapabilities& RemoteShardBackend::capabilities() const {
  // Mirrors of the concrete backends' capability blocks: the remote
  // daemon hosts exactly one of these kinds, verified at handshake.
  static const BackendCapabilities kRowCaps = {
      .streaming_append = true,
      .zone_map_pruning = false,
      .probe_unit = "time partition",
  };
  static const BackendCapabilities kColumnarCaps = {
      .streaming_append = true,
      .zone_map_pruning = true,
      .probe_unit = "column segment",
  };
  return kind() == StorageBackendKind::kColumnar ? kColumnarCaps : kRowCaps;
}

void RemoteShardBackend::FlushAppends() {
  if (pending_.empty()) return;
  obs::JsonDict fields;
  fields.Add("rows", Base64Encode(EncodeEvents(pending_)));
  fields.Add("count", static_cast<uint64_t>(pending_.size()));
  fields.Add("first_lid", static_cast<uint64_t>(pending_first_lid_));
  const service::JsonValue resp = client_->Call("shard.append", fields);
  if (resp.GetUint("appended") != pending_.size()) {
    throw DistError(kDistErrAppend,
                    "shard " + std::to_string(client_->shard()) +
                        " acknowledged " +
                        std::to_string(resp.GetUint("appended")) +
                        " of " + std::to_string(pending_.size()) +
                        " appended rows");
  }
  pending_.clear();
}

EventId RemoteShardBackend::Append(Event event) {
  NoteAppend(event);
  const EventId lid = num_events_++;
  if (pending_.empty()) pending_first_lid_ = lid;
  pending_.push_back(std::move(event));
  if (sealed()) {
    // Streaming path: the daemon must hold the row before the next
    // quantum queries it.
    FlushAppends();
    if (kind() == StorageBackendKind::kColumnar) tail_rows_++;
  } else if (pending_.size() >= kAppendBatch) {
    FlushAppends();
  }
  return lid;
}

void RemoteShardBackend::Seal() {
  FlushAppends();
  const service::JsonValue resp = client_->Call("shard.seal");
  if (resp.GetUint("events") != num_events_) {
    throw DistError(kDistErrAppend,
                    "shard " + std::to_string(client_->shard()) +
                        " sealed with " +
                        std::to_string(resp.GetUint("events")) +
                        " events, coordinator loaded " +
                        std::to_string(num_events_));
  }
  MarkSealed(num_events_ == 0);
}

void RemoteShardBackend::CacheRows(const std::vector<Event>& rows) const {
  MutexLock lock(&cache_mu_);
  if (cache_.size() + rows.size() > kMaxCachedRows) cache_.clear();
  for (const Event& e : rows) cache_.emplace(e.id, e);
}

Event RemoteShardBackend::Get(EventId id) const {
  {
    MutexLock lock(&cache_mu_);
    if (const auto it = cache_.find(id); it != cache_.end()) {
      return it->second;
    }
  }
  obs::JsonDict fields;
  fields.Add("lids", Base64Encode(EncodeU64s({id})));
  fields.Add("count", uint64_t{1});
  const service::JsonValue resp = client_->Call("shard.fetch", fields);
  auto bytes = Base64Decode(resp.GetString("rows"));
  if (!bytes.ok()) {
    throw DistError(kDistErrProtocol, bytes.status().message());
  }
  auto rows = DecodeRows(bytes.value());
  if (!rows.ok() || rows.value().size() != 1) {
    throw DistError(kDistErrProtocol,
                    "shard.fetch returned " +
                        std::to_string(rows.ok() ? rows.value().size() : 0) +
                        " rows for one lid");
  }
  CacheRows(rows.value());
  return rows.value()[0];
}

RangeScanBatch RemoteShardBackend::CollectRpc(const char* op, ObjectId key,
                                              TimeMicros begin,
                                              TimeMicros end) const {
  obs::JsonDict fields;
  if (key != kInvalidObjectId) {
    fields.Add("key", static_cast<uint64_t>(key));
  }
  fields.Add("begin", static_cast<int64_t>(begin));
  fields.Add("end", static_cast<int64_t>(end));
  const service::JsonValue resp = client_->Call(op, fields);

  auto bytes = Base64Decode(resp.GetString("rows"));
  if (!bytes.ok()) {
    throw DistError(kDistErrProtocol, bytes.status().message());
  }
  auto rows = DecodeRows(bytes.value());
  if (!rows.ok()) {
    throw DistError(kDistErrProtocol, rows.status().message());
  }
  if (rows.value().size() != resp.GetUint("count")) {
    throw DistError(kDistErrProtocol,
                    "collect payload row count disagrees with the "
                    "declared count");
  }
  CacheRows(rows.value());

  RangeScanBatch batch;
  batch.rows.reserve(rows.value().size());
  for (const Event& e : rows.value()) batch.rows.push_back(e.id);
  batch.partitions_probed = resp.GetUint("probed");
  batch.partitions_seeked = resp.GetUint("seeked");
  batch.segments_pruned = resp.GetUint("pruned");
  return batch;
}

RangeScanBatch RemoteShardBackend::CollectDest(ObjectId dest, TimeMicros begin,
                                               TimeMicros end) const {
  return CollectRpc("shard.collect_dest", dest, begin, end);
}

RangeScanBatch RemoteShardBackend::CollectSrc(ObjectId src, TimeMicros begin,
                                              TimeMicros end) const {
  return CollectRpc("shard.collect_src", src, begin, end);
}

RangeScanBatch RemoteShardBackend::CollectRange(TimeMicros begin,
                                                TimeMicros end) const {
  return CollectRpc("shard.collect_range", kInvalidObjectId, begin, end);
}

bool RemoteShardBackend::HasIncomingWrite(ObjectId object, TimeMicros begin,
                                          TimeMicros end) const {
  obs::JsonDict fields;
  fields.Add("key", static_cast<uint64_t>(object));
  fields.Add("begin", static_cast<int64_t>(begin));
  fields.Add("end", static_cast<int64_t>(end));
  return client_->Call("shard.has_incoming_write", fields).GetBool("found");
}

std::vector<ObjectId> RemoteShardBackend::FlowDestsOf(ObjectId src,
                                                      TimeMicros begin,
                                                      TimeMicros end) const {
  obs::JsonDict fields;
  fields.Add("key", static_cast<uint64_t>(src));
  fields.Add("begin", static_cast<int64_t>(begin));
  fields.Add("end", static_cast<int64_t>(end));
  const service::JsonValue resp = client_->Call("shard.flow_dests", fields);
  auto bytes = Base64Decode(resp.GetString("ids"));
  if (!bytes.ok()) {
    throw DistError(kDistErrProtocol, bytes.status().message());
  }
  auto ids = DecodeU64s(bytes.value());
  if (!ids.ok()) {
    throw DistError(kDistErrProtocol, ids.status().message());
  }
  return std::move(ids).value();
}

size_t RemoteShardBackend::SealTail(WorkerPool* pool) {
  (void)pool;  // parallelism is the daemon's concern
  const size_t rows = client_->Call("shard.seal_tail").GetUint("rows");
  tail_rows_ = 0;
  return rows;
}

size_t RemoteShardBackend::Compact(WorkerPool* pool) {
  (void)pool;
  return client_->Call("shard.compact").GetUint("units");
}

size_t RemoteShardBackend::EvictBefore(TimeMicros horizon) {
  obs::JsonDict fields;
  fields.Add("horizon", static_cast<int64_t>(horizon));
  const size_t evicted =
      client_->Call("shard.evict", fields).GetUint("rows");
  // Evicted rows may be stale in the cache (point Gets still resolve on
  // the daemon's archive tier, but serving them from here would mask an
  // eviction bug); drop everything.
  MutexLock lock(&cache_mu_);
  cache_.clear();
  return evicted;
}

size_t RemoteShardBackend::CountDestRows(ObjectId dest, TimeMicros begin,
                                         TimeMicros end, uint64_t* probed,
                                         uint64_t* seeked,
                                         uint64_t* pruned) const {
  const RangeScanBatch batch =
      CollectRpc("shard.collect_dest", dest, begin, end);
  *probed = batch.partitions_probed;
  *seeked = batch.partitions_seeked;
  *pruned = batch.segments_pruned;
  return batch.rows.size();
}

}  // namespace aptrace::dist
