#include "dist/shard_client.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "dist/dist_error.h"
#include "dist/shard_service.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/env.h"
#include "util/string_util.h"

namespace aptrace::dist {

namespace {

struct DistMetrics {
  obs::Counter* rpcs;
  obs::Counter* retries;
  obs::Counter* shard_down;
};

const DistMetrics& Dm() {
  static const DistMetrics kMetrics = {
      obs::Metrics().FindOrCreateCounter(obs::names::kDistRpcs),
      obs::Metrics().FindOrCreateCounter(obs::names::kDistRetries),
      obs::Metrics().FindOrCreateCounter(obs::names::kDistShardDown),
  };
  return kMetrics;
}

/// Milliseconds left before `deadline_at`; throws DST-E002 at zero.
int RemainingMillis(int64_t deadline_at, const char* phase) {
  const int64_t left = deadline_at - MonotonicNowMicros();
  if (left <= 0) {
    throw DistError(kDistErrDeadline,
                    std::string("deadline exceeded during ") + phase);
  }
  // Round up so a sub-millisecond remainder still polls once.
  return static_cast<int>((left + 999) / 1000);
}

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags >= 0) fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Maps a remote DST-E00x code string back onto the local constant so
/// rethrown errors keep a stable code() pointer.
const char* MapRemoteCode(const std::string& code) {
  for (const char* known :
       {kDistErrEndpoint, kDistErrDeadline, kDistErrProtocol,
        kDistErrIdentity, kDistErrUnavailable, kDistErrRemoteOp,
        kDistErrAppend}) {
    if (code == known) return known;
  }
  return kDistErrRemoteOp;
}

}  // namespace

std::string ShardEndpoint::ToString() const {
  if (!unix_path.empty()) return "unix:" + unix_path;
  return host + ":" + std::to_string(port);
}

Result<ShardEndpoint> ParseShardEndpoint(std::string_view text) {
  const std::string_view t = Trim(text);
  if (t.empty()) {
    return Status::InvalidArgument("empty shard endpoint");
  }
  ShardEndpoint ep;
  if (StartsWith(t, "unix:")) {
    ep.unix_path = std::string(t.substr(5));
    if (ep.unix_path.empty()) {
      return Status::InvalidArgument("empty unix socket path in endpoint");
    }
    return ep;
  }
  if (t.front() == '/') {
    ep.unix_path = std::string(t);
    return ep;
  }
  const size_t colon = t.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == t.size()) {
    return Status::InvalidArgument(
        "shard endpoint '" + std::string(t) +
        "' is neither host:port nor unix:<path>");
  }
  ep.host = std::string(t.substr(0, colon));
  const std::string port_str(t.substr(colon + 1));
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (*end != '\0' || port < 1 || port > 65535) {
    return Status::InvalidArgument("bad port in shard endpoint '" +
                                   std::string(t) + "'");
  }
  ep.port = static_cast<int>(port);
  return ep;
}

Result<std::vector<ShardEndpoint>> ParseShardEndpoints(std::string_view csv) {
  std::vector<ShardEndpoint> out;
  for (const std::string& piece : Split(csv, ',')) {
    if (Trim(piece).empty()) continue;
    auto ep = ParseShardEndpoint(piece);
    if (!ep.ok()) return ep.status();
    out.push_back(std::move(ep).value());
  }
  if (out.empty()) {
    return Status::InvalidArgument("no shard endpoints in '" +
                                   std::string(csv) + "'");
  }
  return out;
}

uint64_t DefaultDistDeadlineMicros() {
  if (const auto v = GetValidatedEnvCount(kEnvDistDeadlineMicros);
      v.has_value() && *v > 0) {
    return *v;
  }
  return 5'000'000;
}

ShardClient::ShardClient(ShardEndpoint endpoint, uint32_t shard,
                         StorageBackendKind expected_backend,
                         ShardClientOptions options)
    : endpoint_(std::move(endpoint)),
      shard_(shard),
      expected_backend_(expected_backend),
      options_(options) {}

ShardClient::~ShardClient() { CloseIdle(); }

void ShardClient::CloseIdle() {
  MutexLock lock(&mu_);
  for (const int fd : idle_fds_) close(fd);
  idle_fds_.clear();
}

int ShardClient::Dial(int64_t deadline_at) {
  int fd = -1;
  if (!endpoint_.unix_path.empty()) {
    fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      throw DistError(kDistErrEndpoint, "socket: " + ErrnoMessage(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (endpoint_.unix_path.size() >= sizeof(addr.sun_path)) {
      close(fd);
      throw DistError(kDistErrEndpoint,
                      "unix socket path too long: " + endpoint_.unix_path);
    }
    std::strncpy(addr.sun_path, endpoint_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    SetNonBlocking(fd);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
        errno != EINPROGRESS) {
      const std::string err = ErrnoMessage(errno);
      close(fd);
      throw DistError(kDistErrEndpoint,
                      "connect " + endpoint_.ToString() + ": " + err);
    }
  } else {
    fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      throw DistError(kDistErrEndpoint, "socket: " + ErrnoMessage(errno));
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(endpoint_.port));
    const std::string host =
        endpoint_.host == "localhost" ? "127.0.0.1" : endpoint_.host;
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      close(fd);
      throw DistError(kDistErrEndpoint,
                      "unresolvable host '" + endpoint_.host +
                          "' (numeric IPv4 or localhost only)");
    }
    SetNonBlocking(fd);
    if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
        errno != EINPROGRESS) {
      const std::string err = ErrnoMessage(errno);
      close(fd);
      throw DistError(kDistErrEndpoint,
                      "connect " + endpoint_.ToString() + ": " + err);
    }
  }

  // Finish the non-blocking connect under the deadline.
  try {
    pollfd p{fd, POLLOUT, 0};
    for (;;) {
      const int r = poll(&p, 1, RemainingMillis(deadline_at, "connect"));
      if (r < 0 && errno == EINTR) continue;
      if (r > 0) break;
      if (r == 0) continue;  // RemainingMillis throws once spent
      throw DistError(kDistErrEndpoint, "poll: " + ErrnoMessage(errno));
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
      throw DistError(kDistErrEndpoint,
                      "connect " + endpoint_.ToString() + ": " +
                          ErrnoMessage(err != 0 ? err : errno));
    }

    // Identity handshake: the daemon at this address must be the shard
    // the coordinator expects, speaking the protocol it expects.
    obs::JsonDict hello;
    hello.Add("op", "shard.hello");
    const std::string reply = Exchange(fd, hello.Str(), deadline_at);
    const service::JsonValue resp = ParseResponse(reply);
    if (resp.GetString("proto") != kShardProto) {
      throw DistError(kDistErrIdentity,
                      endpoint_.ToString() + " speaks '" +
                          resp.GetString("proto") + "', expected '" +
                          kShardProto + "'");
    }
    if (resp.GetUint("shard", ~uint64_t{0}) != shard_) {
      throw DistError(
          kDistErrIdentity,
          endpoint_.ToString() + " is shard " +
              std::to_string(resp.GetUint("shard", ~uint64_t{0})) +
              ", expected shard " + std::to_string(shard_));
    }
    if (resp.GetString("backend") != StorageBackendName(expected_backend_)) {
      throw DistError(kDistErrIdentity,
                      endpoint_.ToString() + " runs backend '" +
                          resp.GetString("backend") + "', expected '" +
                          StorageBackendName(expected_backend_) + "'");
    }
    if (options_.expect_events.has_value() &&
        resp.GetUint("events") != *options_.expect_events) {
      throw DistError(kDistErrIdentity,
                      endpoint_.ToString() + " holds " +
                          std::to_string(resp.GetUint("events")) +
                          " events, expected " +
                          std::to_string(*options_.expect_events));
    }
    if (options_.expect_wal_seq.has_value() &&
        resp.GetUint("wal_seq") != *options_.expect_wal_seq) {
      throw DistError(kDistErrIdentity,
                      endpoint_.ToString() + " reports wal_seq " +
                          std::to_string(resp.GetUint("wal_seq")) +
                          ", expected " +
                          std::to_string(*options_.expect_wal_seq));
    }
  } catch (...) {
    close(fd);
    throw;
  }
  return fd;
}

std::string ShardClient::Exchange(int fd, const std::string& line,
                                  int64_t deadline_at) {
  const std::string out = line + "\n";
  size_t off = 0;
  while (off < out.size()) {
    pollfd p{fd, POLLOUT, 0};
    const int r = poll(&p, 1, RemainingMillis(deadline_at, "send"));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) continue;
    const ssize_t n =
        send(fd, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      throw DistError(kDistErrEndpoint, "send: " + ErrnoMessage(errno));
    }
    off += static_cast<size_t>(n);
  }

  std::string buf;
  char chunk[4096];
  for (;;) {
    if (const size_t nl = buf.find('\n'); nl != std::string::npos) {
      buf.resize(nl);
      if (!buf.empty() && buf.back() == '\r') buf.pop_back();
      return buf;
    }
    pollfd p{fd, POLLIN, 0};
    const int r = poll(&p, 1, RemainingMillis(deadline_at, "recv"));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) continue;
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      throw DistError(kDistErrEndpoint, "recv: " + ErrnoMessage(errno));
    }
    if (n == 0) {
      throw DistError(kDistErrEndpoint,
                      "shard closed the connection mid-response");
    }
    buf.append(chunk, static_cast<size_t>(n));
  }
}

service::JsonValue ShardClient::ParseResponse(const std::string& line) {
  auto parsed = service::ParseJson(line);
  if (!parsed.ok() || !parsed.value().IsObject()) {
    throw DistError(kDistErrProtocol,
                    "shard " + std::to_string(shard_) +
                        " answered a non-JSON frame: " +
                        (parsed.ok() ? "not an object"
                                     : parsed.status().message()));
  }
  service::JsonValue resp = std::move(parsed).value();
  if (resp.Find("ok") == nullptr) {
    throw DistError(kDistErrProtocol,
                    "shard " + std::to_string(shard_) +
                        " answered a frame without an ok field");
  }
  if (!resp.GetBool("ok")) {
    const std::string code = resp.GetString("code", kDistErrRemoteOp);
    std::string error = resp.GetString("error", "remote operation failed");
    // The remote may have embedded its own code prefix; strip it so the
    // rethrown what() carries the code exactly once.
    if (StartsWith(error, code + ": ")) error = error.substr(code.size() + 2);
    throw DistError(MapRemoteCode(code),
                    "shard " + std::to_string(shard_) + ": " + error);
  }
  return resp;
}

service::JsonValue ShardClient::Call(const std::string& op,
                                     const obs::JsonDict& fields) {
  APTRACE_SPAN("dist/fanout");
  obs::JsonDict request;
  request.Add("op", op);
  std::string line = request.Str();
  const std::string body = fields.Str();
  if (body.size() > 2) {
    // Merge {"op":...} with the caller's fields (both are flat objects).
    line.pop_back();
    line += ",";
    line += body.substr(1);
  }

  std::string last_error;
  uint64_t backoff = options_.retry_backoff_micros;
  const int attempts = options_.max_attempts < 1 ? 1 : options_.max_attempts;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      Dm().retries->Add();
      std::this_thread::sleep_for(std::chrono::microseconds(backoff));
      backoff *= 2;
    }
    const int64_t deadline_at =
        MonotonicNowMicros() +
        static_cast<int64_t>(options_.deadline_micros);
    int fd = -1;
    bool fresh = false;
    {
      MutexLock lock(&mu_);
      if (!idle_fds_.empty()) {
        fd = idle_fds_.back();
        idle_fds_.pop_back();
      }
    }
    try {
      if (fd < 0) {
        fd = Dial(deadline_at);
        fresh = true;
      }
      const std::string reply = Exchange(fd, line, deadline_at);
      service::JsonValue resp = ParseResponse(reply);
      Dm().rpcs->Add();
      MutexLock lock(&mu_);
      idle_fds_.push_back(fd);
      return resp;
    } catch (const DistError& e) {
      if (fd >= 0) close(fd);
      Dm().rpcs->Add();
      if (e.code() == kDistErrIdentity || e.code() == kDistErrRemoteOp ||
          e.code() == kDistErrAppend) {
        // Permanent verdicts: redialing cannot change them.
        throw;
      }
      if (!fresh && e.code() == kDistErrEndpoint && attempt + 1 < attempts) {
        // A pooled connection gone stale (daemon restarted) is the one
        // transport error a redial genuinely repairs; fall through to
        // the retry loop.
      }
      last_error = e.what();
    }
  }
  Dm().shard_down->Add();
  throw DistError(kDistErrUnavailable,
                  "shard " + std::to_string(shard_) + " at " +
                      endpoint_.ToString() + " unavailable after " +
                      std::to_string(attempts) + " attempts (" +
                      last_error + ")");
}

}  // namespace aptrace::dist
