#ifndef APTRACE_DIST_FLEET_H_
#define APTRACE_DIST_FLEET_H_

#include <sys/types.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "storage/storage_backend.h"
#include "util/status.h"

namespace aptrace::dist {

/// One launched shard daemon.
struct ShardProcess {
  uint32_t shard = 0;
  pid_t pid = -1;
  int port = -1;           // bound loopback TCP port
  std::string endpoint;    // "127.0.0.1:<port>"
  int ready_fd = -1;       // read side of the child's stdout pipe
  bool killed = false;     // Kill() was called (teardown skips it)
};

struct FleetOptions {
  /// Path to the aptrace_shardd binary.
  std::string shardd_bin;
  size_t shards = 4;
  StorageBackendKind backend = StorageBackendKind::kRow;
  /// When non-empty, each daemon gets "<data_dir>/shard<N>" as its WAL
  /// directory (durable shards; empty = in-memory).
  std::string data_dir;
  /// When non-empty, "<pid_dir>/shard<N>.pid" is written per daemon so
  /// scripts (cli_smoke's kill test) can signal one shard by number.
  std::string pid_dir;
  /// How long to wait for each daemon's ready line.
  uint64_t ready_timeout_micros = 15'000'000;
  /// Extra argv entries appended to every daemon's command line.
  std::vector<std::string> extra_args;
};

/// Launches and owns N shard daemons: forks each aptrace_shardd on an
/// ephemeral loopback port, parses its machine-readable ready line
/// ("shardd: ready shard=<n> tcp=127.0.0.1:<port>"), and tears the whole
/// fleet down on destruction (SIGTERM, short grace, then SIGKILL) — the
/// teardown runs even when a test or launcher dies mid-way, because it
/// lives in the destructor. Shared by tools/aptrace_fleet, the fabric
/// tests, and bench_dist_fanout (docs/distribution.md).
class ShardFleet {
 public:
  /// Spawns the fleet; on any failure, already-started daemons are torn
  /// down before the error returns.
  static Result<std::unique_ptr<ShardFleet>> Launch(FleetOptions options);

  ~ShardFleet();

  ShardFleet(const ShardFleet&) = delete;
  ShardFleet& operator=(const ShardFleet&) = delete;

  const std::vector<ShardProcess>& shards() const { return shards_; }

  /// "<ep0>,<ep1>,..." — the form --shard-endpoint= and
  /// APTRACE_SHARD_ENDPOINTS consume.
  std::string EndpointsCsv() const;

  /// Sends `sig` (e.g. SIGKILL for the degraded-mode tests) to shard `i`
  /// and marks it dead so teardown skips it.
  Status Kill(size_t i, int sig);

  /// Graceful teardown (also run by the destructor): SIGTERM every live
  /// daemon, reap with a short grace period, SIGKILL stragglers.
  void Terminate();

 private:
  explicit ShardFleet(FleetOptions options) : options_(std::move(options)) {}

  FleetOptions options_;
  std::vector<ShardProcess> shards_;
};

}  // namespace aptrace::dist

#endif  // APTRACE_DIST_FLEET_H_
