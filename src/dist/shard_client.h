#ifndef APTRACE_DIST_SHARD_CLIENT_H_
#define APTRACE_DIST_SHARD_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_dict.h"
#include "service/json.h"
#include "storage/storage_backend.h"
#include "util/status.h"
#include "util/sync.h"

namespace aptrace::dist {

/// Address of one shard daemon: either a unix-domain socket path or a
/// TCP host:port. Parsed from `--shard-endpoint=` flags and the
/// APTRACE_SHARD_ENDPOINTS env var (comma-separated; each entry is
/// "host:port", "unix:<path>", or a bare absolute path).
struct ShardEndpoint {
  std::string unix_path;  // non-empty selects the unix transport
  std::string host;       // else TCP (numeric IPv4 or "localhost")
  int port = -1;

  std::string ToString() const;
};

Result<ShardEndpoint> ParseShardEndpoint(std::string_view text);
Result<std::vector<ShardEndpoint>> ParseShardEndpoints(std::string_view csv);

/// Per-RPC deadline: the APTRACE_DIST_DEADLINE_MICROS env var when set
/// and valid (warn-once through util/env.h), else 5 seconds.
uint64_t DefaultDistDeadlineMicros();

struct ShardClientOptions {
  /// Wall-clock budget of one RPC attempt (connect + hello + send +
  /// recv). An attempt that runs out fails with DST-E002 and counts
  /// against the retry budget — a dead shard can stall a query for at
  /// most max_attempts * deadline, never hang it.
  uint64_t deadline_micros = DefaultDistDeadlineMicros();

  /// Transport failures (connect refused, EOF mid-response, deadline)
  /// redial up to this many total attempts with doubling backoff.
  /// Application-level errors (ok:false responses) and identity
  /// mismatches never retry.
  int max_attempts = 3;
  uint64_t retry_backoff_micros = 20'000;

  /// Extra identity pins verified against every shard.hello (tests use
  /// these to prove the DST-E004 path; the coordinator pins events after
  /// loading).
  std::optional<uint64_t> expect_events;
  std::optional<uint64_t> expect_wal_seq;
};

/// One coordinator-side channel to one shard daemon: blocking line-JSON
/// RPCs with per-attempt deadlines, bounded retry with backoff, and an
/// identity handshake on every new connection (docs/distribution.md).
///
/// Failures throw DistError (dist/dist_error.h): DST-E001 unreachable,
/// DST-E002 deadline, DST-E003 protocol garbage, DST-E004 identity
/// mismatch, DST-E005 after the retry budget, DST-E006 when the shard
/// answered ok:false.
///
/// Thread-safety: any number of threads may Call() concurrently — the
/// executor's prefetch workers fan Collect* RPCs out in parallel.
/// Connections live in a mutex-guarded free list; each Call checks one
/// out (dialing if none is idle) and returns it on success.
class ShardClient {
 public:
  ShardClient(ShardEndpoint endpoint, uint32_t shard,
              StorageBackendKind expected_backend,
              ShardClientOptions options = {});
  ~ShardClient();

  ShardClient(const ShardClient&) = delete;
  ShardClient& operator=(const ShardClient&) = delete;

  /// Issues one RPC: {"op":<op>, ...fields} out, parsed ok:true response
  /// back. Throws DistError on any failure (see class comment).
  service::JsonValue Call(const std::string& op, const obs::JsonDict& fields);

  /// Convenience for field-free ops.
  service::JsonValue Call(const std::string& op) {
    return Call(op, obs::JsonDict{});
  }

  const ShardEndpoint& endpoint() const { return endpoint_; }
  uint32_t shard() const { return shard_; }

  /// Closes every idle pooled connection (the next Call redials). Used
  /// by tests; the destructor does the same.
  void CloseIdle();

 private:
  /// Dials, handshakes (shard.hello, verified), returns the connected
  /// fd. Throws DistError on failure.
  int Dial(int64_t deadline_at);

  /// One request/response exchange on `fd`. Throws DistError.
  std::string Exchange(int fd, const std::string& line, int64_t deadline_at);

  /// Parses a response line; throws DST-E003 on garbage and DST-E006 /
  /// the remote's own code on ok:false.
  service::JsonValue ParseResponse(const std::string& line);

  const ShardEndpoint endpoint_;
  const uint32_t shard_;
  const StorageBackendKind expected_backend_;
  const ShardClientOptions options_;

  Mutex mu_{"ShardClient::mu_"};
  std::vector<int> idle_fds_ APTRACE_GUARDED_BY(mu_);
};

}  // namespace aptrace::dist

#endif  // APTRACE_DIST_SHARD_CLIENT_H_
