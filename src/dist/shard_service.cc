#include "dist/shard_service.h"

#include <utility>
#include <vector>

#include "dist/dist_error.h"
#include "dist/shard_codec.h"
#include "obs/json_dict.h"
#include "service/json.h"

namespace aptrace::dist {

namespace {

std::string ErrorResponse(const char* code, const std::string& message) {
  obs::JsonDict d;
  d.Add("ok", false);
  d.Add("code", code);
  d.Add("error", message);
  return d.Str();
}

/// Responses lead with the ok flag (JsonDict keeps insertion order).
obs::JsonDict WithOk() {
  obs::JsonDict d;
  d.Add("ok", true);
  return d;
}

/// Decodes the base64 `field` of `req`, enforcing the declared `count`
/// against `unit_bytes`. Throws DistError(DST-E003) on any mismatch.
std::string DecodePayload(const service::JsonValue& req, const char* field,
                          size_t unit_bytes) {
  const service::JsonValue* raw = req.Find(field);
  if (raw == nullptr || !raw->IsString()) {
    throw DistError(kDistErrProtocol,
                    std::string("missing payload field '") + field + "'");
  }
  auto bytes = Base64Decode(raw->str_v);
  if (!bytes.ok()) {
    throw DistError(kDistErrProtocol, bytes.status().message());
  }
  const uint64_t count = req.GetUint("count");
  if (bytes.value().size() != count * unit_bytes) {
    throw DistError(kDistErrProtocol,
                    "payload length disagrees with declared count");
  }
  return std::move(bytes).value();
}

void AddBatchCounters(obs::JsonDict* d, const RangeScanBatch& batch) {
  d->Add("count", static_cast<uint64_t>(batch.rows.size()));
  d->Add("probed", batch.partitions_probed);
  d->Add("seeked", batch.partitions_seeked);
  d->Add("pruned", batch.segments_pruned);
}

}  // namespace

ShardService::ShardService(uint32_t shard,
                           std::unique_ptr<StorageBackend> backend,
                           WalWriter* wal)
    : shard_(shard), backend_(std::move(backend)), wal_(wal) {}

std::string ShardService::HandleLine(const std::string& line,
                                     bool* shutdown_requested) {
  auto parsed = service::ParseJson(line);
  if (!parsed.ok() || !parsed.value().IsObject()) {
    return ErrorResponse(kDistErrProtocol,
                         parsed.ok() ? "request is not a JSON object"
                                     : parsed.status().message());
  }
  const service::JsonValue& req = parsed.value();
  const std::string op = req.GetString("op");

  try {
    obs::JsonDict d = WithOk();

    if (op == "shard.hello") {
      d.Add("proto", kShardProto);
      d.Add("shard", static_cast<uint64_t>(shard_));
      d.Add("backend", backend_->name());
      d.Add("events", static_cast<uint64_t>(backend_->NumEvents()));
      d.Add("tail_rows", static_cast<uint64_t>(backend_->TailRows()));
      d.Add("wal_seq", wal_ != nullptr ? wal_->next_seq() : uint64_t{0});
      d.Add("sealed", backend_->sealed());
      return d.Str();
    }

    if (op == "shard.append") {
      const std::string bytes = DecodePayload(req, "rows", kShardEventBytes);
      auto events = DecodeEvents(bytes);
      if (!events.ok()) {
        return ErrorResponse(kDistErrProtocol, events.status().message());
      }
      MutexLock lock(&mutate_mu_);
      const uint64_t first_lid = req.GetUint("first_lid");
      if (first_lid != backend_->NumEvents()) {
        return ErrorResponse(
            kDistErrAppend,
            "append at lid " + std::to_string(first_lid) +
                " but this shard's next dense id is " +
                std::to_string(backend_->NumEvents()));
      }
      if (wal_ != nullptr) {
        if (auto seq = wal_->AppendBatch(events.value()); !seq.ok()) {
          return ErrorResponse(kDistErrRemoteOp, seq.status().message());
        }
      }
      for (Event& e : events.value()) {
        backend_->Append(std::move(e));
      }
      d.Add("first_lid", first_lid);
      d.Add("appended", static_cast<uint64_t>(events.value().size()));
      return d.Str();
    }

    if (op == "shard.seal") {
      MutexLock lock(&mutate_mu_);
      backend_->Seal();
      d.Add("events", static_cast<uint64_t>(backend_->NumEvents()));
      return d.Str();
    }

    if (op == "shard.collect_dest" || op == "shard.collect_src" ||
        op == "shard.collect_range") {
      const TimeMicros begin = req.GetInt("begin");
      const TimeMicros end = req.GetInt("end");
      RangeScanBatch batch;
      if (op == "shard.collect_range") {
        batch = backend_->CollectRange(begin, end);
      } else if (op == "shard.collect_src") {
        batch = backend_->CollectSrc(req.GetUint("key"), begin, end);
      } else {
        batch = backend_->CollectDest(req.GetUint("key"), begin, end);
      }
      std::vector<Event> rows;
      rows.reserve(batch.rows.size());
      for (const EventId lid : batch.rows) {
        Event e = backend_->Get(lid);
        e.id = lid;
        rows.push_back(e);
      }
      d.Add("rows", Base64Encode(EncodeRows(rows)));
      AddBatchCounters(&d, batch);
      return d.Str();
    }

    if (op == "shard.has_incoming_write") {
      d.Add("found",
            backend_->HasIncomingWrite(req.GetUint("key"),
                                       req.GetInt("begin"),
                                       req.GetInt("end")));
      return d.Str();
    }

    if (op == "shard.flow_dests") {
      const std::vector<ObjectId> ids = backend_->FlowDestsOf(
          req.GetUint("key"), req.GetInt("begin"), req.GetInt("end"));
      d.Add("ids", Base64Encode(EncodeU64s(ids)));
      d.Add("count", static_cast<uint64_t>(ids.size()));
      return d.Str();
    }

    if (op == "shard.fetch") {
      const std::string bytes = DecodePayload(req, "lids", 8);
      auto lids = DecodeU64s(bytes);
      if (!lids.ok()) {
        return ErrorResponse(kDistErrProtocol, lids.status().message());
      }
      std::vector<Event> rows;
      rows.reserve(lids.value().size());
      for (const uint64_t lid : lids.value()) {
        if (lid >= backend_->NumEvents()) {
          return ErrorResponse(kDistErrProtocol,
                               "fetch of unknown local id " +
                                   std::to_string(lid));
        }
        Event e = backend_->Get(lid);
        e.id = lid;
        rows.push_back(e);
      }
      d.Add("rows", Base64Encode(EncodeRows(rows)));
      d.Add("count", static_cast<uint64_t>(rows.size()));
      return d.Str();
    }

    if (op == "shard.seal_tail") {
      MutexLock lock(&mutate_mu_);
      d.Add("rows", static_cast<uint64_t>(backend_->SealTail(nullptr)));
      return d.Str();
    }

    if (op == "shard.compact") {
      MutexLock lock(&mutate_mu_);
      d.Add("units", static_cast<uint64_t>(backend_->Compact(nullptr)));
      return d.Str();
    }

    if (op == "shard.evict") {
      MutexLock lock(&mutate_mu_);
      d.Add("rows", static_cast<uint64_t>(
                        backend_->EvictBefore(req.GetInt("horizon"))));
      return d.Str();
    }

    if (op == "shard.stats") {
      const StoreStats s = backend_->stats();
      d.Add("queries", s.queries);
      d.Add("rows_matched", s.rows_matched);
      d.Add("rows_filtered", s.rows_filtered);
      d.Add("partitions_probed", s.partitions_probed);
      d.Add("partitions_seeked", s.partitions_seeked);
      d.Add("segments_pruned", s.segments_pruned);
      d.Add("simulated_cost_micros",
            static_cast<uint64_t>(s.simulated_cost));
      return d.Str();
    }

    if (op == "shard.snapshot") {
      d.Add("shard", static_cast<uint64_t>(shard_));
      d.Add("events", static_cast<uint64_t>(backend_->NumEvents()));
      d.Add("tail_rows", static_cast<uint64_t>(backend_->TailRows()));
      d.Add("sealed", backend_->sealed());
      d.Add("min_time", static_cast<int64_t>(backend_->MinTime()));
      d.Add("max_time", static_cast<int64_t>(backend_->MaxTime()));
      return d.Str();
    }

    if (op == "shard.shutdown") {
      *shutdown_requested = true;
      d.Add("draining", true);
      return d.Str();
    }

    return ErrorResponse(kDistErrProtocol, "unknown op '" + op + "'");
  } catch (const DistError& e) {
    return ErrorResponse(e.code(), e.what());
  }
}

}  // namespace aptrace::dist
