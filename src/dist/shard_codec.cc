#include "dist/shard_codec.h"

#include <cstring>

namespace aptrace::dist {

namespace {

constexpr char kB64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Reverse alphabet; -1 marks an invalid byte.
int B64Value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint16_t GetU16(const unsigned char* p) {
  return static_cast<uint16_t>(p[0]) |
         static_cast<uint16_t>(static_cast<uint16_t>(p[1]) << 8);
}

uint64_t GetU64(const unsigned char* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

/// The 36-byte WAL event layout (storage/wal.h), id excluded.
void PutEvent(std::string* out, const Event& e) {
  PutU64(out, static_cast<uint64_t>(e.timestamp));
  PutU64(out, e.subject);
  PutU64(out, e.object);
  PutU64(out, e.amount);
  PutU16(out, e.host);
  out->push_back(static_cast<char>(e.action));
  out->push_back(static_cast<char>(e.direction));
}

Event GetEvent(const unsigned char* p) {
  Event e;
  e.timestamp = static_cast<TimeMicros>(GetU64(p));
  e.subject = GetU64(p + 8);
  e.object = GetU64(p + 16);
  e.amount = GetU64(p + 24);
  e.host = GetU16(p + 32);
  e.action = static_cast<ActionType>(p[34]);
  e.direction = static_cast<FlowDirection>(p[35]);
  return e;
}

}  // namespace

std::string Base64Encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    const uint32_t n = (static_cast<unsigned char>(bytes[i]) << 16) |
                       (static_cast<unsigned char>(bytes[i + 1]) << 8) |
                       static_cast<unsigned char>(bytes[i + 2]);
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back(kB64Alphabet[(n >> 6) & 63]);
    out.push_back(kB64Alphabet[n & 63]);
  }
  const size_t rest = bytes.size() - i;
  if (rest == 1) {
    const uint32_t n = static_cast<unsigned char>(bytes[i]) << 16;
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out += "==";
  } else if (rest == 2) {
    const uint32_t n = (static_cast<unsigned char>(bytes[i]) << 16) |
                       (static_cast<unsigned char>(bytes[i + 1]) << 8);
    out.push_back(kB64Alphabet[(n >> 18) & 63]);
    out.push_back(kB64Alphabet[(n >> 12) & 63]);
    out.push_back(kB64Alphabet[(n >> 6) & 63]);
    out.push_back('=');
  }
  return out;
}

Result<std::string> Base64Decode(std::string_view text) {
  if (text.size() % 4 != 0) {
    return Status::InvalidArgument("base64 length not a multiple of 4");
  }
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (size_t i = 0; i < text.size(); i += 4) {
    int v[4];
    int pads = 0;
    for (int j = 0; j < 4; ++j) {
      const char c = text[i + j];
      if (c == '=') {
        // Padding is only legal in the last group's final positions.
        if (i + 4 != text.size() || j < 2) {
          return Status::InvalidArgument("base64 padding misplaced");
        }
        v[j] = 0;
        pads++;
      } else {
        if (pads > 0) {
          return Status::InvalidArgument("base64 data after padding");
        }
        v[j] = B64Value(c);
        if (v[j] < 0) {
          return Status::InvalidArgument("invalid base64 byte");
        }
      }
    }
    const uint32_t n = (static_cast<uint32_t>(v[0]) << 18) |
                       (static_cast<uint32_t>(v[1]) << 12) |
                       (static_cast<uint32_t>(v[2]) << 6) |
                       static_cast<uint32_t>(v[3]);
    out.push_back(static_cast<char>((n >> 16) & 0xff));
    if (pads < 2) out.push_back(static_cast<char>((n >> 8) & 0xff));
    if (pads < 1) out.push_back(static_cast<char>(n & 0xff));
  }
  return out;
}

std::string EncodeEvents(const std::vector<Event>& events) {
  std::string out;
  out.reserve(events.size() * kShardEventBytes);
  for (const Event& e : events) PutEvent(&out, e);
  return out;
}

Result<std::vector<Event>> DecodeEvents(std::string_view bytes) {
  if (bytes.size() % kShardEventBytes != 0) {
    return Status::InvalidArgument("event payload not a whole row count");
  }
  std::vector<Event> out;
  out.reserve(bytes.size() / kShardEventBytes);
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  for (size_t off = 0; off < bytes.size(); off += kShardEventBytes) {
    out.push_back(GetEvent(p + off));
  }
  return out;
}

std::string EncodeRows(const std::vector<Event>& rows) {
  std::string out;
  out.reserve(rows.size() * kShardRowBytes);
  for (const Event& e : rows) {
    PutU64(&out, e.id);
    PutEvent(&out, e);
  }
  return out;
}

Result<std::vector<Event>> DecodeRows(std::string_view bytes) {
  if (bytes.size() % kShardRowBytes != 0) {
    return Status::InvalidArgument("row payload not a whole row count");
  }
  std::vector<Event> out;
  out.reserve(bytes.size() / kShardRowBytes);
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  for (size_t off = 0; off < bytes.size(); off += kShardRowBytes) {
    Event e = GetEvent(p + off + 8);
    e.id = GetU64(p + off);
    out.push_back(e);
  }
  return out;
}

std::string EncodeU64s(const std::vector<uint64_t>& values) {
  std::string out;
  out.reserve(values.size() * 8);
  for (const uint64_t v : values) PutU64(&out, v);
  return out;
}

Result<std::vector<uint64_t>> DecodeU64s(std::string_view bytes) {
  if (bytes.size() % 8 != 0) {
    return Status::InvalidArgument("u64 payload not a whole count");
  }
  std::vector<uint64_t> out;
  out.reserve(bytes.size() / 8);
  const auto* p = reinterpret_cast<const unsigned char*>(bytes.data());
  for (size_t off = 0; off < bytes.size(); off += 8) {
    out.push_back(GetU64(p + off));
  }
  return out;
}

}  // namespace aptrace::dist
