#ifndef APTRACE_DIST_SHARD_SERVICE_H_
#define APTRACE_DIST_SHARD_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "storage/storage_backend.h"
#include "storage/wal.h"
#include "util/sync.h"

namespace aptrace::dist {

/// Protocol version string every shard.hello response advertises; the
/// client refuses to talk to anything else (DST-E004).
inline constexpr char kShardProto[] = "aptrace-shard v1";

/// The shard daemon's op handler: one raw StorageBackend (row or
/// columnar — no catalog, no sessions) behind the shard-RPC vocabulary
/// (docs/distribution.md). Plugs into service::Server as a LineHandler;
/// the transport's dialect sniff still serves /metrics and /healthz on
/// the same socket.
///
/// Requests are one JSON object per line with an `op`; responses always
/// carry `ok`, and failures add `code` (a DST-E00x) and `error`. Row
/// payloads are base64 packed binary (dist/shard_codec.h). Ops:
///
///   shard.hello    {}                      -> {proto, shard, backend,
///                                              events, tail_rows,
///                                              wal_seq, sealed}
///   shard.append   {rows, count, first_lid}-> {first_lid, appended}
///   shard.seal     {}                      -> {events}
///   shard.collect_dest {key, begin, end}   -> {rows, count, probed,
///   shard.collect_src  {key, begin, end}       seeked, pruned}
///   shard.collect_range {begin, end}       -> (same shape)
///   shard.has_incoming_write {key, begin, end} -> {found}
///   shard.flow_dests {key, begin, end}     -> {ids, count}
///   shard.fetch    {lids, count}           -> {rows, count}
///   shard.seal_tail {}                     -> {rows}
///   shard.compact  {}                      -> {units}
///   shard.evict    {horizon}               -> {rows}
///   shard.stats    {}                      -> backend StoreStats fields
///   shard.snapshot {}                      -> {shard, events, tail_rows,
///                                              sealed, min_time, max_time}
///   shard.shutdown {}                      -> {draining:true}
///
/// Error codes: DST-E003 malformed request/payload, DST-E006 remote
/// operation failed (e.g. a WAL append error), DST-E007 append local-id
/// mismatch (the coordinator's predicted lid disagrees with this shard's
/// next dense id — a routing or replay bug, never silently absorbed).
///
/// Thread-safety: the coordinator honors the storage read-after-build
/// contract (mutations never overlap queries), so reads run lock-free;
/// the mutating ops additionally serialize among themselves behind one
/// mutex as armor against a misbehaving client.
class ShardService {
 public:
  /// `backend` is owned; `wal` is optional (durable shardd) and borrowed
  /// — every accepted append batch is fsync'd to it before it is acked.
  ShardService(uint32_t shard, std::unique_ptr<StorageBackend> backend,
               WalWriter* wal = nullptr);

  /// Handles one request line (service::LineHandler shape).
  std::string HandleLine(const std::string& line, bool* shutdown_requested);

  const StorageBackend& backend() const { return *backend_; }
  StorageBackend* mutable_backend() { return backend_.get(); }
  uint32_t shard() const { return shard_; }

 private:
  const uint32_t shard_;
  std::unique_ptr<StorageBackend> backend_;
  WalWriter* wal_;
  /// Serializes mutating ops (append/seal/lifecycle) among themselves.
  Mutex mutate_mu_{"ShardService::mutate_mu_"};
};

}  // namespace aptrace::dist

#endif  // APTRACE_DIST_SHARD_SERVICE_H_
