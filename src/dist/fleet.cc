#include "dist/fleet.h"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/clock.h"
#include "util/env.h"
#include "util/string_util.h"

namespace aptrace::dist {

namespace {

/// Parses "shardd: ready shard=<n> tcp=127.0.0.1:<port>"; false when the
/// line is something else (a log line on a shared pipe, for instance).
bool ParseReadyLine(const std::string& line, uint32_t* shard, int* port) {
  const std::string_view marker = "shardd: ready shard=";
  const size_t at = line.find(marker);
  if (at == std::string::npos) return false;
  const char* p = line.c_str() + at + marker.size();
  char* end = nullptr;
  const long s = std::strtol(p, &end, 10);
  if (end == p || s < 0) return false;
  const std::string_view tcp_marker = " tcp=127.0.0.1:";
  const size_t tcp_at = line.find(tcp_marker, static_cast<size_t>(end - line.c_str()));
  if (tcp_at == std::string::npos) return false;
  const char* q = line.c_str() + tcp_at + tcp_marker.size();
  const long bound = std::strtol(q, &end, 10);
  if (end == q || bound < 1 || bound > 65535) return false;
  *shard = static_cast<uint32_t>(s);
  *port = static_cast<int>(bound);
  return true;
}

/// Reads the child's stdout pipe until a ready line, EOF, or timeout.
Status AwaitReady(int fd, uint64_t timeout_micros, uint32_t* shard,
                  int* port) {
  const int64_t deadline = MonotonicNowMicros() +
                           static_cast<int64_t>(timeout_micros);
  std::string buf;
  char chunk[512];
  for (;;) {
    // Scan complete lines already buffered.
    size_t start = 0;
    for (size_t nl = buf.find('\n'); nl != std::string::npos;
         nl = buf.find('\n', start)) {
      if (ParseReadyLine(buf.substr(start, nl - start), shard, port)) {
        return Status::Ok();
      }
      start = nl + 1;
    }
    buf.erase(0, start);

    const int64_t left = deadline - MonotonicNowMicros();
    if (left <= 0) {
      return Status::Internal("shardd did not report ready in time");
    }
    pollfd p{fd, POLLIN, 0};
    const int r = poll(&p, 1, static_cast<int>((left + 999) / 1000));
    if (r < 0 && errno == EINTR) continue;
    if (r <= 0) continue;
    const ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("reading shardd stdout: " +
                              ErrnoMessage(errno));
    }
    if (n == 0) {
      return Status::Internal("shardd exited before reporting ready");
    }
    buf.append(chunk, static_cast<size_t>(n));
  }
}

Status WritePidFile(const std::string& path, pid_t pid) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::Internal("cannot write pid file " + path + ": " +
                            ErrnoMessage(errno));
  }
  std::fprintf(f, "%d\n", static_cast<int>(pid));
  std::fclose(f);
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<ShardFleet>> ShardFleet::Launch(FleetOptions options) {
  if (options.shardd_bin.empty()) {
    return Status::InvalidArgument("FleetOptions::shardd_bin is required");
  }
  if (options.shards < 1 || options.shards > kMaxStoreShards) {
    return Status::InvalidArgument("fleet shard count out of [1, 64]");
  }
  auto fleet = std::unique_ptr<ShardFleet>(new ShardFleet(std::move(options)));
  const FleetOptions& opt = fleet->options_;

  for (uint32_t i = 0; i < opt.shards; ++i) {
    int pipe_fds[2];
    if (pipe(pipe_fds) != 0) {
      return Status::Internal("pipe: " + ErrnoMessage(errno));
    }

    std::vector<std::string> argv_store;
    argv_store.push_back(opt.shardd_bin);
    argv_store.push_back("--shard=" + std::to_string(i));
    argv_store.push_back(std::string("--backend=") +
                         StorageBackendName(opt.backend));
    argv_store.push_back("--port=0");
    if (!opt.data_dir.empty()) {
      argv_store.push_back("--data-dir=" + opt.data_dir + "/shard" +
                           std::to_string(i));
    }
    for (const std::string& a : opt.extra_args) argv_store.push_back(a);

    const pid_t pid = fork();
    if (pid < 0) {
      close(pipe_fds[0]);
      close(pipe_fds[1]);
      return Status::Internal("fork: " + ErrnoMessage(errno));
    }
    if (pid == 0) {
      // Child: ready line goes to the pipe; logs stay on stderr.
      dup2(pipe_fds[1], STDOUT_FILENO);
      close(pipe_fds[0]);
      close(pipe_fds[1]);
      std::vector<char*> argv;
      argv.reserve(argv_store.size() + 1);
      for (std::string& a : argv_store) argv.push_back(a.data());
      argv.push_back(nullptr);
      execv(argv[0], argv.data());
      std::fprintf(stderr, "fleet: exec %s: %s\n", argv[0],
                   std::strerror(errno));
      _exit(127);
    }

    close(pipe_fds[1]);
    ShardProcess proc;
    proc.shard = i;
    proc.pid = pid;
    proc.ready_fd = pipe_fds[0];
    fleet->shards_.push_back(proc);

    uint32_t reported = 0;
    int port = -1;
    if (Status s = AwaitReady(pipe_fds[0], opt.ready_timeout_micros,
                              &reported, &port);
        !s.ok()) {
      return Status::Internal("shard " + std::to_string(i) + " (" +
                              opt.shardd_bin + "): " + s.message());
    }
    if (reported != i) {
      return Status::Internal("shard daemon reported shard id " +
                              std::to_string(reported) + ", expected " +
                              std::to_string(i));
    }
    ShardProcess& live = fleet->shards_.back();
    live.port = port;
    live.endpoint = "127.0.0.1:" + std::to_string(port);
    if (!opt.pid_dir.empty()) {
      if (Status s = WritePidFile(opt.pid_dir + "/shard" +
                                      std::to_string(i) + ".pid",
                                  pid);
          !s.ok()) {
        return s;
      }
    }
  }
  return fleet;
}

ShardFleet::~ShardFleet() { Terminate(); }

std::string ShardFleet::EndpointsCsv() const {
  std::vector<std::string> eps;
  eps.reserve(shards_.size());
  for (const ShardProcess& p : shards_) eps.push_back(p.endpoint);
  return Join(eps, ",");
}

Status ShardFleet::Kill(size_t i, int sig) {
  if (i >= shards_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(i));
  }
  ShardProcess& p = shards_[i];
  if (p.pid <= 0 || p.killed) {
    return Status::InvalidArgument("shard " + std::to_string(i) +
                                   " is not running");
  }
  if (kill(p.pid, sig) != 0) {
    return Status::Internal("kill: " + ErrnoMessage(errno));
  }
  if (sig == SIGKILL || sig == SIGTERM) {
    waitpid(p.pid, nullptr, 0);
    p.killed = true;
  }
  return Status::Ok();
}

void ShardFleet::Terminate() {
  for (ShardProcess& p : shards_) {
    if (p.pid > 0 && !p.killed) kill(p.pid, SIGTERM);
  }
  // Short grace for the graceful drain, then force the stragglers.
  for (ShardProcess& p : shards_) {
    if (p.pid <= 0 || p.killed) continue;
    const int64_t deadline = MonotonicNowMicros() + 3'000'000;
    for (;;) {
      const pid_t r = waitpid(p.pid, nullptr, WNOHANG);
      if (r == p.pid || (r < 0 && errno == ECHILD)) break;
      if (MonotonicNowMicros() >= deadline) {
        kill(p.pid, SIGKILL);
        waitpid(p.pid, nullptr, 0);
        break;
      }
      usleep(20'000);
    }
    p.killed = true;
  }
  for (ShardProcess& p : shards_) {
    if (p.ready_fd >= 0) {
      close(p.ready_fd);
      p.ready_fd = -1;
    }
  }
}

}  // namespace aptrace::dist
