#ifndef APTRACE_DIST_SHARD_CODEC_H_
#define APTRACE_DIST_SHARD_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "event/event.h"
#include "util/status.h"

namespace aptrace::dist {

/// Binary-in-JSON payload codec for the shard-RPC vocabulary
/// (docs/distribution.md). Row batches cross the line-delimited JSON
/// transport as one base64 string per message instead of one JSON object
/// per row — a collect response carrying 10k rows is one allocation and
/// one decode pass, not 10k parser excursions.
///
/// Wire layouts (little-endian, fixed width):
///
///   event       36 bytes — identical to the WAL event codec
///               (storage/wal.h): i64 timestamp, u64 subject, u64 object,
///               u64 amount, u16 host, u8 action, u8 direction. EventIds
///               are never encoded; the decoder stamps the id the caller
///               supplies (append payloads let the shard assign dense
///               local ids; row payloads carry the id alongside).
///   row         44 bytes — u64 local id + the 36-byte event.
///   id list     8 bytes per u64.
///
/// Every decoder validates length divisibility and the declared count and
/// fails with a DST-E003-worthy message rather than reading garbage.

/// Bytes of one encoded event / one encoded (lid, event) row.
inline constexpr size_t kShardEventBytes = 36;
inline constexpr size_t kShardRowBytes = kShardEventBytes + 8;

/// Standard base64 (RFC 4648, with padding). Decode rejects any input
/// that is not a whole number of valid groups.
std::string Base64Encode(std::string_view bytes);
Result<std::string> Base64Decode(std::string_view text);

/// Events without ids (append payloads: the shard assigns dense lids).
std::string EncodeEvents(const std::vector<Event>& events);
Result<std::vector<Event>> DecodeEvents(std::string_view bytes);

/// (local id, event) rows (collect/fetch responses). Decoded events carry
/// their local id in Event::id.
std::string EncodeRows(const std::vector<Event>& rows);
Result<std::vector<Event>> DecodeRows(std::string_view bytes);

/// Packed u64 lists (lids in fetch requests, object ids in flow_dests
/// responses).
std::string EncodeU64s(const std::vector<uint64_t>& values);
Result<std::vector<uint64_t>> DecodeU64s(std::string_view bytes);

}  // namespace aptrace::dist

#endif  // APTRACE_DIST_SHARD_CODEC_H_
