#include "detect/detector.h"

#include "util/string_util.h"

namespace aptrace::detect {

void RareProcessChainDetector::OnEvent(const Event& e,
                                       const ObjectCatalog& catalog,
                                       bool training,
                                       std::vector<Alert>* out) {
  if (e.action != ActionType::kStart) return;
  const SystemObject& parent = catalog.Get(e.subject);
  const SystemObject& child = catalog.Get(e.object);
  if (!parent.is_process() || !child.is_process()) return;
  const auto pair = std::make_pair(ToLower(parent.process().exename),
                                   ToLower(child.process().exename));
  if (training) {
    seen_.insert(pair);
    return;
  }
  if (seen_.count(pair)) return;
  // One alert per novel pair, not one per occurrence.
  if (!alerted_.insert(pair).second) return;
  out->push_back({e.id, name(),
                  parent.process().exename + " started " +
                      child.process().exename +
                      ", a pairing never seen before",
                  0.8});
}

void ExfilVolumeDetector::OnEvent(const Event& e,
                                  const ObjectCatalog& catalog, bool training,
                                  std::vector<Alert>* out) {
  if (training) return;
  if (e.action != ActionType::kConnect && e.action != ActionType::kWrite) {
    return;
  }
  const SystemObject& obj = catalog.Get(e.object);
  if (!obj.is_ip()) return;
  if (e.amount < min_bytes_) return;
  const std::string& dst = obj.ip().dst_ip;
  for (const std::string& prefix : internal_prefixes_) {
    if (StartsWith(dst, prefix)) return;
  }
  const SystemObject& subject = catalog.Get(e.subject);
  out->push_back({e.id, name(),
                  subject.process().exename + " sent " +
                      std::to_string(e.amount) + " bytes to external " + dst,
                  0.9});
}

void DroppedExecutableDetector::OnEvent(const Event& e,
                                        const ObjectCatalog& catalog,
                                        bool training,
                                        std::vector<Alert>* out) {
  if (training) return;
  if (e.action != ActionType::kWrite) return;
  const SystemObject& obj = catalog.Get(e.object);
  if (!obj.is_file()) return;
  const std::string path = ToLower(obj.file().path);
  const bool executable = EndsWith(path, ".exe") || EndsWith(path, ".bin") ||
                          EndsWith(path, ".bat") || EndsWith(path, ".vbs");
  if (!executable) return;
  const bool user_writable = path.find("users") != std::string::npos ||
                             path.find("/home/") != std::string::npos ||
                             path.find("/tmp/") != std::string::npos ||
                             path.find("temp") != std::string::npos ||
                             path.find("downloads") != std::string::npos;
  if (!user_writable) return;
  const SystemObject& subject = catalog.Get(e.subject);
  out->push_back({e.id, name(),
                  subject.process().exename + " dropped executable " +
                      obj.file().path,
                  0.7});
}

void UnusualWriterDetector::OnEvent(const Event& e,
                                    const ObjectCatalog& catalog,
                                    bool training, std::vector<Alert>* out) {
  if (e.action != ActionType::kWrite) return;
  const SystemObject& obj = catalog.Get(e.object);
  if (!obj.is_file()) return;
  const SystemObject& subject = catalog.Get(e.subject);
  const std::string writer = ToLower(subject.process().exename);
  if (training) {
    writers_[e.object][writer]++;
    return;
  }
  auto it = writers_.find(e.object);
  // Only guard files with an established, exclusive writer: one process,
  // writing repeatedly, during the whole training window.
  if (it == writers_.end() || it->second.size() != 1) return;
  const auto& [owner, count] = *it->second.begin();
  if (count < min_training_writes_ || owner == writer) return;
  out->push_back({e.id, name(),
                  subject.process().exename + " wrote " + obj.file().path +
                      ", which only " + owner + " wrote before",
                  0.8});
}

DetectorPipeline DetectorPipeline::Standard() {
  DetectorPipeline pipeline;
  pipeline.Add(std::make_unique<RareProcessChainDetector>());
  pipeline.Add(std::make_unique<ExfilVolumeDetector>(
      std::vector<std::string>{"10.", "192.168.", "172.16."},
      /*min_bytes=*/1024 * 1024));
  pipeline.Add(std::make_unique<DroppedExecutableDetector>());
  pipeline.Add(std::make_unique<UnusualWriterDetector>());
  return pipeline;
}

std::vector<Alert> DetectorPipeline::Run(const EventStore& store,
                                         TimeMicros train_until) {
  std::vector<Alert> alerts;
  store.ScanRange(store.MinTime(), store.MaxTime() + 1, /*clock=*/nullptr,
                  [&](const Event& e) {
                    const bool training = e.timestamp < train_until;
                    for (auto& d : detectors_) {
                      d->OnEvent(e, store.catalog(), training, &alerts);
                    }
                  });
  return alerts;
}

}  // namespace aptrace::detect
