#ifndef APTRACE_DETECT_DETECTOR_H_
#define APTRACE_DETECT_DETECTOR_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "storage/event_store.h"

namespace aptrace::detect {

/// An anomaly alert — the input of backtracking analysis (paper Section
/// II). The paper's deployment receives these from backend anomaly
/// detectors; this module provides simple behavioural detectors so the
/// whole pipeline (collect -> detect -> backtrack) runs end to end.
struct Alert {
  EventId event = kInvalidEventId;
  std::string rule;     // name of the detector that fired
  std::string message;  // human-readable explanation
  double severity = 0.5;  // 0..1
};

/// A streaming behavioural detector. Events arrive in timestamp order;
/// events before the training horizon build the baseline and never alert.
class Detector {
 public:
  virtual ~Detector() = default;

  virtual const char* name() const = 0;

  /// Processes one event. `training` is true while the event is inside
  /// the baseline-learning window. Alerts are appended to `out`.
  virtual void OnEvent(const Event& e, const ObjectCatalog& catalog,
                       bool training, std::vector<Alert>* out) = 0;
};

/// Alerts when a (parent exename -> child exename) process-start pair was
/// never observed during training — e.g. the paper's A2 alert,
/// sqlservr.exe abnormally starting cmd.exe.
class RareProcessChainDetector : public Detector {
 public:
  const char* name() const override { return "rare-process-chain"; }
  void OnEvent(const Event& e, const ObjectCatalog& catalog, bool training,
               std::vector<Alert>* out) override;

 private:
  std::set<std::pair<std::string, std::string>> seen_;
  std::set<std::pair<std::string, std::string>> alerted_;
};

/// Alerts on outbound connections that move at least `min_bytes` to an
/// address outside the internal prefixes — the exfiltration alerts of
/// cases A1, A3, and A5.
class ExfilVolumeDetector : public Detector {
 public:
  ExfilVolumeDetector(std::vector<std::string> internal_prefixes,
                      uint64_t min_bytes)
      : internal_prefixes_(std::move(internal_prefixes)),
        min_bytes_(min_bytes) {}

  const char* name() const override { return "exfil-volume"; }
  void OnEvent(const Event& e, const ObjectCatalog& catalog, bool training,
               std::vector<Alert>* out) override;

 private:
  std::vector<std::string> internal_prefixes_;
  uint64_t min_bytes_;
};

/// Alerts when a process drops an executable-looking file into a
/// user-writable location (the malware-drop step of A1/A2).
class DroppedExecutableDetector : public Detector {
 public:
  const char* name() const override { return "dropped-executable"; }
  void OnEvent(const Event& e, const ObjectCatalog& catalog, bool training,
               std::vector<Alert>* out) override;
};

/// Alerts when a file with an *established exclusive writer* (a single
/// process wrote it at least `min_training_writes` times during training)
/// is written by a different process — the tampering alert of A4 (the
/// backdoor writing grades.db).
class UnusualWriterDetector : public Detector {
 public:
  explicit UnusualWriterDetector(int min_training_writes = 3)
      : min_training_writes_(min_training_writes) {}

  const char* name() const override { return "unusual-writer"; }
  void OnEvent(const Event& e, const ObjectCatalog& catalog, bool training,
               std::vector<Alert>* out) override;

 private:
  int min_training_writes_;
  // Object -> exename -> write count during training.
  std::map<ObjectId, std::map<std::string, int>> writers_;
};

/// Replays a sealed store through a set of detectors in timestamp order.
/// Events before `train_until` only build baselines.
class DetectorPipeline {
 public:
  DetectorPipeline() = default;

  void Add(std::unique_ptr<Detector> detector) {
    detectors_.push_back(std::move(detector));
  }

  /// The standard detector set used by the CLI and the tests.
  static DetectorPipeline Standard();

  std::vector<Alert> Run(const EventStore& store, TimeMicros train_until);

 private:
  std::vector<std::unique_ptr<Detector>> detectors_;
};

}  // namespace aptrace::detect

#endif  // APTRACE_DETECT_DETECTOR_H_
