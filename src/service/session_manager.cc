#include "service/session_manager.h"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <utility>

#include "core/query_profile.h"
#include "graph/json_writer.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace aptrace::service {

namespace {

struct ServiceMetrics {
  obs::Counter* sessions_opened;
  obs::Gauge* sessions_live;
  obs::Counter* admission_rejected;
  obs::Counter* quanta;
  obs::Counter* backpressure_stalls;
  obs::Counter* ingest_events;
  obs::Counter* ingest_rejected;
  obs::LatencyHistogram* first_update_latency;
  obs::Counter* slow_queries;
  obs::Counter* flight_dumps;
};

const ServiceMetrics& Sm() {
  static const ServiceMetrics m = {
      obs::Metrics().FindOrCreateCounter(obs::names::kServiceSessionsOpened),
      obs::Metrics().FindOrCreateGauge(obs::names::kServiceSessionsLive),
      obs::Metrics().FindOrCreateCounter(
          obs::names::kServiceAdmissionRejected),
      obs::Metrics().FindOrCreateCounter(obs::names::kServiceQuanta),
      obs::Metrics().FindOrCreateCounter(
          obs::names::kServiceBackpressureStalls),
      obs::Metrics().FindOrCreateCounter(obs::names::kServiceIngestEvents),
      obs::Metrics().FindOrCreateCounter(obs::names::kServiceIngestRejected),
      obs::Metrics().FindOrCreateHistogram(
          obs::names::kServiceFirstUpdateLatency),
      obs::Metrics().FindOrCreateCounter(obs::names::kServiceSlowQueries),
      obs::Metrics().FindOrCreateCounter(obs::names::kServiceFlightDumps),
  };
  return m;
}

}  // namespace

const char* SessionStateName(SessionState s) {
  switch (s) {
    case SessionState::kRunning:
      return "running";
    case SessionState::kDone:
      return "done";
    case SessionState::kCancelled:
      return "cancelled";
    case SessionState::kBudget:
      return "budget";
    case SessionState::kFailed:
      return "failed";
  }
  return "unknown";
}

/// One hosted session: the engine plus the scheduler's bookkeeping.
///
/// Locking: `exec_mu` serializes every touch of `clock`/`session` (the
/// scheduler's quantum vs connection-thread graph/checkpoint reads); all
/// remaining fields are guarded by SessionManager::mu_. exec_mu is always
/// taken before mu_ (RunQuantum's callbacks take mu_ while holding
/// exec_mu), never the other way around.
struct SessionManager::Managed {
  uint64_t id = 0;
  std::unique_ptr<SimClock> clock;
  std::unique_ptr<Session> session;
  Mutex exec_mu{"SessionManager::Managed::exec_mu"};

  SessionState state = SessionState::kRunning;
  std::string detail = "running";
  uint64_t weight = 1;
  uint64_t arrival = 0;
  uint64_t vtime = 0;  // consumed simulated micros / weight
  uint64_t window_budget = 0;
  DurationMicros sim_budget = 0;
  bool cancel_requested = false;
  bool quantum_active = false;
  bool stalled_on_buffer = false;  // set by should_stop, read post-quantum
  bool first_update_seen = false;
  TimeMicros opened_wall = 0;
  std::deque<ServiceBatch> buffer;
  uint64_t batch_seq = 0;

  /// Cumulative wall time of this session's quanta (observational).
  uint64_t wall_micros = 0;
  /// Once-per-session anomaly latches (slow query, first backpressure
  /// parking, failure) — each fires one log/dump, then stays set.
  bool slow_logged = false;
  bool stall_dumped = false;
  bool failure_dumped = false;
};

SessionManager::SessionManager(EventStore* store, ServiceLimits limits)
    : store_(store), limits_(limits) {
  const int threads =
      limits_.scan_threads == 0
          ? std::max(1,
                     static_cast<int>(std::thread::hardware_concurrency()))
          : std::clamp(limits_.scan_threads, 1, WorkerPool::kMaxThreads);
  pool_ = std::make_unique<WorkerPool>(threads, [] {
    obs::Tracer::Global().SetThreadName("scan-worker");
  });
  scheduler_ = std::thread([this] { SchedulerLoop(); });
}

SessionManager::~SessionManager() { StopAndJoin(); }

void SessionManager::StopAndJoin() {
  Stop();
  // The scheduler drains accepted ingest before exiting (see
  // SchedulerLoop), so after the join every acked batch is in the store.
  if (scheduler_.joinable()) scheduler_.join();
}

void SessionManager::EnableDurability(WalWriter* wal,
                                      uint64_t applied_through) {
  MutexLock wal_lock(&wal_mu_);
  MutexLock lock(&mu_);
  wal_ = wal;
  applied_through_ = applied_through;
  last_enqueued_seq_ = applied_through;
  stats_.wal_last_seq = applied_through;
  stats_.wal_applied_through = applied_through;
}

uint64_t SessionManager::AppliedThrough() const {
  MutexLock lock(&mu_);
  return applied_through_;
}

void SessionManager::Stop() {
  {
    MutexLock lock(&mu_);
    draining_ = true;
    stop_ = true;
  }
  sched_cv_.NotifyAll();
}

bool SessionManager::draining() const {
  MutexLock lock(&mu_);
  return draining_;
}

SessionManager::Managed* SessionManager::FindLocked(uint64_t id) {
  const auto it = sessions_.find(id);
  return it == sessions_.end() ? nullptr : it->second.get();
}

Result<uint64_t> SessionManager::Admit(std::unique_ptr<Managed> s) {
  MutexLock lock(&mu_);
  if (draining_) {
    return Status::FailedPrecondition("SRV-E008: server is draining");
  }
  if (stats_.live >= static_cast<uint64_t>(limits_.max_live_sessions)) {
    stats_.admission_rejected_total++;
    Sm().admission_rejected->Add();
    return Status::FailedPrecondition(
        "SRV-E002: session limit reached (" +
        std::to_string(limits_.max_live_sessions) + " live)");
  }
  s->id = next_id_++;
  s->arrival = arrival_seq_++;
  // A newcomer inherits the smallest virtual time among running sessions
  // instead of zero: it gets service promptly (ties break by arrival, so
  // it runs after the current leaders' next quanta) without being owed
  // the entire backlog of service the incumbents already consumed.
  uint64_t min_vtime = 0;
  bool any = false;
  for (const auto& [id, other] : sessions_) {
    (void)id;
    if (other->state != SessionState::kRunning) continue;
    min_vtime = any ? std::min(min_vtime, other->vtime) : other->vtime;
    any = true;
  }
  s->vtime = any ? min_vtime : 0;
  const uint64_t id = s->id;
  sessions_.emplace(id, std::move(s));
  stats_.opened_total++;
  stats_.live++;
  Sm().sessions_opened->Add();
  Sm().sessions_live->Set(static_cast<int64_t>(stats_.live));
  sched_cv_.NotifyAll();
  return id;
}

Result<uint64_t> SessionManager::Open(const std::string& bdl_text,
                                      const OpenOptions& opts) {
  APTRACE_SPAN("service/open");
  auto s = std::make_unique<Managed>();
  s->clock = std::make_unique<SimClock>();
  s->weight = std::max<uint64_t>(1, opts.weight);
  s->window_budget = opts.window_budget.value_or(limits_.window_budget);
  s->sim_budget = opts.sim_budget.value_or(limits_.sim_budget);
  s->opened_wall = MonotonicNowMicros();

  SessionOptions options;
  options.scan_threads = opts.scan_threads != 0
                             ? opts.scan_threads
                             : limits_.session_scan_threads;
  options.shared_scan_pool = pool_.get();
  s->session =
      std::make_unique<Session>(store_, s->clock.get(), options);

  std::optional<Event> start_override;
  if (opts.start_event.has_value()) {
    if (*opts.start_event >= store_->NumEvents()) {
      return Status::InvalidArgument("SRV-E004: start_event " +
                                     std::to_string(*opts.start_event) +
                                     " out of range");
    }
    start_override = store_->Get(*opts.start_event);
  }
  {
    // Start-point resolution scans the store; serialize against the
    // scheduler's between-quanta ingest appends.
    MutexLock store_lock(&store_mu_);
    if (auto st = s->session->Start(bdl_text, start_override); !st.ok()) {
      return Status::InvalidArgument("SRV-E004: " + st.message());
    }
  }
  return Admit(std::move(s));
}

Result<uint64_t> SessionManager::Resume(const std::string& path,
                                        const OpenOptions& opts) {
  APTRACE_SPAN("service/resume");
  auto s = std::make_unique<Managed>();
  s->clock = std::make_unique<SimClock>();
  s->weight = std::max<uint64_t>(1, opts.weight);
  s->window_budget = opts.window_budget.value_or(limits_.window_budget);
  s->sim_budget = opts.sim_budget.value_or(limits_.sim_budget);
  s->opened_wall = MonotonicNowMicros();

  SessionOptions options;
  options.scan_threads = opts.scan_threads != 0
                             ? opts.scan_threads
                             : limits_.session_scan_threads;
  options.shared_scan_pool = pool_.get();
  s->session =
      std::make_unique<Session>(store_, s->clock.get(), options);
  {
    MutexLock store_lock(&store_mu_);
    if (auto st = s->session->LoadCheckpoint(path); !st.ok()) {
      return Status::InvalidArgument("SRV-E009: " + st.message());
    }
  }
  return Admit(std::move(s));
}

Result<PollResult> SessionManager::Poll(uint64_t id, uint64_t cursor,
                                        size_t max_batches) {
  MutexLock lock(&mu_);
  Managed* s = FindLocked(id);
  if (s == nullptr) {
    return Status::NotFound("SRV-E003: unknown session " +
                            std::to_string(id));
  }
  // Batches below the cursor are acknowledged: drop them, which is what
  // unstalls a session the scheduler parked on a full buffer.
  const bool was_full = s->buffer.size() >= limits_.update_buffer_cap;
  while (!s->buffer.empty() && s->buffer.front().seq < cursor) {
    s->buffer.pop_front();
  }
  if (was_full && s->buffer.size() < limits_.update_buffer_cap) {
    sched_cv_.NotifyAll();
  }
  PollResult r;
  r.state = s->state;
  r.detail = s->detail;
  r.terminal = s->state != SessionState::kRunning;
  const size_t want = max_batches == 0 ? s->buffer.size() : max_batches;
  for (const ServiceBatch& b : s->buffer) {
    if (r.batches.size() >= want) break;
    r.batches.push_back(b);
  }
  r.next_cursor =
      r.batches.empty() ? cursor : r.batches.back().seq + 1;
  r.snapshot = s->session->Snapshot();
  return r;
}

Status SessionManager::Cancel(uint64_t id) {
  MutexLock lock(&mu_);
  Managed* s = FindLocked(id);
  if (s == nullptr) {
    return Status::NotFound("SRV-E003: unknown session " +
                            std::to_string(id));
  }
  if (s->state != SessionState::kRunning) return Status::Ok();  // no-op
  s->cancel_requested = true;
  if (!s->quantum_active) {
    // Not on the CPU: finalize here; otherwise the scheduler finalizes
    // when should_stop ends the in-flight quantum.
    s->state = SessionState::kCancelled;
    s->detail = "cancelled";
    stats_.cancelled++;
    stats_.live--;
    Sm().sessions_live->Set(static_cast<int64_t>(stats_.live));
    idle_cv_.NotifyAll();
  }
  sched_cv_.NotifyAll();
  return Status::Ok();
}

Result<std::string> SessionManager::GraphJson(uint64_t id) {
  Managed* s = nullptr;
  {
    MutexLock lock(&mu_);
    s = FindLocked(id);
    if (s == nullptr) {
      return Status::NotFound("SRV-E003: unknown session " +
                              std::to_string(id));
    }
  }
  // exec_mu waits out an in-flight quantum, so the graph is at a window
  // boundary; the catalog is immutable (ingest never adds objects).
  MutexLock exec_lock(&s->exec_mu);
  std::ostringstream os;
  WriteGraphJson(s->session->engine()->graph(), store_->catalog(), os);
  return os.str();
}

Result<SessionSnapshot> SessionManager::Snapshot(uint64_t id) {
  MutexLock lock(&mu_);
  Managed* s = FindLocked(id);
  if (s == nullptr) {
    return Status::NotFound("SRV-E003: unknown session " +
                            std::to_string(id));
  }
  return s->session->Snapshot();
}

Result<SessionProfile> SessionManager::Profile(uint64_t id) {
  Managed* s = nullptr;
  {
    MutexLock lock(&mu_);
    s = FindLocked(id);
    if (s == nullptr) {
      return Status::NotFound("SRV-E003: unknown session " +
                              std::to_string(id));
    }
  }
  // Like GraphJson: exec_mu waits out an in-flight quantum, so the
  // profile describes complete windows only.
  MutexLock exec_lock(&s->exec_mu);
  const QueryProfile* profile = s->session->profile();
  if (profile == nullptr) {
    return Status::FailedPrecondition(
        "SRV-E005: engine keeps no query profile");
  }
  SessionProfile out;
  out.profile_json = QueryProfileToJson(*profile);
  out.scan_cost_micros =
      static_cast<uint64_t>(s->session->executor()->scan_cost_total());
  out.sim_now = s->clock->NowMicros();
  out.work_units = s->session->stats().work_units;
  out.probe_unit = store_->backend().capabilities().probe_unit;
  return out;
}

std::vector<SessionRow> SessionManager::SessionRows() const {
  MutexLock lock(&mu_);
  std::vector<SessionRow> rows;
  rows.reserve(sessions_.size());
  for (const auto& [id, s] : sessions_) {
    SessionRow row;
    row.id = id;
    row.state = SessionStateName(s->state);
    row.detail = s->detail;
    row.weight = s->weight;
    row.vtime = s->vtime;
    row.wall_micros = s->wall_micros;
    row.buffered_updates = s->buffer.size();
    row.stalled = s->state == SessionState::kRunning &&
                  s->buffer.size() >= limits_.update_buffer_cap;
    // Snapshot() takes only the session's snapshot mutex — never the
    // engine — so this view cannot block on a running quantum.
    const SessionSnapshot snap = s->session->Snapshot();
    row.sim_micros = snap.sim_now;
    row.work_units = snap.work_units;
    row.graph_nodes = snap.graph_nodes;
    row.graph_edges = snap.graph_edges;
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<StoreShardRow> SessionManager::StoreShardRows() const {
  const ShardedStore::Snapshot snap = store_->ShardSnapshot();
  std::vector<StoreShardRow> rows;
  rows.reserve(snap.shards.size());
  for (const ShardedStore::ShardStatsRow& s : snap.shards) {
    StoreShardRow row;
    row.shard = s.shard;
    row.resident_rows = s.resident_rows;
    row.tail_rows = s.tail_rows;
    row.scans = s.stats.queries;
    row.rows_matched = s.stats.rows_matched;
    row.rows_filtered = s.stats.rows_filtered;
    row.partitions_probed = s.stats.partitions_probed;
    row.partitions_seeked = s.stats.partitions_seeked;
    row.segments_pruned = s.stats.segments_pruned;
    row.boundary_rows = s.boundary_rows;
    row.sim_cost_micros = static_cast<uint64_t>(s.stats.simulated_cost);
    rows.push_back(row);
  }
  return rows;
}

Status SessionManager::Checkpoint(uint64_t id, const std::string& path) {
  Managed* s = nullptr;
  {
    MutexLock lock(&mu_);
    s = FindLocked(id);
    if (s == nullptr) {
      return Status::NotFound("SRV-E003: unknown session " +
                              std::to_string(id));
    }
    if (s->state != SessionState::kRunning) {
      return Status::FailedPrecondition(
          std::string("SRV-E005: cannot checkpoint a ") +
          SessionStateName(s->state) + " session");
    }
  }
  // Daemon checkpoints carry a durable-ingest mark: the applied WAL
  // position and the store size it implies. Reading applied_through_
  // before NumEvents() keeps the pair conservative — ApplyIngest bumps
  // the store first and the seq after, so store_events here always
  // covers at least the batches wal_seq claims. Non-durable daemons
  // (no --data-dir) write the classic mark-free format.
  CheckpointDurableMark mark;
  bool durable = false;
  {
    MutexLock wal_lock(&wal_mu_);
    durable = wal_ != nullptr;
  }
  if (durable) {
    {
      MutexLock lock(&mu_);
      mark.wal_seq = applied_through_;
    }
    MutexLock store_lock(&store_mu_);
    mark.store_events = store_->NumEvents();
  }
  MutexLock exec_lock(&s->exec_mu);
  if (auto st = s->session->SaveCheckpoint(path, durable ? &mark : nullptr);
      !st.ok()) {
    return Status::Internal("SRV-E009: " + st.message());
  }
  return Status::Ok();
}

Status SessionManager::ValidateEvent(const Event& e) const {
  const ObjectCatalog& catalog = store_->catalog();
  if (e.subject >= catalog.size() || e.object >= catalog.size()) {
    return Status::InvalidArgument(
        "SRV-E007: event references an unknown object");
  }
  if (e.host != kInvalidHostId && e.host >= catalog.NumHosts()) {
    return Status::InvalidArgument(
        "SRV-E007: event references an unknown host");
  }
  if (static_cast<uint8_t>(e.action) > static_cast<uint8_t>(
                                           ActionType::kDelete) ||
      static_cast<uint8_t>(e.direction) > 1) {
    return Status::InvalidArgument(
        "SRV-E007: event has an invalid action or direction");
  }
  return Status::Ok();
}

Result<IngestAck> SessionManager::Ingest(std::vector<Event> events) {
  APTRACE_SPAN("service/ingest");
  // Validation reads only the immutable catalog — no lock needed. The
  // whole batch is rejected on the first invalid row so a partial batch
  // never lands.
  for (const Event& e : events) {
    if (auto st = ValidateEvent(e); !st.ok()) {
      MutexLock lock(&mu_);
      stats_.ingest_rejected_total += events.size();
      Sm().ingest_rejected->Add(events.size());
      return st;
    }
  }
  IngestAck ack;
  ack.accepted = events.size();
  if (events.empty()) return ack;

  // wal_mu_ serializes producers for the whole admit -> log -> enqueue
  // sequence, so WAL order equals queue order equals store apply order.
  // mu_ is taken twice underneath it instead of once across the fsync:
  // the log write must not stall polls or the scheduler.
  MutexLock wal_lock(&wal_mu_);
  {
    MutexLock lock(&mu_);
    if (draining_) {
      return Status::FailedPrecondition("SRV-E008: server is draining");
    }
    if (ingest_queue_.size() + events.size() > limits_.ingest_queue_cap) {
      stats_.ingest_rejected_total += events.size();
      Sm().ingest_rejected->Add(events.size());
      return Status::FailedPrecondition(
          "SRV-E007: ingest queue full (" +
          std::to_string(limits_.ingest_queue_cap) + " events)");
    }
  }
  if (wal_ != nullptr) {
    // Durability contract: the batch is on disk (written + fsync'd)
    // before anything is buffered or acked. On failure the writer has
    // already rolled the log back to the previous record boundary, so
    // nothing is enqueued and the store never diverges from the log.
    auto seq = wal_->AppendBatch(events);
    if (!seq.ok()) {
      MutexLock lock(&mu_);
      stats_.ingest_rejected_total += events.size();
      Sm().ingest_rejected->Add(events.size());
      return Status::Internal("SRV-E010: durable ingest failed: " +
                              seq.status().message());
    }
    ack.wal_seq = seq.value();
  }
  {
    MutexLock lock(&mu_);
    // Only the queue can have changed since the admission check —
    // shrunk, by ApplyIngest — because every producer holds wal_mu_.
    for (Event& e : events) ingest_queue_.push_back(std::move(e));
    stats_.ingest_queue_depth = ingest_queue_.size();
    if (ack.wal_seq != 0) {
      last_enqueued_seq_ = ack.wal_seq;
      stats_.wal_last_seq = ack.wal_seq;
    }
  }
  sched_cv_.NotifyAll();
  return ack;
}

ServiceStats SessionManager::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

bool SessionManager::WaitAllTerminal(uint64_t timeout_micros) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_micros);
  MutexLock lock(&mu_);
  while (stats_.live != 0) {
    // A deadline already in the past (timeout 0) polls exactly once.
    if (!idle_cv_.WaitUntil(lock, deadline)) break;
  }
  return stats_.live == 0;
}

SessionManager::Managed* SessionManager::PickNextLocked() {
  Managed* best = nullptr;
  for (const auto& [id, s] : sessions_) {
    (void)id;
    if (s->state != SessionState::kRunning) continue;
    if (s->buffer.size() >= limits_.update_buffer_cap &&
        !s->cancel_requested) {
      continue;  // backpressured: wait for a poll to drain the buffer
    }
    if (best == nullptr || s->vtime < best->vtime ||
        (s->vtime == best->vtime && s->arrival < best->arrival)) {
      best = s.get();
    }
  }
  return best;
}

void SessionManager::SchedulerLoop() {
  obs::Tracer::Global().SetThreadName("scheduler");
  for (;;) {
    bool apply_ingest = false;
    Managed* next = nullptr;
    {
      MutexLock lock(&mu_);
      for (;;) {
        if (!ingest_queue_.empty()) {
          // Drained even while stopping: accepted ingest must land.
          apply_ingest = true;
          break;
        }
        if (stop_) {
          idle_cv_.NotifyAll();
          return;
        }
        next = PickNextLocked();
        if (next != nullptr) break;
        idle_cv_.NotifyAll();
        sched_cv_.Wait(lock);
      }
      if (!apply_ingest) next->quantum_active = true;
    }
    if (apply_ingest) {
      // Between quanta the shared pool is idle (Run ends on a WaitIdle
      // barrier), so this is the externally synchronized moment the
      // post-seal Append contract requires.
      ApplyIngest();
      continue;
    }
    RunQuantum(next);
    {
      MutexLock lock(&mu_);
      next->quantum_active = false;
    }
    idle_cv_.NotifyAll();
  }
}

void SessionManager::RunQuantum(Managed* s) {
  APTRACE_SPAN("service/quantum");
  MutexLock exec_lock(&s->exec_mu);
  {
    MutexLock lock(&mu_);
    if (s->state != SessionState::kRunning) return;
    if (s->cancel_requested) {
      s->state = SessionState::kCancelled;
      s->detail = "cancelled";
      stats_.cancelled++;
      stats_.live--;
      Sm().sessions_live->Set(static_cast<int64_t>(stats_.live));
      return;
    }
    s->stalled_on_buffer = false;
  }

  const uint64_t start_work = s->session->stats().work_units;
  const TimeMicros start_sim = s->clock->NowMicros();
  const TimeMicros start_wall = MonotonicNowMicros();

  RunLimits limits;
  limits.should_stop = [this, s, start_work] {
    // Engine-side checks first (same thread as the engine, no locks):
    // the quantum bound and the service budgets.
    const RunStats& rs = s->session->stats();
    if (rs.work_units - start_work >= limits_.quantum_windows) return true;
    if (s->window_budget != 0 && rs.work_units >= s->window_budget) {
      return true;
    }
    if (s->sim_budget != 0 && s->clock->NowMicros() >= s->sim_budget) {
      return true;
    }
    MutexLock lock(&mu_);
    if (stop_ || s->cancel_requested) return true;
    if (s->buffer.size() >= limits_.update_buffer_cap) {
      s->stalled_on_buffer = true;
      return true;
    }
    return false;
  };
  limits.on_update = [this, s](const UpdateBatch& b) {
    MutexLock lock(&mu_);
    s->buffer.push_back(ServiceBatch{s->batch_seq++, b});
    if (!s->first_update_seen) {
      s->first_update_seen = true;
      Sm().first_update_latency->Observe(
          MicrosToSeconds(MonotonicNowMicros() - s->opened_wall));
    }
  };

  const auto reason = s->session->Step(limits);
  Sm().quanta->Add();

  const uint64_t end_work = s->session->stats().work_units;
  const TimeMicros end_sim = s->clock->NowMicros();
  const uint64_t wall_delta =
      static_cast<uint64_t>(MonotonicNowMicros() - start_wall);
  const bool window_budget_hit =
      s->window_budget != 0 && end_work >= s->window_budget;
  const bool sim_budget_hit =
      s->sim_budget != 0 && end_sim >= s->sim_budget;

  SessionState new_state = SessionState::kRunning;
  std::string detail = "running";
  bool cancelled = false;
  {
    MutexLock lock(&mu_);
    cancelled = s->cancel_requested;
  }
  if (!reason.ok()) {
    new_state = SessionState::kFailed;
    detail = reason.status().message();
  } else if (cancelled) {
    new_state = SessionState::kCancelled;
    detail = "cancelled";
  } else if (reason.value() == StopReason::kCompleted ||
             reason.value() == StopReason::kTimeBudget) {
    // Terminal exactly as `aptrace run` would be: finalize (prune to
    // matched paths) so the served graph is byte-identical to the CLI's.
    if (auto st = s->session->Finish(/*prune_to_matched_paths=*/true);
        !st.ok()) {
      new_state = SessionState::kFailed;
      detail = st.message();
    } else {
      new_state = SessionState::kDone;
      detail = StopReasonName(reason.value());
    }
  } else if (window_budget_hit) {
    new_state = SessionState::kBudget;
    detail = "window_budget_exhausted";
  } else if (sim_budget_hit) {
    new_state = SessionState::kBudget;
    detail = "sim_budget_exhausted";
  }

  bool slow = false;
  bool dump_stall = false;
  bool dump_failure = false;
  uint64_t slow_wall = 0;
  {
    MutexLock lock(&mu_);
    // Charge consumed virtual time (at least one tick so zero-cost quanta
    // cannot pin the schedule).
    const uint64_t consumed = static_cast<uint64_t>(
        std::max<DurationMicros>(1, end_sim - start_sim));
    s->vtime += std::max<uint64_t>(1, consumed / s->weight);
    stats_.quanta_total++;
    s->wall_micros += wall_delta;
    if (limits_.slow_query_micros != 0 && !s->slow_logged &&
        s->wall_micros >= limits_.slow_query_micros) {
      // Latched: one warning line, one counter tick, one dump — however
      // many more quanta this session runs.
      s->slow_logged = true;
      slow = true;
      slow_wall = s->wall_micros;
      stats_.slow_queries_total++;
    }
    if (s->stalled_on_buffer && new_state == SessionState::kRunning) {
      stats_.backpressure_stalls_total++;
      Sm().backpressure_stalls->Add();
      if (!s->stall_dumped) {
        s->stall_dumped = true;
        dump_stall = true;
      }
    }
    if (new_state != SessionState::kRunning) {
      s->state = new_state;
      s->detail = detail;
      stats_.live--;
      Sm().sessions_live->Set(static_cast<int64_t>(stats_.live));
      switch (new_state) {
        case SessionState::kDone:
          stats_.done++;
          break;
        case SessionState::kCancelled:
          stats_.cancelled++;
          break;
        case SessionState::kBudget:
          stats_.budget_exhausted++;
          break;
        case SessionState::kFailed:
          stats_.failed++;
          if (!s->failure_dumped) {
            s->failure_dumped = true;
            dump_failure = true;
          }
          break;
        case SessionState::kRunning:
          break;
      }
    }
  }
  // Anomaly reporting happens outside mu_ (log/dump I/O must not block
  // connection threads); exec_mu still pins the session.
  if (slow) {
    Sm().slow_queries->Add();
    APTRACE_LOG(Warning) << "slow_query session=" << s->id
                         << " wall_micros=" << slow_wall
                         << " sim_micros=" << end_sim
                         << " work_units=" << end_work
                         << " threshold_micros="
                         << limits_.slow_query_micros;
    DumpFlight(s->id, "slow-query");
  }
  if (dump_stall) DumpFlight(s->id, "backpressure");
  if (dump_failure) DumpFlight(s->id, "failure");
}

void SessionManager::DumpFlight(uint64_t id, const char* reason) {
  if (limits_.flight_dump_dir.empty()) return;
  const std::string path = limits_.flight_dump_dir + "/flight-" +
                           std::to_string(id) + "-" + reason + ".json";
  if (auto st = obs::Tracer::Global().WriteChromeTrace(path); !st.ok()) {
    APTRACE_LOG(Warning) << "service: flight dump to " << path
                         << " failed: " << st.message();
    return;
  }
  NoteFlightDump();
  APTRACE_LOG(Info) << "service: flight recorder dumped to " << path
                    << " (session=" << id << " reason=" << reason << ")";
}

void SessionManager::NoteFlightDump() {
  {
    MutexLock lock(&mu_);
    stats_.flight_dumps_total++;
  }
  Sm().flight_dumps->Add();
}

void SessionManager::ApplyIngest() {
  APTRACE_SPAN("service/apply_ingest");
  std::deque<Event> batch;
  uint64_t through = 0;
  {
    MutexLock lock(&mu_);
    batch.swap(ingest_queue_);
    stats_.ingest_queue_depth = 0;
    // The queue held exactly the batches in (applied_through_,
    // last_enqueued_seq_] — producers update the seq and enqueue in one
    // mu_ critical section — so applying the swap advances the durable
    // apply mark to last_enqueued_seq_.
    through = last_enqueued_seq_;
  }
  if (batch.empty()) return;
  {
    MutexLock store_lock(&store_mu_);
    for (Event& e : batch) store_->Append(std::move(e));
    MaintainStoreLocked();
  }
  {
    MutexLock lock(&mu_);
    stats_.ingested_total += batch.size();
    applied_through_ = through;
    stats_.wal_applied_through = through;
  }
  Sm().ingest_events->Add(batch.size());
  APTRACE_LOG(Debug) << "service: ingested " << batch.size() << " events";
}

void SessionManager::MaintainStoreLocked() {
  if (limits_.seal_tail_rows == 0 ||
      store_->TailRows() < limits_.seal_tail_rows) {
    return;
  }
  // Seal before evicting so rows already older than the horizon move
  // into sealed segments first (eviction only ever drops a sealed
  // prefix); compact last so it sees the post-eviction live region.
  const size_t sealed = store_->SealTail(pool_.get());
  size_t evicted = 0;
  if (limits_.retention_micros != 0) {
    evicted = store_->EvictBefore(store_->MaxTime() - limits_.retention_micros);
  }
  const size_t compacted = store_->CompactSegments(pool_.get());
  APTRACE_LOG(Debug) << "service: sealed " << sealed << " tail rows"
                     << " (evicted " << evicted << " rows, compacted "
                     << compacted << " segments)";
}

}  // namespace aptrace::service
