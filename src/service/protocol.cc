#include "service/protocol.h"

#include <string_view>
#include <utility>
#include <vector>

#include "obs/json_dict.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "obs/trace.h"
#include "service/json.h"
#include "util/string_util.h"

namespace aptrace::service {

namespace {

/// Splits the "SRV-E0xx: message" convention every SessionManager error
/// follows; anything else maps to the generic bad-request code.
std::pair<std::string, std::string> SplitCode(const std::string& message) {
  if (message.rfind("SRV-E", 0) == 0) {
    const size_t colon = message.find(':');
    if (colon != std::string::npos) {
      std::string rest = message.substr(colon + 1);
      if (!rest.empty() && rest.front() == ' ') rest.erase(0, 1);
      return {message.substr(0, colon), rest};
    }
  }
  return {"SRV-E001", message};
}

std::string ErrorResponse(const std::string& message) {
  const auto [code, text] = SplitCode(message);
  obs::JsonDict d;
  d.Add("ok", false);
  d.Add("code", code);
  d.Add("error", text);
  obs::Metrics()
      .FindOrCreateCounter(obs::names::kServiceRequestErrors)
      ->Add();
  return d.Str();
}

std::string ErrorResponse(const Status& st) {
  return ErrorResponse(st.message());
}

std::string OkResponse(obs::JsonDict d) {
  obs::JsonDict out;
  out.Add("ok", true);
  std::string body = d.Str();
  // Splice the payload members after "ok":true rather than nesting them,
  // keeping responses flat: {"ok":true,"session":1}.
  std::string head = out.Str();
  if (body == "{}") return head;
  head.pop_back();  // '}'
  head += ",";
  head += body.substr(1);
  return head;
}

obs::JsonDict SnapshotDict(const SessionSnapshot& snap) {
  obs::JsonDict d;
  d.Add("started", snap.started);
  d.Add("exhausted", snap.exhausted);
  d.Add("graph_nodes", static_cast<uint64_t>(snap.graph_nodes));
  d.Add("graph_edges", static_cast<uint64_t>(snap.graph_edges));
  d.Add("max_hop", static_cast<int64_t>(snap.max_hop));
  d.Add("update_batches", static_cast<uint64_t>(snap.update_batches));
  d.Add("work_units", snap.work_units);
  d.Add("events_added", snap.events_added);
  d.Add("events_filtered", snap.events_filtered);
  d.Add("objects_excluded", snap.objects_excluded);
  d.Add("run_start", static_cast<int64_t>(snap.run_start));
  d.Add("sim_now", static_cast<int64_t>(snap.sim_now));
  d.Add("scan_threads", static_cast<int64_t>(snap.scan_threads));
  d.Add("queue_size", static_cast<uint64_t>(snap.queue_size));
  d.Add("direction", bdl::TrackDirectionName(snap.direction));
  return d;
}

OpenOptions ParseOpenOptions(const JsonValue& req) {
  OpenOptions opts;
  opts.weight = req.GetUint("weight", 1);
  opts.scan_threads = static_cast<int>(req.GetInt("scan_threads", 0));
  if (const JsonValue* v = req.Find("window_budget");
      v != nullptr && v->IsNumber()) {
    opts.window_budget = req.GetUint("window_budget");
  }
  if (const JsonValue* v = req.Find("sim_budget");
      v != nullptr && v->IsNumber()) {
    opts.sim_budget = req.GetInt("sim_budget");
  }
  if (const JsonValue* v = req.Find("start_event");
      v != nullptr && v->IsNumber()) {
    opts.start_event = req.GetUint("start_event");
  }
  return opts;
}

/// Accepts an action as its canonical name ("read", "write", ...) or its
/// numeric value; nullopt on anything else.
std::optional<ActionType> ParseAction(const JsonValue& ev) {
  const JsonValue* v = ev.Find("action");
  if (v == nullptr) return std::nullopt;
  if (v->IsNumber() && v->is_int && v->int_v >= 0 && v->int_v <= 7) {
    return static_cast<ActionType>(v->int_v);
  }
  if (v->IsString()) {
    for (int a = 0; a <= 7; ++a) {
      if (v->str_v == ActionTypeName(static_cast<ActionType>(a))) {
        return static_cast<ActionType>(a);
      }
    }
  }
  return std::nullopt;
}

Result<Event> ParseEvent(const JsonValue& ev) {
  if (!ev.IsObject()) {
    return Status::InvalidArgument("SRV-E007: event must be an object");
  }
  Event e;
  const JsonValue* subject = ev.Find("subject");
  const JsonValue* object = ev.Find("object");
  const JsonValue* timestamp = ev.Find("timestamp");
  if (subject == nullptr || !subject->IsNumber() || object == nullptr ||
      !object->IsNumber() || timestamp == nullptr ||
      !timestamp->IsNumber()) {
    return Status::InvalidArgument(
        "SRV-E007: event needs numeric subject, object, timestamp");
  }
  e.subject = ev.GetUint("subject");
  e.object = ev.GetUint("object");
  e.timestamp = ev.GetInt("timestamp");
  e.amount = ev.GetUint("amount", 0);
  const auto action = ParseAction(ev);
  if (!action.has_value()) {
    return Status::InvalidArgument("SRV-E007: event has a bad action");
  }
  e.action = *action;
  if (const JsonValue* dir = ev.Find("direction"); dir != nullptr) {
    if (dir->IsString() && dir->str_v == "s2o") {
      e.direction = FlowDirection::kSubjectToObject;
    } else if (dir->IsString() && dir->str_v == "o2s") {
      e.direction = FlowDirection::kObjectToSubject;
    } else if (dir->IsNumber() && dir->is_int &&
               (dir->int_v == 0 || dir->int_v == 1)) {
      e.direction = static_cast<FlowDirection>(dir->int_v);
    } else {
      return Status::InvalidArgument("SRV-E007: event has a bad direction");
    }
  } else {
    e.direction = ActionDefaultDirection(e.action);
  }
  e.host = static_cast<HostId>(ev.GetUint("host", kInvalidHostId));
  return e;
}

}  // namespace

std::string ProtocolHandler::HandleLine(const std::string& line,
                                        bool* shutdown_requested) {
  obs::Metrics().FindOrCreateCounter(obs::names::kServiceRequests)->Add();
  if (shutdown_requested != nullptr) *shutdown_requested = false;

  auto parsed = ParseJson(line);
  if (!parsed.ok()) {
    return ErrorResponse("SRV-E001: " + parsed.status().message());
  }
  const JsonValue& req = parsed.value();
  if (!req.IsObject()) {
    return ErrorResponse("SRV-E001: request must be a JSON object");
  }
  const std::string op = req.GetString("op");

  if (op == "open" || op == "resume") {
    Result<uint64_t> id =
        op == "open"
            ? manager_->Open(req.GetString("bdl"), ParseOpenOptions(req))
            : manager_->Resume(req.GetString("path"), ParseOpenOptions(req));
    if (!id.ok()) return ErrorResponse(id.status());
    obs::JsonDict d;
    d.Add("session", id.value());
    return OkResponse(std::move(d));
  }

  if (op == "poll") {
    auto r = manager_->Poll(req.GetUint("session"), req.GetUint("cursor", 0),
                            static_cast<size_t>(req.GetUint("max", 0)));
    if (!r.ok()) return ErrorResponse(r.status());
    const PollResult& p = r.value();
    obs::JsonDict d;
    d.Add("state", SessionStateName(p.state));
    d.Add("detail", p.detail);
    d.Add("terminal", p.terminal);
    d.Add("next_cursor", p.next_cursor);
    std::string batches = "[";
    for (size_t i = 0; i < p.batches.size(); ++i) {
      const ServiceBatch& b = p.batches[i];
      obs::JsonDict bd;
      bd.Add("seq", b.seq);
      bd.Add("sim_time", static_cast<int64_t>(b.batch.sim_time));
      bd.Add("new_edges", static_cast<uint64_t>(b.batch.new_edges));
      bd.Add("new_nodes", static_cast<uint64_t>(b.batch.new_nodes));
      bd.Add("total_edges", static_cast<uint64_t>(b.batch.total_edges));
      bd.Add("total_nodes", static_cast<uint64_t>(b.batch.total_nodes));
      if (i != 0) batches += ",";
      batches += bd.Str();
    }
    batches += "]";
    d.AddRaw("batches", batches);
    d.AddRaw("snapshot", SnapshotDict(p.snapshot).Str());
    return OkResponse(std::move(d));
  }

  if (op == "cancel") {
    if (auto st = manager_->Cancel(req.GetUint("session")); !st.ok()) {
      return ErrorResponse(st);
    }
    return OkResponse({});
  }

  if (op == "graph") {
    auto g = manager_->GraphJson(req.GetUint("session"));
    if (!g.ok()) return ErrorResponse(g.status());
    obs::JsonDict d;
    d.Add("graph", g.value());  // escaped: the value is the exact bytes
    return OkResponse(std::move(d));
  }

  if (op == "checkpoint") {
    if (auto st = manager_->Checkpoint(req.GetUint("session"),
                                       req.GetString("path"));
        !st.ok()) {
      return ErrorResponse(st);
    }
    return OkResponse({});
  }

  if (op == "stats") {
    if (req.Find("session") != nullptr) {
      auto snap = manager_->Snapshot(req.GetUint("session"));
      if (!snap.ok()) return ErrorResponse(snap.status());
      obs::JsonDict d;
      d.AddRaw("snapshot", SnapshotDict(snap.value()).Str());
      return OkResponse(std::move(d));
    }
    const ServiceStats s = manager_->stats();
    obs::JsonDict d;
    d.Add("opened_total", s.opened_total);
    d.Add("live", s.live);
    d.Add("done", s.done);
    d.Add("cancelled", s.cancelled);
    d.Add("budget_exhausted", s.budget_exhausted);
    d.Add("failed", s.failed);
    d.Add("admission_rejected_total", s.admission_rejected_total);
    d.Add("quanta_total", s.quanta_total);
    d.Add("backpressure_stalls_total", s.backpressure_stalls_total);
    d.Add("ingested_total", s.ingested_total);
    d.Add("ingest_rejected_total", s.ingest_rejected_total);
    d.Add("ingest_queue_depth", s.ingest_queue_depth);
    d.Add("slow_queries_total", s.slow_queries_total);
    d.Add("flight_dumps_total", s.flight_dumps_total);
    d.Add("wal_last_seq", s.wal_last_seq);
    d.Add("wal_applied_through", s.wal_applied_through);
    d.Add("draining", manager_->draining());
    return OkResponse(std::move(d));
  }

  if (op == "profile") {
    auto p = manager_->Profile(req.GetUint("session"));
    if (!p.ok()) return ErrorResponse(p.status());
    const SessionProfile& sp = p.value();
    obs::JsonDict d;
    d.AddRaw("profile", sp.profile_json);
    d.Add("scan_cost_micros", sp.scan_cost_micros);
    d.Add("sim_now", static_cast<int64_t>(sp.sim_now));
    d.Add("work_units", sp.work_units);
    d.Add("probe_unit", sp.probe_unit);
    return OkResponse(std::move(d));
  }

  if (op == "flight-dump") {
    obs::Tracer& tracer = obs::Tracer::Global();
    obs::JsonDict d;
    if (const JsonValue* path = req.Find("path");
        path != nullptr && path->IsString()) {
      if (auto st = tracer.WriteChromeTrace(path->str_v); !st.ok()) {
        return ErrorResponse("SRV-E009: " + st.message());
      }
      d.Add("written", path->str_v);
    } else {
      d.Add("trace", tracer.ToChromeTraceJson());  // escaped string value
    }
    // Only successful dumps count, and in both ServiceStats and the
    // Prometheus counter, mirroring SessionManager::DumpFlight.
    manager_->NoteFlightDump();
    d.Add("records", static_cast<uint64_t>(tracer.RecordCount()));
    return OkResponse(std::move(d));
  }

  if (op == "ingest") {
    const JsonValue* events = req.Find("events");
    if (events == nullptr || !events->IsArray()) {
      return ErrorResponse("SRV-E007: ingest needs an events array");
    }
    std::vector<Event> batch;
    batch.reserve(events->items.size());
    for (const JsonValue& ev : events->items) {
      auto e = ParseEvent(ev);
      if (!e.ok()) return ErrorResponse(e.status());
      batch.push_back(std::move(e.value()));
    }
    auto accepted = manager_->Ingest(std::move(batch));
    if (!accepted.ok()) return ErrorResponse(accepted.status());
    obs::JsonDict d;
    d.Add("accepted", static_cast<uint64_t>(accepted.value().accepted));
    // Durable receipt: the batch is fsync'd in the WAL under this
    // sequence number. Absent when the daemon runs without --data-dir.
    if (accepted.value().wal_seq != 0) {
      d.Add("wal_seq", accepted.value().wal_seq);
    }
    return OkResponse(std::move(d));
  }

  if (op == "shutdown") {
    if (shutdown_requested != nullptr) *shutdown_requested = true;
    obs::JsonDict d;
    d.Add("draining", true);
    return OkResponse(std::move(d));
  }

  return ErrorResponse("SRV-E001: unknown op '" + op + "'");
}

}  // namespace aptrace::service
