#ifndef APTRACE_SERVICE_HTTP_H_
#define APTRACE_SERVICE_HTTP_H_

#include <string>

#include "service/session_manager.h"

namespace aptrace::service {

/// The daemon's scrape surface: a minimal HTTP/1.1 responder layered on
/// the same sockets as the JSON protocol. The Server sniffs the first
/// bytes of each connection — a "GET " prefix selects this dialect — and
/// answers exactly one request before closing (Connection: close), which
/// is all a Prometheus scraper or `curl` needs. Endpoints:
///
///   /metrics   Prometheus text exposition of the global registry.
///              Served through a drain — scraping must outlive sessions.
///   /healthz   Liveness: 200 "ok" whenever the process can answer.
///   /readyz    Readiness: 200 "ready", flipping to 503 "draining" the
///              moment the SessionManager starts draining.
///   /sessions  JSON array of per-session rows (state, vtime, consumed
///              sim micros, buffered updates; see SessionRow) — the feed
///              behind `aptrace_client top`.
///
/// Unknown paths get 404, non-GET methods 405, malformed request lines
/// 400. Every request bumps aptrace_service_http_requests_total.
struct HttpRequest {
  std::string method;
  std::string target;  // origin-form, e.g. "/metrics"
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Parses an HTTP/1.1 request line ("GET /metrics HTTP/1.1"); false on
/// anything malformed (wrong token count, bad version, relative target).
bool ParseHttpRequestLine(const std::string& line, HttpRequest* out);

/// Routes one scrape request. `manager` may be consulted for readiness
/// and session rows; the response is complete and self-contained. A null
/// manager (shard daemons) keeps /metrics and /healthz, makes /readyz
/// unconditional, and 404s /sessions.
HttpResponse HandleHttpRequest(const HttpRequest& request,
                               SessionManager* manager);

/// The canonical reason phrase for the statuses this responder emits.
const char* HttpStatusText(int status);

/// Serializes status line, headers (Content-Type, Content-Length,
/// Connection: close), and body into wire bytes.
std::string RenderHttpResponse(const HttpResponse& response);

}  // namespace aptrace::service

#endif  // APTRACE_SERVICE_HTTP_H_
