#ifndef APTRACE_SERVICE_SERVER_H_
#define APTRACE_SERVICE_SERVER_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "service/protocol.h"
#include "service/session_manager.h"
#include "util/status.h"
#include "util/sync.h"

namespace aptrace::service {

/// One request line in, one response line out (no trailing newline — the
/// transport owns framing). Set `*shutdown_requested` to drain the whole
/// daemon after the response is on the wire.
using LineHandler =
    std::function<std::string(const std::string& line,
                              bool* shutdown_requested)>;

struct ServerOptions {
  /// Unix-domain listener path; empty disables it. A stale socket file
  /// from a dead daemon is unlinked on bind.
  std::string unix_socket_path;

  /// Loopback TCP listener: -1 disables, 0 binds an ephemeral port
  /// (read back via port()), >0 binds that port.
  int tcp_port = -1;
};

/// The daemon's transport: line-delimited JSON over unix-domain and/or
/// loopback TCP sockets, one thread per connection, every line handled
/// by ProtocolHandler against the shared SessionManager.
///
/// Connections clean up after themselves: when ConnectionLoop returns
/// (client EOF, one-shot HTTP scrape, drain), the detached connection
/// thread closes its fd and drops it from the live set — the daemon
/// holds no resources for finished connections, so a scraper opening
/// one connection per request (Prometheus, `aptrace_client top`) never
/// accumulates fds or threads.
///
/// Shutdown is a graceful drain: RequestShutdown() (or a client's
/// `shutdown` op, whose response is sent first) stops the accept loops,
/// half-closes every connection's read side — each connection finishes
/// writing its in-flight response, then sees EOF and exits — stops the
/// SessionManager's scheduler at its quantum boundary, joins the accept
/// threads, and waits for the last connection to finish. No request is
/// abandoned mid-response and no session state is torn; paused sessions
/// remain checkpointable until the process exits.
///
/// The transport is protocol-agnostic: the session daemon wires it to
/// ProtocolHandler, while `aptrace_shardd` supplies its own LineHandler
/// for the shard-RPC vocabulary (src/dist/shard_service.h) — same
/// framing, same dialect sniff, same drain semantics either way.
class Server {
 public:
  Server(SessionManager* manager, ServerOptions options);

  /// Custom-protocol daemon: every line goes to `handler`; `manager` may
  /// be null, in which case the HTTP scrape surface serves /metrics and
  /// /healthz only (no sessions, readiness is liveness).
  Server(LineHandler handler, SessionManager* manager, ServerOptions options);

  /// Shutdown() if still running.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the configured listeners and starts the accept threads.
  Status Start();

  /// Blocks until a shutdown is requested (by op or RequestShutdown).
  void Wait();

  /// Initiates the graceful drain described above. Thread-safe and
  /// idempotent; callable from any thread (e.g. a signal-watcher).
  void RequestShutdown();

  /// Completes the drain: joins the accept threads, waits for every
  /// connection to finish its self-cleanup, and closes the listeners.
  /// Called by the destructor; safe to call directly.
  void Shutdown();

  /// Actual TCP port after Start() (ephemeral binds resolve here);
  /// -1 when the TCP listener is disabled.
  int port() const { return tcp_port_; }

 private:
  void AcceptLoop(int listen_fd);
  void ConnectionLoop(int fd);
  /// Answers one HTTP scrape request (see service/http.h) on a
  /// connection whose first bytes sniffed as "GET ", then returns;
  /// the caller closes. `pending` holds the bytes already received.
  void ServeHttp(int fd, std::string* pending);
  void TrackConnection(int fd);

  SessionManager* manager_;  // null for custom-handler daemons
  ServerOptions options_;
  /// Owns the session protocol when constructed with a manager; custom
  /// handlers live in handler_ directly.
  std::unique_ptr<ProtocolHandler> protocol_;
  LineHandler handler_;

  std::atomic<bool> stop_{false};
  Mutex mu_{"Server::mu_"};
  CondVar stop_cv_;
  CondVar conns_cv_;  // Shutdown waits for live_conns_ == 0
  /// Filled in Start() before the accept threads exist, drained in
  /// Shutdown() after they joined — never concurrently touched.
  std::vector<int> listen_fds_;
  std::vector<int> conn_fds_ APTRACE_GUARDED_BY(mu_);  // live connections
  /// Accept threads, joined in Shutdown.
  std::vector<std::thread> threads_ APTRACE_GUARDED_BY(mu_);
  size_t live_conns_ APTRACE_GUARDED_BY(mu_) = 0;
  int tcp_port_ = -1;
  bool started_ APTRACE_GUARDED_BY(mu_) = false;
  bool joined_ APTRACE_GUARDED_BY(mu_) = false;
};

}  // namespace aptrace::service

#endif  // APTRACE_SERVICE_SERVER_H_
