#ifndef APTRACE_SERVICE_SESSION_MANAGER_H_
#define APTRACE_SERVICE_SESSION_MANAGER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/session.h"
#include "storage/event_store.h"
#include "storage/wal.h"
#include "util/clock.h"
#include "util/status.h"
#include "util/sync.h"
#include "util/worker_pool.h"

namespace aptrace::service {

/// Admission-control and scheduling knobs of the daemon. Every rejection
/// they cause carries an SRV-E0xx code (docs/service.md lists them all).
struct ServiceLimits {
  /// Live (still running) sessions admitted at once; further `open`
  /// requests are rejected with SRV-E002.
  int max_live_sessions = 8;

  /// Windows one session may process per scheduling quantum before the
  /// scheduler re-picks the globally neediest session.
  uint64_t quantum_windows = 8;

  /// Default per-session budgets, overridable (downward only is NOT
  /// enforced — the daemon trusts its operator, not its clients) per
  /// `open` request. 0 = unlimited. A session that exhausts a budget
  /// terminates in state "budget" with detail naming the budget.
  uint64_t window_budget = 0;
  DurationMicros sim_budget = 0;

  /// Undelivered update batches buffered per session before the scheduler
  /// stops scheduling it (backpressure; it resumes as polls drain the
  /// buffer). Never rejects — it only stalls.
  size_t update_buffer_cap = 256;

  /// Pending live-ingest events buffered before `ingest` requests are
  /// rejected with SRV-E007.
  size_t ingest_queue_cap = 4096;

  /// Shared scan-worker pool width (0 = hardware concurrency). All
  /// sessions' prefetch pipelines multiplex onto this one pool.
  int scan_threads = 0;

  /// Default ctx.scan_threads for hosted sessions (overridable per open).
  /// Affects only the modeled-makespan accounting — results are
  /// bit-identical at any value.
  int session_scan_threads = 1;

  /// Cumulative wall micros a session may consume across its quanta
  /// before it is flagged slow: one structured `slow_query` warning line,
  /// one counter tick, one flight-recorder dump — exactly once per
  /// session. 0 disables. The APTRACE_SLOW_QUERY_MICROS default.
  uint64_t slow_query_micros = 0;

  /// Directory anomaly-triggered flight-recorder dumps are written into
  /// (`flight-<id>-<reason>.json`); empty disables auto-dumps. Anomalies:
  /// session failure, first backpressure parking, slow query — each dumps
  /// at most once per session.
  std::string flight_dump_dir;

  /// Hot-tail rows that trigger a background SealTail between quanta
  /// (columnar backend; a no-op on the row store). 0 disables sealing.
  size_t seal_tail_rows = 0;

  /// Retention window: after each seal, sealed rows older than
  /// MaxTime() - retention_micros are evicted from scans (logical
  /// archive tier). 0 disables eviction. By design this changes what
  /// queries over old time ranges return, so differential tests keep it
  /// off.
  DurationMicros retention_micros = 0;
};

/// Terminal and live states of a hosted session.
enum class SessionState : uint8_t {
  kRunning,    // schedulable (or stalled on backpressure)
  kDone,       // engine finished; graph finalized (pruned) and frozen
  kCancelled,  // client cancel; partial graph frozen
  kBudget,     // service budget exhausted; partial graph frozen
  kFailed,     // engine error; detail carries the message
};

const char* SessionStateName(SessionState s);

/// One update batch as streamed to clients, tagged with a per-session
/// monotonically increasing sequence number (the poll cursor).
struct ServiceBatch {
  uint64_t seq = 0;
  UpdateBatch batch;
};

/// What `poll` returns: the batches after the client's cursor plus a
/// consistent progress snapshot.
struct PollResult {
  SessionState state = SessionState::kRunning;
  std::string detail;
  bool terminal = false;
  uint64_t next_cursor = 0;
  std::vector<ServiceBatch> batches;
  SessionSnapshot snapshot;
};

/// Per-open overrides of the service defaults.
struct OpenOptions {
  uint64_t weight = 1;  // fair-share weight; higher = larger share
  int scan_threads = 0;  // 0 = ServiceLimits::session_scan_threads
  std::optional<uint64_t> window_budget;
  std::optional<DurationMicros> sim_budget;
  std::optional<EventId> start_event;  // explicit alert event
};

/// Aggregate service counters, snapshotted under one mutex (the
/// StoreStats pattern), so `stats` responses are never torn.
struct ServiceStats {
  uint64_t opened_total = 0;
  uint64_t live = 0;
  uint64_t done = 0;
  uint64_t cancelled = 0;
  uint64_t budget_exhausted = 0;
  uint64_t failed = 0;
  uint64_t admission_rejected_total = 0;
  uint64_t quanta_total = 0;
  uint64_t backpressure_stalls_total = 0;
  uint64_t ingested_total = 0;
  uint64_t ingest_rejected_total = 0;
  uint64_t ingest_queue_depth = 0;
  uint64_t slow_queries_total = 0;
  uint64_t flight_dumps_total = 0;
  /// Durable-ingest positions (0 until EnableDurability): highest WAL
  /// sequence acknowledged, and the highest one whose events have been
  /// applied to the store.
  uint64_t wal_last_seq = 0;
  uint64_t wal_applied_through = 0;
};

/// What a successful `ingest` acknowledges: the events buffered and —
/// when durability is on — the WAL sequence number their batch was
/// fsync'd under before this ack was produced.
struct IngestAck {
  size_t accepted = 0;
  uint64_t wal_seq = 0;  // 0 when the daemon runs without a WAL
};

/// One live-view row of the `/sessions` endpoint (and `aptrace_client
/// top`): scheduler bookkeeping under the manager mutex plus the
/// session's own tear-free snapshot, taken in the same pass.
struct SessionRow {
  uint64_t id = 0;
  std::string state;
  std::string detail;
  uint64_t weight = 1;
  uint64_t vtime = 0;            // consumed sim micros / weight
  TimeMicros sim_micros = 0;     // session clock (consumed sim micros)
  uint64_t wall_micros = 0;      // cumulative quantum wall time
  uint64_t work_units = 0;
  uint64_t graph_nodes = 0;
  uint64_t graph_edges = 0;
  uint64_t buffered_updates = 0; // undelivered update batches
  bool stalled = false;          // parked on a full update buffer
};

/// One /sessions row per store shard (docs/sharding.md): the shard's
/// resident rows plus its slice of the scatter-gather scan counters,
/// taken from one consistent ShardedStore snapshot (the slices sum
/// exactly to the store totals). A monolithic store renders a single
/// synthetic shard-0 row so scrapers see a uniform shape.
struct StoreShardRow {
  uint32_t shard = 0;
  uint64_t resident_rows = 0;
  uint64_t tail_rows = 0;
  uint64_t scans = 0;          // scatter-gather scans that touched the shard
  uint64_t rows_matched = 0;
  uint64_t rows_filtered = 0;
  uint64_t partitions_probed = 0;
  uint64_t partitions_seeked = 0;
  uint64_t segments_pruned = 0;
  uint64_t boundary_rows = 0;  // delivered cross-host rows
  uint64_t sim_cost_micros = 0;
};

/// What the `profile` op returns: the session's query profile document
/// plus independently accumulated figures tests reconcile it against
/// (core/query_profile.h explains the exact identities).
struct SessionProfile {
  std::string profile_json;      // QueryProfileToJson output
  uint64_t scan_cost_micros = 0; // ScanOverlapModel's independent total
  TimeMicros sim_now = 0;        // session clock (>= scan_cost_micros)
  uint64_t work_units = 0;
  std::string probe_unit;        // storage unit of partitions_probed
};

/// Owns every concurrently tracked session of the daemon and the one
/// scheduler thread that advances them (the tentpole of the service
/// layer; docs/service.md describes the model in full).
///
/// Fair-share scheduling: conceptually the scheduler pops the globally
/// highest-priority execution window across all live sessions. Windows
/// within a session are already totally ordered by its WindowQueue, so
/// the cross-session choice reduces to picking which session's
/// front-of-queue to run next; the scheduler picks the session with the
/// smallest consumed-simulated-cost / weight (stride scheduling over
/// virtual time, arrival order breaking ties) and runs it for one bounded
/// quantum of `quantum_windows` windows on the shared WorkerPool. A
/// session whose client stops polling stalls on its full update buffer
/// and cedes the whole machine to the others.
///
/// Determinism: each session owns a private SimClock and its engine state
/// never observes the interleaving (a quantum is just a should_stop-
/// bounded Session::Step), so a daemon-hosted session produces a graph
/// bit-identical to the same script run via `aptrace run` — at any
/// thread count, on either storage backend
/// (tests/service_differential_test.cc enforces this).
///
/// Live ingestion: Ingest() validates and buffers events; the scheduler
/// appends them to the sealed store between quanta, when the shared pool
/// is idle and no scan can race the append (the external synchronization
/// the post-seal Append contract requires). Running sessions' resolved
/// time ranges are fixed at open, so their results are unaffected;
/// sessions opened after an append see the new events.
///
/// Thread-safety: every public method may be called from any connection
/// thread. Lock order: a session's exec_mu (engine access) before the
/// manager mutex; the store mutex (ingest vs open resolution) is leaf.
class SessionManager {
 public:
  /// The store must be sealed and outlive the manager.
  SessionManager(EventStore* store, ServiceLimits limits);

  /// Stop() + joins the scheduler.
  ~SessionManager();

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Compiles and admits a new tracking session; returns its id.
  /// Failures: SRV-E002 (admission), SRV-E004 (compile/start), SRV-E008
  /// (draining).
  Result<uint64_t> Open(const std::string& bdl_text, const OpenOptions& opts);

  /// Re-admits a checkpointed session from `path` (same admission rules
  /// as Open; SRV-E009 on checkpoint I/O or parse failure).
  Result<uint64_t> Resume(const std::string& path, const OpenOptions& opts);

  /// Batches newer than `cursor` plus current state. SRV-E003 on an
  /// unknown id. Delivered batches are dropped from the buffer, which
  /// unstalls a backpressured session.
  Result<PollResult> Poll(uint64_t id, uint64_t cursor, size_t max_batches);

  /// Stops a running session at the next window boundary (SRV-E003
  /// unknown id; cancelling a terminal session is a no-op).
  Status Cancel(uint64_t id);

  /// Serializes the session's current dependency graph as canonical
  /// graph JSON (graph/json_writer.h) — the bytes `aptrace run` would
  /// write. Waits for an in-flight quantum to end. SRV-E003 unknown id.
  Result<std::string> GraphJson(uint64_t id);

  /// Consistent progress snapshot (never torn; see SessionSnapshot).
  Result<SessionSnapshot> Snapshot(uint64_t id);

  /// The session's per-hop / per-rule query profile ("EXPLAIN ANALYZE").
  /// Waits for an in-flight quantum to end, like GraphJson, so the
  /// profile is at a window boundary and internally consistent.
  /// SRV-E003 unknown id; SRV-E005 when the engine keeps no profile.
  Result<SessionProfile> Profile(uint64_t id);

  /// One row per session (live and terminal) for the /sessions endpoint;
  /// ordered by id. Safe from any thread, never blocks on a quantum.
  std::vector<SessionRow> SessionRows() const;

  /// One row per store shard for the /sessions endpoint, from a single
  /// consistent store snapshot. Safe from any thread (the store takes
  /// its own stats lock; no manager mutex involved).
  std::vector<StoreShardRow> StoreShardRows() const;

  /// Persists a paused session to `path` (core checkpoint format).
  /// SRV-E003 unknown id; SRV-E005 terminal session; SRV-E009 I/O error.
  Status Checkpoint(uint64_t id, const std::string& path);

  /// Validates and buffers live events for the scheduler to append
  /// between quanta. SRV-E007 on a full queue or invalid rows (the whole
  /// batch is rejected — no partial ingest), SRV-E008 when draining.
  /// With durability enabled the batch is appended to the WAL and
  /// fsync'd *before* this returns — the ack's wal_seq is the durable
  /// receipt — and a WAL failure rejects the batch with SRV-E010 without
  /// buffering anything (the writer rolls the log back to the last
  /// record boundary, so no torn record is left behind).
  Result<IngestAck> Ingest(std::vector<Event> events);

  /// Turns on the durable-ingest path: every accepted batch is appended
  /// to `wal` (non-owning; must outlive the manager) under wal_mu_, so
  /// WAL order equals apply order. `applied_through` is the recovery
  /// boundary: the highest WAL sequence already contained in the store
  /// (see storage/recovery.h). Call before serving — not concurrently
  /// with Ingest.
  void EnableDurability(WalWriter* wal, uint64_t applied_through);

  /// Highest WAL sequence whose events the scheduler has applied to the
  /// store — the `applied_through` a snapshot of the store should be
  /// stamped with.
  uint64_t AppliedThrough() const;

  ServiceStats stats() const;

  /// Records one successful flight-recorder dump in both ServiceStats
  /// and the Prometheus counter, so the `stats` op and /metrics agree.
  /// Called by the anomaly auto-dumps and by the protocol's
  /// client-requested `flight-dump` op after its write succeeds.
  void NoteFlightDump();

  /// Graceful drain: stop admitting (SRV-E008), finish the in-flight
  /// quantum, apply already-accepted ingest, stop the scheduler. Running
  /// sessions stay paused and resumable via Checkpoint. Idempotent.
  void Stop();

  /// Stop() plus a join of the scheduler thread: when this returns,
  /// every accepted ingest batch has been applied to the store, so the
  /// caller can safely snapshot it (SnapshotDataDir) with
  /// AppliedThrough(). Idempotent; the destructor uses it.
  void StopAndJoin();

  bool draining() const;

  /// Blocks until every admitted session reaches a terminal state or
  /// `timeout_micros` of wall time passes (0 = poll once). Test helper
  /// and drain aid; returns true when all sessions are terminal.
  bool WaitAllTerminal(uint64_t timeout_micros);

 private:
  struct Managed;

  void SchedulerLoop();
  /// Runs one quantum of `s`. Called with no locks held; takes exec_mu.
  void RunQuantum(Managed* s);
  /// Picks the runnable session with minimal (vtime, arrival); nullptr
  /// when none. Caller holds mu_.
  Managed* PickNextLocked() APTRACE_REQUIRES(mu_);
  /// Appends all buffered ingest events, then runs the tiered-storage
  /// maintenance pass. Called from the scheduler with no locks held,
  /// between quanta.
  void ApplyIngest();
  /// Background seal -> evict -> compact, per the seal_tail_rows /
  /// retention_micros limits. The shared pool is idle here (between
  /// quanta), so segment builds can fan out onto it.
  void MaintainStoreLocked() APTRACE_REQUIRES(store_mu_);
  Result<uint64_t> Admit(std::unique_ptr<Managed> s);
  /// Writes the flight recorder to flight_dump_dir (no-op when empty).
  /// Called with no locks held (takes mu_ for the counters).
  void DumpFlight(uint64_t id, const char* reason);
  /// Looks up a session id. Sessions are never erased, so the returned
  /// pointer stays valid for the manager's lifetime.
  Managed* FindLocked(uint64_t id) APTRACE_REQUIRES(mu_);
  Status ValidateEvent(const Event& e) const;

  EventStore* store_;
  const ServiceLimits limits_;
  std::unique_ptr<WorkerPool> pool_;

  /// Serializes ingest producers so WAL append order equals queue order
  /// (and therefore store apply order). Held across the admission check,
  /// the WAL append+fsync, and the enqueue. Ordered BEFORE mu_ — Ingest
  /// takes mu_ twice under it, releasing it around the fsync so polls
  /// and the scheduler never block on disk.
  Mutex wal_mu_{"SessionManager::wal_mu_"};
  WalWriter* wal_ APTRACE_GUARDED_BY(wal_mu_) = nullptr;

  mutable Mutex mu_{"SessionManager::mu_"};
  CondVar sched_cv_;  // wakes the scheduler
  CondVar idle_cv_;   // WaitAllTerminal / Stop waiters
  std::map<uint64_t, std::unique_ptr<Managed>> sessions_
      APTRACE_GUARDED_BY(mu_);
  std::deque<Event> ingest_queue_ APTRACE_GUARDED_BY(mu_);
  /// WAL sequence of the newest batch in ingest_queue_ (== the newest
  /// acked batch). The queue always holds exactly the batches in
  /// (applied_through_, last_enqueued_seq_].
  uint64_t last_enqueued_seq_ APTRACE_GUARDED_BY(mu_) = 0;
  uint64_t applied_through_ APTRACE_GUARDED_BY(mu_) = 0;
  uint64_t next_id_ APTRACE_GUARDED_BY(mu_) = 1;
  uint64_t arrival_seq_ APTRACE_GUARDED_BY(mu_) = 0;
  bool stop_ APTRACE_GUARDED_BY(mu_) = false;
  bool draining_ APTRACE_GUARDED_BY(mu_) = false;
  ServiceStats stats_ APTRACE_GUARDED_BY(mu_);

  /// Serializes store mutation (ingest apply) against store reads outside
  /// quanta (open-time context resolution). Leaf lock.
  Mutex store_mu_{"SessionManager::store_mu_"};

  std::thread scheduler_;
};

}  // namespace aptrace::service

#endif  // APTRACE_SERVICE_SESSION_MANAGER_H_
