#ifndef APTRACE_SERVICE_JSON_H_
#define APTRACE_SERVICE_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace aptrace::service {

/// Parsed JSON value — the read-side counterpart of obs::JsonDict, sized
/// for the daemon's line-delimited request protocol. Supports the full
/// JSON grammar (null/bool/number/string/array/object, string escapes
/// including \uXXXX) with a recursion-depth cap; numbers are kept as
/// double plus an exact-integer flag so event ids survive round trips.
/// Not a general JSON library: no comments, no trailing commas, objects
/// keep insertion order and duplicate keys resolve to the first.
struct JsonValue {
  enum class Kind : uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  double num_v = 0.0;
  /// Set when the number was written without '.', 'e', or a lost digit —
  /// int_v then holds the exact value.
  bool is_int = false;
  int64_t int_v = 0;
  std::string str_v;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject

  bool IsObject() const { return kind == Kind::kObject; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsNumber() const { return kind == Kind::kNumber; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

  /// Typed member getters with defaults; a present-but-wrong-typed member
  /// returns the default (callers that must distinguish use Find()).
  std::string GetString(std::string_view key, std::string def = "") const;
  int64_t GetInt(std::string_view key, int64_t def = 0) const;
  uint64_t GetUint(std::string_view key, uint64_t def = 0) const;
  bool GetBool(std::string_view key, bool def = false) const;
};

/// Parses one complete JSON document; trailing non-whitespace is an error.
Result<JsonValue> ParseJson(std::string_view text);

}  // namespace aptrace::service

#endif  // APTRACE_SERVICE_JSON_H_
