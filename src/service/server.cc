#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "obs/names.h"
#include "service/http.h"
#include "util/env.h"
#include "util/logging.h"

namespace aptrace::service {

namespace {

/// Writes all of `data`, riding out partial writes; MSG_NOSIGNAL so a
/// vanished client surfaces as EPIPE instead of killing the process.
bool SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

Server::Server(SessionManager* manager, ServerOptions options)
    : manager_(manager),
      options_(std::move(options)),
      protocol_(std::make_unique<ProtocolHandler>(manager)) {
  ProtocolHandler* protocol = protocol_.get();
  handler_ = [protocol](const std::string& line, bool* shutdown_requested) {
    return protocol->HandleLine(line, shutdown_requested);
  };
}

Server::Server(LineHandler handler, SessionManager* manager,
               ServerOptions options)
    : manager_(manager),
      options_(std::move(options)),
      handler_(std::move(handler)) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (!options_.unix_socket_path.empty()) {
    const int fd = socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal("socket: " + ErrnoMessage(errno));
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_socket_path.size() >= sizeof(addr.sun_path)) {
      close(fd);
      return Status::InvalidArgument("unix socket path too long: " +
                                     options_.unix_socket_path);
    }
    std::strncpy(addr.sun_path, options_.unix_socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    unlink(options_.unix_socket_path.c_str());  // stale socket from a crash
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        listen(fd, 64) < 0) {
      const std::string err = ErrnoMessage(errno);
      close(fd);
      return Status::Internal("bind/listen " + options_.unix_socket_path +
                              ": " + err);
    }
    listen_fds_.push_back(fd);
    APTRACE_LOG(Info) << "serverd: listening on unix socket "
                      << options_.unix_socket_path;
  }

  if (options_.tcp_port >= 0) {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::Internal("socket: " + ErrnoMessage(errno));
    }
    const int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
        listen(fd, 64) < 0) {
      const std::string err = ErrnoMessage(errno);
      close(fd);
      return Status::Internal("bind/listen tcp port " +
                              std::to_string(options_.tcp_port) + ": " + err);
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
      tcp_port_ = ntohs(bound.sin_port);
    }
    listen_fds_.push_back(fd);
    APTRACE_LOG(Info) << "serverd: listening on 127.0.0.1:" << tcp_port_;
  }

  if (listen_fds_.empty()) {
    return Status::InvalidArgument(
        "no listener configured (need a unix socket path or a TCP port)");
  }
  {
    MutexLock lock(&mu_);
    for (const int fd : listen_fds_) {
      threads_.emplace_back([this, fd] { AcceptLoop(fd); });
    }
    started_ = true;
  }
  return Status::Ok();
}

void Server::AcceptLoop(int listen_fd) {
  while (!stop_.load()) {
    pollfd p{listen_fd, POLLIN, 0};
    // Short poll timeout: the stop flag is the wakeup mechanism for a
    // drain initiated from another thread (signal watcher, shutdown op).
    const int r = poll(&p, 1, 200);
    if (r < 0 && errno != EINTR) break;
    if (r <= 0 || (p.revents & POLLIN) == 0) continue;
    const int fd = accept(listen_fd, nullptr, nullptr);
    if (fd < 0) continue;
    if (stop_.load()) {
      close(fd);
      break;
    }
    TrackConnection(fd);
  }
}

void Server::TrackConnection(int fd) {
  MutexLock lock(&mu_);
  if (stop_.load()) {
    close(fd);
    return;
  }
  conn_fds_.push_back(fd);
  ++live_conns_;
  // Detached: the connection cleans up after itself when its loop
  // returns (close fd, drop from conn_fds_, signal Shutdown's wait).
  // Keeping fds and threads around until Shutdown would leak one of
  // each per HTTP scrape under the one-request-per-connection model.
  std::thread([this, fd] { ConnectionLoop(fd); }).detach();
}

void Server::ConnectionLoop(int fd) {
  std::string pending;
  char buf[4096];
  bool open = true;
  bool sniffed = false;
  while (open) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error — includes our drain half-close
    pending.append(buf, static_cast<size_t>(n));
    // Dialect sniff on the first bytes: an HTTP scrape opens with
    // "GET " — serve one minimal HTTP/1.1 response and close. Everything
    // else stays on the line-delimited JSON protocol.
    if (!sniffed && pending.size() >= 4) {
      sniffed = true;
      if (pending.rfind("GET ", 0) == 0) {
        ServeHttp(fd, &pending);
        // Honor the advertised `Connection: close`: the epilogue below
        // closes the fd as soon as we break out.
        break;
      }
    }
    size_t nl = 0;
    while ((nl = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      // Latch the dialect on the first dispatched line: once any JSON
      // request was handled this is a JSON connection for good, even if
      // that first line was shorter than the 4-byte sniff window and a
      // later recv happens to start with "GET ".
      sniffed = true;
      bool shutdown_requested = false;
      const std::string response = handler_(line, &shutdown_requested);
      if (!SendAll(fd, response + "\n")) {
        open = false;
        break;
      }
      if (shutdown_requested) {
        // Response is on the wire; now drain the whole daemon.
        RequestShutdown();
        open = false;
        break;
      }
    }
  }
  // Self-cleanup: drop the fd from the live set, close it, and wake a
  // Shutdown() waiting for the last connection. The notify happens under
  // mu_ so this detached thread never touches the Server after
  // Shutdown()'s wait returns (it can only return once mu_ is released
  // here).
  {
    MutexLock lock(&mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
    close(fd);
    --live_conns_;
    conns_cv_.NotifyAll();
  }
}

void Server::ServeHttp(int fd, std::string* pending) {
  // One request per connection: finish reading the header block (the
  // headers themselves are ignored — the request line is the whole
  // contract), answer, and let the caller close. A client that never
  // terminates its headers is answered from whatever arrived before EOF.
  constexpr size_t kMaxHttpRequestBytes = 64 * 1024;
  char buf[4096];
  while (pending->find("\r\n\r\n") == std::string::npos &&
         pending->find("\n\n") == std::string::npos &&
         pending->size() <= kMaxHttpRequestBytes) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    pending->append(buf, static_cast<size_t>(n));
  }
  const size_t nl = pending->find('\n');
  std::string line =
      nl == std::string::npos ? *pending : pending->substr(0, nl);
  if (!line.empty() && line.back() == '\r') line.pop_back();
  HttpRequest request;
  HttpResponse response;
  if (ParseHttpRequestLine(line, &request)) {
    response = HandleHttpRequest(request, manager_);
  } else {
    obs::Metrics()
        .FindOrCreateCounter(obs::names::kServiceHttpRequests)
        ->Add();
    response.status = 400;
    response.body = "bad request\n";
  }
  SendAll(fd, RenderHttpResponse(response));
}

void Server::RequestShutdown() {
  bool expected = false;
  if (!stop_.compare_exchange_strong(expected, true)) return;
  // Quantum-boundary stop of the scheduler (custom-handler daemons have
  // no scheduler to stop).
  if (manager_ != nullptr) manager_->Stop();
  {
    MutexLock lock(&mu_);
    // Half-close read sides: blocked recv()s return 0, each connection
    // finishes its in-flight response and exits.
    for (const int fd : conn_fds_) shutdown(fd, SHUT_RD);
  }
  stop_cv_.NotifyAll();
}

void Server::Wait() {
  MutexLock lock(&mu_);
  while (!stop_.load()) stop_cv_.Wait(lock);
}

void Server::Shutdown() {
  RequestShutdown();
  std::vector<std::thread> threads;
  {
    MutexLock lock(&mu_);
    if (joined_) return;
    joined_ = true;
    threads.swap(threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  {
    // Connections saw their half-closed read side and are finishing
    // their in-flight responses; each closes its own fd on the way out.
    MutexLock lock(&mu_);
    while (live_conns_ != 0) conns_cv_.Wait(lock);
  }
  for (const int fd : listen_fds_) close(fd);
  listen_fds_.clear();
  if (!options_.unix_socket_path.empty()) {
    unlink(options_.unix_socket_path.c_str());
  }
}

}  // namespace aptrace::service
