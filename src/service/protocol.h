#ifndef APTRACE_SERVICE_PROTOCOL_H_
#define APTRACE_SERVICE_PROTOCOL_H_

#include <string>

#include "service/session_manager.h"

namespace aptrace::service {

/// The daemon's wire protocol: one JSON object per line in each
/// direction (LF-terminated, no framing beyond the newline).
///
/// Requests carry an `op` plus op-specific fields; responses always
/// carry `ok`, and failures add `code` (an SRV-E0xx from the table in
/// docs/service.md) and `error`. Ops:
///
///   open        {bdl, weight?, scan_threads?, window_budget?,
///                sim_budget?, start_event?}          -> {session}
///   resume      {path, weight?, scan_threads?}       -> {session}
///   poll        {session, cursor?, max?}             -> {state, detail,
///                terminal, next_cursor, batches[], snapshot}
///   cancel      {session}                            -> {}
///   graph       {session}                            -> {graph}  (the
///                canonical graph JSON, escaped into one string — the
///                exact bytes `aptrace run` writes)
///   checkpoint  {session, path}                      -> {}
///   stats       {session?}  -> per-session snapshot, or service totals
///   ingest      {events: [{subject, object, timestamp, amount?,
///                action, direction?, host?}]}        -> {accepted}
///   profile     {session}  -> {profile, scan_cost_micros, sim_now,
///                work_units, probe_unit}  (per-hop / per-rule query
///                profile; see core/query_profile.h)
///   flight-dump {path?}    -> {written, records} when `path` is given
///                (the flight recorder as a Chrome trace file), else
///                {trace, records} with the JSON inline
///   shutdown    {}                                   -> {draining:true}
///
/// Error codes: SRV-E001 malformed request/unknown op, SRV-E002
/// admission, SRV-E003 unknown session, SRV-E004 compile/start failure,
/// SRV-E005 wrong-state operation, SRV-E007 ingest rejected, SRV-E008
/// draining, SRV-E009 checkpoint/flight-dump I/O. Codes are grep-able in
/// responses and logs the same way the CLI's `error[CLI-E00x]`
/// diagnostics are.
///
/// The same listener also answers plain HTTP GETs (/metrics, /healthz,
/// /readyz, /sessions) — see service/http.h; the Server sniffs the
/// dialect per connection.
class ProtocolHandler {
 public:
  explicit ProtocolHandler(SessionManager* manager) : manager_(manager) {}

  /// Handles one request line; returns the response line (no trailing
  /// newline — the transport owns framing). Sets `*shutdown_requested`
  /// when the line was a `shutdown` op the caller must act on; the
  /// handler itself never stops the manager.
  std::string HandleLine(const std::string& line, bool* shutdown_requested);

 private:
  SessionManager* manager_;
};

}  // namespace aptrace::service

#endif  // APTRACE_SERVICE_PROTOCOL_H_
