#include "service/http.h"

#include "obs/json_dict.h"
#include "obs/metrics.h"
#include "obs/names.h"

namespace aptrace::service {

namespace {

HttpResponse TextResponse(int status, const char* body) {
  HttpResponse r;
  r.status = status;
  r.body = body;
  return r;
}

std::string SessionsJson(SessionManager* manager) {
  std::string rows = "[";
  bool first = true;
  for (const SessionRow& row : manager->SessionRows()) {
    if (!first) rows += ",";
    first = false;
    obs::JsonDict d;
    d.Add("id", row.id);
    d.Add("state", row.state);
    d.Add("detail", row.detail);
    d.Add("weight", row.weight);
    d.Add("vtime", row.vtime);
    d.Add("sim_micros", static_cast<int64_t>(row.sim_micros));
    d.Add("wall_micros", row.wall_micros);
    d.Add("work_units", row.work_units);
    d.Add("graph_nodes", row.graph_nodes);
    d.Add("graph_edges", row.graph_edges);
    d.Add("buffered_updates", row.buffered_updates);
    d.Add("stalled", row.stalled);
    rows += d.Str();
  }
  rows += "]";
  // Per-shard store rows (docs/sharding.md): one consistent snapshot, so
  // the shard counters sum exactly to the store totals scraped at
  // /metrics. A monolithic store renders a single shard-0 row.
  std::string shards = "[";
  first = true;
  for (const StoreShardRow& row : manager->StoreShardRows()) {
    if (!first) shards += ",";
    first = false;
    obs::JsonDict d;
    d.Add("shard", static_cast<uint64_t>(row.shard));
    d.Add("resident_rows", row.resident_rows);
    d.Add("tail_rows", row.tail_rows);
    d.Add("scans", row.scans);
    d.Add("rows_matched", row.rows_matched);
    d.Add("rows_filtered", row.rows_filtered);
    d.Add("partitions_probed", row.partitions_probed);
    d.Add("partitions_seeked", row.partitions_seeked);
    d.Add("segments_pruned", row.segments_pruned);
    d.Add("boundary_rows", row.boundary_rows);
    d.Add("sim_cost_micros", row.sim_cost_micros);
    shards += d.Str();
  }
  shards += "]";
  obs::JsonDict top;
  top.Add("draining", manager->draining());
  top.AddRaw("sessions", rows);
  top.AddRaw("store_shards", shards);
  return top.Str();
}

}  // namespace

bool ParseHttpRequestLine(const std::string& line, HttpRequest* out) {
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos || sp1 == 0) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos || sp2 == sp1 + 1) return false;
  const std::string version = line.substr(sp2 + 1);
  if (version.rfind("HTTP/", 0) != 0) return false;
  out->method = line.substr(0, sp1);
  out->target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Origin-form only: a proxy-style absolute target is not served here.
  return !out->target.empty() && out->target.front() == '/';
}

HttpResponse HandleHttpRequest(const HttpRequest& request,
                               SessionManager* manager) {
  obs::Metrics()
      .FindOrCreateCounter(obs::names::kServiceHttpRequests)
      ->Add();
  if (request.method != "GET") {
    return TextResponse(405, "method not allowed\n");
  }
  // Strip a query string: scrapers append ?format= style noise freely.
  std::string path = request.target;
  if (const size_t q = path.find('?'); q != std::string::npos) {
    path.resize(q);
  }
  if (path == "/metrics") {
    // Deliberately served during a drain: the last scrape of a stopping
    // daemon is often the most interesting one.
    HttpResponse r;
    r.body = obs::Metrics().ExportPrometheus();
    return r;
  }
  if (path == "/healthz") {
    return TextResponse(200, "ok\n");
  }
  if (path == "/readyz") {
    // Manager-less daemons (aptrace_shardd) have no drain phase distinct
    // from liveness: ready whenever they can answer.
    const bool draining = manager != nullptr && manager->draining();
    return draining ? TextResponse(503, "draining\n")
                    : TextResponse(200, "ready\n");
  }
  if (path == "/sessions" && manager != nullptr) {
    HttpResponse r;
    r.content_type = "application/json";
    r.body = SessionsJson(manager);
    return r;
  }
  return TextResponse(404, "not found\n");
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

std::string RenderHttpResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    HttpStatusText(response.status) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

}  // namespace aptrace::service
