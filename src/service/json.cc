#include "service/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace aptrace::service {

namespace {

/// Hand-rolled recursive-descent parser. Protocol lines are small (the
/// largest is an ingest batch), so simplicity beats speed here; the depth
/// cap keeps a hostile deeply-nested line from smashing the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    if (auto st = ParseValue(&v, 0); !st.ok()) return st;
    SkipWs();
    if (pos_ != s_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("json: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      pos_++;
    }
  }

  bool Consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view w) {
    if (s_.substr(pos_, w.size()) == w) {
      pos_ += w.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWs();
    if (pos_ >= s_.size()) return Error("unexpected end of input");
    switch (s_[pos_]) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return ParseString(&out->str_v);
      case 't':
        if (!ConsumeWord("true")) return Error("bad literal");
        out->kind = JsonValue::Kind::kBool;
        out->bool_v = true;
        return Status::Ok();
      case 'f':
        if (!ConsumeWord("false")) return Error("bad literal");
        out->kind = JsonValue::Kind::kBool;
        out->bool_v = false;
        return Status::Ok();
      case 'n':
        if (!ConsumeWord("null")) return Error("bad literal");
        out->kind = JsonValue::Kind::kNull;
        return Status::Ok();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    pos_++;  // '{'
    out->kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWs();
      if (pos_ >= s_.size() || s_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      if (auto st = ParseString(&key); !st.ok()) return st;
      SkipWs();
      if (!Consume(':')) return Error("expected ':'");
      JsonValue member;
      if (auto st = ParseValue(&member, depth + 1); !st.ok()) return st;
      out->members.emplace_back(std::move(key), std::move(member));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}'");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    pos_++;  // '['
    out->kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      JsonValue item;
      if (auto st = ParseValue(&item, depth + 1); !st.ok()) return st;
      out->items.push_back(std::move(item));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']'");
    }
  }

  Status ParseString(std::string* out) {
    pos_++;  // '"'
    out->clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') {
        pos_++;
        return Status::Ok();
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        pos_++;
        continue;
      }
      pos_++;
      if (pos_ >= s_.size()) return Error("truncated escape");
      const char e = s_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out->push_back(e);
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          if (auto st = ParseHex4(&code); !st.ok()) return st;
          // Surrogate pairs: combine when a high surrogate is followed
          // by an escaped low one; lone surrogates encode as U+FFFD.
          if (code >= 0xD800 && code <= 0xDBFF &&
              s_.substr(pos_, 2) == "\\u") {
            const size_t save = pos_;
            pos_ += 2;
            unsigned low = 0;
            if (auto st = ParseHex4(&low); !st.ok()) return st;
            if (low >= 0xDC00 && low <= 0xDFFF) {
              code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
            } else {
              pos_ = save;
              code = 0xFFFD;
            }
          } else if (code >= 0xD800 && code <= 0xDFFF) {
            code = 0xFFFD;
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return Error("bad escape character");
      }
    }
    return Error("unterminated string");
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > s_.size()) return Error("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = s_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("bad hex digit in \\u escape");
      }
    }
    *out = v;
    return Status::Ok();
  }

  static void AppendUtf8(std::string* out, unsigned code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    Consume('-');
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      pos_++;
    }
    bool integral = pos_ > start && s_[pos_ - 1] != '-';
    if (!integral) return Error("bad number");
    if (Consume('.')) {
      integral = false;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        pos_++;
      }
    }
    if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
      integral = false;
      pos_++;
      if (pos_ < s_.size() && (s_[pos_] == '+' || s_[pos_] == '-')) pos_++;
      while (pos_ < s_.size() &&
             std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
        pos_++;
      }
    }
    const std::string text(s_.substr(start, pos_ - start));
    out->kind = JsonValue::Kind::kNumber;
    out->num_v = std::strtod(text.c_str(), nullptr);
    if (integral) {
      errno = 0;
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno == 0 && end != nullptr && *end == '\0') {
        out->is_int = true;
        out->int_v = v;
      }
    }
    return Status::Ok();
  }

  std::string_view s_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : members) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::string JsonValue::GetString(std::string_view key, std::string def) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->IsString()) return def;
  return v->str_v;
}

int64_t JsonValue::GetInt(std::string_view key, int64_t def) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->IsNumber()) return def;
  if (v->is_int) return v->int_v;
  return static_cast<int64_t>(v->num_v);
}

uint64_t JsonValue::GetUint(std::string_view key, uint64_t def) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || !v->IsNumber()) return def;
  if (v->is_int && v->int_v >= 0) return static_cast<uint64_t>(v->int_v);
  if (!v->is_int && v->num_v >= 0) return static_cast<uint64_t>(v->num_v);
  return def;
}

bool JsonValue::GetBool(std::string_view key, bool def) const {
  const JsonValue* v = Find(key);
  if (v == nullptr || v->kind != Kind::kBool) return def;
  return v->bool_v;
}

Result<JsonValue> ParseJson(std::string_view text) {
  return Parser(text).Parse();
}

}  // namespace aptrace::service
