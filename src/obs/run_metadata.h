#ifndef APTRACE_OBS_RUN_METADATA_H_
#define APTRACE_OBS_RUN_METADATA_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/status.h"

namespace aptrace::obs {

/// Descriptive facts about one benchmark / CLI run, written as a small
/// JSON document next to the result files so a run's numbers stay
/// reproducible: what ran, against what store, for how long, with a full
/// metrics snapshot inline.
struct RunMetadata {
  std::string name;        // e.g. "bench_fig4"
  std::string invocation;  // the argv the run was started with
  uint64_t store_events = 0;
  uint64_t store_objects = 0;
  double wall_seconds = 0;
  /// Free-form extras ("cases", "threads", ...), emitted as strings.
  std::vector<std::pair<std::string, std::string>> extra;
};

/// The metadata document, including a `metrics` snapshot of `registry`.
std::string RunMetadataJson(const RunMetadata& meta,
                            const MetricsRegistry& registry);

/// Writes RunMetadataJson to `path` ("-" = stdout).
Status WriteRunMetadata(const RunMetadata& meta,
                        const MetricsRegistry& registry,
                        const std::string& path);

}  // namespace aptrace::obs

#endif  // APTRACE_OBS_RUN_METADATA_H_
