#ifndef APTRACE_OBS_TRACE_H_
#define APTRACE_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/clock.h"
#include "util/sync.h"
#include "util/status.h"

namespace aptrace::obs {

/// One completed span (or counter sample) in a per-thread ring buffer.
/// `name` must be a string with static storage duration — the APTRACE_SPAN
/// macro passes literals, so recording never copies or allocates.
struct TraceRecord {
  const char* name = nullptr;
  TimeMicros ts = 0;      // MonotonicNowMicros at span begin
  TimeMicros dur = 0;     // span length; unused for counter samples
  int64_t value = 0;      // counter samples only
  bool is_counter = false;
};

/// Process-wide scoped-span tracer. Disabled by default: the only cost an
/// untraced APTRACE_SPAN pays is one relaxed atomic load and a branch.
/// When enabled, each thread records begin/end pairs into its own
/// fixed-capacity ring buffer (oldest records overwritten), and
/// WriteChromeTrace dumps everything as Chrome `trace_event` JSON that
/// chrome://tracing and https://ui.perfetto.dev load directly.
class Tracer {
 public:
  /// Default ring capacity per thread; ~16k spans ≈ 640 KiB, allocated
  /// lazily on a thread's first record.
  static constexpr size_t kRingCapacity = 1 << 14;

  static Tracer& Global();

  void SetEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Overrides the per-thread ring capacity (the APTRACE_FLIGHT_BUFFER
  /// knob). Applies to buffers allocated *after* the call — set it before
  /// enabling; already-registered threads keep their rings.
  void SetRingCapacity(size_t capacity) {
    ring_capacity_.store(capacity == 0 ? 1 : capacity,
                         std::memory_order_relaxed);
  }
  size_t ring_capacity() const {
    return ring_capacity_.load(std::memory_order_relaxed);
  }

  /// Names the calling thread's track in Chrome trace dumps (a "ph":"M"
  /// thread_name metadata record). First name wins — a worker that runs
  /// many roles keeps its original label. No-op while disabled, so
  /// untraced runs never allocate a ring just to carry a name.
  void SetThreadName(const char* name);

  /// Records a completed span; no-op when disabled (ScopedSpan already
  /// checks, so it never calls this disabled).
  void RecordSpan(const char* name, TimeMicros ts, TimeMicros dur);

  /// Records a counter track sample (Chrome "ph":"C" — e.g. the window
  /// queue depth over time). No-op when disabled.
  void RecordCounter(const char* name, int64_t value);

  /// All retained records merged across threads, ordered by timestamp.
  std::string ToChromeTraceJson() const;
  Status WriteChromeTrace(const std::string& path) const;

  /// Total records currently retained (capped per thread).
  size_t RecordCount() const;

  /// Drops all retained records (buffers stay registered).
  void Clear();

 private:
  struct ThreadBuffer {
    Mutex mu{"Tracer::ThreadBuffer::mu"};
    std::vector<TraceRecord> ring APTRACE_GUARDED_BY(mu);
    size_t next APTRACE_GUARDED_BY(mu) = 0;
    bool wrapped APTRACE_GUARDED_BY(mu) = false;
    uint32_t tid = 0;  // written once before publication, then read-only
    std::string name APTRACE_GUARDED_BY(mu);  // thread_name metadata;
                                              // empty = bare tid
  };

  Tracer() = default;
  ThreadBuffer* MyBuffer();

  mutable Mutex mu_{"Tracer::mu_"};  // registration/iteration
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_ APTRACE_GUARDED_BY(mu_);
  std::atomic<bool> enabled_{false};
  std::atomic<uint32_t> next_tid_{1};
  std::atomic<size_t> ring_capacity_{kRingCapacity};
};

/// RAII span: records [construction, destruction) into the tracer when
/// tracing is enabled. Use through APTRACE_SPAN.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (!Tracer::Global().enabled()) return;
    name_ = name;
    start_ = MonotonicNowMicros();
  }
  ~ScopedSpan() {
    if (name_ == nullptr) return;
    Tracer::Global().RecordSpan(name_, start_,
                                MonotonicNowMicros() - start_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  // null = tracing was off at construction
  TimeMicros start_ = 0;
};

}  // namespace aptrace::obs

#define APTRACE_SPAN_CONCAT_IMPL(a, b) a##b
#define APTRACE_SPAN_CONCAT(a, b) APTRACE_SPAN_CONCAT_IMPL(a, b)

/// Scoped span covering the rest of the enclosing block. `name` must be a
/// string literal, conventionally "subsystem/operation"
/// (e.g. APTRACE_SPAN("executor/process_window")).
#define APTRACE_SPAN(name)              \
  ::aptrace::obs::ScopedSpan APTRACE_SPAN_CONCAT(aptrace_span_, \
                                                 __LINE__)(name)

#endif  // APTRACE_OBS_TRACE_H_
