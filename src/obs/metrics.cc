#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "obs/json_dict.h"
#include "obs/names.h"
#include "util/string_util.h"

namespace aptrace::obs {

namespace {

/// %g keeps bucket bounds like 0.001 readable and integers bare.
std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

}  // namespace

// ----------------------------------------------------------- Histogram

LatencyHistogram::LatencyHistogram(std::string name, std::string help,
                                   std::vector<double> bounds)
    : name_(std::move(name)),
      help_(std::move(help)),
      bounds_(std::move(bounds)),
      buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void LatencyHistogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t idx = static_cast<size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
  uint64_t next;
  do {
    next = std::bit_cast<uint64_t>(std::bit_cast<double>(cur) + v);
  } while (!sum_bits_.compare_exchange_weak(cur, next,
                                            std::memory_order_relaxed));
  MutexLock lock(&mu_);
  if (samples_.count() < kMaxSamples) samples_.Add(v);
}

double LatencyHistogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

std::vector<uint64_t> LatencyHistogram::BucketCounts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double LatencyHistogram::Percentile(double p) const {
  MutexLock lock(&mu_);
  return samples_.Percentile(p);
}

void LatencyHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
  MutexLock lock(&mu_);
  samples_ = SampleStats();
}

const std::vector<double>& DefaultLatencyBounds() {
  static const std::vector<double> kBounds = {
      0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 2, 5, 10, 30, 60, 120, 300, 600};
  return kBounds;
}

// ------------------------------------------------------------ Registry

MetricsRegistry::MetricsRegistry(bool preregister_engine) {
  if (!preregister_engine) return;
  // The engine's full metric surface (names.h): exports from any run list
  // every metric, zero-valued when the subsystem never ran.
  FindOrCreateCounter(names::kExecutorWindowsProcessed,
                      "Execution windows scanned by the responsive engine");
  FindOrCreateCounter(names::kExecutorWindowsEnqueued,
                      "Execution windows pushed onto the priority queue");
  FindOrCreateCounter(names::kExecutorStaleWindows,
                      "Queued windows dropped as stale (excluded or over "
                      "the hop limit)");
  FindOrCreateCounter(names::kExecutorQueueRebuilds,
                      "Full queue rebuilds after a refined context");
  FindOrCreateGauge(names::kExecutorQueueDepth,
                    "Pending execution windows in the priority queue");
  FindOrCreateCounter(names::kDedupWindowClips,
                      "Window enqueues clipped against the per-object scan "
                      "coverage watermark");
  FindOrCreateGauge(names::kExecutorScanThreads,
                    "Scan worker threads of the responsive engine (1 = "
                    "sequential path)");
  FindOrCreateCounter(names::kExecutorPrefetchHits,
                      "Windows whose prefetched scan was ready when popped");
  FindOrCreateCounter(names::kExecutorPrefetchWaits,
                      "Windows popped while their prefetch was in flight "
                      "(coordinator blocked)");
  FindOrCreateCounter(names::kExecutorPrefetchMisses,
                      "Windows scanned inline because no prefetch was "
                      "submitted");
  FindOrCreateGauge(names::kExecutorPoolQueueDepth,
                    "Prefetch tasks pending in the scan worker pool");
  FindOrCreateHistogram(names::kExecutorWorkerScanLatency,
                        "Per-worker wall time of one prefetched range scan "
                        "(seconds)");
  FindOrCreateCounter(names::kExecutorScanCostMicros,
                      "Total simulated scan cost charged by the executor "
                      "(micros)");
  FindOrCreateGauge(names::kExecutorModeledScanMakespan,
                    "Modeled makespan (micros) of the run's scans on N "
                    "parallel servers (see docs/parallel_execution.md)");
  FindOrCreateCounter(names::kBaselineNodeQueries,
                      "Whole-history node queries issued by the baseline "
                      "engine");
  FindOrCreateCounter(names::kStoreQueries,
                      "Queries answered by the event store");
  FindOrCreateCounter(names::kStoreEventsScanned,
                      "Event rows examined by store scans (delivered plus "
                      "server-side filtered)");
  FindOrCreateCounter(names::kStoreRowsFiltered,
                      "Event rows rejected server-side by pushed filters");
  FindOrCreateCounter(names::kStoreSegmentsPruned,
                      "Column segments skipped via zone maps without "
                      "touching a row (columnar backend)");
  FindOrCreateCounter(names::kStoreRowQueries,
                      "Queries answered by the row-store backend");
  FindOrCreateCounter(names::kStoreColumnarQueries,
                      "Queries answered by the columnar backend");
  FindOrCreateGauge(names::kStoreShards,
                    "Shard count of the most recently constructed sharded "
                    "store (1 = monolithic)");
  FindOrCreateCounter(names::kStoreShardScans,
                      "Scatter-gather scans replayed by the sharded store");
  FindOrCreateCounter(names::kStoreShardFanout,
                      "Shard probes issued by scatter-gather scans (fan-out "
                      "per scan, summed)");
  FindOrCreateCounter(names::kStoreShardBoundaryRows,
                      "Cross-host boundary rows gathered from a shard the "
                      "probed object does not call home");
  FindOrCreateCounter(names::kRefinerReuse,
                      "Script updates that reused the cached graph");
  FindOrCreateCounter(names::kRefinerRestart,
                      "Script updates that forced a restart");
  FindOrCreateCounter(names::kRefinerNoChange,
                      "Script updates with no effective change");
  FindOrCreateCounter(names::kBdlCompiles, "BDL scripts compiled");
  FindOrCreateCounter(names::kBdlCompileErrors,
                      "BDL compilations rejected with an error");
  FindOrCreateHistogram(names::kBdlCompileLatency,
                        "BDL compile wall time (seconds)");
  FindOrCreateCounter(names::kBdlLintRuns, "BDL lint runs");
  FindOrCreateCounter(names::kBdlLintErrors,
                      "Diagnostics with error severity reported by lint");
  FindOrCreateCounter(names::kBdlLintWarnings,
                      "Diagnostics with warning severity reported by lint");
  FindOrCreateHistogram(names::kSessionStepLatency,
                        "Session::Step wall time (seconds)");
  FindOrCreateHistogram(names::kSessionUpdateScriptLatency,
                        "Session::UpdateScript wall time (seconds)");
  FindOrCreateHistogram(names::kUpdateBatchLatency,
                        "Simulated seconds between consecutive graph "
                        "updates (paper Table II)");
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry =
      new MetricsRegistry(/*preregister_engine=*/true);
  return *registry;
}

Counter* MetricsRegistry::FindOrCreateCounter(std::string_view name,
                                              std::string_view help) {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter(
                          std::string(name), std::string(help))))
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::FindOrCreateGauge(std::string_view name,
                                          std::string_view help) {
  MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::unique_ptr<Gauge>(
                          new Gauge(std::string(name), std::string(help))))
             .first;
  }
  return it->second.get();
}

LatencyHistogram* MetricsRegistry::FindOrCreateHistogram(
    std::string_view name, std::string_view help, std::vector<double> bounds) {
  MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = DefaultLatencyBounds();
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<LatencyHistogram>(new LatencyHistogram(
                          std::string(name), std::string(help),
                          std::move(bounds))))
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::ExportPrometheus() const {
  MutexLock lock(&mu_);
  std::ostringstream os;
  for (const auto& [name, c] : counters_) {
    if (!c->help_.empty()) os << "# HELP " << name << " " << c->help_ << "\n";
    os << "# TYPE " << name << " counter\n";
    os << name << " " << c->value() << "\n";
  }
  for (const auto& [name, g] : gauges_) {
    if (!g->help_.empty()) os << "# HELP " << name << " " << g->help_ << "\n";
    os << "# TYPE " << name << " gauge\n";
    os << name << " " << g->value() << "\n";
  }
  for (const auto& [name, h] : histograms_) {
    if (!h->help_.empty()) os << "# HELP " << name << " " << h->help_ << "\n";
    os << "# TYPE " << name << " histogram\n";
    const auto counts = h->BucketCounts();
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += counts[i];
      os << name << "_bucket{le=\"" << FormatDouble(h->bounds()[i]) << "\"} "
         << cumulative << "\n";
    }
    cumulative += counts.back();
    os << name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
    os << name << "_sum " << FormatDouble(h->sum()) << "\n";
    os << name << "_count " << h->count() << "\n";
    // Exact quantiles from the sample reservoir, as plain sibling series
    // (`{quantile=}` labels are reserved for TYPE summary, and NaN is not
    // valid exposition text, so empty histograms emit no quantile lines).
    if (h->count() > 0) {
      os << name << "_p50 " << FormatDouble(h->Percentile(50)) << "\n";
      os << name << "_p95 " << FormatDouble(h->Percentile(95)) << "\n";
      os << name << "_p99 " << FormatDouble(h->Percentile(99)) << "\n";
    }
  }
  return os.str();
}

std::string MetricsRegistry::ExportJson() const {
  MutexLock lock(&mu_);
  JsonDict counters;
  for (const auto& [name, c] : counters_) counters.Add(name, c->value());
  JsonDict gauges;
  for (const auto& [name, g] : gauges_) gauges.Add(name, g->value());
  JsonDict histograms;
  for (const auto& [name, h] : histograms_) {
    JsonDict entry;
    entry.Add("count", h->count());
    entry.Add("sum", h->sum());
    std::string buckets = "[";
    const auto counts = h->BucketCounts();
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i) buckets += ",";
      JsonDict bucket;
      if (i < h->bounds().size()) {
        bucket.Add("le", h->bounds()[i]);
      } else {
        bucket.Add("le", std::string_view("+Inf"));
      }
      bucket.Add("count", counts[i]);
      buckets += bucket.Str();
    }
    buckets += "]";
    entry.AddRaw("buckets", buckets);
    entry.Add("p50", h->Percentile(50));
    entry.Add("p90", h->Percentile(90));
    entry.Add("p99", h->Percentile(99));
    histograms.AddRaw(name, entry.Str());
  }
  JsonDict root;
  root.AddRaw("counters", counters.Str());
  root.AddRaw("gauges", gauges.Str());
  root.AddRaw("histograms", histograms.Str());
  return root.Str();
}

void MetricsRegistry::Reset() {
  MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

Status WriteMetricsFile(const MetricsRegistry& registry,
                        const std::string& path) {
  const std::string text = EndsWith(path, ".json")
                               ? registry.ExportJson()
                               : registry.ExportPrometheus();
  if (path == "-") {
    std::fputs(registry.ExportPrometheus().c_str(), stdout);
    return Status::Ok();
  }
  std::ofstream f(path);
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  f << text;
  if (EndsWith(path, ".json")) f << "\n";
  return Status::Ok();
}

}  // namespace aptrace::obs
