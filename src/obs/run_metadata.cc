#include "obs/run_metadata.h"

#include <cstdio>
#include <fstream>

#include "obs/json_dict.h"

namespace aptrace::obs {

std::string RunMetadataJson(const RunMetadata& meta,
                            const MetricsRegistry& registry) {
  JsonDict root;
  root.Add("name", std::string_view(meta.name));
  root.Add("invocation", std::string_view(meta.invocation));
  root.Add("store_events", meta.store_events);
  root.Add("store_objects", meta.store_objects);
  root.Add("wall_seconds", meta.wall_seconds);
  if (!meta.extra.empty()) {
    JsonDict extra;
    for (const auto& [key, value] : meta.extra) {
      extra.Add(key, std::string_view(value));
    }
    root.AddRaw("extra", extra.Str());
  }
  root.AddRaw("metrics", registry.ExportJson());
  return root.Str();
}

Status WriteRunMetadata(const RunMetadata& meta,
                        const MetricsRegistry& registry,
                        const std::string& path) {
  const std::string text = RunMetadataJson(meta, registry);
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    std::fputc('\n', stdout);
    return Status::Ok();
  }
  std::ofstream f(path);
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  f << text << "\n";
  return Status::Ok();
}

}  // namespace aptrace::obs
