#ifndef APTRACE_OBS_NAMES_H_
#define APTRACE_OBS_NAMES_H_

/// \file
/// Catalog of the engine's metric names (docs/observability.md documents
/// each). Every name lives here so instrumentation sites, the
/// pre-registration in MetricsRegistry::Global(), tests, and dashboards
/// agree on spelling. Conventions:
///   - counters end in `_total`
///   - latency histograms are observed in seconds
///   - `aptrace_update_batch_latency` uses *simulated* seconds (the
///     paper's responsiveness metric); the session/bdl histograms use
///     real wall time.

namespace aptrace::obs::names {

// Responsive executor (core/executor.cc).
inline constexpr char kExecutorWindowsProcessed[] =
    "aptrace_executor_windows_processed_total";
inline constexpr char kExecutorWindowsEnqueued[] =
    "aptrace_executor_windows_enqueued_total";
inline constexpr char kExecutorStaleWindows[] =
    "aptrace_executor_stale_windows_total";
inline constexpr char kExecutorQueueRebuilds[] =
    "aptrace_executor_queue_rebuilds_total";
inline constexpr char kExecutorQueueDepth[] = "aptrace_executor_queue_depth";
inline constexpr char kDedupWindowClips[] = "aptrace_dedup_window_clips_total";

// Parallel scan pipeline (core/executor.cc + util/worker_pool.cc).
inline constexpr char kExecutorScanThreads[] =
    "aptrace_executor_scan_threads";
inline constexpr char kExecutorPrefetchHits[] =
    "aptrace_executor_prefetch_hits_total";
inline constexpr char kExecutorPrefetchWaits[] =
    "aptrace_executor_prefetch_waits_total";
inline constexpr char kExecutorPrefetchMisses[] =
    "aptrace_executor_prefetch_misses_total";
inline constexpr char kExecutorPoolQueueDepth[] =
    "aptrace_executor_pool_queue_depth";
inline constexpr char kExecutorWorkerScanLatency[] =
    "aptrace_executor_worker_scan_latency";
inline constexpr char kExecutorScanCostMicros[] =
    "aptrace_executor_scan_cost_micros_total";
inline constexpr char kExecutorModeledScanMakespan[] =
    "aptrace_executor_modeled_scan_makespan_micros";

// Execute-to-complete baseline (core/baseline_executor.cc).
inline constexpr char kBaselineNodeQueries[] =
    "aptrace_baseline_node_queries_total";

// Event store (storage/storage_backend.cc). The aggregate counters sum
// over all backends; the per-backend `aptrace_store_<backend>_*` names
// carry the backend dimension (the Prometheus exporter emits one # TYPE
// line per name, so the dimension is a name suffix rather than a label).
inline constexpr char kStoreQueries[] = "aptrace_store_queries_total";
inline constexpr char kStoreEventsScanned[] =
    "aptrace_store_events_scanned_total";
inline constexpr char kStoreRowsFiltered[] =
    "aptrace_store_rows_filtered_total";
inline constexpr char kStoreSegmentsPruned[] =
    "aptrace_store_segments_pruned_total";
inline constexpr char kStoreRowQueries[] =
    "aptrace_store_row_queries_total";
inline constexpr char kStoreColumnarQueries[] =
    "aptrace_store_columnar_queries_total";

// Sharded store engine (storage/sharded_store.cc): scatter-gather scans
// over (host, time-partition) shards. docs/sharding.md documents the
// partitioning; the per-shard rows in /sessions carry the per-shard
// breakdown of these process-wide totals.
inline constexpr char kStoreShards[] = "aptrace_store_shards";
inline constexpr char kStoreShardScans[] = "aptrace_store_shard_scans_total";
inline constexpr char kStoreShardFanout[] =
    "aptrace_store_shard_fanout_total";
inline constexpr char kStoreShardBoundaryRows[] =
    "aptrace_store_shard_boundary_rows_total";

// Distributed shard fabric (src/dist/): coordinator-side RPCs to remote
// shard daemons (docs/distribution.md). kDistRpcs counts completed RPC
// round trips (any outcome), kDistRetries redials after a transport
// failure, kDistShardDown RPCs abandoned after the retry budget (each
// one surfaces as a typed DST-E005 degraded error, never a hang).
inline constexpr char kDistRpcs[] = "aptrace_dist_rpcs_total";
inline constexpr char kDistRetries[] = "aptrace_dist_retries_total";
inline constexpr char kDistShardDown[] = "aptrace_dist_shard_down_total";

// Durable ingest: write-ahead log (storage/wal.cc) and recovery
// (storage/recovery.cc). docs/durability.md documents the pipeline.
inline constexpr char kWalAppendedBatches[] =
    "aptrace_wal_appended_batches_total";
inline constexpr char kWalAppendedEvents[] =
    "aptrace_wal_appended_events_total";
inline constexpr char kWalAppendedBytes[] =
    "aptrace_wal_appended_bytes_total";
inline constexpr char kWalSyncs[] = "aptrace_wal_syncs_total";
inline constexpr char kWalAppendFailures[] =
    "aptrace_wal_append_failures_total";
inline constexpr char kWalRecoveredBatches[] =
    "aptrace_wal_recovered_batches_total";
inline constexpr char kWalRecoveredEvents[] =
    "aptrace_wal_recovered_events_total";
inline constexpr char kWalDuplicatesSkipped[] =
    "aptrace_wal_duplicates_skipped_total";
inline constexpr char kWalTruncatedBytes[] =
    "aptrace_wal_truncated_bytes_total";

// Tiered-storage lifecycle (storage/columnar_backend.cc): hot tail ->
// sealed segments -> compacted -> evicted.
inline constexpr char kStoreTailSeals[] = "aptrace_store_tail_seals_total";
inline constexpr char kStoreTailSealedRows[] =
    "aptrace_store_tail_sealed_rows_total";
inline constexpr char kStoreCompactions[] =
    "aptrace_store_compactions_total";
inline constexpr char kStoreSegmentsCompacted[] =
    "aptrace_store_segments_compacted_total";
inline constexpr char kStoreRowsEvicted[] =
    "aptrace_store_rows_evicted_total";
inline constexpr char kStoreSegmentsEvicted[] =
    "aptrace_store_segments_evicted_total";
inline constexpr char kStoreSnapshots[] = "aptrace_store_snapshots_total";

// Refiner decisions (core/refiner.cc).
inline constexpr char kRefinerReuse[] = "aptrace_refiner_reuse_total";
inline constexpr char kRefinerRestart[] = "aptrace_refiner_restart_total";
inline constexpr char kRefinerNoChange[] = "aptrace_refiner_nochange_total";

// BDL compiler (bdl/analyzer.cc).
inline constexpr char kBdlCompiles[] = "aptrace_bdl_compiles_total";
inline constexpr char kBdlCompileErrors[] =
    "aptrace_bdl_compile_errors_total";
inline constexpr char kBdlCompileLatency[] = "aptrace_bdl_compile_latency";

// BDL linter (bdl/lint.cc).
inline constexpr char kBdlLintRuns[] = "aptrace_bdl_lint_runs_total";
inline constexpr char kBdlLintErrors[] = "aptrace_bdl_lint_errors_total";
inline constexpr char kBdlLintWarnings[] =
    "aptrace_bdl_lint_warnings_total";

// Interactive session (core/session.cc).
inline constexpr char kSessionStepLatency[] = "aptrace_session_step_latency";
inline constexpr char kSessionUpdateScriptLatency[] =
    "aptrace_session_update_script_latency";

// Update batches (both engines): simulated seconds between consecutive
// graph updates — the paper's Table II responsiveness metric.
inline constexpr char kUpdateBatchLatency[] = "aptrace_update_batch_latency";

// Multi-session query service (service/session_manager.cc + server.cc).
inline constexpr char kServiceSessionsOpened[] =
    "aptrace_service_sessions_opened_total";
inline constexpr char kServiceSessionsLive[] =
    "aptrace_service_sessions_live";
inline constexpr char kServiceAdmissionRejected[] =
    "aptrace_service_admission_rejected_total";
inline constexpr char kServiceQuanta[] = "aptrace_service_quanta_total";
inline constexpr char kServiceBackpressureStalls[] =
    "aptrace_service_backpressure_stalls_total";
inline constexpr char kServiceIngestEvents[] =
    "aptrace_service_ingest_events_total";
inline constexpr char kServiceIngestRejected[] =
    "aptrace_service_ingest_rejected_total";
/// Wall seconds from `open` to a session's first streamed update batch —
/// the service-level responsiveness figure.
inline constexpr char kServiceFirstUpdateLatency[] =
    "aptrace_service_first_update_latency";
inline constexpr char kServiceRequests[] =
    "aptrace_service_requests_total";
inline constexpr char kServiceRequestErrors[] =
    "aptrace_service_request_errors_total";
inline constexpr char kServiceHttpRequests[] =
    "aptrace_service_http_requests_total";
inline constexpr char kServiceSlowQueries[] =
    "aptrace_service_slow_queries_total";
inline constexpr char kServiceFlightDumps[] =
    "aptrace_service_flight_dumps_total";

}  // namespace aptrace::obs::names

#endif  // APTRACE_OBS_NAMES_H_
