#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/string_util.h"

namespace aptrace::obs {

Tracer& Tracer::Global() {
  static Tracer* const tracer = new Tracer();
  return *tracer;
}

Tracer::ThreadBuffer* Tracer::MyBuffer() {
  static thread_local ThreadBuffer* t_buffer = nullptr;
  if (t_buffer != nullptr) return t_buffer;
  auto buf = std::make_unique<ThreadBuffer>();
  ThreadBuffer* raw = buf.get();
  {
    // Uncontended — the buffer is not yet published — but locking keeps
    // the guarded-field initialization visible to the analysis.
    MutexLock init(&raw->mu);
    raw->ring.resize(ring_capacity());
  }
  raw->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(&mu_);
    buffers_.push_back(std::move(buf));
  }
  t_buffer = raw;
  return raw;
}

void Tracer::RecordSpan(const char* name, TimeMicros ts, TimeMicros dur) {
  if (!enabled()) return;
  ThreadBuffer* buf = MyBuffer();
  MutexLock lock(&buf->mu);
  TraceRecord& r = buf->ring[buf->next];
  r.name = name;
  r.ts = ts;
  r.dur = dur;
  r.value = 0;
  r.is_counter = false;
  if (++buf->next == buf->ring.size()) {
    buf->next = 0;
    buf->wrapped = true;
  }
}

void Tracer::SetThreadName(const char* name) {
  if (!enabled()) return;
  ThreadBuffer* buf = MyBuffer();
  MutexLock lock(&buf->mu);
  if (buf->name.empty()) buf->name = name;
}

void Tracer::RecordCounter(const char* name, int64_t value) {
  if (!enabled()) return;
  ThreadBuffer* buf = MyBuffer();
  MutexLock lock(&buf->mu);
  TraceRecord& r = buf->ring[buf->next];
  r.name = name;
  r.ts = MonotonicNowMicros();
  r.dur = 0;
  r.value = value;
  r.is_counter = true;
  if (++buf->next == buf->ring.size()) {
    buf->next = 0;
    buf->wrapped = true;
  }
}

std::string Tracer::ToChromeTraceJson() const {
  struct Row {
    TraceRecord rec;
    uint32_t tid;
  };
  std::vector<Row> rows;
  std::vector<std::pair<uint32_t, std::string>> thread_names;
  {
    MutexLock lock(&mu_);
    for (const auto& owned : buffers_) {
      ThreadBuffer* buf = owned.get();
      MutexLock buf_lock(&buf->mu);
      const size_t n = buf->wrapped ? buf->ring.size() : buf->next;
      for (size_t i = 0; i < n; ++i) {
        rows.push_back({buf->ring[i], buf->tid});
      }
      if (!buf->name.empty()) thread_names.emplace_back(buf->tid, buf->name);
    }
  }
  std::stable_sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    return a.rec.ts < b.rec.ts;
  });
  std::sort(thread_names.begin(), thread_names.end());

  std::ostringstream os;
  os << "{\"traceEvents\":[";
  // Metadata records first: name the process and every labeled thread so
  // Perfetto shows "coordinator"/"scan-worker" tracks, not bare tids.
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
        "\"args\":{\"name\":\"aptrace\"}}";
  for (const auto& [tid, name] : thread_names) {
    os << ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"args\":{\"name\":\"" << JsonEscape(name) << "\"}}";
  }
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    os << ",";
    if (row.rec.is_counter) {
      os << "{\"name\":\"" << JsonEscape(row.rec.name)
         << "\",\"ph\":\"C\",\"ts\":" << row.rec.ts
         << ",\"pid\":1,\"tid\":" << row.tid << ",\"args\":{\"value\":"
         << row.rec.value << "}}";
    } else {
      os << "{\"name\":\"" << JsonEscape(row.rec.name)
         << "\",\"ph\":\"X\",\"ts\":" << row.rec.ts
         << ",\"dur\":" << row.rec.dur << ",\"pid\":1,\"tid\":" << row.tid
         << "}";
    }
  }
  os << "],\"displayTimeUnit\":\"ms\"}";
  return os.str();
}

Status Tracer::WriteChromeTrace(const std::string& path) const {
  const std::string text = ToChromeTraceJson();
  if (path == "-") {
    std::fputs(text.c_str(), stdout);
    std::fputc('\n', stdout);
    return Status::Ok();
  }
  std::ofstream f(path);
  if (!f) return Status::InvalidArgument("cannot open for write: " + path);
  f << text << "\n";
  return Status::Ok();
}

size_t Tracer::RecordCount() const {
  MutexLock lock(&mu_);
  size_t n = 0;
  for (const auto& owned : buffers_) {
    ThreadBuffer* buf = owned.get();
    MutexLock buf_lock(&buf->mu);
    n += buf->wrapped ? buf->ring.size() : buf->next;
  }
  return n;
}

void Tracer::Clear() {
  MutexLock lock(&mu_);
  for (const auto& owned : buffers_) {
    ThreadBuffer* buf = owned.get();
    MutexLock buf_lock(&buf->mu);
    buf->next = 0;
    buf->wrapped = false;
  }
}

}  // namespace aptrace::obs
