#ifndef APTRACE_OBS_METRICS_H_
#define APTRACE_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.h"
#include "util/sync.h"
#include "util/status.h"

namespace aptrace::obs {

/// Monotonically increasing event count. Add() is a relaxed atomic
/// fetch-add — safe from any thread, a few nanoseconds on the hot path.
/// Handles returned by a MetricsRegistry stay valid for its lifetime
/// (forever, for the Global() registry).
class Counter {
 public:
  void Add(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Counter(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  std::string help_;
  std::atomic<uint64_t> value_{0};
};

/// Point-in-time level (queue depth, live sessions).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  Gauge(std::string name, std::string help)
      : name_(std::move(name)), help_(std::move(help)) {}
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::string name_;
  std::string help_;
  std::atomic<int64_t> value_{0};
};

/// Fixed-bucket latency histogram. Bucketing follows the Prometheus `le`
/// convention: a sample lands in the first bucket whose (inclusive) upper
/// bound is >= the value, values above the last bound in the +Inf
/// overflow bucket. A capped reservoir of raw samples feeds
/// SampleStats::Percentile for the percentile columns of the JSON export.
class LatencyHistogram {
 public:
  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

  /// Per-bucket (non-cumulative) counts: one entry per bound plus the
  /// trailing +Inf bucket.
  std::vector<uint64_t> BucketCounts() const;

  /// Percentile over the retained raw samples; NaN when empty. The
  /// reservoir keeps the first 64Ki observations, which covers every
  /// workload in this repo exactly.
  double Percentile(double p) const;

 private:
  friend class MetricsRegistry;
  LatencyHistogram(std::string name, std::string help,
                   std::vector<double> bounds);
  void Reset();

  static constexpr size_t kMaxSamples = 1 << 16;

  std::string name_;
  std::string help_;
  std::vector<double> bounds_;                   // ascending upper bounds
  std::vector<std::atomic<uint64_t>> buckets_;   // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{0};            // double via bit_cast CAS
  mutable Mutex mu_{"LatencyHistogram::mu_"};
  SampleStats samples_ APTRACE_GUARDED_BY(mu_);
};

/// Default latency bucket bounds in seconds: 1ms .. 10 simulated minutes
/// on a roughly 1-2-5 grid.
const std::vector<double>& DefaultLatencyBounds();

/// Named metric registry. `Global()` is the process-wide instance every
/// instrumentation site uses; tests construct private instances for
/// golden-output checks. FindOrCreate* registers on first use and returns
/// the existing metric afterwards (help/bounds of later calls ignored).
/// All methods are thread-safe; exports are sorted by metric name.
class MetricsRegistry {
 public:
  /// `preregister_engine` pre-creates the full names.h catalog so exports
  /// always list the engine surface, even for runs that never touch a
  /// subsystem (Global() passes true).
  explicit MetricsRegistry(bool preregister_engine = false);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  Counter* FindOrCreateCounter(std::string_view name,
                               std::string_view help = "");
  Gauge* FindOrCreateGauge(std::string_view name, std::string_view help = "");
  LatencyHistogram* FindOrCreateHistogram(std::string_view name,
                                          std::string_view help = "",
                                          std::vector<double> bounds = {});

  /// Prometheus text exposition format.
  std::string ExportPrometheus() const;

  /// One JSON object: {"counters":{..},"gauges":{..},"histograms":{..}}.
  /// Histograms carry count/sum/buckets plus p50/p90/p99 (null if empty).
  std::string ExportJson() const;

  /// Zeroes every value; registrations (and handles) survive. For tests
  /// and long-lived processes that snapshot per run.
  void Reset();

 private:
  mutable Mutex mu_{"MetricsRegistry::mu_"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      APTRACE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      APTRACE_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<LatencyHistogram>, std::less<>>
      histograms_ APTRACE_GUARDED_BY(mu_);
};

/// Shorthand used at instrumentation sites.
inline MetricsRegistry& Metrics() { return MetricsRegistry::Global(); }

/// Writes a registry snapshot to `path`: "-" means stdout, a ".json"
/// suffix selects the JSON export, anything else Prometheus text.
Status WriteMetricsFile(const MetricsRegistry& registry,
                        const std::string& path);

}  // namespace aptrace::obs

#endif  // APTRACE_OBS_METRICS_H_
