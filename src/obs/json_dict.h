#ifndef APTRACE_OBS_JSON_DICT_H_
#define APTRACE_OBS_JSON_DICT_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/string_util.h"

namespace aptrace::obs {

/// Minimal ordered JSON object builder for the flat documents the
/// observability layer emits (metrics snapshots, run metadata). Values
/// are encoded on insertion; nesting goes through AddRaw with another
/// dict's Str(). Not a general JSON library — just enough to keep the
/// exporters free of hand-quoted string soup.
class JsonDict {
 public:
  void Add(std::string_view key, std::string_view value) {
    items_.emplace_back(std::string(key),
                        "\"" + JsonEscape(value) + "\"");
  }
  /// String-literal values would otherwise prefer the bool overload
  /// (pointer-to-bool is a standard conversion, string_view is not).
  void Add(std::string_view key, const char* value) {
    Add(key, std::string_view(value));
  }
  void Add(std::string_view key, uint64_t v) {
    items_.emplace_back(std::string(key), std::to_string(v));
  }
  void Add(std::string_view key, int64_t v) {
    items_.emplace_back(std::string(key), std::to_string(v));
  }
  void Add(std::string_view key, double v) {
    items_.emplace_back(std::string(key), EncodeDouble(v));
  }
  void Add(std::string_view key, bool v) {
    items_.emplace_back(std::string(key), v ? "true" : "false");
  }
  /// `raw` must already be valid JSON (nested object/array).
  void AddRaw(std::string_view key, std::string_view raw) {
    items_.emplace_back(std::string(key), std::string(raw));
  }

  /// NaN/inf have no JSON representation; encode as null.
  static std::string EncodeDouble(double v) {
    if (!std::isfinite(v)) return "null";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
  }

  std::string Str() const {
    std::string out = "{";
    for (size_t i = 0; i < items_.size(); ++i) {
      if (i) out += ",";
      out += "\"" + JsonEscape(items_[i].first) + "\":" + items_[i].second;
    }
    out += "}";
    return out;
  }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

}  // namespace aptrace::obs

#endif  // APTRACE_OBS_JSON_DICT_H_
