#ifndef APTRACE_WORKLOAD_ENTERPRISE_H_
#define APTRACE_WORKLOAD_ENTERPRISE_H_

#include <memory>
#include <vector>

#include "bdl/spec.h"
#include "storage/event_store.h"
#include "workload/trace_config.h"

namespace aptrace::workload {

/// Builds the multi-host enterprise trace the responsiveness experiments
/// run on (Sections IV-B, IV-E, IV-F): background noise on every host,
/// cross-host chatter, and a few deliberately busy services whose
/// dependent sets are enormous — the heavy tail that makes the baseline's
/// monolithic scans block for a long time.
std::unique_ptr<EventStore> BuildEnterpriseTrace(const TraceConfig& config);

/// Samples `n` events uniformly from the store to serve as synthetic
/// anomaly alerts (the paper randomly selected 200 events and treated
/// them as starting points). Deterministic for a given seed.
std::vector<Event> SampleAnomalyEvents(const EventStore& store, size_t n,
                                       uint64_t seed);

/// An unconstrained tracking spec ("backward <type> x[] -> *") suitable
/// for backtracking from an arbitrary injected alert event.
bdl::TrackingSpec GenericSpecFor(const EventStore& store, const Event& alert);

}  // namespace aptrace::workload

#endif  // APTRACE_WORKLOAD_ENTERPRISE_H_
