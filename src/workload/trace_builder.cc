#include "workload/trace_builder.h"

namespace aptrace::workload {

ObjectId TraceBuilder::Proc(HostId host, std::string_view exename,
                            TimeMicros start_time, int64_t pid) {
  ProcessAttrs attrs;
  attrs.exename = std::string(exename);
  attrs.pid = pid != 0 ? pid : NextPid();
  attrs.start_time = start_time;
  return catalog().AddProcess(host, std::move(attrs));
}

ObjectId TraceBuilder::File(HostId host, std::string_view path,
                            TimeMicros created) {
  FileAttrs attrs;
  attrs.path = std::string(path);
  attrs.creation_time = created;
  attrs.last_modification_time = created;
  attrs.last_access_time = created;
  return catalog().AddFile(host, std::move(attrs));
}

ObjectId TraceBuilder::Socket(HostId host, std::string_view src_ip,
                              std::string_view dst_ip, int32_t dst_port,
                              TimeMicros t) {
  IpAttrs attrs;
  attrs.src_ip = std::string(src_ip);
  attrs.dst_ip = std::string(dst_ip);
  attrs.dst_port = dst_port;
  attrs.start_time = t;
  return catalog().AddIp(host, std::move(attrs));
}

EventId TraceBuilder::Emit(ActionType action, ObjectId subject,
                           ObjectId object, TimeMicros t, uint64_t amount) {
  Event e;
  e.subject = subject;
  e.object = object;
  e.timestamp = t;
  e.amount = amount;
  e.action = action;
  e.direction = ActionDefaultDirection(action);
  e.host = catalog().Get(subject).host();
  return store_->Append(e);
}

ObjectId TraceBuilder::StartProcess(ObjectId parent, HostId host,
                                    std::string_view exename, TimeMicros t,
                                    int64_t pid) {
  const ObjectId child = Proc(host, exename, t, pid);
  Emit(ActionType::kStart, parent, child, t);
  return child;
}

}  // namespace aptrace::workload
