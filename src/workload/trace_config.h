#ifndef APTRACE_WORKLOAD_TRACE_CONFIG_H_
#define APTRACE_WORKLOAD_TRACE_CONFIG_H_

#include <cstdint>
#include <functional>

#include "storage/event_store.h"
#include "storage/storage_backend.h"
#include "util/clock.h"

namespace aptrace::workload {

/// Knobs of the synthetic enterprise trace (see DESIGN.md, substitution
/// table: this stands in for the paper's 256-host / 13 TB ETW + Linux
/// Audit deployment at laptop scale). Defaults produce the properties the
/// paper's algorithms exploit:
///  * temporal locality — activity comes in bursts tied to process
///    lifetimes and business hours;
///  * heavy-tailed fan-in — a few objects (explorer.exe, web-cache index,
///    busy services) accumulate enormous dependent sets, which is what
///    makes dependency explosion and the baseline's blocking scans real.
struct TraceConfig {
  uint64_t seed = 42;

  /// Storage backend of the generated store (default: APTRACE_BACKEND
  /// env var, else row). The generated events are identical either way.
  StorageBackendKind backend = DefaultStorageBackendKind();

  /// Store shard count (default: APTRACE_SHARDS env var, else 1). Shard
  /// routing happens below the append path, so the generated events —
  /// ids, timestamps, everything — are identical at any count
  /// (docs/sharding.md).
  size_t shards = DefaultShardCount();

  /// Last-chance edit of the store options before the trace store is
  /// constructed. The distributed benches use it to inject a remote
  /// shard-backend factory (docs/distribution.md); the generated events
  /// are identical with or without it.
  std::function<void(EventStoreOptions&)> store_tweak;

  /// Fleet shape.
  int num_hosts = 12;
  int days = 30;

  /// Trace epoch; defaults to the paper's A1 window start, 03/26/2019
  /// (see attacks/*). Expressed in micros since the Unix epoch.
  TimeMicros start_time = 1553558400LL * 1000000LL;  // 03/26/2019 00:00:00

  /// Background activity rates, per host.
  int dll_pool_size = 120;        // distinct library files
  int doc_pool_size = 350;        // user documents
  int hot_file_count = 3;         // INDEX.DAT-like hot files
  int log_file_count = 6;
  int user_sessions_per_day = 20; // app launch bursts during business hours
  int explorer_scans_per_day = 40;// metadata scans by the file explorer
  int explorer_scan_width = 20;   // files touched per scan
  int dlls_per_process = 18;      // libraries loaded at app start
  int service_writes_per_day = 48;// log/telemetry writes by services
  int service_config_reads_per_day = 150;  // config-file reads per service:
                                         // long-lived services become
                                         // mid-sized fan-in hubs
  int config_pool_size = 20;      // distinct config files per host

  /// Cross-host chatter: average outbound connections per host per day.
  int connections_per_day = 24;

  /// Popularity skew of document reads/writes (Zipf exponent; 0 =
  /// uniform). Skewed traffic concentrates edits on a few hub documents,
  /// fattening the dependent-count tail that blocks monolithic scans.
  double doc_skew = 0.9;

  DurationMicros SpanMicros() const {
    return static_cast<DurationMicros>(days) * kMicrosPerDay;
  }
  TimeMicros end_time() const { return start_time + SpanMicros(); }

  /// A small config for fast unit tests.
  static TraceConfig Small() {
    TraceConfig c;
    c.num_hosts = 3;
    c.days = 7;
    c.doc_pool_size = 60;
    c.dll_pool_size = 30;
    c.user_sessions_per_day = 4;
    c.explorer_scans_per_day = 6;
    c.explorer_scan_width = 5;
    c.dlls_per_process = 5;
    c.service_writes_per_day = 10;
    c.service_config_reads_per_day = 3;
    c.config_pool_size = 8;
    c.connections_per_day = 6;
    return c;
  }
};

}  // namespace aptrace::workload

#endif  // APTRACE_WORKLOAD_TRACE_CONFIG_H_
