#ifndef APTRACE_WORKLOAD_SCENARIO_H_
#define APTRACE_WORKLOAD_SCENARIO_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/dep_graph.h"
#include "storage/event_store.h"
#include "util/status.h"
#include "workload/trace_config.h"

namespace aptrace::workload {

/// A staged attack case (paper Table I): the anomaly alert backtracking
/// starts from, the BDL refinement sequence the blue team applied (v1 has
/// no heuristics; each later version adds one), and the ground-truth
/// causal chain the final graph must contain.
struct AttackScenario {
  std::string name;         // registry key, e.g. "phishing_email"
  std::string title;        // Table I row label
  std::string description;

  EventId alert_event = kInvalidEventId;
  Event alert;

  /// BDL scripts v1..vn; scripts[0] is the unguided initial script.
  std::vector<std::string> bdl_scripts;
  /// Number of heuristics applied across the sequence (Table I column).
  size_t num_heuristics = 0;

  /// Objects of the true attack chain; the optimized final graph must
  /// contain all of them (examples and tests assert this).
  std::vector<ObjectId> ground_truth;
  /// The penetration-point object (root cause) the analysis must reach.
  ObjectId penetration_point = kInvalidObjectId;

  std::string primary_host;
};

/// A scenario together with the store it was staged in.
struct BuiltCase {
  std::unique_ptr<EventStore> store;
  AttackScenario scenario;
};

/// The five attack cases of Table I.
std::vector<std::string> AttackCaseNames();

/// True when the dependency graph contains the scenario's whole
/// ground-truth chain (including the penetration point) — the moment the
/// blue team considers the attack reconstructed.
bool ChainRecovered(const DepGraph& graph, const AttackScenario& scenario);

/// Builds the named case on top of fresh background noise. The config's
/// start_time/days are overridden per case to match the paper's dates.
Result<BuiltCase> BuildAttackCase(std::string_view name,
                                  const TraceConfig& config);

/// Individual builders (also reachable through BuildAttackCase).
BuiltCase BuildPhishingEmail(const TraceConfig& config);
BuiltCase BuildExcelMacro(const TraceConfig& config);
BuiltCase BuildShellShock(const TraceConfig& config);
BuiltCase BuildCheatingStudent(const TraceConfig& config);
BuiltCase BuildWgetUnzipGcc(const TraceConfig& config);

}  // namespace aptrace::workload

#endif  // APTRACE_WORKLOAD_SCENARIO_H_
