#ifndef APTRACE_WORKLOAD_TRACE_BUILDER_H_
#define APTRACE_WORKLOAD_TRACE_BUILDER_H_

#include <string>
#include <string_view>

#include "storage/event_store.h"
#include "util/rng.h"

namespace aptrace::workload {

/// Thin authoring layer over EventStore: creates objects with sensible
/// attributes and emits events with the canonical flow direction for each
/// action. All generator and attack-injector code goes through this.
class TraceBuilder {
 public:
  explicit TraceBuilder(EventStore* store) : store_(store) {}

  EventStore* store() { return store_; }
  ObjectCatalog& catalog() { return store_->catalog(); }

  HostId Host(std::string_view name) {
    return catalog().InternHost(name);
  }

  /// Creates a process instance. `pid` of 0 draws a synthetic pid.
  ObjectId Proc(HostId host, std::string_view exename, TimeMicros start_time,
                int64_t pid = 0);

  ObjectId File(HostId host, std::string_view path, TimeMicros created);

  /// Creates a network-connection object shared by both endpoints.
  ObjectId Socket(HostId host, std::string_view src_ip,
                  std::string_view dst_ip, int32_t dst_port, TimeMicros t);

  /// Emits an event; direction follows ActionDefaultDirection(action).
  EventId Emit(ActionType action, ObjectId subject, ObjectId object,
               TimeMicros t, uint64_t amount = 0);

  /// Composite helpers (each emits one event).
  EventId Read(ObjectId proc, ObjectId object, TimeMicros t,
               uint64_t amount = 4096) {
    return Emit(ActionType::kRead, proc, object, t, amount);
  }
  EventId Write(ObjectId proc, ObjectId object, TimeMicros t,
                uint64_t amount = 4096) {
    return Emit(ActionType::kWrite, proc, object, t, amount);
  }
  /// Starts a child process: creates the proc object and the start event.
  ObjectId StartProcess(ObjectId parent, HostId host, std::string_view exename,
                        TimeMicros t, int64_t pid = 0);

  /// proc -> socket (connect + the write it implies).
  EventId Connect(ObjectId proc, ObjectId socket, TimeMicros t,
                  uint64_t amount = 1024) {
    return Emit(ActionType::kConnect, proc, socket, t, amount);
  }
  /// socket -> proc (accept/receive).
  EventId Accept(ObjectId proc, ObjectId socket, TimeMicros t,
                 uint64_t amount = 1024) {
    return Emit(ActionType::kAccept, proc, socket, t, amount);
  }

  /// Synthetic pid allocator (deterministic).
  int64_t NextPid() { return next_pid_++; }

 private:
  EventStore* store_;
  int64_t next_pid_ = 1000;
};

}  // namespace aptrace::workload

#endif  // APTRACE_WORKLOAD_TRACE_BUILDER_H_
