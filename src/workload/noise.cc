#include "workload/noise.h"

#include <algorithm>

namespace aptrace::workload {

namespace {

const char* const kWindowsApps[] = {"outlook.exe", "excel.exe", "winword.exe",
                                    "chrome.exe",  "iexplorer.exe",
                                    "notepad.exe", "cmd.exe"};
const char* const kLinuxApps[] = {"bash", "vim", "python", "curl", "sshd",
                                  "tar"};

std::string ExternalIp(Rng* rng) {
  return "203.0." + std::to_string(rng->Uniform(32)) + "." +
         std::to_string(rng->Uniform(250) + 1);
}

}  // namespace

TimeMicros NoiseGenerator::Jitter(TimeMicros base, DurationMicros spread) {
  if (spread <= 0) return base;
  return base + static_cast<DurationMicros>(
                    rng_->Uniform(static_cast<uint64_t>(spread)));
}

size_t NoiseGenerator::PickDoc(const HostEnv& env, double skew_delta) {
  const double s = cfg_.doc_skew + skew_delta;
  if (s <= 0.0) return rng_->Uniform(env.doc_pool.size());
  return rng_->Zipf(env.doc_pool.size(), s);
}

HostEnv NoiseGenerator::SetupHost(const std::string& name, bool is_windows) {
  HostEnv env;
  env.name = name;
  env.is_windows = is_windows;
  env.host = b_->Host(name);
  env.ip = "10.1." + std::to_string(env.host / 250) + "." +
           std::to_string(env.host % 250 + 1);
  const TimeMicros t0 = cfg_.start_time;

  env.shell = b_->Proc(env.host, is_windows ? "explorer.exe" : "init", t0);
  const int num_services = 3;
  for (int i = 0; i < num_services; ++i) {
    env.services.push_back(b_->Proc(
        env.host, is_windows ? "svchost.exe" : "systemd-journald", t0));
  }

  const std::string res_dir =
      is_windows ? "C://Windows/Resources/" : "/usr/share/";
  for (int i = 0; i < 80; ++i) {
    env.static_pool.push_back(b_->File(
        env.host, res_dir + "res" + std::to_string(i) + ".bin", t0));
  }
  const std::string dll_dir =
      is_windows ? "C://Windows/System32/" : "/usr/lib/";
  const std::string dll_ext = is_windows ? ".dll" : ".so";
  for (int i = 0; i < cfg_.dll_pool_size; ++i) {
    env.dll_pool.push_back(b_->File(
        env.host, dll_dir + "lib" + std::to_string(i) + dll_ext, t0));
  }
  const std::string doc_dir =
      is_windows ? "C://Users/user/Documents/" : "/home/user/";
  for (int i = 0; i < cfg_.doc_pool_size; ++i) {
    env.doc_pool.push_back(
        b_->File(env.host, doc_dir + "doc" + std::to_string(i) + ".dat", t0));
  }
  for (int i = 0; i < cfg_.hot_file_count; ++i) {
    env.hot_files.push_back(b_->File(
        env.host,
        is_windows ? "C://Users/user/AppData/INDEX" + std::to_string(i) + ".DAT"
                   : "/var/cache/index" + std::to_string(i) + ".db",
        t0));
  }
  for (int i = 0; i < cfg_.log_file_count; ++i) {
    env.log_files.push_back(b_->File(
        env.host,
        is_windows ? "C://Windows/Logs/svc" + std::to_string(i) + ".log"
                   : "/var/log/svc" + std::to_string(i) + ".log",
        t0));
  }
  for (int i = 0; i < cfg_.config_pool_size; ++i) {
    env.config_pool.push_back(b_->File(
        env.host,
        is_windows ? "C://Windows/System32/config/cfg" + std::to_string(i) +
                         ".ini"
                   : "/etc/conf.d/cfg" + std::to_string(i) + ".conf",
        t0));
  }
  // Registry-hive-like state files: every application session writes its
  // settings/MRU entries into them and reads them back, so they are the
  // ubiquitous mid-sized fan-in hubs real audit logs are full of.
  for (int i = 0; i < 5; ++i) {
    env.registry.push_back(b_->File(
        env.host,
        is_windows ? "C://Windows/System32/config/NTUSER" +
                         std::to_string(i) + ".DAT"
                   : "/var/lib/state/state" + std::to_string(i) + ".db",
        t0));
  }
  return env;
}

void NoiseGenerator::LoadDlls(HostEnv& env, ObjectId proc, TimeMicros t,
                              int n) {
  for (int i = 0; i < n && !env.dll_pool.empty(); ++i) {
    const size_t idx = rng_->Zipf(env.dll_pool.size(), 1.1);
    b_->Read(proc, env.dll_pool[idx], Jitter(t, 2 * kMicrosPerSecond),
             64 * 1024);
  }
}

ObjectId NoiseGenerator::SpawnUserApp(HostEnv& env, std::string_view exename,
                                      TimeMicros t,
                                      const AppActivity& activity) {
  const ObjectId app = b_->StartProcess(env.shell, env.host, exename, t);
  TimeMicros cursor = t + kMicrosPerSecond;
  LoadDlls(env, app, cursor, activity.dll_loads);
  cursor += 5 * kMicrosPerSecond;

  for (int i = 0; i < activity.doc_reads && !env.doc_pool.empty(); ++i) {
    b_->Read(app, env.doc_pool[PickDoc(env)],
             Jitter(cursor, 30 * kMicrosPerSecond), 16 * 1024);
  }
  // Read-only resources (fonts, icons, locale data): never written, so
  // they are leaf nodes — the benign bulk of real audit logs.
  for (int i = 0; i < 12 && !env.static_pool.empty(); ++i) {
    b_->Read(app, env.static_pool[rng_->Uniform(env.static_pool.size())],
             Jitter(cursor, 30 * kMicrosPerSecond), 4096);
  }
  cursor += kMicrosPerMinute;
  for (int i = 0; i < activity.doc_writes && !env.doc_pool.empty(); ++i) {
    // Writes concentrate on popular documents (shared sheets, working
    // sets), so a slice of the doc pool becomes mid-sized fan-in hubs —
    // the fat middle of the dependent-count distribution that makes
    // monolithic history scans block (Table II's 90/95th percentiles).
    b_->Write(app, env.doc_pool[PickDoc(env)],
              Jitter(cursor, 30 * kMicrosPerSecond), 8 * 1024);
  }
  // Apps touch the hot cache files too (high fan-in noise), both writing
  // them and reading them — the read is what drags the hub into other
  // processes' backward closures.
  if (activity.ambient) {
    // Settings and MRU bookkeeping in the registry hives.
    if (!env.registry.empty()) {
      for (int i = 0; i < 2; ++i) {
        b_->Write(app, env.registry[rng_->Uniform(env.registry.size())],
                  Jitter(cursor, kMicrosPerMinute), 512);
      }
      if (rng_->Bernoulli(0.35)) {
        b_->Read(app, env.registry[rng_->Uniform(env.registry.size())],
                 Jitter(cursor, kMicrosPerMinute), 512);
      }
    }
    if (!env.hot_files.empty() && rng_->Bernoulli(0.6)) {
      b_->Write(app, env.hot_files[rng_->Uniform(env.hot_files.size())],
                Jitter(cursor, kMicrosPerMinute), 2048);
    }
    if (!env.hot_files.empty() && rng_->Bernoulli(0.4)) {
      b_->Read(app, env.hot_files[rng_->Uniform(env.hot_files.size())],
               Jitter(cursor, kMicrosPerMinute), 2048);
    }
    // Local services answer the app over IPC (name resolution, settings,
    // notifications): the service hub flows into most app closures.
    if (!env.services.empty() && rng_->Bernoulli(0.35)) {
      b_->Write(env.services[rng_->Uniform(env.services.size())], app,
                Jitter(cursor, kMicrosPerMinute), 512);
    }
  }
  for (int i = 0; i < activity.sockets; ++i) {
    const ObjectId sock = b_->Socket(env.host, env.ip, ExternalIp(rng_), 443,
                                     cursor);
    b_->Connect(app, sock, Jitter(cursor, kMicrosPerMinute), 4096);
    if (rng_->Bernoulli(0.5)) {
      b_->Accept(app, sock, Jitter(cursor + kMicrosPerSecond,
                                   kMicrosPerMinute),
                 32 * 1024);
    }
  }
  if (activity.helper) {
    // Write-through helper: takes input from the app, returns results to
    // it, and touches nothing else (paper Section IV-C1).
    const ObjectId helper = b_->StartProcess(
        app, env.host, env.is_windows ? "conhost.exe" : "awk", cursor);
    b_->Write(helper, app, cursor + 2 * kMicrosPerSecond, 1024);
  }
  return app;
}

void NoiseGenerator::GenerateBackground(HostEnv& env, TimeMicros from,
                                        TimeMicros to) {
  const int days = static_cast<int>((to - from) / kMicrosPerDay) + 1;
  for (int day = 0; day < days; ++day) {
    const TimeMicros day_start = from + day * kMicrosPerDay;
    if (day_start >= to) break;

    // File-explorer metadata scans, all day long: when anyone opens a
    // folder, the explorer reads every file in it (paper Section IV-D,
    // case A2). This is the canonical dependency-explosion source.
    for (int s = 0; s < cfg_.explorer_scans_per_day; ++s) {
      const TimeMicros t = Jitter(day_start, kMicrosPerDay);
      if (t >= to) continue;
      for (int i = 0; i < cfg_.explorer_scan_width && !env.doc_pool.empty();
           ++i) {
        // Popularity-skewed: the folders people open are the folders
        // people edit, so the scanned files are mostly the
        // heavily-written ones — explosion interiors are hub-on-hub.
        b_->Read(env.shell, env.doc_pool[PickDoc(env, -0.1)],
                 Jitter(t, kMicrosPerMinute), 512);
      }
      if (!env.hot_files.empty()) {
        b_->Write(env.shell,
                  env.hot_files[rng_->Uniform(env.hot_files.size())],
                  Jitter(t, kMicrosPerMinute), 1024);
      }
    }

    // Service churn: periodic log/telemetry writes.
    for (int s = 0; s < cfg_.service_writes_per_day; ++s) {
      const TimeMicros t = Jitter(day_start, kMicrosPerDay);
      if (t >= to || env.services.empty() || env.log_files.empty()) continue;
      const ObjectId svc = env.services[rng_->Uniform(env.services.size())];
      b_->Write(svc, env.log_files[rng_->Uniform(env.log_files.size())], t,
                512);
      if (rng_->Bernoulli(0.4) && !env.hot_files.empty()) {
        b_->Write(svc, env.hot_files[rng_->Uniform(env.hot_files.size())],
                  Jitter(t, kMicrosPerSecond), 256);
      }
    }

    // Services periodically re-read their configuration: long-lived
    // service processes accumulate hundreds of in-flows over the window
    // and become the mid-sized hubs of the dependent-count distribution.
    for (const ObjectId svc : env.services) {
      for (int s = 0; s < cfg_.service_config_reads_per_day; ++s) {
        const TimeMicros t = Jitter(day_start, kMicrosPerDay);
        if (t >= to || env.config_pool.empty()) continue;
        b_->Read(svc, env.config_pool[rng_->Uniform(env.config_pool.size())],
                 t, 1024);
      }
    }

    // User sessions in business hours (bursts: temporal locality).
    for (int s = 0; s < cfg_.user_sessions_per_day; ++s) {
      const TimeMicros t =
          Jitter(day_start + 9 * kMicrosPerHour, 8 * kMicrosPerHour);
      if (t >= to) continue;
      AppActivity act;
      act.dll_loads = cfg_.dlls_per_process;
      act.doc_reads = 2 + static_cast<int>(rng_->Uniform(4));
      act.doc_writes = 1 + static_cast<int>(rng_->Uniform(4));
      act.sockets = static_cast<int>(rng_->Uniform(3));
      act.helper = rng_->Bernoulli(0.3);
      const char* exe =
          env.is_windows
              ? kWindowsApps[rng_->Uniform(std::size(kWindowsApps))]
              : kLinuxApps[rng_->Uniform(std::size(kLinuxApps))];
      SpawnUserApp(env, exe, t, act);
    }
  }
}

void NoiseGenerator::CrossHostChatter(std::vector<HostEnv>& hosts,
                                      TimeMicros from, TimeMicros to) {
  if (hosts.size() < 2) return;
  const int days = static_cast<int>((to - from) / kMicrosPerDay) + 1;
  for (int day = 0; day < days; ++day) {
    const TimeMicros day_start = from + day * kMicrosPerDay;
    if (day_start >= to) break;
    const int conns =
        cfg_.connections_per_day * static_cast<int>(hosts.size());
    for (int c = 0; c < conns; ++c) {
      const size_t a = rng_->Uniform(hosts.size());
      size_t b = rng_->Uniform(hosts.size());
      if (b == a) b = (b + 1) % hosts.size();
      HostEnv& client = hosts[a];
      HostEnv& server = hosts[b];
      const TimeMicros t = Jitter(day_start, kMicrosPerDay);
      if (t >= to || client.services.empty() || server.services.empty())
        continue;
      const ObjectId sock =
          b_->Socket(client.host, client.ip, server.ip, 445, t);
      const ObjectId client_proc =
          client.services[rng_->Uniform(client.services.size())];
      const ObjectId server_proc =
          server.services[rng_->Uniform(server.services.size())];
      b_->Connect(client_proc, sock, t, 8 * 1024);
      b_->Accept(server_proc, sock, t + kMicrosPerSecond, 8 * 1024);
      // Occasionally the transferred data lands in a file: cross-host
      // provenance chains.
      if (rng_->Bernoulli(0.3) && !server.doc_pool.empty()) {
        b_->Write(server_proc,
                  server.doc_pool[rng_->Uniform(server.doc_pool.size())],
                  t + 2 * kMicrosPerSecond, 8 * 1024);
      }
    }
  }
}

}  // namespace aptrace::workload
