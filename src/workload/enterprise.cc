#include "workload/enterprise.h"

#include <string>

#include "bdl/analyzer.h"
#include "util/rng.h"
#include "workload/noise.h"
#include "workload/trace_builder.h"

namespace aptrace::workload {

std::unique_ptr<EventStore> BuildEnterpriseTrace(const TraceConfig& config) {
  EventStoreOptions store_options;
  store_options.backend = config.backend;
  store_options.shards = config.shards;
  if (config.store_tweak) config.store_tweak(store_options);
  auto store = std::make_unique<EventStore>(store_options);
  TraceBuilder builder(store.get());
  Rng rng(config.seed);
  NoiseGenerator noise(&builder, config, &rng);

  std::vector<HostEnv> hosts;
  hosts.reserve(config.num_hosts);
  for (int i = 0; i < config.num_hosts; ++i) {
    char name[32];
    std::snprintf(name, sizeof(name), "host%02d", i + 1);
    // Mix of Windows desktops and Linux servers, as in the paper's fleet.
    const bool is_windows = (i % 3) != 2;
    hosts.push_back(noise.SetupHost(name, is_windows));
  }

  const TimeMicros from = config.start_time;
  const TimeMicros to = config.end_time();
  for (HostEnv& env : hosts) noise.GenerateBackground(env, from, to);
  noise.CrossHostChatter(hosts, from, to);

  // Deliberately busy services: every host funnels telemetry into a
  // central collector, and a file server accepts bulk traffic. Their
  // dependent sets grow into the tens of thousands — the dependency
  // explosion tail of Figure 4 / Table II.
  if (!hosts.empty()) {
    HostEnv& collector_host = hosts[0];
    const ObjectId collector =
        builder.Proc(collector_host.host, "telemetryd", from);
    const ObjectId collector_db = builder.File(
        collector_host.host, "/srv/telemetry/metrics.db", from);
    for (const HostEnv& env : hosts) {
      // Frequent small reports: several per host per day.
      // High-frequency telemetry: the collector becomes a mega-hub
      // (tens of thousands of dependents), like the busiest services
      // of a real fleet.
      const int reports = config.days * 800;
      for (int r = 0; r < reports; ++r) {
        const TimeMicros t =
            from + static_cast<DurationMicros>(
                       rng.Uniform(static_cast<uint64_t>(to - from)));
        const ObjectId sock = builder.Socket(env.host, env.ip,
                                             collector_host.ip, 4317, t);
        if (env.services.empty()) continue;
        const ObjectId reporter =
            env.services[rng.Uniform(env.services.size())];
        builder.Connect(reporter, sock, t, 2048);
        builder.Accept(collector, sock, t + kMicrosPerSecond, 2048);
        if (rng.Bernoulli(0.5)) {
          builder.Write(collector, collector_db, t + 2 * kMicrosPerSecond,
                        2048);
        }
      }
    }
  }

  store->Seal();
  return store;
}

std::vector<Event> SampleAnomalyEvents(const EventStore& store, size_t n,
                                       uint64_t seed) {
  std::vector<Event> out;
  if (store.NumEvents() == 0) return out;
  Rng rng(seed);
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(store.Get(rng.Uniform(store.NumEvents())));
  }
  return out;
}

bdl::TrackingSpec GenericSpecFor(const EventStore& store, const Event& alert) {
  const ObjectType dest_type = store.catalog().Get(alert.FlowDest()).type();
  std::string script = "backward ";
  script += ObjectTypeName(dest_type);
  script += " x[] -> *";
  auto spec = bdl::CompileBdl(script);
  // The script above is statically valid; a failure here is a programming
  // error surfaced loudly in tests.
  return spec.ok() ? std::move(spec.value()) : bdl::TrackingSpec{};
}

}  // namespace aptrace::workload
