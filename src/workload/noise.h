#ifndef APTRACE_WORKLOAD_NOISE_H_
#define APTRACE_WORKLOAD_NOISE_H_

#include <string>
#include <vector>

#include "util/rng.h"
#include "workload/trace_builder.h"
#include "workload/trace_config.h"

namespace aptrace::workload {

/// Per-host fixture objects shared by the background generator and the
/// attack injectors (attack processes load the same dlls, are spawned by
/// the same explorer, and so on — that is what entangles the attack chain
/// with benign noise and causes dependency explosion).
struct HostEnv {
  HostId host = kInvalidHostId;
  std::string name;
  std::string ip;
  bool is_windows = true;

  ObjectId shell = kInvalidObjectId;  // explorer.exe / init: spawns apps
  std::vector<ObjectId> services;     // svchost.exe / systemd services
  std::vector<ObjectId> dll_pool;     // shared libraries (read-only noise)
  std::vector<ObjectId> doc_pool;     // user documents
  std::vector<ObjectId> hot_files;    // INDEX.DAT-like high-fan-in files
  std::vector<ObjectId> log_files;
  std::vector<ObjectId> config_pool;  // config files services re-read
  std::vector<ObjectId> registry;     // registry-hive-like state files every
                                      // app session writes and reads
  std::vector<ObjectId> static_pool;  // read-only resources (leaf nodes)
};

/// Generates the benign enterprise background this paper's evaluation sits
/// on: file-explorer metadata scans, service log churn, bursty user app
/// sessions with dll fan-out, helper (write-through) processes, and
/// cross-host connections. Deterministic given the Rng.
class NoiseGenerator {
 public:
  /// Activity profile for one user application session.
  struct AppActivity {
    int dll_loads = 12;
    int doc_reads = 3;
    int doc_writes = 1;
    int sockets = 1;
    bool helper = false;   // spawn a write-through helper child
    bool ambient = true;   // touch hub files / receive service IPC; attack
                           // injectors disable this for chain processes
  };

  NoiseGenerator(TraceBuilder* builder, const TraceConfig& config, Rng* rng)
      : b_(builder), cfg_(config), rng_(rng) {}

  /// Creates the host fixtures (shell, services, file pools).
  HostEnv SetupHost(const std::string& name, bool is_windows);

  /// Emits the host's background activity over [from, to).
  void GenerateBackground(HostEnv& env, TimeMicros from, TimeMicros to);

  /// Spawns a user application under the host's shell and plays out an
  /// activity burst starting at `t`. Returns the new process, usable by
  /// attack injectors as a realistic launch point. Events spread over a
  /// few minutes after `t`.
  ObjectId SpawnUserApp(HostEnv& env, std::string_view exename, TimeMicros t,
                        const AppActivity& activity);

  /// Emits benign cross-host chatter among `hosts` over [from, to).
  void CrossHostChatter(std::vector<HostEnv>& hosts, TimeMicros from,
                        TimeMicros to);

  /// Library loads: the process reads `n` dlls drawn Zipf-style from the
  /// host pool (a few dlls are extremely hot).
  void LoadDlls(HostEnv& env, ObjectId proc, TimeMicros t, int n);

 private:
  TimeMicros Jitter(TimeMicros base, DurationMicros spread);

  /// Picks a document index with the configured popularity skew (plus
  /// `skew_delta`); uniform when the effective skew is <= 0.
  size_t PickDoc(const HostEnv& env, double skew_delta = 0.0);

  TraceBuilder* b_;
  TraceConfig cfg_;
  Rng* rng_;
};

}  // namespace aptrace::workload

#endif  // APTRACE_WORKLOAD_NOISE_H_
