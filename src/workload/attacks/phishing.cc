#include <string>
#include <vector>

#include "workload/attacks/attack_common.h"
#include "workload/scenario.h"

namespace aptrace::workload {

using internal_attacks::CaseEnv;
using internal_attacks::Finalize;
using internal_attacks::InitCase;
using internal_attacks::T;

/// A1 — Phishing Email (paper Section II & IV-D, CVE-2015-1701).
///
/// outlook.exe receives a phishing mail and writes the malicious Excel
/// attachment; excel.exe opens it and drops java.exe; java.exe runs
/// cmd.exe -> findstr.exe to scan the home directory for credentials
/// (slowly, over two days), injects into notepad.exe to dump the internal
/// database with escalated privileges, and finally exfiltrates to an
/// external IP — the anomaly alert backtracking starts from.
BuiltCase BuildPhishingEmail(const TraceConfig& base_config) {
  TraceConfig config = base_config;
  config.start_time = T("03/26/2019");
  config.days = 32;

  CaseEnv env = InitCase(config, {{"desktop7", true},
                                  {"dbserver1", true},
                                  {"desktop8", true}});
  TraceBuilder& b = *env.builder;
  NoiseGenerator& noise = *env.noise;
  Rng& rng = *env.rng;
  HostEnv& victim = env.host(0);
  HostEnv& dbhost = env.host(1);

  // Home directory contents findstr will crawl; a slice of them is
  // written by a backup service during the window, extending the benign
  // dependency chains one more layer.
  std::vector<ObjectId> home_files;
  const int kHomeFiles = 2400;
  for (int i = 0; i < kHomeFiles; ++i) {
    home_files.push_back(b.File(
        victim.host, "C://Users/victim/home/f" + std::to_string(i) + ".txt",
        config.start_time));
  }
  const ObjectId backupd = b.Proc(victim.host, "backupd.exe",
                                  config.start_time);
  for (int i = 0; i < 400; ++i) {
    const TimeMicros t = config.start_time +
                         static_cast<DurationMicros>(rng.Uniform(
                             20ULL * kMicrosPerDay));
    b.Write(backupd, home_files[rng.Uniform(home_files.size())], t, 4096);
  }

  // --- Step 1: the phishing mail arrives.
  NoiseGenerator::AppActivity mail_act;
  mail_act.dll_loads = 16;
  mail_act.doc_reads = 2;
  mail_act.doc_writes = 1;
  mail_act.sockets = 0;
  mail_act.ambient = false;
  const ObjectId outlook =
      noise.SpawnUserApp(victim, "outlook.exe", T("04/24/2019:09:30:00"),
                         mail_act);
  const ObjectId mail_sock = b.Socket(victim.host, victim.ip, "198.51.100.9",
                                      993, T("04/24/2019:09:58:00"));
  b.Connect(outlook, mail_sock, T("04/24/2019:09:58:00"), 2048);
  b.Accept(outlook, mail_sock, T("04/24/2019:09:58:20"), 1900 * 1024);
  const ObjectId attach = b.File(
      victim.host, "C://Users/victim/AppData/Temp/quarterly_report.xls",
      T("04/24/2019:09:59:00"));
  b.Write(outlook, attach, T("04/24/2019:09:59:00"), 1800 * 1024);

  // --- Step 2: the victim opens the attachment; the macro drops java.exe.
  const ObjectId excel = b.StartProcess(outlook, victim.host, "excel.exe",
                                        T("04/24/2019:10:03:00"));
  noise.LoadDlls(victim, excel, T("04/24/2019:10:03:05"), 18);
  b.Read(excel, attach, T("04/24/2019:10:03:30"), 1800 * 1024);
  const ObjectId java_file =
      b.File(victim.host, "C://Users/victim/Documents/java.exe",
             T("04/24/2019:10:04:10"));
  b.Write(excel, java_file, T("04/24/2019:10:04:10"), 300 * 1024);
  const ObjectId java = b.StartProcess(excel, victim.host, "java.exe",
                                       T("04/24/2019:10:05:00"));
  b.Read(java, java_file, T("04/24/2019:10:05:01"), 300 * 1024);
  noise.LoadDlls(victim, java, T("04/24/2019:10:05:05"), 10);

  // --- Step 3: credential hunt. findstr.exe hibernates between batches to
  // stay under the anomaly detectors' radar (paper Section II).
  const ObjectId cmd = b.StartProcess(java, victim.host, "cmd.exe",
                                      T("04/24/2019:10:06:00"));
  const ObjectId findstr = b.StartProcess(cmd, victim.host, "findstr.exe",
                                          T("04/24/2019:10:07:00"));
  const TimeMicros scan_begin = T("04/24/2019:10:07:30");
  const TimeMicros scan_end = T("04/26/2019:12:00:00");
  for (size_t i = 0; i < home_files.size(); ++i) {
    const TimeMicros t =
        scan_begin + static_cast<DurationMicros>(
                         (scan_end - scan_begin) *
                         (static_cast<double>(i) / home_files.size()));
    b.Read(findstr, home_files[i], t, 4096);
  }
  // findstr also sweeps part of the shared document pool.
  for (int i = 0; i < 450 && !victim.doc_pool.empty(); ++i) {
    const TimeMicros t = scan_begin + static_cast<DurationMicros>(rng.Uniform(
                                          static_cast<uint64_t>(
                                              scan_end - scan_begin)));
    b.Read(findstr, victim.doc_pool[rng.Uniform(victim.doc_pool.size())], t,
           4096);
  }
  const ObjectId findstr_out =
      b.File(victim.host, "C://Users/victim/AppData/Temp/findstr.out",
             T("04/26/2019:12:30:00"));
  b.Write(findstr, findstr_out, T("04/26/2019:12:30:00"), 5 * 1024 * 1024);
  b.Read(java, findstr_out, T("04/26/2019:13:00:00"), 5 * 1024 * 1024);

  // --- Step 4: privilege escalation through notepad.exe (CVE-2015-1701)
  // and the database dump.
  NoiseGenerator::AppActivity pad_act;
  pad_act.dll_loads = 12;
  pad_act.doc_reads = 1;
  pad_act.doc_writes = 0;
  pad_act.sockets = 0;
  pad_act.ambient = false;
  const ObjectId notepad =
      noise.SpawnUserApp(victim, "notepad.exe", T("04/26/2019:15:40:00"),
                         pad_act);
  b.Emit(ActionType::kInject, java, notepad, T("04/26/2019:15:50:00"),
         200 * 1024);
  const ObjectId sqlservr = b.Proc(dbhost.host, "sqlservr.exe",
                                   config.start_time);
  const ObjectId db_sock = b.Socket(victim.host, victim.ip, dbhost.ip, 1433,
                                    T("04/26/2019:16:10:00"));
  b.Connect(notepad, db_sock, T("04/26/2019:16:10:00"), 4096);
  b.Write(sqlservr, db_sock, T("04/26/2019:16:11:00"), 55 * 1024 * 1024);
  b.Accept(notepad, db_sock, T("04/26/2019:16:12:00"), 55 * 1024 * 1024);
  b.Write(notepad, java, T("04/26/2019:16:20:00"), 55 * 1024 * 1024);

  // --- Step 5: exfiltration — the anomaly alert.
  const ObjectId ext_sock = b.Socket(victim.host, victim.ip,
                                     "185.220.101.45", 443,
                                     T("04/26/2019:16:31:16"));
  const EventId alert = b.Connect(java, ext_sock, T("04/26/2019:16:31:16"),
                                  56 * 1024 * 1024);

  AttackScenario scenario;
  scenario.name = "phishing_email";
  scenario.title = "Phishing Email";
  scenario.description =
      "Phishing mail drops a malicious Excel attachment; the dropped "
      "java.exe scans credentials via findstr.exe, escalates through "
      "notepad.exe, dumps the internal database, and exfiltrates.";
  scenario.alert_event = alert;
  scenario.primary_host = "desktop7";
  scenario.ground_truth = {outlook, excel, java, attach, mail_sock};
  scenario.penetration_point = mail_sock;
  scenario.num_heuristics = 2;

  const std::string header =
      "from \"03/26/2019\" to \"04/27/2019\"\n"
      "backward ip alert[dst_ip = \"185.220.101.45\" and subject_name = "
      "\"java.exe\" and event_time = \"04/26/2019:16:31:16\" and action_type "
      "= \"connect\"] -> *\n";
  const std::string footer = "output = \"a1_result.dot\"\n";
  // v1: unguided (paper Program 4).
  scenario.bdl_scripts.push_back(header + footer);
  // v2: exclude dll files (paper Program 5).
  scenario.bdl_scripts.push_back(
      header + "where file.path != \"*.dll\" and time < 10mins\n" + footer);
  // v3: also exclude findstr.exe (paper Program 6).
  scenario.bdl_scripts.push_back(
      header +
      "where file.path != \"*.dll\" and proc.exename != \"findstr.exe\" and "
      "time < 10mins\n" +
      footer);

  return Finalize(std::move(env), std::move(scenario));
}

}  // namespace aptrace::workload
