#include <string>
#include <vector>

#include "workload/attacks/attack_common.h"
#include "workload/scenario.h"

namespace aptrace::workload {

using internal_attacks::CaseEnv;
using internal_attacks::Finalize;
using internal_attacks::InitCase;
using internal_attacks::T;

/// A2 — Malicious Excel Macro (paper Section IV-D, CVE-2008-0081,
/// Figure 5).
///
/// The user of Host 1 downloads data.xls through the browser; its macro
/// drops java.exe, which connects to the SQL server on Host 2 and runs a
/// batch script through the SQL shell interface; the script drops and
/// launches the qfvkl.exe backdoor. The anomaly alert is sqlservr.exe
/// starting cmd.exe.
BuiltCase BuildExcelMacro(const TraceConfig& base_config) {
  TraceConfig config = base_config;
  config.start_time = T("03/03/2019");
  config.days = 32;

  CaseEnv env = InitCase(config, {{"host1", true}, {"host2", true}});
  TraceBuilder& b = *env.builder;
  NoiseGenerator& noise = *env.noise;
  Rng& rng = *env.rng;
  HostEnv& host1 = env.host(0);
  HostEnv& host2 = env.host(1);

  // Long-lived SQL server with a month of benign client traffic — the
  // dependency-explosion source once backtracking reaches sqlservr.exe.
  const ObjectId sqlservr = b.Proc(host2.host, "sqlservr.exe",
                                   config.start_time);
  noise.LoadDlls(host2, sqlservr, config.start_time + kMicrosPerMinute, 20);
  const int kBenignClients = 2200;
  for (int i = 0; i < kBenignClients; ++i) {
    const TimeMicros t = config.start_time +
                         static_cast<DurationMicros>(rng.Uniform(
                             31ULL * kMicrosPerDay));
    const std::string client_ip =
        "10.2." + std::to_string(rng.Uniform(8)) + "." +
        std::to_string(rng.Uniform(250) + 1);
    const ObjectId sock = b.Socket(host2.host, client_ip, host2.ip, 1433, t);
    b.Accept(sqlservr, sock, t, 16 * 1024);
  }

  // --- Step 1: drive-by download through the browser.
  NoiseGenerator::AppActivity browse_act;
  browse_act.dll_loads = 15;
  browse_act.doc_reads = 1;
  browse_act.doc_writes = 0;
  browse_act.sockets = 2;
  browse_act.ambient = false;
  const ObjectId iexplorer =
      noise.SpawnUserApp(host1, "iexplorer.exe", T("04/01/2019:11:15:00"),
                         browse_act);
  const ObjectId web_sock = b.Socket(host1.host, host1.ip, "172.16.157.129",
                                     443, T("04/01/2019:11:21:00"));
  b.Connect(iexplorer, web_sock, T("04/01/2019:11:21:00"), 2048);
  b.Accept(iexplorer, web_sock, T("04/01/2019:11:21:10"), 900 * 1024);
  const ObjectId cache_file = b.File(
      host1.host, "C://Users/user/AppData/HTTPS0_172.16.157.129.XLS",
      T("04/01/2019:11:22:00"));
  b.Write(iexplorer, cache_file, T("04/01/2019:11:22:00"), 900 * 1024);
  if (!host1.hot_files.empty()) {
    b.Write(iexplorer, host1.hot_files[0], T("04/01/2019:11:22:10"), 4096);
  }
  const ObjectId data_xls = b.File(host1.host,
                                   "C://Users/user/Downloads/data.xls",
                                   T("04/01/2019:11:23:00"));
  b.Write(iexplorer, data_xls, T("04/01/2019:11:23:00"), 900 * 1024);
  // The File Explorer later lists the Downloads folder (metadata reads),
  // entangling explorer.exe with the attack chain (paper: removed with a
  // heuristic after inspection).
  b.Read(host1.shell, data_xls, T("04/02/2019:09:38:00"), 512);

  // --- Step 2: the macro runs and drops java.exe.
  const ObjectId excel = b.StartProcess(host1.shell, host1.host, "excel.exe",
                                        T("04/02/2019:09:40:00"));
  noise.LoadDlls(host1, excel, T("04/02/2019:09:40:05"), 18);
  b.Read(excel, data_xls, T("04/02/2019:09:40:30"), 900 * 1024);
  const ObjectId java_file = b.File(host1.host,
                                    "C://Users/user/Documents/java.exe",
                                    T("04/02/2019:09:42:00"));
  b.Write(excel, java_file, T("04/02/2019:09:42:00"), 250 * 1024);
  const ObjectId java = b.StartProcess(excel, host1.host, "java.exe",
                                       T("04/02/2019:09:45:00"));
  b.Read(java, java_file, T("04/02/2019:09:45:01"), 250 * 1024);
  noise.LoadDlls(host1, java, T("04/02/2019:09:45:05"), 10);

  // --- Step 3: lateral movement into the SQL server's shell interface.
  const ObjectId sql_sock = b.Socket(host1.host, host1.ip, host2.ip, 1433,
                                     T("04/03/2019:11:30:00"));
  b.Connect(java, sql_sock, T("04/03/2019:11:30:00"), 64 * 1024);
  b.Accept(sqlservr, sql_sock, T("04/03/2019:11:31:00"), 64 * 1024);

  // --- Step 4: the alert — sqlservr.exe abnormally starts cmd.exe.
  const ObjectId cmd = b.Proc(host2.host, "cmd.exe",
                              T("04/03/2019:11:34:45"));
  const EventId alert = b.Emit(ActionType::kStart, sqlservr, cmd,
                               T("04/03/2019:11:34:45"));

  // --- Step 5: the backdoor drop on Host 2.
  const ObjectId vbs = b.File(host2.host, "C://Windows/Temp/QFTHV.VBS",
                              T("04/03/2019:11:35:10"));
  b.Write(cmd, vbs, T("04/03/2019:11:35:10"), 4096);
  const ObjectId cscript = b.StartProcess(cmd, host2.host, "cscript.exe",
                                          T("04/03/2019:11:35:40"));
  b.Read(cscript, vbs, T("04/03/2019:11:35:41"), 4096);
  const ObjectId qfvkl_file = b.File(host2.host,
                                     "C://Windows/Temp/qfvkl.exe",
                                     T("04/03/2019:11:36:20"));
  b.Write(cscript, qfvkl_file, T("04/03/2019:11:36:20"), 180 * 1024);
  const ObjectId qfvkl = b.StartProcess(cscript, host2.host, "qfvkl.exe",
                                        T("04/03/2019:11:37:00"));
  b.Read(qfvkl, qfvkl_file, T("04/03/2019:11:37:01"), 180 * 1024);

  AttackScenario scenario;
  scenario.name = "excel_macro";
  scenario.title = "Malicious Excel Macro";
  scenario.description =
      "A malicious Excel macro makes the SQL server run the command line "
      "abnormally; the dropped backdoor lands on an internal host.";
  scenario.alert_event = alert;
  scenario.primary_host = "host2";
  scenario.ground_truth = {iexplorer, data_xls, excel, java, sql_sock,
                           sqlservr, web_sock};
  scenario.penetration_point = web_sock;
  scenario.num_heuristics = 3;

  const std::string header =
      "from \"03/03/2019\" to \"04/04/2019\"\n"
      "backward proc p[exename = \"cmd.exe\" and event_time = "
      "\"04/03/2019:11:34:45\" and action_type = \"start\" and subject_name "
      "= \"sqlservr.exe\"] -> *\n";
  const std::string chain_v3 =
      "from \"03/03/2019\" to \"04/04/2019\"\n"
      "backward proc p[exename = \"cmd.exe\" and event_time = "
      "\"04/03/2019:11:34:45\" and action_type = \"start\" and subject_name "
      "= \"sqlservr.exe\"] -> ip i[dst_ip = \"" + host2.ip +
      "\" and src_ip = \"" + host1.ip +
      "\" and subject_name = \"java.exe\"] -> *\n";
  const std::string footer = "output = \"a2_result.dot\"\n";

  // v1: unguided (paper Program 7).
  scenario.bdl_scripts.push_back(header + footer);
  // v2: exclude dll files (paper Program 8).
  scenario.bdl_scripts.push_back(
      header + "where file.path != \"*.dll\" and time < 10mins\n" + footer);
  // v3: focus on the java.exe socket as an intermediate point (Program 9).
  scenario.bdl_scripts.push_back(
      chain_v3 + "where file.path != \"*.dll\" and time < 10mins\n" + footer);
  // v4: also exclude the Windows File Explorer (paper Program 10).
  scenario.bdl_scripts.push_back(
      chain_v3 +
      "where file.path != \"*.dll\" and proc.exename != \"explorer.exe\" and "
      "time < 10mins\n" +
      footer);

  return Finalize(std::move(env), std::move(scenario));
}

}  // namespace aptrace::workload
