#include "workload/scenario.h"

namespace aptrace::workload {

std::vector<std::string> AttackCaseNames() {
  return {"phishing_email", "excel_macro", "shellshock", "cheating_student",
          "wget_unzip_gcc"};
}

bool ChainRecovered(const DepGraph& graph, const AttackScenario& scenario) {
  if (scenario.penetration_point == kInvalidObjectId ||
      !graph.HasNode(scenario.penetration_point)) {
    return false;
  }
  for (ObjectId id : scenario.ground_truth) {
    if (!graph.HasNode(id)) return false;
  }
  return true;
}

Result<BuiltCase> BuildAttackCase(std::string_view name,
                                  const TraceConfig& config) {
  if (name == "phishing_email") return BuildPhishingEmail(config);
  if (name == "excel_macro") return BuildExcelMacro(config);
  if (name == "shellshock") return BuildShellShock(config);
  if (name == "cheating_student") return BuildCheatingStudent(config);
  if (name == "wget_unzip_gcc") return BuildWgetUnzipGcc(config);
  return Status::NotFound("unknown attack case '" + std::string(name) +
                          "'; known cases: phishing_email, excel_macro, "
                          "shellshock, cheating_student, wget_unzip_gcc");
}

}  // namespace aptrace::workload
