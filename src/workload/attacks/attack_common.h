#ifndef APTRACE_WORKLOAD_ATTACKS_ATTACK_COMMON_H_
#define APTRACE_WORKLOAD_ATTACKS_ATTACK_COMMON_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "util/string_util.h"
#include "workload/noise.h"
#include "workload/scenario.h"
#include "workload/trace_builder.h"

namespace aptrace::workload::internal_attacks {

/// Everything an attack injector needs: a store under construction, the
/// builder/noise facade over it, and the prepared hosts with their
/// background activity already emitted.
struct CaseEnv {
  TraceConfig config;
  std::unique_ptr<EventStore> store;
  std::unique_ptr<TraceBuilder> builder;
  std::unique_ptr<Rng> rng;
  std::unique_ptr<NoiseGenerator> noise;
  std::vector<HostEnv> hosts;

  HostEnv& host(size_t i) { return hosts[i]; }
};

/// Sets up `hosts` (name, is_windows) on a fresh store, generates each
/// host's background over the config window plus cross-host chatter.
CaseEnv InitCase(TraceConfig config,
                 const std::vector<std::pair<std::string, bool>>& hosts);

/// Parses a BDL time literal; aborts on malformed input (attack authoring
/// is compile-time-fixed strings).
TimeMicros T(const char* bdl_time);

/// Seals the store and assembles the BuiltCase.
BuiltCase Finalize(CaseEnv env, AttackScenario scenario);

}  // namespace aptrace::workload::internal_attacks

#endif  // APTRACE_WORKLOAD_ATTACKS_ATTACK_COMMON_H_
