#include <string>
#include <vector>

#include "workload/attacks/attack_common.h"
#include "workload/scenario.h"

namespace aptrace::workload {

using internal_attacks::CaseEnv;
using internal_attacks::Finalize;
using internal_attacks::InitCase;
using internal_attacks::T;

/// A3 — Shell Shock (paper Section IV-D, CVE-2014-6271).
///
/// An attacker exploits Apache's CGI environment handling to spawn a bash
/// shell from httpd; bash harvests credential files and stages the loot in
/// /tmp, and httpd itself uploads it back over a connection to the
/// attacker. The alert is httpd's outbound connection to the attacker IP.
BuiltCase BuildShellShock(const TraceConfig& base_config) {
  TraceConfig config = base_config;
  config.start_time = T("03/25/2019");
  config.days = 27;

  CaseEnv env = InitCase(config, {{"websrv1", false}, {"client-pool", false}});
  TraceBuilder& b = *env.builder;
  NoiseGenerator& noise = *env.noise;
  Rng& rng = *env.rng;
  HostEnv& web = env.host(0);

  // Apache with a month of benign request traffic: each request is a
  // socket flowing into httpd plus served-content reads and a log write —
  // tens of thousands of dependents once backtracking reaches httpd.
  const ObjectId httpd = b.Proc(web.host, "httpd", config.start_time);
  noise.LoadDlls(web, httpd, config.start_time + kMicrosPerMinute, 16);
  std::vector<ObjectId> www_pool;
  for (int i = 0; i < 420; ++i) {
    www_pool.push_back(b.File(web.host,
                              "/var/www/html/page" + std::to_string(i) +
                                  ".html",
                              config.start_time));
  }
  const ObjectId access_log =
      b.File(web.host, "/var/log/httpd/access.log", config.start_time);
  const int kRequests = 9000;
  for (int i = 0; i < kRequests; ++i) {
    const TimeMicros t = config.start_time +
                         static_cast<DurationMicros>(rng.Uniform(
                             26ULL * kMicrosPerDay));
    const std::string client_ip =
        "10.3." + std::to_string(rng.Uniform(16)) + "." +
        std::to_string(rng.Uniform(250) + 1);
    const ObjectId sock = b.Socket(web.host, client_ip, web.ip, 80, t);
    b.Accept(httpd, sock, t, 2048);
    if (rng.Bernoulli(0.4)) {
      b.Read(httpd, www_pool[rng.Zipf(www_pool.size(), 1.0)],
             t + kMicrosPerSecond, 16 * 1024);
    }
    if (rng.Bernoulli(0.5)) {
      b.Write(httpd, access_log, t + kMicrosPerSecond, 256);
    }
  }

  // --- The exploit request, five days before the exfiltration (the
  // implant lies low and harvests slowly to stay under the anomaly
  // detectors' radar).
  const ObjectId attack_sock = b.Socket(web.host, "198.18.77.5", web.ip, 80,
                                        T("04/15/2019:03:40:00"));
  b.Accept(httpd, attack_sock, T("04/15/2019:03:40:00"), 4096);
  const ObjectId bash = b.StartProcess(httpd, web.host, "bash",
                                       T("04/15/2019:03:40:30"));

  // --- Credential harvest, spread over the following days.
  std::vector<ObjectId> secrets;
  secrets.push_back(b.File(web.host, "/etc/passwd", config.start_time));
  secrets.push_back(b.File(web.host, "/etc/shadow", config.start_time));
  for (int i = 0; i < 6; ++i) {
    secrets.push_back(b.File(web.host,
                             "/home/ops/secrets/key" + std::to_string(i) +
                                 ".pem",
                             config.start_time));
  }
  TimeMicros t = T("04/15/2019:04:10:00");
  for (ObjectId s : secrets) {
    b.Read(bash, s, t, 8 * 1024);
    t += 14 * kMicrosPerHour;  // hibernating between batches
  }
  const ObjectId stolen = b.File(web.host, "/tmp/.cache_stolen",
                                 T("04/19/2019:23:50:00"));
  b.Write(bash, stolen, T("04/19/2019:23:50:00"), 2 * 1024 * 1024);

  // --- Upload through Apache: httpd reads the staged loot and ships it.
  b.Read(httpd, stolen, T("04/20/2019:02:14:20"), 2 * 1024 * 1024);
  const ObjectId exfil_sock = b.Socket(web.host, web.ip, "198.18.77.5", 443,
                                       T("04/20/2019:02:15:40"));
  const EventId alert = b.Connect(httpd, exfil_sock,
                                  T("04/20/2019:02:15:40"),
                                  2 * 1024 * 1024 + 128 * 1024);

  AttackScenario scenario;
  scenario.name = "shellshock";
  scenario.title = "Shell Shock";
  scenario.description =
      "Shell Shock vulnerability of Apache executes a bash, steals "
      "sensitive data, and uploads it through Apache.";
  scenario.alert_event = alert;
  scenario.primary_host = "websrv1";
  scenario.ground_truth = {httpd, bash, stolen, attack_sock};
  scenario.penetration_point = attack_sock;
  scenario.num_heuristics = 2;

  const std::string header =
      "from \"03/25/2019\" to \"04/21/2019\"\n"
      "backward ip alert[dst_ip = \"198.18.77.5\" and subject_name = "
      "\"httpd\" and event_time = \"04/20/2019:02:15:40\" and action_type = "
      "\"connect\"] -> *\n";
  const std::string footer = "output = \"a3_result.dot\"\n";

  // v1: unguided.
  scenario.bdl_scripts.push_back(header + footer);
  // v2: exclude served content and logs (benign web-server churn).
  scenario.bdl_scripts.push_back(
      header +
      "where file.path != \"/var/www/*\" and file.path != \"*.log\" and time "
      "< 10mins\n" +
      footer);
  // v3: also exclude benign internal client sockets — the exploit came
  // from an external address.
  scenario.bdl_scripts.push_back(
      header +
      "where file.path != \"/var/www/*\" and file.path != \"*.log\" and "
      "ip.src_ip != \"10.*\" and time < 10mins\n" +
      footer);

  return Finalize(std::move(env), std::move(scenario));
}

}  // namespace aptrace::workload
