#include <string>
#include <vector>

#include "workload/attacks/attack_common.h"
#include "workload/scenario.h"

namespace aptrace::workload {

using internal_attacks::CaseEnv;
using internal_attacks::Finalize;
using internal_attacks::InitCase;
using internal_attacks::T;

/// A4 — Cheating Student (paper Section IV-D, after ProTracer's case
/// study).
///
/// A student steals the admin's SSH credential from the admin laptop,
/// uploads a backdoor program to the grade server, and uses it to change
/// his score. The alert is the abnormal write to grades.db.
BuiltCase BuildCheatingStudent(const TraceConfig& base_config) {
  TraceConfig config = base_config;
  config.start_time = T("03/28/2019");
  config.days = 26;

  CaseEnv env = InitCase(config, {{"gradesrv", false},
                                  {"adminlaptop", false},
                                  {"dorm-pc", true}});
  TraceBuilder& b = *env.builder;
  NoiseGenerator& noise = *env.noise;
  Rng& rng = *env.rng;
  HostEnv& server = env.host(0);
  HostEnv& admin = env.host(1);
  HostEnv& dorm = env.host(2);

  // The grade database and a month of legitimate updates: teachers
  // connect to grademgr, which writes grades.db — hundreds of benign
  // writers once backtracking starts from the alert write.
  const ObjectId grades_db = b.File(server.host, "/srv/grades/grades.db",
                                    config.start_time);
  const ObjectId grademgr = b.Proc(server.host, "grademgr",
                                   config.start_time);
  noise.LoadDlls(server, grademgr, config.start_time + kMicrosPerMinute, 12);
  const int kLegitUpdates = 1500;
  for (int i = 0; i < kLegitUpdates; ++i) {
    const TimeMicros t = config.start_time +
                         static_cast<DurationMicros>(rng.Uniform(
                             24ULL * kMicrosPerDay));
    const std::string teacher_ip =
        "10.4." + std::to_string(rng.Uniform(6)) + "." +
        std::to_string(rng.Uniform(250) + 1);
    const ObjectId sock = b.Socket(server.host, teacher_ip, server.ip, 8443,
                                   t);
    b.Accept(grademgr, sock, t, 4096);
    b.Write(grademgr, grades_db, t + kMicrosPerSecond, 4096);
  }
  // Nightly backups read the database (more benign churn around it).
  const ObjectId backupd = b.Proc(server.host, "backupd", config.start_time);
  for (int d = 0; d < config.days - 2; ++d) {
    const TimeMicros t = config.start_time + d * kMicrosPerDay +
                         3 * kMicrosPerHour;
    b.Read(backupd, grades_db, t, 1024 * 1024);
    b.Write(backupd,
            b.File(server.host, "/backup/grades-" + std::to_string(d) + ".bak",
                   t),
            t + kMicrosPerMinute, 1024 * 1024);
  }

  // SSH daemons.
  const ObjectId admin_sshd = b.Proc(admin.host, "sshd", config.start_time);
  const ObjectId server_sshd = b.Proc(server.host, "sshd", config.start_time);
  // Benign admin logins to the server over the month.
  for (int i = 0; i < 220; ++i) {
    const TimeMicros t = config.start_time +
                         static_cast<DurationMicros>(rng.Uniform(
                             24ULL * kMicrosPerDay));
    const ObjectId sock = b.Socket(admin.host, admin.ip, server.ip, 22, t);
    const ObjectId ssh = b.StartProcess(admin.shell, admin.host, "ssh", t);
    b.Connect(ssh, sock, t, 2048);
    b.Accept(server_sshd, sock, t + kMicrosPerSecond, 2048);
  }

  // --- Step 1: credential theft from the admin laptop (04/21).
  const ObjectId admin_cred = b.File(admin.host, "/home/admin/.ssh/id_rsa",
                                     config.start_time);
  const ObjectId steal_sock = b.Socket(dorm.host, dorm.ip, admin.ip, 22,
                                       T("04/21/2019:22:10:00"));
  const ObjectId putty = noise.SpawnUserApp(dorm, "putty.exe",
                                            T("04/21/2019:22:05:00"),
                                            {.dll_loads = 10,
                                             .doc_reads = 1,
                                             .doc_writes = 0,
                                             .sockets = 0,
                                             .helper = false,
                                             .ambient = false});
  b.Connect(putty, steal_sock, T("04/21/2019:22:10:00"), 2048);
  b.Read(admin_sshd, admin_cred, T("04/21/2019:22:11:00"), 4096);
  b.Write(admin_sshd, steal_sock, T("04/21/2019:22:11:30"), 4096);
  b.Accept(putty, steal_sock, T("04/21/2019:22:12:00"), 4096);
  const ObjectId cred_copy = b.File(dorm.host,
                                    "C://Users/student/Desktop/id_rsa",
                                    T("04/21/2019:22:13:00"));
  b.Write(putty, cred_copy, T("04/21/2019:22:13:00"), 4096);

  // --- Step 2: upload the backdoor to the grade server (04/22).
  const ObjectId backdoor_src = b.File(dorm.host,
                                       "C://Users/student/Desktop/helper.bin",
                                       T("04/22/2019:21:00:00"));
  const ObjectId scp = b.StartProcess(dorm.shell, dorm.host, "pscp.exe",
                                      T("04/22/2019:23:30:00"));
  b.Read(scp, cred_copy, T("04/22/2019:23:30:10"), 4096);
  b.Read(scp, backdoor_src, T("04/22/2019:23:30:20"), 300 * 1024);
  const ObjectId upload_sock = b.Socket(dorm.host, dorm.ip, server.ip, 22,
                                        T("04/22/2019:23:31:00"));
  b.Connect(scp, upload_sock, T("04/22/2019:23:31:00"), 300 * 1024);
  b.Accept(server_sshd, upload_sock, T("04/22/2019:23:31:30"), 300 * 1024);
  const ObjectId backdoor_bin = b.File(server.host, "/tmp/.helper.bin",
                                       T("04/22/2019:23:32:00"));
  b.Write(server_sshd, backdoor_bin, T("04/22/2019:23:32:00"), 300 * 1024);

  // --- Step 3: run the backdoor and change the score — the alert.
  const ObjectId backdoor = b.StartProcess(server_sshd, server.host,
                                           ".helper.bin",
                                           T("04/22/2019:23:45:00"));
  b.Read(backdoor, backdoor_bin, T("04/22/2019:23:45:01"), 300 * 1024);
  const EventId alert = b.Write(backdoor, grades_db,
                                T("04/22/2019:23:47:02"), 4096);

  AttackScenario scenario;
  scenario.name = "cheating_student";
  scenario.title = "Cheating Student";
  scenario.description =
      "The student steals the credential of the admin laptop, uploads a "
      "backdoor program to the server, and changes his score.";
  scenario.alert_event = alert;
  scenario.primary_host = "gradesrv";
  scenario.ground_truth = {backdoor, backdoor_bin, upload_sock, scp,
                           cred_copy, steal_sock, admin_cred};
  scenario.penetration_point = steal_sock;
  scenario.num_heuristics = 3;

  const std::string header =
      "from \"03/28/2019\" to \"04/23/2019\"\n"
      "backward file g[path = \"/srv/grades/grades.db\" and event_time = "
      "\"04/22/2019:23:47:02\" and action_type = \"write\"] -> *\n";
  const std::string footer = "output = \"a4_result.dot\"\n";

  // v1: unguided.
  scenario.bdl_scripts.push_back(header + footer);
  // v2: exclude the legitimate grade-manager service after confirming its
  // writes are the routine teacher updates.
  scenario.bdl_scripts.push_back(
      header + "where proc.exename != \"grademgr\" and time < 10mins\n" +
      footer);
  // v3: also exclude the teacher subnet's sockets and dll noise.
  scenario.bdl_scripts.push_back(
      header +
      "where proc.exename != \"grademgr\" and ip.src_ip != \"10.4.*\" and "
      "file.path != \"*.dll\" and time < 10mins\n" +
      footer);

  return Finalize(std::move(env), std::move(scenario));
}

}  // namespace aptrace::workload
