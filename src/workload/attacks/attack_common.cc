#include "workload/attacks/attack_common.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace aptrace::workload::internal_attacks {

CaseEnv InitCase(TraceConfig config,
                 const std::vector<std::pair<std::string, bool>>& hosts) {
  // Attack-case hosts carry a moderated background profile: each case
  // supplies its own dependency-explosion amplifier (findstr crawls, SQL
  // client floods, web request floods, header trees), and the paper's
  // ten-minute guided investigations imply the victim hosts themselves
  // are not pathologically noisy near the alert. The enterprise-wide
  // responsiveness experiments use the full-noise fleet instead
  // (workload/enterprise.cc).
  config.explorer_scans_per_day =
      std::min(config.explorer_scans_per_day, 8);
  config.explorer_scan_width = std::min(config.explorer_scan_width, 6);
  config.user_sessions_per_day = std::min(config.user_sessions_per_day, 6);
  config.connections_per_day = std::min(config.connections_per_day, 10);
  config.service_config_reads_per_day =
      std::min(config.service_config_reads_per_day, 3);
  config.doc_skew = 0.0;  // cold documents; hubs come from the amplifiers

  CaseEnv env;
  env.config = config;
  EventStoreOptions store_options;
  store_options.backend = config.backend;
  env.store = std::make_unique<EventStore>(store_options);
  env.builder = std::make_unique<TraceBuilder>(env.store.get());
  env.rng = std::make_unique<Rng>(config.seed);
  env.noise = std::make_unique<NoiseGenerator>(env.builder.get(), config,
                                               env.rng.get());
  for (const auto& [name, is_windows] : hosts) {
    env.hosts.push_back(env.noise->SetupHost(name, is_windows));
  }
  for (HostEnv& h : env.hosts) {
    env.noise->GenerateBackground(h, config.start_time, config.end_time());
  }
  env.noise->CrossHostChatter(env.hosts, config.start_time,
                              config.end_time());
  return env;
}

TimeMicros T(const char* bdl_time) {
  auto t = ParseBdlTime(bdl_time);
  if (!t.ok()) {
    std::fprintf(stderr, "attack injector: bad time literal %s\n", bdl_time);
    std::abort();
  }
  return t.value();
}

BuiltCase Finalize(CaseEnv env, AttackScenario scenario) {
  env.store->Seal();
  scenario.alert = env.store->Get(scenario.alert_event);
  BuiltCase out;
  out.store = std::move(env.store);
  out.scenario = std::move(scenario);
  return out;
}

}  // namespace aptrace::workload::internal_attacks
