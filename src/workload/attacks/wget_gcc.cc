#include <string>
#include <vector>

#include "workload/attacks/attack_common.h"
#include "workload/scenario.h"

namespace aptrace::workload {

using internal_attacks::CaseEnv;
using internal_attacks::Finalize;
using internal_attacks::InitCase;
using internal_attacks::T;

/// A5 — wget-unzip-gcc (paper Section IV-D, after Xu et al. CCS'16).
///
/// A ZIP with malicious source code is downloaded, unzipped, compiled and
/// executed; the malware steals sensitive data and uploads it. The
/// compile step drags in hundreds of system headers and object files —
/// the largest dependency explosion of the five cases (121K events in the
/// paper).
BuiltCase BuildWgetUnzipGcc(const TraceConfig& base_config) {
  TraceConfig config = base_config;
  config.start_time = T("03/25/2019");
  config.days = 25;

  CaseEnv env = InitCase(config, {{"devbox1", false}, {"datasrv1", false}});
  TraceBuilder& b = *env.builder;
  Rng& rng = *env.rng;
  HostEnv& dev = env.host(0);
  HostEnv& data = env.host(1);

  // The system header pool, installed by the package manager inside the
  // window (each header has a writer, extending the explosion one layer).
  const int kHeaders = 2600;
  std::vector<ObjectId> headers;
  headers.reserve(kHeaders);
  const ObjectId apt = b.Proc(dev.host, "apt", config.start_time);
  const ObjectId repo_sock = b.Socket(dev.host, dev.ip, "151.101.130.132",
                                      443, T("03/27/2019:08:00:00"));
  b.Connect(apt, repo_sock, T("03/27/2019:08:00:00"), 2048);
  b.Accept(apt, repo_sock, T("03/27/2019:08:00:30"), 64 * 1024 * 1024);
  for (int i = 0; i < kHeaders; ++i) {
    const ObjectId h = b.File(
        dev.host, "/usr/include/pkg/h" + std::to_string(i) + ".h",
        T("03/27/2019:08:05:00"));
    b.Write(apt, h, T("03/27/2019:08:05:00") + i * 50 * kMicrosPerMilli,
            8 * 1024);
    headers.push_back(h);
  }

  // Benign developer builds all month share the header pool.
  for (int build = 0; build < 20; ++build) {
    const TimeMicros t = T("03/29/2019:10:00:00") +
                         static_cast<DurationMicros>(rng.Uniform(
                             20ULL * kMicrosPerDay));
    const ObjectId gcc_benign = b.StartProcess(dev.shell, dev.host, "gcc", t);
    for (int i = 0; i < 200; ++i) {
      b.Read(gcc_benign, headers[rng.Zipf(headers.size(), 0.8)],
             t + i * 20 * kMicrosPerMilli, 8 * 1024);
    }
    b.Write(gcc_benign,
            b.File(dev.host, "/home/dev/proj/out" + std::to_string(build) +
                                 ".o",
                   t),
            t + kMicrosPerMinute, 64 * 1024);
  }

  // The sensitive database on the data server, fed by many clients.
  const ObjectId sens_db = b.File(data.host, "/srv/data/sensitive.db",
                                  config.start_time);
  const ObjectId datad = b.Proc(data.host, "datad", config.start_time);
  for (int i = 0; i < 1500; ++i) {
    const TimeMicros t = config.start_time +
                         static_cast<DurationMicros>(rng.Uniform(
                             22ULL * kMicrosPerDay));
    const std::string client_ip =
        "10.5." + std::to_string(rng.Uniform(8)) + "." +
        std::to_string(rng.Uniform(250) + 1);
    const ObjectId sock = b.Socket(data.host, client_ip, data.ip, 5432, t);
    b.Accept(datad, sock, t, 8 * 1024);
    if (rng.Bernoulli(0.6)) b.Write(datad, sens_db, t + kMicrosPerSecond, 8 * 1024);
  }

  // --- Step 1: download the ZIP.
  const ObjectId bash = b.StartProcess(dev.shell, dev.host, "bash",
                                       T("04/18/2019:20:00:00"));
  const ObjectId wget = b.StartProcess(bash, dev.host, "wget",
                                       T("04/18/2019:20:10:00"));
  const ObjectId dl_sock = b.Socket(dev.host, dev.ip, "162.252.172.88", 443,
                                    T("04/18/2019:20:10:05"));
  b.Connect(wget, dl_sock, T("04/18/2019:20:10:05"), 2048);
  b.Accept(wget, dl_sock, T("04/18/2019:20:10:30"), 20 * 1024 * 1024);
  const ObjectId zip = b.File(dev.host, "/home/dev/downloads/tool.zip",
                              T("04/18/2019:20:11:00"));
  b.Write(wget, zip, T("04/18/2019:20:11:00"), 20 * 1024 * 1024);

  // --- Step 2: unzip the sources.
  const ObjectId unzip = b.StartProcess(bash, dev.host, "unzip",
                                        T("04/18/2019:20:15:00"));
  b.Read(unzip, zip, T("04/18/2019:20:15:01"), 20 * 1024 * 1024);
  std::vector<ObjectId> sources;
  for (int i = 0; i < 8; ++i) {
    const ObjectId src = b.File(
        dev.host, "/home/dev/downloads/tool/src" + std::to_string(i) + ".c",
        T("04/18/2019:20:15:30"));
    b.Write(unzip, src, T("04/18/2019:20:15:30") + i * kMicrosPerSecond,
            64 * 1024);
    sources.push_back(src);
  }

  // --- Step 3: compile (the explosion: 700 header reads + object files).
  const ObjectId gcc = b.StartProcess(bash, dev.host, "gcc",
                                      T("04/18/2019:20:20:00"));
  for (ObjectId src : sources) {
    b.Read(gcc, src, T("04/18/2019:20:20:05"), 64 * 1024);
  }
  for (int i = 0; i < 1800; ++i) {
    b.Read(gcc, headers[rng.Zipf(headers.size(), 0.6)],
           T("04/18/2019:20:20:10") + i * 10 * kMicrosPerMilli, 8 * 1024);
  }
  std::vector<ObjectId> objects;
  for (int i = 0; i < 8; ++i) {
    const ObjectId obj = b.File(
        dev.host, "/home/dev/downloads/tool/src" + std::to_string(i) + ".o",
        T("04/18/2019:20:25:00"));
    b.Write(gcc, obj, T("04/18/2019:20:25:00") + i * kMicrosPerSecond,
            128 * 1024);
    objects.push_back(obj);
  }
  const ObjectId ld = b.StartProcess(gcc, dev.host, "ld",
                                     T("04/18/2019:20:26:00"));
  for (ObjectId obj : objects) {
    b.Read(ld, obj, T("04/18/2019:20:26:05"), 128 * 1024);
  }
  const ObjectId malware_bin = b.File(dev.host,
                                      "/home/dev/downloads/tool/tool",
                                      T("04/18/2019:20:27:00"));
  b.Write(ld, malware_bin, T("04/18/2019:20:27:00"), 900 * 1024);

  // --- Step 4: run the malware; it pulls the sensitive data.
  const ObjectId malware = b.StartProcess(bash, dev.host, "tool",
                                          T("04/18/2019:20:30:00"));
  b.Read(malware, malware_bin, T("04/18/2019:20:30:01"), 900 * 1024);
  const ObjectId db_sock = b.Socket(dev.host, dev.ip, data.ip, 5432,
                                    T("04/18/2019:20:45:00"));
  b.Connect(malware, db_sock, T("04/18/2019:20:45:00"), 4096);
  b.Read(datad, sens_db, T("04/18/2019:20:46:00"), 70 * 1024 * 1024);
  b.Write(datad, db_sock, T("04/18/2019:20:46:30"), 70 * 1024 * 1024);
  b.Accept(malware, db_sock, T("04/18/2019:20:47:00"), 70 * 1024 * 1024);

  // --- Step 5: exfiltration — the alert.
  const ObjectId exfil_sock = b.Socket(dev.host, dev.ip, "162.252.172.88",
                                       443, T("04/18/2019:21:05:33"));
  const EventId alert = b.Connect(malware, exfil_sock,
                                  T("04/18/2019:21:05:33"),
                                  72 * 1024 * 1024);

  AttackScenario scenario;
  scenario.name = "wget_unzip_gcc";
  scenario.title = "wget-unzip-gcc";
  scenario.description =
      "A ZIP containing malicious source code is downloaded, unzipped, "
      "compiled and executed; the malware steals the sensitive data.";
  scenario.alert_event = alert;
  scenario.primary_host = "devbox1";
  scenario.ground_truth = {malware, malware_bin, ld, gcc, unzip, zip, wget,
                           dl_sock};
  scenario.penetration_point = dl_sock;
  scenario.num_heuristics = 2;

  const std::string header =
      "from \"03/25/2019\" to \"04/19/2019\"\n"
      "backward ip alert[dst_ip = \"162.252.172.88\" and subject_name = "
      "\"tool\" and event_time = \"04/18/2019:21:05:33\" and action_type = "
      "\"connect\"] -> *\n";
  const std::string footer = "output = \"a5_result.dot\"\n";

  // v1: unguided.
  scenario.bdl_scripts.push_back(header + footer);
  // v2: exclude the system header tree (compiler noise).
  scenario.bdl_scripts.push_back(
      header + "where file.path != \"/usr/include/*\" and time < 10mins\n" +
      footer);
  // v3: also exclude intermediate object files.
  scenario.bdl_scripts.push_back(
      header +
      "where file.path != \"/usr/include/*\" and file.path != \"*.o\" and "
      "time < 10mins\n" +
      footer);

  return Finalize(std::move(env), std::move(scenario));
}

}  // namespace aptrace::workload
