// Quickstart: author a tiny audit trace, run one BDL script over it, and
// print the resulting dependency graph.
//
//   $ ./build/examples/quickstart
//
// The trace is a three-step exfiltration: a process reads a sensitive
// document and ships it to an external address; benign activity surrounds
// it. Backtracking from the exfiltration alert recovers the chain.

#include <cstdio>
#include <sstream>

#include "core/engine.h"
#include "util/string_util.h"
#include "workload/trace_builder.h"

using namespace aptrace;

int main() {
  // ---------------------------------------------------------------- 1.
  // Build an event store. In production this is fed by ETW / Linux Audit
  // collectors; here we author events by hand with the TraceBuilder.
  EventStore store;
  workload::TraceBuilder b(&store);
  const HostId desktop = b.Host("desktop1");

  const TimeMicros t0 = ParseBdlTime("04/16/2019:06:00:00").value();
  const ObjectId shell = b.Proc(desktop, "explorer.exe", t0);
  const ObjectId secret =
      b.File(desktop, "C://Sensitive/important.doc", t0);
  const ObjectId notes = b.File(desktop, "C://Users/u/notes.txt", t0);

  // Benign edits to the sensitive document.
  const ObjectId word = b.StartProcess(shell, desktop, "winword.exe",
                                       t0 + 5 * kMicrosPerMinute);
  b.Write(word, secret, t0 + 6 * kMicrosPerMinute, 64 * 1024);

  // The attack: malware reads the document and exfiltrates it.
  const ObjectId malware = b.StartProcess(shell, desktop, "sync_helper.exe",
                                          t0 + 10 * kMicrosPerMinute);
  b.Read(malware, secret, t0 + 12 * kMicrosPerMinute, 64 * 1024);
  b.Read(malware, notes, t0 + 13 * kMicrosPerMinute, 4 * 1024);
  const ObjectId exfil = b.Socket(desktop, "10.1.0.2", "203.0.113.50", 443,
                                  t0 + 15 * kMicrosPerMinute);
  b.Connect(malware, exfil, t0 + 15 * kMicrosPerMinute, 70 * 1024);

  store.Seal();
  std::printf("trace: %zu events, %zu objects\n\n", store.NumEvents(),
              store.catalog().size());

  // ---------------------------------------------------------------- 2.
  // Express the investigation in BDL: start from the connection to the
  // suspicious address and track everything backwards.
  const char* script = R"(
      backward ip alert[dst_ip = "203.0.113.50"] -> *
      where time < 30mins
  )";

  // ---------------------------------------------------------------- 3.
  // Run it. The SimClock carries the simulated query cost; a Session
  // would let us pause/refine, but a one-shot run suffices here.
  SimClock clock;
  auto report = RunBdlScript(store, &clock, script);
  if (!report.ok()) {
    std::fprintf(stderr, "analysis failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("analysis %s: %zu nodes, %zu edges, %zu updates, %s simulated\n\n",
              StopReasonName(report->reason), report->graph_nodes,
              report->graph_edges, report->log.size(),
              FormatDuration(clock.NowMicros()).c_str());

  // ---------------------------------------------------------------- 4.
  // Inspect the result: rerun through a Session to keep the graph, then
  // print it as DOT (the same output `output = "..."` would write).
  Session session(&store, &clock);
  if (!session.Start(script).ok() || !session.Step({}).ok()) return 1;
  std::ostringstream dot;
  DotOptions dot_options;
  dot_options.alert_event = session.context().start_event.id;
  WriteDot(session.graph(), store.catalog(), dot, dot_options);
  std::printf("%s\n", dot.str().c_str());

  std::printf("The chain ip <- sync_helper.exe <- important.doc <- "
              "winword.exe is in the graph:\n");
  for (ObjectId id : {exfil, malware, secret, word}) {
    std::printf("  %-45s %s\n", store.catalog().Get(id).Label().c_str(),
                session.graph().HasNode(id) ? "found" : "MISSING");
  }
  return 0;
}
