// The paper's case A1 (Section IV-D, Phishing Email) as an interactive
// investigation: start the unguided script, watch updates, pause to add
// heuristics through the Refiner, resume, and stop once the root cause —
// the phishing mail socket — is on screen.
//
//   $ ./build/examples/investigate_phishing
//
// Every printed step corresponds to a step in the paper's narrative:
// Program 4 (unguided) -> Program 5 (*.dll excluded) -> Program 6
// (findstr.exe excluded) -> "the root cause of java.exe was a phishing
// email".

#include <cstdio>

#include "core/engine.h"
#include "graph/path.h"
#include "util/string_util.h"
#include "workload/scenario.h"

using namespace aptrace;
using workload::AttackScenario;
using workload::BuildAttackCase;
using workload::ChainRecovered;

namespace {

void PrintStatus(const char* phase, const Session& session,
                 const SimClock& clock) {
  std::printf("  [%s] %4zu events in graph, %3zu nodes, %s elapsed\n", phase,
              session.graph().NumEdges(), session.graph().NumNodes(),
              FormatDuration(clock.NowMicros()).c_str());
}

}  // namespace

int main() {
  std::printf("Staging the Phishing Email attack (CVE-2015-1701)...\n");
  auto built = BuildAttackCase("phishing_email", workload::TraceConfig{});
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  const AttackScenario& scenario = built->scenario;
  const EventStore& store = *built->store;
  std::printf("trace: %zu events over %zu hosts; alert: %s at %s\n\n",
              store.NumEvents(), store.catalog().NumHosts(),
              store.catalog().Get(scenario.alert.FlowDest()).Label().c_str(),
              FormatBdlTime(scenario.alert.timestamp).c_str());

  SimClock clock;
  Session session(&store, &clock);

  // --- v1: the unguided script (paper Program 4). The analyst only knows
  // the alert: java.exe talked to an external IP.
  std::printf("v1 (Program 4): unguided backtracking from the alert\n");
  if (auto s = session.Start(scenario.bdl_scripts[0]); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  RunLimits peek;
  peek.max_updates = 5;
  peek.sim_time = 3 * kMicrosPerMinute;
  (void)session.Step(peek);
  PrintStatus("v1", session, clock);
  std::printf("  -> the early graph is full of library (*.dll) files; the\n"
              "     backend detectors report no dll tampering, so exclude "
              "them.\n\n");

  // --- v2: exclude *.dll (paper Program 5).
  std::printf("v2 (Program 5): where file.path != \"*.dll\"\n");
  (void)session.UpdateScript(scenario.bdl_scripts[1]);
  std::printf("  Refiner: %s (cached graph reused)\n",
              RefineActionName(session.last_refine_action()));
  RunLimits watch;
  watch.max_updates = 10;
  watch.sim_time = 2 * kMicrosPerMinute;
  (void)session.Step(watch);
  PrintStatus("v2", session, clock);
  std::printf("  -> the graph reached findstr.exe through findstr.out; it\n"
              "     scanned the whole home directory and is a tool used BY\n"
              "     java.exe, not its cause. Exclude it.\n\n");

  // --- v3: exclude findstr.exe too (paper Program 6).
  std::printf("v3 (Program 6): ... and proc.exename != \"findstr.exe\"\n");
  (void)session.UpdateScript(scenario.bdl_scripts[2]);
  std::printf("  Refiner: %s\n",
              RefineActionName(session.last_refine_action()));
  RunLimits hunt;
  hunt.should_stop = [&] { return ChainRecovered(session.graph(), scenario); };
  (void)session.Step(hunt);
  PrintStatus("v3", session, clock);

  // --- Conclusion.
  const bool found = ChainRecovered(session.graph(), scenario);
  std::printf("\n%s\n", found
                            ? "Root cause reconstructed: outlook.exe received "
                              "the phishing mail, wrote the\nExcel attachment; "
                              "excel.exe dropped and started java.exe."
                            : "Chain NOT recovered (unexpected).");
  for (ObjectId id : scenario.ground_truth) {
    std::printf("  %-55s %s\n", store.catalog().Get(id).Label().c_str(),
                session.graph().HasNode(id) ? "in graph" : "missing");
  }
  // The reconstructed causal chain, alert to penetration point.
  const CausalPath chain =
      FindCausalPath(session.graph(), scenario.penetration_point);
  if (!chain.empty()) {
    std::printf("\ncausal chain (%zu hops):\n  %s\n", chain.Hops(),
                store.catalog().Get(chain.origin).Label().c_str());
    for (const PathStep& step : chain.steps) {
      const auto& edge = session.graph().GetEdge(step.event);
      std::printf("    <- [%s %s] %s\n", ActionTypeName(edge.action),
                  FormatBdlTime(edge.timestamp).c_str(),
                  store.catalog().Get(step.node).Label().c_str());
    }
  }

  std::printf("\nevents checked: %zu (vs. thousands without heuristics); "
              "analysis time: %s\n",
              session.graph().NumEdges(),
              FormatDuration(clock.NowMicros()).c_str());

  if (auto s = session.Finish(); !s.ok()) {
    std::fprintf(stderr, "finish: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("dependency graph written to a1_result.dot\n");
  return found ? 0 : 1;
}
