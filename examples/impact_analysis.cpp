// Impact analysis: after backtracking finds the penetration point, the
// natural follow-up question is "what else did the attacker touch?" —
// answered by *forward* tracking from the penetration point, following
// the data flow instead of against it (the companion analysis of King &
// Chen; APTrace's windows, priority queue, Refiner, and BDL all apply
// unchanged with the arrows reversed).
//
//   $ ./build/examples/impact_analysis
//
// On the staged Phishing Email case: backward from the exfiltration alert
// to the phishing mail, then forward from the dropped java.exe to
// everything it tainted.

#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "util/string_util.h"
#include "workload/scenario.h"

using namespace aptrace;

int main() {
  std::printf("Staging the Phishing Email attack...\n");
  auto built = workload::BuildAttackCase("phishing_email",
                                         workload::TraceConfig{});
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  const workload::AttackScenario& scenario = built->scenario;
  EventStore& store = *built->store;

  // ---- Phase 1: backward, to the root cause (the short version of
  // examples/investigate_phishing).
  std::printf("\nPhase 1 — backward tracking from the exfiltration "
              "alert:\n");
  SimClock clock;
  Session backward(&store, &clock);
  if (!backward.Start(scenario.bdl_scripts.back()).ok()) return 1;
  RunLimits limits;
  limits.should_stop = [&] {
    return workload::ChainRecovered(backward.graph(), scenario);
  };
  (void)backward.Step(limits);
  std::printf("  root cause recovered: %s (%zu events checked)\n",
              workload::ChainRecovered(backward.graph(), scenario) ? "yes"
                                                                   : "NO",
              backward.graph().NumEdges());

  // ---- Phase 2: forward, from the dropped malware file. What did the
  // attacker taint after the drop?
  std::printf("\nPhase 2 — forward tracking from the dropped java.exe:\n");
  const auto java_files =
      store.catalog().FindFilesByPath("C://Users/victim/Documents/java.exe");
  if (java_files.empty()) {
    std::fprintf(stderr, "dropped file not found\n");
    return 1;
  }
  // The taint source: the event that wrote the dropped file.
  Event drop{};
  bool have_drop = false;
  for (EventId id = 0; id < store.NumEvents() && !have_drop; ++id) {
    const Event& e = store.Get(id);
    if (e.FlowDest() == java_files[0] && e.action == ActionType::kWrite) {
      drop = e;
      have_drop = true;
    }
  }
  if (!have_drop) {
    std::fprintf(stderr, "drop event not found\n");
    return 1;
  }
  std::printf("  taint source: %s wrote %s at %s\n",
              store.catalog().Get(drop.subject).Label().c_str(),
              store.catalog().Get(drop.object).Label().c_str(),
              FormatBdlTime(drop.timestamp).c_str());

  SimClock fwd_clock;
  Session forward(&store, &fwd_clock);
  if (auto s = forward.Start("forward file f[] -> * where file.path != "
                             "\"*.dll\" and time < 10mins",
                             drop);
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  (void)forward.Step({});

  std::printf("  tainted: %zu objects via %zu events in %s\n",
              forward.graph().NumNodes(), forward.graph().NumEdges(),
              FormatDuration(fwd_clock.NowMicros()).c_str());

  // List the tainted endpoints an incident responder cares about:
  // processes run and external connections made downstream of the drop.
  std::printf("\n  tainted processes / connections:\n");
  size_t shown = 0;
  forward.graph().ForEachNode([&](const DepGraph::Node& n) {
    const SystemObject& obj = store.catalog().Get(n.object);
    if ((obj.is_process() || obj.is_ip()) && shown < 15) {
      std::printf("    hop %d  %s\n", n.hop, obj.Label().c_str());
      shown++;
    }
  });

  // Sanity: the exfiltration socket must be in the forward closure.
  const bool exfil_tainted =
      forward.graph().HasNode(scenario.alert.FlowDest());
  std::printf("\n  exfiltration socket in the taint set: %s\n",
              exfil_tainted ? "yes" : "NO");
  return exfil_tainted ? 0 : 1;
}
