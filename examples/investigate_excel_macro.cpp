// The paper's case A2 (Section IV-D, Malicious Excel Macro /
// CVE-2008-0081) — the two-host investigation of Figure 5, featuring the
// Refiner capabilities the paper highlights:
//  * adding an *intermediate point* to the tracking chain (Program 9's
//    `-> ip i[...] -> *`), which the Dependency Graph Maintainer turns
//    into search prioritization via state propagation;
//  * excluding the Windows File Explorer after inspecting its successors
//    (Program 10).
//
//   $ ./build/examples/investigate_excel_macro

#include <cstdio>

#include "core/engine.h"
#include "util/string_util.h"
#include "workload/scenario.h"

using namespace aptrace;
using workload::AttackScenario;
using workload::BuildAttackCase;
using workload::ChainRecovered;

int main() {
  std::printf("Staging the Malicious Excel Macro attack (two hosts)...\n");
  auto built = BuildAttackCase("excel_macro", workload::TraceConfig{});
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
    return 1;
  }
  const AttackScenario& scenario = built->scenario;
  const EventStore& store = *built->store;
  std::printf(
      "alert: sqlservr.exe abnormally started cmd.exe on host2 at %s\n\n",
      FormatBdlTime(scenario.alert.timestamp).c_str());

  SimClock clock;
  Session session(&store, &clock);
  const auto step = [&](size_t version, const char* what,
                        bool to_completion) {
    if (version == 0) {
      if (auto s = session.Start(scenario.bdl_scripts[0]); !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return false;
      }
    } else {
      if (auto s = session.UpdateScript(scenario.bdl_scripts[version]);
          !s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return false;
      }
    }
    std::printf("v%zu: %s\n", version + 1, what);
    if (version > 0) {
      std::printf("  Refiner: %s\n",
                  RefineActionName(session.last_refine_action()));
    }
    RunLimits limits;
    limits.should_stop = [&] {
      return ChainRecovered(session.graph(), scenario);
    };
    if (!to_completion) {
      limits.max_updates = 8;
      limits.sim_time = 2 * kMicrosPerMinute;
    }
    (void)session.Step(limits);
    std::printf("  graph: %zu events / %zu nodes, %s elapsed\n\n",
                session.graph().NumEdges(), session.graph().NumNodes(),
                FormatDuration(clock.NowMicros()).c_str());
    return true;
  };

  // The four script versions of the paper's Programs 7-10.
  if (!step(0, "unguided backtracking from the cmd.exe start (Program 7)",
            false)) return 1;
  if (!step(1, "exclude *.dll files (Program 8)", false)) return 1;
  if (!step(2,
            "focus on the java.exe socket host1 -> host2 as an intermediate "
            "point (Program 9)",
            false)) return 1;
  if (!step(3, "exclude explorer.exe after checking its successors "
               "(Program 10)",
            true)) return 1;

  const bool found = ChainRecovered(session.graph(), scenario);
  std::printf("%s\n",
              found ? "Attack reconstructed: iexplorer.exe downloaded "
                      "data.xls; its macro dropped java.exe,\nwhich reached "
                      "sqlservr.exe over the network and ran the batch "
                      "script."
                    : "Chain NOT recovered (unexpected).");

  // The intermediate point also powers result filtering: prune everything
  // not on a start -> intermediate -> end path.
  const size_t before = session.graph().NumNodes();
  (void)session.Finish();
  std::printf(
      "\nFinish(): pruned to matched paths: %zu -> %zu nodes; DOT written "
      "to a2_result.dot\n",
      before, session.graph().NumNodes());
  return found ? 0 : 1;
}
