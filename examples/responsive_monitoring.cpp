// Responsiveness side by side: backtrack the same alert with the
// execute-to-complete baseline and with APTrace's execution-window
// partitioning, printing the update timeline of each. This is Table II's
// phenomenon at single-run scale: the baseline blocks on dependency-
// explosion nodes, APTrace keeps a steady drip of updates.
//
// Also demonstrates a quantity-based `prioritize` rule (paper Program 2).
//
//   $ ./build/examples/responsive_monitoring

#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "util/string_util.h"
#include "workload/enterprise.h"

using namespace aptrace;

namespace {

struct Timeline {
  std::vector<double> update_times;  // seconds since run start
  size_t final_edges = 0;
  double longest_wait = 0;
};

Timeline Run(const EventStore& store, const Event& alert, bool baseline,
             DurationMicros cap) {
  SimClock clock;
  SessionOptions options;
  options.use_baseline = baseline;
  Session session(&store, &clock, options);
  const bdl::TrackingSpec spec = workload::GenericSpecFor(store, alert);

  Timeline t;
  if (!session.StartWithSpec(spec, alert).ok()) return t;
  RunLimits limits;
  limits.sim_time = cap;
  limits.on_update = [&](const UpdateBatch& b) {
    t.update_times.push_back(
        MicrosToSeconds(b.sim_time - session.stats().run_start));
  };
  (void)session.Step(limits);
  t.final_edges = session.graph().NumEdges();
  double prev = 0;
  for (double u : t.update_times) {
    t.longest_wait = std::max(t.longest_wait, u - prev);
    prev = u;
  }
  return t;
}

void PrintTimeline(const char* name, const Timeline& t,
                   DurationMicros cap) {
  // A 60-column strip chart: '#' where an update landed.
  const int kCols = 60;
  std::string strip(kCols, '.');
  for (double u : t.update_times) {
    int col = static_cast<int>(u / MicrosToSeconds(cap) * kCols);
    if (col >= kCols) col = kCols - 1;
    strip[col] = '#';
  }
  std::printf("%-9s |%s|\n", name, strip.c_str());
  std::printf("          %zu updates, %zu edges, longest wait %.0fs\n\n",
              t.update_times.size(), t.final_edges, t.longest_wait);
}

}  // namespace

int main() {
  std::printf("Building the enterprise trace (this is the slow part)...\n");
  workload::TraceConfig config;
  config.num_hosts = 8;
  auto store = workload::BuildEnterpriseTrace(config);
  std::printf("%zu events across %zu hosts\n\n", store->NumEvents(),
              store->catalog().NumHosts());

  // Pick an alert whose closure is explosive: the telemetry collector's
  // database write (its history funnels the whole fleet).
  const auto candidates = store->catalog().FindProcessesByName("telemetryd");
  Event alert{};
  bool found = false;
  if (!candidates.empty()) {
    // Find that process's last write.
    for (size_t i = store->NumEvents(); i-- > 0 && !found;) {
      const Event& e = store->Get(i);
      if (e.subject == candidates[0] && e.action == ActionType::kWrite) {
        alert = e;
        found = true;
      }
    }
  }
  if (!found) alert = store->Get(store->NumEvents() - 1);

  std::printf("alert: %s -> %s at %s\n\n",
              store->catalog().Get(alert.subject).Label().c_str(),
              store->catalog().Get(alert.object).Label().c_str(),
              FormatBdlTime(alert.timestamp).c_str());

  const DurationMicros cap = 30 * kMicrosPerMinute;
  std::printf("30 simulated minutes of analysis; each '#' is a graph "
              "update:\n\n");
  const Timeline baseline = Run(*store, alert, /*baseline=*/true, cap);
  const Timeline aptrace = Run(*store, alert, /*baseline=*/false, cap);
  PrintTimeline("Baseline", baseline, cap);
  PrintTimeline("APTrace", aptrace, cap);

  if (aptrace.longest_wait > 0) {
    std::printf("longest-wait reduction: %.1fx\n\n",
                baseline.longest_wait / aptrace.longest_wait);
  }

  // Bonus: the same analysis with a quantity-based prioritization rule
  // (paper Program 2): prefer processes that read a document and pushed
  // at least as many bytes to the network.
  std::printf("Re-running APTrace with a Program-2 style prioritize rule:\n");
  SimClock clock;
  Session session(store.get(), &clock);
  std::string script = workload::GenericSpecFor(*store, alert).source_text;
  script +=
      "\nprioritize [type = file and src.path = \"*doc*\"] <- [type = "
      "network and dst.ip = \"*\" and amount >= size]";
  if (session.Start(script, alert).ok()) {
    RunLimits limits;
    limits.sim_time = cap;
    (void)session.Step(limits);
    std::printf("  %zu edges explored with upload-prioritized ordering\n",
                session.graph().NumEdges());
  }
  return 0;
}
