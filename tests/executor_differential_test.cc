// Differential oracle for the parallel scan pipeline: for randomized
// traces and BDL spec variants, the Executor at scan_threads in {2, 4, 8}
// must produce output *bit-identical* to scan_threads = 1 — the same
// graph JSON, the same update-log batch sequence, the same RunStats and
// stop reason, and the same simulated store charges — and both must match
// the BaselineExecutor's reachability. This is the contract that makes
// the parallel pipeline safe to enable by default.

#include <unistd.h>

#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/baseline_executor.h"
#include "core/executor.h"
#include "graph/json_writer.h"
#include "obs/metrics.h"
#include "obs/names.h"
#include "storage/file_env.h"
#include "storage/recovery.h"
#include "storage/trace_io.h"
#include "storage/wal.h"
#include "tests/random_trace_util.h"

namespace aptrace {
namespace {

std::string GraphJson(const Executor& exec, const RandomTrace& t) {
  std::ostringstream os;
  WriteGraphJson(exec.graph(), t.store->catalog(), os);
  return os.str();
}

/// Everything a run produces that the determinism contract covers.
/// Real-time measurements (worker latencies, prefetch hit/wait/miss
/// splits) are timing-dependent by nature and deliberately absent.
struct RunFingerprint {
  std::string graph_json;
  std::vector<UpdateBatch> batches;
  StopReason reason = StopReason::kCompleted;
  size_t work_units = 0;
  size_t events_added = 0;
  size_t events_filtered = 0;
  size_t objects_excluded = 0;
  TimeMicros sim_elapsed = 0;
  DurationMicros scan_cost = 0;
};

bool operator==(const UpdateBatch& a, const UpdateBatch& b) {
  return a.sim_time == b.sim_time && a.new_edges == b.new_edges &&
         a.new_nodes == b.new_nodes && a.total_edges == b.total_edges &&
         a.total_nodes == b.total_nodes;
}

RunFingerprint RunOnce(const RandomTrace& t, const std::string& script,
                       int scan_threads) {
  SimClock clock;
  Executor exec(Ctx(t, script, scan_threads), &clock, 8);
  RunFingerprint fp;
  fp.reason = exec.Run({});
  fp.graph_json = GraphJson(exec, t);
  fp.batches = exec.update_log().batches();
  fp.work_units = exec.stats().work_units;
  fp.events_added = exec.stats().events_added;
  fp.events_filtered = exec.stats().events_filtered;
  fp.objects_excluded = exec.stats().objects_excluded;
  fp.sim_elapsed = clock.NowMicros() - exec.stats().run_start;
  fp.scan_cost = exec.scan_cost_total();
  return fp;
}

void ExpectIdentical(const RunFingerprint& seq, const RunFingerprint& par,
                     uint64_t seed, int threads, const char* variant) {
  const auto label = [&] {
    return std::string(variant) + " seed=" + std::to_string(seed) +
           " threads=" + std::to_string(threads);
  };
  EXPECT_EQ(par.graph_json, seq.graph_json) << label();
  ASSERT_EQ(par.batches.size(), seq.batches.size()) << label();
  for (size_t i = 0; i < seq.batches.size(); ++i) {
    EXPECT_TRUE(par.batches[i] == seq.batches[i])
        << label() << " batch " << i;
  }
  EXPECT_EQ(par.reason, seq.reason) << label();
  EXPECT_EQ(par.work_units, seq.work_units) << label();
  EXPECT_EQ(par.events_added, seq.events_added) << label();
  EXPECT_EQ(par.events_filtered, seq.events_filtered) << label();
  EXPECT_EQ(par.objects_excluded, seq.objects_excluded) << label();
  EXPECT_EQ(par.sim_elapsed, seq.sim_elapsed) << label();
  EXPECT_EQ(par.scan_cost, seq.scan_cost) << label();
}

class DifferentialOracle : public testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialOracle, ParallelBitIdenticalToSequential) {
  const uint64_t seed = GetParam();
  const RandomTrace t = MakeRandomTrace(seed, 400);
  const std::string unconstrained = UnconstrainedScript(t);
  // Spec variants hit the order-sensitive paths: the where filter
  // mutates excluded_ mid-scan, the hop limit drops windows as stale,
  // and forward tracking uses the mirrored scan.
  const struct {
    const char* name;
    std::string script;
  } variants[] = {
      {"unconstrained", unconstrained},
      {"where", unconstrained +
                    " where file.path != \"*.dll\" and "
                    "proc.exename != \"svc.exe\""},
      {"hops", unconstrained + " where hop <= 3"},
  };

  for (const auto& variant : variants) {
    const RunFingerprint seq = RunOnce(t, variant.script, 1);
    // The sequential run must itself match the independent reference
    // model (only meaningful for the unconstrained closure).
    if (variant.script == unconstrained) {
      SimClock bc;
      BaselineExecutor baseline(Ctx(t, variant.script), &bc);
      ASSERT_EQ(baseline.Run({}), StopReason::kCompleted);
      const auto reference =
          ReferenceClosure(t, [](ObjectId) { return true; });
      EXPECT_EQ(EdgeSet(baseline.graph()), reference);
    }
    for (const int threads : {2, 4, 8}) {
      const RunFingerprint par = RunOnce(t, variant.script, threads);
      ExpectIdentical(seq, par, seed, threads, variant.name);
    }
  }
}

TEST_P(DifferentialOracle, ParallelMatchesBaselineReachability) {
  const uint64_t seed = GetParam() ^ 0xd1ff;
  const RandomTrace t = MakeRandomTrace(seed, 350);
  const std::string script = UnconstrainedScript(t);

  SimClock bc;
  BaselineExecutor baseline(Ctx(t, script), &bc);
  ASSERT_EQ(baseline.Run({}), StopReason::kCompleted);
  const std::set<EventId> expected = EdgeSet(baseline.graph());

  for (const int threads : {2, 4, 8}) {
    SimClock clock;
    Executor exec(Ctx(t, script, threads), &clock, 8);
    ASSERT_EQ(exec.Run({}), StopReason::kCompleted);
    EXPECT_EQ(EdgeSet(exec.graph()), expected)
        << "seed=" << seed << " threads=" << threads;
  }
}

// Stepped schedules interleave Run/pause cycles with the pool's
// speculative prefetches (cached prefetches must survive a pause).
TEST_P(DifferentialOracle, SteppedParallelMatchesOneShotSequential) {
  const uint64_t seed = GetParam() ^ 0x57e9;
  const RandomTrace t = MakeRandomTrace(seed, 300);
  const std::string script = UnconstrainedScript(t);
  const RunFingerprint seq = RunOnce(t, script, 1);

  SimClock clock;
  Executor stepped(Ctx(t, script, 4), &clock, 8);
  int guard = 0;
  for (;;) {
    RunLimits limits;
    limits.max_updates = 2;
    const StopReason r = stepped.Run(limits);
    if (r == StopReason::kCompleted) break;
    ASSERT_EQ(r, StopReason::kUpdateCap);
    ASSERT_LT(guard++, 10000);
  }
  EXPECT_EQ(GraphJson(stepped, t), seq.graph_json) << "seed=" << seed;
  EXPECT_EQ(stepped.stats().work_units, seq.work_units);
  EXPECT_EQ(stepped.scan_cost_total(), seq.scan_cost);
}

// Determinism regression: the same trace + spec + seed run twice at
// threads=8 must yield byte-identical graph JSON and identical
// deterministic counters, no matter how the OS schedules the workers.
TEST_P(DifferentialOracle, RepeatedParallelRunsAreByteIdentical) {
  const uint64_t seed = GetParam() ^ 0xbeef;
  const RandomTrace t = MakeRandomTrace(seed, 350);
  const std::string script =
      UnconstrainedScript(t) + " where file.path != \"*.dll\"";

  const RunFingerprint first = RunOnce(t, script, 8);
  const RunFingerprint second = RunOnce(t, script, 8);
  EXPECT_EQ(first.graph_json, second.graph_json) << "seed=" << seed;
  ExpectIdentical(first, second, seed, 8, "repeat");
}

// The deterministic executor metrics advance by identical deltas for a
// parallel and a sequential run (prefetch hit/wait/miss and the latency
// histograms are timing-dependent and excluded by design).
TEST_P(DifferentialOracle, DeterministicCountersMatch) {
  const uint64_t seed = GetParam() ^ 0xc0de;
  const RandomTrace t = MakeRandomTrace(seed, 300);
  const std::string script = UnconstrainedScript(t);

  const char* const counters[] = {
      obs::names::kExecutorWindowsProcessed,
      obs::names::kExecutorWindowsEnqueued,
      obs::names::kExecutorStaleWindows,
      obs::names::kDedupWindowClips,
      obs::names::kExecutorScanCostMicros,
      obs::names::kStoreQueries,
      obs::names::kStoreEventsScanned,
  };
  const auto snapshot = [&] {
    std::vector<uint64_t> out;
    for (const char* name : counters) {
      out.push_back(obs::Metrics().FindOrCreateCounter(name)->value());
    }
    return out;
  };
  const auto delta = [](const std::vector<uint64_t>& before,
                        const std::vector<uint64_t>& after) {
    std::vector<uint64_t> out(before.size());
    for (size_t i = 0; i < before.size(); ++i) out[i] = after[i] - before[i];
    return out;
  };

  auto before = snapshot();
  (void)RunOnce(t, script, 1);
  const auto seq_delta = delta(before, snapshot());

  before = snapshot();
  (void)RunOnce(t, script, 8);
  const auto par_delta = delta(before, snapshot());

  for (size_t i = 0; i < seq_delta.size(); ++i) {
    EXPECT_EQ(par_delta[i], seq_delta[i])
        << counters[i] << " seed=" << seed;
  }
}

// Backend axis: the same trace stored on the row backend and on the
// columnar segment backend must yield bit-identical analysis output —
// same graph JSON, same update-batch sequence (excluding sim_time: the
// backends charge different simulated costs by design), same
// deterministic RunStats, and the same StoreStats row counts. Zone-map
// pruning may only reduce the number of storage units probed, never the
// rows delivered.
TEST_P(DifferentialOracle, ColumnarBackendBitIdenticalToRow) {
  const uint64_t seed = GetParam() ^ 0x5e67;
  const RandomTrace row_t =
      MakeRandomTrace(seed, 350, StorageBackendKind::kRow);
  const RandomTrace columnar_t =
      MakeRandomTrace(seed, 350, StorageBackendKind::kColumnar);
  const std::string script = UnconstrainedScript(row_t);
  ASSERT_EQ(UnconstrainedScript(columnar_t), script);

  for (const int threads : {1, 4}) {
    const auto label = [&] {
      return std::string("seed=") + std::to_string(seed) +
             " threads=" + std::to_string(threads);
    };
    row_t.store->ResetStats();
    columnar_t.store->ResetStats();
    const RunFingerprint row_fp = RunOnce(row_t, script, threads);
    const RunFingerprint columnar_fp = RunOnce(columnar_t, script, threads);

    EXPECT_EQ(columnar_fp.graph_json, row_fp.graph_json) << label();
    ASSERT_EQ(columnar_fp.batches.size(), row_fp.batches.size()) << label();
    for (size_t i = 0; i < row_fp.batches.size(); ++i) {
      const UpdateBatch& r = row_fp.batches[i];
      const UpdateBatch& c = columnar_fp.batches[i];
      EXPECT_EQ(c.new_edges, r.new_edges) << label() << " batch " << i;
      EXPECT_EQ(c.new_nodes, r.new_nodes) << label() << " batch " << i;
      EXPECT_EQ(c.total_edges, r.total_edges) << label() << " batch " << i;
      EXPECT_EQ(c.total_nodes, r.total_nodes) << label() << " batch " << i;
    }
    EXPECT_EQ(columnar_fp.reason, row_fp.reason) << label();
    EXPECT_EQ(columnar_fp.work_units, row_fp.work_units) << label();
    EXPECT_EQ(columnar_fp.events_added, row_fp.events_added) << label();
    EXPECT_EQ(columnar_fp.events_filtered, row_fp.events_filtered)
        << label();
    EXPECT_EQ(columnar_fp.objects_excluded, row_fp.objects_excluded)
        << label();

    const StoreStats row_stats = row_t.store->stats();
    const StoreStats columnar_stats = columnar_t.store->stats();
    EXPECT_EQ(columnar_stats.queries, row_stats.queries) << label();
    EXPECT_EQ(columnar_stats.rows_matched, row_stats.rows_matched)
        << label();
    EXPECT_EQ(columnar_stats.rows_filtered, row_stats.rows_filtered)
        << label();
    // Pruning reduces only the probe counters, never the row counts.
    EXPECT_EQ(row_stats.segments_pruned, 0u) << label();
    EXPECT_LE(columnar_stats.partitions_probed, row_stats.partitions_probed)
        << label();
  }
}

// Per-shard counters must sum exactly to the store totals in any
// snapshot — the single-lock aggregation contract of
// ShardedStore::TakeSnapshot (docs/sharding.md). `queries` is excluded:
// one scan that fans out to k shards counts once in the totals but once
// per touched shard in the per-shard rows.
void ExpectShardReconciliation(const EventStore& store,
                               const std::string& label) {
  const ShardedStore::Snapshot snap = store.ShardSnapshot();
  StoreStats sum;
  uint64_t resident = 0;
  for (const auto& row : snap.shards) {
    sum.rows_matched += row.stats.rows_matched;
    sum.rows_filtered += row.stats.rows_filtered;
    sum.partitions_probed += row.stats.partitions_probed;
    sum.partitions_seeked += row.stats.partitions_seeked;
    sum.segments_pruned += row.stats.segments_pruned;
    resident += row.resident_rows;
  }
  EXPECT_EQ(sum.rows_matched, snap.total.rows_matched) << label;
  EXPECT_EQ(sum.rows_filtered, snap.total.rows_filtered) << label;
  EXPECT_EQ(sum.partitions_probed, snap.total.partitions_probed) << label;
  EXPECT_EQ(sum.partitions_seeked, snap.total.partitions_seeked) << label;
  EXPECT_EQ(sum.segments_pruned, snap.total.segments_pruned) << label;
  EXPECT_EQ(resident, store.NumEvents()) << label;
}

// Shard axis: the same trace partitioned across {2, 4, 8} shards must
// yield analysis output bit-identical to the monolithic (shards = 1)
// store — same graph JSON, same update-batch sequence, same
// deterministic RunStats, and the same delivered-row totals — on both
// backends and at any thread count. Scatter-gather may change how many
// storage units are probed (a time slice whose rows span two hosts
// occupies partitions in two shards), so the probe counters are checked
// for within-run reconciliation rather than cross-count equality —
// mirroring the row-vs-columnar contract above.
TEST_P(DifferentialOracle, ShardedStoreBitIdenticalToMonolithic) {
  const uint64_t seed = GetParam() ^ 0x54a2;
  for (const StorageBackendKind backend :
       {StorageBackendKind::kRow, StorageBackendKind::kColumnar}) {
    const RandomTrace mono = MakeRandomTrace(seed, 350, backend, 1);
    const std::string script = UnconstrainedScript(mono);

    for (const size_t shards : {size_t{2}, size_t{4}, size_t{8}}) {
      const RandomTrace sharded = MakeRandomTrace(seed, 350, backend, shards);
      ASSERT_EQ(UnconstrainedScript(sharded), script);
      ASSERT_EQ(sharded.store->shard_count(), shards);

      for (const int threads : {1, 4}) {
        const auto label = [&] {
          return std::string(StorageBackendName(backend)) +
                 " seed=" + std::to_string(seed) +
                 " shards=" + std::to_string(shards) +
                 " threads=" + std::to_string(threads);
        };
        mono.store->ResetStats();
        sharded.store->ResetStats();
        const RunFingerprint want = RunOnce(mono, script, threads);
        const RunFingerprint got = RunOnce(sharded, script, threads);

        EXPECT_EQ(got.graph_json, want.graph_json) << label();
        ASSERT_EQ(got.batches.size(), want.batches.size()) << label();
        for (size_t i = 0; i < want.batches.size(); ++i) {
          const UpdateBatch& w = want.batches[i];
          const UpdateBatch& g = got.batches[i];
          EXPECT_EQ(g.new_edges, w.new_edges) << label() << " batch " << i;
          EXPECT_EQ(g.new_nodes, w.new_nodes) << label() << " batch " << i;
          EXPECT_EQ(g.total_edges, w.total_edges)
              << label() << " batch " << i;
          EXPECT_EQ(g.total_nodes, w.total_nodes)
              << label() << " batch " << i;
        }
        EXPECT_EQ(got.reason, want.reason) << label();
        EXPECT_EQ(got.work_units, want.work_units) << label();
        EXPECT_EQ(got.events_added, want.events_added) << label();
        EXPECT_EQ(got.events_filtered, want.events_filtered) << label();
        EXPECT_EQ(got.objects_excluded, want.objects_excluded) << label();

        const StoreStats mono_stats = mono.store->stats();
        const StoreStats shard_stats = sharded.store->stats();
        EXPECT_EQ(shard_stats.queries, mono_stats.queries) << label();
        EXPECT_EQ(shard_stats.rows_matched, mono_stats.rows_matched)
            << label();
        EXPECT_EQ(shard_stats.rows_filtered, mono_stats.rows_filtered)
            << label();
        ExpectShardReconciliation(*sharded.store, label());
      }
    }
  }
}

// Durability axis at shards > 1: the ingest -> seal -> crash -> recover
// cycle of RecoveredStoreBitIdenticalToUninterrupted, rebuilt on a
// 4-way sharded store. WAL replay routes every acknowledged batch
// through the shard map, so the recovered sharded store must be
// bit-identical to the uninterrupted sharded store — and its graphs
// must equal the monolithic store's graphs on top.
TEST_P(DifferentialOracle, ShardedRecoveredStoreBitIdenticalToUninterrupted) {
  const uint64_t seed = GetParam() ^ 0x5dad;
  FileEnv* env = FileEnv::Posix();
  constexpr size_t kShards = 4;

  for (const StorageBackendKind backend :
       {StorageBackendKind::kRow, StorageBackendKind::kColumnar}) {
    RandomTrace ref = MakeRandomTrace(seed, 250, backend, kShards);
    const std::string script = UnconstrainedScript(ref);
    const RandomTrace mono = MakeRandomTrace(seed, 250, backend, 1);
    const std::string trace_path =
        ::testing::TempDir() + "/exec_shard_durable_" + std::to_string(seed) +
        "." + StorageBackendName(backend) + "." +
        std::to_string(::getpid()) + ".trace";
    ASSERT_TRUE(
        SaveTraceFile(*ref.store, trace_path, TraceFormat::kBinaryV2).ok());

    Rng rng(seed + 23);
    std::vector<std::vector<Event>> batches;
    for (size_t b = 0; b < 5; ++b) {
      std::vector<Event> batch;
      const size_t n = rng.Uniform(3) + 1;
      for (size_t i = 0; i < n; ++i) {
        Event e = ref.events[rng.Uniform(ref.events.size())];
        e.id = kInvalidEventId;
        e.timestamp += static_cast<TimeMicros>(40000 + b * 37 + i);
        batch.push_back(e);
      }
      batches.push_back(std::move(batch));
    }
    for (const auto& batch : batches) {
      for (Event e : batch) {
        ref.store->Append(e);
        mono.store->Append(e);
      }
    }

    const std::string dir = ::testing::TempDir() + "/exec_shard_durable_dir_" +
                            std::to_string(seed) + "." +
                            StorageBackendName(backend) + "." +
                            std::to_string(::getpid());
    ASSERT_TRUE(env->CreateDir(dir).ok());
    std::string wal_bytes(kWalMagic, kWalMagicLen);
    for (size_t b = 0; b < batches.size(); ++b) {
      wal_bytes += EncodeWalRecord(b + 1, batches[b]);
    }
    wal_bytes += EncodeWalRecord(99, batches[0]).substr(0, 11);
    {
      const std::string wal_path = dir + "/wal.log";
      if (env->FileExists(wal_path)) {
        ASSERT_TRUE(env->RemoveFile(wal_path).ok());
      }
      auto f = env->OpenForAppend(wal_path);
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE((*f)->Append(wal_bytes).ok());
      ASSERT_TRUE((*f)->Close().ok());
    }

    EventStoreOptions options;
    options.partition_micros = 500;
    options.segment_rows = 64;
    options.cost_model = CostModel::Free();
    options.backend = backend;
    options.shards = kShards;
    auto recovered = OpenDataDir(env, dir, trace_path, options);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_EQ(recovered->wal.batches_applied, batches.size());
    EXPECT_EQ(recovered->store->shard_count(), kShards);

    RandomTrace rec;
    rec.store = std::move(recovered->store);
    rec.events = ref.events;
    rec.alert = ref.alert;

    for (const int threads : {1, 4}) {
      const RunFingerprint want = RunOnce(ref, script, threads);
      const RunFingerprint unsealed = RunOnce(rec, script, threads);
      ExpectIdentical(want, unsealed, seed, threads,
                      StorageBackendName(backend));
      // And the sharded answer equals the monolithic one.
      const RunFingerprint mono_fp = RunOnce(mono, script, threads);
      EXPECT_EQ(unsealed.graph_json, mono_fp.graph_json)
          << StorageBackendName(backend) << " seed=" << seed
          << " threads=" << threads;
    }

    rec.store->SealTail(nullptr);
    EXPECT_EQ(rec.store->TailRows(), 0u);
    for (const int threads : {1, 4}) {
      const RunFingerprint want = RunOnce(ref, script, threads);
      const RunFingerprint sealed = RunOnce(rec, script, threads);
      const std::string label = std::string("sealed ") +
                                StorageBackendName(backend) +
                                " seed=" + std::to_string(seed) +
                                " threads=" + std::to_string(threads);
      EXPECT_EQ(sealed.graph_json, want.graph_json) << label;
      EXPECT_EQ(sealed.reason, want.reason) << label;
      EXPECT_EQ(sealed.events_added, want.events_added) << label;
      EXPECT_EQ(sealed.events_filtered, want.events_filtered) << label;
      EXPECT_EQ(sealed.objects_excluded, want.objects_excluded) << label;
    }
    ExpectShardReconciliation(*rec.store,
                              std::string("recovered ") +
                                  StorageBackendName(backend) +
                                  " seed=" + std::to_string(seed));
  }
}

// Durability axis: an ingest -> seal -> crash -> recover cycle must be
// invisible to analysis. The executor over a store recovered from a data
// dir (base snapshot + WAL replay + torn-tail repair) is bit-identical
// to the executor over the uninterrupted in-memory store that never
// crashed — across {row, columnar} backends and scan_threads {1, 4},
// before and after the recovered tail is sealed into segments.
TEST_P(DifferentialOracle, RecoveredStoreBitIdenticalToUninterrupted) {
  const uint64_t seed = GetParam() ^ 0xdead;
  FileEnv* env = FileEnv::Posix();

  for (const StorageBackendKind backend :
       {StorageBackendKind::kRow, StorageBackendKind::kColumnar}) {
    // Uninterrupted reference: sealed base history plus a live-ingested
    // tail appended directly to the store.
    RandomTrace ref = MakeRandomTrace(seed, 250, backend);
    const std::string script = UnconstrainedScript(ref);
    const std::string trace_path =
        ::testing::TempDir() + "/exec_durable_" + std::to_string(seed) +
        "." + StorageBackendName(backend) + "." +
        std::to_string(::getpid()) + ".trace";
    ASSERT_TRUE(
        SaveTraceFile(*ref.store, trace_path, TraceFormat::kBinaryV2).ok());

    Rng rng(seed + 17);
    std::vector<std::vector<Event>> batches;
    for (size_t b = 0; b < 5; ++b) {
      std::vector<Event> batch;
      const size_t n = rng.Uniform(3) + 1;
      for (size_t i = 0; i < n; ++i) {
        Event e = ref.events[rng.Uniform(ref.events.size())];
        e.id = kInvalidEventId;
        e.timestamp += static_cast<TimeMicros>(40000 + b * 31 + i);
        batch.push_back(e);
      }
      batches.push_back(std::move(batch));
    }
    for (const auto& batch : batches) {
      for (Event e : batch) ref.store->Append(e);
    }

    // Crashed daemon's data dir: the fallback trace, a WAL holding every
    // acknowledged batch, and a torn half-record from the fatal append.
    const std::string dir = ::testing::TempDir() + "/exec_durable_dir_" +
                            std::to_string(seed) + "." +
                            StorageBackendName(backend) + "." +
                            std::to_string(::getpid());
    ASSERT_TRUE(env->CreateDir(dir).ok());
    std::string wal_bytes(kWalMagic, kWalMagicLen);
    for (size_t b = 0; b < batches.size(); ++b) {
      wal_bytes += EncodeWalRecord(b + 1, batches[b]);
    }
    wal_bytes += EncodeWalRecord(99, batches[0]).substr(0, 11);
    {
      const std::string wal_path = dir + "/wal.log";
      if (env->FileExists(wal_path)) {
        ASSERT_TRUE(env->RemoveFile(wal_path).ok());
      }
      auto f = env->OpenForAppend(wal_path);
      ASSERT_TRUE(f.ok());
      ASSERT_TRUE((*f)->Append(wal_bytes).ok());
      ASSERT_TRUE((*f)->Close().ok());
    }

    EventStoreOptions options;
    options.partition_micros = 500;
    options.segment_rows = 64;
    options.cost_model = CostModel::Free();
    options.backend = backend;
    auto recovered = OpenDataDir(env, dir, trace_path, options);
    ASSERT_TRUE(recovered.ok()) << recovered.status();
    EXPECT_EQ(recovered->wal.batches_applied, batches.size());
    EXPECT_GT(recovered->wal.truncated_bytes, 0u);
    EXPECT_NE(recovered->wal.diagnostic.find("STO-E00"), std::string::npos);

    RandomTrace rec;
    rec.store = std::move(recovered->store);
    rec.events = ref.events;
    rec.alert = ref.alert;

    for (const int threads : {1, 4}) {
      const RunFingerprint want = RunOnce(ref, script, threads);
      // Recovered, tail still hot: identical physical layout, so every
      // fingerprint field must match, simulated charges included.
      const RunFingerprint unsealed = RunOnce(rec, script, threads);
      ExpectIdentical(want, unsealed, seed, threads,
                      StorageBackendName(backend));
    }

    // Seal the recovered tail into columnar segments (a no-op on the
    // row backend): the *results* stay bit-identical even though the
    // physical layout — and thus the simulated cost accounting — may
    // legitimately change.
    rec.store->SealTail(nullptr);
    EXPECT_EQ(rec.store->TailRows(), 0u);
    for (const int threads : {1, 4}) {
      const RunFingerprint want = RunOnce(ref, script, threads);
      const RunFingerprint sealed = RunOnce(rec, script, threads);
      const std::string label = std::string("sealed ") +
                                StorageBackendName(backend) +
                                " seed=" + std::to_string(seed) +
                                " threads=" + std::to_string(threads);
      EXPECT_EQ(sealed.graph_json, want.graph_json) << label;
      ASSERT_EQ(sealed.batches.size(), want.batches.size()) << label;
      for (size_t i = 0; i < want.batches.size(); ++i) {
        EXPECT_EQ(sealed.batches[i].new_edges, want.batches[i].new_edges)
            << label << " batch " << i;
        EXPECT_EQ(sealed.batches[i].total_edges, want.batches[i].total_edges)
            << label << " batch " << i;
      }
      EXPECT_EQ(sealed.reason, want.reason) << label;
      EXPECT_EQ(sealed.events_added, want.events_added) << label;
      EXPECT_EQ(sealed.events_filtered, want.events_filtered) << label;
      EXPECT_EQ(sealed.objects_excluded, want.objects_excluded) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialOracle,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                         144, 233, 377));

}  // namespace
}  // namespace aptrace
