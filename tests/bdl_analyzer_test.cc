#include <gtest/gtest.h>

#include "bdl/analyzer.h"
#include "bdl/parser.h"
#include "util/string_util.h"

namespace aptrace::bdl {
namespace {

TrackingSpec MustCompile(std::string_view text) {
  auto spec = CompileBdl(text);
  EXPECT_TRUE(spec.ok()) << spec.status();
  return spec.ok() ? std::move(spec.value()) : TrackingSpec{};
}

TEST(AnalyzerTest, GeneralConstraintsResolved) {
  const TrackingSpec spec = MustCompile(
      "from \"04/02/2019\" to \"05/01/2019\" in \"desktop1\", \"DESKTOP2\" "
      "backward proc p[] -> *");
  ASSERT_TRUE(spec.time_from.has_value());
  ASSERT_TRUE(spec.time_to.has_value());
  EXPECT_EQ(*spec.time_to - *spec.time_from, 29 * kMicrosPerDay);
  ASSERT_EQ(spec.hosts.size(), 2u);
  EXPECT_EQ(spec.hosts[1], "desktop2");  // lowercased
}

TEST(AnalyzerTest, DefaultsWhenOmitted) {
  const TrackingSpec spec = MustCompile("backward proc p[] -> *");
  EXPECT_FALSE(spec.time_from.has_value());
  EXPECT_FALSE(spec.time_to.has_value());
  EXPECT_TRUE(spec.hosts.empty());
  EXPECT_EQ(spec.time_budget, -1);
  EXPECT_EQ(spec.hop_limit, -1);
  EXPECT_TRUE(spec.output_path.empty());
}

TEST(AnalyzerTest, ReversedTimeRangeRejected) {
  auto spec = CompileBdl(
      "from \"05/01/2019\" to \"04/02/2019\" backward proc p[] -> *");
  EXPECT_FALSE(spec.ok());
}

TEST(AnalyzerTest, BudgetsExtractedFromWhere) {
  const TrackingSpec spec = MustCompile(
      "backward proc p[] -> * where time < 10mins and hop < 25 and "
      "proc.exename != \"explorer\"");
  EXPECT_EQ(spec.time_budget, 10 * kMicrosPerMinute);
  EXPECT_EQ(spec.hop_limit, 25);
  // The remaining where tree kept only the exename filter.
  ASSERT_NE(spec.where, nullptr);
  EXPECT_EQ(spec.where->kind(), Condition::Kind::kLeaf);
}

TEST(AnalyzerTest, BudgetsOnlyWhereIsNull) {
  const TrackingSpec spec =
      MustCompile("backward proc p[] -> * where time <= 2h");
  EXPECT_EQ(spec.time_budget, 2 * kMicrosPerHour);
  EXPECT_EQ(spec.where, nullptr);
}

TEST(AnalyzerTest, BareNumberTimeBudgetIsMinutes) {
  const TrackingSpec spec =
      MustCompile("backward proc p[] -> * where time <= 5");
  EXPECT_EQ(spec.time_budget, 5 * kMicrosPerMinute);
}

TEST(AnalyzerTest, BudgetUnderOrRejected) {
  EXPECT_FALSE(CompileBdl("backward proc p[] -> * where time < 10mins or "
                          "hop < 3")
                   .ok());
}

TEST(AnalyzerTest, BudgetWithWrongOpRejected) {
  EXPECT_FALSE(CompileBdl("backward proc p[] -> * where hop >= 3").ok());
  EXPECT_FALSE(CompileBdl("backward proc p[] -> * where time = 10mins").ok());
}

TEST(AnalyzerTest, ChainPatternsTyped) {
  const TrackingSpec spec = MustCompile(
      "backward file f[path = \"/x\"] -> proc p[exename = \"m\"] -> ip "
      "i[dst_ip = \"1.2.3.4\"]");
  ASSERT_EQ(spec.chain.size(), 3u);
  EXPECT_EQ(*spec.chain[0].type, ObjectType::kFile);
  EXPECT_EQ(*spec.chain[1].type, ObjectType::kProcess);
  EXPECT_EQ(*spec.chain[2].type, ObjectType::kIp);
  EXPECT_EQ(spec.NumIntermediatePoints(), 1u);
  EXPECT_TRUE(spec.HasEndConstraint());
}

TEST(AnalyzerTest, WildcardEndNotAConstraint) {
  const TrackingSpec spec = MustCompile("backward proc p[] -> *");
  EXPECT_FALSE(spec.HasEndConstraint());
  EXPECT_EQ(spec.NumIntermediatePoints(), 0u);
}

TEST(AnalyzerTest, UnknownNodeTypeRejected) {
  EXPECT_FALSE(CompileBdl("backward gizmo g[] -> *").ok());
}

TEST(AnalyzerTest, FieldTypeMismatchesRejected) {
  // exename on a file node.
  EXPECT_FALSE(CompileBdl("backward file f[exename = \"x\"] -> *").ok());
  // String value for a numeric field.
  EXPECT_FALSE(CompileBdl("backward proc p[pid = \"abc\"] -> *").ok());
  // Numeric value for a string field.
  EXPECT_FALSE(CompileBdl("backward proc p[exename = 42] -> *").ok());
  // Garbage time literal.
  EXPECT_FALSE(
      CompileBdl("backward proc p[starttime = \"not a time\"] -> *").ok());
  // Boolean field with ordering operator.
  EXPECT_FALSE(CompileBdl(
                   "backward file f[] -> * where file.isReadonly < true")
                   .ok());
}

// Every analyzer error must carry the source position of the offending
// token, in the "line L, column C" form FirstErrorStatus renders.
void ExpectErrorAt(std::string_view script, int line, int column,
                   std::string_view code) {
  auto spec = CompileBdl(script);
  ASSERT_FALSE(spec.ok()) << script;
  const std::string msg = spec.status().message();
  const std::string want = "line " + std::to_string(line) + ", column " +
                           std::to_string(column);
  EXPECT_NE(msg.find(want), std::string::npos)
      << "missing '" << want << "' in: " << msg;
  EXPECT_NE(msg.find(code), std::string::npos)
      << "missing code " << code << " in: " << msg;
}

TEST(AnalyzerTest, ErrorsCarryLineAndColumn) {
  ExpectErrorAt("backward gizmo g[] -> *", 1, 10, "BDL-E003");
  ExpectErrorAt("backward proc p[bogus = \"x\"] -> *", 1, 17, "BDL-E004");
  ExpectErrorAt("backward file f[exename = \"x\"] -> *", 1, 17, "BDL-E005");
  ExpectErrorAt("backward proc p[pid = \"abc\"] -> *", 1, 23, "BDL-E006");
  ExpectErrorAt("backward proc p[] -> *\nwhere starttime = \"junk\"", 2, 19,
                "BDL-E007");
  ExpectErrorAt("backward proc p[] -> *\nwhere hop >= 3", 2, 7, "BDL-E008");
  ExpectErrorAt("from \"05/01/2019\" to \"04/02/2019\"\nbackward proc p[] "
                "-> *",
                1, 6, "BDL-E010");
  ExpectErrorAt("backward proc p[] -> *\nprioritize [type = file or type = "
                "proc]",
                2, 25, "BDL-E011");
}

TEST(AnalyzerTest, RecoverySurfacesEverySemanticError) {
  // One pass over a script with three independent defects reports all
  // three, in source order, each with its own span.
  DiagnosticEngine diags;
  const AstScript script = Parser::ParseRecover(
      "backward proc p[bogus = \"x\" and pid = \"abc\"] -> *\n"
      "where starttime = \"junk\"",
      &diags);
  ASSERT_FALSE(diags.HasErrors());  // syntactically fine
  (void)AnalyzeRecover(script, &diags);
  diags.SortBySource();
  ASSERT_EQ(diags.num_errors(), 3u);
  EXPECT_EQ(diags.diagnostics()[0].code, DiagCode::kUnknownAttribute);
  EXPECT_EQ(diags.diagnostics()[1].code, DiagCode::kValueTypeMismatch);
  EXPECT_EQ(diags.diagnostics()[2].code, DiagCode::kBadTimeLiteral);
  for (const Diagnostic& d : diags.diagnostics()) {
    EXPECT_TRUE(d.span.valid()) << d.message;
  }
  EXPECT_EQ(diags.diagnostics()[2].span.line, 2);
}

TEST(AnalyzerTest, TimeFieldValuesParsed) {
  const TrackingSpec spec = MustCompile(
      "backward file f[event_time = \"04/16/2019:06:15:14\"] -> *");
  ASSERT_NE(spec.chain[0].cond, nullptr);
  const auto& leaf = spec.chain[0].cond->leaf();
  EXPECT_EQ(leaf.field, FieldId::kEventTime);
  ASSERT_TRUE(leaf.int_value.has_value());
  EXPECT_EQ(FormatBdlTime(*leaf.int_value), "04/16/2019:06:15:14");
}

TEST(AnalyzerTest, OutputPathCaptured) {
  const TrackingSpec spec =
      MustCompile("backward proc p[] -> * output = \"./result.dot\"");
  EXPECT_EQ(spec.output_path, "./result.dot");
}

TEST(AnalyzerTest, PrioritizeRuleCompiled) {
  const TrackingSpec spec = MustCompile(
      "backward proc p[] -> * "
      "prioritize [type = file and src.path = \"*secret*\"] <- [type = "
      "network and dst.ip = \"203.*\" and amount >= size]");
  ASSERT_EQ(spec.prioritize.size(), 1u);
  const QuantityRule& rule = spec.prioritize[0];
  ASSERT_EQ(rule.chain.size(), 2u);
  EXPECT_EQ(*rule.chain[0].object_type, ObjectType::kFile);
  EXPECT_EQ(*rule.chain[1].object_type, ObjectType::kIp);  // network alias
  EXPECT_FALSE(rule.chain[0].amount_vs_upstream);
  EXPECT_TRUE(rule.chain[1].amount_vs_upstream);
  EXPECT_EQ(rule.chain[1].amount_op, CompareOp::kGe);
}

TEST(AnalyzerTest, PrioritizeRejectsOr) {
  EXPECT_FALSE(CompileBdl("backward proc p[] -> * prioritize [type = file "
                          "or type = proc]")
                   .ok());
}

TEST(AnalyzerTest, SourceTextPreserved) {
  const char* text = "backward proc p[] -> *";
  const TrackingSpec spec = MustCompile(text);
  EXPECT_EQ(spec.source_text, text);
}

// -------------------------------------------------- condition evaluation

class ConditionEvalTest : public testing::Test {
 protected:
  void SetUp() override {
    host_ = catalog_.InternHost("desktop1");
    java_ = catalog_.AddProcess(host_, {.exename = "java.exe", .pid = 42});
    explorer_ = catalog_.AddProcess(host_, {.exename = "explorer"});
    dll_ = catalog_.AddFile(host_, {.path = "C://Windows/System32/a.dll"});
    doc_ = catalog_.AddFile(host_, {.path = "C://Users/u/report.doc"});
    ip_ = catalog_.AddIp(host_, {.src_ip = "10.1.0.5",
                                 .dst_ip = "203.0.113.9"});
  }

  EvalContext Ctx(ObjectId id, const Event* event = nullptr) {
    EvalContext ctx;
    ctx.object = &catalog_.Get(id);
    ctx.event = event;
    ctx.catalog = &catalog_;
    return ctx;
  }

  std::shared_ptr<const Condition> Where(const std::string& where_clause) {
    auto spec = CompileBdl("backward proc p[] -> * where " + where_clause);
    EXPECT_TRUE(spec.ok()) << spec.status();
    return spec.ok() ? spec.value().where : nullptr;
  }

  ObjectCatalog catalog_;
  HostId host_ = 0;
  ObjectId java_ = 0, explorer_ = 0, dll_ = 0, doc_ = 0, ip_ = 0;
};

TEST_F(ConditionEvalTest, TypedLeafNAOnOtherTypes) {
  auto cond = Where("proc.exename != \"explorer\"");
  ASSERT_NE(cond, nullptr);
  EXPECT_EQ(cond->Eval(Ctx(java_)), Tribool::kTrue);
  EXPECT_EQ(cond->Eval(Ctx(explorer_)), Tribool::kFalse);
  EXPECT_EQ(cond->Eval(Ctx(dll_)), Tribool::kNA);  // not a process
}

TEST_F(ConditionEvalTest, MixedTypeConjunctionFiltersPerType) {
  // The paper's Program 6 filter.
  auto cond =
      Where("file.path != \"*.dll\" and proc.exename != \"findstr.exe\"");
  ASSERT_NE(cond, nullptr);
  // A dll file: first conjunct false -> excluded.
  EXPECT_FALSE(ConditionKeeps(cond.get(), Ctx(dll_)));
  // A doc file: first true, second NA -> kept.
  EXPECT_TRUE(ConditionKeeps(cond.get(), Ctx(doc_)));
  // java.exe process: first NA, second true -> kept.
  EXPECT_TRUE(ConditionKeeps(cond.get(), Ctx(java_)));
  // An ip: both NA -> kept.
  EXPECT_TRUE(ConditionKeeps(cond.get(), Ctx(ip_)));
}

TEST_F(ConditionEvalTest, TriboolTables) {
  EXPECT_EQ(TriAnd(Tribool::kTrue, Tribool::kNA), Tribool::kTrue);
  EXPECT_EQ(TriAnd(Tribool::kFalse, Tribool::kNA), Tribool::kFalse);
  EXPECT_EQ(TriAnd(Tribool::kNA, Tribool::kNA), Tribool::kNA);
  EXPECT_EQ(TriOr(Tribool::kFalse, Tribool::kNA), Tribool::kFalse);
  EXPECT_EQ(TriOr(Tribool::kTrue, Tribool::kNA), Tribool::kTrue);
  EXPECT_EQ(TriOr(Tribool::kNA, Tribool::kNA), Tribool::kNA);
}

TEST_F(ConditionEvalTest, PatternVsFilterInterpretation) {
  auto cond = Where("proc.exename = \"java*\"");
  ASSERT_NE(cond, nullptr);
  // On a file, the condition is NA: a *filter* keeps it...
  EXPECT_TRUE(ConditionKeeps(cond.get(), Ctx(doc_)));
  // ...but a *pattern* does not match it.
  EXPECT_FALSE(ConditionMatches(cond.get(), Ctx(doc_)));
  EXPECT_TRUE(ConditionMatches(cond.get(), Ctx(java_)));
}

TEST_F(ConditionEvalTest, EventLevelFields) {
  Event e;
  e.id = 9;
  e.subject = java_;
  e.object = doc_;
  e.timestamp = ParseBdlTime("04/16/2019:06:15:14").value();
  e.action = ActionType::kWrite;
  e.direction = FlowDirection::kSubjectToObject;
  e.amount = 100;

  auto cond = Where(
      "subject_name = \"java.exe\" and action_type = \"write\" and amount "
      "> 50");
  ASSERT_NE(cond, nullptr);
  EXPECT_EQ(cond->Eval(Ctx(doc_, &e)), Tribool::kTrue);
  // Without the event, the condition cannot be decided -> NA -> kept.
  EXPECT_EQ(cond->Eval(Ctx(doc_)), Tribool::kNA);
  e.amount = 10;
  EXPECT_EQ(cond->Eval(Ctx(doc_, &e)), Tribool::kFalse);
}

TEST_F(ConditionEvalTest, EndpointSelectors) {
  Event e;  // java reads doc: flow doc -> java
  e.subject = java_;
  e.object = doc_;
  e.action = ActionType::kRead;
  e.direction = FlowDirection::kObjectToSubject;

  auto cond = Where("src.path = \"*report*\"");
  ASSERT_NE(cond, nullptr);
  // Evaluated on any object, the leaf reads from the event's flow source.
  EXPECT_EQ(cond->Eval(Ctx(java_, &e)), Tribool::kTrue);
  // Without an event the endpoint is unknown -> NA.
  EXPECT_EQ(cond->Eval(Ctx(java_)), Tribool::kNA);
}

TEST_F(ConditionEvalTest, OrderedStringComparison) {
  auto cond = Where("proc.exename < \"m\"");
  ASSERT_NE(cond, nullptr);
  EXPECT_EQ(cond->Eval(Ctx(java_)), Tribool::kTrue);      // "java.exe" < "m"
  EXPECT_EQ(cond->Eval(Ctx(explorer_)), Tribool::kTrue);  // "explorer" < "m"
}

TEST_F(ConditionEvalTest, ConditionToStringRoundTrips) {
  auto cond = Where("proc.exename != \"explorer\" and hop < 3");
  // hop was extracted; remaining condition renders sensibly.
  EXPECT_NE(cond->ToString().find("exename"), std::string::npos);
  EXPECT_NE(cond->ToString().find("!="), std::string::npos);
}

// -------------------------------------------------- the paper's corpus

// Every BDL program printed in the paper (normalized to this grammar)
// must compile. This is the expressivity check of Section IV-C.
class PaperCorpusTest : public testing::TestWithParam<const char*> {};

TEST_P(PaperCorpusTest, Compiles) {
  auto spec = CompileBdl(GetParam());
  EXPECT_TRUE(spec.ok()) << spec.status() << "\nscript:\n" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Programs, PaperCorpusTest,
    testing::Values(
        // Program 1 (tracking with intermediate point and where).
        R"(from "04/02/2019" to "05/01/2019"
           in "desktop1", "desktop2"
           backward file f[path = "C://Sensitive/important.doc" and event_time = "04/16/2019:06:15:14" and type = "write"]
             -> proc p[exename = "malware1" or exename = "malware2" and event_id = 12]
             -> ip i[dstip = "168.120.11.118"]
           where time < 10mins and hop < 25 and proc.exename != "explorer"
           output = "./result.dot")",
        // Program 2 (quantity-based prioritization).
        R"(backward proc p[] -> *
           prioritize [type = file and src.path = "sensitivefile"] <- [type = network and dst.ip = "unkownIP" and amount >= size])",
        // Program 3 (read-only files and write-through processes).
        R"(backward proc p[] -> *
           where file.isReadonly = true or proc.isWriteThrough = true)",
        // Program 4 (basic backtracking for A1).
        R"(from "03/26/2019" to "04/26/2019"
           backward ip alert[dst_ip = "198.51.100.77", subject_name = "java.exe" and event_time = "04/26/2019:16:31:16" and action_type = "write"] -> *
           output = "./result.dot")",
        // Program 5 (A1 with *.dll excluded).
        R"(from "03/26/2019" to "04/26/2019"
           backward ip alert[dst_ip = "198.51.100.77", subject_name = "java.exe" and event_time = "04/26/2019:16:31:16" and action_type = "write"] -> *
           where file.path != "*.dll"
           output = "./result.dot")",
        // Program 6 (A1 with findstr.exe excluded).
        R"(from "03/26/2019" to "04/26/2019"
           backward ip alert[dst_ip = "198.51.100.77", subject_name = "java.exe" and event_time = "04/26/2019:16:31:16" and action_type = "write"] -> *
           where file.path != "*.dll" and proc.exename != "findstr.exe"
           output = "./result.dot")",
        // Program 7 (A2 starting from the alert).
        R"(from "03/03/2019" to "04/03/2019"
           backward proc p[exename = "cmd" and event_time = "04/03/2019:11:34:45" and action_type = "start" and subject_name = "sqlserver.exe"] -> *
           output = "./result.dot")",
        // Program 8 (A2 with *.dll excluded).
        R"(from "03/03/2019" to "04/03/2019"
           backward proc p[exename = "cmd" and event_time = "04/03/2019:11:34:45" and action_type = "start" and subject_name = "sqlserver.exe"] -> *
           where file.path != "*.dll"
           output = "./result.dot")",
        // Program 9 (A2 with the socket intermediate point).
        R"(from "03/03/2019" to "04/03/2019"
           backward proc p[exename = "cmd" and event_time = "04/03/2019:11:34:45" and action_type = "start" and subject_name = "sqlserver.exe"]
             -> ip i[dst_ip = "host2" and src_ip = "host1" and subject_name = "java.exe"] -> *
           where file.path != "*.dll"
           output = "./result.dot")",
        // Program 10 (A2 with explorer.exe excluded). The paper's listing
        // says `backward file p[exename = ...]`, an obvious typo for
        // `proc` (exename is a process attribute); normalized here.
        R"(from "03/03/2019" to "04/03/2019"
           backward proc p[exename = "cmd" and event_time = "04/03/2019:11:34:45" and type = "start" and subject_name = "sqlserver.exe"] -> *
           where file.path != "*.dll" and file.path != "explorer.exe"
           output = "./result.dot")"));

}  // namespace
}  // namespace aptrace::bdl
