#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/engine.h"
#include "tests/test_trace.h"

namespace aptrace {
namespace {

using testing_support::MakeMiniTrace;
using testing_support::MiniTrace;

class SessionTest : public testing::Test {
 protected:
  MiniTrace trace_ = MakeMiniTrace();
  SimClock clock_;
};

TEST_F(SessionTest, StepBeforeStartFails) {
  Session session(trace_.store.get(), &clock_);
  EXPECT_FALSE(session.Step({}).ok());
  EXPECT_FALSE(session.UpdateScript("backward ip x[] -> *").ok());
  EXPECT_FALSE(session.Finish().ok());
  EXPECT_FALSE(session.started());
}

TEST_F(SessionTest, BadScriptReported) {
  Session session(trace_.store.get(), &clock_);
  const Status s = session.Start("this is not bdl");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(SessionTest, StartByPatternRunFinish) {
  Session session(trace_.store.get(), &clock_);
  ASSERT_TRUE(
      session.Start("backward ip x[dst_ip = \"185.220.101.45\"] -> *").ok());
  EXPECT_TRUE(session.started());
  auto reason = session.Step({});
  ASSERT_TRUE(reason.ok());
  EXPECT_EQ(reason.value(), StopReason::kCompleted);
  EXPECT_TRUE(session.Exhausted());
  EXPECT_EQ(session.graph().NumEdges(), MiniTrace::kClosureEdges);
  EXPECT_TRUE(session.Finish().ok());
}

TEST_F(SessionTest, FinishWritesDotOutput) {
  const std::string path = ::testing::TempDir() + "/aptrace_session.dot";
  std::remove(path.c_str());
  Session session(trace_.store.get(), &clock_);
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> * output = \"" + path + "\"",
                         trace_.store->Get(trace_.alert_event))
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());
  ASSERT_TRUE(session.Finish().ok());

  std::ifstream f(path);
  ASSERT_TRUE(f.good());
  std::stringstream ss;
  ss << f.rdbuf();
  const std::string dot = ss.str();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("java.exe"), std::string::npos);
  EXPECT_NE(dot.find("color=red"), std::string::npos);  // alert highlighted
  std::remove(path.c_str());
}

TEST_F(SessionTest, FinishPrunesToMatchedPaths) {
  Session session(trace_.store.get(), &clock_);
  ASSERT_TRUE(session
                  .Start("backward ip x[dst_ip = \"185.220.101.45\"] -> "
                         "proc p[exename = \"excel.exe\"] -> ip m[dst_ip = "
                         "\"198.51.100.9\"]")
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());
  const size_t before = session.graph().NumNodes();
  ASSERT_TRUE(session.Finish().ok());
  EXPECT_LT(session.graph().NumNodes(), before);
  EXPECT_TRUE(session.graph().HasNode(trace_.mail_sock));
  EXPECT_FALSE(session.graph().HasNode(trace_.dll[0]));
}

TEST_F(SessionTest, BaselineEngineViaOptions) {
  SessionOptions options;
  options.use_baseline = true;
  Session session(trace_.store.get(), &clock_, options);
  ASSERT_TRUE(session
                  .Start("backward ip x[] -> *",
                         trace_.store->Get(trace_.alert_event))
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());
  EXPECT_EQ(session.graph().NumEdges(), MiniTrace::kClosureEdges);
  // Baseline + script update = restart (execute-to-complete cannot reuse).
  ASSERT_TRUE(session
                  .UpdateScript(
                      "backward ip x[] -> * where file.path != \"*.dll\"")
                  .ok());
  ASSERT_TRUE(session.Step({}).ok());
  EXPECT_EQ(session.graph().NumEdges(), MiniTrace::kClosureEdges - 3);
}

TEST_F(SessionTest, OneShotRunBdlScript) {
  SimClock clock;
  auto report = RunBdlScript(*trace_.store, &clock, "backward ip x[] -> *",
                             {}, {}, trace_.store->Get(trace_.alert_event));
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->reason, StopReason::kCompleted);
  EXPECT_EQ(report->graph_edges, MiniTrace::kClosureEdges);
  EXPECT_EQ(report->graph_nodes, MiniTrace::kClosureNodes);
  EXPECT_FALSE(report->log.empty());
}

TEST_F(SessionTest, ResourceModelShape) {
  ResourceModel model;
  // Early in the run: memory spike.
  ResourceSample early = model.Sample({.elapsed = 0});
  ResourceSample later = model.Sample({.elapsed = 10 * kMicrosPerMinute});
  EXPECT_GT(early.mem_pct, 10.0);
  EXPECT_LT(later.mem_pct, 5.0);
  // CPU ramps up.
  EXPECT_LT(early.cpu_pct, 4.0);
  EXPECT_GT(later.cpu_pct, 8.0);
  // Graph size adds memory.
  ResourceSample big = model.Sample(
      {.elapsed = 10 * kMicrosPerMinute, .graph_nodes = 400000});
  EXPECT_GT(big.mem_pct, later.mem_pct + 5.0);
  // Values stay in [0, 100].
  ResourceSample huge = model.Sample(
      {.elapsed = kMicrosPerHour, .graph_nodes = 100000000});
  EXPECT_LE(huge.mem_pct, 100.0);
  EXPECT_GE(huge.cpu_pct, 0.0);
}

}  // namespace
}  // namespace aptrace
