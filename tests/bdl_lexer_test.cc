#include <gtest/gtest.h>

#include "bdl/lexer.h"

namespace aptrace::bdl {
namespace {

std::vector<Token> Lex(std::string_view text) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  return tokens.ok() ? std::move(tokens.value()) : std::vector<Token>{};
}

TEST(LexerTest, EmptyInputYieldsEnd) {
  auto tokens = Lex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(LexerTest, Identifiers) {
  auto tokens = Lex("backward proc p_1");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "backward");
  EXPECT_EQ(tokens[2].text, "p_1");
}

TEST(LexerTest, StringsPreserveContent) {
  auto tokens = Lex("\"C://Sensitive/important.doc\" \"04/16/2019:06:15:14\"");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "C://Sensitive/important.doc");
  EXPECT_EQ(tokens[1].text, "04/16/2019:06:15:14");
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Lex(R"("a\"b\\c")");
  ASSERT_EQ(tokens.size(), 2u);
  EXPECT_EQ(tokens[0].text, "a\"b\\c");
}

TEST(LexerTest, UnterminatedStringFails) {
  Lexer lexer("\"oops");
  EXPECT_FALSE(lexer.Tokenize().ok());
}

TEST(LexerTest, NumbersAndDurations) {
  auto tokens = Lex("12 10mins 30s");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kNumber);
  EXPECT_EQ(tokens[0].number, 12);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDuration);
  EXPECT_EQ(tokens[1].text, "10mins");
  EXPECT_EQ(tokens[2].kind, TokenKind::kDuration);
  EXPECT_EQ(tokens[2].text, "30s");
}

TEST(LexerTest, OperatorsAndPunctuation) {
  auto tokens = Lex("< <= > >= = != -> <- , . * [ ] ( )");
  const TokenKind expected[] = {
      TokenKind::kLt,     TokenKind::kLe,       TokenKind::kGt,
      TokenKind::kGe,     TokenKind::kEq,       TokenKind::kNe,
      TokenKind::kArrow,  TokenKind::kBackArrow, TokenKind::kComma,
      TokenKind::kDot,    TokenKind::kStar,     TokenKind::kLBracket,
      TokenKind::kRBracket, TokenKind::kLParen, TokenKind::kRParen,
      TokenKind::kEnd};
  ASSERT_EQ(tokens.size(), std::size(expected));
  for (size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << "token " << i;
  }
}

TEST(LexerTest, DoubleEqualsAccepted) {
  auto tokens = Lex("a == 1");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[1].kind, TokenKind::kEq);
}

TEST(LexerTest, LineCommentsSkipped) {
  auto tokens = Lex("proc // this is ignored -> [ ] \"\n file");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "proc");
  EXPECT_EQ(tokens[1].text, "file");
}

TEST(LexerTest, TracksLineNumbers) {
  auto tokens = Lex("a\nb\n  c");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 3);
  EXPECT_EQ(tokens[2].column, 3);
}

TEST(LexerTest, RejectsBareBangAndDash) {
  EXPECT_FALSE(Lexer("a ! b").Tokenize().ok());
  EXPECT_FALSE(Lexer("a - b").Tokenize().ok());
  EXPECT_FALSE(Lexer("#").Tokenize().ok());
}

TEST(LexerTest, DottedFieldPathLexesAsThreeTokens) {
  auto tokens = Lex("proc.exename");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].kind, TokenKind::kDot);
  EXPECT_EQ(tokens[2].kind, TokenKind::kIdent);
}

}  // namespace
}  // namespace aptrace::bdl
